#!/bin/sh
# shard_smoke.sh — intra-space sharding crash test.
#
# Starts a spaced coordinator with -shard-fanout 2 plus two fleet
# workers, fires one enumeration so the coordinator warms the space up
# locally, splits its frontier into two shard assignments, and runs
# them on the fleet. Mid-space, whichever worker holds a shard lease is
# SIGKILLed, and the script requires:
#
#   1. the space really was sharded (dist.shard.splits) and the dead
#      holder's lease expired (dist.lease_expiries), re-dispatching
#      only that shard,
#   2. the merged space hashes byte-identical (spacedot -hash) to what
#      a single-node cmd/explore run writes for the same function,
#   3. a second, equivalence-tier request — derived from a fresh
#      sharded merge — hashes identical to a single-node -equiv run,
#   4. no merge ever failed verification, and the surviving worker and
#      the coordinator drain cleanly on SIGTERM.
#
# CLUSTER_FAULTS, when set, is passed to both workers as their fault
# plan. Keep it to network directives (httpdrop/httpslow): phase-level
# faults are keyed by node sequence, which is shard-relative below the
# partition frontier, so a deep phase fault can fire in one shard and
# not another and the merge correctly refuses the inconsistent oracle
# (see DESIGN.md §14).
#
# Needs curl and jq, like cluster-smoke.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
coord=""
w1=""
w2=""
w3=""
cleanup() {
	for pid in $w1 $w2 $w3 $coord; do kill -9 "$pid" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
	echo "shard-smoke: $*" >&2
	echo "--- coordinator log ---" >&2
	cat "$tmp/coord.log" >&2 || true
	echo "--- worker logs ---" >&2
	cat "$tmp"/w?.log >&2 2>/dev/null || true
	exit 1
}

stat_counter() { # stat_counter <series-name>
	curl -fsS "http://$addr/v1/stats" | jq -r --arg k "$1" '.counters[$k] // 0'
}

"$GO" build -o "$tmp/explore" ./cmd/explore
"$GO" build -o "$tmp/spacedot" ./cmd/spacedot
"$GO" build -o "$tmp/spaced" ./cmd/spaced

# Single-node references, one per tier: the sharded answers must hash
# identically.
mkdir -p "$tmp/ref" "$tmp/refeq"
"$tmp/explore" -bench sha -func sha_transform -save "$tmp/ref" >/dev/null
want=$("$tmp/spacedot" -hash "$tmp/ref/sha.sha_transform.space.gz" | cut -d' ' -f1)
"$tmp/explore" -bench sha -func sha_transform -equiv -save "$tmp/refeq" >/dev/null
wanteq=$("$tmp/spacedot" -hash "$tmp/refeq/sha.sha_transform.space.gz" | cut -d' ' -f1)

# Lease TTL 2s (not cluster-smoke's 1s): a shard holder saturates its
# CPUs mid-level, and on a loaded CI box a >1s heartbeat-scheduling
# hiccup would expire a healthy survivor's lease. -deadline stretches
# the request budget for the same reason — the recovery path replays
# the dead holder's shard from its last uploaded checkpoint.
REPRO_FAULTS= "$tmp/spaced" -addr 127.0.0.1:0 -cache "$tmp/cache" \
	-ready-file "$tmp/addr" -shard-fanout 2 -lease-ttl 2s -poll-wait 250ms \
	-dispatch-attempts 5 -deadline 240s -metrics "$tmp/coord.metrics.json" \
	-log json 2>"$tmp/coord.log" &
coord=$!
for _ in $(seq 1 100); do [ -s "$tmp/addr" ] && break; sleep 0.1; done
[ -s "$tmp/addr" ] || fail "coordinator never became ready"
addr=$(head -n1 "$tmp/addr")

start_worker() { # start_worker <id>  (sets wpid)
	# -search-workers 2 keeps the two workers from oversubscribing the
	# box (each would otherwise claim every CPU), which starves their
	# own heartbeat loops and fakes lease expiries.
	REPRO_FAULTS= "$tmp/spaced" -worker -join "http://$addr" \
		-worker-id "$1" -workers 1 -search-workers 2 -scratch "$tmp/$1" \
		${CLUSTER_FAULTS:+-faults "$CLUSTER_FAULTS"} \
		-log json >/dev/null 2>"$tmp/$1.log" &
	wpid=$!
}
start_worker w1; w1=$wpid
start_worker w2; w2=$wpid
for _ in $(seq 1 100); do
	[ "$(curl -fsS "http://$addr/v1/stats" | jq -r '.fleet.workers_live // 0')" = 2 ] && break
	sleep 0.1
done
[ "$(curl -fsS "http://$addr/v1/stats" | jq -r '.fleet.workers_live // 0')" = 2 ] \
	|| fail "two workers never registered"

curl -fsS -d '{"bench":"sha","func":"sha_transform"}' \
	"http://$addr/v1/enumerate" -o "$tmp/r1.json" &
req=$!

# Wait for the split, find a shard holder, give it a heartbeat or two
# to upload shard progress, then kill it without a goodbye.
victim=""
for _ in $(seq 1 200); do
	[ "$(stat_counter 'dist.shard.splits')" -ge 1 ] || { sleep 0.05; continue; }
	victim=$(curl -fsS "http://$addr/v1/stats" \
		| jq -r '.fleet.workers[]? | select(.assignments > 0) | .id' | head -n1)
	[ -n "$victim" ] && break
	sleep 0.05
done
[ -n "$victim" ] || fail "space never split into shard assignments"
sleep 0.6
if [ "$victim" = w1 ]; then vpid=$w1; survivor=w2; else vpid=$w2; survivor=w1; fi
kill -9 "$vpid"
echo "shard-smoke: SIGKILLed shard holder $victim mid-space"
# A replacement joins so the dead holder's shard re-dispatches promptly
# and the later equivalence-tier request still has a 2-worker fleet to
# shard across.
start_worker w3; w3=$wpid

wait "$req" || fail "enumerate request failed"
got=$(jq -r .space_hash "$tmp/r1.json")
[ "$got" = "$want" ] || fail "sharded hash $got, single-node run wrote $want"

splits=$(stat_counter "dist.shard.splits")
[ "$splits" -ge 1 ] || fail "space was never sharded"
merges=$(stat_counter "dist.shard.merges")
[ "$merges" -ge 1 ] || fail "shards were never merged (local fallback answered?)"
mergefails=$(stat_counter "dist.shard.merge_failures")
[ "$mergefails" = 0 ] || fail "$mergefails shard merges failed verification"
exp=$(stat_counter "dist.lease_expiries{worker=\"$victim\"}")
[ "$exp" -ge 1 ] || fail "no lease expiry for $victim; kill landed after its shard completed?"

# Byte identity of what the coordinator serves from its cache.
key=$(jq -r .key "$tmp/r1.json")
curl -fsS "http://$addr/v1/space/$key" -o "$tmp/served.space.gz"
served=$("$tmp/spacedot" -hash "$tmp/served.space.gz" | cut -d' ' -f1)
[ "$served" = "$want" ] || fail "served space hashes $served, want $want"

# Equivalence tier: sharded default-tier enumeration + derivation must
# match a direct single-node -equiv run bit for bit.
curl -fsS -d '{"bench":"sha","func":"sha_transform","options":{"equiv":true}}' \
	"http://$addr/v1/enumerate" -o "$tmp/r2.json" || fail "equiv enumerate request failed"
goteq=$(jq -r .space_hash "$tmp/r2.json")
[ "$goteq" = "$wanteq" ] || fail "sharded equiv hash $goteq, single-node -equiv run wrote $wanteq"
merges=$(stat_counter "dist.shard.merges")
[ "$merges" -ge 2 ] || fail "equiv flight was not answered by a sharded merge (merges=$merges)"
mergefails=$(stat_counter "dist.shard.merge_failures")
[ "$mergefails" = 0 ] || fail "$mergefails shard merges failed verification after the equiv flight"

# Clean drains: surviving workers first, then the coordinator.
if [ "$survivor" = w1 ]; then spid=$w1; else spid=$w2; fi
kill -TERM "$spid" "$w3"
wait "$spid" || fail "surviving worker did not drain cleanly"
wait "$w3" || fail "replacement worker did not drain cleanly"
w1=""; w2=""; w3=""
kill -9 "$vpid" 2>/dev/null || true
kill -TERM "$coord"
wait "$coord" || fail "coordinator did not drain cleanly"
coord=""

# The coordinator's exit snapshot must surface the shard series through
# phasestats -from-metrics (the fleet operator's offline view).
"$GO" run ./cmd/phasestats -from-metrics "$tmp/coord.metrics.json" \
	-require dist.shard.splits,dist.shard.merges,dist.assignments \
	>"$tmp/phasestats.txt" || fail "phasestats -from-metrics rejected the coordinator snapshot"
grep -q 'dist:   shards:' "$tmp/phasestats.txt" \
	|| fail "phasestats -from-metrics printed no dist.shard series"
echo "shard-smoke: $victim killed mid-shard, $survivor absorbed it, both tiers hash-identical ($want / $wanteq)"
