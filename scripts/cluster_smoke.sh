#!/bin/sh
# cluster_smoke.sh — distributed-enumeration crash test.
#
# Starts a spaced coordinator plus two fleet workers, fires an
# enumeration, SIGKILLs whichever worker holds the lease mid-space, and
# requires:
#
#   1. the lease expires and the assignment is re-dispatched,
#   2. the surviving worker completes it,
#   3. the served space hashes byte-identical (spacedot -hash,
#      canonical serialization) to what a single-node cmd/explore run
#      writes for the same function,
#   4. the survivor and the coordinator both drain cleanly on SIGTERM.
#
# CLUSTER_FAULTS, when set, is passed to both workers as their fault
# plan (e.g. "httpdrop=2,httpslow=2:100ms" for network chaos — see
# `make chaos`). The coordinator always runs fault-free: the point is
# that client-side faults never change the served bytes.
#
# Needs curl and jq, like serve-smoke.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
coord=""
w1=""
w2=""
cleanup() {
	for pid in $w1 $w2 $coord; do kill -9 "$pid" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
	echo "cluster-smoke: $*" >&2
	echo "--- coordinator log ---" >&2
	cat "$tmp/coord.log" >&2 || true
	echo "--- worker logs ---" >&2
	cat "$tmp/w1.log" "$tmp/w2.log" >&2 2>/dev/null || true
	exit 1
}

stat_counter() { # stat_counter <series-name>
	curl -fsS "http://$addr/v1/stats" | jq -r --arg k "$1" '.counters[$k] // 0'
}

"$GO" build -o "$tmp/explore" ./cmd/explore
"$GO" build -o "$tmp/spacedot" ./cmd/spacedot
"$GO" build -o "$tmp/spaced" ./cmd/spaced

# Single-node reference: the distributed answer must hash identically.
"$tmp/explore" -bench sha -func sha_transform -save "$tmp" >/dev/null
want=$("$tmp/spacedot" -hash "$tmp/sha.sha_transform.space.gz" | cut -d' ' -f1)

# Coordinator with smoke-scale leases: a killed worker is noticed in
# about a second instead of the production default.
REPRO_FAULTS= "$tmp/spaced" -addr 127.0.0.1:0 -cache "$tmp/cache" \
	-ready-file "$tmp/addr" -lease-ttl 1s -poll-wait 250ms \
	-dispatch-attempts 5 -log json 2>"$tmp/coord.log" &
coord=$!
for _ in $(seq 1 100); do [ -s "$tmp/addr" ] && break; sleep 0.1; done
[ -s "$tmp/addr" ] || fail "coordinator never became ready"
addr=$(head -n1 "$tmp/addr")

start_worker() { # start_worker <id>  (sets wpid)
	REPRO_FAULTS= "$tmp/spaced" -worker -join "http://$addr" \
		-worker-id "$1" -workers 1 -scratch "$tmp/$1" \
		${CLUSTER_FAULTS:+-faults "$CLUSTER_FAULTS"} \
		-log json >/dev/null 2>"$tmp/$1.log" &
	wpid=$!
}
start_worker w1; w1=$wpid
start_worker w2; w2=$wpid
for _ in $(seq 1 100); do
	[ "$(curl -fsS "http://$addr/v1/stats" | jq -r '.fleet.workers_live // 0')" = 2 ] && break
	sleep 0.1
done
[ "$(curl -fsS "http://$addr/v1/stats" | jq -r '.fleet.workers_live // 0')" = 2 ] \
	|| fail "two workers never registered"

curl -fsS -d '{"bench":"sha","func":"sha_transform"}' \
	"http://$addr/v1/enumerate" -o "$tmp/r1.json" &
req=$!

# Find the lessee, give it a heartbeat or two to upload a progress
# checkpoint, then kill it without a goodbye.
victim=""
for _ in $(seq 1 200); do
	victim=$(curl -fsS "http://$addr/v1/stats" \
		| jq -r '.fleet.workers[]? | select(.assignments > 0) | .id' | head -n1)
	[ -n "$victim" ] && break
	sleep 0.05
done
[ -n "$victim" ] || fail "assignment never dispatched"
sleep 0.6
if [ "$victim" = w1 ]; then vpid=$w1; survivor=w2; else vpid=$w2; survivor=w1; fi
kill -9 "$vpid"
echo "cluster-smoke: SIGKILLed $victim mid-space; expecting $survivor to recover"

wait "$req" || fail "enumerate request failed"
got=$(jq -r .space_hash "$tmp/r1.json")
[ "$got" = "$want" ] || fail "recovered hash $got, single-node run wrote $want"

# The kill really landed mid-space: the victim's lease expired and the
# survivor delivered the completion.
exp=$(stat_counter "dist.lease_expiries{worker=\"$victim\"}")
[ "$exp" -ge 1 ] || fail "no lease expiry for $victim; kill landed after completion?"
done_n=$(stat_counter "dist.completions{worker=\"$survivor\"}")
[ "$done_n" -ge 1 ] || fail "survivor $survivor never completed the assignment"

# Byte identity of what the coordinator serves from its cache.
key=$(jq -r .key "$tmp/r1.json")
curl -fsS "http://$addr/v1/space/$key" -o "$tmp/served.space.gz"
served=$("$tmp/spacedot" -hash "$tmp/served.space.gz" | cut -d' ' -f1)
[ "$served" = "$want" ] || fail "served space hashes $served, want $want"

# Clean drains: survivor first, then the coordinator.
if [ "$survivor" = w1 ]; then spid=$w1; else spid=$w2; fi
kill -TERM "$spid"
wait "$spid" || fail "surviving worker did not drain cleanly"
w1=""; w2=""
kill -9 "$vpid" 2>/dev/null || true
kill -TERM "$coord"
wait "$coord" || fail "coordinator did not drain cleanly"
coord=""
echo "cluster-smoke: $victim killed, $survivor recovered, hash parity holds ($want)"
