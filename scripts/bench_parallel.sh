#!/bin/sh
# bench_parallel.sh — scaling sweep for the parallel enumeration engine.
#
# Runs BenchmarkSearchRun/bmh_search at GOMAXPROCS 1/2/4/8/16 (the
# benchmark's Workers follows GOMAXPROCS, so `go test -cpu` sweeps the
# engine width), takes the median of $COUNT runs per width, collects the
# striped-index contention counters from an instrumented explore run at
# the widest setting, asserts byte-identical spaces across widths
# (spacedot -hash on explore -search-workers 1/4/16 outputs), and writes
# the whole table to the JSON file named by $1 (default
# BENCH_parallel.json).
#
# Speedups are measured against whatever hardware this runs on —
# host_cpus in the output records how many CPUs were actually available,
# so a 16-wide row on a 1-CPU container is an oversubscription datapoint,
# not a parallelism one. Needs jq.
set -eu

GO=${GO:-go}
OUT=${1:-BENCH_parallel.json}
COUNT=${COUNT:-3}
WIDTHS="1 2 4 8 16"
PARITY_WIDTHS="1 4 16"
BENCH=BenchmarkSearchRun/bmh_search

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "bench-parallel: $BENCH at -cpu $(echo $WIDTHS | tr ' ' ','), count=$COUNT" >&2
$GO test -run '^$' -bench "$BENCH" -benchtime 1x -count "$COUNT" \
	-cpu "$(echo $WIDTHS | tr ' ' ',')" . | tee "$tmp/bench.txt" >&2

# median <width> <field-suffix>: middle value of the per-run samples for
# one width. Go appends "-N" to the benchmark name except at
# GOMAXPROCS=1.
median() {
	awk -v w="$1" -v unit="$2" '
		$1 == "BenchmarkSearchRun/bmh_search" && w == 1 ||
		$1 == ("BenchmarkSearchRun/bmh_search-" w) {
			for (i = 2; i < NF; i++) if ($(i+1) == unit) print $i
		}
	' "$tmp/bench.txt" | sort -n | awk '
		{ a[NR] = $1 }
		END { if (NR == 0) { print 0 } else { print a[int((NR + 1) / 2)] } }
	'
}

# Byte-identity across widths: the acceptance gate. Enumerate the same
# function at several -search-workers settings and require identical
# canonical hashes. The 16-wide run doubles as the contention probe via
# its metrics snapshot.
$GO build -o "$tmp/explore" ./cmd/explore
$GO build -o "$tmp/spacedot" ./cmd/spacedot
want=""
for w in $PARITY_WIDTHS; do
	mkdir -p "$tmp/w$w"
	metrics=""
	if [ "$w" = 16 ]; then metrics="-metrics $tmp/metrics.json"; fi
	"$tmp/explore" -bench stringsearch -func bmh_search \
		-search-workers "$w" -save "$tmp/w$w" $metrics >/dev/null
	h=$("$tmp/spacedot" -hash "$tmp/w$w/stringsearch.bmh_search.space.gz" | cut -d' ' -f1)
	if [ -z "$want" ]; then
		want=$h
	elif [ "$h" != "$want" ]; then
		echo "bench-parallel: space at -search-workers $w hashes $h, width 1 gave $want" >&2
		exit 1
	fi
done
echo "bench-parallel: spaces byte-identical across widths $PARITY_WIDTHS ($want)" >&2

# The stripe counters must both exist and show up in the phasestats
# rollup (this is the smoke for the -from-metrics breakdown).
$GO run ./cmd/phasestats -from-metrics "$tmp/metrics.json" \
	-require search.index.probes,search.index.stripe.acquisitions >&2

counter() {
	jq -r --arg k "$1" '.counters[$k] // 0' "$tmp/metrics.json"
}

base=$(median 1 ns/op)
{
	printf '{\n'
	printf '  "description": "BenchmarkSearchRun/bmh_search medians (%s runs per width, -benchtime 1x) across GOMAXPROCS sweeps; Workers follows GOMAXPROCS. stripe counters from an instrumented explore run at -search-workers 16. hash_parity asserts the enumerated space is byte-identical at every width. Regenerate on a multi-core host for a meaningful scaling column: speedup_vs_1 on a machine with fewer CPUs than the width measures oversubscription overhead, not parallel speedup.",\n' "$COUNT"
	printf '  "go": "%s",\n' "$($GO env GOVERSION)"
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
	printf '  "host_cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "command": "go test -run ^$ -bench BenchmarkSearchRun/bmh_search -benchtime 1x -count %s -cpu %s .",\n' "$COUNT" "$(echo $WIDTHS | tr ' ' ',')"
	printf '  "widths": [\n'
	first=1
	for w in $WIDTHS; do
		ns=$(median "$w" ns/op)
		att=$(median "$w" attempts/op)
		[ "$first" = 1 ] || printf ',\n'
		first=0
		printf '    {"gomaxprocs": %s, "median_ns_per_op": %s, "attempts_per_op": %s, "speedup_vs_1": %s}' \
			"$w" "$ns" "$att" \
			"$(awk -v b="$base" -v n="$ns" 'BEGIN { if (n > 0) printf "%.2f", b / n; else printf "0" }')"
	done
	printf '\n  ],\n'
	printf '  "stripe_counters": {\n'
	printf '    "acquisitions": %s,\n' "$(counter search.index.stripe.acquisitions)"
	printf '    "contended": %s,\n' "$(counter search.index.stripe.contended)"
	printf '    "probes": %s,\n' "$(counter search.index.probes)"
	printf '    "byte_compares": %s,\n' "$(counter search.index.bytecompares)"
	printf '    "fp_collisions": %s\n' "$(counter search.index.fpcollisions)"
	printf '  },\n'
	printf '  "hash_parity": {"search_workers": [%s], "hash": "%s", "identical": true}\n' \
		"$(echo $PARITY_WIDTHS | tr ' ' ',')" "$want"
	printf '}\n'
} >"$OUT"
echo "bench-parallel: wrote $OUT" >&2
