// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation. Each benchmark prints or measures the
// artifact named in its comment; EXPERIMENTS.md records the outputs of
// a full run next to the paper's numbers.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The heavyweight exhaustive enumerations (full Table 3) live behind
// the cmd/explore tool; the benchmarks here use bounded searches so a
// full -bench=. pass finishes in minutes.
package repro

import (
	"fmt"
	bigint "math/big"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/genetic"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mibench"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/search"
)

// benchFunc compiles one benchmark function fresh for each use.
func benchFunc(b *testing.B, bench, fn string) *rtl.Func {
	b.Helper()
	p, err := mibench.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := p.Compile()
	if err != nil {
		b.Fatal(err)
	}
	f := prog.Func(fn)
	if f == nil {
		b.Fatalf("no function %s in %s", fn, bench)
	}
	return f
}

// table3Cases is a representative slice of the corpus: small, medium
// and loop-heavy functions whose full spaces enumerate quickly. The
// complete Table 3 comes from cmd/explore.
var table3Cases = []struct{ bench, fn string }{
	{"bitcount", "bit_count"},
	{"bitcount", "ntbl_bitcnt"},
	{"dijkstra", "enqueue"},
	{"fft", "fix_sin"},
	{"sha", "rotl"},
	{"stringsearch", "bmh_search"},
	{"jpeg", "get_code"},
}

// BenchmarkSearchRun measures end-to-end exhaustive enumeration
// throughput on the representative corpus: the denominator of every
// feasibility claim in the paper. Allocations are reported because the
// enumeration is memory-bound at scale — the two-tier identical-
// instance index and the clone pool exist to keep this benchmark's
// bytes/op flat as spaces grow. attempts/op is the work actually done,
// so ns/op ÷ attempts/op is the per-attempt cost tracked in
// BENCH_search.json.
//
// Workers follows GOMAXPROCS, so `go test -cpu 1,2,4,8,16 -bench
// SearchRun` sweeps the parallel engine's scaling in one invocation —
// scripts/bench_parallel.sh turns that sweep into BENCH_parallel.json.
// The enumerated space is byte-identical at every width.
func BenchmarkSearchRun(b *testing.B) {
	for _, c := range table3Cases {
		c := c
		b.Run(c.fn, func(b *testing.B) {
			f := benchFunc(b, c.bench, c.fn)
			b.ReportAllocs()
			var attempts, nodes int
			for i := 0; i < b.N; i++ {
				r := search.Run(f, search.Options{Workers: runtime.GOMAXPROCS(0)})
				attempts = r.AttemptedPhases
				nodes = len(r.Nodes)
			}
			b.ReportMetric(float64(attempts), "attempts/op")
			b.ReportMetric(float64(nodes), "instances")
		})
	}
}

// BenchmarkTable3Enumerate regenerates Table 3 rows: one exhaustive
// phase order space enumeration per iteration. Reported metrics are
// the row's key statistics.
func BenchmarkTable3Enumerate(b *testing.B) {
	for _, c := range table3Cases {
		c := c
		b.Run(c.fn, func(b *testing.B) {
			f := benchFunc(b, c.bench, c.fn)
			var st search.Stats
			for i := 0; i < b.N; i++ {
				r := search.Run(f, search.Options{MaxNodes: 200000})
				st = search.ComputeStats(r)
			}
			b.ReportMetric(float64(st.FnInstances), "instances")
			b.ReportMetric(float64(st.AttemptedPhases), "attempted")
			b.ReportMetric(float64(st.MaxActiveLen), "maxlen")
			b.ReportMetric(st.PctDiff, "codesize-%diff")
		})
	}
}

// enumerateOnce caches one enumerated space for the analysis
// benchmarks.
var cachedSpace *search.Result

func space(b *testing.B) *search.Result {
	b.Helper()
	if cachedSpace == nil {
		f := benchFunc(b, "bitcount", "bit_count")
		cachedSpace = search.Run(f, search.Options{})
	}
	return cachedSpace
}

// BenchmarkTable4Enabling regenerates the enabling-probability matrix
// of Table 4 from an enumerated space.
func BenchmarkTable4Enabling(b *testing.B) {
	r := space(b)
	b.ResetTimer()
	var m [][]float64
	for i := 0; i < b.N; i++ {
		x := analysis.NewInteractions()
		x.Accumulate(r)
		m = x.Enabling()
	}
	reportNonzero(b, m)
}

// BenchmarkTable5Disabling regenerates the disabling-probability
// matrix of Table 5.
func BenchmarkTable5Disabling(b *testing.B) {
	r := space(b)
	b.ResetTimer()
	var m [][]float64
	for i := 0; i < b.N; i++ {
		x := analysis.NewInteractions()
		x.Accumulate(r)
		m = x.Disabling()
	}
	reportNonzero(b, m)
}

// BenchmarkTable6Independence regenerates the independence matrix of
// Table 6.
func BenchmarkTable6Independence(b *testing.B) {
	r := space(b)
	b.ResetTimer()
	var m [][]float64
	for i := 0; i < b.N; i++ {
		x := analysis.NewInteractions()
		x.Accumulate(r)
		m = x.Independence()
	}
	reportNonzero(b, m)
}

func reportNonzero(b *testing.B, m [][]float64) {
	n := 0
	for _, row := range m {
		for _, v := range row {
			if v > 0 {
				n++
			}
		}
	}
	b.ReportMetric(float64(n), "nonzero-cells")
}

// BenchmarkTable7Batch measures the old batch compiler over the whole
// suite: the left half of Table 7.
func BenchmarkTable7Batch(b *testing.B) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		b.Fatal(err)
	}
	d := machine.StrongARM()
	var attempted, active int
	for i := 0; i < b.N; i++ {
		attempted, active = 0, 0
		for _, tf := range funcs {
			f := tf.Func.Clone()
			res := driver.Batch(f, d)
			attempted += res.Attempted
			active += res.Active
		}
	}
	b.ReportMetric(float64(attempted)/float64(len(funcs)), "attempted/func")
	b.ReportMetric(float64(active)/float64(len(funcs)), "active/func")
}

// table7Probs mines probabilities once for the Table 7 benchmarks.
var table7Probs *driver.Probabilities

func probsFor(b *testing.B) *driver.Probabilities {
	b.Helper()
	if table7Probs == nil {
		x := analysis.NewInteractions()
		x.Accumulate(space(b))
		f := benchFunc(b, "sha", "rotl")
		x.Accumulate(search.Run(f, search.Options{}))
		table7Probs = driver.FromInteractions(x)
	}
	return table7Probs
}

// BenchmarkTable7Probabilistic measures the Figure 8 probabilistic
// compiler over the whole suite: the right half of Table 7. Comparing
// its attempted/func and ns/op against BenchmarkTable7Batch gives the
// paper's headline compile-time ratio.
func BenchmarkTable7Probabilistic(b *testing.B) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		b.Fatal(err)
	}
	probs := probsFor(b)
	d := machine.StrongARM()
	b.ResetTimer()
	var attempted, active int
	for i := 0; i < b.N; i++ {
		attempted, active = 0, 0
		for _, tf := range funcs {
			f := tf.Func.Clone()
			res := driver.Probabilistic(f, d, probs)
			attempted += res.Attempted
			active += res.Active
		}
	}
	b.ReportMetric(float64(attempted)/float64(len(funcs)), "attempted/func")
	b.ReportMetric(float64(active)/float64(len(funcs)), "active/func")
}

// BenchmarkFig1NaiveSpace evaluates the naive attempted-space size of
// Figure 1 (and the 15^32 worst case quoted in the introduction).
func BenchmarkFig1NaiveSpace(b *testing.B) {
	var digits int
	for i := 0; i < b.N; i++ {
		digits = len(search.NaiveSpaceSize(15, 32).String())
	}
	b.ReportMetric(float64(digits), "digits")
}

// BenchmarkFig2DormantPruning counts the dormant-pruned search tree of
// Figure 2 to depth 4 and reports how far below the naive 15^1..15^4
// space it falls.
func BenchmarkFig2DormantPruning(b *testing.B) {
	f := benchFunc(b, "bitcount", "bit_count")
	var pruned *bigint.Int
	for i := 0; i < b.N; i++ {
		pruned = search.DormantPrunedCount(f, 4, search.Options{})
	}
	prunedF, _ := new(bigint.Float).SetInt(pruned).Float64()
	naiveF, _ := new(bigint.Float).SetInt(search.NaiveSpaceTotal(15, 4)).Float64()
	b.ReportMetric(prunedF, "pruned-tree-nodes")
	b.ReportMetric(naiveF, "naive-sequences")
}

// BenchmarkFig4DAGCollapse enumerates a space and reports the collapse
// from attempted sequences to distinct instances — the tree-to-DAG
// effect of Figure 4.
func BenchmarkFig4DAGCollapse(b *testing.B) {
	f := benchFunc(b, "bitcount", "bit_count")
	var r *search.Result
	for i := 0; i < b.N; i++ {
		r = search.Run(f, search.Options{})
	}
	b.ReportMetric(float64(r.AttemptedPhases), "attempted")
	b.ReportMetric(float64(len(r.Nodes)), "instances")
	b.ReportMetric(float64(r.AttemptedPhases)/float64(len(r.Nodes)), "collapse-factor")
}

// BenchmarkFig6PrefixSharing compares the naive sequence evaluation of
// Figure 6(a) — reload the unoptimized function and replay the whole
// prefix for every evaluation — against the in-memory prefix-sharing
// evaluation of Figure 6(b). The paper reports the enhancements win a
// factor of 5 to 10.
func BenchmarkFig6PrefixSharing(b *testing.B) {
	f := benchFunc(b, "bitcount", "bit_count")
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			search.Run(f, search.Options{NaiveReplay: true})
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			search.Run(f, search.Options{})
		}
	})
}

// BenchmarkInterpreter measures the RTL interpreter on a whole
// benchmark program, the substrate for Table 7's dynamic counts.
func BenchmarkInterpreter(b *testing.B) {
	for _, name := range []string{"bitcount", "sha", "stringsearch"} {
		name := name
		b.Run(name, func(b *testing.B) {
			p, err := mibench.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			prog, err := p.Compile()
			if err != nil {
				b.Fatal(err)
			}
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := interp.Run(prog, p.Driver, p.DriverArgs...)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "dyn-instrs")
		})
	}
}

// BenchmarkAblationWorkers measures the search's worker scaling — the
// design choice of evaluating a level's attempts on a pool.
func BenchmarkAblationWorkers(b *testing.B) {
	f := benchFunc(b, "dijkstra", "enqueue")
	for _, w := range []int{1, 2, 4, 8, 16} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				search.Run(f, search.Options{Workers: w})
			}
		})
	}
}

// BenchmarkAblationPhaseCost profiles each phase's standalone cost on
// a mid-sized function (with register assignment included on first
// use), explaining where enumeration time goes.
func BenchmarkAblationPhaseCost(b *testing.B) {
	base := benchFunc(b, "stringsearch", "bmh_search")
	d := machine.StrongARM()
	for _, p := range opt.All() {
		p := p
		b.Run(string(p.ID()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := base.Clone()
				st := opt.State{SApplied: true, KApplied: true}
				opt.Attempt(f, &st, p, d)
			}
		})
	}
}

// BenchmarkBatchCompile measures end-to-end batch compilation of one
// whole program.
func BenchmarkBatchCompile(b *testing.B) {
	p, err := mibench.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	d := machine.StrongARM()
	for i := 0; i < b.N; i++ {
		prog, err := p.Compile()
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range prog.Funcs {
			driver.Batch(f, d)
		}
	}
}

// batchOrders are alternative fixed phase orders for the ablation: the
// paper's premise is that no single order suits every function, so
// different fixed orders should land on measurably different code.
var batchOrders = map[string][]byte{
	"default":        nil, // driver.BatchOrder
	"selection-last": {'o', 'b', 'c', 'k', 'h', 'l', 'q', 'g', 'n', 'i', 'j', 'r', 'u', 's'},
	"cf-first":       {'o', 'b', 'i', 'j', 'r', 'u', 's', 'c', 'k', 'h', 'l', 'q', 'g', 'n'},
	"loops-early":    {'o', 's', 'k', 'l', 'g', 'j', 'b', 'c', 'h', 'q', 'n', 'i', 'r', 'u'},
}

// BenchmarkAblationBatchOrder measures total suite code size under
// alternative fixed phase orders — the premise of the whole paper
// (Section 1: "a single order of optimization phases does not produce
// optimal code for every application").
func BenchmarkAblationBatchOrder(b *testing.B) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		b.Fatal(err)
	}
	d := machine.StrongARM()
	for name, order := range batchOrders {
		name, order := name, order
		b.Run(name, func(b *testing.B) {
			saved := driver.BatchOrder
			if order != nil {
				driver.BatchOrder = order
			}
			defer func() { driver.BatchOrder = saved }()
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, tf := range funcs {
					f := tf.Func.Clone()
					driver.Optimize(f, d)
					total += f.NumInstrs()
				}
			}
			b.ReportMetric(float64(total), "total-code-size")
		})
	}
}

// BenchmarkAblationIndependencePruning measures the Section 7
// independence-based pruning against the exact search on one function.
func BenchmarkAblationIndependencePruning(b *testing.B) {
	f := benchFunc(b, "bitcount", "bit_count")
	exact := search.Run(f, search.Options{})
	x := analysis.NewInteractions()
	x.Accumulate(exact)
	b.Run("exact", func(b *testing.B) {
		var attempts int
		for i := 0; i < b.N; i++ {
			r := search.Run(f, search.Options{})
			attempts = r.AttemptedPhases
		}
		b.ReportMetric(float64(attempts), "attempts")
	})
	b.Run("pruned", func(b *testing.B) {
		var attempts, skipped int
		for i := 0; i < b.N; i++ {
			r, ps := search.RunWithIndependencePruning(f, search.Options{}, x, 1.0)
			attempts, skipped = r.AttemptedPhases, ps.Skipped
		}
		b.ReportMetric(float64(attempts), "attempts")
		b.ReportMetric(float64(skipped), "diamonds-completed")
	})
}

// BenchmarkGeneticSearch measures the GA (plain and probability-biased)
// on a function whose optimum the exhaustive search knows.
func BenchmarkGeneticSearch(b *testing.B) {
	f := benchFunc(b, "bitcount", "bit_count")
	exact := search.Run(f, search.Options{})
	x := analysis.NewInteractions()
	x.Accumulate(exact)
	probs := driver.FromInteractions(x)
	optimum := float64(exact.OptimalCodeSize().NumInstrs)
	b.Run("plain", func(b *testing.B) {
		var gap float64
		for i := 0; i < b.N; i++ {
			res := genetic.Search(f, genetic.Options{Generations: 25, Seed: int64(i)})
			gap = res.BestFitness - optimum
		}
		b.ReportMetric(gap, "gap-from-optimum")
	})
	b.Run("biased", func(b *testing.B) {
		var gap float64
		for i := 0; i < b.N; i++ {
			res := genetic.Search(f, genetic.Options{Generations: 25, Seed: int64(i), Probabilities: probs})
			gap = res.BestFitness - optimum
		}
		b.ReportMetric(gap, "gap-from-optimum")
	})
}
