// Gasearch: the paper's Section 7 future-work idea made concrete — a
// genetic algorithm search over phase sequences, optionally biased by
// the enabling probabilities mined from exhaustive enumeration, and
// graded against the true optimum the exhaustive space provides.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/genetic"
	"repro/internal/mc"
	"repro/internal/search"
)

const src = `
int a[16] = {5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`

func main() {
	prog, err := mc.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	f := prog.Func("sum")

	// Ground truth: exhaustively enumerate the space.
	exhaustive := search.Run(f, search.Options{})
	optimum := exhaustive.OptimalCodeSize()
	fmt.Printf("exhaustive: %d instances, optimal code size %d (seq %q)\n",
		len(exhaustive.Nodes), optimum.NumInstrs, optimum.Seq)

	// Unbiased GA.
	plain := genetic.Search(f, genetic.Options{Generations: 40, Seed: 42})
	fmt.Printf("plain GA:   best %d after %d evaluations (%d cache hits), active seq %q\n",
		int(plain.BestFitness), plain.Evaluations, plain.CacheHits, plain.BestActive)

	// GA with mutation biased by the mined enabling probabilities.
	x := analysis.NewInteractions()
	x.Accumulate(exhaustive)
	probs := driver.FromInteractions(x)
	biased := genetic.Search(f, genetic.Options{Generations: 40, Seed: 42, Probabilities: probs})
	fmt.Printf("biased GA:  best %d after %d evaluations (%d cache hits), active seq %q\n",
		int(biased.BestFitness), biased.Evaluations, biased.CacheHits, biased.BestActive)

	gap := func(v float64) float64 {
		return 100 * (v - float64(optimum.NumInstrs)) / float64(optimum.NumInstrs)
	}
	fmt.Printf("\ndistance from the provable optimum: plain %.1f%%, biased %.1f%%\n",
		gap(plain.BestFitness), gap(biased.BestFitness))
}
