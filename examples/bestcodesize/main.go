// Bestcodesize: use the exhaustive phase order space to find the
// provably minimal code size for benchmark functions, and measure how
// far the conventional batch compiler's fixed phase order falls short
// — the "best vs worst phase ordering" gap of Table 3 (37.8% between
// leaf extremes on average in the paper) seen from a user's
// perspective.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mibench"
	"repro/internal/search"
)

func main() {
	d := machine.StrongARM()
	funcs, err := mibench.AllFunctions()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %6s %8s %8s %9s %9s %8s\n",
		"function", "unopt", "batch", "optimal", "bestleaf", "worstleaf", "gap")
	for _, tf := range funcs {
		// Bound the per-function search so the example stays quick.
		r := search.Run(tf.Func, search.Options{
			MaxNodes: 8000,
			Timeout:  10 * time.Second,
		})
		if r.Aborted {
			fmt.Printf("%-18s %6d %8s\n", tf.Func.Name, tf.Func.NumInstrs(), "(space too big for this example)")
			continue
		}
		var best, worst int
		for _, n := range r.Leaves() {
			if best == 0 || n.NumInstrs < best {
				best = n.NumInstrs
			}
			if n.NumInstrs > worst {
				worst = n.NumInstrs
			}
		}
		optimal := r.OptimalCodeSize().NumInstrs

		batch := tf.Func.Clone()
		driver.Optimize(batch, d) // no entry/exit fixup: leaf sizes are pre-fixup too

		gap := 0.0
		if best > 0 {
			gap = 100 * float64(worst-best) / float64(best)
		}
		fmt.Printf("%-18s %6d %8d %8d %9d %9d %7.1f%%\n",
			tf.Func.Name, tf.Func.NumInstrs(), batch.NumInstrs(), optimal, best, worst, gap)
	}
}
