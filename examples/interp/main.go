// Interp: compile a mini-C program, execute it on the RTL interpreter
// at -O0 and after batch optimization, and compare the dynamic
// instruction counts — the execution-efficiency metric the paper uses
// for Table 7's speed column.
package main

import (
	"fmt"
	"log"

	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mc"
)

const src = `
int primes[32];

/* Sieve of Eratosthenes over the first n integers; traces each prime. */
int sieve(int n) {
    int composite[100];
    int i;
    int j;
    int count = 0;
    if (n > 100) n = 100;
    for (i = 0; i < n; i++) composite[i] = 0;
    for (i = 2; i < n; i++) {
        if (!composite[i]) {
            if (count < 32) primes[count] = i;
            count++;
            __trace(i);
            for (j = i * i; j < n; j += i) composite[j] = 1;
        }
    }
    return count;
}`

func main() {
	prog, err := mc.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Unoptimized execution.
	r0, err := interp.Run(prog, "sieve", 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-O0:   %2d primes below 50, %6d instructions executed, %3d static instructions\n",
		r0.Ret, r0.Steps, prog.Func("sieve").NumInstrs())

	// Batch-optimized execution of the same program.
	opt := prog.Clone()
	d := machine.StrongARM()
	res := driver.Batch(opt.Func("sieve"), d)
	r1, err := interp.Run(opt, "sieve", 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %2d primes below 50, %6d instructions executed, %3d static instructions\n",
		r1.Ret, r1.Steps, opt.Func("sieve").NumInstrs())
	fmt.Printf("\nbatch compiler: %d phases attempted, %d active (%s)\n",
		res.Attempted, res.Active, res.Seq)
	fmt.Printf("dynamic count ratio optimized/unoptimized: %.3f\n",
		float64(r1.Steps)/float64(r0.Steps))
	fmt.Printf("primes: %v\n", r1.Trace)

	if r0.Ret != r1.Ret || len(r0.Trace) != len(r1.Trace) {
		log.Fatal("optimization changed program behaviour!")
	}
}
