// Probabilistic: mine phase interaction probabilities from a few
// exhaustively enumerated functions, then compile the whole benchmark
// suite with the Figure 8 probabilistic compiler and compare it
// against the conventional batch compiler — Section 6 of the paper in
// miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mibench"
	"repro/internal/search"
)

func main() {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Mine the enabling/disabling probabilities from small spaces.
	fmt.Println("mining phase interaction probabilities...")
	x := analysis.NewInteractions()
	mined := 0
	for _, tf := range funcs {
		r := search.Run(tf.Func, search.Options{
			MaxNodes: 3000,
			Timeout:  5 * time.Second,
		})
		if r.Aborted {
			continue
		}
		x.Accumulate(r)
		mined++
	}
	fmt.Printf("  %d function spaces mined\n\n", mined)
	probs := driver.FromInteractions(x)

	// 2. Compile every function both ways.
	d := machine.StrongARM()
	var oldAtt, probAtt, oldSize, probSize int
	var oldTime, probTime time.Duration
	n := 0
	for _, tf := range funcs {
		old := tf.Func.Clone()
		ores := driver.Batch(old, d)
		prb := tf.Func.Clone()
		pres := driver.Probabilistic(prb, d, probs)

		oldAtt += ores.Attempted
		probAtt += pres.Attempted
		oldTime += ores.Elapsed
		probTime += pres.Elapsed
		oldSize += old.NumInstrs()
		probSize += prb.NumInstrs()
		n++
	}

	fmt.Printf("over %d functions:\n", n)
	fmt.Printf("  attempted phases  batch %4d   probabilistic %4d   (x%.2f fewer)\n",
		oldAtt, probAtt, float64(oldAtt)/float64(probAtt))
	fmt.Printf("  compile time      batch %-8s probabilistic %-8s (ratio %.3f)\n",
		oldTime.Round(time.Microsecond), probTime.Round(time.Microsecond),
		float64(probTime)/float64(oldTime))
	fmt.Printf("  total code size   batch %4d   probabilistic %4d   (ratio %.3f)\n",
		oldSize, probSize, float64(probSize)/float64(oldSize))
}
