// Quickstart: compile a small function, exhaustively enumerate its
// optimization phase order space, and inspect the result — the
// end-to-end flow of the paper in a dozen lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/mc"
	"repro/internal/search"
)

const src = `
int a[16] = {5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`

func main() {
	// 1. Compile mini-C to unoptimized RTL.
	prog, err := mc.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	f := prog.Func("sum")
	fmt.Printf("unoptimized sum: %d instructions\n\n", f.NumInstrs())

	// 2. Exhaustively enumerate every function instance reachable by
	// any ordering of the fifteen optimization phases.
	r := search.Run(f, search.Options{KeepFuncs: true})
	st := search.ComputeStats(r)
	fmt.Println(search.TableHeader())
	fmt.Println(st.TableRow())

	// 3. The space is a DAG: distinct instances per level.
	fmt.Printf("\ninstances per active-sequence length: %v\n", search.NodesPerLevel(r))

	// 4. Because the space is exhaustive, the best reachable code size
	// is provably optimal for this compiler.
	best := r.OptimalCodeSize()
	fmt.Printf("\noptimal code size %d instructions, first reached by sequence %q:\n\n%s",
		best.NumInstrs, best.Seq, r.Instance(best))
}
