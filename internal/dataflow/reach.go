package dataflow

import (
	"math/bits"

	"repro/internal/rtl"
)

// Bits is a dense bitset over definition IDs.
type Bits struct {
	w []uint64
}

func newBits(n int) Bits { return Bits{w: make([]uint64, (n+63)/64)} }

// Has reports whether id is in the set.
func (b Bits) Has(id int) bool {
	w := id / 64
	return w < len(b.w) && b.w[w]&(1<<(uint(id)%64)) != 0
}

// Add inserts id (which must be below the set's capacity).
func (b *Bits) Add(id int) { b.w[id/64] |= 1 << (uint(id) % 64) }

func (b *Bits) unionWith(t Bits) {
	for i, w := range t.w {
		b.w[i] |= w
	}
}

func (b *Bits) andNotWith(t Bits) {
	for i, w := range t.w {
		b.w[i] &^= w
	}
}

func (b Bits) equal(t Bits) bool {
	for i, w := range t.w {
		if b.w[i] != w {
			return false
		}
	}
	return true
}

func (b Bits) clone() Bits { return Bits{w: append([]uint64(nil), b.w...)} }

// ForEach invokes fn for every id in the set in increasing order.
func (b Bits) ForEach(fn func(id int)) {
	for i, w := range b.w {
		for w != 0 {
			fn(i*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// DefSite identifies one static definition of a register: instruction
// Instr of the block at layout position Block writes Reg. Synthetic
// function-entry definitions (parameters, the stack pointer) use
// Block = -1, Instr = -1.
type DefSite struct {
	Block int
	Instr int
	Reg   rtl.Reg
}

// IsEntry reports whether the definition is a synthetic
// function-entry one.
func (d DefSite) IsEntry() bool { return d.Block < 0 }

// ReachingDefs is the solution of the classic reaching-definitions
// problem: for every block boundary, the set of definitions (DefSite
// IDs) that may reach it along some path.
type ReachingDefs struct {
	// Defs lists every definition site; a definition's ID is its
	// index here.
	Defs []DefSite
	// In and Out are the per-block reaching sets, indexed by layout
	// position.
	In, Out []Bits

	g       *rtl.CFG
	defsOf  map[rtl.Reg][]int
	gen     []Bits // per-block downward-exposed definitions
	kill    []Bits // per-block killed definitions
	firstID []int  // per-block ID of the first contained definition
}

// ComputeReachingDefs solves reaching definitions over g. The entry
// registers are modeled as synthetic definitions at function entry,
// so a use reached only by an entry definition is "defined at entry",
// and a use reached by no definition at all is uninitialized on every
// path.
func ComputeReachingDefs(g *rtl.CFG, entry []rtl.Reg) *ReachingDefs {
	f := g.F
	rd := &ReachingDefs{g: g, defsOf: make(map[rtl.Reg][]int)}
	addDef := func(d DefSite) int {
		id := len(rd.Defs)
		rd.Defs = append(rd.Defs, d)
		rd.defsOf[d.Reg] = append(rd.defsOf[d.Reg], id)
		return id
	}
	entryIDs := make([]int, 0, len(entry))
	for _, r := range entry {
		entryIDs = append(entryIDs, addDef(DefSite{Block: -1, Instr: -1, Reg: r}))
	}
	// First pass assigns IDs in layout order so gen/kill sets can be
	// sized before they are filled.
	var buf [8]rtl.Reg
	rd.firstID = make([]int, len(f.Blocks))
	for bpos, b := range f.Blocks {
		rd.firstID[bpos] = len(rd.Defs)
		for i := range b.Instrs {
			for _, r := range b.Instrs[i].Defs(buf[:0]) {
				addDef(DefSite{Block: bpos, Instr: i, Reg: r})
			}
		}
	}
	nd := len(rd.Defs)
	rd.gen = make([]Bits, len(f.Blocks))
	rd.kill = make([]Bits, len(f.Blocks))
	for bpos, b := range f.Blocks {
		gen := newBits(nd)
		kill := newBits(nd)
		id := rd.firstID[bpos]
		last := make(map[rtl.Reg]int)
		for i := range b.Instrs {
			for _, r := range b.Instrs[i].Defs(buf[:0]) {
				for _, k := range rd.defsOf[r] {
					kill.Add(k)
				}
				last[r] = id
				id++
			}
		}
		for _, d := range last {
			gen.Add(d)
		}
		rd.gen[bpos], rd.kill[bpos] = gen, kill
	}
	facts := Solve(g, Spec[Bits]{
		Dir: Forward,
		Top: func() Bits { return newBits(nd) },
		Boundary: func() Bits {
			b := newBits(nd)
			for _, id := range entryIDs {
				b.Add(id)
			}
			return b
		},
		Meet: func(acc, x Bits) Bits { acc.unionWith(x); return acc },
		Transfer: func(bpos int, in Bits) Bits {
			out := in.clone()
			out.andNotWith(rd.kill[bpos])
			out.unionWith(rd.gen[bpos])
			return out
		},
		Equal: func(a, b Bits) bool { return a.equal(b) },
	})
	rd.In, rd.Out = facts.In, facts.Out
	return rd
}

// ReachingAt returns the IDs of the definitions of register r that
// may reach the program point immediately before instruction idx of
// the block at layout position bpos, appended to out.
func (rd *ReachingDefs) ReachingAt(bpos, idx int, r rtl.Reg, out []int) []int {
	cur := rd.In[bpos].clone()
	b := rd.g.F.Blocks[bpos]
	var buf [8]rtl.Reg
	// Definition IDs within a block are consecutive in scan order;
	// recover them by replaying the prefix.
	id := rd.firstID[bpos]
	for i := 0; i < idx && i < len(b.Instrs); i++ {
		for _, dr := range b.Instrs[i].Defs(buf[:0]) {
			for _, k := range rd.defsOf[dr] {
				if k != id {
					cur.w[k/64] &^= 1 << (uint(k) % 64)
				}
			}
			cur.Add(id)
			id++
		}
	}
	for _, k := range rd.defsOf[r] {
		if cur.Has(k) {
			out = append(out, k)
		}
	}
	return out
}
