package dataflow_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/fingerprint"
	"repro/internal/rtl"
)

func equivKey(t *testing.T, src string) string {
	t.Helper()
	return dataflow.EquivKey(parse(t, src))
}

func TestEquivCommutativeOperands(t *testing.T) {
	// The leading moves pin the first-encounter order of r32/r33, so
	// plain renumbering cannot reconcile the swapped addition — only
	// the value-number operand sort can.
	const addAB = `
f(2):
L0:
	r[32]=r[0];
	r[33]=r[1];
	r[34]=r[32]+r[33];
	RET r[34];
`
	const addBA = `
f(2):
L0:
	r[32]=r[0];
	r[33]=r[1];
	r[34]=r[33]+r[32];
	RET r[34];
`
	a, b := equivKey(t, addAB), equivKey(t, addBA)
	if a != b {
		t.Fatalf("commutative operand order must not split equivalence classes")
	}
	if fingerprint.KeyOf(parse(t, addAB)) == fingerprint.KeyOf(parse(t, addBA)) {
		t.Fatalf("sanity: the identical-instance tier should distinguish the swapped addition")
	}
	c := equivKey(t, `
f(2):
L0:
	r[32]=r[0];
	r[33]=r[1];
	r[34]=r[32]-r[33];
	RET r[34];
`)
	if a == c {
		t.Fatalf("different operators must not merge")
	}
	// Subtraction is NOT commutative: swapping its operands is a
	// different function and must stay distinct.
	d := equivKey(t, `
f(2):
L0:
	r[32]=r[0];
	r[33]=r[1];
	r[34]=r[33]-r[32];
	RET r[34];
`)
	if c == d {
		t.Fatalf("non-commutative operand order must be preserved")
	}
}

func TestEquivRegisterRenaming(t *testing.T) {
	a := equivKey(t, `
f(1):
L0:
	r[40]=r[0]+1;
	r[41]=r[40]*2;
	RET r[41];
`)
	b := equivKey(t, `
f(1):
L0:
	r[90]=r[0]+1;
	r[33]=r[90]*2;
	RET r[33];
`)
	if a != b {
		t.Fatalf("register renaming must not split equivalence classes")
	}
}

func TestEquivJumpVersusFallThrough(t *testing.T) {
	// The same loop, once with an explicit jump to the next block and
	// once falling through: fingerprint considers these different
	// instances (the jump is an instruction), the equivalence tier
	// must not.
	a := equivKey(t, `
f(1):
L0:
	r[32]=0;
	PC=L1;
L1:
	r[32]=r[32]+1;
	IC=r[32]?r[0];
	PC=IC<0,L1;
L2:
	RET r[32];
`)
	b := equivKey(t, `
f(1):
L0:
	r[32]=0;
L1:
	r[32]=r[32]+1;
	IC=r[32]?r[0];
	PC=IC<0,L1;
L2:
	RET r[32];
`)
	if a != b {
		t.Fatalf("explicit jump to the fall-through block must encode like the fall-through")
	}
	if fingerprint.KeyOf(parse(t, `
f(1):
L0:
	r[32]=0;
	PC=L1;
L1:
	r[32]=r[32]+1;
	IC=r[32]?r[0];
	PC=IC<0,L1;
L2:
	RET r[32];
`)) == fingerprint.KeyOf(parse(t, `
f(1):
L0:
	r[32]=0;
L1:
	r[32]=r[32]+1;
	IC=r[32]?r[0];
	PC=IC<0,L1;
L2:
	RET r[32];
`)) {
		t.Fatalf("sanity: the two spellings should be distinct identical-instance keys")
	}
}

func TestEquivForwarderChains(t *testing.T) {
	a := equivKey(t, `
f(1):
L0:
	IC=r[0]?0;
	PC=IC==0,L4;
L1:
	r[32]=1;
	PC=L5;
L4:
	r[32]=2;
L5:
	RET r[32];
`)
	// Same function with a forwarder block interposed on the branch
	// edge.
	b := equivKey(t, `
f(1):
L0:
	IC=r[0]?0;
	PC=IC==0,L9;
L1:
	r[32]=1;
	PC=L5;
L9:
	PC=L4;
L4:
	r[32]=2;
L5:
	RET r[32];
`)
	if a != b {
		t.Fatalf("pure forwarder blocks must resolve away")
	}
}

func TestEquivUnreachableDropped(t *testing.T) {
	a := equivKey(t, `
f(0):
L0:
	PC=L2;
L2:
	RET;
`)
	b := equivKey(t, `
f(0):
L0:
	PC=L2;
L1:
	r[32]=7;
	PC=L2;
L2:
	RET;
`)
	if a != b {
		t.Fatalf("unreachable blocks must not affect the equivalence key")
	}
}

func TestEquivBlockReordering(t *testing.T) {
	f := parse(t, diamondSrc)
	want := dataflow.EquivKey(f)
	for seed := int64(0); seed < 8; seed++ {
		mut := f.Clone()
		shuffleBlocks(mut, rand.New(rand.NewSource(seed)))
		if err := rtl.Validate(mut); err != nil {
			t.Fatalf("seed %d: shuffle broke the function: %v", seed, err)
		}
		if got := dataflow.EquivKey(mut); got != want {
			t.Fatalf("seed %d: block reordering changed the equivalence key\n%s", seed, mut)
		}
	}
}

func TestEquivJumpCycle(t *testing.T) {
	// An inescapable forwarder cycle must encode without panicking,
	// and distinctly from a normal function.
	cyc := equivKey(t, `
f(0):
L0:
	PC=L1;
L1:
	PC=L0;
`)
	ret := equivKey(t, `
f(0):
L0:
	RET;
`)
	if cyc == ret {
		t.Fatalf("a silent infinite loop must not merge with a return")
	}
}

func TestEquivDistinguishesConstants(t *testing.T) {
	a := equivKey(t, "f(0):\nL0:\n\tr[32]=1;\n\tRET r[32];\n")
	b := equivKey(t, "f(0):\nL0:\n\tr[32]=2;\n\tRET r[32];\n")
	if a == b {
		t.Fatalf("different constants must not merge")
	}
}

// shuffleBlocks permutes every block but the entry and repairs
// fall-through semantics: a block whose fall-through successor moved
// away gets an explicit jump (or, after a conditional branch, a
// forwarder block). The result executes identically, which makes it
// the block-reordering leg of the equivalence fuzz target.
func shuffleBlocks(f *rtl.Func, rng *rand.Rand) {
	if len(f.Blocks) <= 2 {
		return
	}
	fall := make(map[int]int) // block ID -> required fall-through block ID
	for i, b := range f.Blocks {
		if i+1 >= len(f.Blocks) {
			break
		}
		last := b.Last()
		if last == nil || !last.Op.IsControl() || last.Op == rtl.OpBranch {
			fall[b.ID] = f.Blocks[i+1].ID
		}
	}
	rest := f.Blocks[1:]
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	for i := 0; i < len(f.Blocks); i++ {
		b := f.Blocks[i]
		target, ok := fall[b.ID]
		if !ok {
			continue
		}
		if i+1 < len(f.Blocks) && f.Blocks[i+1].ID == target {
			continue
		}
		last := b.Last()
		if last != nil && last.Op == rtl.OpBranch {
			nb := &rtl.Block{ID: f.NextBlockID, Instrs: []rtl.Instr{rtl.NewJmp(target)}}
			f.NextBlockID++
			f.InsertBlockAfter(i, nb)
		} else {
			b.Instrs = append(b.Instrs, rtl.NewJmp(target))
		}
	}
}

// permuteRegs applies a random bijection to the registers whose roles
// are not fixed by the calling convention: pseudo registers map to
// pseudo registers and allocatable callee-save hard registers to each
// other, so the result computes the same function.
func permuteRegs(f *rtl.Func, rng *rand.Rand) {
	used := f.UsedRegs()
	var pseudos, saved []rtl.Reg
	for r := range used {
		switch {
		case r.IsPseudo():
			pseudos = append(pseudos, r)
		case r.IsCalleeSave():
			saved = append(saved, r)
		}
	}
	perm := make(map[rtl.Reg]rtl.Reg)
	mix := func(regs []rtl.Reg, span int, base rtl.Reg) {
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		// Map into a shuffled window of the same class, wider than the
		// inputs so names actually move.
		codes := rng.Perm(span)
		for i, r := range regs {
			perm[r] = base + rtl.Reg(codes[i])
		}
	}
	if len(pseudos) > 0 {
		mix(pseudos, len(pseudos)*2+4, rtl.FirstPseudo)
	}
	if len(saved) > 0 {
		mix(saved, 8, 4) // r4..r11
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if n, ok := perm[in.Dst]; ok {
				in.Dst = n
			}
			if in.A.Kind == rtl.OperReg {
				if n, ok := perm[in.A.Reg]; ok {
					in.A.Reg = n
				}
			}
			if in.B.Kind == rtl.OperReg {
				if n, ok := perm[in.B.Reg]; ok {
					in.B.Reg = n
				}
			}
		}
	}
	for r := range perm {
		if r.IsPseudo() {
			if f.NextPseudo <= perm[r] {
				f.NextPseudo = perm[r] + 1
			}
		}
	}
}
