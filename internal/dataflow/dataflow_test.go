package dataflow_test

import (
	"fmt"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/mibench"
	"repro/internal/rtl"
)

func parse(t *testing.T, text string) *rtl.Func {
	t.Helper()
	f, err := rtl.ParseFunc(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// single: one block, immediate return.
const singleSrc = `
single(0):
L0:
	r[32]=1;
	RET;
`

// diamond: L0 branches to L2, falls into L1, both join at L3.
const diamondSrc = `
diamond(1):
L0:
	IC=r[0]?0;
	PC=IC<0,L2;
L1:
	r[32]=r[0]+1;
	PC=L3;
L2:
	r[33]=r[0]+2;
L3:
	RET;
`

// loop: L1 is a self-loop body conditioned on IC.
const loopSrc = `
loop(1):
L0:
	r[32]=0;
L1:
	r[32]=r[32]+1;
	IC=r[32]?r[0];
	PC=IC<0,L1;
L2:
	RET;
`

// unreachable: L1 is never targeted and cannot be fallen into.
const unreachableSrc = `
unreach(0):
L0:
	PC=L2;
L1:
	r[32]=7;
	PC=L2;
L2:
	RET;
`

func TestDomTreeTables(t *testing.T) {
	cases := []struct {
		name string
		src  string
		idom []int // expected idom per layout position
	}{
		{"single", singleSrc, []int{0}},
		{"diamond", diamondSrc, []int{0, 0, 0, 0}},
		{"self-loop", loopSrc, []int{0, 0, 1}},
		{"unreachable", unreachableSrc, []int{0, -1, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := parse(t, tc.src)
			g := rtl.ComputeCFG(f)
			dt := dataflow.NewDomTree(g)
			for b, want := range tc.idom {
				if dt.IDom[b] != want {
					t.Errorf("idom[%d] = %d, want %d", b, dt.IDom[b], want)
				}
			}
			for a := range tc.idom {
				for b := range tc.idom {
					want := rtl.Dominates(dt.IDom, a, b)
					if got := dt.Dominates(a, b); got != want {
						t.Errorf("Dominates(%d,%d) = %v, want %v", a, b, got, want)
					}
				}
			}
			if !dt.Dominates(0, 0) {
				t.Errorf("entry must dominate itself")
			}
			for i, b := range dt.Preorder {
				if i > 0 && !dt.Dominates(dt.IDom[b], b) {
					t.Errorf("preorder block %d not dominated by its idom", b)
				}
			}
		})
	}
}

func TestDomTreeUnreachable(t *testing.T) {
	f := parse(t, unreachableSrc)
	dt := dataflow.NewDomTree(rtl.ComputeCFG(f))
	if dt.Reachable(1) {
		t.Fatalf("block 1 should be unreachable")
	}
	if dt.Dominates(0, 1) || dt.Dominates(1, 2) {
		t.Fatalf("unreachable blocks must not participate in dominance")
	}
	if !dt.Dominates(1, 1) {
		t.Fatalf("a block dominates itself even when unreachable")
	}
}

// TestLivenessMatchesRTL cross-validates the generic solver's
// liveness against rtl.ComputeLiveness over the whole MiBench corpus.
func TestLivenessMatchesRTL(t *testing.T) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	for _, tf := range funcs {
		g := rtl.ComputeCFG(tf.Func)
		want := rtl.ComputeLiveness(g)
		got := dataflow.Liveness(g)
		reach := g.Reachable()
		for b := range tf.Func.Blocks {
			if !reach[b] {
				continue
			}
			if !got.In[b].Equal(want.In[b]) || !got.Out[b].Equal(want.Out[b]) {
				t.Fatalf("%s/%s block %d: liveness mismatch: in %v/%v out %v/%v",
					tf.Bench, tf.Func.Name, b, got.In[b].Len(), want.In[b].Len(),
					got.Out[b].Len(), want.Out[b].Len())
			}
		}
	}
}

func TestMustAssigned(t *testing.T) {
	f := parse(t, diamondSrc)
	g := rtl.ComputeCFG(f)
	maxReg := int(f.NextPseudo)
	entry := rtl.NewRegSet(maxReg)
	entry.Add(rtl.RegSP)
	entry.Add(0) // r0 = the single argument
	facts := dataflow.MustAssigned(g, entry, maxReg)
	join := 3
	if !facts.In[join].Has(0) || !facts.In[join].Has(rtl.RegSP) {
		t.Fatalf("entry registers must reach the join")
	}
	// r32 is assigned only on the fall-through arm, r33 only on the
	// taken arm: neither is must-assigned at the join.
	if facts.In[join].Has(32) || facts.In[join].Has(33) {
		t.Fatalf("one-armed definitions must not be must-assigned at the join")
	}
	if !facts.Out[1].Has(32) || !facts.Out[2].Has(33) {
		t.Fatalf("arm-local definitions must be assigned at arm exits")
	}
}

func TestReachingDefs(t *testing.T) {
	f := parse(t, diamondSrc)
	g := rtl.ComputeCFG(f)
	rd := dataflow.ComputeReachingDefs(g, []rtl.Reg{rtl.RegSP, 0})
	// Both the entry definition of r0 and nothing else reaches L3 for
	// r0 (no block redefines it).
	ids := rd.ReachingAt(3, 0, 0, nil)
	if len(ids) != 1 || !rd.Defs[ids[0]].IsEntry() {
		t.Fatalf("r0 at join: got defs %v, want the entry definition", ids)
	}
	// r32 is defined once, in block 1; that definition may reach the
	// join (along the fall-through arm).
	ids = rd.ReachingAt(3, 0, 32, nil)
	if len(ids) != 1 || rd.Defs[ids[0]].Block != 1 {
		t.Fatalf("r32 at join: got defs %v, want the block-1 definition", ids)
	}
	// Inside block 1, before the definition executes, no definition
	// of r32 reaches.
	if ids = rd.ReachingAt(1, 0, 32, nil); len(ids) != 0 {
		t.Fatalf("r32 before its definition: got defs %v, want none", ids)
	}
	// Immediately after it (before the jump), it does.
	if ids = rd.ReachingAt(1, 1, 32, nil); len(ids) != 1 {
		t.Fatalf("r32 after its definition: got defs %v, want one", ids)
	}
}

func TestReachingDefsLoop(t *testing.T) {
	f := parse(t, loopSrc)
	g := rtl.ComputeCFG(f)
	rd := dataflow.ComputeReachingDefs(g, []rtl.Reg{rtl.RegSP, 0})
	// At the head of the loop body both the initial definition and
	// the loop-carried increment reach.
	ids := rd.ReachingAt(1, 0, 32, nil)
	if len(ids) != 2 {
		t.Fatalf("r32 at loop head: got %d reaching defs, want 2 (init + increment)", len(ids))
	}
}

func TestAvailableCopies(t *testing.T) {
	f := parse(t, `
copies(2):
L0:
	r[32]=r[0];
	IC=r[1]?0;
	PC=IC<0,L2;
L1:
	r[33]=r[32]+1;
	PC=L3;
L2:
	r[32]=r[1];
L3:
	RET;
`)
	g := rtl.ComputeCFG(f)
	facts := dataflow.AvailableCopies(g)
	if !facts.In[1].Has(32, 0) {
		t.Fatalf("copy (r32,r0) must be available in the fall-through arm")
	}
	if facts.In[3].Has(32, 0) {
		t.Fatalf("copy (r32,r0) must be killed at the join (redefined on the taken arm)")
	}
	at := dataflow.CopiesAt(g, facts, 0, 1)
	if !at.Has(32, 0) {
		t.Fatalf("copy (r32,r0) must be available right after the move")
	}
}

func TestGVNTables(t *testing.T) {
	t.Run("diamond-cse", func(t *testing.T) {
		f := parse(t, `
cse(2):
L0:
	r[32]=r[0]+r[1];
	IC=r[0]?0;
	PC=IC<0,L2;
L1:
	r[33]=r[0]+r[1];
	PC=L3;
L2:
	r[34]=r[1]+r[0];
L3:
	r[35]=r[0]+r[1];
	RET;
`)
		g := rtl.ComputeCFG(f)
		gvn := dataflow.ComputeGVN(g, dataflow.NewDomTree(g))
		root := gvn.VN[0][0]
		if root < 0 {
			t.Fatalf("r32 definition must be numbered")
		}
		// The same expression in both arms and at the join — including
		// the commutatively swapped one — shares the dominator's number.
		if gvn.VN[1][0] != root || gvn.VN[2][0] != root || gvn.VN[3][0] != root {
			t.Fatalf("equal expressions must share a value number: got %d/%d/%d want %d",
				gvn.VN[1][0], gvn.VN[2][0], gvn.VN[3][0], root)
		}
	})
	t.Run("loop-carried", func(t *testing.T) {
		f := parse(t, loopSrc)
		g := rtl.ComputeCFG(f)
		gvn := dataflow.ComputeGVN(g, dataflow.NewDomTree(g))
		// r32's loop increment must NOT alias the init: r32 has a
		// definition inside the loop that does not dominate the body.
		if gvn.VN[0][0] == gvn.VN[1][0] {
			t.Fatalf("loop-carried redefinition must get a distinct value number")
		}
	})
	t.Run("single-block", func(t *testing.T) {
		f := parse(t, `
s(0):
L0:
	r[32]=3;
	r[33]=3;
	r[34]=r[32]+r[33];
	r[35]=r[33]+r[32];
	RET;
`)
		g := rtl.ComputeCFG(f)
		gvn := dataflow.ComputeGVN(g, dataflow.NewDomTree(g))
		if gvn.VN[0][0] != gvn.VN[0][1] {
			t.Fatalf("equal constants must share a value number")
		}
		if gvn.VN[0][2] != gvn.VN[0][3] {
			t.Fatalf("commutative operands must not split value numbers")
		}
	})
	t.Run("unreachable", func(t *testing.T) {
		f := parse(t, unreachableSrc)
		g := rtl.ComputeCFG(f)
		gvn := dataflow.ComputeGVN(g, dataflow.NewDomTree(g))
		if gvn.VN[1] != nil {
			t.Fatalf("unreachable blocks must not be numbered")
		}
	})
	t.Run("loads-fresh", func(t *testing.T) {
		f := parse(t, `
ld(1):
L0:
	r[32]=M[r[0]];
	r[33]=M[r[0]];
	RET;
`)
		g := rtl.ComputeCFG(f)
		gvn := dataflow.ComputeGVN(g, dataflow.NewDomTree(g))
		if gvn.VN[0][0] == gvn.VN[0][1] {
			t.Fatalf("loads must be fresh: memory is not modeled")
		}
	})
}

func TestPathWitness(t *testing.T) {
	f := parse(t, diamondSrc)
	g := rtl.ComputeCFG(f)
	path := dataflow.PathTo(g, 3, nil)
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 3 {
		t.Fatalf("PathTo join: got %v", path)
	}
	// Avoiding block 1 forces the taken arm.
	path = dataflow.PathTo(g, 3, func(b int) bool { return b == 1 })
	want := []int{0, 2, 3}
	if fmt.Sprint(path) != fmt.Sprint(want) {
		t.Fatalf("PathTo avoiding 1: got %v want %v", path, want)
	}
	// Avoiding both arms leaves no path.
	if p := dataflow.PathTo(g, 3, func(b int) bool { return b == 1 || b == 2 }); p != nil {
		t.Fatalf("expected no path, got %v", p)
	}
	if got := dataflow.FormatIDPath(dataflow.BlockIDs(f, want)); got != "L0 -> L2 -> L3" {
		t.Fatalf("FormatIDPath: got %q", got)
	}
	if got := dataflow.FormatIDPath(nil); got != "" {
		t.Fatalf("FormatIDPath(nil): got %q", got)
	}
	exit := dataflow.PathToExit(g, 1, nil)
	if len(exit) == 0 || exit[0] != 1 || exit[len(exit)-1] != 3 {
		t.Fatalf("PathToExit: got %v", exit)
	}
}

func TestSolverBackwardBoundary(t *testing.T) {
	// Liveness on the diamond: r0 is live-in everywhere it is still
	// needed, SP is live at exit.
	f := parse(t, diamondSrc)
	g := rtl.ComputeCFG(f)
	lv := dataflow.Liveness(g)
	if !lv.Out[3].Has(rtl.RegSP) {
		t.Fatalf("SP must be live at exit")
	}
	if !lv.In[0].Has(0) {
		t.Fatalf("the argument must be live at entry")
	}
}
