// Package dataflow is a reusable flow-sensitive analysis framework
// over RTL control-flow graphs. It provides the classic building
// blocks — a dominator tree with O(1) dominance queries, a generic
// iterative worklist solver, reaching definitions, liveness, and a
// dominator-scoped global value numbering — plus the two consumers
// this repository builds on them: an equivalence-class canonicalizer
// that collapses phase-order spaces beyond register/label renumbering
// (EquivEncode), and CFG path witnesses that make internal/check's
// diagnostics actionable (PathTo, FormatPath).
//
// All analyses identify blocks by layout position (index into
// Func.Blocks), the same convention rtl.CFG uses, so results can be
// combined freely with the CFG's edge lists and with rtl's own
// liveness.
package dataflow

import "repro/internal/rtl"

// Dir selects the direction a dataflow problem propagates facts in.
type Dir int

const (
	// Forward propagates facts along control-flow edges, entry first.
	Forward Dir = iota
	// Backward propagates facts against control-flow edges, exits
	// first.
	Backward
)

// Spec describes one dataflow problem for Solve. F is the fact type
// attached to each block boundary.
//
// By convention Top is the identity of Meet (the empty set for a
// may/union problem, the universal set for a must/intersection
// problem), so that folding the facts of zero edges yields Top.
type Spec[F any] struct {
	// Dir is the propagation direction.
	Dir Dir
	// Top returns a fresh meet-identity fact. Unreachable blocks keep
	// Top on both sides.
	Top func() F
	// Boundary returns the fact at the graph boundary: the entry
	// block's input for a forward problem, the input of exit blocks
	// (blocks without successors) for a backward one.
	Boundary func() F
	// Meet folds x into acc and returns the result. acc starts as a
	// fresh Top fact and may be mutated in place; x must not be.
	Meet func(acc, x F) F
	// Transfer maps the fact entering the block at layout position
	// bpos to the fact leaving it (in program order for Forward,
	// against it for Backward). It must return a fact independent of
	// in: the solver retains the result across iterations.
	Transfer func(bpos int, in F) F
	// Equal reports fact equality; it bounds the fixpoint iteration.
	Equal func(a, b F) bool
}

// Facts carries the per-block fixpoint solution of a dataflow
// problem, indexed by layout position. In is the fact at block entry,
// Out the fact at block exit, regardless of the problem's direction.
// Unreachable blocks hold Top on both sides.
type Facts[F any] struct {
	In, Out []F
}

// Solve runs the iterative round-robin fixpoint for the problem s
// over g. Blocks are visited in reverse postorder for forward
// problems and postorder for backward ones, so acyclic graphs
// converge in one pass and loops in a few.
func Solve[F any](g *rtl.CFG, s Spec[F]) Facts[F] {
	n := len(g.Succs)
	facts := Facts[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		facts.In[i] = s.Top()
		facts.Out[i] = s.Top()
	}
	if n == 0 {
		return facts
	}
	reach := g.Reachable()
	rpo := g.RPO()
	order := make([]int, 0, n)
	for _, b := range rpo {
		if reach[b] {
			order = append(order, b)
		}
	}
	if s.Dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			var cur F
			if s.Dir == Forward {
				if b == 0 {
					cur = s.Boundary()
				} else {
					cur = s.Top()
					for _, p := range g.Preds[b] {
						if reach[p] {
							cur = s.Meet(cur, facts.Out[p])
						}
					}
				}
				facts.In[b] = cur
				next := s.Transfer(b, cur)
				if !s.Equal(next, facts.Out[b]) {
					facts.Out[b] = next
					changed = true
				}
			} else {
				if len(g.Succs[b]) == 0 {
					cur = s.Boundary()
				} else {
					cur = s.Top()
					for _, sb := range g.Succs[b] {
						cur = s.Meet(cur, facts.In[sb])
					}
				}
				facts.Out[b] = cur
				next := s.Transfer(b, cur)
				if !s.Equal(next, facts.In[b]) {
					facts.In[b] = next
					changed = true
				}
			}
		}
	}
	return facts
}
