package dataflow

import (
	"encoding/binary"

	"repro/internal/rtl"
)

// vnState is the register→value-number map flowing through one block.
type vnState map[rtl.Reg]int

// vnBuilder assigns dominator-scoped value numbers. Expressions are
// hash-consed globally; a register's number is inherited from the
// closest processed dominator only when every definition of that
// register dominates the inheriting block, which makes the carried
// value unambiguous without SSA construction. Registers without an
// inheritable number get a fresh one at first use, scoped to the
// block that introduced it.
type vnBuilder struct {
	g         *rtl.CFG
	dt        *DomTree
	reach     []bool
	reachTo   []Bits // transitive successor closure per block
	defBlocks map[rtl.Reg][]int
	exprs     map[string]int
	next      int
	states    []vnState // per-block exit state, nil until processed
	key       []byte
}

func newVNBuilder(g *rtl.CFG, dt *DomTree) *vnBuilder {
	v := &vnBuilder{
		g:         g,
		dt:        dt,
		reach:     g.Reachable(),
		defBlocks: make(map[rtl.Reg][]int),
		exprs:     make(map[string]int),
		states:    make([]vnState, len(g.Succs)),
	}
	// Transitive closure of the successor relation, by fixpoint over
	// reverse postorder (converges in passes proportional to the loop
	// nesting; functions here are small).
	n := len(g.Succs)
	v.reachTo = make([]Bits, n)
	for b := 0; b < n; b++ {
		v.reachTo[b] = newBits(n)
	}
	rpo := g.RPO()
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			before := v.reachTo[b].clone()
			for _, s := range g.Succs[b] {
				v.reachTo[b].Add(s)
				v.reachTo[b].unionWith(v.reachTo[s])
			}
			if !v.reachTo[b].equal(before) {
				changed = true
			}
		}
	}
	var buf [8]rtl.Reg
	for bpos, b := range g.F.Blocks {
		if !v.reach[bpos] {
			continue // definitions in dead code never execute
		}
		seen := make(map[rtl.Reg]bool)
		for i := range b.Instrs {
			for _, r := range b.Instrs[i].Defs(buf[:0]) {
				if !seen[r] {
					seen[r] = true
					v.defBlocks[r] = append(v.defBlocks[r], bpos)
				}
			}
		}
	}
	return v
}

func (v *vnBuilder) fresh() int {
	n := v.next
	v.next++
	return n
}

// exprVN hash-conses an expression key built in v.key.
func (v *vnBuilder) exprVN() int {
	if n, ok := v.exprs[string(v.key)]; ok {
		return n
	}
	n := v.fresh()
	v.exprs[string(v.key)] = n
	return n
}

func (v *vnBuilder) keyReset(tag byte) { v.key = append(v.key[:0], tag) }
func (v *vnBuilder) keyInt(n int) {
	v.key = binary.AppendVarint(v.key, int64(n))
}
func (v *vnBuilder) keySym(s string) {
	v.key = binary.AppendVarint(v.key, int64(len(s)))
	v.key = append(v.key, s...)
}

// inheritable reports whether register r's value number may flow from
// a dominator into block bpos. Two conditions make the carried value
// unambiguous without SSA construction: every (reachable) definition
// of r must dominate bpos, so exactly one definition is live on
// entry; and no defining block may be reachable again from bpos, or a
// back edge could re-execute the definition with different operand
// values before control returns.
func (v *vnBuilder) inheritable(r rtl.Reg, bpos int) bool {
	for _, d := range v.defBlocks[r] {
		if !v.dt.Dominates(d, bpos) || v.reachTo[bpos].Has(d) {
			return false
		}
	}
	return true
}

// entryState builds the value-number map entering bpos from the exit
// state of parent (the closest processed dominator; -1 for none).
func (v *vnBuilder) entryState(bpos, parent int) vnState {
	st := make(vnState)
	if parent >= 0 {
		for r, vn := range v.states[parent] {
			if v.inheritable(r, bpos) {
				st[r] = vn
			}
		}
	}
	return st
}

// useVN returns the value number of reading register r in state st.
// An unknown register gets a fresh number on first use.
func (v *vnBuilder) useVN(st vnState, r rtl.Reg) int {
	if vn, ok := st[r]; ok {
		return vn
	}
	vn := v.fresh()
	st[r] = vn
	return vn
}

func (v *vnBuilder) operandVN(st vnState, o rtl.Operand) int {
	switch o.Kind {
	case rtl.OperReg:
		return v.useVN(st, o.Reg)
	case rtl.OperImm:
		v.keyReset('i')
		v.keyInt(int(o.Imm))
		return v.exprVN()
	}
	return -1
}

// instrVN numbers one instruction in state st, updating st with its
// definitions. It returns the destination's value number (-1 when the
// instruction defines nothing or clobbers several registers) and the
// numbers of the A and B operands (-1 when absent).
func (v *vnBuilder) instrVN(st vnState, in *rtl.Instr) (dst, aVN, bVN int) {
	dst, aVN, bVN = -1, -1, -1
	switch {
	case in.Op == rtl.OpMov:
		aVN = v.operandVN(st, in.A)
		dst = aVN
	case in.Op == rtl.OpMovHi:
		v.keyReset('h')
		v.keySym(in.Sym)
		dst = v.exprVN()
	case in.Op == rtl.OpAddLo:
		aVN = v.operandVN(st, in.A)
		v.keyReset('a')
		v.keyInt(aVN)
		v.keySym(in.Sym)
		dst = v.exprVN()
	case in.Op == rtl.OpNeg || in.Op == rtl.OpNot:
		aVN = v.operandVN(st, in.A)
		v.keyReset(byte(in.Op))
		v.keyInt(aVN)
		dst = v.exprVN()
	case in.Op.IsALU():
		aVN = v.operandVN(st, in.A)
		bVN = v.operandVN(st, in.B)
		x, y := aVN, bVN
		if in.Op.Commutative() && y < x {
			x, y = y, x
		}
		v.keyReset(byte(in.Op))
		v.keyInt(x)
		v.keyInt(y)
		dst = v.exprVN()
	case in.Op == rtl.OpCmp:
		aVN = v.operandVN(st, in.A)
		bVN = v.operandVN(st, in.B)
		v.keyReset('c')
		v.keyInt(aVN)
		v.keyInt(bVN)
		st[rtl.RegIC] = v.exprVN()
		return -1, aVN, bVN
	case in.Op == rtl.OpLoad:
		// Memory is not modeled: every load produces a fresh value.
		aVN = v.operandVN(st, in.A)
		dst = v.fresh()
	case in.Op == rtl.OpStore:
		aVN = v.operandVN(st, in.A)
		bVN = v.operandVN(st, in.B)
		return -1, aVN, bVN
	case in.Op == rtl.OpCall:
		for _, r := range rtl.CallerSave {
			st[r] = v.fresh()
		}
		return -1, -1, -1
	default: // Nop, Branch, Jmp, Ret
		if in.Op == rtl.OpRet && in.A.Kind == rtl.OperReg {
			aVN = v.operandVN(st, in.A)
		}
		return -1, aVN, -1
	}
	if in.Dst != rtl.RegNone {
		if dst >= 0 {
			st[in.Dst] = dst
		} else {
			delete(st, in.Dst) // malformed operand: value unknown
		}
	}
	return dst, aVN, bVN
}

// effectiveParent walks the idom chain of bpos up to the closest
// block accepted by ok (a processed, encodable block). It returns -1
// when none exists (the entry, or a chain of skipped blocks).
func (v *vnBuilder) effectiveParent(bpos int, ok func(int) bool) int {
	for b := bpos; b != 0; {
		p := v.dt.IDom[b]
		if p < 0 {
			return -1
		}
		if ok(p) {
			return p
		}
		b = p
	}
	return -1
}

// GVN is a dominator-scoped global value numbering: two instructions
// whose destinations share a value number compute the same value on
// every execution reaching them.
type GVN struct {
	// VN[b][i] is the value number of the destination of instruction
	// i in the block at layout position b, or -1 when the instruction
	// defines no single register. Unreachable blocks have nil rows.
	VN [][]int
	// NumValues is the count of distinct value numbers issued.
	NumValues int
}

// ComputeGVN numbers every reachable instruction of g, visiting
// blocks in dominator-tree preorder.
func ComputeGVN(g *rtl.CFG, dt *DomTree) *GVN {
	v := newVNBuilder(g, dt)
	out := &GVN{VN: make([][]int, len(g.Succs))}
	for _, bpos := range dt.Preorder {
		parent := v.effectiveParent(bpos, func(p int) bool { return v.states[p] != nil })
		st := v.entryState(bpos, parent)
		b := g.F.Blocks[bpos]
		row := make([]int, len(b.Instrs))
		for i := range b.Instrs {
			row[i], _, _ = v.instrVN(st, &b.Instrs[i])
		}
		out.VN[bpos] = row
		v.states[bpos] = st
	}
	out.NumValues = v.next
	return out
}
