package dataflow_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/randprog"
	"repro/internal/rtl"
)

// FuzzEquivInvariance is the canonicalizer's central contract: the
// equivalence key of a function is invariant under random register
// permutations and random semantics-preserving block reorderings.
// Each fuzz input compiles a random mini-C program, optionally runs a
// random phase prefix to diversify the instance shapes, applies the
// two transformation legs and asserts the key never moves.
func FuzzEquivInvariance(f *testing.F) {
	for seed := int64(0); seed < 6; seed++ {
		f.Add(seed, seed*131+7, uint8(seed%4))
	}
	d := machine.StrongARM()
	all := opt.All()
	f.Fuzz(func(t *testing.T, progSeed, xformSeed int64, phases uint8) {
		p := randprog.New(progSeed, randprog.Config{})
		prog, err := mc.Compile(p.Source)
		if err != nil {
			t.Skipf("generated program does not compile: %v", err)
		}
		rng := rand.New(rand.NewSource(xformSeed))
		for _, fn := range prog.Funcs {
			// Diversify the instance: a short random phase prefix.
			var st opt.State
			for i := uint8(0); i < phases%8; i++ {
				opt.Attempt(fn, &st, all[rng.Intn(len(all))], d)
			}
			if err := rtl.Validate(fn); err != nil {
				t.Fatalf("%s: phase prefix broke the function: %v", fn.Name, err)
			}
			want := dataflow.EquivKey(fn)

			regs := fn.Clone()
			permuteRegs(regs, rng)
			if got := dataflow.EquivKey(regs); got != want {
				t.Errorf("%s: register permutation changed the equivalence key", fn.Name)
			}

			blocks := fn.Clone()
			shuffleBlocks(blocks, rng)
			if err := rtl.Validate(blocks); err != nil {
				t.Fatalf("%s: block shuffle broke the function: %v", fn.Name, err)
			}
			if got := dataflow.EquivKey(blocks); got != want {
				t.Errorf("%s: block reordering changed the equivalence key\nbefore:\n%s\nafter:\n%s",
					fn.Name, fn, blocks)
			}

			both := fn.Clone()
			permuteRegs(both, rng)
			shuffleBlocks(both, rng)
			if got := dataflow.EquivKey(both); got != want {
				t.Errorf("%s: combined transformation changed the equivalence key", fn.Name)
			}
		}
	})
}

// TestEquivInvarianceSeeds runs the fuzz body over a deterministic
// seed matrix so the invariance property is exercised by the ordinary
// test suite (and CI) even when fuzzing is not enabled.
func TestEquivInvarianceSeeds(t *testing.T) {
	programs := int64(12)
	if testing.Short() {
		programs = 3
	}
	d := machine.StrongARM()
	all := opt.All()
	for seed := int64(0); seed < programs; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := randprog.New(seed, randprog.Config{})
			prog, err := mc.Compile(p.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rng := rand.New(rand.NewSource(seed ^ 0x9e37))
			for _, fn := range prog.Funcs {
				var st opt.State
				for i := 0; i < int(seed%6); i++ {
					opt.Attempt(fn, &st, all[rng.Intn(len(all))], d)
				}
				want := dataflow.EquivKey(fn)
				for trial := 0; trial < 4; trial++ {
					mut := fn.Clone()
					permuteRegs(mut, rng)
					shuffleBlocks(mut, rng)
					if err := rtl.Validate(mut); err != nil {
						t.Fatalf("%s: transformation broke the function: %v", fn.Name, err)
					}
					if got := dataflow.EquivKey(mut); got != want {
						t.Fatalf("%s trial %d: equivalence key not invariant\nbefore:\n%s\nafter:\n%s",
							fn.Name, trial, fn, mut)
					}
				}
			}
		})
	}
}
