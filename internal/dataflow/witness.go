package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// PathTo returns a shortest control-flow path (block layout
// positions) from the entry block to target, skipping blocks for
// which avoid reports true (avoid is never consulted for the target
// itself, and a nil avoid admits every block). It returns nil when no
// such path exists.
func PathTo(g *rtl.CFG, target int, avoid func(bpos int) bool) []int {
	blocked := func(b int) bool { return b != target && avoid != nil && avoid(b) }
	return bfs(g, 0, func(b int) bool { return b == target }, blocked)
}

// PathToExit returns a shortest control-flow path from the block at
// layout position from to any exit block (one without successors),
// skipping blocks for which avoid reports true. It returns nil when
// no such path exists.
func PathToExit(g *rtl.CFG, from int, avoid func(bpos int) bool) []int {
	blocked := func(b int) bool { return b != from && avoid != nil && avoid(b) }
	return bfs(g, from, func(b int) bool { return len(g.Succs[b]) == 0 }, blocked)
}

// bfs finds a shortest path from start to a block satisfying goal,
// never entering blocks for which blocked reports true (start is
// always entered).
func bfs(g *rtl.CFG, start int, goal func(int) bool, blocked func(int) bool) []int {
	if start < 0 || start >= len(g.Succs) {
		return nil
	}
	parent := make([]int, len(g.Succs))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[start] = -1
	queue := []int{start}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if goal(b) {
			var rev []int
			for cur := b; cur != -1; cur = parent[cur] {
				rev = append(rev, cur)
			}
			path := make([]int, len(rev))
			for i, p := range rev {
				path[len(rev)-1-i] = p
			}
			return path
		}
		for _, s := range g.Succs[b] {
			if parent[s] == -2 && !blocked(s) {
				parent[s] = b
				queue = append(queue, s)
			}
		}
	}
	return nil
}

// BlockIDs converts a path of layout positions into the corresponding
// block IDs (the labels diagnostics print as L<id>).
func BlockIDs(f *rtl.Func, path []int) []int {
	ids := make([]int, len(path))
	for i, p := range path {
		ids[i] = f.Blocks[p].ID
	}
	return ids
}

// FormatIDPath renders a block-ID path as "L0 -> L2 -> L5"; an empty
// path renders as "".
func FormatIDPath(ids []int) string {
	if len(ids) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, id := range ids {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(&sb, "L%d", id)
	}
	return sb.String()
}
