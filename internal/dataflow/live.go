package dataflow

import "repro/internal/rtl"

// Liveness computes per-block live-in/live-out register sets with the
// generic solver: the backward union problem whose boundary is the
// registers live at function exit (the stack pointer). On well-formed
// functions the result matches rtl.ComputeLiveness.
func Liveness(g *rtl.CFG) Facts[rtl.RegSet] {
	f := g.F
	n := len(f.Blocks)
	maxReg := int(f.NextPseudo)
	use := make([]rtl.RegSet, n)
	def := make([]rtl.RegSet, n)
	var buf [8]rtl.Reg
	for i, b := range f.Blocks {
		use[i], def[i] = rtl.NewRegSet(maxReg), rtl.NewRegSet(maxReg)
		for j := range b.Instrs {
			in := &b.Instrs[j]
			for _, r := range in.Uses(buf[:0]) {
				if !def[i].Has(r) {
					use[i].Add(r)
				}
			}
			for _, r := range in.Defs(buf[:0]) {
				def[i].Add(r)
			}
		}
	}
	return Solve(g, Spec[rtl.RegSet]{
		Dir: Backward,
		Top: func() rtl.RegSet { return rtl.NewRegSet(maxReg) },
		Boundary: func() rtl.RegSet {
			s := rtl.NewRegSet(maxReg)
			s.Add(rtl.RegSP)
			return s
		},
		Meet: func(acc, x rtl.RegSet) rtl.RegSet { acc.UnionWith(x); return acc },
		Transfer: func(bpos int, out rtl.RegSet) rtl.RegSet {
			// in = use ∪ (out - def)
			in := out.Copy()
			def[bpos].ForEach(func(r rtl.Reg) { in.Remove(r) })
			in.UnionWith(use[bpos])
			return in
		},
		Equal: func(a, b rtl.RegSet) bool { return a.Equal(b) },
	})
}

// MustAssigned computes, for every block boundary, the registers that
// have been assigned on *every* path from function entry — the
// forward intersection problem behind the use-before-definition
// check. entry seeds the registers defined at function entry
// (parameters, stack pointer, ...); maxReg bounds the register
// universe (the meet identity is the full set [0, maxReg)).
func MustAssigned(g *rtl.CFG, entry rtl.RegSet, maxReg int) Facts[rtl.RegSet] {
	f := g.F
	def := make([]rtl.RegSet, len(f.Blocks))
	var buf [8]rtl.Reg
	for i, b := range f.Blocks {
		def[i] = rtl.NewRegSet(maxReg)
		for j := range b.Instrs {
			for _, r := range b.Instrs[j].Defs(buf[:0]) {
				def[i].Add(r)
			}
		}
	}
	return Solve(g, Spec[rtl.RegSet]{
		Dir: Forward,
		Top: func() rtl.RegSet {
			s := rtl.NewRegSet(maxReg)
			s.Fill(maxReg)
			return s
		},
		Boundary: func() rtl.RegSet { return entry.Copy() },
		Meet:     func(acc, x rtl.RegSet) rtl.RegSet { acc.IntersectWith(x); return acc },
		Transfer: func(bpos int, in rtl.RegSet) rtl.RegSet {
			out := in.Copy()
			out.UnionWith(def[bpos])
			return out
		},
		Equal: func(a, b rtl.RegSet) bool { return a.Equal(b) },
	})
}

// Copy is an unordered register pair known to hold the same value;
// the smaller register number is A.
type Copy struct {
	A, B rtl.Reg
}

// NewCopy normalizes a pair into a Copy.
func NewCopy(a, b rtl.Reg) Copy {
	if a > b {
		a, b = b, a
	}
	return Copy{A: a, B: b}
}

// CopySet is a must-availability fact over register copies: the pairs
// that hold equal values on every path reaching a point. The meet
// identity (Top) is the universal set, represented symbolically.
type CopySet struct {
	universal bool
	pairs     map[Copy]struct{}
}

// Has reports whether the pair (a, b) is available.
func (cs CopySet) Has(a, b rtl.Reg) bool {
	if cs.universal {
		return true
	}
	_, ok := cs.pairs[NewCopy(a, b)]
	return ok
}

func (cs CopySet) clone() CopySet {
	if cs.universal {
		return CopySet{universal: true}
	}
	m := make(map[Copy]struct{}, len(cs.pairs))
	for p := range cs.pairs {
		m[p] = struct{}{}
	}
	return CopySet{pairs: m}
}

// transferCopies applies one instruction to the set in place.
func transferCopies(cs *CopySet, in *rtl.Instr, buf []rtl.Reg) {
	if cs.universal {
		// Materialize lazily: the universal set only survives until
		// the first kill, and a kill of r removes infinitely many
		// pairs, so universal sets must not flow into transfer.
		// Callers seed the entry block with an empty set instead.
		cs.universal = false
		cs.pairs = make(map[Copy]struct{})
	}
	kill := func(r rtl.Reg) {
		for p := range cs.pairs {
			if p.A == r || p.B == r {
				delete(cs.pairs, p)
			}
		}
	}
	if in.Op == rtl.OpMov && in.A.Kind == rtl.OperReg && in.Dst != rtl.RegNone {
		if in.Dst == in.A.Reg {
			return // self-move: no new information, no kill
		}
		kill(in.Dst)
		cs.pairs[NewCopy(in.Dst, in.A.Reg)] = struct{}{}
		return
	}
	for _, r := range in.Defs(buf) {
		kill(r)
	}
}

// AvailableCopies computes, for every block boundary, the register
// copies available on every path from entry: after "r[a]=r[b];" the
// pair (a, b) is available until either register is redefined. The
// redundant-move check uses it to flag copies that recreate an
// already-available pair.
func AvailableCopies(g *rtl.CFG) Facts[CopySet] {
	var buf [8]rtl.Reg
	return Solve(g, Spec[CopySet]{
		Dir:      Forward,
		Top:      func() CopySet { return CopySet{universal: true} },
		Boundary: func() CopySet { return CopySet{pairs: make(map[Copy]struct{})} },
		Meet: func(acc, x CopySet) CopySet {
			if x.universal {
				return acc
			}
			if acc.universal {
				return x.clone()
			}
			for p := range acc.pairs {
				if _, ok := x.pairs[p]; !ok {
					delete(acc.pairs, p)
				}
			}
			return acc
		},
		Transfer: func(bpos int, in CopySet) CopySet {
			out := in.clone()
			for j := range g.F.Blocks[bpos].Instrs {
				transferCopies(&out, &g.F.Blocks[bpos].Instrs[j], buf[:0])
			}
			return out
		},
		Equal: func(a, b CopySet) bool {
			if a.universal || b.universal {
				return a.universal == b.universal
			}
			if len(a.pairs) != len(b.pairs) {
				return false
			}
			for p := range a.pairs {
				if _, ok := b.pairs[p]; !ok {
					return false
				}
			}
			return true
		},
	})
}

// CopiesAt returns the copy set available immediately before
// instruction idx of the block at layout position bpos, given the
// block-boundary solution facts.
func CopiesAt(g *rtl.CFG, facts Facts[CopySet], bpos, idx int) CopySet {
	cur := facts.In[bpos].clone()
	var buf [8]rtl.Reg
	for j := 0; j < idx; j++ {
		transferCopies(&cur, &g.F.Blocks[bpos].Instrs[j], buf[:0])
	}
	return cur
}
