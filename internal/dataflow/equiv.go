package dataflow

import (
	"encoding/binary"

	"repro/internal/rtl"
)

// The equivalence canonicalizer maps a function instance to a byte
// key such that two instances with equal keys are equivalent — they
// compute the same thing — even when their identical-instance
// encodings (package fingerprint) differ. It normalizes, on top of
// fingerprint's register/label renumbering:
//
//   - block layout: blocks are emitted in a dominator-consistent
//     canonical DFS order over *semantic* successors, so reordered
//     layouts of the same CFG encode identically;
//   - control transfer spelling: an explicit trailing jump and a
//     fall-through to the same block encode as the same terminator,
//     and chains of trivial forwarder blocks (a lone jump) are
//     resolved away;
//   - unreachable code: blocks no path reaches are dropped;
//   - commutative operand order: the operands of commutative ALU
//     instructions are ordered by dominator-scoped value number
//     (package gvn), so "r3=r1+r2" and "r3=r2+r1" coincide;
//   - register names: registers are renumbered in first-encounter
//     order of the canonical traversal, after the operand reordering
//     above, mirroring fingerprint's fixed codes for SP/IC/none.
//
// The key is one-sided: equal keys imply equivalence-by-construction
// under the normalizations above, while distinct keys prove nothing.
// That is exactly the contract the search's third index tier needs —
// merging is sound, and missed merges only cost space.

// terminator kinds in the canonical encoding.
const (
	termGoto   = 0 // unconditional transfer (jump or fall-through)
	termBranch = 1 // conditional branch: taken + not-taken labels
	termRet    = 2 // function return
	termNone   = 3 // block falls off the end of the function
)

// label codes reserved for resolution failures.
const (
	// labelCycle marks a transfer into a cycle of pure forwarder
	// blocks: an inescapable, observation-free loop. Every such
	// transfer is equivalent, so they share one sentinel.
	labelCycle = 0xFFFE
	// labelNone marks an absent fall-through (a malformed function
	// whose last block does not end in control flow).
	labelNone = 0xFFFD
)

// successor positions carrying the sentinels above.
const (
	posCycle = -1
	posNone  = -2
)

// equivEncoder carries the per-function canonicalization state.
type equivEncoder struct {
	g        *rtl.CFG
	v        *vnBuilder
	fwd      []int // forwarder resolution per block, labelNone until memoized
	order    []int // canonical visit order (layout positions)
	label    []int // layout position -> canonical label, -1 unassigned
	regs     map[rtl.Reg]uint16
	dst      []byte
	aVN, bVN []int // operand value numbers of the current block
}

const fwdUnknown = -2

// resolveForwarder follows chains of pure-forwarder blocks (a single
// unconditional jump) starting at layout position bpos, returning the
// first non-forwarder position or -1 for a forwarder cycle.
func (e *equivEncoder) resolveForwarder(bpos int) int {
	if r := e.fwd[bpos]; r != fwdUnknown {
		return r
	}
	path := []int{}
	cur := bpos
	for {
		b := e.g.F.Blocks[cur]
		if len(b.Instrs) != 1 || b.Instrs[0].Op != rtl.OpJmp {
			break
		}
		e.fwd[cur] = -3 // visiting marker
		path = append(path, cur)
		next := e.g.MustPos(b.Instrs[0].Target)
		if e.fwd[next] == -3 {
			cur = -1 // jump cycle
			break
		}
		if e.fwd[next] != fwdUnknown {
			cur = e.fwd[next]
			break
		}
		cur = next
	}
	for _, p := range path {
		e.fwd[p] = cur
	}
	if e.fwd[bpos] == fwdUnknown || e.fwd[bpos] == -3 {
		e.fwd[bpos] = cur
	}
	return e.fwd[bpos]
}

// semanticTerm returns the terminator of the non-forwarder block at
// bpos with forwarder-resolved successor positions (-1 = cycle).
func (e *equivEncoder) semanticTerm(bpos int) (kind int, taken, fall int) {
	f := e.g.F
	b := f.Blocks[bpos]
	last := b.Last()
	next := func() int {
		if bpos+1 < len(f.Blocks) {
			return e.resolveForwarder(bpos + 1)
		}
		return posNone
	}
	switch {
	case last == nil || !last.Op.IsControl():
		if n := next(); n != posNone {
			return termGoto, n, posNone
		}
		return termNone, posNone, posNone
	case last.Op == rtl.OpJmp:
		return termGoto, e.resolveForwarder(e.g.MustPos(last.Target)), posNone
	case last.Op == rtl.OpRet:
		return termRet, posNone, posNone
	default: // OpBranch
		return termBranch, e.resolveForwarder(e.g.MustPos(last.Target)), next()
	}
}

// visit assigns canonical labels in DFS preorder over semantic
// successors: not-taken before taken, matching execution layout.
func (e *equivEncoder) visit(start int) {
	if start < 0 {
		return
	}
	stack := []int{start}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b < 0 || e.label[b] >= 0 {
			continue
		}
		e.label[b] = len(e.order)
		e.order = append(e.order, b)
		kind, taken, fall := e.semanticTerm(b)
		switch kind {
		case termGoto:
			stack = append(stack, taken)
		case termBranch:
			// Push taken first so not-taken is visited first.
			stack = append(stack, taken, fall)
		}
	}
}

func (e *equivEncoder) reg(r rtl.Reg) uint16 {
	if n, ok := e.regs[r]; ok {
		return n
	}
	n := uint16(len(e.regs))
	e.regs[r] = n
	return n
}

func (e *equivEncoder) u16(v uint16) { e.dst = binary.LittleEndian.AppendUint16(e.dst, v) }
func (e *equivEncoder) u32(v uint32) { e.dst = binary.LittleEndian.AppendUint32(e.dst, v) }
func (e *equivEncoder) sym(s string) {
	e.dst = append(e.dst, byte(len(s)))
	e.dst = append(e.dst, s...)
}

func (e *equivEncoder) targetLabel(pos int) uint16 {
	switch pos {
	case posCycle:
		return labelCycle
	case posNone:
		return labelNone
	}
	return uint16(e.label[pos])
}

// operand emits one operand.
func (e *equivEncoder) operand(o rtl.Operand) {
	e.dst = append(e.dst, byte(o.Kind))
	switch o.Kind {
	case rtl.OperReg:
		e.u16(e.reg(o.Reg))
	case rtl.OperImm:
		e.u32(uint32(o.Imm))
	}
}

// instr emits one non-terminator instruction. Commutative ALU
// operands are ordered by value number before register renumbering,
// so operand order differences between equivalent instances vanish.
func (e *equivEncoder) instr(in *rtl.Instr, idx int) {
	e.dst = append(e.dst, byte(in.Op))
	switch in.Op {
	case rtl.OpCall:
		e.dst = append(e.dst, in.NArgs)
		e.sym(in.Sym)
	case rtl.OpMovHi, rtl.OpAddLo:
		e.u16(e.reg(in.Dst))
		e.operand(in.A)
		e.sym(in.Sym)
	default:
		a, b := in.A, in.B
		if in.Op.IsALU() && in.Op.Commutative() && e.bVN[idx] < e.aVN[idx] {
			a, b = b, a
		}
		e.u16(e.reg(in.Dst))
		e.operand(a)
		e.operand(b)
		e.u32(uint32(in.Disp))
	}
}

// EquivEncode appends the equivalence-canonical encoding of f to dst
// and returns the extended slice. Instances with equal encodings are
// semantically equivalent (see the package comment on one-sidedness);
// the search's third index tier merges them into one node.
func EquivEncode(dst []byte, f *rtl.Func) []byte {
	g := rtl.ComputeCFG(f)
	n := len(f.Blocks)
	e := &equivEncoder{
		g:     g,
		fwd:   make([]int, n),
		label: make([]int, n),
		regs:  make(map[rtl.Reg]uint16, 16),
		dst:   dst,
	}
	for i := 0; i < n; i++ {
		e.fwd[i], e.label[i] = fwdUnknown, -1
	}
	// Mirror fingerprint's fixed codes for structural registers.
	e.regs[rtl.RegSP] = 0xFFF0
	e.regs[rtl.RegIC] = 0xFFF1
	e.regs[rtl.RegNone] = 0xFFFF

	e.dst = append(e.dst, byte(f.NArgs))
	if f.Returns {
		e.dst = append(e.dst, 1)
	} else {
		e.dst = append(e.dst, 0)
	}

	start := -1
	if n > 0 {
		start = e.resolveForwarder(0)
	}
	if start < 0 {
		// The whole function is an inescapable forwarder cycle.
		e.u16(labelCycle)
		return e.dst
	}
	e.visit(start)

	dt := NewDomTree(g)
	e.v = newVNBuilder(g, dt)
	emitted := func(p int) bool { return e.v.states[p] != nil }
	for _, bpos := range e.order {
		parent := e.v.effectiveParent(bpos, emitted)
		st := e.v.entryState(bpos, parent)
		b := f.Blocks[bpos]
		instrs := b.Instrs
		kind, taken, fall := e.semanticTerm(bpos)
		if last := b.Last(); last != nil && last.Op.IsControl() {
			instrs = instrs[:len(instrs)-1]
		}
		// Value-number the block (terminator included, for IC).
		if cap(e.aVN) < len(b.Instrs) {
			e.aVN = make([]int, len(b.Instrs))
			e.bVN = make([]int, len(b.Instrs))
		}
		e.aVN, e.bVN = e.aVN[:len(b.Instrs)], e.bVN[:len(b.Instrs)]
		for i := range b.Instrs {
			_, e.aVN[i], e.bVN[i] = e.v.instrVN(st, &b.Instrs[i])
		}
		e.v.states[bpos] = st

		e.u16(uint16(e.label[bpos]))
		e.u16(uint16(len(instrs)))
		for i := range instrs {
			e.instr(&instrs[i], i)
		}
		e.dst = append(e.dst, 0xFF, byte(kind))
		switch kind {
		case termGoto:
			e.u16(e.targetLabel(taken))
		case termBranch:
			last := b.Last()
			e.dst = append(e.dst, byte(last.Rel))
			e.u16(e.targetLabel(taken))
			e.u16(e.targetLabel(fall))
		case termRet:
			last := b.Last()
			if last.A.Kind == rtl.OperReg {
				e.dst = append(e.dst, 1)
				e.u16(e.reg(last.A.Reg))
			} else {
				e.dst = append(e.dst, 0)
			}
		}
	}
	return e.dst
}

// EquivKey returns the equivalence-canonical key of f as a string
// usable as a map key.
func EquivKey(f *rtl.Func) string { return string(EquivEncode(nil, f)) }
