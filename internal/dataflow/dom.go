package dataflow

import "repro/internal/rtl"

// DomTree is the dominator tree of a CFG with constant-time dominance
// queries via pre/post interval numbering. Nodes are layout
// positions; unreachable blocks are not part of the tree (they
// dominate and are dominated by nothing but themselves).
type DomTree struct {
	// IDom[b] is the layout position of b's immediate dominator; the
	// entry is its own idom, unreachable blocks get -1.
	IDom []int
	// Children[b] lists the blocks immediately dominated by b, in
	// layout order.
	Children [][]int
	// Preorder is a dominator-tree preorder over the reachable
	// blocks: every block appears after its idom.
	Preorder []int

	pre, post []int
}

// NewDomTree builds the dominator tree for g.
func NewDomTree(g *rtl.CFG) *DomTree {
	idom := g.Dominators()
	n := len(idom)
	t := &DomTree{
		IDom:     idom,
		Children: make([][]int, n),
		pre:      make([]int, n),
		post:     make([]int, n),
	}
	for i := range t.pre {
		t.pre[i], t.post[i] = -1, -1
	}
	for b := 1; b < n; b++ {
		if idom[b] >= 0 {
			t.Children[idom[b]] = append(t.Children[idom[b]], b)
		}
	}
	if n == 0 {
		return t
	}
	// Iterative preorder DFS; a frame is re-pushed after its children
	// so the post number is assigned when the subtree completes.
	type frame struct {
		b    int
		next int
	}
	clock := 0
	stack := []frame{{b: 0}}
	t.pre[0] = clock
	clock++
	t.Preorder = append(t.Preorder, 0)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(t.Children[top.b]) {
			c := t.Children[top.b][top.next]
			top.next++
			t.pre[c] = clock
			clock++
			t.Preorder = append(t.Preorder, c)
			stack = append(stack, frame{b: c})
			continue
		}
		t.post[top.b] = clock
		clock++
		stack = stack[:len(stack)-1]
	}
	return t
}

// Reachable reports whether block b is reachable from entry (i.e. in
// the dominator tree).
func (t *DomTree) Reachable(b int) bool { return t.pre[b] != -1 }

// Dominates reports whether block a dominates block b. A block
// dominates itself; unreachable blocks dominate nothing else.
func (t *DomTree) Dominates(a, b int) bool {
	if a == b {
		return true
	}
	if t.pre[a] == -1 || t.pre[b] == -1 {
		return false
	}
	return t.pre[a] < t.pre[b] && t.post[b] < t.post[a]
}
