package driver_test

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mibench"
)

// TestCompareProgramWholeSuite runs the Table 7 harness over every
// benchmark: both compilers must preserve each program's behaviour,
// and the probabilistic compiler must attempt fewer phases overall.
func TestCompareProgramWholeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite comparison")
	}
	probs := minedProbs(t)
	d := machine.StrongARM()
	var oldAtt, probAtt int
	for _, p := range mibench.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			cmp, err := driver.CompareProgram(prog, p.Driver, p.DriverArgs, d, probs)
			if err != nil {
				t.Fatal(err) // includes behaviour-preservation failures
			}
			for _, r := range cmp.Rows {
				oldAtt += r.OldAttempted
				probAtt += r.ProbAttempted
			}
			if cmp.SpeedRatio() > 1.5 {
				t.Errorf("probabilistic code much slower: %.3f", cmp.SpeedRatio())
			}
		})
	}
	if probAtt >= oldAtt {
		t.Errorf("probabilistic compiler attempted more phases overall: %d vs %d", probAtt, oldAtt)
	}
}
