package driver

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// Row is one function's line of Table 7, comparing the old batch
// compilation against the probabilistic one.
type Row struct {
	Function string

	OldAttempted, OldActive   int
	OldTime                   time.Duration
	OldSize                   int
	ProbAttempted, ProbActive int
	ProbTime                  time.Duration
	ProbSize                  int
}

// TimeRatio is probabilistic/old compile time.
func (r Row) TimeRatio() float64 {
	if r.OldTime == 0 {
		return 1
	}
	return float64(r.ProbTime) / float64(r.OldTime)
}

// SizeRatio is probabilistic/old code size.
func (r Row) SizeRatio() float64 {
	if r.OldSize == 0 {
		return 1
	}
	return float64(r.ProbSize) / float64(r.OldSize)
}

// Comparison is a whole-program Table 7 result.
type Comparison struct {
	Rows []Row
	// OldSteps and ProbSteps are whole-program dynamic instruction
	// counts under each compiler (the paper's "Speed" ratio source);
	// zero when the program was not executed.
	OldSteps, ProbSteps int64
}

// SpeedRatio is the probabilistic/old dynamic instruction count ratio.
func (c Comparison) SpeedRatio() float64 {
	if c.OldSteps == 0 {
		return 1
	}
	return float64(c.ProbSteps) / float64(c.OldSteps)
}

// CompareProgram compiles every function of the program with both
// compilers, executes the named entry under each, verifies that both
// compilations preserve the unoptimized program's observable behaviour
// and returns the per-function and whole-program statistics.
func CompareProgram(prog *rtl.Program, entry string, args []int32, d *machine.Desc, probs *Probabilities) (Comparison, error) {
	var cmp Comparison

	ref, err := interp.Run(prog, entry, args...)
	if err != nil {
		return cmp, fmt.Errorf("driver: reference run: %w", err)
	}

	oldProg := prog.Clone()
	probProg := prog.Clone()
	for i := range prog.Funcs {
		row := Row{Function: prog.Funcs[i].Name}

		ores := Batch(oldProg.Funcs[i], d)
		if ores.CheckErr != nil {
			return cmp, fmt.Errorf("driver: batch compiling %s (after %q): %w",
				row.Function, ores.Seq, ores.CheckErr)
		}
		row.OldAttempted, row.OldActive = ores.Attempted, ores.Active
		row.OldTime = ores.Elapsed
		row.OldSize = oldProg.Funcs[i].NumInstrs()

		pres := Probabilistic(probProg.Funcs[i], d, probs)
		if pres.CheckErr != nil {
			return cmp, fmt.Errorf("driver: probabilistically compiling %s (after %q): %w",
				row.Function, pres.Seq, pres.CheckErr)
		}
		row.ProbAttempted, row.ProbActive = pres.Attempted, pres.Active
		row.ProbTime = pres.Elapsed
		row.ProbSize = probProg.Funcs[i].NumInstrs()

		cmp.Rows = append(cmp.Rows, row)
	}

	oldRun, err := interp.Run(oldProg, entry, args...)
	if err != nil {
		return cmp, fmt.Errorf("driver: batch-compiled run: %w", err)
	}
	probRun, err := interp.Run(probProg, entry, args...)
	if err != nil {
		return cmp, fmt.Errorf("driver: probabilistically-compiled run: %w", err)
	}
	if !reflect.DeepEqual(ref.Trace, oldRun.Trace) {
		return cmp, fmt.Errorf("driver: batch compilation changed program behaviour")
	}
	if !reflect.DeepEqual(ref.Trace, probRun.Trace) {
		return cmp, fmt.Errorf("driver: probabilistic compilation changed program behaviour")
	}
	cmp.OldSteps, cmp.ProbSteps = oldRun.Steps, probRun.Steps
	return cmp, nil
}

// TableHeader is the column header for FormatRow.
func TableHeader() string {
	return fmt.Sprintf("%-16s %9s %7s %9s | %9s %7s %9s | %6s %6s",
		"Function", "Attempted", "Active", "Time",
		"Attempted", "Active", "Time", "T-rat", "S-rat")
}

// FormatRow renders one Table 7 line.
func FormatRow(r Row) string {
	return fmt.Sprintf("%-16s %9d %7d %9s | %9d %7d %9s | %6.3f %6.3f",
		clip(r.Function, 16),
		r.OldAttempted, r.OldActive, r.OldTime.Round(time.Microsecond),
		r.ProbAttempted, r.ProbActive, r.ProbTime.Round(time.Microsecond),
		r.TimeRatio(), r.SizeRatio())
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
