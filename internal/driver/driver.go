// Package driver implements the two whole-function compilers compared
// in Section 6 of the paper:
//
//   - the conventional batch compiler, which attempts a fixed order of
//     optimization phases in a loop until no phase changes the
//     function, and
//   - the probabilistic batch compiler of Figure 8, which keeps a
//     current probability of each phase being active, always applies
//     the most promising phase next, and updates the probabilities
//     with the enabling/disabling statistics mined from the exhaustive
//     enumeration.
//
// Table 7 shows the probabilistic compiler reaching comparable code
// quality in roughly a third of the compilation time because it stops
// attempting phases that the statistics say are almost surely dormant.
package driver

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

// Metrics, when non-nil, tags every compilation: per-compiler counters
// (driver.batch.compiles, driver.prob.compiles, their attempted/active
// phase totals) and duration histograms. Trace, when non-nil, records
// one span per compiled function on lane 0, under which opt-layer
// spans would nest if the search is also tracing.
var (
	Metrics *telemetry.Registry
	Trace   *telemetry.Tracer
)

// observe tags one finished compilation under the given compiler name
// ("batch" or "prob").
func observe(compiler string, res *Result) {
	reg := Metrics
	if reg == nil {
		return
	}
	reg.Counter("driver." + compiler + ".compiles").Inc()
	reg.Counter("driver." + compiler + ".attempted").Add(int64(res.Attempted))
	reg.Counter("driver." + compiler + ".active").Add(int64(res.Active))
	reg.Histogram("driver." + compiler + ".duration_ns").Observe(int64(res.Elapsed))
	if res.CheckErr != nil {
		reg.Counter("driver." + compiler + ".check_failures").Inc()
	}
}

// Result describes one compilation of a function.
type Result struct {
	// Attempted counts phase applications tried; Active counts the
	// ones that changed the representation.
	Attempted int
	Active    int
	// Seq is the active phase sequence, by phase ID.
	Seq string
	// Elapsed is the wall-clock optimization time.
	Elapsed time.Duration
	// CheckErr is non-nil when opt.PostCheck rejected the code some
	// phase produced. Seq then holds the active sequence up to but not
	// including the offending phase, so Seq + CheckErr.Phase is the
	// exact reproduction recipe. Optimization stops at the violation;
	// the function is left in the rejected state for inspection.
	CheckErr *opt.CheckError
}

// BatchOrder is the fixed order the conventional compiler attempts in
// every pass: evaluation order determination first (it is only legal
// before register assignment), then the dataflow phases, then the loop
// and control-flow phases — a typical backend pipeline built from
// Table 1's phases.
var BatchOrder = []byte{'o', 'b', 's', 'c', 'k', 'h', 'l', 'q', 'g', 'n', 'i', 'j', 'r', 'u'}

// Batch optimizes f in place the way the old VPO batch compiler does:
// the BatchOrder list is attempted repeatedly until one full pass
// produces no change, then the compulsory entry/exit code is inserted.
func Batch(f *rtl.Func, d *machine.Desc) Result {
	start := time.Now()
	span := Trace.Begin("driver.batch", "driver", 0)
	res := Optimize(f, d)
	if res.CheckErr == nil {
		res.CheckErr = fixEntryExitChecked(f, d)
	}
	res.Elapsed = time.Since(start)
	span.End(map[string]any{"fn": f.Name, "seq": res.Seq})
	observe("batch", &res)
	return res
}

// fixEntryExitChecked runs the compulsory entry/exit fixup and then
// the verifier hook. FixEntryExit is not a candidate phase so it has
// no Table 1 letter; '=' marks it in CheckErr.
func fixEntryExitChecked(f *rtl.Func, d *machine.Desc) *opt.CheckError {
	opt.FixEntryExit(f)
	if opt.PostCheck != nil {
		if err := opt.PostCheck(f, d); err != nil {
			return &opt.CheckError{Phase: '=', Err: err}
		}
	}
	return nil
}

// recoverCheck converts an opt.CheckError panic out of opt.Attempt
// into res.CheckErr; any other panic is re-raised.
func recoverCheck(res *Result) {
	if r := recover(); r != nil {
		ce, ok := r.(*opt.CheckError)
		if !ok {
			panic(r)
		}
		res.CheckErr = ce
	}
}

// Optimize runs the batch loop without the final entry/exit fixup,
// which is useful when comparing against pre-fixup instances from the
// exhaustive search.
func Optimize(f *rtl.Func, d *machine.Desc) Result {
	start := time.Now()
	var res Result
	func() {
		defer recoverCheck(&res)
		st := opt.State{}
		for {
			activeThisPass := 0
			for _, id := range BatchOrder {
				p := opt.ByID(id)
				if !opt.Enabled(p, st) {
					continue
				}
				res.Attempted++
				if opt.Attempt(f, &st, p, d) {
					res.Active++
					activeThisPass++
					res.Seq += string(id)
				}
			}
			if activeThisPass == 0 {
				break
			}
		}
	}()
	res.Elapsed = time.Since(start)
	return res
}

// Probabilities are the inputs to the probabilistic compiler: the
// start probability of each phase (Table 4's St column) and the
// enabling/disabling matrices (Tables 4 and 5), indexed by
// analysis.PhaseIDs position. Cells of -1 (never observed) are treated
// as zero.
type Probabilities struct {
	Start   []float64
	Enable  [][]float64
	Disable [][]float64
}

// FromInteractions packages mined statistics for the compiler.
func FromInteractions(x *analysis.Interactions) *Probabilities {
	clamp := func(m [][]float64) [][]float64 {
		n := make([][]float64, len(m))
		for i := range m {
			n[i] = make([]float64, len(m[i]))
			for j, v := range m[i] {
				if v > 0 {
					n[i][j] = v
				}
			}
		}
		return n
	}
	return &Probabilities{
		Start:   append([]float64(nil), x.StartProbabilities()...),
		Enable:  clamp(x.Enabling()),
		Disable: clamp(x.Disabling()),
	}
}

// activeThreshold is the probability below which a phase is considered
// not worth attempting. Figure 8's loop runs "while any p[i] > 0"; a
// small epsilon keeps the floating-point update from scheduling phases
// with vanishing probability forever.
const activeThreshold = 0.01

// maxProbabilisticSteps bounds the scheduler against pathological
// probability tables.
const maxProbabilisticSteps = 512

// Probabilistic optimizes f in place with the Figure 8 algorithm:
//
//	foreach phase i: p[i] = e[i][st]
//	while any p[i] > 0:
//	    select j with the highest p; apply phase j
//	    if j was active:
//	        foreach i != j: p[i] += (1-p[i])*e[i][j] - p[i]*d[i][j]
//	    p[j] = 0
func Probabilistic(f *rtl.Func, d *machine.Desc, probs *Probabilities) Result {
	start := time.Now()
	span := Trace.Begin("driver.prob", "driver", 0)
	var res Result
	func() {
		defer recoverCheck(&res)
		st := opt.State{}
		n := len(analysis.PhaseIDs)
		p := make([]float64, n)
		copy(p, probs.Start)

		for step := 0; step < maxProbabilisticSteps; step++ {
			j := -1
			for i := 0; i < n; i++ {
				if p[i] > activeThreshold && (j < 0 || p[i] > p[j]) {
					j = i
				}
			}
			if j < 0 {
				break
			}
			phase := opt.ByID(analysis.PhaseIDs[j])
			if !opt.Enabled(phase, st) {
				p[j] = 0
				continue
			}
			res.Attempted++
			if opt.Attempt(f, &st, phase, d) {
				res.Active++
				res.Seq += string(analysis.PhaseIDs[j])
				for i := 0; i < n; i++ {
					if i == j {
						continue
					}
					p[i] += (1-p[i])*probs.Enable[i][j] - p[i]*probs.Disable[i][j]
					if p[i] < 0 {
						p[i] = 0
					}
					if p[i] > 1 {
						p[i] = 1
					}
				}
			}
			p[j] = 0
		}
	}()
	if res.CheckErr == nil {
		res.CheckErr = fixEntryExitChecked(f, d)
	}
	res.Elapsed = time.Since(start)
	span.End(map[string]any{"fn": f.Name, "seq": res.Seq})
	observe("prob", &res)
	return res
}
