package driver_test

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/mibench"
	"repro/internal/search"
)

const testSrc = `
int a[16] = {5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`

// minedProbs enumerates a couple of small functions once per test run.
func minedProbs(t *testing.T) *driver.Probabilities {
	t.Helper()
	prog, err := mc.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	x := analysis.NewInteractions()
	r := search.Run(prog.Func("sum"), search.Options{MaxNodes: 30000})
	if r.Aborted {
		t.Fatal("mining search aborted")
	}
	x.Accumulate(r)
	return driver.FromInteractions(x)
}

// TestBatchPreservesBehaviour compiles and runs a function.
func TestBatchPreservesBehaviour(t *testing.T) {
	prog, err := mc.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Run(prog, "sum", 16)
	if err != nil {
		t.Fatal(err)
	}
	res := driver.Batch(prog.Func("sum"), machine.StrongARM())
	if res.Active == 0 {
		t.Fatal("batch compiler applied nothing")
	}
	got, err := interp.Run(prog, "sum", 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != ref.Ret {
		t.Fatalf("batch compilation changed the result: %d vs %d", got.Ret, ref.Ret)
	}
	if got.Steps >= ref.Steps {
		t.Fatalf("batch compilation did not speed the function up: %d vs %d steps", got.Steps, ref.Steps)
	}
}

// TestFig8AlgorithmSteps drives the probabilistic compiler with a
// hand-built probability table and checks it follows Figure 8: highest
// probability first, enable/disable updates only after active phases.
func TestFig8AlgorithmSteps(t *testing.T) {
	prog, err := mc.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	n := len(analysis.PhaseIDs)
	probs := &driver.Probabilities{
		Start:   make([]float64, n),
		Enable:  make([][]float64, n),
		Disable: make([][]float64, n),
	}
	for i := range probs.Enable {
		probs.Enable[i] = make([]float64, n)
		probs.Disable[i] = make([]float64, n)
	}
	idx := func(id byte) int {
		for i, p := range analysis.PhaseIDs {
			if p == id {
				return i
			}
		}
		return -1
	}
	// s starts certain; s enables c and k; k enables s again; c
	// enables h.
	probs.Start[idx('s')] = 1.0
	probs.Enable[idx('c')][idx('s')] = 0.9
	probs.Enable[idx('k')][idx('s')] = 0.8
	probs.Enable[idx('s')][idx('k')] = 0.9
	probs.Enable[idx('h')][idx('c')] = 0.7

	f := prog.Func("sum")
	res := driver.Probabilistic(f, machine.StrongARM(), probs)
	if res.Active == 0 {
		t.Fatal("probabilistic compiler applied nothing")
	}
	// The first active phase must be s (the only nonzero start
	// probability), and c must come before k (0.9 > 0.8).
	if res.Seq[0] != 's' {
		t.Fatalf("first active phase %c, want s (seq %q)", res.Seq[0], res.Seq)
	}
	ci, ki := -1, -1
	for i := 0; i < len(res.Seq); i++ {
		if res.Seq[i] == 'c' && ci < 0 {
			ci = i
		}
		if res.Seq[i] == 'k' && ki < 0 {
			ki = i
		}
	}
	if ci >= 0 && ki >= 0 && ci > ki {
		t.Fatalf("c scheduled after k despite higher probability (seq %q)", res.Seq)
	}

	got, err := interp.Run(prog, "sum", 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != 82 {
		t.Fatalf("sum(16) = %d, want 82", got.Ret)
	}
}

// TestProbabilisticSavesAttempts reproduces the Table 7 shape on one
// program: fewer attempted phases, comparable code size, unchanged
// behaviour.
func TestProbabilisticSavesAttempts(t *testing.T) {
	probs := minedProbs(t)
	p, err := mibench.ByName("bitcount")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := driver.CompareProgram(prog, p.Driver, p.DriverArgs, machine.StrongARM(), probs)
	if err != nil {
		t.Fatal(err)
	}
	var oldAtt, probAtt, oldSize, probSize int
	for _, r := range cmp.Rows {
		oldAtt += r.OldAttempted
		probAtt += r.ProbAttempted
		oldSize += r.OldSize
		probSize += r.ProbSize
	}
	if probAtt >= oldAtt {
		t.Errorf("probabilistic compiler attempted more phases (%d) than batch (%d)", probAtt, oldAtt)
	}
	if float64(probSize) > 1.10*float64(oldSize) {
		t.Errorf("probabilistic code size %d more than 10%% worse than batch %d", probSize, oldSize)
	}
	if cmp.OldSteps == 0 || cmp.ProbSteps == 0 {
		t.Fatal("dynamic counts missing")
	}
	if cmp.SpeedRatio() > 1.25 {
		t.Errorf("probabilistic code much slower: ratio %.3f", cmp.SpeedRatio())
	}
}

// TestProbabilityFileRoundTrip saves and reloads the tables.
func TestProbabilityFileRoundTrip(t *testing.T) {
	probs := minedProbs(t)
	path := filepath.Join(t.TempDir(), "probs.json")
	if err := driver.SaveProbabilities(path, probs); err != nil {
		t.Fatal(err)
	}
	got, err := driver.LoadProbabilities(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(probs, got) {
		t.Fatal("probabilities changed across save/load")
	}
}

// TestBatchTerminates guards against a phase pair that re-enable each
// other forever.
func TestBatchTerminates(t *testing.T) {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		t.Fatal(err)
	}
	d := machine.StrongARM()
	for _, tf := range funcs {
		done := make(chan struct{})
		f := tf.Func.Clone()
		go func() {
			driver.Batch(f, d)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("batch compilation of %s did not terminate", tf.Func.Name)
		}
	}
}
