package driver

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// probFile is the on-disk representation of mined probabilities, as
// written by cmd/phasestats and read by cmd/probcc.
type probFile struct {
	PhaseIDs string      `json:"phase_ids"`
	Start    []float64   `json:"start"`
	Enable   [][]float64 `json:"enable"`
	Disable  [][]float64 `json:"disable"`
}

// SaveProbabilities writes the probability tables to a JSON file.
func SaveProbabilities(path string, p *Probabilities) error {
	pf := probFile{
		PhaseIDs: string(analysis.PhaseIDs),
		Start:    p.Start,
		Enable:   p.Enable,
		Disable:  p.Disable,
	}
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadProbabilities reads probability tables written by
// SaveProbabilities.
func LoadProbabilities(path string) (*Probabilities, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pf probFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("driver: parsing %s: %w", path, err)
	}
	if pf.PhaseIDs != string(analysis.PhaseIDs) {
		return nil, fmt.Errorf("driver: %s was produced for phases %q, this build has %q",
			path, pf.PhaseIDs, analysis.PhaseIDs)
	}
	n := len(analysis.PhaseIDs)
	if len(pf.Start) != n || len(pf.Enable) != n || len(pf.Disable) != n {
		return nil, fmt.Errorf("driver: %s has malformed tables", path)
	}
	return &Probabilities{Start: pf.Start, Enable: pf.Enable, Disable: pf.Disable}, nil
}
