package driver_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// withPostCheck installs a post-phase hook for the duration of one
// test. Driver tests run sequentially, so the package variable is safe
// to swap.
func withPostCheck(t *testing.T, hook func(*rtl.Func, *machine.Desc) error) {
	t.Helper()
	prev := opt.PostCheck
	opt.PostCheck = hook
	t.Cleanup(func() { opt.PostCheck = prev })
}

// TestBatchWithVerifierClean runs both compilers under the real
// verifier hook: a legitimate compilation must finish with a nil
// CheckErr and the post-fixup instance must also verify.
func TestBatchWithVerifierClean(t *testing.T) {
	withPostCheck(t, check.Err)
	d := machine.StrongARM()

	prog, err := mc.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	res := driver.Batch(prog.Func("sum"), d)
	if res.CheckErr != nil {
		t.Fatalf("batch compilation failed verification after %q: %v", res.Seq, res.CheckErr)
	}

	prog2, err := mc.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	pres := driver.Probabilistic(prog2.Func("sum"), d, minedProbs(t))
	if pres.CheckErr != nil {
		t.Fatalf("probabilistic compilation failed verification after %q: %v", pres.Seq, pres.CheckErr)
	}
}

// TestBatchSurfacesCheckError forces a rejecting hook and asserts the
// panic out of opt.Attempt is recovered into Result.CheckErr with the
// offending phase, instead of escaping to the caller.
func TestBatchSurfacesCheckError(t *testing.T) {
	boom := errors.New("synthetic rejection")
	withPostCheck(t, func(*rtl.Func, *machine.Desc) error { return boom })

	prog, err := mc.Compile(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	res := driver.Batch(prog.Func("sum"), machine.StrongARM())
	if res.CheckErr == nil {
		t.Fatal("rejecting hook produced no CheckErr")
	}
	if !errors.Is(res.CheckErr, boom) {
		t.Fatalf("CheckErr does not wrap the hook's error: %v", res.CheckErr)
	}
	if res.CheckErr.Phase == 0 {
		t.Fatal("CheckErr names no phase")
	}
	// The very first active phase is rejected, so no active sequence
	// accumulates before the violation.
	if res.Seq != "" {
		t.Fatalf("Seq = %q, want empty prefix before the offender", res.Seq)
	}
	if !strings.Contains(res.CheckErr.Error(), "broke a semantic invariant") {
		t.Fatalf("unexpected CheckErr message %q", res.CheckErr.Error())
	}
}
