package telemetry

import (
	"bytes"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestProgressReporter checks the reporter ticks and that Stop emits a
// final line even when the run finishes between ticks.
func TestProgressReporter(t *testing.T) {
	var buf syncBuffer
	var n atomic.Int64
	p := NewProgress(&buf, time.Millisecond, func() string {
		return "tick " + string('0'+byte(n.Add(1)%10))
	}).Start()
	time.Sleep(10 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "tick") {
		t.Errorf("no progress lines in %q", out)
	}
	if got := strings.Count(out, "\n"); got < 2 {
		t.Errorf("want at least a tick and a final line, got %d lines", got)
	}
}

// syncBuffer serializes writes: the reporter goroutine and the test
// read/write concurrently.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func (b *syncBuffer) lock() func() {
	if b.mu == nil {
		b.mu = make(chan struct{}, 1)
	}
	b.mu <- struct{}{}
	return func() { <-b.mu }
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	defer b.lock()()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	defer b.lock()()
	return b.buf.String()
}

// TestSessionFlags drives the CLI glue end to end: flag registration,
// Start, recording, and the Close flush of both output files.
func TestSessionFlags(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")

	var fl Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fl.Register(fs)
	if err := fs.Parse([]string{"-metrics", metrics, "-trace", trace, "-progress"}); err != nil {
		t.Fatal(err)
	}
	s, err := fl.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Registry == nil || s.Tracer == nil || !s.Progress {
		t.Fatalf("session did not materialize instruments: %+v", s)
	}
	s.Registry.Counter("search.nodes").Add(7)
	s.Tracer.Begin("search.expand", "search", 0).End(nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := ReadSnapshotFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["search.nodes"] != 7 {
		t.Errorf("metrics file counters = %v", snap.Counters)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	validateTraceJSON(t, data, 1)
}

// TestSessionPprof confirms the -pprof endpoint serves both the pprof
// index and the expvar registry dump.
func TestSessionPprof(t *testing.T) {
	fl := Flags{PprofAddr: "127.0.0.1:0"}
	s, err := fl.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Registry.Counter("probe").Inc()

	base := "http://" + s.ln.Addr().String()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
