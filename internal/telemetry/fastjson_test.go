package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// drainJSONLine decodes the single line h wrote into buf and resets it.
func drainJSONLine(t *testing.T, buf *bytes.Buffer) map[string]any {
	t.Helper()
	line := buf.String()
	buf.Reset()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("line not newline-terminated: %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("invalid JSON %q: %v", line, err)
	}
	return m
}

// TestFastJSONMatchesSlogJSON runs the same records through the fast
// handler and slog.JSONHandler and requires the decoded objects to be
// identical — the obs tooling (obs-smoke greps, jq filters) must not
// care which handler produced a line.
func TestFastJSONMatchesSlogJSON(t *testing.T) {
	cases := []struct {
		name string
		log  func(l *slog.Logger)
	}{
		{"plain", func(l *slog.Logger) { l.Info("hello") }},
		{"string attrs", func(l *slog.Logger) {
			l.Info("access", "method", "POST", "route", "/v1/enumerate")
		}},
		{"mixed kinds", func(l *slog.Logger) {
			l.Warn("m", "i", 42, "u", uint64(7), "f", 1.5, "b", true,
				"d", 250*time.Millisecond, "neg", -3)
		}},
		{"escaping", func(l *slog.Logger) {
			l.Info("quote\"back\\slash", "k", "tab\there\nnewline\x1bescape", "uni", "héllo ☃")
		}},
		{"error level", func(l *slog.Logger) { l.Error("boom", "err", "bad input") }},
		{"debug dropped", func(l *slog.Logger) { l.Debug("invisible") }},
		{"group value", func(l *slog.Logger) {
			l.Info("m", slog.Group("g", slog.String("a", "1"), slog.Int("b", 2)))
		}},
		{"empty group elided", func(l *slog.Logger) {
			l.Info("m", slog.Group("g"), "after", "x")
		}},
		{"inline empty-key group", func(l *slog.Logger) {
			l.Info("m", slog.Group("", slog.String("a", "1")), "after", "x")
		}},
		{"with attrs", func(l *slog.Logger) {
			l.With("component", "search", "n", 9).Info("m", "k", "v")
		}},
		{"with group", func(l *slog.Logger) {
			l.WithGroup("req").Info("m", "k", "v", "n", 1)
		}},
		{"nested with group", func(l *slog.Logger) {
			l.WithGroup("a").WithGroup("b").Info("m", "k", "v", "n", 1)
		}},
		{"logvaluer", func(l *slog.Logger) {
			l.Info("m", "v", deferredValue{})
		}},
		{"any fallback", func(l *slog.Logger) {
			l.Info("m", "list", []int{1, 2, 3}, "err", errors.New("wrapped"))
		}},
	}

	var fastBuf, refBuf bytes.Buffer
	fast := slog.New(NewFastJSONHandler(&fastBuf, slog.LevelInfo))
	ref := slog.New(slog.NewJSONHandler(&refBuf, &slog.HandlerOptions{Level: slog.LevelInfo}))

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fastBuf.Reset()
			refBuf.Reset()
			tc.log(fast)
			tc.log(ref)
			if fastBuf.Len() == 0 && refBuf.Len() == 0 {
				return // both dropped it (below level)
			}
			got := drainJSONLine(t, &fastBuf)
			want := drainJSONLine(t, &refBuf)
			// Timestamps differ between the two calls; compare format
			// shape separately and drop them from the deep compare.
			gt, _ := got["time"].(string)
			if _, err := time.Parse("2006-01-02T15:04:05.000Z07:00", gt); err != nil {
				t.Errorf("time %q not RFC3339-millis: %v", gt, err)
			}
			delete(got, "time")
			delete(want, "time")
			if !deepEqualJSON(got, want) {
				t.Errorf("fast handler diverged\n got: %#v\nwant: %#v", got, want)
			}
		})
	}
}

// deferredValue exercises the LogValuer resolve path.
type deferredValue struct{}

func (deferredValue) LogValue() slog.Value { return slog.StringValue("resolved") }

func deepEqualJSON(a, b any) bool {
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && bytes.Equal(ab, bb)
}

func TestFastJSONLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(NewFastJSONHandler(&buf, slog.LevelWarn))
	l.Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("info line emitted under warn level: %q", buf.String())
	}
	l.Warn("kept")
	m := drainJSONLine(t, &buf)
	if m["level"] != "WARN" || m["msg"] != "kept" {
		t.Fatalf("unexpected record: %v", m)
	}
}

func TestFastJSONControlCharEscapes(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(NewFastJSONHandler(&buf, slog.LevelInfo))
	l.Info("m", "k", "a\x00b\x1fc")
	line := buf.String()
	if !strings.Contains(line, `a\u0000b\u001fc`) {
		t.Fatalf("control chars not \\u-escaped: %q", line)
	}
	m := drainJSONLine(t, &buf)
	if m["k"] != "a\x00b\x1fc" {
		t.Fatalf("round trip lost bytes: %q", m["k"])
	}
}

// TestFastJSONConcurrentWriters checks the handler's internal write
// lock keeps whole lines atomic: all goroutines share one handler, so
// the bytes.Buffer is only touched under that lock.
func TestFastJSONConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(NewFastJSONHandler(&buf, slog.LevelInfo))
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				l.Info("concurrent", "goroutine", g, "i", i)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("expected 400 lines, got %d", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved or corrupt line %q: %v", line, err)
		}
	}
}

func BenchmarkJSONHandlerAccessLine(b *testing.B) {
	attrs := func(l *slog.Logger, ctx context.Context) {
		l.LogAttrs(ctx, slog.LevelInfo, "access",
			slog.String("method", "POST"),
			slog.String("route", "/v1/enumerate"),
			slog.Int("status", 200),
			slog.Int64("bytes", 4096),
			slog.Int64("duration_ms", 3),
			slog.String("cache", "mem"),
		)
	}
	ctx := WithRequestID(context.Background(), "bench0123456789ab")
	b.Run("fast", func(b *testing.B) {
		l := slog.New(NewStampHandler(NewFastJSONHandler(io.Discard, slog.LevelInfo)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			attrs(l, ctx)
		}
	})
	b.Run("slog", func(b *testing.B) {
		l := slog.New(NewStampHandler(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelInfo})))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			attrs(l, ctx)
		}
	})
}
