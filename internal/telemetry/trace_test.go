package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a clock that advances one millisecond per call,
// making trace output byte-for-byte deterministic.
func fakeClock() func() time.Time {
	t0 := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func deterministicTracer() *Tracer {
	tr := &Tracer{now: fakeClock()}
	tr.start = tr.now()
	return tr
}

// TestTraceGolden pins the emitted bytes against a golden file —
// regenerate with "go test ./internal/telemetry -run TraceGolden
// -update" — and independently validates the document is well-formed
// Chrome trace_event JSON the way chrome://tracing requires it.
func TestTraceGolden(t *testing.T) {
	tr := deterministicTracer()
	lane := tr.NewTID()
	expand := tr.Begin("search.expand", "search", lane)
	attempt := tr.Begin("opt.attempt:c", "opt", lane)
	attempt.End(map[string]any{"active": true})
	verify := tr.Begin("check.verify", "check", lane)
	verify.End(nil)
	expand.End(map[string]any{"seq": "sc"})
	tr.Instant("search.abort", "search", 0, map[string]any{"reason": "timeout"})

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	validateTraceJSON(t, buf.Bytes(), 3)
}

// validateTraceJSON asserts the trace_event structural contract: a
// traceEvents array whose elements carry name/ph/ts/pid/tid, phases
// limited to the ones we emit, and non-negative microsecond times.
func validateTraceJSON(t *testing.T, data []byte, wantSpans int) {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayUnit)
	}
	spans := 0
	for i, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Errorf("event %d missing required key %q: %v", i, key, e)
			}
		}
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			spans++
			dur, ok := e["dur"].(float64)
			if !ok || dur < 0 {
				t.Errorf("event %d: complete event needs non-negative dur, got %v", i, e["dur"])
			}
		case "i":
		default:
			t.Errorf("event %d: unexpected phase %q", i, ph)
		}
		if ts, ok := e["ts"].(float64); !ok || ts < 0 {
			t.Errorf("event %d: bad ts %v", i, e["ts"])
		}
	}
	if spans != wantSpans {
		t.Errorf("trace has %d complete spans, want %d", spans, wantSpans)
	}
}

// TestTracerConcurrent records spans from many goroutines on distinct
// lanes; under -race this is the tracer's thread-safety proof.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const goroutines, perG = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := tr.NewTID()
			for i := 0; i < perG; i++ {
				tr.Begin("work", "test", lane).End(nil)
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != goroutines*perG {
		t.Errorf("tracer recorded %d events, want %d", got, goroutines*perG)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	validateTraceJSON(t, buf.Bytes(), goroutines*perG)
}
