package telemetry

import (
	"strings"
	"testing"
)

func exampleSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Counter("server.requests").Add(12)
	cv := reg.CounterVec("http.requests", "endpoint", "status")
	cv.With("/v1/enumerate", "200").Add(9)
	cv.With("/v1/enumerate", "429").Add(1)
	cv.With("/metrics", "200").Add(2)
	reg.CounterVec("server.cache.requests", "cache_tier").With("mem").Add(5)
	reg.Gauge("server.queue.depth").Set(3)
	reg.GaugeVec("http.in_flight", "endpoint").With("/v1/enumerate").Set(1)
	h := reg.HistogramVec("http.request.duration_ns", "endpoint", "status").With("/v1/enumerate", "200")
	h.Observe(0)
	h.Observe(3)
	h.Observe(1000)
	h.Observe(1 << 40)
	return reg.Snapshot()
}

func TestWriteOpenMetricsValidates(t *testing.T) {
	var b strings.Builder
	if err := WriteOpenMetrics(&b, exampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := ValidateOpenMetrics([]byte(text)); err != nil {
		t.Fatalf("encoder output rejected by validator: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE server_requests counter\n",
		"server_requests_total 12\n",
		`http_requests_total{endpoint="/v1/enumerate",status="200"} 9`,
		`http_requests_total{endpoint="/v1/enumerate",status="429"} 1`,
		`server_cache_requests_total{cache_tier="mem"} 5`,
		"# TYPE server_queue_depth gauge\n",
		"server_queue_depth 3\n",
		`http_in_flight{endpoint="/v1/enumerate"} 1`,
		"# TYPE http_request_duration_ns histogram\n",
		`http_request_duration_ns_bucket{endpoint="/v1/enumerate",status="200",le="0"} 1`,
		`http_request_duration_ns_bucket{endpoint="/v1/enumerate",status="200",le="+Inf"} 4`,
		`http_request_duration_ns_count{endpoint="/v1/enumerate",status="200"} 4`,
		"# EOF\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q\n%s", want, text)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("exposition does not end with # EOF")
	}
}

func TestOpenMetricsHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d.ns")
	for _, v := range []int64{1, 1, 2, 3, 8, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := WriteOpenMetrics(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := ValidateOpenMetrics([]byte(text)); err != nil {
		t.Fatalf("validator: %v\n%s", err, text)
	}
	// pow 1 (v=1, x2) -> le 1 cum 2; pow 2 (2,3) -> le 3 cum 4;
	// pow 4 (8) -> le 15 cum 5; pow 7 (100) -> le 127 cum 6.
	for _, want := range []string{
		`d_ns_bucket{le="1"} 2`,
		`d_ns_bucket{le="3"} 4`,
		`d_ns_bucket{le="15"} 5`,
		`d_ns_bucket{le="127"} 6`,
		`d_ns_bucket{le="+Inf"} 6`,
		"d_ns_count 6",
		"d_ns_sum 115",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in\n%s", want, text)
		}
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"no EOF":              "# TYPE x counter\nx_total 1\n",
		"content after EOF":   "# EOF\nx 1\n# EOF\n",
		"sample without TYPE": "x_total 1\n# EOF\n",
		"counter no _total":   "# TYPE x counter\nx 1\n# EOF\n",
		"bad value":           "# TYPE x gauge\nx forty\n# EOF\n",
		"interleaved":         "# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\na 2\n# EOF\n",
		"bad name":            "# TYPE 9x gauge\n9x 1\n# EOF\n",
		"bucket order": "# TYPE h histogram\n" +
			`h_bucket{le="8"} 3` + "\n" + `h_bucket{le="2"} 1` + "\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_count 3\nh_sum 9\n# EOF\n",
		"non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 3` + "\n" + `h_bucket{le="8"} 1` + "\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_count 3\nh_sum 9\n# EOF\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_count 4\nh_sum 9\n# EOF\n",
		"no inf bucket": "# TYPE h histogram\nh_count 4\nh_sum 9\n# EOF\n",
	}
	for name, text := range cases {
		if err := ValidateOpenMetrics([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted\n%s", name, text)
		}
	}
	if err := ValidateOpenMetrics([]byte("# EOF\n")); err != nil {
		t.Errorf("empty exposition rejected: %v", err)
	}
}
