package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics text export of a Snapshot.
//
// The registry's dotted names sanitize to OpenMetrics metric names
// (dots become underscores), labeled series re-group under their
// family, counters gain the mandated _total sample suffix, and the
// log₂ histograms render as cumulative le-bucketed histogram families
// (bucket i of the registry covers integer values 2^(i-1)..2^i-1, so
// its inclusive upper bound is 2^i-1). The exposition ends with the
// required "# EOF" terminator, so a strict parser accepts it.

// OpenMetricsContentType is the Content-Type of the exposition.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// omFamily is one metric family being assembled for exposition.
type omFamily struct {
	name string // sanitized family name
	typ  string // "counter", "gauge", "histogram"
	rows []omRow
}

type omRow struct {
	series string // canonical registry series name (sort key)
	labels []Label
	value  int64
	hist   *HistogramSnapshot
}

// WriteOpenMetrics renders s as OpenMetrics text.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	fams := map[string]*omFamily{}
	add := func(series, typ string, value int64, hist *HistogramSnapshot) {
		base, labels, ok := ParseSeries(series)
		if !ok {
			base, labels = series, nil
		}
		name := sanitizeMetricName(base)
		f := fams[name+" "+typ]
		if f == nil {
			f = &omFamily{name: name, typ: typ}
			fams[name+" "+typ] = f
		}
		f.rows = append(f.rows, omRow{series: series, labels: labels, value: value, hist: hist})
	}
	for name, v := range s.Counters {
		add(name, "counter", v, nil)
	}
	for name, v := range s.Gauges {
		add(name, "gauge", v, nil)
	}
	for name := range s.Histograms {
		h := s.Histograms[name]
		add(name, "histogram", 0, &h)
	}

	ordered := make([]*omFamily, 0, len(fams))
	for _, f := range fams {
		sort.Slice(f.rows, func(i, j int) bool { return f.rows[i].series < f.rows[j].series })
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].typ < ordered[j].typ
	})

	var b strings.Builder
	for _, f := range ordered {
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, row := range f.rows {
			switch f.typ {
			case "counter":
				fmt.Fprintf(&b, "%s_total%s %d\n", f.name, renderLabels(row.labels, "", 0), row.value)
			case "gauge":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(row.labels, "", 0), row.value)
			case "histogram":
				writeHistogram(&b, f.name, row.labels, row.hist)
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative non-empty
// buckets, the +Inf bucket, then _count and _sum.
func writeHistogram(b *strings.Builder, name string, labels []Label, h *HistogramSnapshot) {
	cum := int64(0)
	for _, cell := range h.Buckets {
		cum += cell.Count
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labels, bucketLE(cell.Pow), 1), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labels, "+Inf", 1), h.Count)
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels, "", 0), h.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, renderLabels(labels, "", 0), h.Sum)
}

// bucketLE is the inclusive upper bound of registry bucket pow:
// bucket 0 counts values <= 0, bucket i counts 2^(i-1) <= v < 2^i.
func bucketLE(pow int) string {
	if pow <= 0 {
		return "0"
	}
	return strconv.FormatUint(uint64(1)<<uint(pow)-1, 10)
}

// renderLabels renders a label set, optionally with an le label
// appended (leMode 1). An empty set with no le renders as nothing.
func renderLabels(labels []Label, le string, leMode int) string {
	if len(labels) == 0 && leMode == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if leMode == 1 {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func sanitizeMetricName(s string) string {
	return sanitizeName(s, true)
}

func sanitizeLabelName(s string) string {
	return sanitizeName(s, false)
}

func sanitizeName(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9') || (allowColon && r == ':')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ValidateOpenMetrics checks that data is a well-formed OpenMetrics
// text exposition: metric and label name grammar, one TYPE per family
// declared before its samples, un-interleaved family blocks, sample
// suffixes matching the family type, numeric sample values, cumulative
// histogram buckets whose +Inf equals _count, and the mandatory # EOF
// terminator. It is the parser the tests and `omlint` run against
// /metrics — deliberately strict on everything the encoder emits.
func ValidateOpenMetrics(data []byte) error {
	text := string(data)
	if !strings.HasSuffix(text, "# EOF\n") && text != "# EOF" {
		return fmt.Errorf("openmetrics: missing final \"# EOF\" terminator")
	}
	lines := strings.Split(text, "\n")
	types := map[string]string{} // family -> type
	closed := map[string]bool{}  // family blocks already ended
	var curFam string
	// histogram bookkeeping, keyed by family + non-le label set
	histPrevLE := map[string]float64{}
	histPrevCum := map[string]int64{}
	histInf := map[string]int64{}
	histCount := map[string]int64{}
	histInfSeen := map[string]bool{}
	sawEOF := false

	for ln, line := range lines {
		if line == "" {
			continue
		}
		if sawEOF {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", ln+1)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "TYPE" {
				if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "UNIT") {
					continue
				}
				return fmt.Errorf("openmetrics: line %d: malformed metadata line %q", ln+1, line)
			}
			fam, typ := fields[2], fields[3]
			if !validMetricName(fam) {
				return fmt.Errorf("openmetrics: line %d: invalid family name %q", ln+1, fam)
			}
			if _, dup := types[fam]; dup {
				return fmt.Errorf("openmetrics: line %d: duplicate TYPE for family %q", ln+1, fam)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "unknown", "info", "stateset", "gaugehistogram":
			default:
				return fmt.Errorf("openmetrics: line %d: unknown type %q", ln+1, typ)
			}
			if curFam != "" && curFam != fam {
				closed[curFam] = true
			}
			if closed[fam] {
				return fmt.Errorf("openmetrics: line %d: family %q block interleaved", ln+1, fam)
			}
			types[fam] = typ
			curFam = fam
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", ln+1, err)
		}
		fam, suffix := sampleFamily(name, types)
		if fam == "" {
			return fmt.Errorf("openmetrics: line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		if fam != curFam {
			if closed[fam] {
				return fmt.Errorf("openmetrics: line %d: family %q block interleaved", ln+1, fam)
			}
			closed[curFam] = true
			curFam = fam
		}
		typ := types[fam]
		switch typ {
		case "counter":
			if suffix != "_total" && suffix != "_created" {
				return fmt.Errorf("openmetrics: line %d: counter sample %q must end in _total", ln+1, name)
			}
			if value < 0 {
				return fmt.Errorf("openmetrics: line %d: negative counter %q", ln+1, name)
			}
		case "gauge":
			if suffix != "" {
				return fmt.Errorf("openmetrics: line %d: gauge sample %q has a suffix", ln+1, name)
			}
		case "histogram":
			key := fam + renderLabels(stripLE(labels), "", 0)
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("openmetrics: line %d: histogram bucket without le", ln+1)
				}
				leV := math.Inf(1)
				if le != "+Inf" {
					leV, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("openmetrics: line %d: bad le %q", ln+1, le)
					}
				}
				if prev, ok := histPrevLE[key]; ok && leV <= prev {
					return fmt.Errorf("openmetrics: line %d: le %q out of order for %s", ln+1, le, key)
				}
				if int64(value) < histPrevCum[key] {
					return fmt.Errorf("openmetrics: line %d: bucket counts of %s not cumulative", ln+1, key)
				}
				histPrevLE[key], histPrevCum[key] = leV, int64(value)
				if math.IsInf(leV, 1) {
					histInf[key], histInfSeen[key] = int64(value), true
				}
			case "_count":
				histCount[key] = int64(value)
			case "_sum", "_created":
			default:
				return fmt.Errorf("openmetrics: line %d: bad histogram sample suffix on %q", ln+1, name)
			}
		}
	}
	for key, inf := range histInf {
		if c, ok := histCount[key]; ok && c != inf {
			return fmt.Errorf("openmetrics: histogram %s: +Inf bucket %d != count %d", key, inf, c)
		}
	}
	for key := range histCount {
		if !histInfSeen[key] {
			return fmt.Errorf("openmetrics: histogram %s has no +Inf bucket", key)
		}
	}
	return nil
}

// sampleFamily resolves a sample name to its declared family: the
// longest declared family the name extends with a known suffix.
func sampleFamily(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_total", "_bucket", "_count", "_sum", "_created"} {
		if strings.HasSuffix(name, suf) {
			if base := strings.TrimSuffix(name, suf); types[base] != "" {
				return base, suf
			}
		}
	}
	return "", ""
}

func stripLE(labels []Label) []Label {
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key != "le" {
			out = append(out, l)
		}
	}
	return out
}

func labelValue(labels []Label, key string) (string, bool) {
	for _, l := range labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

// parseSampleLine parses `name{labels} value [timestamp]`.
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		_, labels, ok := ParseSeries(name + rest[brace:end+1])
		if !ok {
			return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
		}
		for _, l := range labels {
			if !validLabelName(l.Key) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", l.Key)
			}
		}
		valuePart := strings.TrimSpace(rest[end+1:])
		v, err := parseSampleValue(valuePart)
		if err != nil {
			return "", nil, 0, err
		}
		if !validMetricName(name) {
			return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
		}
		return name, labels, v, nil
	}
	if sp < 0 {
		return "", nil, 0, fmt.Errorf("no value in sample %q", line)
	}
	name = rest[:sp]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	v, err := parseSampleValue(strings.TrimSpace(rest[sp+1:]))
	if err != nil {
		return "", nil, 0, err
	}
	return name, nil, v, nil
}

func parseSampleValue(s string) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 || len(fields) > 2 {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	return v, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
