package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Labeled metric families.
//
// A family is a named instrument plus a small fixed set of label keys
// ("endpoint", "status", "cache_tier"); each distinct combination of
// label values is one series with its own Counter/Gauge/Histogram.
// Series are interned in the owning Registry under a canonical series
// name — the family name followed by the sorted, escaped label pairs,
// e.g.
//
//	http.requests{endpoint="/v1/enumerate",status="200"}
//
// so the existing Snapshot / Merge / WriteFile machinery carries
// labeled families unchanged (a series is just a name), snapshots from
// pre-label binaries stay loadable, and aggregation across labels is a
// ParseSeries away. The OpenMetrics encoder recovers the family
// structure from the same encoding.

// SeriesName renders the canonical series name for a family with the
// given label keys and values. Pairs sort by key; values are escaped
// (\\, \" and \n) the way OpenMetrics escapes label values. A family
// with no labels is its bare name.
func SeriesName(family string, keys, values []string) string {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("telemetry: family %s: %d label keys but %d values", family, len(keys), len(values)))
	}
	if len(keys) == 0 {
		return family
	}
	type pair struct{ k, v string }
	pairs := make([]pair, len(keys))
	for i := range keys {
		pairs[i] = pair{keys[i], values[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Label is one key="value" pair of a parsed series name.
type Label struct {
	Key   string
	Value string
}

// ParseSeries splits a canonical series name into its family name and
// label pairs. A name without labels parses as (name, nil, true).
// Malformed names report ok=false; callers typically fall back to
// treating the whole string as an unlabeled name.
func ParseSeries(series string) (family string, labels []Label, ok bool) {
	open := strings.IndexByte(series, '{')
	if open < 0 {
		return series, nil, true
	}
	if open == 0 || series[len(series)-1] != '}' {
		return "", nil, false
	}
	family = series[:open]
	body := series[open+1 : len(series)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq <= 0 {
			return "", nil, false
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return "", nil, false // unterminated value
			}
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, false
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		body = rest[i+1:]
		if len(body) > 0 {
			if body[0] != ',' {
				return "", nil, false
			}
			body = body[1:]
		}
	}
	return family, labels, true
}

// vec is the shared intern table of a labeled family: a family-local
// cache in front of the Registry so the hot path joins values and does
// one map lookup instead of re-encoding the series name every time.
type vec[T any] struct {
	reg    *Registry
	family string
	keys   []string
	lookup func(r *Registry, series string) T

	mu     sync.RWMutex
	series map[string]T
}

func (v *vec[T]) with(values []string) T {
	if v == nil {
		var zero T
		return zero
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("telemetry: family %s has labels %v; got %d values", v.family, v.keys, len(values)))
	}
	ck := strings.Join(values, "\x00")
	v.mu.RLock()
	inst, ok := v.series[ck]
	v.mu.RUnlock()
	if ok {
		return inst
	}
	inst = v.lookup(v.reg, SeriesName(v.family, v.keys, values))
	v.mu.Lock()
	if prev, ok := v.series[ck]; ok {
		inst = prev
	} else {
		v.series[ck] = inst
	}
	v.mu.Unlock()
	return inst
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ v *vec[*Counter] }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ v *vec[*Gauge] }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ v *vec[*Histogram] }

// CounterVec returns a counter family with the given label keys. A nil
// registry returns a vec whose series are all the nil no-op counter.
// The keys are part of the family identity: every With call must
// supply exactly one value per key, in the same order.
func (r *Registry) CounterVec(family string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{newVec(r, family, keys, (*Registry).Counter)}
}

// GaugeVec returns a gauge family with the given label keys.
func (r *Registry) GaugeVec(family string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{newVec(r, family, keys, (*Registry).Gauge)}
}

// HistogramVec returns a histogram family with the given label keys.
func (r *Registry) HistogramVec(family string, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{newVec(r, family, keys, (*Registry).Histogram)}
}

func newVec[T any](r *Registry, family string, keys []string, lookup func(*Registry, string) T) *vec[T] {
	return &vec[T]{reg: r, family: family, keys: keys, lookup: lookup, series: make(map[string]T)}
}

// With returns the series counter for the given label values
// (nil — and therefore no-op — on a nil vec).
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(values)
}

// With returns the series gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.with(values)
}

// With returns the series histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.with(values)
}
