package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer collects spans and emits them as Chrome trace_event JSON —
// the format chrome://tracing and https://ui.perfetto.dev load
// directly — so a whole enumeration renders as a flame of
// search.expand → opt.attempt:<phase> → check.verify spans.
//
// Spans carry a caller-chosen tid (lane). Chrome nests events by time
// containment within one (pid, tid) lane, so concurrent workers must
// record on distinct tids; serial phases of a run use tid 0.
type Tracer struct {
	start time.Time
	now   func() time.Time // overridable for deterministic tests

	mu     sync.Mutex
	events []traceEvent
	tids   int
}

// traceEvent is one element of the trace_event "traceEvents" array.
// Timestamps and durations are microseconds, per the format spec.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.start = t.now()
	return t
}

// NewTID allocates a fresh lane for a concurrent worker. Lane 0 is by
// convention the serial control lane. A nil tracer returns 0.
func (t *Tracer) NewTID() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tids++
	return t.tids
}

// Span is an open interval started by Begin. The zero Span (from a nil
// tracer) is valid and End is a no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Active reports whether the span will record an event. Hot paths
// check it before building End arguments (or a dynamic span name), so
// that a disabled tracer costs no allocations per call.
func (s Span) Active() bool { return s.t != nil }

// Begin opens a span on lane tid. On a nil tracer the returned span is
// inert, so hot paths call Begin/End unconditionally.
func (t *Tracer) Begin(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: t.now()}
}

// End closes the span, recording a complete ("X") event. args may be
// nil.
func (s Span) End(args map[string]any) {
	if s.t == nil {
		return
	}
	end := s.t.now()
	s.t.append(traceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   micros(s.start.Sub(s.t.start)),
		Dur:  micros(end.Sub(s.start)),
		PID:  1,
		TID:  s.tid,
		Args: args,
	})
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(name, cat string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.append(traceEvent{
		Name: name,
		Cat:  cat,
		Ph:   "i",
		TS:   micros(t.now().Sub(t.start)),
		PID:  1,
		TID:  tid,
		Args: args,
	})
}

func (t *Tracer) append(e traceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the JSON Object Format of the trace_event spec: the
// array form also loads, but the object form admits metadata.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Write emits the collected events as trace_event JSON.
func (t *Tracer) Write(w io.Writer) error {
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		tf.TraceEvents = append(tf.TraceEvents, t.events...)
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&tf); err != nil {
		return fmt.Errorf("telemetry: encoding trace: %w", err)
	}
	return nil
}

// WriteFile writes the trace to a file.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
