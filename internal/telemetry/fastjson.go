package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"sync"
	"time"
)

// jsonHandler is a purpose-built replacement for slog.JSONHandler on
// the serving hot path: the access log writes one line per request, so
// its encode cost is part of every response's latency (entirely so on
// single-CPU hosts, where the async consumer cannot overlap with the
// handler). It emits the same shape slog.JSONHandler does — {"time":
// RFC3339-millis, "level", "msg", attrs...} one object per line, with
// DEBUG/INFO/WARN/ERROR level strings — by appending straight into a
// pooled buffer with strconv instead of walking the generic encoder,
// at roughly a third of the cost. Groups nest as objects; values of
// unusual kinds fall back to encoding/json.
type jsonHandler struct {
	w     io.Writer
	mu    *sync.Mutex
	level slog.Level
	// preformatted WithAttrs attrs, appended to every record
	prefix []byte
	// open group names from WithGroup, wrapping record attrs
	groups []string
}

// NewFastJSONHandler returns the handler NewLogger uses for "json".
func NewFastJSONHandler(w io.Writer, level slog.Level) slog.Handler {
	return &jsonHandler{w: w, mu: &sync.Mutex{}, level: level}
}

func (h *jsonHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.level }

// WithAttrs preformats the attrs once so repeated use of a derived
// logger costs a single copy per record. Attrs are rendered at the top
// level: this handler does not support WithGroup-then-WithAttrs
// nesting (nothing in this codebase derives loggers inside a group).
func (h *jsonHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.prefix = make([]byte, len(h.prefix))
	copy(nh.prefix, h.prefix)
	for _, a := range attrs {
		nh.prefix = appendAttr(nh.prefix, a)
	}
	return &nh
}

func (h *jsonHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.groups = append(append([]string(nil), h.groups...), name)
	return &nh
}

var jsonBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func (h *jsonHandler) Handle(_ context.Context, rec slog.Record) error {
	bp := jsonBufPool.Get().(*[]byte)
	buf := (*bp)[:0]

	buf = append(buf, `{"time":"`...)
	t := rec.Time
	if t.IsZero() {
		t = time.Now()
	}
	buf = t.AppendFormat(buf, "2006-01-02T15:04:05.000Z07:00")
	buf = append(buf, `","level":"`...)
	buf = append(buf, levelString(rec.Level)...)
	buf = append(buf, `","msg":`...)
	buf = appendJSONString(buf, rec.Message)
	buf = append(buf, h.prefix...)
	for i, g := range h.groups {
		if i == 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, g)
		buf = append(buf, ':', '{')
	}
	if len(h.groups) > 0 {
		n := len(buf)
		rec.Attrs(func(a slog.Attr) bool {
			buf = appendAttrSep(buf, a, len(buf) > n)
			return true
		})
		for range h.groups {
			buf = append(buf, '}')
		}
	} else {
		rec.Attrs(func(a slog.Attr) bool {
			buf = appendAttrSep(buf, a, true)
			return true
		})
	}
	buf = append(buf, "}\n"...)

	h.mu.Lock()
	_, err := h.w.Write(buf)
	h.mu.Unlock()
	*bp = buf
	jsonBufPool.Put(bp)
	return err
}

func levelString(l slog.Level) string {
	switch {
	case l < slog.LevelInfo:
		return "DEBUG"
	case l < slog.LevelWarn:
		return "INFO"
	case l < slog.LevelError:
		return "WARN"
	default:
		return "ERROR"
	}
}

// appendAttr appends `,"key":value`.
func appendAttr(buf []byte, a slog.Attr) []byte {
	return appendAttrSep(buf, a, true)
}

// appendAttrSep appends one attr, matching slog.JSONHandler's elision
// rules: empty-key non-group attrs are dropped, empty groups are
// dropped, and an empty-key group is inlined into its parent. An
// elided attr leaves buf untouched, so callers that need to know
// whether to emit a comma compare buf's length instead of counting.
func appendAttrSep(buf []byte, a slog.Attr, comma bool) []byte {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		g := v.Group()
		if len(g) == 0 {
			return buf
		}
		if a.Key == "" {
			for _, ga := range g {
				n := len(buf)
				buf = appendAttrSep(buf, ga, comma)
				comma = comma || len(buf) > n
			}
			return buf
		}
		if comma {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, a.Key)
		buf = append(buf, ':', '{')
		n := len(buf)
		for _, ga := range g {
			buf = appendAttrSep(buf, ga, len(buf) > n)
		}
		return append(buf, '}')
	}
	if a.Key == "" {
		return buf
	}
	if comma {
		buf = append(buf, ',')
	}
	buf = appendJSONString(buf, a.Key)
	buf = append(buf, ':')
	switch v.Kind() {
	case slog.KindString:
		buf = appendJSONString(buf, v.String())
	case slog.KindInt64:
		buf = strconv.AppendInt(buf, v.Int64(), 10)
	case slog.KindUint64:
		buf = strconv.AppendUint(buf, v.Uint64(), 10)
	case slog.KindBool:
		buf = strconv.AppendBool(buf, v.Bool())
	case slog.KindFloat64:
		buf = strconv.AppendFloat(buf, v.Float64(), 'g', -1, 64)
	case slog.KindDuration:
		buf = strconv.AppendInt(buf, int64(v.Duration()), 10)
	case slog.KindTime:
		buf = append(buf, '"')
		buf = v.Time().AppendFormat(buf, "2006-01-02T15:04:05.000Z07:00")
		buf = append(buf, '"')
	default:
		av := v.Any()
		if e, ok := av.(error); ok {
			// Matches slog.JSONHandler: errors log their message, not
			// their (usually empty) marshaled struct.
			if _, isMarshaler := av.(json.Marshaler); !isMarshaler {
				buf = appendJSONString(buf, e.Error())
				break
			}
		}
		if enc, err := json.Marshal(av); err == nil {
			buf = append(buf, enc...)
		} else {
			buf = appendJSONString(buf, fmt.Sprintf("%+v", av))
		}
	}
	return buf
}

// appendJSONString appends s as a JSON string literal. The fast path
// copies byte-for-byte; control characters, quotes and backslashes take
// the escape path (UTF-8 passes through unescaped — valid JSON).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
