package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressReporter ticks one-line status updates to a writer during a
// long-running operation. The line callback runs on the reporter's
// goroutine, so it must read shared state through atomics (the search
// exposes its live counters exactly that way).
type ProgressReporter struct {
	w        io.Writer
	interval time.Duration
	line     func() string

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewProgress creates a reporter that writes line() to w every
// interval once started. A final line is emitted on Stop so short runs
// still report.
func NewProgress(w io.Writer, interval time.Duration, line func() string) *ProgressReporter {
	return &ProgressReporter{
		w:        w,
		interval: interval,
		line:     line,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the ticking goroutine and returns the reporter for
// chaining. No-op on a nil receiver.
func (p *ProgressReporter) Start() *ProgressReporter {
	if p == nil {
		return nil
	}
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(p.w, p.line())
			case <-p.stop:
				fmt.Fprintln(p.w, p.line())
				return
			}
		}
	}()
	return p
}

// Stop halts the reporter after one final line and waits for the
// goroutine to exit. Safe to call more than once and on a nil
// receiver.
func (p *ProgressReporter) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.stop) })
	<-p.done
}
