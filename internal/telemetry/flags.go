package telemetry

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"
)

// Flags is the shared observability flag block of the CLIs
// (cmd/explore, cmd/vpocc, cmd/probcc): -metrics, -trace, -progress
// and -pprof behave identically everywhere.
type Flags struct {
	MetricsPath string
	TracePath   string
	Progress    bool
	PprofAddr   string
}

// Register installs the flag block on fs.
func (fl *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&fl.MetricsPath, "metrics", "", "write a metrics snapshot (counters, gauges, histograms) to this JSON file on exit")
	fs.StringVar(&fl.TracePath, "trace", "", "write Chrome trace_event JSON (chrome://tracing, Perfetto) to this file on exit")
	fs.BoolVar(&fl.Progress, "progress", false, "tick one-line status updates to stderr during long searches")
	fs.StringVar(&fl.PprofAddr, "pprof", "", "serve net/http/pprof and /debug/vars (registry dump) on this address, e.g. localhost:6060")
}

// Session owns the instruments a CLI run collects into. Registry and
// Tracer are nil when the matching flags are off, which the
// instrumented packages treat as telemetry-disabled — the hot paths
// then pay only nil checks.
type Session struct {
	Registry *Registry
	Tracer   *Tracer
	Progress bool

	flags Flags
	ln    net.Listener
	srv   *http.Server
}

// expvarOnce guards expvar.Publish, which panics on duplicate names;
// a process opens at most one pprof-serving session.
var expvarOnce sync.Once

// Start materializes the instruments the flags ask for and, with
// -pprof, begins serving the profiling endpoints. Always returns a
// usable Session (possibly with nil instruments).
func (fl *Flags) Start() (*Session, error) {
	s := &Session{flags: *fl, Progress: fl.Progress}
	if fl.MetricsPath != "" || fl.PprofAddr != "" {
		s.Registry = NewRegistry()
	}
	if fl.TracePath != "" {
		s.Tracer = NewTracer()
	}
	if fl.PprofAddr != "" {
		reg := s.Registry
		expvarOnce.Do(func() {
			expvar.Publish("telemetry", expvar.Func(func() any { return reg.Snapshot() }))
		})
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		ln, err := net.Listen("tcp", fl.PprofAddr)
		if err != nil {
			return nil, fmt.Errorf("telemetry: -pprof %s: %w", fl.PprofAddr, err)
		}
		s.ln = ln
		s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go s.srv.Serve(ln) //nolint:errcheck // closed by Session.Close
		fmt.Fprintf(os.Stderr, "telemetry: pprof and /debug/vars on http://%s/debug/pprof/\n", ln.Addr())
	}
	return s, nil
}

// Close flushes the metrics and trace files and stops the pprof
// server. Deferred right after Start so interrupted runs (context
// cancellation, Ctrl-C routed through signal.NotifyContext) still
// persist what they measured.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var first error
	if s.flags.MetricsPath != "" && s.Registry != nil {
		if err := s.Registry.Snapshot().WriteFile(s.flags.MetricsPath); err != nil {
			first = err
		} else {
			fmt.Fprintf(os.Stderr, "telemetry: metrics snapshot written to %s\n", s.flags.MetricsPath)
		}
	}
	if s.flags.TracePath != "" && s.Tracer != nil {
		if err := s.Tracer.WriteFile(s.flags.TracePath); err != nil && first == nil {
			first = err
		} else if err == nil {
			fmt.Fprintf(os.Stderr, "telemetry: %d trace events written to %s\n", s.Tracer.Len(), s.flags.TracePath)
		}
	}
	if s.srv != nil {
		if err := s.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
