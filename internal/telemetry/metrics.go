// Package telemetry is the zero-dependency observability layer of the
// reproduction: lock-cheap counters, gauges and log₂-bucketed duration
// histograms collected in a Registry, a span tracer that emits Chrome
// trace_event JSON (loadable in chrome://tracing or Perfetto), and a
// ProgressReporter that ticks one-line status updates during long
// enumerations.
//
// The paper's headline claim — that exhaustive phase order enumeration
// is *feasible* — is an empirical statement about where time and space
// go: nodes expanded, dormant prunes, identical-instance merges,
// per-phase cost. This package is the measurement substrate that lets
// the search, the phase engine, the compilers and the verifier report
// those quantities without taking a dependency on anything outside the
// standard library.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Tracer or *ProgressReporter are no-ops, so hot paths
// instrument unconditionally and pay only a nil check when telemetry
// is off.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (frontier size, current level).
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n. No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets covers every int64: bucket 0 counts exact zeros (and
// negatives, which durations never produce), bucket i counts values v
// with 2^(i-1) <= v < 2^i.
const numBuckets = 64

// Histogram is a log₂-bucketed distribution. Observations are a single
// atomic add per bucket plus count/sum, so concurrent workers hammer it
// without a lock.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	if i >= numBuckets {
		i = numBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Mean returns the live arithmetic mean of the observations (0 when
// empty or on a nil receiver). Count and sum are read separately, so
// under concurrent observation the mean is approximate — fine for the
// load estimates it feeds.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Registry holds named instruments. Registration takes a mutex;
// recording on the returned instruments is lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil, which is itself a valid no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Bucket is one non-empty histogram cell. Pow is the upper-bound
// exponent: the cell counts values v with 2^(Pow-1) <= v < 2^Pow
// (Pow 0 counts exact zeros).
type Bucket struct {
	Pow   int   `json:"pow"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the observations, or 0 when
// empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, the unit the
// -metrics flag writes and phasestats -from-metrics aggregates.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Safe to call while
// recording continues; each instrument is read atomically (the
// snapshot as a whole is not one atomic cut, which aggregation
// tolerates).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Pow: i, Count: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge combines two snapshots: counters and histogram cells add,
// gauges keep the larger magnitude reading (a high-water semantics
// that is commutative and associative, unlike last-writer-wins).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		if cur, ok := out.Gauges[k]; !ok || abs(v) > abs(cur) || (abs(v) == abs(cur) && v > cur) {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		out.Histograms[k] = mergeHist(out.Histograms[k], v)
	}
	return out
}

func mergeHist(a, b HistogramSnapshot) HistogramSnapshot {
	cells := map[int]int64{}
	for _, c := range a.Buckets {
		cells[c.Pow] += c.Count
	}
	for _, c := range b.Buckets {
		cells[c.Pow] += c.Count
	}
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	pows := make([]int, 0, len(cells))
	for p := range cells {
		pows = append(pows, p)
	}
	sort.Ints(pows)
	for _, p := range pows {
		out.Buckets = append(out.Buckets, Bucket{Pow: p, Count: cells[p]})
	}
	return out
}

// WriteFile writes the snapshot as indented JSON.
func (s Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding snapshot: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSnapshotFile reads a snapshot written by WriteFile.
func ReadSnapshotFile(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decoding %s: %w", path, err)
	}
	return s, nil
}
