package telemetry

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// Request-scoped structured logging.
//
// The serving path carries a *slog.Logger and the request/flight
// identifiers through the context; StampHandler re-reads them at
// record time so every log line emitted anywhere below a request —
// handler, pool worker, search engine — carries the same request_id
// the client received in X-Request-ID, without threading the IDs
// through every call signature.

type ctxKey int

const ctxKeyScope ctxKey = 0

// logScope bundles every request-scoped logging value under a single
// context key: the middleware attaches logger and request ID with one
// allocation, and StampHandler recovers both IDs with one context walk
// per record instead of one per field.
type logScope struct {
	logger   *slog.Logger
	reqID    string
	flightID string
}

func scopeFrom(ctx context.Context) *logScope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKeyScope).(*logScope)
	return s
}

// withScope stores a copy of s, preserving value semantics for the
// caller's derived contexts.
func withScope(ctx context.Context, s logScope) context.Context {
	return context.WithValue(ctx, ctxKeyScope, &s)
}

// WithRequestScope returns a context carrying both the logger and the
// request identifier — the request-path spelling of WithLogger +
// WithRequestID, at one context allocation instead of two.
func WithRequestScope(ctx context.Context, l *slog.Logger, id string) context.Context {
	s := logScope{logger: l, reqID: id}
	if old := scopeFrom(ctx); old != nil {
		s.flightID = old.flightID
	}
	return withScope(ctx, s)
}

// WithLogger returns a context carrying l.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	s := logScope{logger: l}
	if old := scopeFrom(ctx); old != nil {
		s.reqID, s.flightID = old.reqID, old.flightID
	}
	return withScope(ctx, s)
}

// LoggerFrom returns the context's logger, or a no-op logger when none
// (or a nil context) was attached — callers never need a nil check.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if s := scopeFrom(ctx); s != nil && s.logger != nil {
		return s.logger
	}
	return NopLogger()
}

// WithRequestID returns a context carrying the request identifier.
func WithRequestID(ctx context.Context, id string) context.Context {
	s := logScope{reqID: id}
	if old := scopeFrom(ctx); old != nil {
		s.logger, s.flightID = old.logger, old.flightID
	}
	return withScope(ctx, s)
}

// RequestID returns the context's request identifier ("" when absent).
func RequestID(ctx context.Context) string {
	if s := scopeFrom(ctx); s != nil {
		return s.reqID
	}
	return ""
}

// WithFlightID returns a context carrying the flight identifier.
func WithFlightID(ctx context.Context, id string) context.Context {
	s := logScope{flightID: id}
	if old := scopeFrom(ctx); old != nil {
		s.logger, s.reqID = old.logger, old.reqID
	}
	return withScope(ctx, s)
}

// FlightID returns the context's flight identifier ("" when absent).
func FlightID(ctx context.Context) string {
	if s := scopeFrom(ctx); s != nil {
		return s.flightID
	}
	return ""
}

// StampHandler decorates a slog.Handler so every record is stamped
// with the request_id and flight_id found in the log call's context.
type StampHandler struct{ inner slog.Handler }

// NewStampHandler wraps h.
func NewStampHandler(h slog.Handler) *StampHandler { return &StampHandler{inner: h} }

// Enabled implements slog.Handler.
func (h *StampHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, stamping the context identifiers.
func (h *StampHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := scopeFrom(ctx); s != nil {
		if s.reqID != "" {
			rec.AddAttrs(slog.String("request_id", s.reqID))
		}
		if s.flightID != "" {
			rec.AddAttrs(slog.String("flight_id", s.flightID))
		}
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs implements slog.Handler.
func (h *StampHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &StampHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *StampHandler) WithGroup(name string) slog.Handler {
	return &StampHandler{inner: h.inner.WithGroup(name)}
}

// nopHandler drops every record without formatting it.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that discards everything (Enabled is
// false, so callers pay no formatting cost).
func NopLogger() *slog.Logger { return nopLogger }

// NewLogger builds a request-stamping structured logger writing to w.
// Format is "json" (one JSON object per line, the access-log format
// obs tooling greps) or "text" (logfmt-ish, for humans); "off" or an
// unknown format returns the no-op logger.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	var h slog.Handler
	switch strings.ToLower(format) {
	case "json":
		// Not slog.NewJSONHandler: the access log encodes one line per
		// request on the critical path, and the fast handler does the
		// same output for about a third of the CPU.
		h = NewFastJSONHandler(w, level)
	case "text":
		h = slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	default:
		return NopLogger()
	}
	return slog.New(NewStampHandler(h))
}

// ParseLogLevel maps a -log-level flag value to a slog.Level
// (defaulting to Info for unknown spellings).
func ParseLogLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
