package telemetry

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestSeriesNameCanonical(t *testing.T) {
	got := SeriesName("http.requests", []string{"status", "endpoint"}, []string{"200", "/v1/enumerate"})
	want := `http.requests{endpoint="/v1/enumerate",status="200"}`
	if got != want {
		t.Fatalf("SeriesName = %q, want %q (labels must sort by key)", got, want)
	}
	if got := SeriesName("x", nil, nil); got != "x" {
		t.Fatalf("label-free series = %q, want bare name", got)
	}
	esc := SeriesName("x", []string{"k"}, []string{"a\"b\\c\nd"})
	if esc != `x{k="a\"b\\c\nd"}` {
		t.Fatalf("escaping: %q", esc)
	}
}

func TestParseSeriesRoundTrip(t *testing.T) {
	cases := []struct {
		keys, values []string
	}{
		{nil, nil},
		{[]string{"endpoint"}, []string{"/v1/space/{hash}"}},
		{[]string{"a", "b"}, []string{`quote"ba\ck`, "line\nbreak"}},
		{[]string{"cache_tier"}, []string{"mem"}},
	}
	for _, c := range cases {
		series := SeriesName("fam.name", c.keys, c.values)
		fam, labels, ok := ParseSeries(series)
		if !ok || fam != "fam.name" {
			t.Fatalf("ParseSeries(%q) = %q, ok=%v", series, fam, ok)
		}
		if len(labels) != len(c.keys) {
			t.Fatalf("ParseSeries(%q): %d labels, want %d", series, len(labels), len(c.keys))
		}
		for i, l := range labels {
			if l.Key != c.keys[i] || l.Value != c.values[i] {
				t.Fatalf("ParseSeries(%q)[%d] = %+v, want %s=%q", series, i, l, c.keys[i], c.values[i])
			}
		}
	}
	for _, bad := range []string{`{k="v"}`, `x{k=v}`, `x{k="v"`, `x{k="v"}tail`, `x{k="v`} {
		if _, _, ok := ParseSeries(bad); ok {
			t.Errorf("ParseSeries(%q) accepted a malformed series", bad)
		}
	}
}

func TestVecsInternInRegistry(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("http.requests", "endpoint", "status")
	cv.With("/v1/enumerate", "200").Add(3)
	cv.With("/v1/enumerate", "200").Inc() // same series
	cv.With("/v1/enumerate", "429").Inc()
	reg.GaugeVec("http.in_flight", "endpoint").With("/v1/enumerate").Set(2)
	reg.HistogramVec("http.request.duration_ns", "endpoint").With("/metrics").Observe(100)

	s := reg.Snapshot()
	if got := s.Counters[`http.requests{endpoint="/v1/enumerate",status="200"}`]; got != 4 {
		t.Fatalf("series counter = %d, want 4", got)
	}
	if got := s.Counters[`http.requests{endpoint="/v1/enumerate",status="429"}`]; got != 1 {
		t.Fatalf("second series = %d, want 1", got)
	}
	if got := s.Gauges[`http.in_flight{endpoint="/v1/enumerate"}`]; got != 2 {
		t.Fatalf("gauge series = %d, want 2", got)
	}
	if h := s.Histograms[`http.request.duration_ns{endpoint="/metrics"}`]; h.Count != 1 {
		t.Fatalf("histogram series count = %d, want 1", h.Count)
	}

	// The same instrument is reachable by its canonical series name.
	if reg.Counter(`http.requests{endpoint="/v1/enumerate",status="200"}`).Value() != 4 {
		t.Fatal("vec series and direct registry lookup disagree")
	}
}

func TestNilVecsNoOp(t *testing.T) {
	var reg *Registry
	reg.CounterVec("a", "k").With("v").Inc()
	reg.GaugeVec("b", "k").With("v").Set(1)
	reg.HistogramVec("c", "k").With("v").Observe(1)
	var cv *CounterVec
	cv.With("v").Inc() // must not panic
}

// TestSnapshotMergeLabeledFamilies is the labeled-family contract of
// Snapshot.Merge: disjoint families pass through, the same family with
// different labels keeps both series, the same series adds, and
// histogram cells align bucket by bucket. Run under -race via the
// concurrent section below.
func TestSnapshotMergeLabeledFamilies(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()

	// Disjoint: family only in a, family only in b.
	ra.CounterVec("only.a", "k").With("1").Add(7)
	rb.CounterVec("only.b", "k").With("2").Add(9)
	// Same family, different labels — and one shared series.
	ca := ra.CounterVec("http.requests", "endpoint", "status")
	cb := rb.CounterVec("http.requests", "endpoint", "status")
	ca.With("/v1/enumerate", "200").Add(10)
	cb.With("/v1/enumerate", "200").Add(5) // same series: adds
	cb.With("/v1/enumerate", "429").Add(2) // new series in b
	ca.With("/metrics", "200").Add(1)      // series only in a
	// Labeled gauges: high-water semantics per series.
	ra.GaugeVec("queue.depth", "pool").With("main").Set(3)
	rb.GaugeVec("queue.depth", "pool").With("main").Set(8)
	// Labeled histograms with overlapping and disjoint cells.
	ha := ra.HistogramVec("lat", "endpoint").With("/x")
	hb := rb.HistogramVec("lat", "endpoint").With("/x")
	ha.Observe(1) // pow 1
	ha.Observe(4) // pow 3
	hb.Observe(1) // pow 1: aligns with a's cell
	hb.Observe(9) // pow 4: new cell

	m := ra.Snapshot().Merge(rb.Snapshot())
	if m.Counters[`only.a{k="1"}`] != 7 || m.Counters[`only.b{k="2"}`] != 9 {
		t.Fatalf("disjoint families lost: %v", m.Counters)
	}
	if got := m.Counters[`http.requests{endpoint="/v1/enumerate",status="200"}`]; got != 15 {
		t.Fatalf("shared series = %d, want 15", got)
	}
	if got := m.Counters[`http.requests{endpoint="/v1/enumerate",status="429"}`]; got != 2 {
		t.Fatalf("b-only series = %d, want 2", got)
	}
	if got := m.Counters[`http.requests{endpoint="/metrics",status="200"}`]; got != 1 {
		t.Fatalf("a-only series = %d, want 1", got)
	}
	if got := m.Gauges[`queue.depth{pool="main"}`]; got != 8 {
		t.Fatalf("gauge high-water = %d, want 8", got)
	}
	h := m.Histograms[`lat{endpoint="/x"}`]
	if h.Count != 4 || h.Sum != 15 {
		t.Fatalf("histogram merge count/sum = %d/%d, want 4/15", h.Count, h.Sum)
	}
	wantCells := []Bucket{{Pow: 1, Count: 2}, {Pow: 3, Count: 1}, {Pow: 4, Count: 1}}
	if !reflect.DeepEqual(h.Buckets, wantCells) {
		t.Fatalf("histogram cells = %v, want %v (pow-aligned adds, sorted)", h.Buckets, wantCells)
	}

	// Merge must be symmetric on this data.
	m2 := rb.Snapshot().Merge(ra.Snapshot())
	if !reflect.DeepEqual(m, m2) {
		t.Fatal("labeled merge is not commutative")
	}

	// Concurrent observation + snapshot + merge: the -race payoff.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ca.With("/v1/enumerate", fmt.Sprintf("%d", 200+w)).Inc()
				ha.Observe(int64(i))
				_ = ra.Snapshot().Merge(rb.Snapshot())
			}
		}(w)
	}
	wg.Wait()
}
