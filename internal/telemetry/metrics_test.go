package telemetry

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives counters, gauges and histograms from
// many goroutines; run under -race this doubles as the data-race
// proof for the lock-free recording paths.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 10_000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("hammer.count")
			h := reg.Histogram("hammer.hist")
			gauge := reg.Gauge("hammer.gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i))
				gauge.Set(int64(i))
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("hammer.count").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	s := reg.Snapshot()
	h := s.Histograms["hammer.hist"]
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	wantSum := int64(goroutines) * int64(perG) * int64(perG-1) / 2
	if h.Sum != wantSum {
		t.Errorf("histogram sum = %d, want %d", h.Sum, wantSum)
	}
	var inBuckets int64
	for _, b := range h.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != h.Count {
		t.Errorf("bucket total = %d, want %d", inBuckets, h.Count)
	}
}

// TestNilInstruments proves the nil-receiver no-op contract the hot
// paths rely on.
func TestNilInstruments(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(3)
	reg.Gauge("x").Set(3)
	reg.Histogram("x").Observe(3)
	reg.Histogram("x").ObserveSince(time.Now())
	if got := reg.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	s := reg.Snapshot()
	if len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot has counters: %v", s.Counters)
	}
	var tr *Tracer
	tr.Begin("x", "y", tr.NewTID()).End(nil)
	tr.Instant("x", "y", 0, nil)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded events")
	}
	var p *ProgressReporter
	p.Start()
	p.Stop()
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["h"]
	// 0→pow0, 1→pow1, {2,3}→pow2, 4→pow3, 1023→pow10, 1024→pow11.
	want := []Bucket{{0, 1}, {1, 1}, {2, 2}, {3, 1}, {10, 1}, {11, 1}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %v, want %v", s.Buckets, want)
	}
}

func sampleSnapshots() []Snapshot {
	mk := func(seed int64) Snapshot {
		reg := NewRegistry()
		reg.Counter("a").Add(seed)
		reg.Counter("b").Add(seed * 7)
		reg.Gauge("g").Set(seed * 3 % 11)
		h := reg.Histogram("h")
		for i := int64(0); i < seed; i++ {
			h.Observe(i * seed)
		}
		return reg.Snapshot()
	}
	return []Snapshot{mk(3), mk(17), mk(40)}
}

// TestMergeAssociativity checks (a·b)·c == a·(b·c) and a·b == b·a for
// Snapshot.Merge, which phasestats relies on when folding an arbitrary
// number of per-run metric files in glob order.
func TestMergeAssociativity(t *testing.T) {
	ss := sampleSnapshots()
	a, b, c := ss[0], ss[1], ss[2]
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Errorf("merge not associative:\n(a·b)·c = %+v\na·(b·c) = %+v", left, right)
	}
	ab, ba := a.Merge(b), b.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Errorf("merge not commutative:\na·b = %+v\nb·a = %+v", ab, ba)
	}
	if got, want := left.Counters["a"], int64(3+17+40); got != want {
		t.Errorf("merged counter a = %d, want %d", got, want)
	}
	if left.Histograms["h"].Count != 3+17+40 {
		t.Errorf("merged histogram count = %d", left.Histograms["h"].Count)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshots()[1]
	path := filepath.Join(t.TempDir(), "m.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, s)
	}
}
