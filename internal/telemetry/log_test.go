package telemetry

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestStampHandlerStampsContextIDs(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, "json", slog.LevelInfo)
	ctx := WithFlightID(WithRequestID(context.Background(), "req-1"), "f7")
	log.InfoContext(ctx, "access", "route", "/v1/enumerate")
	log.InfoContext(context.Background(), "plain")

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), b.String())
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["request_id"] != "req-1" || first["flight_id"] != "f7" {
		t.Fatalf("context IDs not stamped: %v", first)
	}
	if first["route"] != "/v1/enumerate" {
		t.Fatalf("explicit attrs lost: %v", first)
	}
	if _, ok := second["request_id"]; ok {
		t.Fatalf("ID stamped without context value: %v", second)
	}
}

func TestLoggerFromDefaultsToNop(t *testing.T) {
	l := LoggerFrom(context.Background())
	if l == nil {
		t.Fatal("LoggerFrom returned nil")
	}
	l.Info("must not panic")
	if LoggerFrom(nil) == nil {
		t.Fatal("LoggerFrom(nil ctx) returned nil")
	}
	var b strings.Builder
	want := NewLogger(&b, "text", slog.LevelDebug)
	if got := LoggerFrom(WithLogger(context.Background(), want)); got != want {
		t.Fatal("LoggerFrom did not return the attached logger")
	}
	if NewLogger(&b, "off", slog.LevelInfo).Enabled(context.Background(), slog.LevelError) {
		t.Fatal(`NewLogger("off") still enabled`)
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "WARN": slog.LevelWarn,
		"error": slog.LevelError, "bogus": slog.LevelInfo,
	} {
		if got := ParseLogLevel(in); got != want {
			t.Errorf("ParseLogLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
