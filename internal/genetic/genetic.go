// Package genetic implements the biased-sampling search the paper's
// related work revolves around (Cooper et al. [3], Kulkarni et al.
// [4,14]) and its Section 7 future-work proposal: a genetic algorithm
// over optimization phase sequences whose mutation can be biased by
// the enabling probabilities mined from exhaustively enumerated
// spaces, and whose evaluation avoids redundant work by detecting
// sequences that produce already-seen function instances — the same
// fingerprinting the exhaustive search uses.
//
// The exhaustive enumeration makes the GA measurable: on a function
// whose space is fully enumerated, the distance between the GA's best
// instance and the true optimum is known exactly.
package genetic

import (
	"math/rand"
	"sort"

	"repro/internal/driver"
	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// Options configure a run. The defaults follow the experimental setup
// of the prior work: population 20, 100 generations, sequences of 20
// phases.
type Options struct {
	PopulationSize int
	Generations    int
	SeqLen         int
	MutationRate   float64
	Seed           int64
	Machine        *machine.Desc
	// Fitness scores an optimized instance; lower is better. The
	// default is static code size, the paper's optimization target
	// for the embedded domain.
	Fitness func(*rtl.Func) float64
	// Probabilities, when set, bias mutation: a mutated gene is drawn
	// from the distribution of phases most likely to be enabled by the
	// preceding gene (Section 7's "enabling/disabling relationships
	// could be used for faster genetic algorithm searches").
	Probabilities *driver.Probabilities
}

func (o *Options) fill() {
	if o.PopulationSize == 0 {
		o.PopulationSize = 20
	}
	if o.Generations == 0 {
		o.Generations = 100
	}
	if o.SeqLen == 0 {
		o.SeqLen = 20
	}
	if o.MutationRate == 0 {
		o.MutationRate = 0.05
	}
	if o.Machine == nil {
		o.Machine = machine.StrongARM()
	}
	if o.Fitness == nil {
		o.Fitness = func(f *rtl.Func) float64 { return float64(f.NumInstrs()) }
	}
}

// Result reports the search outcome.
type Result struct {
	// BestSeq is the attempted gene sequence of the best individual;
	// BestActive the subsequence that was actually active.
	BestSeq    string
	BestActive string
	// BestFitness is its score; BestFunc the optimized instance.
	BestFitness float64
	BestFunc    *rtl.Func
	// Evaluations counts full sequence applications; CacheHits counts
	// evaluations skipped because the sequence (or the instance it
	// produced) had been seen before — the redundancy detection of
	// [14].
	Evaluations int
	CacheHits   int
	Generations int
}

type individual struct {
	genes   []byte
	fitness float64
	active  string
	inst    *rtl.Func
}

// Search runs the GA on a function and returns the best instance
// found.
func Search(f *rtl.Func, o Options) Result {
	o.fill()
	rng := rand.New(rand.NewSource(o.Seed))
	ids := phaseIDs()

	seqCache := make(map[string]float64)        // gene string -> fitness
	instCache := make(map[fingerprint.Key]bool) // instances already scored
	res := Result{BestFitness: 1e18}

	evaluate := func(ind *individual) {
		key := string(ind.genes)
		if fit, ok := seqCache[key]; ok {
			res.CacheHits++
			ind.fitness = fit
			return
		}
		g := f.Clone()
		st := opt.State{}
		active := make([]byte, 0, len(ind.genes))
		for _, id := range ind.genes {
			p := opt.ByID(id)
			if p == nil || !opt.Enabled(p, st) {
				continue
			}
			if opt.Attempt(g, &st, p, o.Machine) {
				active = append(active, id)
			}
		}
		res.Evaluations++
		ind.fitness = o.Fitness(g)
		ind.active = string(active)
		ind.inst = g
		seqCache[key] = ind.fitness
		ik := fingerprint.KeyOf(g)
		if instCache[ik] {
			res.CacheHits++
		}
		instCache[ik] = true
		if ind.fitness < res.BestFitness {
			res.BestFitness = ind.fitness
			res.BestSeq = key
			res.BestActive = ind.active
			res.BestFunc = g
		}
	}

	randGene := func() byte { return ids[rng.Intn(len(ids))] }

	// Biased gene choice: weight phases by their probability of being
	// enabled by (or surviving) the previous gene.
	biasedGene := func(prev byte) byte {
		if o.Probabilities == nil {
			return randGene()
		}
		pi := phaseIndex(prev)
		if pi < 0 {
			return randGene()
		}
		weights := make([]float64, len(ids))
		total := 0.0
		for i := range ids {
			w := 0.02 // floor so nothing is unreachable
			w += o.Probabilities.Enable[i][pi]
			w += o.Probabilities.Start[i] * 0.25
			weights[i] = w
			total += w
		}
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return ids[i]
			}
		}
		return ids[len(ids)-1]
	}

	pop := make([]*individual, o.PopulationSize)
	for i := range pop {
		genes := make([]byte, o.SeqLen)
		for j := range genes {
			genes[j] = randGene()
		}
		pop[i] = &individual{genes: genes}
		evaluate(pop[i])
	}

	for gen := 0; gen < o.Generations; gen++ {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness < pop[j].fitness })
		res.Generations = gen + 1

		// Elitism: the top quarter survives; the rest is rebuilt from
		// rank-biased crossover + mutation.
		elite := o.PopulationSize / 4
		if elite < 1 {
			elite = 1
		}
		next := make([]*individual, 0, o.PopulationSize)
		next = append(next, pop[:elite]...)
		pick := func() *individual {
			// Rank-biased: squaring favours the front of the sorted
			// population.
			r := rng.Float64()
			return pop[int(r*r*float64(len(pop)))]
		}
		for len(next) < o.PopulationSize {
			a, b := pick(), pick()
			cut := 1 + rng.Intn(o.SeqLen-1)
			genes := make([]byte, o.SeqLen)
			copy(genes, a.genes[:cut])
			copy(genes[cut:], b.genes[cut:])
			for j := range genes {
				if rng.Float64() < o.MutationRate {
					if j > 0 {
						genes[j] = biasedGene(genes[j-1])
					} else {
						genes[j] = randGene()
					}
				}
			}
			child := &individual{genes: genes}
			evaluate(child)
			next = append(next, child)
		}
		pop = next
	}
	return res
}

func phaseIDs() []byte {
	all := opt.All()
	ids := make([]byte, len(all))
	for i, p := range all {
		ids[i] = p.ID()
	}
	return ids
}

func phaseIndex(id byte) int {
	for i, p := range phaseIDs() {
		if p == id {
			return i
		}
	}
	return -1
}
