package genetic_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/genetic"
	"repro/internal/mc"
	"repro/internal/rtl"
	"repro/internal/search"
)

const gaSrc = `
int a[16] = {5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`

func gaFunc(t *testing.T) (*rtl.Program, *rtl.Func) {
	t.Helper()
	prog, err := mc.Compile(gaSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog, prog.Func("sum")
}

// TestGAFindsNearOptimalCodeSize measures the GA against the ground
// truth only the exhaustive enumeration can provide: the best leaf
// code size of the full space.
func TestGAFindsNearOptimalCodeSize(t *testing.T) {
	_, f := gaFunc(t)
	exhaustive := search.Run(f, search.Options{MaxNodes: 50000})
	if exhaustive.Aborted {
		t.Skip("ground-truth space exceeds the test budget")
	}
	// The global optimum can sit at an interior node (leaves may carry
	// size-increasing transformations like loop unrolling), so compare
	// against the minimum over the whole space.
	optimum := exhaustive.OptimalCodeSize().NumInstrs

	res := genetic.Search(f, genetic.Options{
		Generations: 40,
		Seed:        1,
	})
	if res.BestFunc == nil {
		t.Fatal("no result")
	}
	if err := rtl.Validate(res.BestFunc); err != nil {
		t.Fatalf("GA produced invalid code: %v", err)
	}
	got := int(res.BestFitness)
	if got < optimum {
		t.Fatalf("GA beat the exhaustive optimum (%d < %d): enumeration is incomplete!",
			got, optimum)
	}
	if float64(got) > 1.15*float64(optimum) {
		t.Errorf("GA best %d more than 15%% off the optimum %d", got, optimum)
	}
	t.Logf("optimum %d, GA %d, %d evaluations, %d cache hits",
		optimum, got, res.Evaluations, res.CacheHits)
}

// TestGACachesRedundantSequences: the [14]-style redundancy detection
// must fire (GA populations are full of repeated tails).
func TestGACachesRedundantSequences(t *testing.T) {
	_, f := gaFunc(t)
	res := genetic.Search(f, genetic.Options{Generations: 15, Seed: 7})
	if res.CacheHits == 0 {
		t.Error("no redundant sequences detected across 15 generations")
	}
	if res.Evaluations == 0 {
		t.Fatal("nothing evaluated")
	}
}

// TestGABiasedMutationUsesTables: with mined probabilities the search
// must still find a near-optimal instance and remain deterministic for
// a fixed seed.
func TestGABiasedMutationUsesTables(t *testing.T) {
	_, f := gaFunc(t)
	exhaustive := search.Run(f, search.Options{MaxNodes: 50000})
	if exhaustive.Aborted {
		t.Skip("ground-truth space exceeds the test budget")
	}
	x := analysis.NewInteractions()
	x.Accumulate(exhaustive)
	probs := driver.FromInteractions(x)

	a := genetic.Search(f, genetic.Options{Generations: 30, Seed: 3, Probabilities: probs})
	b := genetic.Search(f, genetic.Options{Generations: 30, Seed: 3, Probabilities: probs})
	if a.BestSeq != b.BestSeq || a.Evaluations != b.Evaluations {
		t.Error("biased GA not deterministic for a fixed seed")
	}
	optimum := exhaustive.OptimalCodeSize().NumInstrs
	if float64(a.BestFitness) > 1.15*float64(optimum) {
		t.Errorf("biased GA best %v more than 15%% off the optimum %d", a.BestFitness, optimum)
	}
}

// TestGACustomFitness: minimizing a different metric (branch count)
// must steer the search.
func TestGACustomFitness(t *testing.T) {
	_, f := gaFunc(t)
	res := genetic.Search(f, genetic.Options{
		Generations: 10,
		Seed:        5,
		Fitness:     func(g *rtl.Func) float64 { return float64(g.NumBranches()) },
	})
	if res.BestFunc == nil {
		t.Fatal("no result")
	}
	if res.BestFitness > float64(f.NumBranches()) {
		t.Errorf("GA made branch count worse: %v > %d", res.BestFitness, f.NumBranches())
	}
}
