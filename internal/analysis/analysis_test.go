package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/mc"
	"repro/internal/search"
)

func idx(id byte) int {
	for i, p := range analysis.PhaseIDs {
		if p == id {
			return i
		}
	}
	return -1
}

// fig7DAG hand-builds a weighted DAG in the spirit of Figure 7:
//
//	n0 --a--> n1 --b--> n4 (leaf)
//	n0 --b--> n2 --a--> n4        (a and b independent at n0)
//	n0 --c--> n3 (leaf)
//	n1 --c--> n5 (leaf)
//	n2 --c--> n6 (leaf)           (a,c and b,c only active in one order)
func fig7DAG() *search.Result {
	mk := func(id, level int, seq string, edges ...search.Edge) *search.Node {
		return &search.Node{ID: id, Level: level, Seq: seq, Edges: edges}
	}
	return &search.Result{Nodes: []*search.Node{
		mk(0, 0, "",
			search.Edge{Phase: 'b', To: 1}, // 'b' plays the figure's a
			search.Edge{Phase: 'c', To: 2},
			search.Edge{Phase: 'd', To: 3}),
		mk(1, 1, "b",
			search.Edge{Phase: 'c', To: 4},
			search.Edge{Phase: 'd', To: 5}),
		mk(2, 1, "c",
			search.Edge{Phase: 'b', To: 4},
			search.Edge{Phase: 'd', To: 6}),
		mk(3, 1, "d"),
		mk(4, 2, "bc"),
		mk(5, 2, "bd"),
		mk(6, 2, "cd"),
	}}
}

// TestFig7NodeWeights checks the weighting rule: leaves weigh 1, an
// interior node weighs the sum over its outgoing edges.
func TestFig7NodeWeights(t *testing.T) {
	r := fig7DAG()
	w := analysis.Weights(r)
	want := []float64{5, 2, 2, 1, 1, 1, 1}
	for i, exp := range want {
		if w[i] != exp {
			t.Errorf("weight[%d] = %v, want %v", i, w[i], exp)
		}
	}
	if r.Nodes[0].Weight != 5 {
		t.Errorf("node weight not recorded on the node")
	}
}

// TestCyclicSpaceSkipped: a space whose equivalence collapse folded a
// spelling back into an ancestor class is cyclic; Cyclic must detect
// it and Accumulate must skip it rather than panic in the weighting.
func TestCyclicSpaceSkipped(t *testing.T) {
	mk := func(id, level int, seq string, edges ...search.Edge) *search.Node {
		return &search.Node{ID: id, Level: level, Seq: seq, Edges: edges}
	}
	cyclic := &search.Result{Nodes: []*search.Node{
		mk(0, 0, "", search.Edge{Phase: 'b', To: 1}),
		mk(1, 1, "b", search.Edge{Phase: 'c', To: 2}),
		mk(2, 2, "bc", search.Edge{Phase: 'b', To: 1}), // back to class 1
	}}
	if !analysis.Cyclic(cyclic) {
		t.Fatal("Cyclic missed the back edge")
	}
	if analysis.Cyclic(fig7DAG()) {
		t.Fatal("Cyclic flagged an acyclic DAG")
	}
	x := analysis.NewInteractions()
	if x.Accumulate(cyclic) {
		t.Fatal("Accumulate folded in a cyclic space")
	}
	if x.Functions != 0 {
		t.Fatalf("skipped space still counted: Functions = %d", x.Functions)
	}
	if !x.Accumulate(fig7DAG()) {
		t.Fatal("Accumulate refused an acyclic DAG")
	}
}

// TestInteractionsOnFig7 verifies the transition accounting.
func TestInteractionsOnFig7(t *testing.T) {
	x := analysis.NewInteractions()
	x.Accumulate(fig7DAG())

	en := x.Enabling()
	dis := x.Disabling()
	ind := x.Independence()

	b, c, d := idx('b'), idx('c'), idx('d')

	// b and c are independent at the root: both orders reach node 4.
	if ind[b][c] != 1 || ind[c][b] != 1 {
		t.Errorf("independence b,c = %v / %v, want 1", ind[b][c], ind[c][b])
	}

	// c is active at n0 and still active after b (edge to n1, where c
	// is active): active->active, so disabling probability 0. Same for
	// b after c.
	if dis[c][b] != 0 {
		t.Errorf("disabling[c][b] = %v, want 0", dis[c][b])
	}
	if dis[b][c] != 0 {
		t.Errorf("disabling[b][c] = %v, want 0", dis[b][c])
	}

	// d stays active across the level-1 edges out of the root (child
	// weights 2 each) but is dormant at the shared leaf n4, reached by
	// one b edge and one c edge of weight 1: the weighted disabling
	// probability of d by either phase is 1/(1+2).
	if got := dis[d][b]; got != 1.0/3 {
		t.Errorf("disabling[d][b] = %v, want 1/3", got)
	}
	if got := dis[d][c]; got != 1.0/3 {
		t.Errorf("disabling[d][c] = %v, want 1/3", got)
	}

	// g is never active anywhere: it is dormant at every node, and no
	// phase ever enables it.
	g := idx('g')
	if en[g][b] != 0 {
		t.Errorf("enabling[g][b] = %v, want 0", en[g][b])
	}

	// St: b, c, d active at the root of the single accumulated space.
	st := x.StartProbabilities()
	if st[b] != 1 || st[c] != 1 || st[d] != 1 {
		t.Errorf("start probabilities = %v", st)
	}
	if st[idx('s')] != 0 {
		t.Errorf("s should not be active at the root")
	}
}

// TestInteractionsOnRealSpace sanity-checks the statistics of a real
// enumerated function: probabilities in range, independence symmetric,
// self-disabling certain whenever observed.
func TestInteractionsOnRealSpace(t *testing.T) {
	src := `
int a[8] = {3, 1, 4, 1, 5, 9, 2, 6};
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	r := search.Run(prog.Func("sum"), search.Options{MaxNodes: 30000})
	if r.Aborted {
		t.Fatal("search aborted")
	}
	x := analysis.NewInteractions()
	x.Accumulate(r)

	en, dis, ind := x.Enabling(), x.Disabling(), x.Independence()
	for i := range analysis.PhaseIDs {
		for j := range analysis.PhaseIDs {
			for _, m := range [][][]float64{en, dis, ind} {
				if v := m[i][j]; v != -1 && (v < 0 || v > 1) {
					t.Fatalf("probability out of range: %v", v)
				}
			}
			if ind[i][j] != ind[j][i] {
				t.Fatalf("independence not symmetric at %c,%c: %v vs %v",
					analysis.PhaseIDs[i], analysis.PhaseIDs[j], ind[i][j], ind[j][i])
			}
		}
		// A phase that was just active is never immediately active
		// again, so observed self-disabling is always certain.
		if v := dis[i][i]; v != -1 && v != 1 {
			t.Fatalf("self-disabling of %c = %v, want 1", analysis.PhaseIDs[i], v)
		}
	}

	// The classic interaction: register allocation enables instruction
	// selection (loads/stores become collapsible moves).
	if v := en[idx('s')][idx('k')]; v <= 0 {
		t.Errorf("enabling[s][k] = %v, want > 0", v)
	}
	// Instruction selection must be active on unoptimized code.
	if st := x.StartProbabilities(); st[idx('s')] != 1 {
		t.Errorf("St(s) = %v, want 1", st[idx('s')])
	}
}

// TestFormatTable smoke-checks the rendering.
func TestFormatTable(t *testing.T) {
	x := analysis.NewInteractions()
	x.Accumulate(fig7DAG())
	out := analysis.FormatTable("T", x.Enabling(), x.StartProbabilities(), 0.005, 0)
	if len(out) == 0 || out[0] != 'T' {
		t.Fatal("empty table")
	}
}
