// Package analysis mines enumerated phase order spaces for the
// inter-phase interaction statistics of Section 5: the probability of
// one phase enabling another (Table 4), disabling another (Table 5),
// and of two phases being independent (Table 6).
//
// The DAG nodes are weighted as in Figure 7: a leaf weighs 1 and an
// interior node weighs the sum of its children over its outgoing
// active edges, so a node's weight is the number of distinct active
// sequences beyond that point. Transition counts are adjusted by the
// weight of the child node, following Section 5.1.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/search"
)

// PhaseIDs is the Table 1 ordering of the fifteen phase designations.
var PhaseIDs = []byte{'b', 'c', 'd', 'g', 'h', 'i', 'j', 'k', 'l', 'n', 'o', 'q', 'r', 's', 'u'}

func phaseIndex(id byte) int {
	for i, p := range PhaseIDs {
		if p == id {
			return i
		}
	}
	return -1
}

// Cyclic reports whether the space's transition graph contains a
// cycle. Identical-instance spaces are acyclic in practice (the paper
// observes no phase undoes another's effect byte-for-byte), but a
// space collapsed by the equivalence tier (search.Options.Equiv) can
// cycle: a phase sequence may return to an *equivalent* spelling of an
// ancestor class, and the fold turns that into a back edge. The
// Figure 7 weighting — and with it the Tables 4-6 mining — is
// undefined on such graphs, so callers check here first.
func Cyclic(r *search.Result) bool {
	state := make([]uint8, len(r.Nodes)) // 0 new, 1 on stack, 2 done
	var stack []int
	for root := range r.Nodes {
		if state[root] != 0 {
			continue
		}
		// Iterative gray/black DFS: a node is pushed once, scanned, and
		// re-visited after its children to be blackened.
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			if state[id] == 0 {
				state[id] = 1
				for _, e := range r.Nodes[id].Edges {
					switch state[e.To] {
					case 1:
						return true
					case 0:
						stack = append(stack, e.To)
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			state[id] = 2
		}
	}
	return false
}

// Weights computes the Figure 7 node weighting for a search result and
// stores it on the nodes, returning the weight array indexed by node
// ID. The space must be acyclic (the paper observes VPO's is, since no
// phase undoes the effect of another); a cycle panics — callers that
// may hold an equivalence-collapsed space check Cyclic first.
func Weights(r *search.Result) []float64 {
	w := make([]float64, len(r.Nodes))
	state := make([]uint8, len(r.Nodes)) // 0 new, 1 in progress, 2 done
	var visit func(id int) float64
	visit = func(id int) float64 {
		switch state[id] {
		case 1:
			panic("analysis: phase order space contains a cycle")
		case 2:
			return w[id]
		}
		state[id] = 1
		n := r.Nodes[id]
		if n.IsLeaf() {
			w[id] = 1
		} else {
			sum := 0.0
			for _, e := range n.Edges {
				sum += visit(e.To)
			}
			w[id] = sum
		}
		state[id] = 2
		n.Weight = w[id]
		return w[id]
	}
	visit(0)
	// Nodes unreachable from the root cannot exist by construction,
	// but visit any stragglers defensively.
	for id := range r.Nodes {
		if state[id] == 0 {
			visit(id)
		}
	}
	return w
}

// Interactions holds the aggregated phase interaction statistics.
// Matrices are indexed [row][col] by PhaseIDs position; row = the
// phase being enabled/disabled, col = the phase doing it, matching the
// layout of Tables 4 and 5. Independence is symmetric.
type Interactions struct {
	// StartActive[i] counts functions where phase i is active at the
	// unoptimized root; Functions is the number of spaces aggregated.
	StartActive []float64
	Functions   int

	// Weighted transition tallies.
	EnableNum, EnableDen   [][]float64 // dormant->active / (that + dormant->dormant)
	DisableNum, DisableDen [][]float64 // active->dormant / (that + active->active)
	IndepNum, IndepDen     [][]float64 // same-code / consecutively-active
}

// NewInteractions returns an empty accumulator.
func NewInteractions() *Interactions {
	n := len(PhaseIDs)
	mk := func() [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		return m
	}
	return &Interactions{
		StartActive: make([]float64, n),
		EnableNum:   mk(), EnableDen: mk(),
		DisableNum: mk(), DisableDen: mk(),
		IndepNum: mk(), IndepDen: mk(),
	}
}

// activeSet returns which phases are active at a node as a bitmask
// over PhaseIDs positions, plus the target node per phase.
func activeSet(n *search.Node) (mask uint32, to [16]int) {
	for i := range to {
		to[i] = -1
	}
	for _, e := range n.Edges {
		if i := phaseIndex(e.Phase); i >= 0 {
			mask |= 1 << uint(i)
			to[i] = e.To
		}
	}
	return mask, to
}

// Accumulate folds one enumerated space into the statistics. A cyclic
// space (possible only after equivalence-tier collapse — see Cyclic)
// has no well-defined Figure 7 weighting and is skipped; Accumulate
// reports whether the space was folded in.
func (x *Interactions) Accumulate(r *search.Result) bool {
	if Cyclic(r) {
		return false
	}
	w := Weights(r)
	x.Functions++

	rootMask, _ := activeSet(r.Root())
	for i := range PhaseIDs {
		if rootMask&(1<<uint(i)) != 0 {
			x.StartActive[i]++
		}
	}

	for _, n := range r.Nodes {
		nMask, nTo := activeSet(n)
		for _, e := range n.Edges {
			y := phaseIndex(e.Phase)
			if y < 0 {
				continue
			}
			child := r.Nodes[e.To]
			cMask, _ := activeSet(child)
			cw := w[e.To]
			for i := range PhaseIDs {
				iBit := uint32(1) << uint(i)
				switch {
				case nMask&iBit == 0:
					// Dormant before y: does applying y enable i?
					x.EnableDen[i][y] += cw
					if cMask&iBit != 0 {
						x.EnableNum[i][y] += cw
					}
				default:
					// Active before y: does applying y disable i?
					x.DisableDen[i][y] += cw
					if cMask&iBit == 0 {
						x.DisableNum[i][y] += cw
					}
				}
			}
		}
		// Independence: for every pair of phases active at n in both
		// orders, do the two orders produce identical code?
		for a := 0; a < len(PhaseIDs); a++ {
			if nMask&(1<<uint(a)) == 0 {
				continue
			}
			for b := a + 1; b < len(PhaseIDs); b++ {
				if nMask&(1<<uint(b)) == 0 {
					continue
				}
				ma, mb := nTo[a], nTo[b]
				_, maTo := activeSet(r.Nodes[ma])
				_, mbTo := activeSet(r.Nodes[mb])
				pab := maTo[b] // a then b
				pba := mbTo[a] // b then a
				if pab < 0 || pba < 0 {
					continue // not consecutively active in both orders
				}
				obsW := w[pab]
				if w[pba] > obsW {
					obsW = w[pba]
				}
				x.IndepDen[a][b] += obsW
				x.IndepDen[b][a] += obsW
				if pab == pba {
					x.IndepNum[a][b] += obsW
					x.IndepNum[b][a] += obsW
				}
			}
		}
	}
	return true
}

// ratio returns num/den, or -1 when no observations exist.
func ratio(num, den float64) float64 {
	if den == 0 {
		return -1
	}
	return num / den
}

// Enabling returns the Table 4 matrix: Enabling[i][j] is the
// probability of phase PhaseIDs[i] being enabled by PhaseIDs[j]
// (-1 = never observed).
func (x *Interactions) Enabling() [][]float64 {
	return x.matrix(x.EnableNum, x.EnableDen)
}

// Disabling returns the Table 5 matrix.
func (x *Interactions) Disabling() [][]float64 {
	return x.matrix(x.DisableNum, x.DisableDen)
}

// Independence returns the Table 6 matrix.
func (x *Interactions) Independence() [][]float64 {
	return x.matrix(x.IndepNum, x.IndepDen)
}

func (x *Interactions) matrix(num, den [][]float64) [][]float64 {
	n := len(PhaseIDs)
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m[i][j] = ratio(num[i][j], den[i][j])
		}
	}
	return m
}

// Independent reports the observed independence probability of two
// phases, or -1 when the pair was never seen consecutively active.
// It implements the search package's IndependencePrior, letting mined
// statistics drive the Section 7 independence-based pruning.
func (x *Interactions) Independent(a, b byte) float64 {
	i, j := phaseIndex(a), phaseIndex(b)
	if i < 0 || j < 0 {
		return -1
	}
	return ratio(x.IndepNum[i][j], x.IndepDen[i][j])
}

// StartProbabilities returns the Table 4 "St" column: the fraction of
// functions at which each phase is active on the unoptimized code.
func (x *Interactions) StartProbabilities() []float64 {
	out := make([]float64, len(PhaseIDs))
	for i := range out {
		if x.Functions > 0 {
			out[i] = x.StartActive[i] / float64(x.Functions)
		}
	}
	return out
}

// FormatTable renders a matrix in the layout of Tables 4-6. Cells
// below minShow print blank, like the papers' "< 0.005" convention;
// when hideAbove is positive, cells above it print blank instead
// (Table 6 hides > 0.995).
func FormatTable(title string, m [][]float64, st []float64, minShow, hideAbove float64) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\nPhase")
	if st != nil {
		sb.WriteString("    St")
	}
	for _, id := range PhaseIDs {
		fmt.Fprintf(&sb, "     %c", id)
	}
	sb.WriteString("\n")
	for i, id := range PhaseIDs {
		fmt.Fprintf(&sb, "%c    ", id)
		if st != nil {
			sb.WriteString(cell(st[i], minShow, hideAbove))
		}
		for j := range PhaseIDs {
			sb.WriteString(cell(m[i][j], minShow, hideAbove))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func cell(v, minShow, hideAbove float64) string {
	if v < minShow || (hideAbove > 0 && v > hideAbove) {
		return "      "
	}
	return fmt.Sprintf("  %4.2f", v)
}
