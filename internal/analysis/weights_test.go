package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/mc"
	"repro/internal/search"
)

// TestRootWeightCountsMaximalSequences validates Figure 7's meaning on
// a real space: the root's weight must equal the number of distinct
// root-to-leaf paths (each path is one maximal active phase sequence).
func TestRootWeightCountsMaximalSequences(t *testing.T) {
	src := `
int f(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	r := search.Run(prog.Func("f"), search.Options{MaxNodes: 20000})
	if r.Aborted {
		t.Skip("space exceeds the test budget")
	}
	w := analysis.Weights(r)

	// Count paths by memoized DFS.
	memo := make([]float64, len(r.Nodes))
	seen := make([]bool, len(r.Nodes))
	var paths func(id int) float64
	paths = func(id int) float64 {
		if seen[id] {
			return memo[id]
		}
		seen[id] = true
		n := r.Nodes[id]
		if n.IsLeaf() {
			memo[id] = 1
			return 1
		}
		total := 0.0
		for _, e := range n.Edges {
			total += paths(e.To)
		}
		memo[id] = total
		return total
	}
	want := paths(0)
	if w[0] != want {
		t.Fatalf("root weight %v, want %v distinct maximal sequences", w[0], want)
	}
	// Each interior node's weight equals the sum over its edges.
	for _, n := range r.Nodes {
		if n.IsLeaf() {
			if w[n.ID] != 1 {
				t.Fatalf("leaf %d weight %v", n.ID, w[n.ID])
			}
			continue
		}
		sum := 0.0
		for _, e := range n.Edges {
			sum += w[e.To]
		}
		if w[n.ID] != sum {
			t.Fatalf("node %d weight %v != edge sum %v", n.ID, w[n.ID], sum)
		}
	}
}
