package fingerprint_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// fig5Variant builds the paper's Figure 5 loop
//
//	sum = 0; for (i = 0; i < 1000; i++) sum += a[i];
//
// in its optimized form, with the register numbers and block label the
// caller chooses — Figure 5(b) uses r10/r12/L3, Figure 5(c) r11/r10/L5.
func fig5Variant(sum, base, lbl int) *rtl.Func {
	f := rtl.NewFunc("fig5", 0, false)
	f.RegAssigned = true
	rSum := rtl.Reg(sum)
	rBase := rtl.Reg(base)
	entry := f.Entry()
	entry.Instrs = append(entry.Instrs,
		rtl.NewMov(rSum, rtl.Imm(0)),
		rtl.Instr{Op: rtl.OpMovHi, Dst: rBase, Sym: "a"},
		rtl.Instr{Op: rtl.OpAddLo, Dst: rBase, A: rtl.R(rBase), Sym: "a"},
		rtl.NewMov(rtl.RegR1, rtl.R(rBase)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR9, rtl.R(rBase), rtl.Imm(4000)),
	)
	// Give the loop block the desired label by burning IDs.
	for f.NextBlockID < lbl {
		f.NextBlockID++
	}
	loop := f.AddBlock()
	loop.Instrs = append(loop.Instrs,
		rtl.NewLoad(rtl.RegR8, rtl.RegR1, 0),
		rtl.NewALU(rtl.OpAdd, rSum, rtl.R(rSum), rtl.R(rtl.RegR8)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR1), rtl.Imm(4)),
		rtl.NewCmp(rtl.R(rtl.RegR1), rtl.R(rtl.RegR9)),
		rtl.NewBranch(rtl.RelLT, loop.ID),
	)
	exit := f.AddBlock()
	exit.Instrs = append(exit.Instrs, rtl.Instr{Op: rtl.OpRet})
	return f
}

// TestFig5RemappingEquivalence reproduces Figure 5: two instances that
// differ only in register numbers and block labels — the result of
// running register allocation and code motion in different orders —
// are detected as identical by the canonical remapping, and their
// three-value fingerprints agree.
func TestFig5RemappingEquivalence(t *testing.T) {
	b := fig5Variant(10, 12, 3) // Figure 5(b): regalloc before code motion
	c := fig5Variant(11, 10, 5) // Figure 5(c): code motion before regalloc

	if b.String() == c.String() {
		t.Fatal("test premise broken: the variants should differ textually")
	}
	if fingerprint.KeyOf(b) != fingerprint.KeyOf(c) {
		t.Fatalf("canonical keys differ:\n%s\nvs\n%s", b, c)
	}
	fb, fc := fingerprint.Of(b), fingerprint.Of(c)
	if fb != fc {
		t.Fatalf("fingerprints differ: %+v vs %+v", fb, fc)
	}

	// Figure 5(d): both canonicalize to the same instance.
	cb := fingerprint.Canonicalize(b)
	cc := fingerprint.Canonicalize(c)
	if cb.String() != cc.String() {
		t.Fatalf("canonical forms differ:\n%svs\n%s", cb, cc)
	}
}

// TestDifferentCodeDifferentKey checks that a real difference is not
// masked by the remapping.
func TestDifferentCodeDifferentKey(t *testing.T) {
	a := fig5Variant(10, 12, 3)
	b := fig5Variant(10, 12, 3)
	// Change the loop increment: different code.
	loop := b.Blocks[1]
	loop.Instrs[2].B = rtl.Imm(8)
	if fingerprint.KeyOf(a) == fingerprint.KeyOf(b) {
		t.Fatal("distinct instances have the same canonical key")
	}
}

// TestCanonicalizeIdempotent: canonicalizing twice is a no-op.
func TestCanonicalizeIdempotent(t *testing.T) {
	f := fig5Variant(11, 10, 5)
	once := fingerprint.Canonicalize(f)
	twice := fingerprint.Canonicalize(once)
	if once.String() != twice.String() {
		t.Fatalf("canonicalization is not idempotent:\n%svs\n%s", once, twice)
	}
}

// TestCanonicalKeyInvariantUnderRenaming is the property-based version
// of Figure 5: any consistent bijective renaming of the pseudo
// registers of a compiled function leaves the canonical key unchanged.
func TestCanonicalKeyInvariantUnderRenaming(t *testing.T) {
	src := `
int a[8];
int f(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i] * 3;
    return s;
}`
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	base := prog.Func("f")
	want := fingerprint.KeyOf(base)

	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := base.Clone()
		// Build a random bijection over the pseudo registers.
		var pseudos []rtl.Reg
		for r := range g.UsedRegs() {
			if r.IsPseudo() {
				pseudos = append(pseudos, r)
			}
		}
		// Deterministic order before shuffling.
		for i := 0; i < len(pseudos); i++ {
			for j := i + 1; j < len(pseudos); j++ {
				if pseudos[j] < pseudos[i] {
					pseudos[i], pseudos[j] = pseudos[j], pseudos[i]
				}
			}
		}
		perm := rng.Perm(len(pseudos))
		// Rename via a disjoint temporary range to keep the bijection.
		tmp := g.NextPseudo + 1000
		for i, r := range pseudos {
			for _, b := range g.Blocks {
				for k := range b.Instrs {
					b.Instrs[k].RenameReg(r, tmp+rtl.Reg(i))
				}
			}
		}
		for i := range pseudos {
			for _, b := range g.Blocks {
				for k := range b.Instrs {
					b.Instrs[k].RenameReg(tmp+rtl.Reg(i), pseudos[perm[i]])
				}
			}
		}
		return fingerprint.KeyOf(g) == want
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestControlFlowKeyStableAcrossDataChanges: the CF key tracks shape,
// not instruction contents.
func TestControlFlowKeyStableAcrossDataChanges(t *testing.T) {
	a := fig5Variant(10, 12, 3)
	b := fig5Variant(10, 12, 3)
	b.Blocks[1].Instrs[2].B = rtl.Imm(8) // different increment, same CFG
	if fingerprint.ControlFlowKey(a) != fingerprint.ControlFlowKey(b) {
		t.Fatal("control-flow key changed although the CFG is identical")
	}
	// Optimizations that restructure control flow must change it.
	c := fig5Variant(10, 12, 3)
	d := machine.StrongARM()
	if !(opt.LoopUnrolling{}).Apply(c, d) {
		t.Skip("unrolling dormant on this shape")
	}
	if fingerprint.ControlFlowKey(a) == fingerprint.ControlFlowKey(c) {
		t.Fatal("control-flow key identical after unrolling")
	}
}

// TestEncodeDistinguishesOperands guards the encoder against aliasing
// immediate and register operands.
func TestEncodeDistinguishesOperands(t *testing.T) {
	mk := func(b rtl.Operand) *rtl.Func {
		f := rtl.NewFunc("e", 0, true)
		f.Entry().Instrs = append(f.Entry().Instrs,
			rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR1), b),
			rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)},
		)
		return f
	}
	a := mk(rtl.R(rtl.RegR2))
	b := mk(rtl.Imm(2))
	if fingerprint.KeyOf(a) == fingerprint.KeyOf(b) {
		t.Fatal("register and immediate operands encode identically")
	}
	if !strings.Contains(a.String(), "r[2]") {
		t.Fatal("unexpected test setup")
	}
}
