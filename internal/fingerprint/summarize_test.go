package fingerprint_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/randprog"
)

// TestSummarizeMatchesLegacy checks the fused single-pass summary
// against the three independent legacy computations over the randprog
// corpus: every function instance reached by random phase orderings
// must yield byte-identical encoding, control-flow key and fingerprint
// triple.
func TestSummarizeMatchesLegacy(t *testing.T) {
	programs := 25
	if testing.Short() {
		programs = 6
	}
	d := machine.StrongARM()
	all := opt.All()
	checked := 0
	buf := fingerprint.GetBuffer()
	defer fingerprint.PutBuffer(buf)
	for seed := int64(0); seed < int64(programs); seed++ {
		p := randprog.New(seed, randprog.Config{})
		prog, err := mc.Compile(p.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		for trial := 0; trial < 3; trial++ {
			mod := prog.Clone()
			f := mod.Func(p.Entry)
			var st opt.State
			for step := 0; step < 10; step++ {
				wantEnc := fingerprint.Encode(f)
				wantFP := fingerprint.Of(f)
				wantCF := fingerprint.ControlFlowKey(f)

				fp, key, cf := fingerprint.Summarize(f)
				if string(key) != string(wantEnc) {
					t.Fatalf("seed %d step %d: Summarize key differs from Encode", seed, step)
				}
				if cf != wantCF {
					t.Fatalf("seed %d step %d: Summarize CF key differs from ControlFlowKey", seed, step)
				}
				if fp != wantFP {
					t.Fatalf("seed %d step %d: Summarize FP %+v != Of %+v", seed, step, fp, wantFP)
				}
				gotFP := fingerprint.SummarizeInto(buf, f)
				if gotFP != wantFP || !bytes.Equal(buf.Enc, wantEnc) || string(buf.CF) != string(wantCF) {
					t.Fatalf("seed %d step %d: SummarizeInto disagrees with legacy computations", seed, step)
				}
				if got := fingerprint.EncodeTo(nil, f); !bytes.Equal(got, wantEnc) {
					t.Fatalf("seed %d step %d: EncodeTo differs from Encode", seed, step)
				}
				checked++

				opt.Attempt(f, &st, all[rng.Intn(len(all))], d)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
	t.Logf("checked %d instances", checked)
}
