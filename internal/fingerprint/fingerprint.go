// Package fingerprint detects identical function instances, the
// second pruning technique of the paper (Section 4.2). Two instances
// produced by different phase orderings are considered the same when
// their instructions are identical after canonically renumbering
// registers and block labels in first-encounter order — the paper's
// Figure 5 remapping, which catches instances that differ only because
// optimization phases consumed registers or created blocks in a
// different order.
//
// Following the paper, each instance is summarized by three values —
// instruction count, byte sum and CRC-32 checksum of the canonical
// encoding. The package additionally exposes the full canonical
// encoding so the search can compare instances exactly; the paper
// verified empirically that the checksum triple never conflated
// distinct instances, and the exact encoding lets this implementation
// guarantee it.
package fingerprint

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/rtl"
)

// FP is the paper's function-instance summary: the number of
// instructions, the byte sum of the canonical encoding, and its CRC-32
// checksum.
type FP struct {
	Count   int
	ByteSum uint32
	CRC     uint32
}

// Key is the exact canonical encoding of a function instance, usable
// as a map key. Instances with equal Keys are identical up to register
// and label renumbering.
type Key string

// remapper assigns canonical numbers to registers and labels in
// first-encounter order, scanning the function from the top basic
// block, as in Section 4.2.1.
type remapper struct {
	regs   map[rtl.Reg]uint16
	labels map[int]uint16
}

func newRemapper() *remapper {
	r := &remapper{
		regs:   make(map[rtl.Reg]uint16),
		labels: make(map[int]uint16),
	}
	// Structural registers keep fixed codes: the stack pointer and
	// condition codes are not allocatable, so renumbering them would
	// only mask real differences.
	r.regs[rtl.RegSP] = 0xFFF0
	r.regs[rtl.RegIC] = 0xFFF1
	r.regs[rtl.RegNone] = 0xFFFF
	return r
}

func (r *remapper) reg(x rtl.Reg) uint16 {
	if n, ok := r.regs[x]; ok {
		return n
	}
	n := uint16(len(r.regs))
	r.regs[x] = n
	return n
}

func (r *remapper) label(id int) uint16 {
	if n, ok := r.labels[id]; ok {
		return n
	}
	n := uint16(len(r.labels))
	r.labels[id] = n
	return n
}

// Encode produces the canonical byte encoding of the function.
// Blocks are labeled in layout order as they are encountered from the
// top; branch targets met before their block get numbered at first
// reference, exactly like a top-down scan.
func Encode(f *rtl.Func) []byte {
	return EncodeTo(make([]byte, 0, f.NumInstrs()*16), f)
}

// KeyOf returns the exact canonical key of a function instance.
func KeyOf(f *rtl.Func) Key { return Key(Encode(f)) }

// Of computes the paper's three-value fingerprint of a function
// instance.
func Of(f *rtl.Func) FP {
	enc := Encode(f)
	var sum uint32
	for _, b := range enc {
		sum += uint32(b)
	}
	return FP{
		Count:   f.NumInstrs(),
		ByteSum: sum,
		CRC:     crc32.ChecksumIEEE(enc),
	}
}

// Canonicalize returns a copy of the function with registers and
// labels renumbered to canonical form — the transformation of
// Figure 5(d). The copy is for display and testing; the search
// compares encodings directly.
func Canonicalize(f *rtl.Func) *rtl.Func {
	rm := newRemapper()
	nf := f.Clone()
	// Establish numbering with a scan identical to Encode's.
	for _, b := range nf.Blocks {
		rm.label(b.ID)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case rtl.OpBranch, rtl.OpJmp:
				rm.label(in.Target)
			case rtl.OpCall:
			default:
				if in.Dst != rtl.RegNone {
					rm.reg(in.Dst)
				}
				if in.A.Kind == rtl.OperReg {
					rm.reg(in.A.Reg)
				}
				if in.B.Kind == rtl.OperReg {
					rm.reg(in.B.Reg)
				}
			}
		}
	}
	mapReg := func(x rtl.Reg) rtl.Reg {
		switch x {
		case rtl.RegSP, rtl.RegIC, rtl.RegNone:
			return x
		}
		// Canonical registers start at 1 in the paper's presentation;
		// the remapper's fixed codes occupy high values, and dynamic
		// codes start after the three preassigned entries.
		return rtl.Reg(rm.regs[x] - 2)
	}
	for _, b := range nf.Blocks {
		b.ID = int(rm.labels[b.ID])
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == rtl.OpBranch || in.Op == rtl.OpJmp {
				in.Target = int(rm.labels[in.Target])
				continue
			}
			if in.Op == rtl.OpCall {
				continue
			}
			if in.Dst != rtl.RegNone {
				in.Dst = mapReg(in.Dst)
			}
			if in.A.Kind == rtl.OperReg {
				in.A.Reg = mapReg(in.A.Reg)
			}
			if in.B.Kind == rtl.OperReg {
				in.B.Reg = mapReg(in.B.Reg)
			}
		}
	}
	nf.NextBlockID = len(nf.Blocks)
	return nf
}

// ControlFlowKey summarizes the control-flow shape of a function —
// block count plus the branch structure — used for the paper's count
// of distinct control flows (Table 3, column CF).
func ControlFlowKey(f *rtl.Func) Key {
	rm := newRemapper()
	var buf []byte
	u16 := func(v uint16) { buf = binary.LittleEndian.AppendUint16(buf, v) }
	for _, b := range f.Blocks {
		u16(rm.label(b.ID))
		last := b.Last()
		if last == nil {
			buf = append(buf, 0)
			continue
		}
		switch last.Op {
		case rtl.OpBranch:
			buf = append(buf, 1, byte(last.Rel))
			u16(rm.label(last.Target))
		case rtl.OpJmp:
			buf = append(buf, 2)
			u16(rm.label(last.Target))
		case rtl.OpRet:
			buf = append(buf, 3)
		default:
			buf = append(buf, 0)
		}
	}
	return Key(buf)
}
