// Single-pass summarization of a function instance: one scan produces
// the full canonical encoding, the control-flow key, and the
// three-value fingerprint together. The search's workers use this to
// move all encoding work off the serial merge path; the byte output is
// identical to the separate Encode / Of / ControlFlowKey computations.
package fingerprint

import (
	"encoding/binary"
	"hash/crc32"
	"sync"

	"repro/internal/rtl"
)

// Buffer holds the reusable byte slices filled by SummarizeInto: the
// full canonical encoding and the control-flow key encoding. Obtain
// one with GetBuffer and return it with PutBuffer once the bytes have
// been consumed (copied or compared).
type Buffer struct {
	Enc []byte
	CF  []byte
}

var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// GetBuffer returns a pooled Buffer. The slices it contains are
// overwritten by the next SummarizeInto call.
func GetBuffer() *Buffer { return bufferPool.Get().(*Buffer) }

// PutBuffer returns a Buffer to the pool. The caller must not retain
// b.Enc or b.CF afterwards.
func PutBuffer(b *Buffer) { bufferPool.Put(b) }

// scan is the pooled per-summarization remapping state: the register
// and label remapper for the full encoding, plus the independent label
// remapper the control-flow key requires (it numbers only block IDs
// and terminator targets, in its own first-encounter order).
type scan struct {
	rm       remapper
	cfLabels map[int]uint16
}

var scanPool = sync.Pool{New: func() any {
	return &scan{
		rm:       remapper{regs: make(map[rtl.Reg]uint16), labels: make(map[int]uint16)},
		cfLabels: make(map[int]uint16),
	}
}}

func (s *scan) reset() {
	clear(s.rm.regs)
	clear(s.rm.labels)
	clear(s.cfLabels)
	s.rm.regs[rtl.RegSP] = 0xFFF0
	s.rm.regs[rtl.RegIC] = 0xFFF1
	s.rm.regs[rtl.RegNone] = 0xFFFF
}

func (s *scan) cfLabel(id int) uint16 {
	if n, ok := s.cfLabels[id]; ok {
		return n
	}
	n := uint16(len(s.cfLabels))
	s.cfLabels[id] = n
	return n
}

// appendOperand appends the canonical encoding of one operand.
func appendOperand(dst []byte, rm *remapper, o rtl.Operand) []byte {
	dst = append(dst, byte(o.Kind))
	switch o.Kind {
	case rtl.OperReg:
		dst = binary.LittleEndian.AppendUint16(dst, rm.reg(o.Reg))
	case rtl.OperImm:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(o.Imm))
	}
	return dst
}

// appendInstr appends the canonical encoding of one instruction.
func appendInstr(dst []byte, rm *remapper, in *rtl.Instr) []byte {
	dst = append(dst, byte(in.Op))
	switch in.Op {
	case rtl.OpBranch:
		dst = append(dst, byte(in.Rel))
		dst = binary.LittleEndian.AppendUint16(dst, rm.label(in.Target))
	case rtl.OpJmp:
		dst = binary.LittleEndian.AppendUint16(dst, rm.label(in.Target))
	case rtl.OpCall:
		dst = append(dst, in.NArgs)
		dst = append(dst, byte(len(in.Sym)))
		dst = append(dst, in.Sym...)
	case rtl.OpMovHi, rtl.OpAddLo:
		dst = binary.LittleEndian.AppendUint16(dst, rm.reg(in.Dst))
		dst = appendOperand(dst, rm, in.A)
		dst = append(dst, byte(len(in.Sym)))
		dst = append(dst, in.Sym...)
	default:
		dst = binary.LittleEndian.AppendUint16(dst, rm.reg(in.Dst))
		dst = appendOperand(dst, rm, in.A)
		dst = appendOperand(dst, rm, in.B)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	}
	return dst
}

// EncodeTo appends the canonical byte encoding of f to dst and returns
// the extended slice, reusing dst's backing array when it has capacity.
func EncodeTo(dst []byte, f *rtl.Func) []byte {
	s := scanPool.Get().(*scan)
	s.reset()
	for _, b := range f.Blocks {
		dst = binary.LittleEndian.AppendUint16(dst, s.rm.label(b.ID))
		for i := range b.Instrs {
			dst = appendInstr(dst, &s.rm, &b.Instrs[i])
		}
	}
	scanPool.Put(s)
	return dst
}

// SummarizeInto fills buf with the canonical encoding (buf.Enc) and
// control-flow key (buf.CF) of f in one fused scan, and returns the
// three-value fingerprint of the encoding. The results are
// byte-identical to Encode, ControlFlowKey and Of computed separately.
func SummarizeInto(buf *Buffer, f *rtl.Func) FP {
	s := scanPool.Get().(*scan)
	s.reset()
	enc := buf.Enc[:0]
	cf := buf.CF[:0]
	count := 0
	for _, b := range f.Blocks {
		enc = binary.LittleEndian.AppendUint16(enc, s.rm.label(b.ID))
		count += len(b.Instrs)
		for i := range b.Instrs {
			enc = appendInstr(enc, &s.rm, &b.Instrs[i])
		}
		// Control-flow leg: same bytes ControlFlowKey emits, but with
		// its own label numbering (it sees only block IDs and
		// terminator targets, so first-encounter order differs from the
		// full encoding's).
		cf = binary.LittleEndian.AppendUint16(cf, s.cfLabel(b.ID))
		last := b.Last()
		if last == nil {
			cf = append(cf, 0)
			continue
		}
		switch last.Op {
		case rtl.OpBranch:
			cf = append(cf, 1, byte(last.Rel))
			cf = binary.LittleEndian.AppendUint16(cf, s.cfLabel(last.Target))
		case rtl.OpJmp:
			cf = append(cf, 2)
			cf = binary.LittleEndian.AppendUint16(cf, s.cfLabel(last.Target))
		case rtl.OpRet:
			cf = append(cf, 3)
		default:
			cf = append(cf, 0)
		}
	}
	scanPool.Put(s)
	buf.Enc, buf.CF = enc, cf
	var sum uint32
	for _, c := range enc {
		sum += uint32(c)
	}
	return FP{Count: count, ByteSum: sum, CRC: crc32.ChecksumIEEE(enc)}
}

// Summarize computes the fingerprint, exact canonical key and
// control-flow key of f in a single scan.
func Summarize(f *rtl.Func) (FP, Key, Key) {
	buf := GetBuffer()
	fp := SummarizeInto(buf, f)
	k, cf := Key(buf.Enc), Key(buf.CF)
	PutBuffer(buf)
	return fp, k, cf
}
