package search_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fingerprint"
	"repro/internal/search"
)

func TestSpaceSaveLoadRoundTrip(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	orig := search.Run(f, search.Options{})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.FuncName != orig.FuncName ||
		loaded.AttemptedPhases != orig.AttemptedPhases ||
		len(loaded.Nodes) != len(orig.Nodes) {
		t.Fatalf("header mismatch: %+v vs %+v", loaded, orig)
	}
	for i := range orig.Nodes {
		a, b := orig.Nodes[i], loaded.Nodes[i]
		if orig.NodeKey(a) != loaded.NodeKey(b) || a.Seq != b.Seq || a.Level != b.Level ||
			a.NumInstrs != b.NumInstrs || a.FP != b.FP || a.CFKey != b.CFKey ||
			a.State != b.State || !reflect.DeepEqual(a.Edges, b.Edges) {
			t.Fatalf("node %d mismatch", i)
		}
	}

	// The loaded space must replay instances faithfully.
	best := loaded.OptimalCodeSize()
	inst := loaded.Instance(best)
	if inst.NumInstrs() != best.NumInstrs {
		t.Fatalf("replay after load: %d instructions, recorded %d",
			inst.NumInstrs(), best.NumInstrs)
	}
	if got := fingerprint.Of(inst); got != best.FP {
		t.Fatalf("replay fingerprint mismatch")
	}

	// And the analysis must produce identical statistics.
	xa, xb := analysis.NewInteractions(), analysis.NewInteractions()
	xa.Accumulate(orig)
	xb.Accumulate(loaded)
	if !reflect.DeepEqual(xa.Enabling(), xb.Enabling()) {
		t.Fatal("analysis differs after reload")
	}
}

func TestSpaceSaveLoadFile(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	orig := search.Run(f, search.Options{})
	path := filepath.Join(t.TempDir(), "clamp.space.gz")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Nodes) != len(orig.Nodes) {
		t.Fatalf("node count %d, want %d", len(loaded.Nodes), len(orig.Nodes))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := search.Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("accepted garbage input")
	}
	// Valid gzip of invalid JSON.
	var buf bytes.Buffer
	func() {
		gz := newGzip(&buf)
		defer gz.Close()
		gz.Write([]byte("{broken"))
	}()
	if _, err := search.Load(&buf); err == nil {
		t.Fatal("accepted broken JSON")
	}
}

func newGzip(w *bytes.Buffer) *gzip.Writer { return gzip.NewWriter(w) }

// TestLoadCorruptFiles drives Load through every rejection path with a
// table of defective inputs and checks each failure names its defect.
func TestLoadCorruptFiles(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	var valid bytes.Buffer
	if err := search.Run(f, search.Options{}).Save(&valid); err != nil {
		t.Fatal(err)
	}

	// reencode gunzips the valid space, hands the JSON document to
	// mutate as a generic map, and re-gzips the result.
	reencode := func(t *testing.T, mutate func(doc map[string]any)) []byte {
		t.Helper()
		gz, err := gzip.NewReader(bytes.NewReader(valid.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.NewDecoder(gz).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		var buf bytes.Buffer
		w := gzip.NewWriter(&buf)
		if err := json.NewEncoder(w).Encode(doc); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	gzipOf := func(s string) []byte {
		var buf bytes.Buffer
		w := gzip.NewWriter(&buf)
		w.Write([]byte(s))
		w.Close()
		return buf.Bytes()
	}
	node0 := func(doc map[string]any) map[string]any {
		return doc["nodes"].([]any)[0].(map[string]any)
	}

	// flipTrailerCRC clobbers one byte of the gzip trailer's CRC32
	// while leaving the deflate stream (and so the JSON document)
	// intact — the shape of a torn final disk block.
	flipTrailerCRC := func(b []byte) []byte {
		out := append([]byte(nil), b...)
		out[len(out)-8] ^= 0xff
		return out
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"garbage", []byte("definitely not gzip"), "not a gzip stream"},
		{"broken JSON", gzipOf("{broken"), "decoding space"},
		{"truncated", valid.Bytes()[:valid.Len()/2], "truncated"},
		// The trailer cases hold a complete JSON document: only
		// draining past the document and checking the gzip close error
		// catches them, which is exactly what a loader that ignores the
		// deferred Close error fails to do.
		{"trailer truncated", valid.Bytes()[:valid.Len()-8], "corrupt gzip trailer"},
		{"trailer checksum clobbered", flipTrailerCRC(valid.Bytes()), "corrupt gzip trailer"},
		{"future version", gzipOf(`{"version":99}`), "version 99 unsupported"},
		{"version zero", gzipOf(`{"version":0}`), "version 0 unsupported"},
		{"empty space", gzipOf(`{"version":2}`), "space file is empty"},
		{"malformed node key", reencode(t, func(doc map[string]any) {
			node0(doc)["key"] = "%%% not base64 %%%"
		}), "malformed base64 key"},
		{"malformed cf key", reencode(t, func(doc map[string]any) {
			node0(doc)["cf_key"] = "%%%"
		}), "malformed base64 cf key"},
		{"edge out of range", reencode(t, func(doc map[string]any) {
			node0(doc)["edges"] = []any{map[string]any{"Phase": 99, "To": 1 << 20}}
		}), "outside the"},
		{"checkpoint body count mismatch", reencode(t, func(doc map[string]any) {
			doc["checkpoint"] = map[string]any{"frontier": []any{0}, "bodies": []any{}}
		}), "1 frontier nodes but 0 bodies"},
		{"checkpoint frontier out of range", reencode(t, func(doc map[string]any) {
			doc["checkpoint"] = map[string]any{
				"frontier": []any{1 << 20},
				"bodies":   []any{doc["root"]},
			}
		}), "outside the"},
		{"checkpoint nil body", reencode(t, func(doc map[string]any) {
			doc["checkpoint"] = map[string]any{"frontier": []any{0}, "bodies": []any{nil}}
		}), "has no body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := search.Load(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("accepted a space file with a %s defect", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the defect (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestLoadReadsV1 checks the loader still accepts version-1 documents —
// the format the shipped spaces/ files were written in — which have no
// checkpoint section and no quarantine fields.
func TestLoadReadsV1(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	var buf bytes.Buffer
	if err := search.Run(f, search.Options{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(gz).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	doc["version"] = 1
	delete(doc, "checkpoint")
	var v1 bytes.Buffer
	w := gzip.NewWriter(&v1)
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.Load(&v1)
	if err != nil {
		t.Fatalf("v1 document rejected: %v", err)
	}
	if loaded.Checkpoint != nil {
		t.Fatal("v1 document grew a checkpoint")
	}
	if loaded.Instance(loaded.OptimalCodeSize()) == nil {
		t.Fatal("v1 document does not replay")
	}
}
