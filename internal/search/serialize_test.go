package search_test

import (
	"bytes"
	"compress/gzip"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fingerprint"
	"repro/internal/search"
)

func TestSpaceSaveLoadRoundTrip(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	orig := search.Run(f, search.Options{})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.FuncName != orig.FuncName ||
		loaded.AttemptedPhases != orig.AttemptedPhases ||
		len(loaded.Nodes) != len(orig.Nodes) {
		t.Fatalf("header mismatch: %+v vs %+v", loaded, orig)
	}
	for i := range orig.Nodes {
		a, b := orig.Nodes[i], loaded.Nodes[i]
		if a.Key != b.Key || a.Seq != b.Seq || a.Level != b.Level ||
			a.NumInstrs != b.NumInstrs || a.FP != b.FP || a.CFKey != b.CFKey ||
			a.State != b.State || !reflect.DeepEqual(a.Edges, b.Edges) {
			t.Fatalf("node %d mismatch", i)
		}
	}

	// The loaded space must replay instances faithfully.
	best := loaded.OptimalCodeSize()
	inst := loaded.Instance(best)
	if inst.NumInstrs() != best.NumInstrs {
		t.Fatalf("replay after load: %d instructions, recorded %d",
			inst.NumInstrs(), best.NumInstrs)
	}
	if got := fingerprint.Of(inst); got != best.FP {
		t.Fatalf("replay fingerprint mismatch")
	}

	// And the analysis must produce identical statistics.
	xa, xb := analysis.NewInteractions(), analysis.NewInteractions()
	xa.Accumulate(orig)
	xb.Accumulate(loaded)
	if !reflect.DeepEqual(xa.Enabling(), xb.Enabling()) {
		t.Fatal("analysis differs after reload")
	}
}

func TestSpaceSaveLoadFile(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	orig := search.Run(f, search.Options{})
	path := filepath.Join(t.TempDir(), "clamp.space.gz")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Nodes) != len(orig.Nodes) {
		t.Fatalf("node count %d, want %d", len(loaded.Nodes), len(orig.Nodes))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := search.Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("accepted garbage input")
	}
	// Valid gzip of invalid JSON.
	var buf bytes.Buffer
	func() {
		gz := newGzip(&buf)
		defer gz.Close()
		gz.Write([]byte("{broken"))
	}()
	if _, err := search.Load(&buf); err == nil {
		t.Fatal("accepted broken JSON")
	}
}

func newGzip(w *bytes.Buffer) *gzip.Writer { return gzip.NewWriter(w) }
