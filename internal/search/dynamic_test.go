package search_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/rtl"
	"repro/internal/search"
)

// TestDynamicEstimatesMatchDirectMeasurement validates the Section 7
// inference: for every leaf of an enumerated space, the count inferred
// from its control-flow class representative must equal the count
// measured by actually executing that leaf.
func TestDynamicEstimatesMatchDirectMeasurement(t *testing.T) {
	prog, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{MaxNodes: 5000})
	if r.Aborted {
		t.Skip("space exceeds the test budget")
	}
	args := []int32{13}

	_, all, executions, err := r.BestDynamicCount(prog, "sum", args)
	if err != nil {
		t.Fatal(err)
	}
	if executions >= len(all) && len(all) > 1 {
		t.Errorf("control-flow classes saved nothing: %d executions for %d leaves",
			executions, len(all))
	}

	measure := func(inst *rtl.Func) int64 {
		mod := prog.Clone()
		for i := range mod.Funcs {
			if mod.Funcs[i].Name == inst.Name {
				mod.Funcs[i] = inst
			}
		}
		m := interp.New(mod, interp.Limits{})
		m.Profile(inst.Name)
		if _, err := m.Run("sum", args...); err != nil {
			t.Fatal(err)
		}
		var total int64
		for i, c := range m.BlockCounts() {
			total += c * int64(len(mod.Func(inst.Name).Blocks[i].Instrs))
		}
		return total
	}

	for _, e := range all {
		direct := measure(r.Instance(e.Node))
		if direct != e.Instrs {
			t.Fatalf("node %d (seq %q): inferred %d, measured %d",
				e.Node.ID, e.Node.Seq, e.Instrs, direct)
		}
	}
	t.Logf("%d leaves, %d executions (%.1fx saved)",
		len(all), executions, float64(len(all))/float64(executions))
}

// TestBestDynamicCountBeatsWorst sanity-checks that the space contains
// real performance differences and Best picks the minimum.
func TestBestDynamicCountBeatsWorst(t *testing.T) {
	prog, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{MaxNodes: 5000})
	if r.Aborted {
		t.Skip("space exceeds the test budget")
	}
	best, all, _, err := r.BestDynamicCount(prog, "sum", []int32{16})
	if err != nil {
		t.Fatal(err)
	}
	var worst int64
	for _, e := range all {
		if e.Instrs < best.Instrs {
			t.Fatalf("best is not minimal")
		}
		if e.Instrs > worst {
			worst = e.Instrs
		}
	}
	if worst <= best.Instrs {
		t.Skip("no performance spread in this space")
	}
	// The unoptimized root must not beat the best leaf.
	rootEst, _, err := r.EstimateDynamicCounts(prog, "sum", []int32{16}, []*search.Node{r.Root()})
	if err != nil {
		t.Fatal(err)
	}
	if rootEst[0].Instrs < best.Instrs {
		t.Fatalf("unoptimized code (%d) beats the best leaf (%d)", rootEst[0].Instrs, best.Instrs)
	}
}
