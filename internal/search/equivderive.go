package search

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fingerprint"
	"repro/internal/opt"
)

// DeriveEquiv computes the equivalence-collapsed space of a complete
// default-tier enumeration, byte-identical (under canonical
// serialization) to what Run with Options.Equiv produces directly.
//
// Equivalence-collapsed runs are not checkpointable — the class and
// alias tables are not persisted — so a sharded enumeration runs its
// shards in the default tier and derives the equiv space afterwards.
// That is sound because the complete default space is a total oracle
// for the equiv BFS: every node the equiv run expands is the class
// representative of some default-tier instance, every phase outcome at
// that instance is recorded in the default space's edges (absence =
// dormant, by the same Section 4.1 argument the merge replay uses),
// and class keys come from re-materializing child instances by their
// default-space sequences and encoding them with the same
// flow-sensitive encoder the live run applies. opts supplies the caps
// and phase list of the equiv request (the machine description always
// comes from full); if a cap binds, the derived result aborts with the
// serial run's reason.
func DeriveEquiv(full *Result, opts Options) (res *Result, err error) {
	if full.Checkpoint != nil {
		return nil, fmt.Errorf("search: derive-equiv: source space is not complete (checkpoint frontier remains)")
	}
	if full.Aborted {
		return nil, fmt.Errorf("search: derive-equiv: source space is aborted (%s)", full.AbortReason)
	}
	if full.Equiv != nil {
		return nil, fmt.Errorf("search: derive-equiv: source space is already equivalence-collapsed")
	}
	if len(full.Nodes) == 0 || full.root == nil {
		return nil, fmt.Errorf("search: derive-equiv: source space is empty")
	}
	// Sequence replay panics on malformed input (an unknown phase, a
	// dormant step); a shard result arrives over the wire, so convert
	// that into an error instead of unwinding the caller.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("search: derive-equiv: %v", r)
		}
	}()
	opts.fill()
	opts.Machine = full.opts.Machine
	opts.Equiv = true
	opts.CheckpointPath = ""
	opts.Logger, opts.Metrics, opts.Tracer = nil, nil, nil

	oracle := attemptOracle{}
	if err := harvestOracle(oracle, full, func(int) bool { return true }); err != nil {
		return nil, err
	}
	// Equivalence encodings, memoized by canonical key: the instance is
	// re-materialized by replaying its default-space sequence from the
	// root, then canonicalized exactly as the live equiv tier does.
	encCache := make(map[string][]byte)
	equivEnc := func(key, seq string) []byte {
		if b, ok := encCache[key]; ok {
			return b
		}
		st := opt.State{}
		fn := replaySeq(full.root, seq, opts.Machine, &st)
		b := dataflow.EquivEncode(nil, fn)
		encCache[key] = b
		return b
	}

	res = &Result{
		FuncName: full.FuncName,
		Elapsed:  full.Elapsed,
		root:     full.root,
		opts:     opts,
		keys:     newKeyStore(),
		Equiv:    &EquivStats{RedundantByPhase: make(map[string]int)},
	}
	ins := newInstruments(&res.opts, full.FuncName, time.Now())

	// Seed the root as Run does: Raw counts it, its canonical key and
	// equivalence class register, and the node counter ticks once.
	src := full.Nodes[0]
	rootKey := full.NodeKey(src)
	rootNode := &Node{
		FP:        src.FP,
		State:     src.State,
		NumInstrs: src.NumInstrs,
		CFKey:     src.CFKey,
		CheckErr:  src.CheckErr,
		EquivRaw:  1,
	}
	res.keys.put(0, rootKey)
	res.Nodes = []*Node{rootNode}
	// byKey is the identical tier plus its alias overlay: every raw
	// spelling seen so far, mapped to the node it resolved to.
	byKey := map[string]int{rootKey: 0}
	classes := map[string]int{rootKey[:1] + string(equivEnc(rootKey, "")): 0}
	res.Equiv.Raw = 1
	ins.nodes.Add(1)

	frontier := []*Node{rootNode}
	for len(frontier) > 0 {
		var work []attempt
		for _, n := range frontier {
			for _, p := range opts.Phases {
				if !opt.Enabled(p, n.State) {
					continue
				}
				if len(n.Seq) > 0 && n.Seq[len(n.Seq)-1] == p.ID() {
					continue
				}
				work = append(work, attempt{n, p})
			}
		}
		if len(work) > opts.MaxSeqPerLevel {
			res.abort(abortLevelCapReason(frontier[0].Level+1, len(work), opts.MaxSeqPerLevel))
			break
		}
		res.AttemptedPhases += len(work)
		level := frontier[0].Level
		levelStart := len(res.Nodes)
		ins.beginLevel(level, len(frontier), len(work))
		var next []*Node
		for _, a := range work {
			// The node's stored key is its class representative's
			// canonical key — the instance the live equiv run would
			// retain and expand — so the oracle lookup asks about
			// exactly the instance the live run evaluates.
			pkey := res.keys.get(a.node.ID)
			rec, ok := oracle[pkey][a.phase.ID()]
			if !ok {
				ins.observeOutcome(false, false)
				continue
			}
			if rec.quarantine != "" {
				qn := &Node{
					ID:         len(res.Nodes),
					Level:      a.node.Level + 1,
					Seq:        a.node.Seq + string(a.phase.ID()),
					Quarantine: strings.ReplaceAll(rec.quarantine, seqToken, strconv.Quote(a.node.Seq)),
				}
				res.keys.put(qn.ID, "Q"+qn.Seq)
				res.Nodes = append(res.Nodes, qn)
				a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: qn.ID})
				ins.observeQuarantine()
				continue
			}
			if id, dup := byKey[rec.key]; dup {
				// Identical tier: the raw spelling (or an alias of it)
				// is already known.
				ins.observeOutcome(true, false)
				a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: id})
				continue
			}
			res.Equiv.Raw++
			ck := rec.key[:1] + string(equivEnc(rec.key, rec.seq))
			if cid, dup := classes[ck]; dup {
				// Raw-distinct instance, known class: fold it in and
				// alias its spelling, exactly as engine.add does.
				byKey[rec.key] = cid
				cn := res.Nodes[cid]
				cn.EquivRaw++
				res.Equiv.Merged++
				res.Equiv.RedundantByPhase[string(a.phase.ID())]++
				ins.observeOutcome(true, false)
				ins.observeEquivMerge()
				a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: cid})
				continue
			}
			cn := &Node{
				ID:        len(res.Nodes),
				Level:     a.node.Level + 1,
				Seq:       a.node.Seq + string(a.phase.ID()),
				FP:        rec.fp,
				State:     bitsState(rec.state),
				NumInstrs: rec.numInstrs,
				CFKey:     fingerprint.Key(rec.cfKey),
				CheckErr:  rec.checkErr,
				EquivRaw:  1,
			}
			res.keys.put(cn.ID, rec.key)
			byKey[rec.key] = cn.ID
			classes[ck] = cn.ID
			res.Nodes = append(res.Nodes, cn)
			ins.observeOutcome(true, true)
			a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: cn.ID})
			next = append(next, cn)
		}
		ins.nodesExpanded += len(frontier)
		frontier = next
		res.keys.noteLevel(levelStart)
		if opts.MaxNodes > 0 && len(res.Nodes) > opts.MaxNodes {
			res.abort(abortNodeCapReason(opts.MaxNodes))
			break
		}
	}
	res.Stats = ins.runStats()
	return res, nil
}
