package search

import (
	"math/big"

	"repro/internal/opt"
	"repro/internal/rtl"
)

// NaiveSpaceSize returns the number of attempted optimization phase
// sequences of length exactly n over k distinct phases — the k^n
// explosion of Figure 1 that makes naive enumeration infeasible (the
// paper's worst case is 15^32).
func NaiveSpaceSize(k, n int) *big.Int {
	return new(big.Int).Exp(big.NewInt(int64(k)), big.NewInt(int64(n)), nil)
}

// NaiveSpaceTotal returns the total number of attempted sequences of
// length 1..n over k phases.
func NaiveSpaceTotal(k, n int) *big.Int {
	total := new(big.Int)
	for l := 1; l <= n; l++ {
		total.Add(total, NaiveSpaceSize(k, l))
	}
	return total
}

// DormantPrunedCount counts the nodes of the search *tree* (no
// identical-instance merging) up to the given depth when dormant
// phases are pruned — the Figure 2 space. Identical subtrees are
// memoized on (instance, state, remaining depth), which keeps the
// count exact while avoiding exponential work. The root is not
// counted.
func DormantPrunedCount(f *rtl.Func, depth int, opts Options) *big.Int {
	opts.fill()
	root := f.Clone()
	rtl.Cleanup(root)
	memo := make(map[string]*big.Int)

	var walk func(fn *rtl.Func, st opt.State, lastActive byte, remaining int) *big.Int
	walk = func(fn *rtl.Func, st opt.State, lastActive byte, remaining int) *big.Int {
		if remaining == 0 {
			return new(big.Int)
		}
		key := string(rune(remaining)) + string(lastActive) + stateKey(fn, st)
		if v, ok := memo[key]; ok {
			return v
		}
		total := new(big.Int)
		for _, p := range opts.Phases {
			if !opt.Enabled(p, st) || p.ID() == lastActive {
				continue
			}
			child := fn.Clone()
			cst := st
			if !opt.Attempt(child, &cst, p, opts.Machine) {
				continue
			}
			total.Add(total, big.NewInt(1))
			total.Add(total, walk(child, cst, p.ID(), remaining-1))
		}
		memo[key] = total
		return total
	}
	return walk(root, opt.State{}, 0, depth)
}

// NodesPerLevel returns, for a completed DAG search, how many distinct
// instances were first reached at each level — the Figure 4 view of
// the space.
func NodesPerLevel(r *Result) []int {
	max := 0
	for _, n := range r.Nodes {
		if n.Level > max {
			max = n.Level
		}
	}
	out := make([]int, max+1)
	for _, n := range r.Nodes {
		out[n.Level]++
	}
	return out
}
