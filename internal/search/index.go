package search

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"

	"repro/internal/fingerprint"
)

// indexKey is the first tier of the identical-instance index: the
// gating-state flags plus the paper's three-value fingerprint. Hashing
// on this 17-byte key instead of the full canonical encoding is the
// whole point of Section 4.2 — almost every probe is resolved by the
// fingerprint alone.
type indexKey struct {
	flags byte
	fp    fingerprint.FP
}

// dedupIndex is the two-tier identical-instance index. The first tier
// maps (flags, fingerprint) to a small bucket of node IDs; the second
// tier compares the full canonical bytes of each bucket member, so a
// fingerprint collision can never merge distinct instances. Keys of
// bucket members live in the keyStore, which compresses them once
// their level retires.
type dedupIndex struct {
	buckets map[indexKey][]int32
	keys    *keyStore

	// aliases is the equivalence tier's overlay (Options.Equiv only):
	// the canonical keys of raw-distinct instances that folded into an
	// equivalence class, mapping to the class's node ID. Alias keys
	// never enter the keyStore — they are not node keys — and are
	// never retired, because a later enumeration path can re-derive
	// the same raw spelling at any level. Nil when the option is off.
	aliases    map[indexKey][]aliasEntry
	aliasBytes int

	// Counters for the telemetry layer; plain ints because every
	// probe happens on the serial merge path.
	probes       int64
	byteCompares int64
	fpCollisions int64
}

// aliasEntry is one folded raw spelling: its full canonical key
// (flags byte + encoding) and the node of its equivalence class.
type aliasEntry struct {
	key string
	to  int32
}

func newDedupIndex(keys *keyStore) *dedupIndex {
	return &dedupIndex{buckets: make(map[indexKey][]int32), keys: keys}
}

// lookup returns the ID of the node whose stored key equals
// flags+enc — directly, or through the equivalence tier's aliases.
func (d *dedupIndex) lookup(flags byte, fp fingerprint.FP, enc []byte) (int, bool) {
	d.probes++
	k := indexKey{flags, fp}
	for _, id := range d.buckets[k] {
		d.byteCompares++
		if d.keys.matches(int(id), flags, enc) {
			return int(id), true
		}
		d.fpCollisions++
	}
	for _, a := range d.aliases[k] {
		d.byteCompares++
		if len(a.key) == len(enc)+1 && a.key[0] == flags && a.key[1:] == string(enc) {
			return int(a.to), true
		}
		d.fpCollisions++
	}
	return -1, false
}

// insert records id under (flags, fp). The caller must have stored the
// node's full key in the keyStore first.
func (d *dedupIndex) insert(flags byte, fp fingerprint.FP, id int) {
	k := indexKey{flags, fp}
	d.buckets[k] = append(d.buckets[k], int32(id))
}

// insertAlias records key — the canonical key of a raw spelling the
// equivalence tier folded away — as resolving to node id.
func (d *dedupIndex) insertAlias(flags byte, fp fingerprint.FP, key string, id int) {
	if d.aliases == nil {
		d.aliases = make(map[indexKey][]aliasEntry)
	}
	k := indexKey{flags, fp}
	d.aliases[k] = append(d.aliases[k], aliasEntry{key: key, to: int32(id)})
	d.aliasBytes += len(key)
}

// retainedBytes estimates the live memory held by the index: the key
// payloads (live, compressed and aliased) plus the bucket entries.
func (d *dedupIndex) retainedBytes() int {
	n := d.keys.retainedBytes() + d.aliasBytes
	for _, b := range d.buckets {
		n += 4 * len(b)
	}
	for _, a := range d.aliases {
		n += 4 * len(a)
	}
	return n
}

// keyStore owns the full canonical key bytes of every node. Keys of
// nodes in un-retired levels are held as live strings (the frontier
// still needs exact compares against them); when a level retires, its
// contiguous ID range is flate-compressed into a blob, dropping the
// per-node memory to the 16-byte fingerprint held by the index. A
// cross-level merge into a retired node (a phase reverting its
// parent's change, say) still byte-compares correctly: the blob is
// decompressed on demand, with the last-used blob cached.
type keyStore struct {
	live           map[int]string
	blobs          []keyBlob
	retiredThrough int // IDs below this are in blobs

	liveBytes int
	blobBytes int

	cachedBlob int // index into blobs, -1 when cold
	cachedData []byte

	// levelStarts queues the level boundaries noteLevel has seen but
	// not yet retired; zw is the reused flate compressor, zr the
	// reused decompressor.
	levelStarts []int
	zw          *flate.Writer
	zr          io.ReadCloser
}

// keyRetireWindow is how many trailing levels keep their keys live.
// Merges overwhelmingly target nodes within two levels of the parent
// (a phase reverting or commuting with a recent one); keeping that
// window uncompressed means blob decompression happens only on the
// rare deep merge.
const keyRetireWindow = 3

// keyBlob is one retired contiguous ID range: keys of nodes
// [start, start+len(offs)-1) concatenated and compressed, with
// cumulative offsets into the raw concatenation.
type keyBlob struct {
	start int
	offs  []uint32
	data  []byte
}

func newKeyStore() *keyStore {
	return &keyStore{live: make(map[int]string), cachedBlob: -1}
}

// put stores the key of a newly created node.
func (s *keyStore) put(id int, key string) {
	s.live[id] = key
	s.liveBytes += len(key)
}

// noteLevel records that a level finished expanding with levelStart
// nodes discovered before it began, and retires the level that slides
// out of the live window.
func (s *keyStore) noteLevel(levelStart int) {
	s.levelStarts = append(s.levelStarts, levelStart)
	if len(s.levelStarts) > keyRetireWindow {
		s.retire(s.retiredThrough, s.levelStarts[0])
		s.levelStarts = s.levelStarts[1:]
	}
}

// retire compresses the keys of nodes [from, to) into one blob and
// drops their live strings. Ranges must be retired in order; empty
// ranges are ignored.
func (s *keyStore) retire(from, to int) {
	if to <= from {
		return
	}
	if from != s.retiredThrough {
		panic(fmt.Sprintf("keyStore: retire [%d,%d) but retired through %d", from, to, s.retiredThrough))
	}
	var raw []byte
	offs := make([]uint32, 1, to-from+1)
	for id := from; id < to; id++ {
		k, ok := s.live[id]
		if !ok {
			panic(fmt.Sprintf("keyStore: retiring unknown node %d", id))
		}
		raw = append(raw, k...)
		offs = append(offs, uint32(len(raw)))
		s.liveBytes -= len(k)
		delete(s.live, id)
	}
	var zbuf bytes.Buffer
	if s.zw == nil {
		// The compressor state is large (~1 MB); one per store, reused
		// across levels with Reset.
		s.zw, _ = flate.NewWriter(&zbuf, flate.DefaultCompression)
	} else {
		s.zw.Reset(&zbuf)
	}
	_, err := s.zw.Write(raw)
	if err == nil {
		err = s.zw.Close()
	}
	if err != nil {
		// flate to a bytes.Buffer cannot fail; treat it as corruption.
		panic("keyStore: compress: " + err.Error())
	}
	data := append([]byte(nil), zbuf.Bytes()...)
	s.blobs = append(s.blobs, keyBlob{start: from, offs: offs, data: data})
	s.blobBytes += len(data) + 4*len(offs)
	s.retiredThrough = to
}

// blobFor returns the blob index covering a retired node ID.
func (s *keyStore) blobFor(id int) int {
	i := sort.Search(len(s.blobs), func(i int) bool { return s.blobs[i].start > id }) - 1
	if i < 0 || id-s.blobs[i].start >= len(s.blobs[i].offs)-1 {
		panic(fmt.Sprintf("keyStore: no blob for node %d", id))
	}
	return i
}

// blobData decompresses blob i, serving repeated lookups into the same
// blob from a one-entry cache. The raw size is known from the offset
// table, so the decode fills an exact-size buffer; the decompressor is
// reused via flate's Resetter.
func (s *keyStore) blobData(i int) []byte {
	if s.cachedBlob == i {
		return s.cachedData
	}
	b := &s.blobs[i]
	if s.zr == nil {
		s.zr = flate.NewReader(bytes.NewReader(b.data))
	} else if err := s.zr.(flate.Resetter).Reset(bytes.NewReader(b.data), nil); err != nil {
		panic("keyStore: corrupt key blob: " + err.Error())
	}
	raw := make([]byte, b.offs[len(b.offs)-1])
	if _, err := io.ReadFull(s.zr, raw); err != nil {
		panic("keyStore: corrupt key blob: " + err.Error())
	}
	s.cachedBlob, s.cachedData = i, raw
	return raw
}

// get returns the full key of a node, live or retired.
func (s *keyStore) get(id int) string {
	if k, ok := s.live[id]; ok {
		return k
	}
	i := s.blobFor(id)
	b := &s.blobs[i]
	raw := s.blobData(i)
	j := id - b.start
	return string(raw[b.offs[j]:b.offs[j+1]])
}

// matches reports whether node id's stored key equals flags+enc,
// without allocating in the live case.
func (s *keyStore) matches(id int, flags byte, enc []byte) bool {
	if k, ok := s.live[id]; ok {
		return len(k) == len(enc)+1 && k[0] == flags && k[1:] == string(enc)
	}
	i := s.blobFor(id)
	b := &s.blobs[i]
	raw := s.blobData(i)
	j := id - b.start
	k := raw[b.offs[j]:b.offs[j+1]]
	return len(k) == len(enc)+1 && k[0] == flags && bytes.Equal(k[1:], enc)
}

// retainedBytes is the payload memory the store holds on to: live key
// strings plus compressed blobs and their offset tables. The transient
// decompression cache is excluded — it is bounded by one blob and
// dropped on the next cross-blob lookup.
func (s *keyStore) retainedBytes() int {
	return s.liveBytes + s.blobBytes
}
