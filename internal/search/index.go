package search

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/fingerprint"
)

// indexKey is the first tier of the identical-instance index: the
// gating-state flags plus the paper's three-value fingerprint. Hashing
// on this 17-byte key instead of the full canonical encoding is the
// whole point of Section 4.2 — almost every probe is resolved by the
// fingerprint alone.
type indexKey struct {
	flags byte
	fp    fingerprint.FP
}

// numStripes is the power-of-two shard count of the concurrent index.
// A stripe is selected by the fingerprint CRC, so equal keys (equal
// fingerprints) always land on the same stripe and a single stripe
// lock serializes all probes that could observe the same instance.
// 64 stripes keep the expected contention at 16 workers negligible
// while the per-stripe fixed cost (a mutex and three small maps) stays
// in the tens of kilobytes per enumeration.
const numStripes = 64

// stripeFor selects the stripe of a fingerprint. flags are deliberately
// not mixed in: two keys that differ only in flags never compare equal
// anyway, and keeping the selection CRC-only makes the invariant
// "equal instance ⇒ same stripe" immediate.
func stripeFor(fp fingerprint.FP) uint32 { return fp.CRC & (numStripes - 1) }

// pendingNode is a this-level discovery parked in a stripe until the
// serial committer assigns it a node ID. Concurrency contract:
//
//   - key is immutable after creation (written once under the stripe
//     lock by the discovering worker; the flags byte + canonical
//     encoding copy that becomes the node key verbatim).
//   - id and alias are owned by the committer: -1 until the first
//     attempt referencing this entry commits; then either the new
//     node's ID, or — when the equivalence tier folded the instance —
//     the class node's ID with alias set. Workers never read them;
//     commits happen in attempt order, so "first committed reference"
//     is exactly the serial engine's "first discovery".
type pendingNode struct {
	key   string
	id    int32
	alias bool
}

// dedupIndex is the striped concurrent identical-instance index. The
// first tier maps (flags, fingerprint) to a small bucket of node IDs;
// the second tier compares the full canonical bytes of each bucket
// member, so a fingerprint collision can never merge distinct
// instances. Keys of bucket members live in the keyStore, which
// compresses them once their level retires.
//
// Concurrency model (DESIGN.md §13): buckets and aliases hold only
// committed, promoted entries and change exclusively at level
// boundaries (promote, serial insert/insertAlias) — during a level
// they are read-only. pending absorbs the level's discoveries under
// the stripe lock, so workers resolve concurrently without touching
// the serial commit path. The per-stripe counters are telemetry only:
// their values depend on probe interleaving and are never serialized
// into the space format.
type dedupIndex struct {
	keys    *keyStore
	stripes [numStripes]indexStripe
}

// indexStripe is one shard. All fields are guarded by mu.
type indexStripe struct {
	mu      sync.Mutex
	buckets map[indexKey][]int32
	pending map[indexKey][]*pendingNode

	// aliases is the equivalence tier's overlay (Options.Equiv only):
	// the canonical keys of raw-distinct instances that folded into an
	// equivalence class, mapping to the class's node ID. Alias keys
	// never enter the keyStore — they are not node keys — and are
	// never retired, because a later enumeration path can re-derive
	// the same raw spelling at any level. Nil when the option is off.
	aliases    map[indexKey][]aliasEntry
	aliasBytes int

	// Probe telemetry (scheduling-dependent, see type comment) plus
	// lock contention: acquisitions counts lock takes, contended the
	// ones that found the lock held.
	probes       int64
	byteCompares int64
	fpCollisions int64
	acquisitions int64
	contended    int64
}

// aliasEntry is one folded raw spelling: its full canonical key
// (flags byte + encoding) and the node of its equivalence class.
type aliasEntry struct {
	key string
	to  int32
}

func newDedupIndex(keys *keyStore) *dedupIndex {
	d := &dedupIndex{keys: keys}
	for i := range d.stripes {
		d.stripes[i].buckets = make(map[indexKey][]int32)
	}
	return d
}

// lock acquires a stripe, counting the acquisition and whether it
// contended with another holder.
func (s *indexStripe) lock() {
	if !s.mu.TryLock() {
		s.mu.Lock()
		s.contended++
	}
	s.acquisitions++
}

// scan looks k up in the stripe's committed tiers: the ID buckets
// (second-tier byte compare through the keyStore) and the equivalence
// aliases. Callers hold s.mu.
func (s *indexStripe) scan(keys *keyStore, k indexKey, flags byte, enc []byte) (int32, bool) {
	for _, id := range s.buckets[k] {
		s.byteCompares++
		if keys.matches(int(id), flags, enc) {
			return id, true
		}
		s.fpCollisions++
	}
	for _, a := range s.aliases[k] {
		s.byteCompares++
		if len(a.key) == len(enc)+1 && a.key[0] == flags && a.key[1:] == string(enc) {
			return a.to, true
		}
		s.fpCollisions++
	}
	return -1, false
}

// resolve is the workers' concurrent probe: find the instance in the
// committed tiers (dup ≥ 0), find it among this level's pending
// discoveries (pend non-nil, parked by an earlier probe), or park a
// new pending entry for it (pend non-nil, freshly created). Exactly
// one of the two results is meaningful; the committer turns them into
// the serial engine's merge decisions in attempt order.
func (d *dedupIndex) resolve(flags byte, fp fingerprint.FP, enc []byte) (dup int32, pend *pendingNode) {
	s := &d.stripes[stripeFor(fp)]
	k := indexKey{flags, fp}
	s.lock()
	defer s.mu.Unlock()
	s.probes++
	if id, ok := s.scan(d.keys, k, flags, enc); ok {
		return id, nil
	}
	for _, p := range s.pending[k] {
		s.byteCompares++
		if len(p.key) == len(enc)+1 && p.key[0] == flags && p.key[1:] == string(enc) {
			return -1, p
		}
		s.fpCollisions++
	}
	key := make([]byte, 0, 1+len(enc))
	key = append(append(key, flags), enc...)
	p := &pendingNode{key: string(key), id: -1}
	if s.pending == nil {
		s.pending = make(map[indexKey][]*pendingNode)
	}
	s.pending[k] = append(s.pending[k], p)
	return -1, p
}

// promote moves the level's committed pending entries into the
// read-only tiers at the level boundary (no workers are running):
// plain discoveries into the ID buckets, equivalence folds into the
// alias overlay. Entries never committed — the level aborted after
// they were parked — are dropped; an aborted run ends immediately and
// a resume rebuilds the index from the node table. The iteration
// order of the pending map only affects future probe-counter values,
// which are telemetry and never serialized.
func (d *dedupIndex) promote() {
	for i := range d.stripes {
		s := &d.stripes[i]
		s.lock()
		for k, list := range s.pending {
			for _, p := range list {
				switch {
				case p.id < 0: // never committed: aborted level
				case p.alias:
					if s.aliases == nil {
						s.aliases = make(map[indexKey][]aliasEntry)
					}
					s.aliases[k] = append(s.aliases[k], aliasEntry{key: p.key, to: p.id})
					s.aliasBytes += len(p.key)
				default:
					s.buckets[k] = append(s.buckets[k], p.id)
				}
			}
			delete(s.pending, k)
		}
		s.mu.Unlock()
	}
}

// lookup returns the ID of the node whose stored key equals
// flags+enc — directly, or through the equivalence tier's aliases.
// Serial path (root seeding, Resume's rebuild probes, independence
// pruning); pending entries are invisible to it.
func (d *dedupIndex) lookup(flags byte, fp fingerprint.FP, enc []byte) (int, bool) {
	s := &d.stripes[stripeFor(fp)]
	s.lock()
	defer s.mu.Unlock()
	s.probes++
	id, ok := s.scan(d.keys, indexKey{flags, fp}, flags, enc)
	return int(id), ok
}

// insert records id under (flags, fp). The caller must have stored the
// node's full key in the keyStore first. Serial path: the root node,
// Resume's index rebuild and the independence-pruning enumerator.
func (d *dedupIndex) insert(flags byte, fp fingerprint.FP, id int) {
	s := &d.stripes[stripeFor(fp)]
	k := indexKey{flags, fp}
	s.lock()
	s.buckets[k] = append(s.buckets[k], int32(id))
	s.mu.Unlock()
}

// insertAlias records key — the canonical key of a raw spelling the
// equivalence tier folded away — as resolving to node id. Serial path
// (the root's equivalence seeding); level-time folds travel through
// pending entries and promote instead.
func (d *dedupIndex) insertAlias(flags byte, fp fingerprint.FP, key string, id int) {
	s := &d.stripes[stripeFor(fp)]
	k := indexKey{flags, fp}
	s.lock()
	if s.aliases == nil {
		s.aliases = make(map[indexKey][]aliasEntry)
	}
	s.aliases[k] = append(s.aliases[k], aliasEntry{key: key, to: int32(id)})
	s.aliasBytes += len(key)
	s.mu.Unlock()
}

// indexCounters aggregates the per-stripe telemetry.
type indexCounters struct {
	probes       int64
	byteCompares int64
	fpCollisions int64
	acquisitions int64
	contended    int64
}

// counters sums the stripe counters. Called at level boundaries and by
// tests; takes each stripe lock so it is safe alongside workers.
func (d *dedupIndex) counters() indexCounters {
	var c indexCounters
	for i := range d.stripes {
		s := &d.stripes[i]
		s.mu.Lock()
		c.probes += s.probes
		c.byteCompares += s.byteCompares
		c.fpCollisions += s.fpCollisions
		c.acquisitions += s.acquisitions
		c.contended += s.contended
		s.mu.Unlock()
	}
	return c
}

// retainedBytes estimates the live memory held by the index: the key
// payloads (live, compressed and aliased) plus the bucket entries.
func (d *dedupIndex) retainedBytes() int {
	n := d.keys.retainedBytes()
	for i := range d.stripes {
		s := &d.stripes[i]
		s.mu.Lock()
		n += s.aliasBytes
		for _, b := range s.buckets {
			n += 4 * len(b)
		}
		for _, a := range s.aliases {
			n += 4 * len(a)
		}
		s.mu.Unlock()
	}
	return n
}

// keyStore owns the full canonical key bytes of every node. Keys of
// nodes in un-retired levels are held as live strings (the frontier
// still needs exact compares against them); when a level retires, its
// contiguous ID range is flate-compressed into a blob, dropping the
// per-node memory to the 16-byte fingerprint held by the index. A
// cross-level merge into a retired node (a phase reverting its
// parent's change, say) still byte-compares correctly: the blob is
// decompressed on demand, with the last-used blob cached.
//
// Concurrency contract: put, noteLevel and retire run only on the
// serial commit path (put) or at level boundaries (the rest), under
// mu. matches is called by workers holding a stripe lock; its live-map
// fast path takes the read lock, while the retired-blob path upgrades
// to the write lock because the one-entry decompression cache mutates
// on read. Membership cannot move between live and retired mid-level
// (retirement happens only at boundaries), so the upgrade re-reads
// nothing stale.
type keyStore struct {
	mu             sync.RWMutex
	live           map[int]string
	blobs          []keyBlob
	retiredThrough int // IDs below this are in blobs

	liveBytes int
	blobBytes int

	cachedBlob int // index into blobs, -1 when cold
	cachedData []byte

	// levelStarts queues the level boundaries noteLevel has seen but
	// not yet retired; zw is the reused flate compressor, zr the
	// reused decompressor.
	levelStarts []int
	zw          *flate.Writer
	zr          io.ReadCloser
}

// keyRetireWindow is how many trailing levels keep their keys live.
// Merges overwhelmingly target nodes within two levels of the parent
// (a phase reverting or commuting with a recent one); keeping that
// window uncompressed means blob decompression happens only on the
// rare deep merge.
const keyRetireWindow = 3

// keyBlob is one retired contiguous ID range: keys of nodes
// [start, start+len(offs)-1) concatenated and compressed, with
// cumulative offsets into the raw concatenation.
type keyBlob struct {
	start int
	offs  []uint32
	data  []byte
}

func newKeyStore() *keyStore {
	return &keyStore{live: make(map[int]string), cachedBlob: -1}
}

// put stores the key of a newly created node.
func (s *keyStore) put(id int, key string) {
	s.mu.Lock()
	s.live[id] = key
	s.liveBytes += len(key)
	s.mu.Unlock()
}

// noteLevel records that a level finished expanding with levelStart
// nodes discovered before it began, and retires the level that slides
// out of the live window.
func (s *keyStore) noteLevel(levelStart int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.levelStarts = append(s.levelStarts, levelStart)
	if len(s.levelStarts) > keyRetireWindow {
		s.retire(s.retiredThrough, s.levelStarts[0])
		s.levelStarts = s.levelStarts[1:]
	}
}

// retire compresses the keys of nodes [from, to) into one blob and
// drops their live strings. Ranges must be retired in order; empty
// ranges are ignored. Callers hold mu (noteLevel) or own the store
// exclusively (the space loader).
func (s *keyStore) retire(from, to int) {
	if to <= from {
		return
	}
	if from != s.retiredThrough {
		panic(fmt.Sprintf("keyStore: retire [%d,%d) but retired through %d", from, to, s.retiredThrough))
	}
	var raw []byte
	offs := make([]uint32, 1, to-from+1)
	for id := from; id < to; id++ {
		k, ok := s.live[id]
		if !ok {
			panic(fmt.Sprintf("keyStore: retiring unknown node %d", id))
		}
		raw = append(raw, k...)
		offs = append(offs, uint32(len(raw)))
		s.liveBytes -= len(k)
		delete(s.live, id)
	}
	var zbuf bytes.Buffer
	if s.zw == nil {
		// The compressor state is large (~1 MB); one per store, reused
		// across levels with Reset.
		s.zw, _ = flate.NewWriter(&zbuf, flate.DefaultCompression)
	} else {
		s.zw.Reset(&zbuf)
	}
	_, err := s.zw.Write(raw)
	if err == nil {
		err = s.zw.Close()
	}
	if err != nil {
		// flate to a bytes.Buffer cannot fail; treat it as corruption.
		panic("keyStore: compress: " + err.Error())
	}
	data := append([]byte(nil), zbuf.Bytes()...)
	s.blobs = append(s.blobs, keyBlob{start: from, offs: offs, data: data})
	s.blobBytes += len(data) + 4*len(offs)
	s.retiredThrough = to
}

// blobFor returns the blob index covering a retired node ID.
func (s *keyStore) blobFor(id int) int {
	i := sort.Search(len(s.blobs), func(i int) bool { return s.blobs[i].start > id }) - 1
	if i < 0 || id-s.blobs[i].start >= len(s.blobs[i].offs)-1 {
		panic(fmt.Sprintf("keyStore: no blob for node %d", id))
	}
	return i
}

// blobData decompresses blob i, serving repeated lookups into the same
// blob from a one-entry cache. The raw size is known from the offset
// table, so the decode fills an exact-size buffer; the decompressor is
// reused via flate's Resetter. Callers hold the write lock: the cache
// and the shared decompressor mutate even on a logically read-only
// lookup.
func (s *keyStore) blobData(i int) []byte {
	if s.cachedBlob == i {
		return s.cachedData
	}
	b := &s.blobs[i]
	if s.zr == nil {
		s.zr = flate.NewReader(bytes.NewReader(b.data))
	} else if err := s.zr.(flate.Resetter).Reset(bytes.NewReader(b.data), nil); err != nil {
		panic("keyStore: corrupt key blob: " + err.Error())
	}
	raw := make([]byte, b.offs[len(b.offs)-1])
	if _, err := io.ReadFull(s.zr, raw); err != nil {
		panic("keyStore: corrupt key blob: " + err.Error())
	}
	s.cachedBlob, s.cachedData = i, raw
	return raw
}

// get returns the full key of a node, live or retired.
func (s *keyStore) get(id int) string {
	s.mu.RLock()
	if k, ok := s.live[id]; ok {
		s.mu.RUnlock()
		return k
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if k, ok := s.live[id]; ok {
		return k
	}
	i := s.blobFor(id)
	b := &s.blobs[i]
	raw := s.blobData(i)
	j := id - b.start
	return string(raw[b.offs[j]:b.offs[j+1]])
}

// matches reports whether node id's stored key equals flags+enc,
// without allocating in the live case. The live fast path holds only
// the read lock, so concurrent workers probing different stripes never
// serialize on the store; the rare deep merge against a retired level
// upgrades to the write lock for the decompression cache.
func (s *keyStore) matches(id int, flags byte, enc []byte) bool {
	s.mu.RLock()
	if k, ok := s.live[id]; ok {
		s.mu.RUnlock()
		return len(k) == len(enc)+1 && k[0] == flags && k[1:] == string(enc)
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if k, ok := s.live[id]; ok {
		return len(k) == len(enc)+1 && k[0] == flags && k[1:] == string(enc)
	}
	i := s.blobFor(id)
	b := &s.blobs[i]
	raw := s.blobData(i)
	j := id - b.start
	k := raw[b.offs[j]:b.offs[j+1]]
	return len(k) == len(enc)+1 && k[0] == flags && bytes.Equal(k[1:], enc)
}

// retainedBytes is the payload memory the store holds on to: live key
// strings plus compressed blobs and their offset tables. The transient
// decompression cache is excluded — it is bounded by one blob and
// dropped on the next cross-blob lookup.
func (s *keyStore) retainedBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveBytes + s.blobBytes
}
