// Package search implements the paper's core contribution: exhaustive
// enumeration of the optimization phase order space (Section 4). The
// space of attempted sequences is astronomically large (15^n), but two
// pruning techniques make the space of distinct *function instances*
// enumerable:
//
//  1. dormant phases produce no new node (Figure 2), and
//  2. identical function instances — detected after canonical
//     register/label renumbering — merge, turning the tree into a DAG
//     (Figure 4).
//
// The search proceeds level by level, exactly like Figure 1: level n
// holds the instances first reachable by an active sequence of length
// n. A configurable cap on the number of sequences evaluated at one
// level aborts oversized functions, mirroring the paper's one-million
// cutoff that marked two of 111 functions "too big".
package search

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

// Edge records an active phase application from one node to another.
type Edge struct {
	Phase byte
	To    int
}

// Node is one distinct function instance in the phase order space DAG.
type Node struct {
	ID    int
	Level int
	// Seq is the lexicographically first shortest active phase
	// sequence producing this instance from the unoptimized function.
	Seq string
	// Key is the exact canonical encoding plus gating state; nodes
	// are merged exactly when Keys match.
	Key string
	// FP is the paper's three-value fingerprint (count/bytesum/CRC).
	FP fingerprint.FP
	// State holds the gating facts for phase legality at this node.
	State opt.State
	// NumInstrs is the static code size of the instance.
	NumInstrs int
	// CFKey identifies the control-flow shape (Table 3 column CF).
	CFKey fingerprint.Key
	// Edges lists the active phases leaving this node, in phase order.
	Edges []Edge
	// CheckErr, when Options.Check is set, records the semantic
	// verifier's complaint about this instance ("" = verified clean).
	// Seq then reproduces the violation: the last phase of Seq is the
	// offending one, the prefix is the setup.
	CheckErr string
	// Weight is the number of distinct active sequences at or below
	// this node (leaves weigh 1), per Figure 7. Filled by Analyze.
	Weight float64

	fn *rtl.Func // retained only while unexplored
}

// IsLeaf reports whether no phase is active at this node.
func (n *Node) IsLeaf() bool { return len(n.Edges) == 0 }

// Options configure a search.
type Options struct {
	// Phases are the candidate phases (default: opt.All()).
	Phases []opt.Phase
	// Machine is the target description (default: machine.StrongARM()).
	Machine *machine.Desc
	// MaxSeqPerLevel aborts the search when the number of sequences to
	// evaluate at one level exceeds it (paper: 1,000,000).
	MaxSeqPerLevel int
	// MaxNodes aborts the search when the DAG exceeds this many
	// distinct instances (0 = unlimited).
	MaxNodes int
	// Timeout aborts the search after this much wall time
	// (0 = unlimited).
	Timeout time.Duration
	// Verifier, when non-nil, is invoked on every new instance; it
	// should return an error when the instance misbehaves. Used for
	// differential testing of the whole space.
	Verifier func(f *rtl.Func) error
	// Check runs the internal/check semantic verifier on every
	// distinct instance (root included). Unlike Verifier, a finding
	// does not abort the search: it is recorded in Node.CheckErr so a
	// whole space's violations can be harvested in one enumeration
	// (see Result.CheckFailures).
	Check bool
	// KeepFuncs retains every node's function instance in memory
	// (needed by callers that walk instances afterwards; the analysis
	// and statistics do not need it).
	KeepFuncs bool
	// Workers sets the evaluation parallelism (default: NumCPU). The
	// enumeration result is deterministic regardless of the setting.
	Workers int
	// NaiveReplay disables the paper's Section 4.3 search
	// enhancements: every sequence evaluation restarts from the
	// unoptimized function and replays the whole phase prefix, the
	// way Figure 6(a) evaluates sequences. The enumerated space is
	// identical; only the evaluation cost changes (Figure 6 reports
	// the enhancements win a factor of 5-10).
	NaiveReplay bool
	// Ctx, when non-nil, cancels the search cooperatively: workers
	// stop picking up attempts and the level loop aborts the result
	// with a "canceled" reason. Because Run returns normally, deferred
	// metric/trace writers still flush on interruption.
	Ctx context.Context
	// Metrics, when non-nil, receives the search counters, gauges and
	// duration histograms (search.nodes, search.dormant,
	// search.statekey.duration_ns, ...). Nil keeps the hot paths free
	// of timing calls.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records search.expand → opt.attempt:<p> →
	// check.verify spans, one trace lane per worker, plus a
	// search.level span per frontier level on lane 0.
	Tracer *telemetry.Tracer
	// ProgressInterval > 0 ticks one-line status updates (nodes,
	// frontier, prune rates, level ETA) to ProgressWriter while the
	// search runs.
	ProgressInterval time.Duration
	// ProgressWriter is the progress destination (default os.Stderr).
	ProgressWriter io.Writer
}

func (o *Options) fill() {
	if o.Phases == nil {
		o.Phases = opt.All()
	}
	if o.Machine == nil {
		o.Machine = machine.StrongARM()
	}
	if o.MaxSeqPerLevel == 0 {
		o.MaxSeqPerLevel = 1_000_000
	}
}

// Result is the enumerated phase order space of one function.
type Result struct {
	FuncName string
	Nodes    []*Node
	// AttemptedPhases counts every phase application evaluated during
	// the search, active or dormant (Table 3, "Attempt Phases").
	AttemptedPhases int
	// Aborted reports that a cap stopped the search ("N/A" rows).
	Aborted     bool
	AbortReason string
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// Stats summarizes where the search spent its effort (prune
	// counts, merge counts, per-operation timing); it is persisted by
	// the space serializer alongside the node table.
	Stats RunStats

	root *rtl.Func
	opts Options
}

// Root returns the node of the unoptimized instance.
func (r *Result) Root() *Node { return r.Nodes[0] }

// Run exhaustively enumerates the phase order space of f. The function
// is not modified.
func Run(f *rtl.Func, opts Options) *Result {
	opts.fill()
	start := time.Now()
	ins := newInstruments(&opts, f.Name, start)
	if opts.ProgressInterval > 0 {
		w := opts.ProgressWriter
		if w == nil {
			w = os.Stderr
		}
		defer telemetry.NewProgress(w, opts.ProgressInterval, ins.progressLine).Start().Stop()
	}

	root := f.Clone()
	rtl.Cleanup(root)

	res := &Result{FuncName: f.Name, root: root.Clone(), opts: opts}
	index := make(map[string]int)

	add := func(fn *rtl.Func, st opt.State, level int, seq string) (*Node, bool) {
		var keyBegan time.Time
		if ins.timed {
			keyBegan = time.Now()
		}
		key := stateKey(fn, st)
		if ins.timed {
			ins.observeStateKey(keyBegan)
		}
		if id, ok := index[key]; ok {
			return res.Nodes[id], false
		}
		n := &Node{
			ID:        len(res.Nodes),
			Level:     level,
			Seq:       seq,
			Key:       key,
			FP:        fingerprint.Of(fn),
			State:     st,
			NumInstrs: fn.NumInstrs(),
			CFKey:     fingerprint.ControlFlowKey(fn),
			fn:        fn,
		}
		index[key] = n.ID
		res.Nodes = append(res.Nodes, n)
		return n, true
	}

	rootNode, _ := add(root, opt.State{}, 0, "")
	ins.nodes.Add(1)
	ins.mNodes.Inc()
	if opts.Check {
		if err := check.Err(root, opts.Machine); err != nil {
			rootNode.CheckErr = err.Error()
		}
	}
	frontier := []*Node{rootNode}

	// canceled polls Options.Ctx without blocking; done hands workers
	// the raw channel so each expansion can bail out early.
	var done <-chan struct{}
	if opts.Ctx != nil {
		done = opts.Ctx.Done()
	}
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	abortCanceled := func() {
		res.Aborted = true
		res.AbortReason = fmt.Sprintf("canceled: %v", context.Cause(opts.Ctx))
		ins.tracer.Instant("search.abort", "search", 0, map[string]any{"reason": res.AbortReason})
	}

	for len(frontier) > 0 {
		if canceled() {
			abortCanceled()
			break
		}
		// The number of sequences to evaluate at this level is the
		// number of (node, enabled phase) pairs.
		pending := 0
		for _, n := range frontier {
			for _, p := range opts.Phases {
				if opt.Enabled(p, n.State) {
					pending++
				}
			}
		}
		if pending > opts.MaxSeqPerLevel {
			res.Aborted = true
			res.AbortReason = fmt.Sprintf("level %d requires %d sequence evaluations (cap %d)",
				frontier[0].Level+1, pending, opts.MaxSeqPerLevel)
			break
		}

		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			res.Aborted = true
			res.AbortReason = "timeout"
			break
		}

		// Evaluate every (node, phase) pair of the level. Attempts are
		// independent, so they run on a worker pool; results merge in
		// deterministic (node, phase) order so the enumeration is
		// reproducible regardless of scheduling.
		var work []attempt
		for _, n := range frontier {
			for _, p := range opts.Phases {
				if !opt.Enabled(p, n.State) {
					continue
				}
				// An active phase is never active twice in a row
				// (Section 4.1), so re-attempting the phase that
				// produced this node is pointless.
				if len(n.Seq) > 0 && n.Seq[len(n.Seq)-1] == p.ID() {
					continue
				}
				work = append(work, attempt{n, p})
			}
		}
		res.AttemptedPhases += len(work)
		level := frontier[0].Level
		ins.beginLevel(level, len(frontier), len(work))
		levelSpan := ins.tracer.Begin("search.level", "search", 0)

		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}

		// Process in chunks so a very wide level does not hold every
		// child clone in memory at once.
		const chunkSize = 4096
		var next []*Node
		outcomes := make([]outcome, 0, chunkSize)
		for lo := 0; lo < len(work); lo += chunkSize {
			hi := lo + chunkSize
			if hi > len(work) {
				hi = len(work)
			}
			chunk := work[lo:hi]
			outcomes = outcomes[:len(chunk)]
			for i := range outcomes {
				outcomes[i] = outcome{}
			}
			nw := workers
			if nw > len(chunk) {
				nw = len(chunk)
			}
			var wg sync.WaitGroup
			var cursor atomic.Int64
			for w := 0; w < nw; w++ {
				wg.Add(1)
				// Lane w+1 keeps each worker's spans in their own
				// trace row; lane 0 is the serial control lane.
				go func(lane int) {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(chunk) {
							return
						}
						// Checked per expansion so cancellation stops
						// the run within one attempt's latency.
						select {
						case <-done:
							return
						default:
						}
						a := chunk[i]
						var began time.Time
						if ins.timed {
							began = time.Now()
						}
						expandSpan := ins.tracer.Begin("search.expand", "search", lane)
						outcomes[i] = evalAttempt(res.root, a, &opts, ins, lane)
						expandSpan.End(map[string]any{
							"seq":    a.node.Seq,
							"phase":  string(a.phase.ID()),
							"active": outcomes[i].active,
						})
						if ins.timed {
							ins.observeExpand(began)
						} else {
							ins.levelDone.Add(1)
						}
					}
				}(w + 1)
			}
			wg.Wait()
			if canceled() {
				// Discard the chunk: partially evaluated outcomes
				// would skew the merge and the prune statistics.
				abortCanceled()
				break
			}
			for i, a := range chunk {
				o := outcomes[i]
				if !o.active {
					ins.observeOutcome(false, false)
					continue
				}
				cn, isNew := add(o.fn, o.st, a.node.Level+1, a.node.Seq+string(a.phase.ID()))
				ins.observeOutcome(true, isNew)
				a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: cn.ID})
				if isNew {
					cn.CheckErr = o.checkErr
					next = append(next, cn)
				}
			}
			if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
				res.Aborted = true
				res.AbortReason = "timeout"
				break
			}
		}
		levelSpan.End(map[string]any{
			"level": level, "frontier": len(frontier), "attempts": len(work), "nodes": len(res.Nodes),
		})
		if res.Aborted {
			break
		}
		ins.nodesExpanded += len(frontier)
		if !opts.KeepFuncs {
			for _, n := range frontier {
				n.fn = nil // instance no longer needed once explored
			}
		}
		if opts.MaxNodes > 0 && len(res.Nodes) > opts.MaxNodes {
			res.Aborted = true
			res.AbortReason = fmt.Sprintf("more than %d distinct instances", opts.MaxNodes)
			break
		}
		frontier = next
	}
	if res.Aborted && res.AbortReason != "" {
		ins.tracer.Instant("search.abort", "search", 0, map[string]any{"reason": res.AbortReason})
	}
	res.Elapsed = time.Since(start)
	res.Stats = ins.runStats()
	return res
}

// attempt is one (node, phase) pair scheduled for evaluation.
type attempt struct {
	node  *Node
	phase opt.Phase
}

// outcome is the result of evaluating one attempt on a worker.
type outcome struct {
	active   bool
	fn       *rtl.Func
	st       opt.State
	checkErr string
}

// evalAttempt evaluates one (node, phase) pair: materialize the parent
// instance (clone, or full replay under NaiveReplay), apply the phase,
// and optionally verify the child. Trace spans mark the phase
// application and the semantic verification on the worker's lane.
func evalAttempt(root *rtl.Func, a attempt, opts *Options, ins *instruments, lane int) outcome {
	var child *rtl.Func
	st := opt.State{}
	if opts.NaiveReplay {
		// Figure 6(a): reload the unoptimized function and re-apply
		// the entire active prefix.
		replaySpan := ins.tracer.Begin("search.replay", "search", lane)
		child = replaySeq(root, a.node.Seq, opts.Machine, &st)
		replaySpan.End(map[string]any{"seq": a.node.Seq})
	} else {
		child = a.node.fn.Clone()
		st = a.node.State
	}
	attemptSpan := ins.tracer.Begin("opt.attempt:"+string(a.phase.ID()), "opt", lane)
	active := opt.Attempt(child, &st, a.phase, opts.Machine)
	attemptSpan.End(map[string]any{"active": active})
	if !active {
		return outcome{} // dormant: branch pruned
	}
	if opts.Verifier != nil {
		if err := opts.Verifier(child); err != nil {
			panic(fmt.Sprintf("search: instance %q+%c misbehaves: %v",
				a.node.Seq, a.phase.ID(), err))
		}
	}
	o := outcome{active: true, fn: child, st: st}
	if opts.Check {
		verifySpan := ins.tracer.Begin("check.verify", "check", lane)
		err := check.Err(child, opts.Machine)
		verifySpan.End(map[string]any{"clean": err == nil})
		if err != nil {
			o.checkErr = err.Error()
		}
	}
	return o
}

// stateKey combines the canonical instance encoding with the gating
// state, so instances that look identical but have different phase
// legality (e.g. one has had instruction selection applied) stay
// distinct.
func stateKey(fn *rtl.Func, st opt.State) string {
	var flags byte
	if st.RegAssigned {
		flags |= 1
	}
	if st.KApplied {
		flags |= 2
	}
	if st.SApplied {
		flags |= 4
	}
	return string(flags) + string(fingerprint.Encode(fn))
}

// replaySeq reconstructs an instance by cloning the unoptimized
// function and applying an active phase sequence.
func replaySeq(root *rtl.Func, seq string, d *machine.Desc, st *opt.State) *rtl.Func {
	f := root.Clone()
	for i := 0; i < len(seq); i++ {
		p := opt.ByID(seq[i])
		if !opt.Attempt(f, st, p, d) {
			panic(fmt.Sprintf("search: replay of %q: phase %c dormant", seq, seq[i]))
		}
	}
	return f
}

// Instance reconstructs the function instance of a node by replaying
// its sequence from the unoptimized root. When the search ran with
// KeepFuncs the retained instance is returned directly.
func (r *Result) Instance(n *Node) *rtl.Func {
	if n.fn != nil {
		return n.fn.Clone()
	}
	f := r.root.Clone()
	st := opt.State{}
	for i := 0; i < len(n.Seq); i++ {
		p := opt.ByID(n.Seq[i])
		if p == nil {
			panic(fmt.Sprintf("search: unknown phase %q in sequence", n.Seq[i]))
		}
		if !opt.Attempt(f, &st, p, r.opts.Machine) {
			panic(fmt.Sprintf("search: replay of %q: phase %c dormant", n.Seq, n.Seq[i]))
		}
	}
	return f
}

// CheckFailures returns the nodes whose instances the semantic
// verifier rejected, in discovery order. Empty when the search ran
// without Options.Check or when every instance verified clean.
func (r *Result) CheckFailures() []*Node {
	var out []*Node
	for _, n := range r.Nodes {
		if n.CheckErr != "" {
			out = append(out, n)
		}
	}
	return out
}

// Leaves returns the leaf nodes — instances at which every phase is
// dormant, where the optimization space DAG converges.
func (r *Result) Leaves() []*Node {
	var out []*Node
	for _, n := range r.Nodes {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// BestCodeSize returns the leaf with the fewest instructions,
// resolving ties toward the shortest sequence. Leaves are where Table
// 3's code size extremes are measured.
func (r *Result) BestCodeSize() *Node {
	var best *Node
	for _, n := range r.Leaves() {
		if best == nil || n.NumInstrs < best.NumInstrs ||
			(n.NumInstrs == best.NumInstrs && len(n.Seq) < len(best.Seq)) {
			best = n
		}
	}
	return best
}

// OptimalCodeSize returns the instance with the fewest instructions
// anywhere in the space — not only at the leaves, since phases like
// loop unrolling legitimately grow the code, so the global minimum may
// be an interior node where the compiler would simply stop. The
// exhaustive space makes this the provably optimal code size reachable
// by any phase ordering of the compiler (Section 8).
func (r *Result) OptimalCodeSize() *Node {
	var best *Node
	for _, n := range r.Nodes {
		if best == nil || n.NumInstrs < best.NumInstrs ||
			(n.NumInstrs == best.NumInstrs && len(n.Seq) < len(best.Seq)) {
			best = n
		}
	}
	return best
}
