// Package search implements the paper's core contribution: exhaustive
// enumeration of the optimization phase order space (Section 4). The
// space of attempted sequences is astronomically large (15^n), but two
// pruning techniques make the space of distinct *function instances*
// enumerable:
//
//  1. dormant phases produce no new node (Figure 2), and
//  2. identical function instances — detected after canonical
//     register/label renumbering — merge, turning the tree into a DAG
//     (Figure 4).
//
// The search proceeds level by level, exactly like Figure 1: level n
// holds the instances first reachable by an active sequence of length
// n. A configurable cap on the number of sequences evaluated at one
// level aborts oversized functions, mirroring the paper's one-million
// cutoff that marked two of 111 functions "too big".
//
// The engine is durable: with Options.CheckpointPath set, every level
// boundary and every abort path (caps, timeout, cancellation) persists
// a resumable snapshot atomically, and Resume continues an interrupted
// enumeration to the byte-identical space an uninterrupted run yields.
// A phase that panics or trips the attempt watchdog is quarantined —
// recorded as a dead-end node with the failure message — instead of
// crashing the whole enumeration.
package search

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/dataflow"
	"repro/internal/faultinject"
	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

// Edge records an active phase application from one node to another.
type Edge struct {
	Phase byte
	To    int
}

// Node is one distinct function instance in the phase order space DAG.
type Node struct {
	ID    int
	Level int
	// Seq is the lexicographically first shortest active phase
	// sequence producing this instance from the unoptimized function.
	Seq string
	// FP is the paper's three-value fingerprint (count/bytesum/CRC).
	// It is all the per-node memory identical-instance detection
	// retains; the exact canonical key (gating flags + encoding) lives
	// in the Result's keyStore and is compared only on a fingerprint
	// match (see Result.NodeKey). Quarantined nodes carry a synthetic
	// "Q"+Seq key there (no instance exists to encode).
	FP fingerprint.FP
	// State holds the gating facts for phase legality at this node.
	State opt.State
	// NumInstrs is the static code size of the instance.
	NumInstrs int
	// CFKey identifies the control-flow shape (Table 3 column CF).
	CFKey fingerprint.Key
	// Edges lists the active phases leaving this node, in phase order.
	Edges []Edge
	// CheckErr, when Options.Check is set, records the semantic
	// verifier's complaint about this instance ("" = verified clean).
	// Seq then reproduces the violation: the last phase of Seq is the
	// offending one, the prefix is the setup.
	CheckErr string
	// Quarantine, when non-empty, records why the phase application
	// that would have produced this instance was quarantined (panic
	// message or watchdog timeout). Mirroring CheckErr, the last phase
	// of Seq is the offender. A quarantined node has no instance, no
	// outgoing edges, and its subtree is skipped; the rest of the space
	// enumerates normally.
	Quarantine string
	// Weight is the number of distinct active sequences at or below
	// this node (leaves weigh 1), per Figure 7. Filled by Analyze.
	Weight float64
	// EquivRaw, under Options.Equiv, counts the raw-distinct instances
	// this node's equivalence class absorbed (1 = the node alone; >1 =
	// the class merged instances the identical tier kept apart). Zero
	// when the search ran without Equiv and on quarantined nodes.
	EquivRaw int

	fn *rtl.Func // retained only while unexplored
}

// IsLeaf reports whether no phase is active at this node. Quarantined
// nodes are dead ends, not leaves: every phase may well be active
// there, the engine just cannot know.
func (n *Node) IsLeaf() bool { return len(n.Edges) == 0 && n.Quarantine == "" }

// Options configure a search.
type Options struct {
	// Phases are the candidate phases (default: opt.All()).
	Phases []opt.Phase
	// Machine is the target description (default: machine.StrongARM()).
	Machine *machine.Desc
	// MaxSeqPerLevel aborts the search when the number of sequences to
	// evaluate at one level exceeds it (paper: 1,000,000).
	MaxSeqPerLevel int
	// MaxNodes aborts the search when the DAG exceeds this many
	// distinct instances (0 = unlimited).
	MaxNodes int
	// StopAtFrontier, when > 0, pauses the enumeration at the first
	// level boundary whose frontier holds at least this many unexpanded
	// nodes: the Result comes back un-aborted with Checkpoint set to the
	// live frontier, exactly as if it had been loaded from a checkpoint
	// file. Callers partition that frontier (PartitionCheckpoint) or
	// hand the Result straight back to Resume. A space that completes
	// before the frontier ever grows that wide returns complete, with no
	// Checkpoint. Ignored under Equiv (equivalence-collapsed runs are
	// not resumable).
	StopAtFrontier int
	// Timeout aborts the search after this much wall time
	// (0 = unlimited). On Resume the budget restarts.
	Timeout time.Duration
	// Verifier, when non-nil, is invoked on every new instance; it
	// should return an error when the instance misbehaves. Used for
	// differential testing of the whole space. Unlike a panicking
	// phase, a Verifier failure is never quarantined: it means the
	// space itself is wrong, so the enumeration fails loudly.
	Verifier func(f *rtl.Func) error
	// Check runs the internal/check semantic verifier on every
	// distinct instance (root included). Unlike Verifier, a finding
	// does not abort the search: it is recorded in Node.CheckErr so a
	// whole space's violations can be harvested in one enumeration
	// (see Result.CheckFailures).
	Check bool
	// Equiv adds the third tier of the instance index: instances that
	// survive the identical-instance tier are canonicalized by the
	// flow-sensitive equivalence encoder (internal/dataflow) —
	// dominator-ordered block layout, forwarder/fall-through
	// unification, commutative operand sorting by value number — and
	// instances with equal equivalence keys merge into one node even
	// when their canonical encodings differ. The collapse is summarized
	// in Result.Equiv and per node in Node.EquivRaw. Equivalence-
	// collapsed enumerations are not checkpointable: Run ignores
	// CheckpointPath and Resume rejects the option (the alias tables
	// are not persisted). With Equiv unset the enumeration and its
	// serialized space are bit-for-bit what they were before this
	// option existed.
	Equiv bool
	// KeepFuncs retains every node's function instance in memory
	// (needed by callers that walk instances afterwards; the analysis
	// and statistics do not need it).
	KeepFuncs bool
	// Workers sets the evaluation parallelism (default: NumCPU). The
	// enumeration result is deterministic regardless of the setting.
	Workers int
	// NaiveReplay disables the paper's Section 4.3 search
	// enhancements: every sequence evaluation restarts from the
	// unoptimized function and replays the whole phase prefix, the
	// way Figure 6(a) evaluates sequences. The enumerated space is
	// identical; only the evaluation cost changes (Figure 6 reports
	// the enhancements win a factor of 5-10).
	NaiveReplay bool
	// Ctx, when non-nil, cancels the search cooperatively: workers
	// stop picking up attempts and the level loop aborts the result
	// with a "canceled" reason. Because Run returns normally, deferred
	// metric/trace writers still flush on interruption.
	Ctx context.Context
	// Logger, when non-nil, receives structured progress events on the
	// serial control path: one record per completed level, checkpoint
	// writes and failures, quarantined attempts and aborts. A server
	// passes a logger pre-stamped with the flight ID, so a long
	// enumeration's progress is attributable to the request that started
	// it. Nil logs nothing; the worker hot paths never log.
	Logger *slog.Logger
	// Metrics, when non-nil, receives the search counters, gauges and
	// duration histograms (search.nodes, search.dormant,
	// search.statekey.duration_ns, ...). Nil keeps the hot paths free
	// of timing calls.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records search.expand → opt.attempt:<p> →
	// check.verify spans, one trace lane per worker, plus a
	// search.level span per frontier level on lane 0.
	Tracer *telemetry.Tracer
	// ProgressInterval > 0 ticks one-line status updates (nodes,
	// frontier, prune rates, level ETA) to ProgressWriter while the
	// search runs.
	ProgressInterval time.Duration
	// ProgressWriter is the progress destination (default os.Stderr).
	ProgressWriter io.Writer

	// CheckpointPath, when non-empty, persists a resumable snapshot of
	// the enumeration to this file (space format v2), written
	// atomically (temp file + rename): periodically at level
	// boundaries, on every abort path (caps, timeout, cancellation),
	// and — as the final complete space — on successful completion.
	// Load + Resume continue from it. A failed write never clobbers
	// the previous checkpoint; the error lands in Result.CheckpointErr
	// and the search keeps running.
	CheckpointPath string
	// CheckpointEveryLevels gates periodic checkpoints to one per N
	// completed levels (0 or 1 = every level). Abort checkpoints
	// ignore the gates.
	CheckpointEveryLevels int
	// CheckpointInterval additionally requires this much wall time
	// since the last periodic checkpoint (0 = no time gate).
	CheckpointInterval time.Duration
	// AttemptWatchdog bounds the wall time of a single phase
	// application; an attempt exceeding it is quarantined like a
	// panicking phase (the stuck goroutine is abandoned). 0 disables
	// the watchdog.
	AttemptWatchdog time.Duration
	// Faults injects deterministic failures (phase panics, corrupted
	// instances, hangs, checkpoint write errors) for robustness
	// testing; nil injects nothing. See internal/faultinject.
	Faults *faultinject.Plan
}

func (o *Options) fill() {
	if o.Phases == nil {
		o.Phases = opt.All()
	}
	if o.Machine == nil {
		o.Machine = machine.StrongARM()
	}
	if o.MaxSeqPerLevel == 0 {
		o.MaxSeqPerLevel = 1_000_000
	}
}

// Result is the enumerated phase order space of one function.
type Result struct {
	FuncName string
	Nodes    []*Node
	// AttemptedPhases counts every phase application evaluated during
	// the search, active or dormant (Table 3, "Attempt Phases").
	AttemptedPhases int
	// Aborted reports that a cap stopped the search ("N/A" rows).
	Aborted     bool
	AbortReason string
	// Elapsed is the wall-clock search time, cumulative across
	// checkpoint/resume cycles.
	Elapsed time.Duration
	// Stats summarizes where the search spent its effort (prune
	// counts, merge counts, per-operation timing); it is persisted by
	// the space serializer alongside the node table.
	Stats RunStats
	// Equiv summarizes the equivalence-class collapse when the search
	// ran with Options.Equiv; nil otherwise.
	Equiv *EquivStats
	// Checkpoint, on a Result loaded from a checkpoint file, holds the
	// resumable frontier; nil for completely enumerated spaces. Resume
	// consumes it.
	Checkpoint *Checkpoint
	// CheckpointErr records the most recent checkpoint write failure
	// ("" = none). The previous checkpoint file survives a failed
	// write, so an interrupted run resumes from the last good one.
	CheckpointErr string

	root *rtl.Func
	opts Options
	// keys owns the exact canonical key of every node: live strings
	// for un-retired levels, flate-compressed blobs afterwards.
	keys *keyStore
}

// NodeKey returns the exact canonical key of n — the gating-state
// flags byte followed by the canonical instance encoding ("Q"+Seq for
// quarantined nodes). Nodes are merged exactly when these keys match.
func (r *Result) NodeKey(n *Node) string { return r.keys.get(n.ID) }

// EquivStats summarizes the equivalence-class collapse of a space
// enumerated with Options.Equiv.
type EquivStats struct {
	// Raw counts the raw-distinct instances discovered — the node
	// count an identical-instance-only enumeration of the same space
	// would have produced (quarantined dead ends excluded).
	Raw int `json:"raw"`
	// Merged counts the raw-distinct instances folded into an
	// already-known equivalence class; Raw - Merged non-quarantined
	// nodes remain in the collapsed space.
	Merged int `json:"merged"`
	// RedundantByPhase attributes each fold to the phase whose
	// application produced the redundant instance, keyed by phase ID.
	// It answers "which phases only shuffle the representation": a
	// phase with a high count keeps regenerating instances the
	// equivalence tier proves nothing new.
	RedundantByPhase map[string]int `json:"redundant_by_phase,omitempty"`
}

// CollapseRatio is Merged / Raw: the fraction of raw-distinct
// instances the equivalence tier eliminated (0 when nothing merged).
func (s *EquivStats) CollapseRatio() float64 {
	if s == nil || s.Raw == 0 {
		return 0
	}
	return float64(s.Merged) / float64(s.Raw)
}

// Checkpoint is the resumable state of a partially enumerated space.
type Checkpoint struct {
	// Frontier holds the unexpanded nodes (pointers into Result.Nodes)
	// in discovery order, each with its retained function instance.
	Frontier []*Node
	// SavedAt is when the checkpoint was written.
	SavedAt time.Time
}

// Root returns the node of the unoptimized instance.
func (r *Result) Root() *Node { return r.Nodes[0] }

// abort marks the result aborted. It is the single place the
// Aborted/AbortReason pair is set, so instrumentation and
// checkpoint-on-abort hook in exactly once (engine.abort wraps it).
func (r *Result) abort(reason string) {
	r.Aborted = true
	r.AbortReason = reason
}

// Shared abort reasons.
const abortTimeout = "timeout"

func abortCanceledReason(ctx context.Context) string {
	return fmt.Sprintf("canceled: %v", context.Cause(ctx))
}

func abortNodeCapReason(max int) string {
	return fmt.Sprintf("more than %d distinct instances", max)
}

func abortLevelCapReason(level, pending, cap int) string {
	return fmt.Sprintf("level %d requires %d sequence evaluations (cap %d)", level, pending, cap)
}

// snapshot captures the engine state at a level boundary — the unit of
// durability. A checkpoint written mid-level rolls back to the boundary
// view: only the first numNodes nodes, frontier nodes with no outgoing
// edges yet, and the boundary's counters.
type snapshot struct {
	numNodes  int
	frontier  []*Node
	attempted int
	stats     RunStats
	elapsed   time.Duration
}

// engine drives one enumeration: Run seeds it with a fresh root,
// Resume with a loaded checkpoint, and both share the level loop.
type engine struct {
	res      *Result
	opts     *Options
	ins      *instruments
	index    *dedupIndex
	frontier []*Node
	start    time.Time
	// equivClasses is the third index tier (Options.Equiv): the
	// gating-flags byte + equivalence-canonical encoding of every
	// class representative, mapping to its node ID. Nil when the
	// option is off. Unlike node keys, class keys are never retired:
	// any future instance may land in any class.
	equivClasses map[string]int32
	// prior is the elapsed time accumulated before a resume.
	prior time.Duration
	done  <-chan struct{}

	// snap is the last consistent level boundary; abort checkpoints
	// persist it.
	snap snapshot
	// levelsSinceCkpt / lastCkpt gate the periodic checkpoints.
	levelsSinceCkpt int
	lastCkpt        time.Time
}

// Run exhaustively enumerates the phase order space of f. The function
// is not modified.
func Run(f *rtl.Func, opts Options) *Result {
	opts.fill()
	start := time.Now()

	root := f.Clone()
	rtl.Cleanup(root)

	res := &Result{FuncName: f.Name, root: root.Clone(), opts: opts, keys: newKeyStore()}
	if opts.Equiv {
		// Equivalence-collapsed runs are not resumable (the class and
		// alias tables are not persisted), so checkpointing is off.
		res.opts.CheckpointPath = ""
		res.Equiv = &EquivStats{RedundantByPhase: make(map[string]int)}
	}
	e := &engine{
		res:   res,
		opts:  &res.opts,
		ins:   newInstruments(&res.opts, f.Name, start),
		index: newDedupIndex(res.keys),
		start: start,
	}
	if opts.Equiv {
		e.equivClasses = make(map[string]int32)
	}
	rootBuf := fingerprint.GetBuffer()
	rootFP := fingerprint.SummarizeInto(rootBuf, root)
	var rootEquiv []byte
	if opts.Equiv {
		rootEquiv = dataflow.EquivEncode(nil, root)
	}
	rootNode, _ := e.add(root, opt.State{}, rootFP, rootBuf, rootEquiv, 0, 0, "")
	fingerprint.PutBuffer(rootBuf)
	e.ins.nodes.Add(1)
	e.ins.mNodes.Inc()
	if opts.Check {
		if err := check.Err(root, opts.Machine); err != nil {
			rootNode.CheckErr = err.Error()
		}
	}
	e.frontier = []*Node{rootNode}
	return e.run()
}

// Resume continues an interrupted enumeration from a checkpoint loaded
// with Load/LoadFile, consuming res.Checkpoint and returning the same
// Result completed (or re-aborted, if a cap still binds). Resuming is
// deterministic: the finished space is byte-identical (under canonical
// serialization) to the one an uninterrupted Run produces, provided
// opts selects the same phases, check setting and fault plan as the
// interrupted run. The machine description always comes from the
// checkpoint. A Result without a Checkpoint is already complete and is
// returned unchanged.
func Resume(res *Result, opts Options) (*Result, error) {
	cp := res.Checkpoint
	if cp == nil {
		return res, nil
	}
	if opts.Equiv {
		return nil, fmt.Errorf("search: resume does not support equivalence collapse (the class tables are not persisted); re-run the enumeration with Equiv instead")
	}
	mach := res.opts.Machine
	opts.fill()
	if mach != nil {
		opts.Machine = mach
	}
	for i, n := range cp.Frontier {
		if n.fn == nil {
			return nil, fmt.Errorf("search: resume: frontier node %d (id %d) has no retained instance", i, n.ID)
		}
	}
	res.opts = opts
	res.Checkpoint = nil
	res.Aborted, res.AbortReason = false, ""
	start := time.Now()
	e := &engine{
		res:   res,
		opts:  &res.opts,
		ins:   newInstruments(&res.opts, res.FuncName, start),
		index: newDedupIndex(res.keys),
		start: start,
		prior: res.Elapsed,
	}
	// Rebuild the two-tier index from the loaded node table. The full
	// keys already sit in the keyStore (Load retired them into blobs);
	// quarantined nodes are skipped — their synthetic keys can never
	// match a real instance, so they never belonged in the index.
	for _, n := range res.Nodes {
		if n.Quarantine != "" {
			continue
		}
		e.index.insert(stateBits(n.State), n.FP, n.ID)
	}
	e.ins.seed(res.Stats, len(res.Nodes))
	e.frontier = cp.Frontier
	return e.run(), nil
}

// mergeKind classifies how add disposed of an instance.
type mergeKind int

const (
	// mergeDup: the canonical key matched an existing node (or an
	// alias of one) — the classic identical-instance merge.
	mergeDup mergeKind = iota
	// mergeEquiv: the instance is raw-distinct but its equivalence key
	// matched an existing class; it merged into the class node and its
	// canonical key became an alias (Options.Equiv only).
	mergeEquiv
	// mergeNew: a new node was created.
	mergeNew
)

// add interns one instance, returning its node and how it was merged.
// The caller supplies the instance summary (fingerprint plus canonical
// encoding and CF key in buf, and — under Options.Equiv — the
// equivalence encoding) computed by the workers, so this — the serial
// merge path — does only index probes and, for new nodes, the key
// copy. phase is the producing phase's ID (0 for the root), used to
// attribute equivalence-tier folds.
func (e *engine) add(fn *rtl.Func, st opt.State, fp fingerprint.FP, buf *fingerprint.Buffer, equiv []byte, phase byte, level int, seq string) (*Node, mergeKind) {
	flags := stateBits(st)
	if id, ok := e.index.lookup(flags, fp, buf.Enc); ok {
		return e.res.Nodes[id], mergeDup
	}
	if e.res.Equiv != nil {
		e.res.Equiv.Raw++
		ckey := string(flags) + string(equiv)
		if id, ok := e.equivClasses[ckey]; ok {
			// Raw-distinct instance, known class: record its canonical
			// key as an alias so future identical duplicates of this
			// spelling resolve to the class node too.
			rawKey := make([]byte, 0, 1+len(buf.Enc))
			rawKey = append(append(rawKey, flags), buf.Enc...)
			e.index.insertAlias(flags, fp, string(rawKey), int(id))
			n := e.res.Nodes[id]
			n.EquivRaw++
			e.res.Equiv.Merged++
			if phase != 0 {
				e.res.Equiv.RedundantByPhase[string(phase)]++
			}
			return n, mergeEquiv
		}
	}
	n := &Node{
		ID:        len(e.res.Nodes),
		Level:     level,
		Seq:       seq,
		FP:        fp,
		State:     st,
		NumInstrs: fn.NumInstrs(),
		CFKey:     fingerprint.Key(buf.CF),
		fn:        fn,
	}
	key := make([]byte, 0, 1+len(buf.Enc))
	key = append(append(key, flags), buf.Enc...)
	e.res.keys.put(n.ID, string(key))
	e.index.insert(flags, fp, n.ID)
	e.res.Nodes = append(e.res.Nodes, n)
	if e.res.Equiv != nil {
		n.EquivRaw = 1
		e.equivClasses[string(flags)+string(equiv)] = int32(n.ID)
	}
	return n, mergeNew
}

// addQuarantined interns the dead-end node of a quarantined attempt.
// The synthetic key ("Q" + sequence) cannot collide with a real
// canonical key, whose first byte is a gating-state bitmask < 8; the
// node enters only the keyStore, never the dedup index — no instance
// exists that could merge into it.
func (e *engine) addQuarantined(parent *Node, phase byte, msg string) *Node {
	seq := parent.Seq + string(phase)
	n := &Node{
		ID:         len(e.res.Nodes),
		Level:      parent.Level + 1,
		Seq:        seq,
		Quarantine: msg,
	}
	e.res.keys.put(n.ID, "Q"+seq)
	e.res.Nodes = append(e.res.Nodes, n)
	return n
}

// boundary captures the current level boundary as the snapshot abort
// checkpoints fall back to.
func (e *engine) boundary() snapshot {
	return snapshot{
		numNodes:  len(e.res.Nodes),
		frontier:  e.frontier,
		attempted: e.res.AttemptedPhases,
		stats:     e.ins.runStats(),
		elapsed:   e.elapsed(),
	}
}

func (e *engine) elapsed() time.Duration {
	return e.prior + time.Since(e.start)
}

// logCtx is the context handed to structured log records so a
// context-stamping handler can attach the request and flight IDs the
// server planted on Options.Ctx.
func (e *engine) logCtx() context.Context {
	if e.opts.Ctx != nil {
		return e.opts.Ctx
	}
	return context.Background()
}

// abort marks the result aborted, traces it, and persists the last
// consistent boundary so the interrupted enumeration can resume.
func (e *engine) abort(reason string) {
	e.res.abort(reason)
	e.ins.tracer.Instant("search.abort", "search", 0, map[string]any{"reason": reason})
	if e.ins.log != nil {
		e.ins.log.WarnContext(e.logCtx(), "search aborted",
			"fn", e.ins.fnName, "reason", reason,
			"level", e.ins.level.Load(), "nodes", len(e.res.Nodes),
			"elapsed", e.elapsed().Round(time.Millisecond).String())
	}
	e.writeCheckpoint(&e.snap)
}

// writeCheckpoint persists snap atomically when checkpointing is
// configured. Failures are recorded, counted and survived: the
// previous checkpoint file is left intact and the search continues.
func (e *engine) writeCheckpoint(snap *snapshot) {
	if e.opts.CheckpointPath == "" {
		return
	}
	span := e.ins.tracer.Begin("search.checkpoint", "search", 0)
	err := writeCheckpointFile(e.opts.CheckpointPath, e.res, snap, e.opts.Faults)
	span.End(map[string]any{"nodes": snap.numNodes, "frontier": len(snap.frontier), "ok": err == nil})
	if err != nil {
		e.res.CheckpointErr = err.Error()
		e.ins.mCkptFailures.Inc()
		if e.ins.log != nil {
			e.ins.log.WarnContext(e.logCtx(), "checkpoint write failed",
				"fn", e.ins.fnName, "path", e.opts.CheckpointPath, "err", err.Error())
		}
		return
	}
	e.ins.mCkptWrites.Inc()
	if e.ins.log != nil {
		e.ins.log.DebugContext(e.logCtx(), "checkpoint written",
			"fn", e.ins.fnName, "path", e.opts.CheckpointPath,
			"nodes", snap.numNodes, "frontier", len(snap.frontier))
	}
	e.levelsSinceCkpt = 0
	e.lastCkpt = time.Now()
}

// maybeCheckpoint writes a periodic boundary checkpoint when the
// level/time gates allow.
func (e *engine) maybeCheckpoint() {
	if e.opts.CheckpointPath == "" {
		return
	}
	e.levelsSinceCkpt++
	every := e.opts.CheckpointEveryLevels
	if every <= 0 {
		every = 1
	}
	due := e.levelsSinceCkpt >= every
	if !due && e.opts.CheckpointInterval > 0 && time.Since(e.lastCkpt) >= e.opts.CheckpointInterval {
		due = true
	}
	if due {
		e.writeCheckpoint(&e.snap)
	}
}

// run is the level loop shared by Run and Resume.
func (e *engine) run() *Result {
	opts := e.opts
	res := e.res
	ins := e.ins
	if opts.ProgressInterval > 0 {
		w := opts.ProgressWriter
		if w == nil {
			w = os.Stderr
		}
		defer telemetry.NewProgress(w, opts.ProgressInterval, ins.progressLine).Start().Stop()
	}

	// canceled polls Options.Ctx without blocking; done hands workers
	// the raw channel so each expansion can bail out early.
	if opts.Ctx != nil {
		e.done = opts.Ctx.Done()
	}
	canceled := func() bool {
		select {
		case <-e.done:
			return true
		default:
			return false
		}
	}

	e.lastCkpt = e.start
	e.snap = e.boundary()
	for len(e.frontier) > 0 {
		frontier := e.frontier
		if canceled() {
			e.abort(abortCanceledReason(opts.Ctx))
			break
		}
		if opts.Timeout > 0 && time.Since(e.start) > opts.Timeout {
			e.abort(abortTimeout)
			break
		}

		// Evaluate every (node, phase) pair of the level. Attempts are
		// independent, so they run on a worker pool; results merge in
		// deterministic (node, phase) order so the enumeration is
		// reproducible regardless of scheduling.
		var work []attempt
		for _, n := range frontier {
			for _, p := range opts.Phases {
				if !opt.Enabled(p, n.State) {
					continue
				}
				// An active phase is never active twice in a row
				// (Section 4.1), so re-attempting the phase that
				// produced this node is pointless.
				if len(n.Seq) > 0 && n.Seq[len(n.Seq)-1] == p.ID() {
					continue
				}
				work = append(work, attempt{n, p})
			}
		}
		// The number of sequences to evaluate at this level is exactly
		// len(work): counting (node, enabled phase) pairs instead would
		// include the immediate-repeat attempts skipped above and abort
		// levels that actually fit the cap.
		if len(work) > opts.MaxSeqPerLevel {
			e.abort(abortLevelCapReason(frontier[0].Level+1, len(work), opts.MaxSeqPerLevel))
			break
		}
		res.AttemptedPhases += len(work)
		level := frontier[0].Level
		levelStart := len(res.Nodes)
		ins.beginLevel(level, len(frontier), len(work))
		levelSpan := ins.tracer.Begin("search.level", "search", 0)

		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		if workers > len(work) {
			workers = len(work)
		}

		next := e.runLevel(work, workers, canceled)
		levelSpan.End(map[string]any{
			"level": level, "frontier": len(frontier), "attempts": len(work), "nodes": len(res.Nodes),
		})
		if res.Aborted {
			break
		}
		ins.nodesExpanded += len(frontier)
		if ins.log != nil {
			ins.log.InfoContext(e.logCtx(), "level complete",
				"fn", ins.fnName, "level", level,
				"frontier", len(frontier), "attempts", len(work),
				"nodes", len(res.Nodes), "next_frontier", len(next),
				"elapsed", e.elapsed().Round(time.Millisecond).String())
		}
		e.frontier = next
		if !opts.KeepFuncs {
			for _, n := range frontier {
				putClone(n.fn) // instance no longer needed once explored
				n.fn = nil
			}
		}
		// Slide the key retirement window: node IDs grow level by
		// level, so once a level falls keyRetireWindow levels behind
		// the frontier its full keys compress into a blob and only the
		// 16-byte fingerprints remain per node. Deep cross-level merges
		// (a phase reverting a much earlier change) still compare
		// correctly via the compressed blobs.
		e.res.keys.noteLevel(levelStart)
		ins.observeIndex(e.index)
		// The level is complete: advance the durable boundary before
		// any abort below, so a cap-abort checkpoint resumes from here
		// (e.g. with a raised cap) rather than re-running the level.
		e.snap = e.boundary()
		if opts.MaxNodes > 0 && len(res.Nodes) > opts.MaxNodes {
			e.abort(abortNodeCapReason(opts.MaxNodes))
			break
		}
		if opts.StopAtFrontier > 0 && res.Equiv == nil && len(e.frontier) >= opts.StopAtFrontier {
			// Pause at this boundary: expose the live frontier as an
			// in-memory checkpoint. The final write below then persists
			// the paused (resumable) state rather than a complete space.
			res.Checkpoint = &Checkpoint{Frontier: e.frontier, SavedAt: time.Now()}
			break
		}
		e.maybeCheckpoint()
	}
	res.Elapsed = e.elapsed()
	res.Stats = ins.runStats()
	if !res.Aborted && opts.CheckpointPath != "" {
		// Final write: the checkpoint file becomes the complete space.
		e.snap = e.boundary()
		e.writeCheckpoint(&e.snap)
	}
	return res
}

// attempt is one (node, phase) pair scheduled for evaluation.
type attempt struct {
	node  *Node
	phase opt.Phase
}

// checkAbort polls the two mid-level abort conditions (cancellation,
// wall-time budget) and marks the result aborted on the first hit.
// Committer-side only.
func (e *engine) checkAbort(canceled func() bool) bool {
	if e.res.Aborted {
		return true
	}
	if canceled() {
		e.abort(abortCanceledReason(e.opts.Ctx))
		return true
	}
	if e.opts.Timeout > 0 && time.Since(e.start) > e.opts.Timeout {
		e.abort(abortTimeout)
		return true
	}
	return false
}

// runLevel evaluates one level's attempts on a pipelined worker pool
// and returns the next frontier (nil, with the result marked aborted,
// on a mid-level abort). Workers claim attempts from a shared cursor,
// evaluate them, probe (or park a pending entry in) the striped index,
// and publish the outcome into a bounded ring; this goroutine is the
// single committer, consuming outcomes strictly in attempt order. The
// in-order commit is what makes the space deterministic: node IDs are
// assigned in first-committed-reference order, which is exactly the
// serial engine's discovery order, independent of worker count and
// scheduling. The ring bound doubles as the memory bound the old
// chunk barrier provided — at most ringSize evaluated-but-uncommitted
// clones exist — but with no barrier: workers keep evaluating while
// the committer merges, and a slow attempt stalls only commits beyond
// it, not the evaluation pipeline.
func (e *engine) runLevel(work []attempt, workers int, canceled func() bool) []*Node {
	opts, res, ins := e.opts, e.res, e.ins

	ring := newOutcomeRing()
	var claim, committed atomic.Int64
	// notify wakes the committer after a publish; space wakes
	// window-blocked workers after a commit. Both are best-effort
	// (non-blocking sends into small buffers): a dropped notify means
	// a wakeup is already pending, and a dropped space token means
	// enough tokens for every blocked worker are already buffered.
	notify := make(chan struct{}, 1)
	space := make(chan struct{}, workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Lane w+1 keeps each worker's spans in their own trace row;
		// lane 0 is the serial control lane.
		go func(lane int) {
			defer wg.Done()
			for {
				i := claim.Add(1) - 1
				if i >= int64(len(work)) {
					return
				}
				// Claiming ringSize ahead of the committer would reuse
				// a slot whose previous outcome is still uncommitted;
				// wait for the window to advance.
				for i-committed.Load() >= ringSize {
					select {
					case <-space:
					case <-stop:
						return
					case <-e.done:
						return
					}
				}
				// Checked per expansion so cancellation stops the run
				// within one attempt's latency.
				select {
				case <-stop:
					return
				case <-e.done:
					return
				default:
				}
				a := work[i]
				var began time.Time
				if ins.timed {
					began = time.Now()
				}
				expandSpan := ins.tracer.Begin("search.expand", "search", lane)
				o := evalAttempt(res.root, a, opts, ins, lane)
				if o.active {
					// Resolve against the striped index here, on the
					// worker: a concurrent probe either finds the
					// committed node, finds the pending entry an
					// earlier probe parked, or parks a new one. The
					// committer only turns the result into the merge
					// decision.
					o.dup, o.pend = e.index.resolve(stateBits(o.st), o.fp, o.buf.Enc)
				}
				if expandSpan.Active() {
					expandSpan.End(map[string]any{
						"seq":    a.node.Seq,
						"phase":  string(a.phase.ID()),
						"active": o.active,
					})
				}
				if ins.timed {
					ins.observeExpand(began)
				} else {
					ins.levelDone.Add(1)
				}
				ring.put(i, o)
				select {
				case notify <- struct{}{}:
				default:
				}
			}
		}(w + 1)
	}

	// tickC re-checks the wall-time budget while the committer is
	// blocked waiting for a slow attempt; nil (never fires) without a
	// timeout, where cancellation alone can interrupt the wait.
	var tickC <-chan time.Time
	if opts.Timeout > 0 {
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		tickC = t.C
	}

	var next []*Node
	total := int64(len(work))
commitLoop:
	for i := int64(0); i < total; i++ {
		for !ring.ready(i) {
			if e.checkAbort(canceled) {
				break commitLoop
			}
			select {
			case <-notify:
			case <-e.done:
			case <-tickC:
			}
		}
		o := ring.take(i)
		committed.Store(i + 1)
		select {
		case space <- struct{}{}:
		default:
		}
		next = e.commitOutcome(work[i], &o, next)
		// Bound how much commit work runs between abort polls when
		// outcomes arrive faster than the committer drains them.
		if (i+1)%4096 == 0 && e.checkAbort(canceled) {
			break commitLoop
		}
	}
	if res.Aborted {
		// Stop the pipeline and drain every published-but-uncommitted
		// outcome: their clones and fingerprint buffers go back to the
		// pools, and the ring slots are cleared, so an aborted level
		// pins nothing. Partially committed level state stays in
		// memory (as it always has) but the durable snapshot rolls
		// back to the last level boundary.
		close(stop)
		wg.Wait()
		hi := claim.Load()
		if hi > total {
			hi = total
		}
		for i := committed.Load(); i < hi; i++ {
			if !ring.ready(i) {
				continue // claimed but never published
			}
			o := ring.take(i)
			putClone(o.fn)
			if o.buf != nil {
				fingerprint.PutBuffer(o.buf)
			}
		}
		return nil
	}
	wg.Wait()
	// The level is complete: promote the pending discoveries into the
	// read-only bucket/alias tiers before the next level probes them.
	e.index.promote()
	return next
}

// commitOutcome applies one evaluated outcome on the serial commit
// path, in attempt order, appending any new node to next and
// returning it. This is the old serial merge loop body verbatim in
// its observable effects: quarantine nodes, edge append order, merge
// classification and every counter match the chunked engine.
func (e *engine) commitOutcome(a attempt, o *outcome, next []*Node) []*Node {
	ins := e.ins
	if o.quarantine != "" {
		qn := e.addQuarantined(a.node, a.phase.ID(), o.quarantine)
		a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: qn.ID})
		ins.observeQuarantine()
		if ins.log != nil {
			ins.log.WarnContext(e.logCtx(), "attempt quarantined",
				"fn", ins.fnName, "seq", a.node.Seq+string(a.phase.ID()),
				"reason", o.quarantine)
		}
		return next
	}
	if !o.active {
		ins.observeOutcome(false, false)
		return next
	}
	cn, kind := e.commitInstance(a, o)
	fingerprint.PutBuffer(o.buf)
	ins.observeOutcome(true, kind == mergeNew)
	if kind == mergeEquiv {
		ins.observeEquivMerge()
	}
	a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: cn.ID})
	if kind == mergeNew {
		cn.CheckErr = o.checkErr
		next = append(next, cn)
	} else {
		putClone(o.fn) // duplicate instance: merged into cn
	}
	return next
}

// commitInstance resolves an active outcome's probe result into the
// serial merge decision. A dup (committed-tier hit on the worker) or
// an already-committed pending entry is the classic identical-instance
// merge. The first commit referencing an unassigned pending entry is
// the instance's discovery — because commits happen in attempt order,
// it is the same attempt the serial engine would have discovered it
// on — and either folds it into an equivalence class (Options.Equiv)
// or creates the node and assigns the next ID.
func (e *engine) commitInstance(a attempt, o *outcome) (*Node, mergeKind) {
	if o.pend == nil {
		return e.res.Nodes[o.dup], mergeDup
	}
	p := o.pend
	if p.id >= 0 {
		// An earlier attempt of this level committed the same key
		// (or, under Equiv, aliased it into a class): later identical
		// spellings merge like any duplicate.
		return e.res.Nodes[p.id], mergeDup
	}
	flags := p.key[0]
	if e.res.Equiv != nil {
		e.res.Equiv.Raw++
		ckey := string(flags) + string(o.equiv)
		if id, ok := e.equivClasses[ckey]; ok {
			// Raw-distinct instance, known class: the pending entry
			// becomes an alias at promote, so future identical
			// duplicates of this spelling resolve to the class node.
			p.id, p.alias = id, true
			n := e.res.Nodes[id]
			n.EquivRaw++
			e.res.Equiv.Merged++
			if a.phase.ID() != 0 {
				e.res.Equiv.RedundantByPhase[string(a.phase.ID())]++
			}
			return n, mergeEquiv
		}
	}
	n := &Node{
		ID:        len(e.res.Nodes),
		Level:     a.node.Level + 1,
		Seq:       a.node.Seq + string(a.phase.ID()),
		FP:        o.fp,
		State:     o.st,
		NumInstrs: o.fn.NumInstrs(),
		CFKey:     fingerprint.Key(o.buf.CF),
		fn:        o.fn,
	}
	// The pending entry's key was copied on the worker; it becomes the
	// node key directly — no copy on the commit path.
	e.res.keys.put(n.ID, p.key)
	p.id = int32(n.ID)
	e.res.Nodes = append(e.res.Nodes, n)
	if e.res.Equiv != nil {
		n.EquivRaw = 1
		e.equivClasses[string(flags)+string(o.equiv)] = int32(n.ID)
	}
	return n, mergeNew
}

// clonePool recycles the storage of dead function clones. The
// enumeration clones the parent for every attempt but keeps only the
// clones that become new nodes; dormant attempts, duplicate instances
// and explored frontier functions return here, making the per-attempt
// clone almost allocation-free.
var clonePool sync.Pool

// getClone clones parent, reusing pooled storage when available.
func getClone(parent *rtl.Func) *rtl.Func {
	scratch, _ := clonePool.Get().(*rtl.Func)
	return parent.CloneReusing(scratch)
}

// putClone returns a dead clone's storage to the pool.
func putClone(fn *rtl.Func) {
	if fn != nil {
		clonePool.Put(fn)
	}
}

// outcome is the result of evaluating one attempt on a worker. Active
// outcomes carry the instance summary — fingerprint plus the pooled
// buffer holding the canonical encoding and CF key — and the striped
// index's probe result, both computed on the worker, so the serial
// committer only turns them into the merge decision. The committer
// returns buf to the fingerprint pool and clears the ring slot the
// outcome traveled in.
type outcome struct {
	active     bool
	fn         *rtl.Func
	st         opt.State
	fp         fingerprint.FP
	buf        *fingerprint.Buffer
	equiv      []byte // equivalence encoding, Options.Equiv only
	checkErr   string
	quarantine string

	// Probe result, set by the worker for active outcomes: either the
	// committed node this instance duplicates (pend nil, dup ≥ 0) or
	// the pending entry it resolved to or parked (pend non-nil, dup
	// meaningless).
	dup  int32
	pend *pendingNode
}

// evalAttempt evaluates one (node, phase) pair: materialize the parent
// instance (clone, or full replay under NaiveReplay), apply the phase,
// and optionally verify the child. Trace spans mark the phase
// application and the semantic verification on the worker's lane.
func evalAttempt(root *rtl.Func, a attempt, opts *Options, ins *instruments, lane int) outcome {
	o := applyPhase(root, a, opts, ins, lane)
	if o.quarantine != "" || !o.active {
		return o
	}
	if opts.Verifier != nil {
		if err := opts.Verifier(o.fn); err != nil {
			panic(fmt.Sprintf("search: instance %q+%c misbehaves: %v",
				a.node.Seq, a.phase.ID(), err))
		}
	}
	if opts.Check {
		verifySpan := ins.tracer.Begin("check.verify", "check", lane)
		err := check.Err(o.fn, opts.Machine)
		if verifySpan.Active() {
			verifySpan.End(map[string]any{"clean": err == nil})
		}
		if err != nil {
			o.checkErr = err.Error()
		}
	}
	// Summarize the child here, on the worker: one fused scan yields
	// the canonical encoding, CF key and fingerprint the merge loop
	// needs, keeping the serial path free of encoding work.
	var keyBegan time.Time
	if ins.timed {
		keyBegan = time.Now()
	}
	o.buf = fingerprint.GetBuffer()
	o.fp = fingerprint.SummarizeInto(o.buf, o.fn)
	if opts.Equiv {
		// The equivalence encoding is the expensive part of the third
		// tier (CFG + dominators + value numbering); computing it here
		// keeps it off the serial merge path, and the rare instance the
		// identical tier absorbs anyway just wastes one encoding.
		o.equiv = dataflow.EquivEncode(nil, o.fn)
	}
	if ins.timed {
		ins.observeStateKey(keyBegan)
	}
	return o
}

// applyPhase guards the phase application: with a watchdog configured
// it runs on a sacrificial goroutine that is abandoned on timeout;
// either way a panicking phase is converted into a quarantine outcome
// instead of crashing the enumeration.
func applyPhase(root *rtl.Func, a attempt, opts *Options, ins *instruments, lane int) outcome {
	if wd := opts.AttemptWatchdog; wd > 0 {
		ch := make(chan outcome, 1)
		go func() { ch <- applyPhaseRecover(root, a, opts, ins, lane) }()
		timer := time.NewTimer(wd)
		defer timer.Stop()
		select {
		case o := <-ch:
			return o
		case <-timer.C:
			return outcome{quarantine: fmt.Sprintf(
				"watchdog: phase %c at %q still running after %v", a.phase.ID(), a.node.Seq, wd)}
		}
	}
	return applyPhaseRecover(root, a, opts, ins, lane)
}

// applyPhaseRecover materializes the parent, applies the phase (with
// any injected faults), and converts a panic — a buggy or injected
// phase, or a broken replay — into a quarantine outcome.
func applyPhaseRecover(root *rtl.Func, a attempt, opts *Options, ins *instruments, lane int) (o outcome) {
	defer func() {
		if r := recover(); r != nil {
			o = outcome{quarantine: fmt.Sprintf("panic: %v", r)}
		}
	}()
	fault := opts.Faults.PhaseFault(a.phase.ID(), a.node.Seq)
	if fault != nil {
		switch fault.Kind {
		case faultinject.KindPanic:
			panic(fmt.Sprintf("faultinject: phase %c at %q", a.phase.ID(), a.node.Seq))
		case faultinject.KindHang:
			time.Sleep(fault.HangFor)
		}
	}
	var child *rtl.Func
	st := opt.State{}
	if opts.NaiveReplay {
		// Figure 6(a): reload the unoptimized function and re-apply
		// the entire active prefix.
		replaySpan := ins.tracer.Begin("search.replay", "search", lane)
		child = replaySeq(root, a.node.Seq, opts.Machine, &st)
		if replaySpan.Active() {
			replaySpan.End(map[string]any{"seq": a.node.Seq})
		}
	} else {
		child = getClone(a.node.fn)
		st = a.node.State
	}
	var attemptSpan telemetry.Span
	if ins.tracer != nil {
		attemptSpan = ins.tracer.Begin("opt.attempt:"+string(a.phase.ID()), "opt", lane)
	}
	active := opt.Attempt(child, &st, a.phase, opts.Machine)
	if attemptSpan.Active() {
		attemptSpan.End(map[string]any{"active": active})
	}
	if !active {
		putClone(child)
		return outcome{} // dormant: branch pruned
	}
	if fault != nil && fault.Kind == faultinject.KindCorrupt {
		faultinject.Corrupt(child)
	}
	return outcome{active: true, fn: child, st: st}
}

// stateKey combines the canonical instance encoding with the gating
// state, so instances that look identical but have different phase
// legality (e.g. one has had instruction selection applied) stay
// distinct.
func stateKey(fn *rtl.Func, st opt.State) string {
	var flags byte
	if st.RegAssigned {
		flags |= 1
	}
	if st.KApplied {
		flags |= 2
	}
	if st.SApplied {
		flags |= 4
	}
	return string(flags) + string(fingerprint.Encode(fn))
}

// replaySeq reconstructs an instance by cloning the unoptimized
// function and applying an active phase sequence.
func replaySeq(root *rtl.Func, seq string, d *machine.Desc, st *opt.State) *rtl.Func {
	f := root.Clone()
	for i := 0; i < len(seq); i++ {
		p := opt.ByID(seq[i])
		if !opt.Attempt(f, st, p, d) {
			panic(fmt.Sprintf("search: replay of %q: phase %c dormant", seq, seq[i]))
		}
	}
	return f
}

// Instance reconstructs the function instance of a node by replaying
// its sequence from the unoptimized root. When the search ran with
// KeepFuncs the retained instance is returned directly. Quarantined
// nodes have no instance.
func (r *Result) Instance(n *Node) *rtl.Func {
	if n.Quarantine != "" {
		panic(fmt.Sprintf("search: node %d (seq %q) is quarantined: %s", n.ID, n.Seq, n.Quarantine))
	}
	if n.fn != nil {
		return n.fn.Clone()
	}
	f := r.root.Clone()
	st := opt.State{}
	for i := 0; i < len(n.Seq); i++ {
		p := opt.ByID(n.Seq[i])
		if p == nil {
			panic(fmt.Sprintf("search: unknown phase %q in sequence", n.Seq[i]))
		}
		if !opt.Attempt(f, &st, p, r.opts.Machine) {
			panic(fmt.Sprintf("search: replay of %q: phase %c dormant", n.Seq, n.Seq[i]))
		}
	}
	return f
}

// CheckFailures returns the nodes whose instances the semantic
// verifier rejected, in discovery order. Empty when the search ran
// without Options.Check or when every instance verified clean.
func (r *Result) CheckFailures() []*Node {
	var out []*Node
	for _, n := range r.Nodes {
		if n.CheckErr != "" {
			out = append(out, n)
		}
	}
	return out
}

// QuarantinedNodes returns the nodes whose producing phase application
// panicked or tripped the watchdog, in discovery order.
func (r *Result) QuarantinedNodes() []*Node {
	var out []*Node
	for _, n := range r.Nodes {
		if n.Quarantine != "" {
			out = append(out, n)
		}
	}
	return out
}

// Leaves returns the leaf nodes — instances at which every phase is
// dormant, where the optimization space DAG converges. Quarantined
// nodes are excluded: they are dead ends with no instance, not
// converged instances.
func (r *Result) Leaves() []*Node {
	var out []*Node
	for _, n := range r.Nodes {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// BestCodeSize returns the leaf with the fewest instructions,
// resolving ties toward the shortest sequence. Leaves are where Table
// 3's code size extremes are measured.
func (r *Result) BestCodeSize() *Node {
	var best *Node
	for _, n := range r.Leaves() {
		if best == nil || n.NumInstrs < best.NumInstrs ||
			(n.NumInstrs == best.NumInstrs && len(n.Seq) < len(best.Seq)) {
			best = n
		}
	}
	return best
}

// OptimalCodeSize returns the instance with the fewest instructions
// anywhere in the space — not only at the leaves, since phases like
// loop unrolling legitimately grow the code, so the global minimum may
// be an interior node where the compiler would simply stop. The
// exhaustive space makes this the provably optimal code size reachable
// by any phase ordering of the compiler (Section 8).
func (r *Result) OptimalCodeSize() *Node {
	var best *Node
	for _, n := range r.Nodes {
		if n.Quarantine != "" {
			continue
		}
		if best == nil || n.NumInstrs < best.NumInstrs ||
			(n.NumInstrs == best.NumInstrs && len(n.Seq) < len(best.Seq)) {
			best = n
		}
	}
	return best
}
