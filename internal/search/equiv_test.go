package search_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mibench"
	"repro/internal/rtl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// mibenchFunc compiles one benchmark and returns the named function.
func mibenchFunc(t *testing.T, bench, fn string) *rtl.Func {
	t.Helper()
	p, err := mibench.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func(fn)
	if f == nil {
		t.Fatalf("%s: no function %q", bench, fn)
	}
	return f
}

// TestDefaultSpaceParity pins the enumerated spaces of a spread of
// MiBench functions, by canonical hash, to the values the engine
// produced before the equivalence tier existed. A change to any of
// these hashes means the default (Equiv off) enumeration is no longer
// byte-identical to what it was — which the equivalence tier must
// never cause.
func TestDefaultSpaceParity(t *testing.T) {
	cases := []struct {
		bench, fn string
		nodes     int
		hash      string
	}{
		{"dijkstra", "enqueue", 7, "5713b396f094d43c313d6b028b7fd1ccb624c81016a9fbd6553b42f46115c5f2"},
		{"sha", "rotl", 37, "de70226c5c516348792bcefeccb2bc9665552583cf90abbad4b8a1b19d4c8640"},
		{"stringsearch", "tolower_c", 20, "177f61126d4f656e0f363c5aa25c41d5f68e4d868b1952c58d1c85cfa76f452a"},
		{"sha", "sha_transform", 3844, "cfa7ea149006491c342c20e0e53678f55d978f9b27e1bbda6d060d6e61b7819b"},
	}
	for _, tc := range cases {
		if testing.Short() && tc.nodes > 1000 {
			continue
		}
		f := mibenchFunc(t, tc.bench, tc.fn)
		r := search.Run(f, search.Options{MaxNodes: 6000})
		if r.Aborted {
			t.Fatalf("%s/%s: aborted: %s", tc.bench, tc.fn, r.AbortReason)
		}
		if len(r.Nodes) != tc.nodes {
			t.Errorf("%s/%s: %d nodes, want %d", tc.bench, tc.fn, len(r.Nodes), tc.nodes)
		}
		h, err := r.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if h != tc.hash {
			t.Errorf("%s/%s: canonical hash drifted\n got %s\nwant %s", tc.bench, tc.fn, h, tc.hash)
		}
		if r.Equiv != nil {
			t.Errorf("%s/%s: Equiv stats present on a default run", tc.bench, tc.fn)
		}
		for _, n := range r.Nodes {
			if n.EquivRaw != 0 {
				t.Fatalf("%s/%s: node %d has EquivRaw=%d on a default run", tc.bench, tc.fn, n.ID, n.EquivRaw)
			}
		}
	}
}

// checkEquivInvariants asserts the structural accounting of an
// equivalence-collapsed space and returns the non-quarantined node
// count.
func checkEquivInvariants(t *testing.T, name string, r *search.Result) int {
	t.Helper()
	if r.Equiv == nil {
		t.Fatalf("%s: equiv run has no Equiv stats", name)
	}
	live, sum := 0, 0
	for _, n := range r.Nodes {
		if n.Quarantine != "" {
			if n.EquivRaw != 0 {
				t.Fatalf("%s: quarantined node %d has EquivRaw=%d", name, n.ID, n.EquivRaw)
			}
			continue
		}
		if n.EquivRaw < 1 {
			t.Fatalf("%s: node %d has EquivRaw=%d, want >= 1", name, n.ID, n.EquivRaw)
		}
		live++
		sum += n.EquivRaw
	}
	if got := r.Equiv.Raw - r.Equiv.Merged; got != live {
		t.Fatalf("%s: Raw-Merged = %d, but %d non-quarantined nodes", name, got, live)
	}
	if sum != r.Equiv.Raw {
		t.Fatalf("%s: sum of EquivRaw = %d, but Raw = %d", name, sum, r.Equiv.Raw)
	}
	byPhase := 0
	for _, c := range r.Equiv.RedundantByPhase {
		byPhase += c
	}
	if byPhase != r.Equiv.Merged {
		t.Fatalf("%s: RedundantByPhase sums to %d, but Merged = %d", name, byPhase, r.Equiv.Merged)
	}
	return live
}

// TestEquivCollapseMiBench enumerates every MiBench function whose
// space fits a small cap twice — identical-only and equivalence-
// collapsed — and checks the acceptance property: the collapsed node
// count never exceeds the identical-only one, and the collapse
// accounting is internally consistent.
func TestEquivCollapseMiBench(t *testing.T) {
	fns, err := mibench.AllFunctions()
	if err != nil {
		t.Fatal(err)
	}
	const cap = 400
	compared := 0
	for _, tf := range fns {
		name := tf.Bench + "/" + tf.Func.Name
		raw := search.Run(tf.Func, search.Options{MaxNodes: cap})
		if raw.Aborted {
			continue // too big for the test cap either way
		}
		eq := search.Run(tf.Func, search.Options{MaxNodes: cap, Equiv: true})
		if eq.Aborted {
			t.Fatalf("%s: equiv run aborted (%s) though the raw run completed", name, eq.AbortReason)
		}
		if len(eq.Nodes) > len(raw.Nodes) {
			t.Errorf("%s: equiv space has %d nodes, raw space %d — collapse grew the space",
				name, len(eq.Nodes), len(raw.Nodes))
		}
		checkEquivInvariants(t, name, eq)
		compared++
		if testing.Short() && compared >= 8 {
			break
		}
	}
	if compared == 0 {
		t.Fatal("no MiBench function fit the test cap")
	}
	t.Logf("compared %d functions", compared)
}

// TestEquivCollapseRleBlock pins the headline collapse: branch
// chaining is active throughout jpeg/rle_block's space and each of its
// applications only reshuffles jump spellings, so the equivalence tier
// folds roughly half the raw-distinct instances away.
func TestEquivCollapseRleBlock(t *testing.T) {
	f := mibenchFunc(t, "jpeg", "rle_block")
	raw := search.Run(f, search.Options{MaxNodes: 6000})
	if raw.Aborted {
		t.Fatalf("raw run aborted: %s", raw.AbortReason)
	}
	eq := search.Run(f, search.Options{MaxNodes: 6000, Equiv: true})
	if eq.Aborted {
		t.Fatalf("equiv run aborted: %s", eq.AbortReason)
	}
	checkEquivInvariants(t, "rle_block", eq)
	if eq.Equiv.Merged == 0 {
		t.Fatal("rle_block space merged no equivalence classes")
	}
	if len(eq.Nodes) >= len(raw.Nodes) {
		t.Fatalf("collapse did not shrink the space: %d vs %d raw nodes", len(eq.Nodes), len(raw.Nodes))
	}
	if r := eq.Equiv.CollapseRatio(); r < 0.25 {
		t.Errorf("collapse ratio %.3f, expected at least 0.25 on rle_block", r)
	}
	if eq.Equiv.RedundantByPhase["b"] == 0 {
		t.Error("expected branch chaining to be attributed redundant instances")
	}
	t.Logf("raw %d nodes; equiv %d nodes; Raw=%d Merged=%d byPhase=%v",
		len(raw.Nodes), len(eq.Nodes), eq.Equiv.Raw, eq.Equiv.Merged, eq.Equiv.RedundantByPhase)
}

// TestEquivDeterministicParallel checks that the collapsed enumeration
// is deterministic regardless of worker parallelism: a -jobs style
// concurrent run must serialize byte-identically to the serial one.
func TestEquivDeterministicParallel(t *testing.T) {
	f := mibenchFunc(t, "jpeg", "rle_block")
	opts := search.Options{MaxNodes: 6000, Equiv: true, Metrics: telemetry.NewRegistry()}
	opts.Workers = 1
	serial := search.Run(f, opts)
	opts.Workers = 8
	opts.Metrics = telemetry.NewRegistry()
	parallel := search.Run(f, opts)
	if serial.Aborted || parallel.Aborted {
		t.Fatalf("aborted: %q / %q", serial.AbortReason, parallel.AbortReason)
	}
	a, err := serial.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("equiv enumeration differs between 1 and 8 workers (%d vs %d nodes)",
			len(serial.Nodes), len(parallel.Nodes))
	}
	checkEquivInvariants(t, "rle_block", serial)
	if serial.Equiv.Merged == 0 {
		t.Error("rle_block space merged no equivalence classes — expected some collapse")
	}
}

// TestEquivSerializeRoundTrip checks that an equivalence-collapsed
// space survives Save/Load with its version, collapse summary and
// per-node counts intact.
func TestEquivSerializeRoundTrip(t *testing.T) {
	f := mibenchFunc(t, "sha", "rotl")
	r := search.Run(f, search.Options{Equiv: true})
	if r.Aborted {
		t.Fatalf("aborted: %s", r.AbortReason)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equiv == nil || got.Equiv.Raw != r.Equiv.Raw || got.Equiv.Merged != r.Equiv.Merged {
		t.Fatalf("Equiv stats did not round-trip: %+v vs %+v", got.Equiv, r.Equiv)
	}
	for i, n := range r.Nodes {
		if got.Nodes[i].EquivRaw != n.EquivRaw {
			t.Fatalf("node %d: EquivRaw %d -> %d", i, n.EquivRaw, got.Nodes[i].EquivRaw)
		}
	}
	ra, err := r.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	ga, err := got.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, ga) {
		t.Fatal("canonical bytes changed across a save/load round trip")
	}
}

// TestEquivCheckpointInteraction checks the documented exclusions:
// an Equiv run never writes a checkpoint even when a path is
// configured, and Resume rejects the Equiv option outright.
func TestEquivCheckpointInteraction(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "space.ckpt")
	f := mibenchFunc(t, "sha", "rotl")
	r := search.Run(f, search.Options{Equiv: true, CheckpointPath: ckpt})
	if r.Aborted {
		t.Fatalf("aborted: %s", r.AbortReason)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("equiv run wrote a checkpoint file (stat err: %v)", err)
	}

	// An interrupted identical-only run must refuse to resume with the
	// equivalence tier switched on.
	r2 := search.Run(f, search.Options{MaxNodes: 5, CheckpointPath: ckpt})
	if !r2.Aborted {
		t.Fatal("expected the capped run to abort")
	}
	loaded, err := search.LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Checkpoint == nil {
		t.Fatal("loaded space has no checkpoint to resume")
	}
	if _, err := search.Resume(loaded, search.Options{Equiv: true}); err == nil {
		t.Fatal("Resume accepted the Equiv option on a checkpointed space")
	}
}
