package search

import (
	"time"

	"repro/internal/fingerprint"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// IndependencePrior supplies the probability that two phases are
// independent (produce identical code in either order), as mined by
// the analysis package from previously enumerated spaces. Implemented
// by analysis.Interactions via its Independence matrix; the indirection
// keeps the package dependency one-way.
type IndependencePrior interface {
	// Independent reports the observed independence probability of the
	// two phases, or -1 when never observed.
	Independent(x, y byte) float64
}

// PruneStats reports what independence pruning did.
type PruneStats struct {
	// Skipped counts phase evaluations replaced by diamond completion.
	Skipped int
	// Fallbacks counts prunable candidates that had to be evaluated
	// anyway because the diamond's other path was missing.
	Fallbacks int
}

// RunWithIndependencePruning enumerates the space like Run, using the
// Section 7 future-work idea: when phase x is attempted at a node m
// that was first reached by phase y from node n, and the prior says x
// and y are always independent, the result of x at m must equal the
// result of y at n's x-successor — a diamond that can be completed
// without applying either phase. Every completed diamond saves one
// full phase evaluation (clone + analysis + transformation).
//
// The enumeration is exact when the prior is exact for this function;
// with a prior mined from *other* functions it is an approximation, and
// the returned space may (rarely) diverge from Run's. Tests quantify
// the divergence; the threshold chooses how certain the prior must be
// (1.0 = only pairs never once observed dependent).
func RunWithIndependencePruning(f *rtl.Func, opts Options, prior IndependencePrior, threshold float64) (*Result, PruneStats) {
	opts.fill()
	var ps PruneStats
	start := time.Now()

	root := f.Clone()
	rtl.Cleanup(root)
	res := &Result{FuncName: f.Name, root: root.Clone(), opts: opts, keys: newKeyStore()}
	index := newDedupIndex(res.keys)

	// via[n] records the first-discovery parent and phase of node n.
	type origin struct {
		parent int
		phase  byte
	}
	via := make([]origin, 0, 1024)

	buf := fingerprint.GetBuffer()
	defer fingerprint.PutBuffer(buf)
	add := func(fn *rtl.Func, st opt.State, level int, seq string, parent int, phase byte) (*Node, bool) {
		fp := fingerprint.SummarizeInto(buf, fn)
		flags := stateBits(st)
		if id, ok := index.lookup(flags, fp, buf.Enc); ok {
			return res.Nodes[id], false
		}
		n := &Node{
			ID:        len(res.Nodes),
			Level:     level,
			Seq:       seq,
			FP:        fp,
			State:     st,
			NumInstrs: fn.NumInstrs(),
			CFKey:     fingerprint.Key(buf.CF),
			fn:        fn,
		}
		key := make([]byte, 0, 1+len(buf.Enc))
		key = append(append(key, flags), buf.Enc...)
		res.keys.put(n.ID, string(key))
		index.insert(flags, fp, n.ID)
		res.Nodes = append(res.Nodes, n)
		via = append(via, origin{parent: parent, phase: phase})
		return n, true
	}

	rootNode, _ := add(root, opt.State{}, 0, "", -1, 0)
	frontier := []*Node{rootNode}

	edgeTarget := func(n *Node, phase byte) int {
		for _, e := range n.Edges {
			if e.Phase == phase {
				return e.To
			}
		}
		return -1
	}

	evaluate := func(n *Node, p opt.Phase) (*rtl.Func, opt.State, bool) {
		child := getClone(n.fn)
		st := n.State
		if !opt.Attempt(child, &st, p, opts.Machine) {
			putClone(child)
			return nil, st, false
		}
		return child, st, true
	}

	for len(frontier) > 0 {
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			res.abort(abortTimeout)
			break
		}
		var next []*Node
		levelStart := len(res.Nodes)
		type deferredAttempt struct {
			node  *Node
			phase opt.Phase
		}
		var deferred []deferredAttempt

		process := func(n *Node, p opt.Phase) {
			res.AttemptedPhases++
			child, st, active := evaluate(n, p)
			if !active {
				return
			}
			cn, isNew := add(child, st, n.Level+1, n.Seq+string(p.ID()), n.ID, p.ID())
			n.Edges = append(n.Edges, Edge{Phase: p.ID(), To: cn.ID})
			if isNew {
				next = append(next, cn)
			} else {
				putClone(child)
			}
		}

		for _, n := range frontier {
			for _, p := range opts.Phases {
				if !opt.Enabled(p, n.State) {
					continue
				}
				if len(n.Seq) > 0 && n.Seq[len(n.Seq)-1] == p.ID() {
					continue
				}
				// Prunable? m reached via (parent, y); x=p independent
				// of y.
				o := via[n.ID]
				if o.parent >= 0 && prior != nil {
					if ind := prior.Independent(p.ID(), o.phase); ind >= threshold {
						deferred = append(deferred, deferredAttempt{n, p})
						continue
					}
				}
				process(n, p)
			}
		}

		// Resolve deferred diamonds now that this level's direct
		// evaluations are in place.
		for _, d := range deferred {
			o := via[d.node.ID]
			parent := res.Nodes[o.parent]
			completed := false
			if m1 := edgeTarget(parent, d.phase.ID()); m1 >= 0 {
				if p2 := edgeTarget(res.Nodes[m1], o.phase); p2 >= 0 {
					// Diamond complete: x after y equals y after x.
					d.node.Edges = append(d.node.Edges, Edge{Phase: d.phase.ID(), To: p2})
					ps.Skipped++
					completed = true
				}
			}
			if !completed {
				ps.Fallbacks++
				process(d.node, d.phase)
			}
		}

		for _, n := range frontier {
			if !opts.KeepFuncs {
				putClone(n.fn)
				n.fn = nil
			}
		}
		res.keys.noteLevel(levelStart)
		if opts.MaxNodes > 0 && len(res.Nodes) > opts.MaxNodes {
			res.abort(abortNodeCapReason(opts.MaxNodes))
			break
		}
		frontier = next
	}
	res.Elapsed = time.Since(start)
	return res, ps
}
