package search_test

import (
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/search"
)

// TestFingerprintTripleCollisionRate checks the paper's Section 4.2.1
// claim empirically: using the three checks in combination
// (instruction count, byte sum, CRC-32) it is "extremely rare (we have
// never encountered an instance) that distinct function instances
// would be detected as identical". This implementation dedupes on the
// exact canonical encoding, so any collision of the triple across
// distinct instances is observable — and there must be none across a
// whole enumerated space.
func TestFingerprintTripleCollisionRate(t *testing.T) {
	for _, src := range []struct{ code, fn string }{
		{sumSrc, "sum"},
		{smallSrc, "clamp"},
	} {
		_, f := compileFunc(t, src.code, src.fn)
		r := search.Run(f, search.Options{MaxNodes: 50000})
		if r.Aborted {
			t.Skip("space exceeds the test budget")
		}
		seen := make(map[fingerprint.FP]string, len(r.Nodes))
		collisions := 0
		for _, n := range r.Nodes {
			if key, ok := seen[n.FP]; ok && key != r.NodeKey(n) {
				collisions++
			} else {
				seen[n.FP] = r.NodeKey(n)
			}
		}
		if collisions != 0 {
			t.Errorf("%s: %d fingerprint-triple collisions among %d distinct instances",
				src.fn, collisions, len(r.Nodes))
		}
		t.Logf("%s: %d instances, 0 triple collisions", src.fn, len(r.Nodes))
	}
}
