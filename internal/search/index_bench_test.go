package search

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/fingerprint"
)

// synthKeys builds n deterministic pseudo-canonical keys of roughly
// realistic size (a few hundred bytes, like a mid-sized function's
// encoding) together with their honest fingerprints.
func synthKeys(n int) ([][]byte, []fingerprint.FP) {
	keys := make([][]byte, n)
	fps := make([]fingerprint.FP, n)
	for i := range keys {
		k := make([]byte, 256)
		seed := uint64(i)*0x9E3779B97F4A7C15 + 1
		for j := 0; j < len(k); j += 8 {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			binary.LittleEndian.PutUint64(k[j:], seed)
		}
		keys[i] = k
		var sum uint32
		for _, b := range k {
			sum += uint32(b)
		}
		fps[i] = fingerprint.FP{Count: len(k) / 16, ByteSum: sum, CRC: crc32.ChecksumIEEE(k)}
	}
	return keys, fps
}

// BenchmarkDedupIndex measures the two-tier index in isolation, the
// operation the merge loop performs once per active attempt. "miss"
// probes a fresh key and inserts it (the new-node path); "hit" probes
// keys already present (the duplicate-merge path); "hit-retired"
// repeats the hits after the keys' levels were compressed, paying the
// blob decompression on the first compare of each run.
func BenchmarkDedupIndex(b *testing.B) {
	const n = 4096
	keys, fps := synthKeys(n)
	const flags = byte(0x05)

	build := func() (*dedupIndex, *keyStore) {
		ks := newKeyStore()
		d := newDedupIndex(ks)
		for i, k := range keys {
			ks.put(i, string(flags)+string(k))
			d.insert(flags, fps[i], i)
		}
		return d, ks
	}

	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ks := newKeyStore()
			d := newDedupIndex(ks)
			b.StartTimer()
			for j, k := range keys {
				if _, ok := d.lookup(flags, fps[j], k); !ok {
					ks.put(j, string(flags)+string(k))
					d.insert(flags, fps[j], j)
				}
			}
		}
		b.ReportMetric(float64(n), "probes/op")
	})

	b.Run("hit", func(b *testing.B) {
		d, _ := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, k := range keys {
				if id, ok := d.lookup(flags, fps[j], k); !ok || id != j {
					b.Fatalf("lookup(%d) = %d, %v", j, id, ok)
				}
			}
		}
		b.ReportMetric(float64(n), "probes/op")
	})

	b.Run("hit-retired", func(b *testing.B) {
		d, ks := build()
		// Retire the whole corpus in level-sized ranges so hits pay the
		// second-tier compare against compressed storage.
		ks.noteLevel(0)
		for s := n / 4; s <= n; s += n / 4 {
			ks.noteLevel(s)
		}
		for i := 0; i <= keyRetireWindow; i++ {
			ks.noteLevel(n)
		}
		if len(ks.live) != 0 {
			b.Fatalf("%d keys still live", len(ks.live))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, k := range keys {
				if id, ok := d.lookup(flags, fps[j], k); !ok || id != j {
					b.Fatalf("lookup(%d) = %d, %v", j, id, ok)
				}
			}
		}
		b.ReportMetric(float64(n), "probes/op")
		b.ReportMetric(float64(d.retainedBytes()), "retained-bytes")
	})
}
