package search_test

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/telemetry"
)

// TestRunLogsLevelBoundaries checks the Options.Logger contract: a
// flight-ID-stamped logger receives one record per completed level,
// each carrying the flight ID planted on Options.Ctx.
func TestRunLogsLevelBoundaries(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	var b strings.Builder
	log := telemetry.NewLogger(&b, "json", slog.LevelDebug)
	ctx := telemetry.WithFlightID(context.Background(), "f42")

	r := search.Run(f, search.Options{Ctx: ctx, Logger: log})
	if r.Aborted {
		t.Fatalf("aborted: %s", r.AbortReason)
	}

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	var levels int
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] != "level complete" {
			continue
		}
		levels++
		if rec["flight_id"] != "f42" {
			t.Fatalf("level record missing flight ID: %v", rec)
		}
		if rec["fn"] != "clamp" {
			t.Fatalf("level record missing fn: %v", rec)
		}
		for _, k := range []string{"level", "frontier", "attempts", "nodes", "elapsed"} {
			if _, ok := rec[k]; !ok {
				t.Fatalf("level record missing %q: %v", k, rec)
			}
		}
	}
	if levels == 0 {
		t.Fatalf("no level-boundary records in %d lines:\n%s", len(lines), b.String())
	}
	// Levels are 0-indexed: a clean run that reached depth d logged
	// boundary records for levels 0..d inclusive.
	if levels != r.Stats.Levels+1 {
		t.Fatalf("logged %d level boundaries, search reached depth %d", levels, r.Stats.Levels)
	}
}

// TestRunLogsAbort checks that an aborted run logs the reason.
func TestRunLogsAbort(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	var b strings.Builder
	log := telemetry.NewLogger(&b, "json", slog.LevelDebug)
	r := search.Run(f, search.Options{MaxNodes: 10, Logger: log})
	if !r.Aborted {
		t.Fatal("expected node-cap abort")
	}
	if !strings.Contains(b.String(), `"msg":"search aborted"`) {
		t.Fatalf("no abort record in log:\n%s", b.String())
	}
	if !strings.Contains(b.String(), r.AbortReason) {
		t.Fatalf("abort record does not carry the reason %q:\n%s", r.AbortReason, b.String())
	}
}
