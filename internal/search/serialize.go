package search

import (
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// The on-disk format: a gzip-compressed JSON document holding the
// unoptimized root function and the node table. Binary canonical keys
// are base64-coded. Saved spaces let the analysis tools run without
// re-enumerating (the paper's enumerations took hours for the largest
// functions; persisting them is what makes the Section 5 statistics a
// separate, fast step).

type fileFormat struct {
	Version         int           `json:"version"`
	FuncName        string        `json:"func"`
	AttemptedPhases int           `json:"attempted_phases"`
	Aborted         bool          `json:"aborted,omitempty"`
	AbortReason     string        `json:"abort_reason,omitempty"`
	ElapsedNS       int64         `json:"elapsed_ns"`
	Stats           RunStats      `json:"stats"`
	Root            *rtl.Func     `json:"root"`
	Nodes           []fileNode    `json:"nodes"`
	Machine         *machine.Desc `json:"machine"`
}

type fileNode struct {
	Level     int            `json:"level"`
	Seq       string         `json:"seq"`
	Key       string         `json:"key"` // base64
	FP        fingerprint.FP `json:"fp"`
	State     byte           `json:"state"`
	NumInstrs int            `json:"num_instrs"`
	CFKey     string         `json:"cf_key"` // base64
	Edges     []Edge         `json:"edges,omitempty"`
	CheckErr  string         `json:"check_err,omitempty"`
}

const formatVersion = 1

func stateBits(st opt.State) byte {
	var b byte
	if st.RegAssigned {
		b |= 1
	}
	if st.KApplied {
		b |= 2
	}
	if st.SApplied {
		b |= 4
	}
	return b
}

func bitsState(b byte) opt.State {
	return opt.State{
		RegAssigned: b&1 != 0,
		KApplied:    b&2 != 0,
		SApplied:    b&4 != 0,
	}
}

// Save writes the enumerated space to w.
func (r *Result) Save(w io.Writer) error {
	ff := fileFormat{
		Version:         formatVersion,
		FuncName:        r.FuncName,
		AttemptedPhases: r.AttemptedPhases,
		Aborted:         r.Aborted,
		AbortReason:     r.AbortReason,
		ElapsedNS:       int64(r.Elapsed),
		Stats:           r.Stats,
		Root:            r.root,
		Machine:         r.opts.Machine,
	}
	enc := base64.StdEncoding
	for _, n := range r.Nodes {
		ff.Nodes = append(ff.Nodes, fileNode{
			Level:     n.Level,
			Seq:       n.Seq,
			Key:       enc.EncodeToString([]byte(n.Key)),
			FP:        n.FP,
			State:     stateBits(n.State),
			NumInstrs: n.NumInstrs,
			CFKey:     enc.EncodeToString([]byte(n.CFKey)),
			Edges:     n.Edges,
			CheckErr:  n.CheckErr,
		})
	}
	gz := gzip.NewWriter(w)
	if err := json.NewEncoder(gz).Encode(&ff); err != nil {
		return fmt.Errorf("search: encoding space: %w", err)
	}
	return gz.Close()
}

// SaveFile writes the space to a file.
func (r *Result) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a space written by Save. The loaded result supports the
// same operations as a fresh one, including Instance replay.
func Load(rd io.Reader) (*Result, error) {
	gz, err := gzip.NewReader(rd)
	if err != nil {
		return nil, fmt.Errorf("search: reading space: %w", err)
	}
	defer gz.Close()
	var ff fileFormat
	if err := json.NewDecoder(gz).Decode(&ff); err != nil {
		return nil, fmt.Errorf("search: decoding space: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("search: space format version %d, want %d", ff.Version, formatVersion)
	}
	if ff.Root == nil || len(ff.Nodes) == 0 {
		return nil, fmt.Errorf("search: space file is empty")
	}
	res := &Result{
		FuncName:        ff.FuncName,
		AttemptedPhases: ff.AttemptedPhases,
		Aborted:         ff.Aborted,
		AbortReason:     ff.AbortReason,
		Elapsed:         time.Duration(ff.ElapsedNS),
		Stats:           ff.Stats,
		root:            ff.Root,
	}
	res.opts.fill()
	if ff.Machine != nil {
		res.opts.Machine = ff.Machine
	}
	enc := base64.StdEncoding
	for i, fn := range ff.Nodes {
		key, err := enc.DecodeString(fn.Key)
		if err != nil {
			return nil, fmt.Errorf("search: node %d key: %w", i, err)
		}
		cf, err := enc.DecodeString(fn.CFKey)
		if err != nil {
			return nil, fmt.Errorf("search: node %d cf key: %w", i, err)
		}
		for _, e := range fn.Edges {
			if e.To < 0 || e.To >= len(ff.Nodes) {
				return nil, fmt.Errorf("search: node %d has an edge to %d, outside the %d-node table",
					i, e.To, len(ff.Nodes))
			}
		}
		res.Nodes = append(res.Nodes, &Node{
			ID:        i,
			Level:     fn.Level,
			Seq:       fn.Seq,
			Key:       string(key),
			FP:        fn.FP,
			State:     bitsState(fn.State),
			NumInstrs: fn.NumInstrs,
			CFKey:     fingerprint.Key(cf),
			Edges:     fn.Edges,
			CheckErr:  fn.CheckErr,
		})
	}
	return res, nil
}

// LoadFile reads a space file written by SaveFile.
func LoadFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
