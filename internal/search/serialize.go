package search

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// The on-disk format: a gzip-compressed JSON document holding the
// unoptimized root function and the node table. Binary canonical keys
// are base64-coded. Saved spaces let the analysis tools run without
// re-enumerating (the paper's enumerations took hours for the largest
// functions; persisting them is what makes the Section 5 statistics a
// separate, fast step).
//
// Version history:
//
//	v1  node table + root + machine + stats (read-compatible)
//	v2  adds per-node quarantine records and an optional checkpoint
//	    section — the live frontier with its retained instances — that
//	    makes a partially enumerated space resumable (search.Resume)
//	v3  adds the equivalence-collapse summary (top-level "equiv") and
//	    per-node raw-instance counts ("equiv_raw") of spaces
//	    enumerated with Options.Equiv
//
// Writers emit v3 only for equivalence-collapsed spaces, keeping every
// other space byte-identical to the v2 writer's output; the loader
// reads v1-v3. v1 files simply have no quarantined nodes and no
// checkpoint section.

type fileFormat struct {
	Version         int             `json:"version"`
	FuncName        string          `json:"func"`
	AttemptedPhases int             `json:"attempted_phases"`
	Aborted         bool            `json:"aborted,omitempty"`
	AbortReason     string          `json:"abort_reason,omitempty"`
	ElapsedNS       int64           `json:"elapsed_ns"`
	Stats           RunStats        `json:"stats"`
	Equiv           *EquivStats     `json:"equiv,omitempty"`
	Root            *rtl.Func       `json:"root"`
	Nodes           []fileNode      `json:"nodes"`
	Machine         *machine.Desc   `json:"machine"`
	Checkpoint      *fileCheckpoint `json:"checkpoint,omitempty"`
}

type fileNode struct {
	Level      int            `json:"level"`
	Seq        string         `json:"seq"`
	Key        string         `json:"key"` // base64
	FP         fingerprint.FP `json:"fp"`
	State      byte           `json:"state"`
	NumInstrs  int            `json:"num_instrs"`
	EquivRaw   int            `json:"equiv_raw,omitempty"`
	CFKey      string         `json:"cf_key"` // base64
	Edges      []Edge         `json:"edges,omitempty"`
	CheckErr   string         `json:"check_err,omitempty"`
	Quarantine string         `json:"quarantine,omitempty"`
}

// fileCheckpoint is the v2 resume section: the IDs of the unexpanded
// frontier nodes plus their function instances (the same JSON encoding
// the root already uses), in discovery order.
type fileCheckpoint struct {
	Frontier      []int       `json:"frontier"`
	Bodies        []*rtl.Func `json:"bodies"`
	SavedAtUnixNS int64       `json:"saved_at_unix_ns,omitempty"`
}

const (
	formatVersion      = 2
	formatVersionEquiv = 3
	minFormatVersion   = 1
)

// formatVersionOf returns the version this result serializes as:
// equivalence-collapsed spaces need v3, everything else stays v2 (and
// byte-identical to what the v2 writer produced).
func (r *Result) formatVersionOf() int {
	if r.Equiv != nil {
		return formatVersionEquiv
	}
	return formatVersion
}

func stateBits(st opt.State) byte {
	var b byte
	if st.RegAssigned {
		b |= 1
	}
	if st.KApplied {
		b |= 2
	}
	if st.SApplied {
		b |= 4
	}
	return b
}

func bitsState(b byte) opt.State {
	return opt.State{
		RegAssigned: b&1 != 0,
		KApplied:    b&2 != 0,
		SApplied:    b&4 != 0,
	}
}

// encodeNodes renders the first numNodes nodes; nodes in stripEdges
// (the live frontier of a checkpoint) serialize without outgoing
// edges, the state they had at the level boundary being persisted.
// Full canonical keys come from the result's keyStore (decompressed
// blob by blob for retired levels).
func (r *Result) encodeNodes(numNodes int, stripEdges map[int]bool) []fileNode {
	enc := base64.StdEncoding
	out := make([]fileNode, 0, numNodes)
	for _, n := range r.Nodes[:numNodes] {
		edges := n.Edges
		if stripEdges[n.ID] {
			edges = nil
		}
		out = append(out, fileNode{
			Level:      n.Level,
			Seq:        n.Seq,
			Key:        enc.EncodeToString([]byte(r.keys.get(n.ID))),
			FP:         n.FP,
			State:      stateBits(n.State),
			NumInstrs:  n.NumInstrs,
			EquivRaw:   n.EquivRaw,
			CFKey:      enc.EncodeToString([]byte(n.CFKey)),
			Edges:      edges,
			CheckErr:   n.CheckErr,
			Quarantine: n.Quarantine,
		})
	}
	return out
}

// fileFormatFull renders the result as-is, including the resume
// section when the result still carries a checkpoint (a loaded,
// unresumed space round-trips).
func (r *Result) fileFormatFull(canonical bool) *fileFormat {
	ff := &fileFormat{
		Version:         r.formatVersionOf(),
		FuncName:        r.FuncName,
		AttemptedPhases: r.AttemptedPhases,
		Aborted:         r.Aborted,
		AbortReason:     r.AbortReason,
		ElapsedNS:       int64(r.Elapsed),
		Stats:           r.Stats,
		Equiv:           r.Equiv,
		Root:            r.root,
		Machine:         r.opts.Machine,
		Nodes:           r.encodeNodes(len(r.Nodes), nil),
	}
	if cp := r.Checkpoint; cp != nil {
		fc := &fileCheckpoint{SavedAtUnixNS: cp.SavedAt.UnixNano()}
		for _, n := range cp.Frontier {
			fc.Frontier = append(fc.Frontier, n.ID)
			fc.Bodies = append(fc.Bodies, n.fn)
		}
		ff.Checkpoint = fc
	}
	if canonical {
		ff.ElapsedNS = 0
		ff.Stats.StateKeyNS = 0
		ff.Stats.ExpandNS = 0
		if ff.Checkpoint != nil {
			ff.Checkpoint.SavedAtUnixNS = 0
		}
	}
	return ff
}

// fileFormatAt renders the level-boundary snapshot the checkpoint
// writer persists: only the nodes that existed at the boundary, the
// frontier without the partial edges a killed level may have added,
// and the boundary's counters. Aborted is left false — the snapshot is
// a healthy, resumable state, whatever happened afterwards.
func (r *Result) fileFormatAt(snap *snapshot, savedAt time.Time) *fileFormat {
	strip := make(map[int]bool, len(snap.frontier))
	fc := &fileCheckpoint{SavedAtUnixNS: savedAt.UnixNano()}
	for _, n := range snap.frontier {
		strip[n.ID] = true
		fc.Frontier = append(fc.Frontier, n.ID)
		fc.Bodies = append(fc.Bodies, n.fn)
	}
	if len(fc.Frontier) == 0 {
		// Nothing left to expand: the snapshot is the complete space.
		fc = nil
	}
	return &fileFormat{
		Version:         r.formatVersionOf(),
		FuncName:        r.FuncName,
		AttemptedPhases: snap.attempted,
		ElapsedNS:       int64(snap.elapsed),
		Stats:           snap.stats,
		Equiv:           r.Equiv,
		Root:            r.root,
		Machine:         r.opts.Machine,
		Nodes:           r.encodeNodes(snap.numNodes, strip),
		Checkpoint:      fc,
	}
}

func writeFormat(w io.Writer, ff *fileFormat) error {
	gz := gzip.NewWriter(w)
	if err := json.NewEncoder(gz).Encode(ff); err != nil {
		gz.Close()
		return fmt.Errorf("search: encoding space: %w", err)
	}
	return gz.Close()
}

// Save writes the enumerated space to w.
func (r *Result) Save(w io.Writer) error {
	return writeFormat(w, r.fileFormatFull(false))
}

// SaveFile writes the space to a file.
func (r *Result) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// CanonicalBytes serializes the space with every wall-clock field
// (Elapsed, the Stats timing totals, checkpoint timestamps) zeroed.
// Two enumerations of the same function are byte-identical under this
// encoding exactly when they discovered the same space — the equality
// the kill/resume determinism guarantee is stated in. The gzip layer
// is deterministic (no mod time).
func (r *Result) CanonicalBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeFormat(&buf, r.fileFormatFull(true)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CanonicalHash returns the hex SHA-256 of CanonicalBytes — the space
// identity spacedot -hash prints and the serving layer advertises. Two
// spaces hash equal exactly when they enumerate the same DAG.
func (r *Result) CanonicalHash() (string, error) {
	b, err := r.CanonicalBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// writeCheckpointFile atomically persists a level-boundary snapshot:
// the document is written to path+".tmp" and renamed over path only
// after a successful write and sync, so a crash or a full disk
// (simulated by the fault plan) never clobbers the previous
// checkpoint.
func writeCheckpointFile(path string, r *Result, snap *snapshot, faults *faultinject.Plan) (err error) {
	ff := r.fileFormatAt(snap, time.Now())
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var w io.Writer = f
	if faults != nil {
		w = faults.WrapCheckpoint(w)
	}
	if err = writeFormat(w, ff); err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("search: checkpoint: %w", err)
	}
	// The rename is only durable once the containing directory is
	// synced; without it a power loss can lose the directory entry and
	// with it the checkpoint, even though the data blocks were fsynced.
	if err = syncDir(filepath.Dir(path), faults); err != nil {
		return fmt.Errorf("search: checkpoint: syncing directory: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename into it survives power loss.
// The fault plan can inject a failure here (dirsyncfail=<n>), which the
// caller records in Result.CheckpointErr like any other write failure.
func syncDir(dir string, faults *faultinject.Plan) error {
	if faults.DirSyncFault() {
		return faultinject.ErrDirSync
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load reads a space written by Save (or a checkpoint written during
// an interrupted run — Result.Checkpoint is then set and Resume
// continues it). The loaded result supports the same operations as a
// fresh one, including Instance replay. Corrupt inputs fail with
// errors naming the defect: a truncated file, an unsupported format
// version, or malformed node encodings.
func Load(rd io.Reader) (*Result, error) {
	gz, err := gzip.NewReader(rd)
	if err != nil {
		return nil, fmt.Errorf("search: reading space: not a gzip stream: %w", err)
	}
	var ff fileFormat
	if err := json.NewDecoder(gz).Decode(&ff); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("search: space file is truncated: %w", err)
		}
		return nil, fmt.Errorf("search: decoding space: %w", err)
	}
	// The JSON decoder stops at the end of the document, which can sit
	// entirely before a damaged gzip trailer: a file whose last block
	// was truncated or whose CRC was clobbered would otherwise load
	// silently. Drain to EOF so the trailer checksum is verified, and
	// surface the close error instead of discarding it.
	if _, err := io.Copy(io.Discard, gz); err != nil {
		return nil, fmt.Errorf("search: space file has a corrupt gzip trailer: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("search: space file has a corrupt gzip trailer: %w", err)
	}
	if ff.Version < minFormatVersion || ff.Version > formatVersionEquiv {
		return nil, fmt.Errorf("search: space format version %d unsupported (this build reads v%d-v%d)",
			ff.Version, minFormatVersion, formatVersionEquiv)
	}
	if ff.Root == nil || len(ff.Nodes) == 0 {
		return nil, fmt.Errorf("search: space file is empty")
	}
	res := &Result{
		FuncName:        ff.FuncName,
		AttemptedPhases: ff.AttemptedPhases,
		Aborted:         ff.Aborted,
		AbortReason:     ff.AbortReason,
		Elapsed:         time.Duration(ff.ElapsedNS),
		Stats:           ff.Stats,
		Equiv:           ff.Equiv,
		root:            ff.Root,
		keys:            newKeyStore(),
	}
	res.opts.fill()
	if ff.Equiv != nil {
		res.opts.Equiv = true
	}
	if ff.Machine != nil {
		res.opts.Machine = ff.Machine
	}
	enc := base64.StdEncoding
	for i, fn := range ff.Nodes {
		key, err := enc.DecodeString(fn.Key)
		if err != nil {
			return nil, fmt.Errorf("search: node %d has a malformed base64 key: %w", i, err)
		}
		cf, err := enc.DecodeString(fn.CFKey)
		if err != nil {
			return nil, fmt.Errorf("search: node %d has a malformed base64 cf key: %w", i, err)
		}
		for _, e := range fn.Edges {
			if e.To < 0 || e.To >= len(ff.Nodes) {
				return nil, fmt.Errorf("search: node %d has an edge to %d, outside the %d-node table",
					i, e.To, len(ff.Nodes))
			}
		}
		res.keys.put(i, string(key))
		res.Nodes = append(res.Nodes, &Node{
			ID:         i,
			Level:      fn.Level,
			Seq:        fn.Seq,
			FP:         fn.FP,
			State:      bitsState(fn.State),
			NumInstrs:  fn.NumInstrs,
			EquivRaw:   fn.EquivRaw,
			CFKey:      fingerprint.Key(cf),
			Edges:      fn.Edges,
			CheckErr:   fn.CheckErr,
			Quarantine: fn.Quarantine,
		})
	}
	// Compress the loaded keys level by level, mirroring the retirement
	// a fresh run performs (node IDs grow with level in files we write;
	// any other grouping just yields differently shaped blobs).
	for start := 0; start < len(res.Nodes); {
		end := start + 1
		for end < len(res.Nodes) && res.Nodes[end].Level == res.Nodes[start].Level {
			end++
		}
		res.keys.retire(start, end)
		start = end
	}
	if fc := ff.Checkpoint; fc != nil {
		if len(fc.Frontier) != len(fc.Bodies) {
			return nil, fmt.Errorf("search: checkpoint lists %d frontier nodes but %d bodies",
				len(fc.Frontier), len(fc.Bodies))
		}
		cp := &Checkpoint{SavedAt: time.Unix(0, fc.SavedAtUnixNS)}
		for i, id := range fc.Frontier {
			if id < 0 || id >= len(res.Nodes) {
				return nil, fmt.Errorf("search: checkpoint frontier entry %d is node %d, outside the %d-node table",
					i, id, len(res.Nodes))
			}
			if fc.Bodies[i] == nil {
				return nil, fmt.Errorf("search: checkpoint frontier entry %d (node %d) has no body", i, id)
			}
			n := res.Nodes[id]
			n.fn = fc.Bodies[i]
			cp.Frontier = append(cp.Frontier, n)
		}
		res.Checkpoint = cp
	}
	return res, nil
}

// LoadFile reads a space file written by SaveFile.
func LoadFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
