package search_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/search"
)

// TestParallelDeterminismTable is the byte-identity contract of the
// pipelined parallel engine: the canonical serialization of a space
// must not depend on the worker count, on the equivalence tier, or on
// whether the enumeration was interrupted mid-level and resumed.
// Workers=1 × uninterrupted is the reference; every other cell of the
// {workers} × {default, equiv} × {uninterrupted, interrupt+resume}
// table must serialize to the same bytes. The equiv × resume cells are
// skipped by design: equivalence-collapsed runs are not checkpointable
// (the class and alias tables are not persisted), and Resume rejects
// the option.
//
// The interrupted runs cancel via a Verifier hook after the n-th
// active instance — the in-process analog of kill -9 mid-level — so
// under the parallel engine the cancellation lands while workers and
// the committer are genuinely racing. Run the package under -race
// (the Makefile race target does) to make the cells double as a data
// race probe.
func TestParallelDeterminismTable(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	widths := []int{1, 4, 16}
	for _, equiv := range []bool{false, true} {
		tier := "default"
		if equiv {
			tier = "equiv"
		}
		t.Run(tier, func(t *testing.T) {
			base := search.Run(f, search.Options{Workers: 1, Equiv: equiv})
			if base.Aborted {
				t.Fatalf("reference run aborted: %s", base.AbortReason)
			}
			want := canonical(t, base)

			for _, w := range widths {
				w := w
				t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
					r := search.Run(f, search.Options{Workers: w, Equiv: equiv})
					if r.Aborted {
						t.Fatalf("run aborted: %s", r.AbortReason)
					}
					if !bytes.Equal(canonical(t, r), want) {
						t.Fatalf("space at %d workers differs from the Workers=1 reference", w)
					}
					if equiv {
						if r.Equiv == nil || base.Equiv == nil {
							t.Fatal("equiv stats missing")
						}
						if r.Equiv.Raw != base.Equiv.Raw || r.Equiv.Merged != base.Equiv.Merged {
							t.Fatalf("equiv stats differ: %d/%d raw/merged at %d workers vs %d/%d at 1",
								r.Equiv.Raw, r.Equiv.Merged, w, base.Equiv.Raw, base.Equiv.Merged)
						}
					}
				})
				if equiv {
					continue // resume unsupported with Equiv by design
				}
				t.Run(fmt.Sprintf("workers=%d,resume", w), func(t *testing.T) {
					ckpt := filepath.Join(t.TempDir(), fmt.Sprintf("sum.w%d.ckpt.space.gz", w))
					ctx, cancel := context.WithCancel(context.Background())
					interrupted := search.Run(f, search.Options{
						Workers:        w,
						Ctx:            ctx,
						Verifier:       cancelAfter(cancel, 40),
						CheckpointPath: ckpt,
					})
					cancel()
					if !interrupted.Aborted {
						// The space finished before the cancel landed;
						// the checkpoint file is the complete space.
						if got := mustLoadCanonical(t, ckpt); !bytes.Equal(got, want) {
							t.Fatal("completed checkpoint differs from reference space")
						}
						return
					}
					loaded, err := search.LoadFile(ckpt)
					if err != nil {
						t.Fatalf("loading checkpoint: %v", err)
					}
					if loaded.Checkpoint == nil {
						t.Fatal("interrupted checkpoint has no frontier")
					}
					resumed, err := search.Resume(loaded, search.Options{Workers: w, CheckpointPath: ckpt})
					if err != nil {
						t.Fatalf("resume: %v", err)
					}
					if resumed.Aborted {
						t.Fatalf("resumed run aborted: %s", resumed.AbortReason)
					}
					if !bytes.Equal(canonical(t, resumed), want) {
						t.Fatalf("resumed space at %d workers differs from reference", w)
					}
				})
			}
		})
	}
}
