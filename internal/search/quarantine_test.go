package search_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/search"
)

func saveLoad(t *testing.T, r *search.Result) *search.Result {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestQuarantineTargetedPanic injects a panic into exactly one
// (sequence, phase) attempt and checks that the enumeration completes
// with that single attempt quarantined instead of crashing.
func TestQuarantineTargetedPanic(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	clean := search.Run(f, search.Options{})
	if clean.Aborted {
		t.Fatalf("clean run aborted: %s", clean.AbortReason)
	}

	// Pick a real attempt from the clean space: the first edge out of
	// the first level-1 node.
	var seq string
	var phase byte
	for _, n := range clean.Nodes {
		if n.Level == 1 && len(n.Edges) > 0 {
			seq, phase = n.Seq, n.Edges[0].Phase
			break
		}
	}
	if seq == "" {
		t.Fatal("clean space has no expandable level-1 node")
	}

	r := search.Run(f, search.Options{
		Faults: faultinject.MustParse("panic=" + string(phase) + "@" + seq),
	})
	if r.Aborted {
		t.Fatalf("targeted panic aborted the search: %s", r.AbortReason)
	}
	q := r.QuarantinedNodes()
	if len(q) != 1 {
		t.Fatalf("quarantined %d nodes, want exactly 1", len(q))
	}
	qn := q[0]
	if !strings.Contains(qn.Quarantine, "panic") || !strings.Contains(qn.Quarantine, "faultinject") {
		t.Fatalf("Quarantine = %q, want the injected panic message", qn.Quarantine)
	}
	if qn.Seq != seq+string(phase) {
		t.Fatalf("quarantined node Seq = %q, want %q", qn.Seq, seq+string(phase))
	}
	if len(qn.Edges) != 0 {
		t.Fatalf("quarantined node has %d out-edges, want none (subtree skipped)", len(qn.Edges))
	}
	if r.Stats.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1", r.Stats.Quarantined)
	}
	if r.Stats.Attempts != r.Stats.Active+r.Stats.Dormant+r.Stats.Quarantined {
		t.Fatalf("attempt accounting broken: %d != %d active + %d dormant + %d quarantined",
			r.Stats.Attempts, r.Stats.Active, r.Stats.Dormant, r.Stats.Quarantined)
	}
	// The rest of the space is still enumerated: everything in the
	// clean space that is not downstream of the faulted attempt.
	if got, want := len(r.Nodes)-len(q), len(clean.Nodes); got > want {
		t.Fatalf("faulted run has %d non-quarantined nodes, clean run only %d", got, want)
	}
}

// TestQuarantineAllAttemptsOfPhase panics on every application of one
// phase: the enumeration must still complete, and the phase must not
// appear in any surviving node's discovery sequence.
func TestQuarantineAllAttemptsOfPhase(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{
		Faults: faultinject.MustParse("panic=c"),
	})
	if r.Aborted {
		t.Fatalf("phase-wide panic aborted the search: %s", r.AbortReason)
	}
	if len(r.QuarantinedNodes()) == 0 {
		t.Fatal("no attempt of phase c was quarantined")
	}
	for _, n := range r.Nodes {
		if n.Quarantine != "" {
			if n.Seq[len(n.Seq)-1] != 'c' {
				t.Fatalf("node %q quarantined but its last phase is not c", n.Seq)
			}
			continue
		}
		if strings.ContainsRune(n.Seq, 'c') {
			t.Fatalf("surviving node %q was discovered through the panicking phase", n.Seq)
		}
	}
	// Quarantined dead ends are not leaves and carry no instance.
	for _, n := range r.Leaves() {
		if n.Quarantine != "" {
			t.Fatalf("quarantined node %q reported as a leaf", n.Seq)
		}
	}
}

// TestQuarantineSerializes round-trips a space containing quarantined
// nodes and checks the markers survive.
func TestQuarantineSerializes(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{
		Faults: faultinject.MustParse("panic=h"),
	})
	qBefore := len(r.QuarantinedNodes())
	if qBefore == 0 {
		t.Skip("phase h never attempted on clamp")
	}
	loaded := saveLoad(t, r)
	if got := len(loaded.QuarantinedNodes()); got != qBefore {
		t.Fatalf("loaded space has %d quarantined nodes, want %d", got, qBefore)
	}
	if loaded.Stats.Quarantined != r.Stats.Quarantined {
		t.Fatalf("loaded Stats.Quarantined = %d, want %d",
			loaded.Stats.Quarantined, r.Stats.Quarantined)
	}
}

// TestWatchdogQuarantinesHang injects a hang far past the attempt
// watchdog at a single attempt and checks it is quarantined with a
// watchdog message while the rest of the space completes.
func TestWatchdogQuarantinesHang(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	clean := search.Run(f, search.Options{})
	var seq string
	var phase byte
	for _, n := range clean.Nodes {
		if len(n.Edges) > 0 {
			seq, phase = n.Seq, n.Edges[0].Phase
			break
		}
	}
	r := search.Run(f, search.Options{
		AttemptWatchdog: 100 * time.Millisecond,
		Faults: faultinject.MustParse(
			"hang=" + string(phase) + "@" + seq + ":2s"),
	})
	if r.Aborted {
		t.Fatalf("hang aborted the search: %s", r.AbortReason)
	}
	q := r.QuarantinedNodes()
	if len(q) != 1 {
		t.Fatalf("quarantined %d nodes, want exactly the hung attempt", len(q))
	}
	if !strings.Contains(q[0].Quarantine, "watchdog") {
		t.Fatalf("Quarantine = %q, want a watchdog timeout message", q[0].Quarantine)
	}
}

// TestCorruptInstanceCaughtByCheck corrupts the output of one phase and
// checks that the semantic verifier flags the instance in CheckErr
// without stopping the enumeration.
func TestCorruptInstanceCaughtByCheck(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{
		Check:  true,
		Faults: faultinject.MustParse("corrupt=h"),
	})
	if r.Aborted {
		t.Fatalf("corruption aborted the search: %s", r.AbortReason)
	}
	if len(r.QuarantinedNodes()) != 0 {
		t.Fatal("corruption is not a panic and must not quarantine")
	}
	flagged := 0
	for _, n := range r.Nodes {
		if n.CheckErr != "" {
			flagged++
			// Descendants of a corrupted instance inherit the damage, so
			// any flagged sequence must at least contain the faulted phase.
			if !strings.ContainsRune(n.Seq, 'h') {
				t.Fatalf("node %q flagged but never passed through the corrupted phase", n.Seq)
			}
		}
	}
	if flagged == 0 {
		t.Fatal("the semantic verifier caught none of the corrupted instances")
	}
}
