package search

import (
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/mibench"
)

// TestMeasureEquivOverhead is the harness behind BENCH_equiv.json: for
// a representative set of functions it enumerates with and without the
// equivalence tier and reports nodes, collapse and median wall time.
// Skipped unless REPRO_MEASURE_EQUIV is set — it is a measurement, not
// a regression test.
func TestMeasureEquivOverhead(t *testing.T) {
	out := os.Getenv("REPRO_MEASURE_EQUIV")
	if out == "" {
		t.Skip("set REPRO_MEASURE_EQUIV=<file> to run the measurement")
	}
	targets := []string{
		"bitcount/bit_count",
		"sha/sha_transform",
		"jpeg/get_code",
		"jpeg/rle_block",
		"stringsearch/bmh_search",
	}
	funcs, err := mibench.AllFunctions()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*mibench.TaggedFunc{}
	for i := range funcs {
		byName[funcs[i].Bench+"/"+funcs[i].Func.Name] = &funcs[i]
	}

	const reps = 3
	type row struct {
		Function   string         `json:"function"`
		Nodes      int            `json:"nodes"`
		EquivNodes int            `json:"equiv_nodes"`
		Raw        int            `json:"equiv_raw"`
		Merged     int            `json:"equiv_merged"`
		ByPhase    map[string]int `json:"equiv_by_phase,omitempty"`
		BaseMS     float64        `json:"base_ms_median"`
		EquivMS    float64        `json:"equiv_ms_median"`
		Overhead   float64        `json:"overhead_ratio"`
	}
	median := func(ds []time.Duration) float64 {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return float64(ds[len(ds)/2]) / float64(time.Millisecond)
	}
	var rows []row
	for _, name := range targets {
		tf := byName[name]
		if tf == nil {
			t.Fatalf("no corpus function %s", name)
		}
		run := func(equiv bool) (*Result, []time.Duration) {
			var last *Result
			var times []time.Duration
			for i := 0; i < reps; i++ {
				start := time.Now()
				last = Run(tf.Func, Options{MaxNodes: 100000, Equiv: equiv})
				times = append(times, time.Since(start))
				if last.Aborted {
					t.Fatalf("%s aborted: %s", name, last.AbortReason)
				}
			}
			return last, times
		}
		base, baseT := run(false)
		eq, eqT := run(true)
		r := row{
			Function:   name,
			Nodes:      len(base.Nodes),
			EquivNodes: len(eq.Nodes),
			Raw:        eq.Equiv.Raw,
			Merged:     eq.Equiv.Merged,
			ByPhase:    eq.Equiv.RedundantByPhase,
			BaseMS:     median(baseT),
			EquivMS:    median(eqT),
		}
		r.Overhead = r.EquivMS / r.BaseMS
		rows = append(rows, r)
		t.Logf("%s: %d -> %d nodes, base %.0fms equiv %.0fms (%.2fx)",
			name, r.Nodes, r.EquivNodes, r.BaseMS, r.EquivMS, r.Overhead)
	}
	doc := map[string]any{
		"description": "equivalence tier (search.Options.Equiv): collapse and enumeration overhead, medians of 3 single-worker runs",
		"maxnodes":    100000,
		"rows":        rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
