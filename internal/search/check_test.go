package search_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/search"
)

// TestCheckedEnumerationClean enumerates a full space with the
// semantic verifier on and requires every distinct instance — root
// included — to verify clean.
func TestCheckedEnumerationClean(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{Check: true})
	if r.Aborted {
		t.Fatalf("aborted: %s", r.AbortReason)
	}
	if fails := r.CheckFailures(); len(fails) != 0 {
		for _, n := range fails {
			t.Errorf("node %d (seq %q): %s", n.ID, n.Seq, n.CheckErr)
		}
	}
}

// TestCheckedEnumerationMatchesUnchecked verifies checking is purely
// observational: the enumerated space is node-for-node identical with
// and without it.
func TestCheckedEnumerationMatchesUnchecked(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	plain := search.Run(f, search.Options{})
	checked := search.Run(f, search.Options{Check: true})
	if len(plain.Nodes) != len(checked.Nodes) {
		t.Fatalf("space size changed under -check: %d vs %d", len(plain.Nodes), len(checked.Nodes))
	}
	for i := range plain.Nodes {
		if plain.NodeKey(plain.Nodes[i]) != checked.NodeKey(checked.Nodes[i]) || plain.Nodes[i].Seq != checked.Nodes[i].Seq {
			t.Fatalf("node %d diverged under -check", i)
		}
	}
}

// TestSerializeCheckErr confirms a node's verifier finding survives
// the save/load round trip, so persisted spaces keep their violation
// records for later analysis.
func TestSerializeCheckErr(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{Check: true})
	if len(r.Nodes) < 2 {
		t.Fatal("space too small for the test")
	}
	// No real phase miscompiles, so plant a finding to serialize.
	r.Nodes[1].CheckErr = "synthetic: planted for round-trip"

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes[1].CheckErr != r.Nodes[1].CheckErr {
		t.Fatalf("CheckErr lost in round trip: %q", got.Nodes[1].CheckErr)
	}
	fails := got.CheckFailures()
	if len(fails) != 1 || fails[0].ID != 1 {
		t.Fatalf("CheckFailures after load = %v", fails)
	}
	if !strings.Contains(fails[0].CheckErr, "planted") {
		t.Fatalf("unexpected CheckErr %q", fails[0].CheckErr)
	}
	for i, n := range got.Nodes {
		if i != 1 && n.CheckErr != "" {
			t.Fatalf("node %d acquired a CheckErr: %q", i, n.CheckErr)
		}
	}
}
