package search

import (
	"bytes"
	"fmt"
)

// PartitionCheckpoint splits a paused enumeration's frontier into k
// contiguous, disjoint sub-checkpoints and returns them as serialized
// v2 space documents, each one a valid checkpoint Load + Resume accept.
// Every shard document carries the full node table — a shard resuming
// from it rebuilds the complete dedup index, so cross-shard duplicate
// instances merge into the shared base nodes exactly as they would in a
// serial run — and differs only in its checkpoint section, which holds
// shard i's slice of the frontier (sizes differ by at most one; k is
// clamped to the frontier size).
//
// The second return value lists each shard's frontier node IDs, in the
// base frontier's discovery order; MergeShards needs them to tell a
// shard's own expansions apart from foreign frontier nodes it never
// touched. The split is deterministic: partitioning the same result
// with the same k yields byte-identical documents.
func PartitionCheckpoint(r *Result, k int) ([][]byte, [][]int, error) {
	cp := r.Checkpoint
	if cp == nil {
		return nil, nil, fmt.Errorf("search: partition: result has no checkpoint frontier")
	}
	if r.Aborted {
		return nil, nil, fmt.Errorf("search: partition: result is aborted (%s)", r.AbortReason)
	}
	if r.Equiv != nil {
		return nil, nil, fmt.Errorf("search: partition: equivalence-collapsed spaces are not partitionable")
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("search: partition: need k >= 1 shards, got %d", k)
	}
	for i, n := range cp.Frontier {
		if n.fn == nil {
			return nil, nil, fmt.Errorf("search: partition: frontier node %d (id %d) has no retained instance", i, n.ID)
		}
	}
	if k > len(cp.Frontier) {
		k = len(cp.Frontier)
	}
	// Encode the shared node table once; the documents differ only in
	// their checkpoint sections. Frontier nodes are unexpanded, so they
	// carry no edges — no stripping needed.
	nodes := r.encodeNodes(len(r.Nodes), nil)
	docs := make([][]byte, 0, k)
	ids := make([][]int, 0, k)
	quo, rem := len(cp.Frontier)/k, len(cp.Frontier)%k
	start := 0
	for i := 0; i < k; i++ {
		size := quo
		if i < rem {
			size++
		}
		part := cp.Frontier[start : start+size]
		start += size
		fc := &fileCheckpoint{}
		sub := make([]int, 0, size)
		for _, n := range part {
			fc.Frontier = append(fc.Frontier, n.ID)
			fc.Bodies = append(fc.Bodies, n.fn)
			sub = append(sub, n.ID)
		}
		// SavedAtUnixNS stays zero: shard documents are content-addressed
		// by the coordinator and must not vary run to run.
		ff := &fileFormat{
			Version:         formatVersion,
			FuncName:        r.FuncName,
			AttemptedPhases: r.AttemptedPhases,
			ElapsedNS:       int64(r.Elapsed),
			Stats:           r.Stats,
			Root:            r.root,
			Machine:         r.opts.Machine,
			Nodes:           nodes,
			Checkpoint:      fc,
		}
		var buf bytes.Buffer
		if err := writeFormat(&buf, ff); err != nil {
			return nil, nil, fmt.Errorf("search: partition: shard %d: %w", i, err)
		}
		docs = append(docs, buf.Bytes())
		ids = append(ids, sub)
	}
	return docs, ids, nil
}
