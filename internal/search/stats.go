package search

import (
	"fmt"

	"repro/internal/fingerprint"
	"repro/internal/rtl"
)

// Stats are the per-function search space statistics of Table 3.
type Stats struct {
	Function string
	// Insts is the number of instructions in the unoptimized function.
	Insts int
	// Blocks, Branches and Loops describe the unoptimized function.
	Blocks   int
	Branches int
	Loops    int
	// FnInstances is the number of distinct function instances.
	FnInstances int
	// AttemptedPhases counts phase applications evaluated.
	AttemptedPhases int
	// MaxActiveLen is the largest active sequence length (Table 3,
	// "Len"): the depth of the DAG.
	MaxActiveLen int
	// ControlFlows is the number of distinct control flows (CF).
	ControlFlows int
	// Leaves is the number of leaf function instances.
	Leaves int
	// CodeSizeMax/Min are the extreme static instruction counts over
	// leaf instances; PctDiff is their relative gap in percent.
	CodeSizeMax int
	CodeSizeMin int
	PctDiff     float64
	// Aborted marks functions whose space exceeded the search caps
	// (the paper's "N/A" rows).
	Aborted bool
	// EquivRaw and EquivMerged, for spaces enumerated with
	// Options.Equiv, count the raw-distinct instances discovered and
	// those the equivalence tier folded into an existing class; both
	// zero otherwise.
	EquivRaw    int
	EquivMerged int
}

// ComputeStats assembles the Table 3 row for a completed search.
func ComputeStats(r *Result) Stats {
	st := Stats{
		Function:        r.FuncName,
		FnInstances:     len(r.Nodes),
		AttemptedPhases: r.AttemptedPhases,
		Aborted:         r.Aborted,
	}
	if r.Equiv != nil {
		st.EquivRaw = r.Equiv.Raw
		st.EquivMerged = r.Equiv.Merged
	}
	root := r.root
	st.Insts = root.NumInstrs()
	st.Blocks = len(root.Blocks)
	st.Branches = root.NumBranches()
	st.Loops = rtl.NumLoops(root)

	cf := make(map[fingerprint.Key]bool)
	for _, n := range r.Nodes {
		if n.Quarantine != "" {
			// No instance exists: a quarantined dead end contributes
			// neither a control flow nor a realized sequence length.
			continue
		}
		cf[n.CFKey] = true
		if n.Level > st.MaxActiveLen {
			st.MaxActiveLen = n.Level
		}
	}
	st.ControlFlows = len(cf)

	for _, n := range r.Leaves() {
		st.Leaves++
		if st.CodeSizeMin == 0 || n.NumInstrs < st.CodeSizeMin {
			st.CodeSizeMin = n.NumInstrs
		}
		if n.NumInstrs > st.CodeSizeMax {
			st.CodeSizeMax = n.NumInstrs
		}
	}
	if st.CodeSizeMin > 0 {
		st.PctDiff = 100 * float64(st.CodeSizeMax-st.CodeSizeMin) / float64(st.CodeSizeMin)
	}
	return st
}

// TableRow renders the statistics in the layout of Table 3.
func (s Stats) TableRow() string {
	if s.Aborted {
		return fmt.Sprintf("%-16s %6d %5d %5d %5d %10s %12s %5s %5s %6s %6s %6s %7s",
			clip(s.Function, 16), s.Insts, s.Blocks, s.Branches, s.Loops,
			"N/A", "N/A", "N/A", "N/A", "N/A", "N/A", "N/A", "N/A")
	}
	return fmt.Sprintf("%-16s %6d %5d %5d %5d %10d %12d %5d %5d %6d %6d %6d %6.1f%%",
		clip(s.Function, 16), s.Insts, s.Blocks, s.Branches, s.Loops,
		s.FnInstances, s.AttemptedPhases, s.MaxActiveLen, s.ControlFlows,
		s.Leaves, s.CodeSizeMax, s.CodeSizeMin, s.PctDiff)
}

// TableHeader is the column header matching TableRow.
func TableHeader() string {
	return fmt.Sprintf("%-16s %6s %5s %5s %5s %10s %12s %5s %5s %6s %6s %6s %7s",
		"Function", "Insts", "Blk", "Brch", "Loop",
		"FnInst", "Attempted", "Len", "CF", "Leaf", "Max", "Min", "%Diff")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
