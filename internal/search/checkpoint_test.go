package search_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rtl"
	"repro/internal/search"
)

const gcdSrc = `
int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}`

// canonical serializes a result under the canonical (wall-clock-free)
// encoding the determinism guarantee is stated in.
func canonical(t *testing.T, r *search.Result) []byte {
	t.Helper()
	b, err := r.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// cancelAfter returns a Verifier hook that cancels ctx after the n-th
// active instance, interrupting the enumeration mid-level at a point
// that varies with n — the in-process analog of kill -9 at an
// arbitrary moment.
func cancelAfter(cancel context.CancelFunc, n int64) func(*rtl.Func) error {
	var seen atomic.Int64
	return func(*rtl.Func) error {
		if seen.Add(1) == n {
			cancel()
		}
		return nil
	}
}

// TestCheckpointResumeDeterminism is the tentpole guarantee: a search
// interrupted at an arbitrary point, checkpointed, reloaded and
// resumed yields a space byte-identical (canonical serialization) to
// an uninterrupted run — for several functions and several interrupt
// points each.
func TestCheckpointResumeDeterminism(t *testing.T) {
	sources := []struct{ src, fn string }{
		{smallSrc, "clamp"},
		{sumSrc, "sum"},
		{gcdSrc, "gcd"},
	}
	for _, src := range sources {
		src := src
		t.Run(src.fn, func(t *testing.T) {
			_, f := compileFunc(t, src.src, src.fn)
			clean := search.Run(f, search.Options{})
			if clean.Aborted {
				t.Fatalf("clean run aborted: %s", clean.AbortReason)
			}
			want := canonical(t, clean)

			ckpt := filepath.Join(t.TempDir(), src.fn+".ckpt.space.gz")
			for _, at := range []int64{1, 3, 9, 27, 81} {
				ctx, cancel := context.WithCancel(context.Background())
				r := search.Run(f, search.Options{
					Ctx:            ctx,
					Verifier:       cancelAfter(cancel, at),
					CheckpointPath: ckpt,
				})
				cancel()
				if !r.Aborted {
					// The space finished before the cancel point; the
					// checkpoint file is already the complete space.
					if got := mustLoadCanonical(t, ckpt); !bytes.Equal(got, want) {
						t.Fatalf("cancel@%d: completed checkpoint differs from clean space", at)
					}
					continue
				}
				loaded, err := search.LoadFile(ckpt)
				if err != nil {
					t.Fatalf("cancel@%d: loading checkpoint: %v", at, err)
				}
				if loaded.Checkpoint == nil {
					t.Fatalf("cancel@%d: interrupted checkpoint has no frontier", at)
				}
				resumed, err := search.Resume(loaded, search.Options{CheckpointPath: ckpt})
				if err != nil {
					t.Fatalf("cancel@%d: resume: %v", at, err)
				}
				if resumed.Aborted {
					t.Fatalf("cancel@%d: resumed run aborted: %s", at, resumed.AbortReason)
				}
				if got := canonical(t, resumed); !bytes.Equal(got, want) {
					t.Fatalf("cancel@%d: resumed space differs from uninterrupted run", at)
				}
				// The final checkpoint file must itself be the complete
				// space, byte-identical as well.
				if got := mustLoadCanonical(t, ckpt); !bytes.Equal(got, want) {
					t.Fatalf("cancel@%d: final checkpoint file differs from clean space", at)
				}
			}
		})
	}
}

func mustLoadCanonical(t *testing.T, path string) []byte {
	t.Helper()
	r, err := search.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoint != nil {
		t.Fatalf("%s: still carries a frontier of %d nodes", path, len(r.Checkpoint.Frontier))
	}
	return canonical(t, r)
}

// TestCheckpointRoundTripPartial: an interrupted checkpoint must
// round-trip through Save/Load with its frontier (bodies included)
// intact.
func TestCheckpointRoundTripPartial(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	ckpt := filepath.Join(t.TempDir(), "sum.ckpt.space.gz")
	ctx, cancel := context.WithCancel(context.Background())
	r := search.Run(f, search.Options{
		Ctx:            ctx,
		Verifier:       cancelAfter(cancel, 25),
		CheckpointPath: ckpt,
	})
	cancel()
	if !r.Aborted {
		t.Skip("enumeration finished before the cancel point")
	}
	loaded, err := search.LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Checkpoint == nil || len(loaded.Checkpoint.Frontier) == 0 {
		t.Fatal("interrupted checkpoint lost its frontier")
	}
	var buf bytes.Buffer
	if err := loaded.Save(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Checkpoint == nil ||
		len(again.Checkpoint.Frontier) != len(loaded.Checkpoint.Frontier) {
		t.Fatal("checkpoint section did not survive a save/load round trip")
	}
	resumed, err := search.Resume(again, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean := search.Run(f, search.Options{})
	if !bytes.Equal(canonical(t, resumed), canonical(t, clean)) {
		t.Fatal("space resumed from a round-tripped checkpoint differs from a clean run")
	}
}

// TestResumeCompleteSpaceIsNoop: Resume on a fully enumerated space
// returns it unchanged.
func TestResumeCompleteSpaceIsNoop(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{})
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := search.Resume(loaded, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != loaded {
		t.Fatal("Resume of a complete space did not return it unchanged")
	}
}

// TestResumeAfterCapAbort: a cap abort writes a resumable boundary
// checkpoint; resuming with the cap raised completes the space
// identically to an unrestricted run.
func TestResumeAfterCapAbort(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	clean := search.Run(f, search.Options{})
	ckpt := filepath.Join(t.TempDir(), "sum.ckpt.space.gz")
	r := search.Run(f, search.Options{MaxNodes: 50, CheckpointPath: ckpt})
	if !r.Aborted {
		t.Fatal("node cap did not abort")
	}
	loaded, err := search.LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := search.Resume(loaded, search.Options{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Aborted {
		t.Fatalf("resume with raised cap aborted: %s", resumed.AbortReason)
	}
	if !bytes.Equal(canonical(t, resumed), canonical(t, clean)) {
		t.Fatal("space resumed after a cap abort differs from an unrestricted run")
	}
}

// TestCheckpointWriteFailureIsSurvived: a failing checkpoint write
// (simulated ENOSPC) must not abort the search, must not clobber the
// previous checkpoint, and must be reported in CheckpointErr.
func TestCheckpointWriteFailureIsSurvived(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	ckpt := filepath.Join(t.TempDir(), "clamp.ckpt.space.gz")

	// Seed a valid checkpoint file, then rerun with every write
	// failing: the file must still hold the seeded content.
	seed := search.Run(f, search.Options{CheckpointPath: ckpt})
	if seed.CheckpointErr != "" {
		t.Fatalf("seed run reported a checkpoint error: %s", seed.CheckpointErr)
	}
	before, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	r := search.Run(f, search.Options{
		CheckpointPath: ckpt,
		Faults:         faultinject.MustParse("ckptfail=1000000"),
	})
	if r.Aborted {
		t.Fatalf("checkpoint failures aborted the search: %s", r.AbortReason)
	}
	if r.CheckpointErr == "" || !strings.Contains(r.CheckpointErr, "ENOSPC") {
		t.Fatalf("CheckpointErr = %q, want a simulated ENOSPC report", r.CheckpointErr)
	}
	after, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("a failed checkpoint write clobbered the previous checkpoint")
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("failed write left its temp file behind")
	}
}

// TestCheckpointDirSyncFailureIsRecorded: the checkpoint rename is only
// durable once the containing directory is fsynced; an injected
// directory-sync failure (dirsyncfail spec) must land in CheckpointErr
// like any other write failure, without aborting the search, and the
// renamed checkpoint file must still be loadable (the data made it, the
// durability guarantee did not).
func TestCheckpointDirSyncFailureIsRecorded(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	ckpt := filepath.Join(t.TempDir(), "clamp.ckpt.space.gz")
	r := search.Run(f, search.Options{
		CheckpointPath: ckpt,
		Faults:         faultinject.MustParse("dirsyncfail=1000000"),
	})
	if r.Aborted {
		t.Fatalf("directory-sync failures aborted the search: %s", r.AbortReason)
	}
	if r.CheckpointErr == "" || !strings.Contains(r.CheckpointErr, "fsync failure on checkpoint directory") {
		t.Fatalf("CheckpointErr = %q, want the simulated directory fsync failure", r.CheckpointErr)
	}
	if _, err := search.LoadFile(ckpt); err != nil {
		t.Fatalf("checkpoint written before the failed directory sync does not load: %v", err)
	}
}

// TestKillResumeUnderFaults combines the two robustness features: an
// enumeration with a quarantining fault plan, interrupted and resumed,
// matches the uninterrupted enumeration under the same plan.
func TestKillResumeUnderFaults(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	plan := faultinject.MustParse("panic=c")
	clean := search.Run(f, search.Options{Faults: plan})
	if clean.Aborted {
		t.Fatalf("faulted clean run aborted: %s", clean.AbortReason)
	}
	if len(clean.QuarantinedNodes()) == 0 {
		t.Fatal("fault plan quarantined nothing")
	}
	want := canonical(t, clean)

	ckpt := filepath.Join(t.TempDir(), "sum.ckpt.space.gz")
	ctx, cancel := context.WithCancel(context.Background())
	r := search.Run(f, search.Options{
		Ctx:            ctx,
		Verifier:       cancelAfter(cancel, 15),
		CheckpointPath: ckpt,
		Faults:         plan,
	})
	cancel()
	if !r.Aborted {
		t.Skip("enumeration finished before the cancel point")
	}
	loaded, err := search.LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := search.Resume(loaded, search.Options{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, resumed), want) {
		t.Fatal("kill/resume under faults diverged from the uninterrupted faulted run")
	}
}
