package search_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/search"
)

// TestIndependencePruningWithSelfPrior: when the prior is mined from
// the function's own exhaustive space (so every independence entry of
// 1.0 is exact), the pruned enumeration must find the same set of
// instances while skipping evaluations.
func TestIndependencePruningWithSelfPrior(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	exact := search.Run(f, search.Options{MaxNodes: 50000})
	if exact.Aborted {
		t.Skip("space exceeds the test budget")
	}
	x := analysis.NewInteractions()
	x.Accumulate(exact)

	pruned, ps := search.RunWithIndependencePruning(f, search.Options{MaxNodes: 50000}, x, 1.0)
	if pruned.Aborted {
		t.Fatalf("pruned run aborted: %s", pruned.AbortReason)
	}

	if ps.Skipped == 0 {
		t.Error("no evaluations skipped despite fully-independent pairs in the prior")
	}
	if pruned.AttemptedPhases >= exact.AttemptedPhases {
		t.Errorf("pruning saved nothing: %d vs %d attempts",
			pruned.AttemptedPhases, exact.AttemptedPhases)
	}

	// Same instances: compare the sets of canonical keys.
	exactKeys := make(map[string]bool, len(exact.Nodes))
	for _, n := range exact.Nodes {
		exactKeys[exact.NodeKey(n)] = true
	}
	missing := 0
	for _, n := range pruned.Nodes {
		if !exactKeys[pruned.NodeKey(n)] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("pruned space contains %d instances not in the exact space", missing)
	}
	lost := len(exact.Nodes) - len(pruned.Nodes)
	if lost != 0 {
		// With a self-prior at threshold 1.0 the diamonds are exact:
		// the space must be identical.
		t.Errorf("pruning lost %d of %d instances", lost, len(exact.Nodes))
	}
	t.Logf("attempts %d -> %d (%d diamonds completed, %d fallbacks)",
		exact.AttemptedPhases, pruned.AttemptedPhases, ps.Skipped, ps.Fallbacks)
}

// TestIndependencePruningCrossFunction quantifies the approximation
// when the prior comes from a different function, as Section 7
// envisions: most of the space survives, and the attempt count drops.
func TestIndependencePruningCrossFunction(t *testing.T) {
	_, train := compileFunc(t, smallSrc, "clamp")
	trainSpace := search.Run(train, search.Options{})
	x := analysis.NewInteractions()
	x.Accumulate(trainSpace)

	_, f := compileFunc(t, sumSrc, "sum")
	exact := search.Run(f, search.Options{MaxNodes: 50000})
	if exact.Aborted {
		t.Skip("space exceeds the test budget")
	}
	pruned, ps := search.RunWithIndependencePruning(f, search.Options{MaxNodes: 50000}, x, 1.0)
	coverage := float64(len(pruned.Nodes)) / float64(len(exact.Nodes))
	t.Logf("cross-function prior: coverage %.1f%%, %d skipped, %d fallbacks, attempts %d -> %d",
		100*coverage, ps.Skipped, ps.Fallbacks, exact.AttemptedPhases, pruned.AttemptedPhases)
	if coverage < 0.5 {
		t.Errorf("cross-function pruning lost more than half the space (%.1f%%)", 100*coverage)
	}
}
