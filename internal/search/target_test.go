package search_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/search"
)

// TestSpacesDependOnTarget measures the abstract's claim that the best
// phase order depends on the target architecture: enumerating the same
// function against two machine descriptions (ARM-like 8/12-bit
// immediates vs MIPS-like 16-bit immediates) must give different
// spaces, and may give different optimal code sizes.
func TestSpacesDependOnTarget(t *testing.T) {
	src := `
int f(int x) {
    int a = x & 4095;
    int b = x & 65535;
    return a * 6 + b - 70000;
}`
	_, f := compileFunc(t, src, "f")

	arm := search.Run(f, search.Options{Machine: machine.StrongARM(), MaxNodes: 30000})
	mips := search.Run(f, search.Options{Machine: machine.MIPSLike(), MaxNodes: 30000})
	if arm.Aborted || mips.Aborted {
		t.Skip("space exceeds the test budget")
	}

	armOpt := arm.OptimalCodeSize().NumInstrs
	mipsOpt := mips.OptimalCodeSize().NumInstrs
	t.Logf("strongarm: %d instances, optimal %d; mipslike: %d instances, optimal %d",
		len(arm.Nodes), armOpt, len(mips.Nodes), mipsOpt)

	if len(arm.Nodes) == len(mips.Nodes) && armOpt == mipsOpt {
		// The wide logical immediates of the MIPS-like target must
		// let instruction selection fold the 0xFFFF mask that the
		// ARM-like target cannot encode, so something must differ.
		t.Fatalf("identical spaces across very different targets")
	}
	if mipsOpt > armOpt {
		t.Errorf("wider immediates should not make the optimal code larger: %d vs %d",
			mipsOpt, armOpt)
	}
}
