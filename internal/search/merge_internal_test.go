package search

import (
	"strconv"
	"strings"
	"testing"
)

// TestHarvestQuarantineSeqTemplate checks the quarantine-message
// normalization the cross-shard oracle depends on: a node two shards
// both discover can carry different shard-relative sequences, so the
// harvested record replaces the parent's quoted Seq with seqToken
// (making the shards' records compare equal) and the replay
// re-substitutes the serial sequence.
func TestHarvestQuarantineSeqTemplate(t *testing.T) {
	const pkey = "\x01parent-encoding"
	res := &Result{FuncName: "f", keys: newKeyStore()}
	parent := &Node{ID: 0, Seq: "KC", NumInstrs: 3}
	msg := "watchdog: phase S at " + strconv.Quote("KC") + " still running after 1s"
	parent.Edges = []Edge{{Phase: 'S', To: 1}}
	res.Nodes = []*Node{
		parent,
		{ID: 1, Level: 1, Seq: "KCS", Quarantine: msg},
	}
	res.keys.put(0, pkey)
	res.keys.put(1, "QKCS")

	o := attemptOracle{}
	if err := harvestOracle(o, res, func(int) bool { return true }); err != nil {
		t.Fatal(err)
	}
	rec, ok := o[pkey]['S']
	if !ok {
		t.Fatalf("no oracle record harvested for %q/S", pkey)
	}
	if !strings.Contains(rec.quarantine, seqToken) {
		t.Fatalf("template %q does not carry the seq token", rec.quarantine)
	}
	if strings.Contains(rec.quarantine, strconv.Quote("KC")) {
		t.Fatalf("template %q still embeds the shard-relative sequence", rec.quarantine)
	}
	// The replay side: re-embedding a different (serial) parent sequence
	// reconstructs the message the serial run would have recorded.
	got := strings.ReplaceAll(rec.quarantine, seqToken, strconv.Quote("XY"))
	want := "watchdog: phase S at " + strconv.Quote("XY") + " still running after 1s"
	if got != want {
		t.Fatalf("rewritten message %q, want %q", got, want)
	}
}

// TestOracleRecordConsistency checks the oracle's duplicate handling:
// re-records that differ only in the shard-relative child sequence are
// accepted (two shards legitimately reach the same child by different
// paths), any other disagreement is a corrupt shard, and an active
// child without a canonical key is rejected outright.
func TestOracleRecordConsistency(t *testing.T) {
	o := attemptOracle{}
	a := oracleChild{key: "\x01child", numInstrs: 3, seq: "KS"}
	if err := o.record("p", 'S', a); err != nil {
		t.Fatal(err)
	}
	b := a
	b.seq = "CS"
	if err := o.record("p", 'S', b); err != nil {
		t.Fatalf("seq-only difference rejected: %v", err)
	}
	c := a
	c.numInstrs = 4
	if err := o.record("p", 'S', c); err == nil {
		t.Fatal("conflicting outcome accepted")
	}
	if err := o.record("p", 'K', oracleChild{}); err == nil {
		t.Fatal("active child with empty canonical key accepted")
	}
}
