package search

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/opt"
)

// The merge step reassembles one space from completed sub-spaces. The
// shards cannot simply be concatenated: node IDs must land in the
// serial engine's first-discovery order, Seq must be the
// lexicographically first shortest sequence *globally* (a node two
// shards both reach keeps the sequence the serial run would have found
// first), and the stats counters are part of the canonical hash. So
// the merge replays the enumeration from the base checkpoint — the
// same level loop, the same dedup index probes, the same counter
// updates — but answers every "what does phase p do at instance n?"
// question from an oracle harvested out of the shard results instead
// of evaluating the phase. Replay cost is pure index work: no cloning,
// no phase application, no verification.

// oracleChild is one harvested attempt outcome: the child instance a
// phase application produced at a parent (or the quarantine it died
// with). Absence from the oracle means the phase was dormant.
type oracleChild struct {
	key       string // full canonical key (flags byte + encoding)
	fp        fingerprint.FP
	state     byte
	numInstrs int
	cfKey     string
	checkErr  string
	// seq is the harvesting space's own Seq for the child. It is
	// shard-relative — the merge replay reconstructs sequences serially
	// and never uses it — but equivalence derivation replays it to
	// materialize the instance (see equivderive.go).
	seq string
	// quarantine, when non-empty, is the failure message with the
	// parent's shard-relative quoted Seq replaced by seqToken, so
	// records from different shards compare equal and the replay can
	// re-embed the serial parent sequence.
	quarantine string
}

// seqToken marks where a quarantine message embedded the parent's
// quoted sequence. NUL bytes cannot appear in a %q rendering, so the
// token never collides with message content.
const seqToken = "\x00parent-seq\x00"

// attemptOracle maps a parent's canonical key and a phase ID to the
// harvested outcome. The outcome of a phase at an instance is a pure
// function of the two, so records from different shards must agree;
// record rejects any conflict (a corrupt or mismatched shard).
type attemptOracle map[string]map[byte]oracleChild

func (o attemptOracle) record(parentKey string, phase byte, c oracleChild) error {
	if c.quarantine == "" && c.key == "" {
		return fmt.Errorf("search: merge: child of phase %c has an empty canonical key", phase)
	}
	m := o[parentKey]
	if m == nil {
		m = make(map[byte]oracleChild)
		o[parentKey] = m
	}
	prev, ok := m[phase]
	if !ok {
		m[phase] = c
		return nil
	}
	// Same (instance, phase) seen again — by another shard, or via a
	// second edge path. seq is shard-relative, so it is excluded from
	// the consistency check.
	a, b := prev, c
	a.seq, b.seq = "", ""
	if a != b {
		return fmt.Errorf("search: merge: shards disagree on the outcome of phase %c", phase)
	}
	return nil
}

// harvestOracle records every attempt outcome res evaluated: for each
// node the expanded filter admits, its edges become oracle entries
// (active children and quarantines); phases with no edge were dormant
// there. Quarantined nodes are never parents — they have no instance.
func harvestOracle(o attemptOracle, res *Result, expanded func(id int) bool) error {
	for _, n := range res.Nodes {
		if n.Quarantine != "" || !expanded(n.ID) {
			continue
		}
		pkey := res.NodeKey(n)
		for _, e := range n.Edges {
			c := res.Nodes[e.To]
			var oc oracleChild
			if c.Quarantine != "" {
				oc = oracleChild{quarantine: strings.ReplaceAll(c.Quarantine, strconv.Quote(n.Seq), seqToken)}
			} else {
				oc = oracleChild{
					key:       res.NodeKey(c),
					fp:        c.FP,
					state:     stateBits(c.State),
					numInstrs: c.NumInstrs,
					cfKey:     string(c.CFKey),
					checkErr:  c.CheckErr,
					seq:       c.Seq,
				}
			}
			if err := o.record(pkey, e.Phase, oc); err != nil {
				return err
			}
		}
	}
	return nil
}

// ShardSpace pairs one completed sub-space with the slice of the base
// frontier it was assigned (PartitionCheckpoint's second return value,
// in base discovery order).
type ShardSpace struct {
	Res *Result
	// FrontierIDs are the base-table node IDs of the frontier subset
	// this shard resumed from. They distinguish the shard's own
	// expansions from foreign frontier nodes, which sit edge-less in
	// its node table and would otherwise read as all-dormant leaves.
	FrontierIDs []int
}

// MergeShards reassembles the space of base's function from completed
// shard sub-spaces, producing the Result a serial run from the base
// checkpoint would have produced — byte-identical under canonical
// serialization. base must be a paused (or loaded) result whose
// checkpoint frontier the shards' FrontierIDs cover disjointly; every
// shard must be complete (no checkpoint, not aborted). The merge
// replays the level loop from the base frontier in serial order,
// resolving every attempt through the striped dedup index with the
// harvested oracle standing in for phase evaluation; if the base
// MaxSeqPerLevel/MaxNodes caps bind during replay the merged result
// aborts with exactly the serial run's reason. Inconsistent shards
// (disagreeing outcomes, uncovered frontier nodes) fail with an error
// and leave base untouched.
func MergeShards(base *Result, shards []ShardSpace) (*Result, error) {
	cp := base.Checkpoint
	if cp == nil {
		return nil, fmt.Errorf("search: merge: base result has no checkpoint frontier")
	}
	if base.Aborted {
		return nil, fmt.Errorf("search: merge: base result is aborted (%s)", base.AbortReason)
	}
	if base.Equiv != nil {
		return nil, fmt.Errorf("search: merge: equivalence-collapsed bases are not shardable")
	}
	baseN := len(base.Nodes)
	covered := make(map[int]bool, len(cp.Frontier))
	oracle := attemptOracle{}
	for i, sh := range shards {
		s := sh.Res
		if s == nil {
			return nil, fmt.Errorf("search: merge: shard %d is missing", i)
		}
		if s.Checkpoint != nil {
			return nil, fmt.Errorf("search: merge: shard %d is not complete (checkpoint frontier remains)", i)
		}
		if s.Aborted {
			return nil, fmt.Errorf("search: merge: shard %d aborted: %s", i, s.AbortReason)
		}
		if s.FuncName != base.FuncName {
			return nil, fmt.Errorf("search: merge: shard %d enumerates %q, base is %q", i, s.FuncName, base.FuncName)
		}
		if len(s.Nodes) < baseN {
			return nil, fmt.Errorf("search: merge: shard %d has %d nodes, fewer than the %d-node base table", i, len(s.Nodes), baseN)
		}
		own := make(map[int]bool, len(sh.FrontierIDs))
		for _, id := range sh.FrontierIDs {
			if id < 0 || id >= baseN {
				return nil, fmt.Errorf("search: merge: shard %d claims frontier node %d, outside the %d-node base table", i, id, baseN)
			}
			if covered[id] {
				return nil, fmt.Errorf("search: merge: frontier node %d claimed by two shards", id)
			}
			covered[id] = true
			own[id] = true
		}
		// A shard expanded its own frontier subset plus everything it
		// discovered past the base table. Foreign frontier nodes were
		// never expanded there and must not be harvested as leaves.
		err := harvestOracle(oracle, s, func(id int) bool {
			return id >= baseN || own[id]
		})
		if err != nil {
			return nil, fmt.Errorf("search: merge: shard %d: %w", i, err)
		}
	}
	for _, n := range cp.Frontier {
		if !covered[n.ID] {
			return nil, fmt.Errorf("search: merge: frontier node %d not covered by any shard", n.ID)
		}
	}
	return replayMerge(base, oracle), nil
}

// replayMerge runs the serial level loop from the base checkpoint,
// answering attempts from the oracle. The base node table is copied
// (base stays reusable for a fallback), the instruments are seeded
// from the base stats exactly as Resume seeds them, and every index
// probe, counter update and abort check sits at the same point of the
// loop as in engine.run — the invariant the byte-identity rests on.
func replayMerge(base *Result, oracle attemptOracle) *Result {
	baseN := len(base.Nodes)
	ropts := base.opts
	// The replay is bookkeeping, not enumeration: telemetry and
	// checkpointing of the original options must not fire again.
	ropts.CheckpointPath = ""
	ropts.Logger, ropts.Metrics, ropts.Tracer = nil, nil, nil
	res := &Result{
		FuncName:        base.FuncName,
		AttemptedPhases: base.AttemptedPhases,
		Elapsed:         base.Elapsed,
		root:            base.root,
		opts:            ropts,
		keys:            newKeyStore(),
	}
	res.Nodes = make([]*Node, 0, baseN)
	for _, n := range base.Nodes {
		m := *n
		m.fn = nil
		res.Nodes = append(res.Nodes, &m)
		res.keys.put(m.ID, base.keys.get(n.ID))
	}
	// Retire the copied keys level by level, mirroring Load; replay
	// retirement then continues seamlessly past the base table.
	for start := 0; start < len(res.Nodes); {
		end := start + 1
		for end < len(res.Nodes) && res.Nodes[end].Level == res.Nodes[start].Level {
			end++
		}
		res.keys.retire(start, end)
		start = end
	}
	idx := newDedupIndex(res.keys)
	for _, n := range res.Nodes {
		if n.Quarantine != "" {
			continue
		}
		idx.insert(stateBits(n.State), n.FP, n.ID)
	}
	ins := newInstruments(&res.opts, res.FuncName, time.Now())
	ins.seed(base.Stats, baseN)

	frontier := make([]*Node, len(base.Checkpoint.Frontier))
	for i, n := range base.Checkpoint.Frontier {
		frontier[i] = res.Nodes[n.ID]
	}
	opts := &res.opts
	for len(frontier) > 0 {
		var work []attempt
		for _, n := range frontier {
			for _, p := range opts.Phases {
				if !opt.Enabled(p, n.State) {
					continue
				}
				if len(n.Seq) > 0 && n.Seq[len(n.Seq)-1] == p.ID() {
					continue
				}
				work = append(work, attempt{n, p})
			}
		}
		if len(work) > opts.MaxSeqPerLevel {
			res.abort(abortLevelCapReason(frontier[0].Level+1, len(work), opts.MaxSeqPerLevel))
			break
		}
		res.AttemptedPhases += len(work)
		level := frontier[0].Level
		levelStart := len(res.Nodes)
		ins.beginLevel(level, len(frontier), len(work))
		var next []*Node
		for _, a := range work {
			pkey := res.keys.get(a.node.ID)
			rec, ok := oracle[pkey][a.phase.ID()]
			if !ok {
				// No shard recorded an outcome: the phase was dormant.
				// A shard whose own Seq for the parent ended in this
				// phase skipped the attempt entirely, but that proves
				// the same thing — an active phase is never active twice
				// in a row (Section 4.1).
				ins.observeOutcome(false, false)
				continue
			}
			if rec.quarantine != "" {
				qn := &Node{
					ID:         len(res.Nodes),
					Level:      a.node.Level + 1,
					Seq:        a.node.Seq + string(a.phase.ID()),
					Quarantine: strings.ReplaceAll(rec.quarantine, seqToken, strconv.Quote(a.node.Seq)),
				}
				res.keys.put(qn.ID, "Q"+qn.Seq)
				res.Nodes = append(res.Nodes, qn)
				a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: qn.ID})
				ins.observeQuarantine()
				continue
			}
			flags := rec.key[0]
			if id, dup := idx.lookup(flags, rec.fp, []byte(rec.key[1:])); dup {
				ins.observeOutcome(true, false)
				a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: id})
				continue
			}
			cn := &Node{
				ID:        len(res.Nodes),
				Level:     a.node.Level + 1,
				Seq:       a.node.Seq + string(a.phase.ID()),
				FP:        rec.fp,
				State:     bitsState(rec.state),
				NumInstrs: rec.numInstrs,
				CFKey:     fingerprint.Key(rec.cfKey),
				CheckErr:  rec.checkErr,
			}
			res.keys.put(cn.ID, rec.key)
			idx.insert(flags, rec.fp, cn.ID)
			res.Nodes = append(res.Nodes, cn)
			ins.observeOutcome(true, true)
			a.node.Edges = append(a.node.Edges, Edge{Phase: a.phase.ID(), To: cn.ID})
			next = append(next, cn)
		}
		ins.nodesExpanded += len(frontier)
		frontier = next
		res.keys.noteLevel(levelStart)
		if opts.MaxNodes > 0 && len(res.Nodes) > opts.MaxNodes {
			res.abort(abortNodeCapReason(opts.MaxNodes))
			break
		}
	}
	res.Stats = ins.runStats()
	return res
}
