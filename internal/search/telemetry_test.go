package search_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rtl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// TestRunCanceled checks Options.Ctx cancellation: a pre-canceled
// context aborts before any level is evaluated, and Run still returns
// a well-formed result (so deferred metric/trace writers can flush).
func TestRunCanceled(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := search.Run(f, search.Options{Ctx: ctx})
	if !r.Aborted {
		t.Fatal("pre-canceled search did not abort")
	}
	if !strings.Contains(r.AbortReason, "canceled") {
		t.Errorf("abort reason %q does not mention cancellation", r.AbortReason)
	}
	if len(r.Nodes) != 1 {
		t.Errorf("canceled search enumerated %d nodes, want only the root", len(r.Nodes))
	}
	if r.Elapsed <= 0 {
		t.Error("canceled search did not record elapsed time")
	}
}

// TestRunCanceledMidway cancels from inside the Verifier hook, which
// runs on a worker mid-enumeration: the abort must be cooperative (no
// panic, no hang) and the partially evaluated chunk must be discarded
// rather than merged into the space.
func TestRunCanceledMidway(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	full := search.Run(f, search.Options{})
	if full.Aborted {
		t.Fatalf("baseline enumeration aborted: %s", full.AbortReason)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	r := search.Run(f, search.Options{
		Ctx: ctx,
		Verifier: func(*rtl.Func) error {
			if seen.Add(1) == 10 {
				cancel()
			}
			return nil
		},
	})
	if !r.Aborted || !strings.Contains(r.AbortReason, "canceled") {
		t.Fatalf("midway cancel: aborted=%v reason=%q", r.Aborted, r.AbortReason)
	}
	if len(r.Nodes) >= len(full.Nodes) {
		t.Errorf("canceled run has %d nodes, full run %d: nothing was cut short",
			len(r.Nodes), len(full.Nodes))
	}
	// The truncated result must still be structurally sound: every edge
	// targets a node that actually made it into the table.
	for _, n := range r.Nodes {
		for _, e := range n.Edges {
			if e.To < 0 || e.To >= len(r.Nodes) {
				t.Fatalf("node %d has edge to %d outside %d-node table", n.ID, e.To, len(r.Nodes))
			}
		}
	}
}

// TestRunTelemetry runs an instrumented enumeration end to end and
// cross-checks the three observability surfaces against each other and
// against the result: registry counters, the trace event stream, the
// progress reporter and Result.Stats must all tell the same story.
func TestRunTelemetry(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	var progress bytes.Buffer
	r := search.Run(f, search.Options{
		Metrics:          reg,
		Tracer:           tr,
		ProgressInterval: time.Millisecond,
		ProgressWriter:   &progress,
	})
	if r.Aborted {
		t.Fatalf("aborted: %s", r.AbortReason)
	}

	s := reg.Snapshot()
	if got := s.Counters["search.nodes"]; got != int64(len(r.Nodes)) {
		t.Errorf("search.nodes = %d, result has %d nodes", got, len(r.Nodes))
	}
	if got := s.Counters["search.attempts"]; got != int64(r.AttemptedPhases) {
		t.Errorf("search.attempts = %d, result attempted %d", got, r.AttemptedPhases)
	}
	if s.Counters["search.dormant"] == 0 || s.Counters["search.merged"] == 0 {
		t.Errorf("prune counters zero: dormant=%d merged=%d (both prunings must fire on clamp)",
			s.Counters["search.dormant"], s.Counters["search.merged"])
	}
	if h, ok := s.Histograms["search.expand.duration_ns"]; !ok || h.Count == 0 {
		t.Error("expand duration histogram empty")
	}

	// Stats must agree with the counters and with itself: attempts
	// partition into active + dormant, and every active attempt is an
	// edge that either discovered a node or merged into one.
	st := r.Stats
	if st.Attempts != r.AttemptedPhases {
		t.Errorf("Stats.Attempts = %d, want %d", st.Attempts, r.AttemptedPhases)
	}
	if st.Active+st.Dormant != st.Attempts {
		t.Errorf("active %d + dormant %d != attempts %d", st.Active, st.Dormant, st.Attempts)
	}
	if st.Active != st.Edges {
		t.Errorf("active %d != edges %d", st.Active, st.Edges)
	}
	if st.Active != (len(r.Nodes)-1)+st.Merged {
		t.Errorf("active %d != new nodes %d + merged %d", st.Active, len(r.Nodes)-1, st.Merged)
	}
	if st.ExpandNS <= 0 || st.StateKeyNS <= 0 {
		t.Errorf("timing fields not populated with metrics on: expand=%d statekey=%d",
			st.ExpandNS, st.StateKeyNS)
	}

	// The trace must be valid trace_event JSON with the expected span
	// names present.
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events")
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := make(map[string]int)
	for _, e := range tf.TraceEvents {
		names[e.Name]++
	}
	for _, want := range []string{"search.level", "search.expand"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q spans (have %v)", want, names)
		}
	}
	if names["search.expand"] != r.AttemptedPhases {
		t.Errorf("trace has %d search.expand spans, attempted %d phases",
			names["search.expand"], r.AttemptedPhases)
	}

	// The progress reporter flushes a final line on Stop even when no
	// tick fired; with a 1ms interval at least the final line is there.
	if !strings.Contains(progress.String(), "search clamp:") {
		t.Errorf("progress output missing status line: %q", progress.String())
	}
}

// TestRunStatsWithoutMetrics: the counting side of RunStats is filled
// on every run; only the timing fields are gated on a registry.
func TestRunStatsWithoutMetrics(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{})
	st := r.Stats
	if st.Attempts == 0 || st.Active == 0 || st.Dormant == 0 {
		t.Fatalf("bare run left Stats counts empty: %+v", st)
	}
	if st.Active+st.Dormant != st.Attempts {
		t.Errorf("active %d + dormant %d != attempts %d", st.Active, st.Dormant, st.Attempts)
	}
	if st.ExpandNS != 0 || st.StateKeyNS != 0 {
		t.Errorf("bare run measured timings: expand=%d statekey=%d (hot path should be untimed)",
			st.ExpandNS, st.StateKeyNS)
	}
	if st.Levels == 0 || st.MaxFrontier == 0 || st.NodesExpanded == 0 {
		t.Errorf("level accounting empty: %+v", st)
	}
}

// TestStatsSurviveSerialization: the serializer persists RunStats so
// saved spaces keep their provenance.
func TestStatsSurviveSerialization(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	orig := search.Run(f, search.Options{Metrics: telemetry.NewRegistry()})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := search.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats != orig.Stats {
		t.Fatalf("Stats did not survive the round trip:\nsaved  %+v\nloaded %+v",
			orig.Stats, loaded.Stats)
	}
	if loaded.Stats.ExpandNS == 0 {
		t.Error("timed stats lost in serialization")
	}
}
