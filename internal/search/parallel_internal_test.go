package search

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/rtl"
)

// TestOutcomeRingClearsSlots is the regression test for the outcome
// retention bug: the old level loop reused an outcomes slice across
// chunks and only cleared the prefix, so a quarantined-chunk abort
// could pin dead *rtl.Func clones (and their fingerprint buffers) for
// the rest of the level. The ring's contract is that consuming a slot
// clears it: after take, no pointer to the clone, buffer, equivalence
// encoding or pending entry may remain reachable from the ring.
func TestOutcomeRingClearsSlots(t *testing.T) {
	r := newOutcomeRing()
	fn := &rtl.Func{Name: "retained"}
	buf := fingerprint.GetBuffer()
	defer fingerprint.PutBuffer(buf)
	pend := &pendingNode{key: "k", id: -1}

	const i = int64(5)
	r.put(i, outcome{active: true, fn: fn, buf: buf, equiv: []byte{1}, pend: pend})
	if !r.ready(i) {
		t.Fatal("published outcome not ready")
	}
	o := r.take(i)
	if o.fn != fn || o.buf != buf || o.pend != pend {
		t.Fatal("take returned a different outcome than was published")
	}
	s := &r.slots[i&(ringSize-1)]
	if s.o.fn != nil || s.o.buf != nil || s.o.equiv != nil || s.o.pend != nil || s.o.active {
		t.Fatal("ring slot retains outcome pointers after take")
	}

	// Slot reuse one lap later: the stale seq from lap 0 must not make
	// the next occupant look published before its put.
	if r.ready(i + ringSize) {
		t.Fatal("slot reads ready for the next lap before publication")
	}
	r.put(i+ringSize, outcome{active: true, fn: fn})
	if !r.ready(i + ringSize) {
		t.Fatal("next-lap outcome not ready after put")
	}
	if got := r.take(i + ringSize); got.fn != fn {
		t.Fatal("next-lap take returned the wrong outcome")
	}
}

// TestStripedIndexForcedCollisionConcurrent drives the striped index
// the way a level's worker pool does, with manufactured fingerprint
// collisions so every key lands in one stripe's one bucket — the
// worst case for both the second-tier byte compare and the stripe
// lock. Several goroutines concurrently resolve a mix of committed
// keys (must return the committed ID) and fresh keys (all resolvers
// of one key must converge on a single pending entry); the serial
// commit + promote then files the survivors, including one entry
// committed as an equivalence alias, and the committed tiers must
// resolve every spelling afterwards.
func TestStripedIndexForcedCollisionConcurrent(t *testing.T) {
	ks := newKeyStore()
	d := newDedupIndex(ks)
	const flags = byte(0x05)
	fp := fingerprint.FP{Count: 7, ByteSum: 4242, CRC: 0xFEEDBEEF}

	committedKeys := [][]byte{
		[]byte("committed-instance-0"),
		[]byte("committed-instance-1"),
	}
	for i, k := range committedKeys {
		ks.put(i, string(flags)+string(k))
		d.insert(flags, fp, i)
	}
	freshKeys := make([][]byte, 8)
	for j := range freshKeys {
		freshKeys[j] = []byte(fmt.Sprintf("fresh-instance-%d", j))
	}

	const workers = 8
	pends := make([][]*pendingNode, len(freshKeys))
	for j := range pends {
		pends[j] = make([]*pendingNode, workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, k := range committedKeys {
				dup, pend := d.resolve(flags, fp, k)
				if pend != nil || dup != int32(i) {
					t.Errorf("worker %d: resolve(committed %d) = (%d, %v); want (%d, nil)", w, i, dup, pend, i)
				}
			}
			// Walk the fresh keys in a per-worker order so entry
			// creations and re-probes of the same key interleave.
			for off := 0; off < len(freshKeys); off++ {
				j := (off + w) % len(freshKeys)
				dup, pend := d.resolve(flags, fp, freshKeys[j])
				if pend == nil {
					t.Errorf("worker %d: resolve(fresh %d) returned committed id %d", w, j, dup)
					continue
				}
				pends[j][w] = pend
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every resolver of one key must have been handed the same pending
	// entry — two entries for one key would split a node in two.
	for j := range pends {
		for w := 1; w < workers; w++ {
			if pends[j][w] != pends[j][0] {
				t.Fatalf("fresh key %d: workers 0 and %d hold distinct pending entries", j, w)
			}
		}
	}

	// Serial commit in "attempt order": the first fresh key folds into
	// committed node 0 as an equivalence alias, the rest become nodes.
	nextID := int32(len(committedKeys))
	aliased := pends[0][0]
	aliased.id, aliased.alias = 0, true
	for j := 1; j < len(freshKeys); j++ {
		p := pends[j][0]
		ks.put(int(nextID), p.key)
		p.id = nextID
		nextID++
	}
	d.promote()

	if id, ok := d.lookup(flags, fp, freshKeys[0]); !ok || id != 0 {
		t.Fatalf("aliased spelling resolves to (%d, %v); want the class node (0, true)", id, ok)
	}
	for j := 1; j < len(freshKeys); j++ {
		want := len(committedKeys) + j - 1
		if id, ok := d.lookup(flags, fp, freshKeys[j]); !ok || id != want {
			t.Fatalf("promoted key %d resolves to (%d, %v); want (%d, true)", j, id, ok, want)
		}
	}
	for i, k := range committedKeys {
		if id, ok := d.lookup(flags, fp, k); !ok || id != i {
			t.Fatalf("committed key %d resolves to (%d, %v) after promote", i, id, ok)
		}
	}

	// Counter sanity: every probe hit the same stripe, the forced
	// collisions showed up, and no second pending generation remains.
	c := d.counters()
	wantProbes := int64(workers*(len(committedKeys)+len(freshKeys)) + /* post-promote lookups */ len(freshKeys) + len(committedKeys))
	if c.probes != wantProbes {
		t.Errorf("probes = %d; want %d", c.probes, wantProbes)
	}
	if c.fpCollisions == 0 {
		t.Error("forced collisions produced no fpCollisions count")
	}
	s := &d.stripes[stripeFor(fp)]
	s.mu.Lock()
	pendingLeft := len(s.pending)
	s.mu.Unlock()
	if pendingLeft != 0 {
		t.Errorf("%d pending map entries survive promote", pendingLeft)
	}
}
