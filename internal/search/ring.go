package search

import "sync/atomic"

// ringSize bounds how many evaluated-but-uncommitted outcomes a level
// holds at once — the pipelined replacement for the old 4096-attempt
// chunk barrier's memory bound. Power of two so slot selection is a
// mask. A slot holds at most one live child clone plus one fingerprint
// buffer, so the worst-case transient footprint matches the old
// chunking while workers never stall on a barrier.
const ringSize = 4096

// outcomeSlot is one ring cell. seq is the publication marker: a
// worker fills o and then stores attempt-index+1 (release); the
// committer observes that value (acquire) before reading o, which
// makes the plain o fields safe to hand across goroutines. After the
// committer consumes a slot it zeroes o — the ring must never retain
// a dead *rtl.Func or fingerprint buffer past its commit (they return
// to their pools instead).
type outcomeSlot struct {
	seq atomic.Int64
	o   outcome
}

// outcomeRing is a single-consumer ring buffer carrying evaluation
// outcomes from the workers to the in-order committer. Slot reuse is
// coordinated outside the ring: a worker writes slot i&mask only after
// the committer's published commit count shows i-ringSize was
// consumed, so put never races with a take of the previous occupant.
type outcomeRing struct {
	slots []outcomeSlot
}

func newOutcomeRing() *outcomeRing {
	return &outcomeRing{slots: make([]outcomeSlot, ringSize)}
}

// put publishes the outcome of attempt i.
func (r *outcomeRing) put(i int64, o outcome) {
	s := &r.slots[i&(ringSize-1)]
	s.o = o
	s.seq.Store(i + 1)
}

// ready reports whether attempt i's outcome has been published.
func (r *outcomeRing) ready(i int64) bool {
	return r.slots[i&(ringSize-1)].seq.Load() == i+1
}

// take consumes attempt i's outcome, clearing the slot so the ring
// holds no pointer to the clone or buffer past the commit. The caller
// must have observed ready(i).
func (r *outcomeRing) take(i int64) outcome {
	s := &r.slots[i&(ringSize-1)]
	o := s.o
	s.o = outcome{}
	return o
}
