package search

import (
	"fmt"
	"testing"

	"repro/internal/fingerprint"
)

// TestDedupIndexForcedFPCollision drives the two-tier index with
// manufactured fingerprint collisions: distinct canonical keys filed
// under one (flags, fingerprint) bucket. The enumerated spaces never
// produce such a collision (TestFingerprintTripleCollisionRate), so
// the second-tier byte compare is exercised here directly — it must
// keep the instances distinct and account for every collision in the
// counters.
func TestDedupIndexForcedFPCollision(t *testing.T) {
	ks := newKeyStore()
	d := newDedupIndex(ks)

	const flags = byte(0x05)
	fp := fingerprint.FP{Count: 7, ByteSum: 1234, CRC: 0xDEADBEEF}
	keyA := []byte("instance-A: add r1,r2")
	keyB := []byte("instance-B: sub r3,r4")

	ks.put(0, string(flags)+string(keyA))
	d.insert(flags, fp, 0)
	ks.put(1, string(flags)+string(keyB))
	d.insert(flags, fp, 1)

	if id, ok := d.lookup(flags, fp, keyA); !ok || id != 0 {
		t.Fatalf("lookup(keyA) = %d, %v; want 0, true", id, ok)
	}
	if id, ok := d.lookup(flags, fp, keyB); !ok || id != 1 {
		t.Fatalf("lookup(keyB) = %d, %v; want 1, true", id, ok)
	}
	// keyB shares keyA's bucket, so resolving it first byte-compared
	// against keyA — one real fingerprint collision.
	if c := d.counters(); c.fpCollisions != 1 {
		t.Errorf("fpCollisions = %d after resolving both members; want 1", c.fpCollisions)
	}

	// A third instance with the same fingerprint but different bytes
	// must not match either bucket member.
	if id, ok := d.lookup(flags, fp, []byte("instance-C: distinct")); ok {
		t.Fatalf("lookup(keyC) matched id %d; distinct bytes must not merge", id)
	}
	if c := d.counters(); c.fpCollisions != 3 {
		t.Errorf("fpCollisions = %d after a two-member miss; want 3", c.fpCollisions)
	}

	// Different gating flags are a different first-tier key even with
	// an identical fingerprint: no bucket, no byte compares. (Flags do
	// not select the stripe, so this probe still lands on the same
	// stripe — the miss is the empty bucket, not a different shard.)
	before := d.counters().byteCompares
	if _, ok := d.lookup(flags^1, fp, keyA); ok {
		t.Fatal("lookup with different flags must miss")
	}
	if c := d.counters(); c.byteCompares != before {
		t.Errorf("byteCompares grew by %d on an empty bucket; want 0", c.byteCompares-before)
	}
	if c := d.counters(); c.probes != 4 {
		t.Errorf("probes = %d; want 4", c.probes)
	}
}

// TestDedupIndexCollisionAcrossRetirement repeats the forced-collision
// exercise after the colliding keys' level retires into a compressed
// blob: the byte compare must decompress and still distinguish the
// bucket members.
func TestDedupIndexCollisionAcrossRetirement(t *testing.T) {
	ks := newKeyStore()
	d := newDedupIndex(ks)

	const flags = byte(0x02)
	fp := fingerprint.FP{Count: 3, ByteSum: 99, CRC: 42}
	keys := make([][]byte, 6)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("colliding-instance-%d with shared payload bytes", i))
		ks.put(i, string(flags)+string(keys[i]))
		d.insert(flags, fp, i)
	}

	// Slide the retirement window past the level holding ids 0..5: the
	// first noteLevel marks its start, and keyRetireWindow+1 further
	// levels push it out of the live window.
	ks.noteLevel(0)
	for i := 0; i <= keyRetireWindow; i++ {
		ks.noteLevel(len(keys))
	}
	if ks.retiredThrough != len(keys) {
		t.Fatalf("retiredThrough = %d; want %d", ks.retiredThrough, len(keys))
	}
	if len(ks.live) != 0 {
		t.Fatalf("%d live keys remain after retirement", len(ks.live))
	}

	for i, k := range keys {
		id, ok := d.lookup(flags, fp, k)
		if !ok || id != i {
			t.Fatalf("lookup(keys[%d]) = %d, %v after retirement; want %d, true", i, id, ok, i)
		}
	}
	if id, ok := d.lookup(flags, fp, []byte("absent instance")); ok {
		t.Fatalf("absent key matched id %d in retired bucket", id)
	}

	// The blob must cost less than the raw keys it replaced, and the
	// index must report it.
	var raw int
	for _, k := range keys {
		raw += len(k) + 1
	}
	if rb := ks.retainedBytes(); rb >= raw {
		t.Errorf("retainedBytes = %d; want < %d (compression)", rb, raw)
	}
	if d.retainedBytes() <= ks.retainedBytes() {
		t.Errorf("index retainedBytes %d should exceed store's %d by the bucket entries",
			d.retainedBytes(), ks.retainedBytes())
	}
}
