package search_test

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/search"
)

// TestBatchNeverBeatsExhaustiveOptimum: the batch compiler's result is
// one path through the space, so the exhaustive optimum must be at
// least as good — on every function whose space fits the test budget.
// A batch result better than the "exhaustive" optimum would prove the
// enumeration incomplete.
func TestBatchNeverBeatsExhaustiveOptimum(t *testing.T) {
	d := machine.StrongARM()
	for _, tc := range []struct{ src, fn string }{
		{sumSrc, "sum"},
		{smallSrc, "clamp"},
	} {
		_, f := compileFunc(t, tc.src, tc.fn)
		r := search.Run(f, search.Options{MaxNodes: 50000})
		if r.Aborted {
			continue
		}
		batch := f.Clone()
		driver.Optimize(batch, d) // no entry/exit fixup: spaces are pre-fixup
		opt := r.OptimalCodeSize().NumInstrs
		if batch.NumInstrs() < opt {
			t.Errorf("%s: batch (%d instrs) beats the exhaustive optimum (%d): enumeration incomplete",
				tc.fn, batch.NumInstrs(), opt)
		}
	}
}

// TestBatchResultInsideSpace: the batch compiler's final instance must
// appear in the enumerated DAG (its active sequence is one of the
// orderings the space covers).
func TestBatchResultInsideSpace(t *testing.T) {
	d := machine.StrongARM()
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{KeepFuncs: true})
	batch := f.Clone()
	driver.Optimize(batch, d)

	found := false
	for _, n := range r.Nodes {
		if n.NumInstrs == batch.NumInstrs() && r.Instance(n).String() == batch.String() {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("batch result not found in the enumerated space:\n%s", batch)
	}
}
