package search

import (
	"fmt"

	"repro/internal/fingerprint"
	"repro/internal/interp"
	"repro/internal/rtl"
)

// DynamicEstimate is the inferred execution cost of one instance.
type DynamicEstimate struct {
	Node *Node
	// Instrs is the estimated dynamic instruction count contributed by
	// this function during the program run.
	Instrs int64
	// Measured reports whether this instance was actually executed
	// (the representative of its control-flow class) rather than
	// inferred.
	Measured bool
}

// EstimateDynamicCounts implements the paper's Section 7 proposal for
// finding the best-performing instance without executing every one:
// instances with the same control flow share block execution
// frequencies, so the harness executes one representative per distinct
// control flow (column CF of Table 3) and infers the dynamic
// instruction count of every other instance in the class as
//
//	sum over blocks b of freq(b) * size(b).
//
// prog is the whole program containing the enumerated function; entry
// and args drive the run. The function returns one estimate per node
// given, plus the number of actual executions performed.
func (r *Result) EstimateDynamicCounts(prog *rtl.Program, entry string, args []int32, nodes []*Node) ([]DynamicEstimate, int, error) {
	type classInfo struct {
		freqs []int64 // per layout-position block execution counts
	}
	classes := make(map[fingerprint.Key]*classInfo)
	estimates := make([]DynamicEstimate, 0, len(nodes))
	executions := 0

	for _, n := range nodes {
		inst := r.Instance(n)
		ci := classes[n.CFKey]
		measured := false
		if ci == nil {
			// Execute the representative with block profiling.
			mod := prog.Clone()
			replaced := false
			for i := range mod.Funcs {
				if mod.Funcs[i].Name == inst.Name {
					mod.Funcs[i] = inst
					replaced = true
				}
			}
			if !replaced {
				return nil, 0, fmt.Errorf("search: program has no function %q", inst.Name)
			}
			m := interp.New(mod, interp.Limits{})
			m.Profile(inst.Name)
			if _, err := m.Run(entry, args...); err != nil {
				return nil, 0, fmt.Errorf("search: executing representative of class: %w", err)
			}
			ci = &classInfo{freqs: m.BlockCounts()}
			classes[n.CFKey] = ci
			executions++
			measured = true
		}
		if len(ci.freqs) != len(inst.Blocks) {
			return nil, 0, fmt.Errorf("search: control-flow class mismatch for node %d", n.ID)
		}
		var total int64
		for i, b := range inst.Blocks {
			total += ci.freqs[i] * int64(len(b.Instrs))
		}
		estimates = append(estimates, DynamicEstimate{Node: n, Instrs: total, Measured: measured})
	}
	return estimates, executions, nil
}

// BestDynamicCount returns the leaf with the lowest estimated dynamic
// instruction count, together with all estimates and the number of
// executions the control-flow classes saved.
func (r *Result) BestDynamicCount(prog *rtl.Program, entry string, args []int32) (best DynamicEstimate, all []DynamicEstimate, executions int, err error) {
	leaves := r.Leaves()
	all, executions, err = r.EstimateDynamicCounts(prog, entry, args, leaves)
	if err != nil {
		return DynamicEstimate{}, nil, 0, err
	}
	for _, e := range all {
		if best.Node == nil || e.Instrs < best.Instrs {
			best = e
		}
	}
	return best, all, executions, nil
}
