package search_test

import (
	"math/big"
	"reflect"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/interp"
	"repro/internal/mc"
	"repro/internal/rtl"
	"repro/internal/search"
)

const sumSrc = `
int a[16] = {5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`

const smallSrc = `
int clamp(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}`

func compileFunc(t *testing.T, src, name string) (*rtl.Program, *rtl.Func) {
	t.Helper()
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func(name)
	if f == nil {
		t.Fatalf("no function %q", name)
	}
	return prog, f
}

// TestNaiveSpaceGrowth checks the Figure 1 arithmetic the paper quotes:
// 15 phases over the observed worst-case length of 32 is an attempted
// space of 15^32 sequences.
func TestNaiveSpaceGrowth(t *testing.T) {
	v := search.NaiveSpaceSize(15, 32)
	want, _ := new(big.Int).SetString("43143988327398919500410556793212890625", 10)
	if want == nil || v.Cmp(want) != 0 {
		t.Fatalf("15^32 = %v", v)
	}
	// ~4.3e37 attempted sequences: the infeasibility the paper leads
	// with.
	if len(v.String()) != 38 {
		t.Fatalf("15^32 has %d digits", len(v.String()))
	}
	if search.NaiveSpaceSize(4, 2).Int64() != 16 {
		t.Fatal("4^2 != 16")
	}
	// Total of lengths 1..2 over 4 phases: 4 + 16 (Figure 1's two
	// levels).
	if search.NaiveSpaceTotal(4, 2).Int64() != 20 {
		t.Fatal("naive total wrong")
	}
}

// TestEnumerationBasics checks structural invariants of a full space.
func TestEnumerationBasics(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{KeepFuncs: true})
	if r.Aborted {
		t.Fatalf("aborted: %s", r.AbortReason)
	}
	if len(r.Nodes) < 100 {
		t.Fatalf("suspiciously small space: %d", len(r.Nodes))
	}

	// Node 0 is the root at level 0 with the empty sequence.
	if root := r.Root(); root.Level != 0 || root.Seq != "" {
		t.Fatalf("bad root: %+v", root)
	}

	keys := make(map[string]bool)
	for _, n := range r.Nodes {
		if keys[r.NodeKey(n)] {
			t.Fatalf("duplicate node key at %d", n.ID)
		}
		keys[r.NodeKey(n)] = true
		if n.Level != len(n.Seq) {
			t.Fatalf("node %d: level %d but sequence %q", n.ID, n.Level, n.Seq)
		}
		for _, e := range n.Edges {
			if e.To < 0 || e.To >= len(r.Nodes) {
				t.Fatalf("edge out of range")
			}
		}
	}

	// Every node's replayed instance matches its recorded key and
	// size (spot-check a sample to keep the test quick).
	for i := 0; i < len(r.Nodes); i += len(r.Nodes)/50 + 1 {
		n := r.Nodes[i]
		inst := r.Instance(n)
		if inst.NumInstrs() != n.NumInstrs {
			t.Fatalf("node %d: replay has %d instructions, recorded %d",
				n.ID, inst.NumInstrs(), n.NumInstrs)
		}
		if got := fingerprint.Of(inst); got != n.FP {
			t.Fatalf("node %d: replay fingerprint %+v, recorded %+v", n.ID, got, n.FP)
		}
	}
}

// TestDAGNotTree: different orderings of independent phases must merge
// (the Figure 4 collapse), so the node count is far below the path
// count.
func TestDAGNotTree(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{})
	paths := 0
	for _, n := range r.Nodes {
		in := 0
		for _, m := range r.Nodes {
			for _, e := range m.Edges {
				if e.To == n.ID {
					in++
				}
			}
		}
		if in > 1 {
			paths++
		}
	}
	if paths == 0 {
		t.Fatal("no node has multiple predecessors: the space degenerated to a tree")
	}
}

// TestNaiveReplayProducesIdenticalSpace: the Figure 6 evaluation
// enhancements must not change the enumerated space, only its cost.
func TestNaiveReplayProducesIdenticalSpace(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	shared := search.Run(f, search.Options{})
	naive := search.Run(f, search.Options{NaiveReplay: true})
	if len(shared.Nodes) != len(naive.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(shared.Nodes), len(naive.Nodes))
	}
	for i := range shared.Nodes {
		if shared.NodeKey(shared.Nodes[i]) != naive.NodeKey(naive.Nodes[i]) {
			t.Fatalf("node %d keys differ", i)
		}
		if !reflect.DeepEqual(shared.Nodes[i].Edges, naive.Nodes[i].Edges) {
			t.Fatalf("node %d edges differ", i)
		}
	}
	if shared.AttemptedPhases != naive.AttemptedPhases {
		t.Fatalf("attempted counts differ: %d vs %d", shared.AttemptedPhases, naive.AttemptedPhases)
	}
}

// TestDeterministicAcrossWorkers: the same space regardless of
// parallelism.
func TestDeterministicAcrossWorkers(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	a := search.Run(f, search.Options{Workers: 1})
	b := search.Run(f, search.Options{Workers: 8})
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.NodeKey(a.Nodes[i]) != b.NodeKey(b.Nodes[i]) || a.Nodes[i].Seq != b.Nodes[i].Seq {
			t.Fatalf("node %d differs between worker counts", i)
		}
	}
}

// TestDormantPrunedCountBounds: the Figure 2 tree is no larger than
// the naive space and no smaller than the Figure 4 DAG.
func TestDormantPrunedCountBounds(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	depth := 4
	tree := search.DormantPrunedCount(f, depth, search.Options{})

	r := search.Run(f, search.Options{})
	dag := 0
	for _, n := range r.Nodes {
		if n.Level >= 1 && n.Level <= depth {
			dag++
		}
	}
	naive := search.NaiveSpaceTotal(15, depth)

	if tree.Cmp(naive) > 0 {
		t.Fatalf("dormant-pruned tree (%v) larger than naive space (%v)", tree, naive)
	}
	if tree.Cmp(big.NewInt(int64(dag))) < 0 {
		t.Fatalf("dormant-pruned tree (%v) smaller than DAG prefix (%d)", tree, dag)
	}
}

// TestSearchAbortsOnNodeCap reproduces the paper's "too big" marking.
func TestSearchAbortsOnNodeCap(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{MaxNodes: 50})
	if !r.Aborted {
		t.Fatal("expected the search to abort at the node cap")
	}
}

// TestSearchAbortsOnLevelCap mirrors the one-million-sequences rule.
func TestSearchAbortsOnLevelCap(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	r := search.Run(f, search.Options{MaxSeqPerLevel: 10})
	if !r.Aborted {
		t.Fatal("expected the search to abort at the level cap")
	}
}

// TestBestCodeSizeIsMinimalLeaf: BestCodeSize agrees with a manual
// scan.
func TestBestCodeSizeIsMinimalLeaf(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{})
	best := r.BestCodeSize()
	for _, n := range r.Leaves() {
		if n.NumInstrs < best.NumInstrs {
			t.Fatalf("leaf %d smaller than BestCodeSize", n.ID)
		}
	}
}

// TestWholeSpaceDifferential enumerates a function with the verifier
// executing every instance against the unoptimized behaviour — the
// strongest correctness statement about the whole space.
func TestWholeSpaceDifferential(t *testing.T) {
	prog, f := compileFunc(t, smallSrc, "clamp")
	argsets := [][]int32{{5, 0, 10}, {-3, 0, 10}, {42, 0, 10}, {7, 7, 7}}
	type obs struct {
		ret   int32
		trace []int32
	}
	refFor := func(p *rtl.Program) []obs {
		var out []obs
		for _, a := range argsets {
			res, err := interp.Run(p, "clamp", a...)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, obs{res.Ret, res.Trace})
		}
		return out
	}
	want := refFor(prog)

	verifier := func(inst *rtl.Func) error {
		mod := prog.Clone()
		for i := range mod.Funcs {
			if mod.Funcs[i].Name == "clamp" {
				mod.Funcs[i] = inst
			}
		}
		got := refFor(mod)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("instance misbehaves:\n%s", inst)
		}
		return nil
	}
	r := search.Run(f, search.Options{Verifier: verifier})
	if r.Aborted {
		t.Fatalf("aborted: %s", r.AbortReason)
	}
	t.Logf("verified %d instances", len(r.Nodes))
}

// TestNodesPerLevel sums to the node count.
func TestNodesPerLevel(t *testing.T) {
	_, f := compileFunc(t, smallSrc, "clamp")
	r := search.Run(f, search.Options{})
	per := search.NodesPerLevel(r)
	total := 0
	for _, n := range per {
		total += n
	}
	if total != len(r.Nodes) {
		t.Fatalf("per-level sum %d != %d nodes", total, len(r.Nodes))
	}
	if per[0] != 1 {
		t.Fatalf("level 0 must hold exactly the root")
	}
}
