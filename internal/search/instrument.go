package search

import (
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// RunStats summarizes where one enumeration spent its effort: the
// quantities behind the paper's feasibility claim (nodes expanded,
// dormant prunes, identical-instance merges) plus the measured cost of
// the two hot operations, attempt evaluation and state-key hashing.
// It is filled on every Run — the counts are plain integer updates on
// the serial merge path — and persisted by the space serializer so
// saved spaces keep their provenance. The *NS timing fields are only
// populated when Options.Metrics is set.
type RunStats struct {
	// NodesExpanded counts frontier nodes whose candidate phases were
	// all evaluated (levels cut short by an abort are not counted).
	NodesExpanded int `json:"nodes_expanded"`
	// Attempts counts phase applications evaluated; Active and Dormant
	// partition them by outcome (Dormant = first pruning technique).
	Attempts int `json:"attempts"`
	Active   int `json:"active"`
	Dormant  int `json:"dormant"`
	// Merged counts active results whose canonical key matched an
	// existing node (second pruning technique: the DAG merge).
	Merged int `json:"merged"`
	// Quarantined counts attempts whose phase panicked or outlived the
	// watchdog; each one produced a quarantined dead-end node and its
	// subtree was skipped. Attempts = Active + Dormant + Quarantined.
	Quarantined int `json:"quarantined,omitempty"`
	// Edges is the number of DAG edges; Levels the explored depth;
	// MaxFrontier the widest level.
	Edges       int `json:"edges"`
	Levels      int `json:"levels"`
	MaxFrontier int `json:"max_frontier"`
	// StateKeyNS and ExpandNS total the time hashing canonical state
	// keys and evaluating attempts (clone + phase + verify) summed
	// over workers; zero unless Options.Metrics was set.
	StateKeyNS int64 `json:"state_key_ns,omitempty"`
	ExpandNS   int64 `json:"expand_ns,omitempty"`
}

// instruments carries Run's live counters. The fields written from
// worker goroutines (expandNS, levelDone) and every field the progress
// reporter goroutine reads are atomics; the rest are updated on the
// serial merge path only.
type instruments struct {
	fnName string
	start  time.Time

	// log receives the structured control-path events Options.Logger
	// promises. Nil when no logger is attached; every call site guards,
	// so the worker hot paths stay log-free either way.
	log *slog.Logger

	nodes, edges, attempts, active, dormant, merged atomic.Int64
	quarantined                                     atomic.Int64
	level, frontier, levelPending, levelDone        atomic.Int64
	levelStartNS                                    atomic.Int64
	stateKeyNS, expandNS                            atomic.Int64
	nodesExpanded, maxFrontier                      int

	// timed gates the time.Now() pairs on the hot paths; set only when
	// a metrics registry is attached.
	timed                      bool
	mNodes, mEdges, mAttempts  *telemetry.Counter
	mActive, mDormant, mMerged *telemetry.Counter
	mEquivMerged               *telemetry.Counter
	mQuarantined               *telemetry.Counter
	mCkptWrites, mCkptFailures *telemetry.Counter
	mStateKey, mExpand         *telemetry.Histogram
	gFrontier, gLevel          *telemetry.Gauge
	tracer                     *telemetry.Tracer

	// Striped-index counters. Each stripe counts under its own lock;
	// observeIndex aggregates across stripes and flushes the deltas
	// into the registry at level boundaries. The values depend on
	// probe interleaving (they are telemetry, never serialized into
	// the space format); the stripe.* pair exposes lock contention:
	// acquisitions counts stripe-lock takes, contended the takes that
	// found the lock held.
	mIdxProbes, mIdxByteCmps, mIdxFPColls *telemetry.Counter
	mIdxStripeAcq, mIdxStripeCont         *telemetry.Counter
	gIdxRetained                          *telemetry.Gauge
	idxFlushed                            indexCounters
}

func newInstruments(opts *Options, fnName string, start time.Time) *instruments {
	ins := &instruments{fnName: fnName, start: start, tracer: opts.Tracer, log: opts.Logger}
	if reg := opts.Metrics; reg != nil {
		ins.timed = true
		ins.mNodes = reg.Counter("search.nodes")
		ins.mEdges = reg.Counter("search.edges")
		ins.mAttempts = reg.Counter("search.attempts")
		ins.mActive = reg.Counter("search.active")
		ins.mDormant = reg.Counter("search.dormant")
		ins.mMerged = reg.Counter("search.merged")
		ins.mEquivMerged = reg.Counter("search.equiv.merged")
		ins.mQuarantined = reg.Counter("search.quarantined")
		ins.mCkptWrites = reg.Counter("search.checkpoint.writes")
		ins.mCkptFailures = reg.Counter("search.checkpoint.failures")
		ins.mStateKey = reg.Histogram("search.statekey.duration_ns")
		ins.mExpand = reg.Histogram("search.expand.duration_ns")
		ins.gFrontier = reg.Gauge("search.frontier")
		ins.gLevel = reg.Gauge("search.level")
		ins.mIdxProbes = reg.Counter("search.index.probes")
		ins.mIdxByteCmps = reg.Counter("search.index.bytecompares")
		ins.mIdxFPColls = reg.Counter("search.index.fpcollisions")
		ins.mIdxStripeAcq = reg.Counter("search.index.stripe.acquisitions")
		ins.mIdxStripeCont = reg.Counter("search.index.stripe.contended")
		ins.gIdxRetained = reg.Gauge("search.index.retained_bytes")
	}
	return ins
}

// observeIndex flushes the striped index's aggregated probe and
// contention counters into the metrics registry and refreshes the
// retained-memory gauge. Called at level boundaries on the serial
// path, with no workers running.
func (ins *instruments) observeIndex(d *dedupIndex) {
	c := d.counters()
	ins.mIdxProbes.Add(c.probes - ins.idxFlushed.probes)
	ins.mIdxByteCmps.Add(c.byteCompares - ins.idxFlushed.byteCompares)
	ins.mIdxFPColls.Add(c.fpCollisions - ins.idxFlushed.fpCollisions)
	ins.mIdxStripeAcq.Add(c.acquisitions - ins.idxFlushed.acquisitions)
	ins.mIdxStripeCont.Add(c.contended - ins.idxFlushed.contended)
	ins.idxFlushed = c
	ins.gIdxRetained.Set(int64(d.retainedBytes()))
}

// beginLevel records the shape of the level about to be evaluated.
func (ins *instruments) beginLevel(level, frontier, pending int) {
	ins.level.Store(int64(level))
	ins.frontier.Store(int64(frontier))
	ins.levelPending.Store(int64(pending))
	ins.levelDone.Store(0)
	ins.levelStartNS.Store(time.Now().UnixNano())
	ins.attempts.Add(int64(pending))
	ins.mAttempts.Add(int64(pending))
	ins.gLevel.Set(int64(level))
	ins.gFrontier.Set(int64(frontier))
	if frontier > ins.maxFrontier {
		ins.maxFrontier = frontier
	}
}

// observeExpand records one evaluated attempt from a worker.
func (ins *instruments) observeExpand(began time.Time) {
	if ins.timed {
		d := int64(time.Since(began))
		ins.expandNS.Add(d)
		ins.mExpand.Observe(d)
	}
	ins.levelDone.Add(1)
}

// observeStateKey records one canonical key computation (serial path).
func (ins *instruments) observeStateKey(began time.Time) {
	d := int64(time.Since(began))
	ins.stateKeyNS.Add(d)
	ins.mStateKey.Observe(d)
}

// observeOutcome tallies one merged attempt on the serial path.
func (ins *instruments) observeOutcome(activeOut, isNew bool) {
	if !activeOut {
		ins.dormant.Add(1)
		ins.mDormant.Inc()
		return
	}
	ins.active.Add(1)
	ins.mActive.Inc()
	ins.edges.Add(1)
	ins.mEdges.Inc()
	if isNew {
		ins.nodes.Add(1)
		ins.mNodes.Inc()
	} else {
		ins.merged.Add(1)
		ins.mMerged.Inc()
	}
}

// observeEquivMerge tallies one equivalence-tier fold (a raw-distinct
// instance merged into an existing class) on the serial path. The fold
// already counted as a merge in observeOutcome; this counter isolates
// the third tier's contribution.
func (ins *instruments) observeEquivMerge() {
	ins.mEquivMerged.Inc()
}

// observeQuarantine tallies one quarantined attempt on the serial
// path: it contributes a node and an edge, but neither an active nor a
// dormant outcome.
func (ins *instruments) observeQuarantine() {
	ins.quarantined.Add(1)
	ins.mQuarantined.Inc()
	ins.edges.Add(1)
	ins.mEdges.Inc()
	ins.nodes.Add(1)
	ins.mNodes.Inc()
}

// seed preloads the counters from a checkpoint's persisted RunStats so
// a resumed run continues the accounting exactly where the interrupted
// one left off — the precondition for resumed spaces serializing
// byte-identically to uninterrupted ones.
func (ins *instruments) seed(st RunStats, nodes int) {
	ins.nodes.Store(int64(nodes))
	ins.edges.Store(int64(st.Edges))
	ins.attempts.Store(int64(st.Attempts))
	ins.active.Store(int64(st.Active))
	ins.dormant.Store(int64(st.Dormant))
	ins.merged.Store(int64(st.Merged))
	ins.quarantined.Store(int64(st.Quarantined))
	ins.level.Store(int64(st.Levels))
	ins.stateKeyNS.Store(st.StateKeyNS)
	ins.expandNS.Store(st.ExpandNS)
	ins.nodesExpanded = st.NodesExpanded
	ins.maxFrontier = st.MaxFrontier
}

// progressLine renders the one-line status tick: nodes, frontier,
// prune rates and an ETA for the current level extrapolated from its
// attempt throughput. It runs on the reporter goroutine and reads
// atomics only.
func (ins *instruments) progressLine() string {
	dormant := ins.dormant.Load()
	activeN := ins.active.Load()
	merged := ins.merged.Load()
	done := ins.levelDone.Load()
	pending := ins.levelPending.Load()

	pct := func(part, whole int64) float64 {
		if whole == 0 {
			return 0
		}
		return 100 * float64(part) / float64(whole)
	}
	eta := "?"
	if elapsed := time.Since(time.Unix(0, ins.levelStartNS.Load())); done > 0 && elapsed > 0 {
		rate := float64(done) / elapsed.Seconds()
		if rate > 0 {
			eta = (time.Duration(float64(pending-done) / rate * float64(time.Second))).Round(time.Second).String()
		}
	}
	return fmt.Sprintf(
		"search %s: level %d | %d nodes, frontier %d | level %d/%d attempts (eta %s) | dormant %.1f%%, merged %.1f%% | %s",
		ins.fnName, ins.level.Load(), ins.nodes.Load(), ins.frontier.Load(),
		done, pending, eta,
		pct(dormant, dormant+activeN), pct(merged, activeN),
		time.Since(ins.start).Round(time.Second))
}

// runStats folds the live counters into the persisted summary.
func (ins *instruments) runStats() RunStats {
	return RunStats{
		NodesExpanded: ins.nodesExpanded,
		Attempts:      int(ins.attempts.Load()),
		Active:        int(ins.active.Load()),
		Dormant:       int(ins.dormant.Load()),
		Merged:        int(ins.merged.Load()),
		Quarantined:   int(ins.quarantined.Load()),
		Edges:         int(ins.edges.Load()),
		Levels:        int(ins.level.Load()),
		MaxFrontier:   ins.maxFrontier,
		StateKeyNS:    ins.stateKeyNS.Load(),
		ExpandNS:      ins.expandNS.Load(),
	}
}
