package search_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/search"
)

// pauseAt runs a warmup enumeration that pauses once the frontier
// holds at least k nodes, failing the test if the space completes
// before the frontier ever grows that wide.
func pauseAt(t *testing.T, src, fn string, k int) *search.Result {
	t.Helper()
	_, f := compileFunc(t, src, fn)
	warmup := search.Run(f, search.Options{StopAtFrontier: k})
	if warmup.Aborted {
		t.Fatalf("warmup aborted: %s", warmup.AbortReason)
	}
	if warmup.Checkpoint == nil {
		t.Fatalf("warmup completed before the frontier reached %d nodes; pick a larger test function", k)
	}
	if len(warmup.Checkpoint.Frontier) < k {
		t.Fatalf("paused with %d frontier nodes, want >= %d", len(warmup.Checkpoint.Frontier), k)
	}
	return warmup
}

// completeShard loads one partition document and enumerates it to
// completion. With kill set, the run is first interrupted mid-level
// (the in-process analog of SIGKILL on the worker holding the shard),
// then re-dispatched from its last checkpoint — the exact recovery
// path the coordinator drives over the wire.
func completeShard(t *testing.T, doc []byte, kill bool, faults *faultinject.Plan) *search.Result {
	t.Helper()
	loaded, err := search.Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("loading shard document: %v", err)
	}
	if loaded.Checkpoint == nil {
		t.Fatal("shard document has no checkpoint frontier")
	}
	if !kill {
		res, err := search.Resume(loaded, search.Options{Faults: faults})
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		return res
	}
	ckpt := filepath.Join(t.TempDir(), "shard.ckpt.space.gz")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted, err := search.Resume(loaded, search.Options{
		Ctx:            ctx,
		Verifier:       cancelAfter(cancel, 20),
		CheckpointPath: ckpt,
		Faults:         faults,
	})
	if err != nil {
		t.Fatalf("interrupted resume: %v", err)
	}
	if !interrupted.Aborted {
		return interrupted // finished before the kill landed
	}
	reloaded, err := search.LoadFile(ckpt)
	if err != nil {
		t.Fatalf("reloading killed shard checkpoint: %v", err)
	}
	res, err := search.Resume(reloaded, search.Options{Faults: faults})
	if err != nil {
		t.Fatalf("re-dispatch resume: %v", err)
	}
	return res
}

// TestShardMergeDeterminismTable is the sharding tentpole's byte-
// identity contract: partition a paused enumeration's frontier into K
// shards, complete each shard independently (optionally SIGKILLing one
// mid-level and re-dispatching it from its checkpoint), merge the
// sub-spaces, and the merged space — and the equivalence space derived
// from it — must serialize canonically to exactly the bytes the
// single-node runs produce. Run under -race (the Makefile race target
// covers this package).
func TestShardMergeDeterminismTable(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	ref := search.Run(f, search.Options{})
	if ref.Aborted {
		t.Fatalf("reference run aborted: %s", ref.AbortReason)
	}
	wantDefault := canonical(t, ref)
	refEquiv := search.Run(f, search.Options{Equiv: true})
	if refEquiv.Aborted {
		t.Fatalf("equiv reference run aborted: %s", refEquiv.AbortReason)
	}
	wantEquiv := canonical(t, refEquiv)

	for _, k := range []int{1, 2, 4} {
		warmup := pauseAt(t, sumSrc, "sum", k)
		docs, ids, err := search.PartitionCheckpoint(warmup, k)
		if err != nil {
			t.Fatalf("k=%d: partition: %v", k, err)
		}
		if len(docs) != k {
			t.Fatalf("k=%d: got %d shard documents", k, len(docs))
		}
		for _, kill := range []bool{false, true} {
			t.Run(fmt.Sprintf("k=%d,kill=%v", k, kill), func(t *testing.T) {
				shards := make([]search.ShardSpace, len(docs))
				for i, doc := range docs {
					// The kill cell SIGKILLs the last shard holder: with
					// k=1 that is the whole enumeration, with k>1 the
					// other shards complete cleanly alongside it.
					victim := kill && i == len(docs)-1
					shards[i] = search.ShardSpace{
						Res:         completeShard(t, doc, victim, nil),
						FrontierIDs: ids[i],
					}
				}
				merged, err := search.MergeShards(warmup, shards)
				if err != nil {
					t.Fatalf("merge: %v", err)
				}
				if merged.Aborted {
					t.Fatalf("merged result aborted: %s", merged.AbortReason)
				}
				if !bytes.Equal(canonical(t, merged), wantDefault) {
					t.Fatalf("merged space differs from the single-node run")
				}
				derived, err := search.DeriveEquiv(merged, search.Options{})
				if err != nil {
					t.Fatalf("derive-equiv: %v", err)
				}
				if !bytes.Equal(canonical(t, derived), wantEquiv) {
					t.Fatalf("derived equiv space differs from the single-node equiv run")
				}
			})
		}
	}
}

// TestPartitionCheckpointShape checks the partitioner's invariants:
// deterministic documents, a disjoint cover of the frontier in
// discovery order, sizes differing by at most one, and every document
// independently loadable with the full node table.
func TestPartitionCheckpointShape(t *testing.T) {
	const k = 3
	warmup := pauseAt(t, sumSrc, "sum", k)
	docs, ids, err := search.PartitionCheckpoint(warmup, k)
	if err != nil {
		t.Fatal(err)
	}
	docs2, _, err := search.PartitionCheckpoint(warmup, k)
	if err != nil {
		t.Fatal(err)
	}
	frontier := warmup.Checkpoint.Frontier
	var seen []int
	min, max := len(frontier), 0
	for i := range docs {
		if !bytes.Equal(docs[i], docs2[i]) {
			t.Fatalf("shard %d document is not deterministic", i)
		}
		if len(ids[i]) == 0 {
			t.Fatalf("shard %d is empty", i)
		}
		if len(ids[i]) < min {
			min = len(ids[i])
		}
		if len(ids[i]) > max {
			max = len(ids[i])
		}
		seen = append(seen, ids[i]...)
		loaded, err := search.Load(bytes.NewReader(docs[i]))
		if err != nil {
			t.Fatalf("shard %d does not load: %v", i, err)
		}
		if len(loaded.Nodes) != len(warmup.Nodes) {
			t.Fatalf("shard %d carries %d nodes, base has %d", i, len(loaded.Nodes), len(warmup.Nodes))
		}
		if loaded.Checkpoint == nil || len(loaded.Checkpoint.Frontier) != len(ids[i]) {
			t.Fatalf("shard %d checkpoint does not match its frontier subset", i)
		}
		for j, n := range loaded.Checkpoint.Frontier {
			if n.ID != ids[i][j] {
				t.Fatalf("shard %d frontier[%d] = node %d, want %d", i, j, n.ID, ids[i][j])
			}
		}
	}
	if max-min > 1 {
		t.Fatalf("shard sizes range from %d to %d, want a difference of at most 1", min, max)
	}
	if len(seen) != len(frontier) {
		t.Fatalf("shards cover %d frontier nodes, base frontier has %d", len(seen), len(frontier))
	}
	for i, n := range frontier {
		if seen[i] != n.ID {
			t.Fatalf("cover[%d] = node %d, want %d (discovery order)", i, seen[i], n.ID)
		}
	}
}

// TestStopAtFrontierResumeInMemory checks the warmup pause composes
// with a direct in-memory Resume: pausing and continuing yields the
// reference space without any serialization round trip.
func TestStopAtFrontierResumeInMemory(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	want := canonical(t, search.Run(f, search.Options{}))
	warmup := pauseAt(t, sumSrc, "sum", 2)
	resumed, err := search.Resume(warmup, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Aborted {
		t.Fatalf("resumed run aborted: %s", resumed.AbortReason)
	}
	if !bytes.Equal(canonical(t, resumed), want) {
		t.Fatal("pause + in-memory resume differs from the uninterrupted run")
	}
}

// TestDeriveEquivMatchesDirectRun checks equivalence derivation on its
// own, without sharding: for several functions (and with the semantic
// checker on, so CheckErr records must survive the derivation), the
// space derived from a complete default-tier run is byte-identical to
// running the equivalence tier directly.
func TestDeriveEquivMatchesDirectRun(t *testing.T) {
	cases := []struct {
		src, fn string
		check   bool
	}{
		{smallSrc, "clamp", false},
		{gcdSrc, "gcd", false},
		{sumSrc, "sum", false},
		{sumSrc, "sum", true},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s,check=%v", tc.fn, tc.check), func(t *testing.T) {
			_, f := compileFunc(t, tc.src, tc.fn)
			full := search.Run(f, search.Options{Check: tc.check})
			if full.Aborted {
				t.Fatalf("default run aborted: %s", full.AbortReason)
			}
			want := search.Run(f, search.Options{Equiv: true, Check: tc.check})
			if want.Aborted {
				t.Fatalf("equiv run aborted: %s", want.AbortReason)
			}
			got, err := search.DeriveEquiv(full, search.Options{Check: tc.check})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canonical(t, got), canonical(t, want)) {
				t.Fatal("derived equiv space differs from the direct equiv run")
			}
			if got.Equiv.Raw != want.Equiv.Raw || got.Equiv.Merged != want.Equiv.Merged {
				t.Fatalf("equiv stats differ: derived %d/%d raw/merged, direct %d/%d",
					got.Equiv.Raw, got.Equiv.Merged, want.Equiv.Raw, want.Equiv.Merged)
			}
		})
	}
}

// TestShardMergeQuarantineParity injects a deterministic phase panic
// at a frontier-node attempt — frontier sequences are fixed by the
// base table, so the same attempt quarantines in the owning shard and
// in the single-node reference — and checks the quarantine record
// survives partition, shard enumeration and merge byte-identically.
func TestShardMergeQuarantineParity(t *testing.T) {
	_, f := compileFunc(t, sumSrc, "sum")
	const k = 2
	warmup := pauseAt(t, sumSrc, "sum", k)

	// Pick a phase that is active at the first frontier node: the
	// reference space records its expansion under the same sequence.
	ref := search.Run(f, search.Options{})
	bySeq := make(map[string]*search.Node, len(ref.Nodes))
	for _, n := range ref.Nodes {
		bySeq[n.Seq] = n
	}
	var seq string
	var phase byte
	for _, n := range warmup.Checkpoint.Frontier {
		if rn := bySeq[n.Seq]; rn != nil && len(rn.Edges) > 0 {
			seq, phase = n.Seq, rn.Edges[0].Phase
			break
		}
	}
	if seq == "" {
		t.Fatal("no expandable frontier node in the reference space")
	}
	plan := "panic=" + string(phase) + "@" + seq
	faults := faultinject.MustParse(plan)
	refQ := search.Run(f, search.Options{Faults: faultinject.MustParse(plan)})
	if refQ.Aborted {
		t.Fatalf("faulted reference run aborted: %s", refQ.AbortReason)
	}
	if refQ.Stats.Quarantined == 0 {
		t.Fatal("fault plan never fired in the reference run")
	}

	docs, ids, err := search.PartitionCheckpoint(warmup, k)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]search.ShardSpace, len(docs))
	for i, doc := range docs {
		shards[i] = search.ShardSpace{
			Res:         completeShard(t, doc, false, faults),
			FrontierIDs: ids[i],
		}
	}
	merged, err := search.MergeShards(warmup, shards)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Stats.Quarantined == 0 {
		t.Fatal("quarantine record lost in the merge")
	}
	if !bytes.Equal(canonical(t, merged), canonical(t, refQ)) {
		t.Fatal("merged quarantined space differs from the single-node faulted run")
	}
}

// TestMergeShardsRejectsBadInput checks the merge fails loudly — not
// with a corrupt space — on the inputs the coordinator can actually
// see: incomplete shards, foreign functions, uncovered or
// double-claimed frontier nodes.
func TestMergeShardsRejectsBadInput(t *testing.T) {
	const k = 2
	warmup := pauseAt(t, sumSrc, "sum", k)
	docs, ids, err := search.PartitionCheckpoint(warmup, k)
	if err != nil {
		t.Fatal(err)
	}
	complete := func(i int) *search.Result { return completeShard(t, docs[i], false, nil) }

	if _, err := search.MergeShards(warmup, []search.ShardSpace{
		{Res: complete(0), FrontierIDs: ids[0]},
	}); err == nil {
		t.Fatal("merge accepted an uncovered frontier")
	}
	incomplete, err := search.Load(bytes.NewReader(docs[1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := search.MergeShards(warmup, []search.ShardSpace{
		{Res: complete(0), FrontierIDs: ids[0]},
		{Res: incomplete, FrontierIDs: ids[1]},
	}); err == nil {
		t.Fatal("merge accepted an incomplete shard")
	}
	if _, err := search.MergeShards(warmup, []search.ShardSpace{
		{Res: complete(0), FrontierIDs: ids[0]},
		{Res: complete(1), FrontierIDs: ids[0]},
	}); err == nil {
		t.Fatal("merge accepted a double-claimed frontier subset")
	}
}
