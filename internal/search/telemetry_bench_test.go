package search_test

import (
	"io"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/rtl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// The observability acceptance bar is that a fully instrumented
// enumeration (registry + tracer) stays within a few percent of a bare
// one. Compare:
//
//	go test ./internal/search/ -bench BenchmarkRun -benchtime 10x
//
// BenchmarkRunBare is the baseline; the others layer instruments on.

func benchFunc(b *testing.B) *rtl.Func {
	b.Helper()
	prog, err := mc.Compile(sumSrc)
	if err != nil {
		b.Fatal(err)
	}
	return prog.Func("sum")
}

func benchRun(b *testing.B, opts func() search.Options) {
	f := benchFunc(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := search.Run(f, opts())
		if r.Aborted {
			b.Fatalf("aborted: %s", r.AbortReason)
		}
	}
}

func BenchmarkRunBare(b *testing.B) {
	benchRun(b, func() search.Options { return search.Options{} })
}

func BenchmarkRunMetrics(b *testing.B) {
	benchRun(b, func() search.Options {
		return search.Options{Metrics: telemetry.NewRegistry()}
	})
}

func BenchmarkRunMetricsTrace(b *testing.B) {
	benchRun(b, func() search.Options {
		return search.Options{
			Metrics: telemetry.NewRegistry(),
			Tracer:  telemetry.NewTracer(),
		}
	})
}

func BenchmarkRunProgress(b *testing.B) {
	benchRun(b, func() search.Options {
		return search.Options{
			Metrics:          telemetry.NewRegistry(),
			Tracer:           telemetry.NewTracer(),
			ProgressInterval: 100 * time.Millisecond,
			ProgressWriter:   io.Discard,
		}
	})
}
