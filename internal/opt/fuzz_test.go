package opt_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/randprog"
	"repro/internal/rtl"
)

// TestFuzzRandomPrograms generates random mini-C programs and checks
// that random phase orderings preserve their behaviour. The
// unoptimized interpretation is the oracle, so this exercises the
// whole stack: generator -> frontend -> every phase -> interpreter.
func TestFuzzRandomPrograms(t *testing.T) {
	programs := 40
	if testing.Short() {
		programs = 8
	}
	d := machine.StrongARM()
	all := opt.All()
	for seed := int64(0); seed < int64(programs); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := randprog.New(seed, randprog.Config{})
			prog, err := mc.Compile(p.Source)
			if err != nil {
				t.Fatalf("generated program does not compile: %v\n%s", err, p.Source)
			}
			args := make([]int32, p.Params)
			argRng := rand.New(rand.NewSource(seed ^ 0x5a5a))
			for i := range args {
				args[i] = int32(argRng.Intn(200) - 100)
			}
			ref := observe(prog, p.Entry, args)
			if ref.failed != "" {
				t.Fatalf("reference run failed: %s\n%s", ref.failed, p.Source)
			}

			seqRng := rand.New(rand.NewSource(seed ^ 0x1234))
			for trial := 0; trial < 6; trial++ {
				mod := prog.Clone()
				f := mod.Func(p.Entry)
				var st opt.State
				applied := ""
				for i := 0; i < 12; i++ {
					ph := all[seqRng.Intn(len(all))]
					if opt.Attempt(f, &st, ph, d) {
						applied += string(ph.ID())
					}
					if err := rtl.Validate(f); err != nil {
						t.Fatalf("invalid RTL after %q: %v\n%s\nsource:\n%s",
							applied, err, f, p.Source)
					}
					if err := check.Err(f, d); err != nil {
						t.Fatalf("semantic check failed after %q: %v\n%s\nsource:\n%s",
							applied, err, f, p.Source)
					}
				}
				got := observe(mod, p.Entry, args)
				if !equalObs(ref, got) {
					t.Fatalf("behaviour diverged after %q on args %v\nref %+v\ngot %+v\nsource:\n%s\nfunction:\n%s",
						applied, args, ref, got, p.Source, f)
				}
			}
		})
	}
}

// TestFuzzGeneratedProgramsTerminate double-checks the generator's
// termination guarantee under the interpreter's step limit.
func TestFuzzGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		p := randprog.New(seed, randprog.Config{MaxDepth: 4, MaxStmts: 8})
		prog, err := mc.Compile(p.Source)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p.Source)
		}
		m := interp.New(prog, interp.Limits{MaxSteps: 2_000_000})
		args := make([]int32, p.Params)
		if _, err := m.Run(p.Entry, args...); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p.Source)
		}
	}
}
