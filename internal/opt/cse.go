package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// CommonSubexprElim is phase c: global common subexpression
// elimination, which per Table 1 also includes global constant and
// copy propagation. Fully redundant computations are replaced by a
// move from the register already holding the value; operands with
// known constant values are replaced by immediates when the machine
// allows; uses of a copied register are replaced by the copy source.
type CommonSubexprElim struct{}

// ID returns the paper's designation for the phase.
func (CommonSubexprElim) ID() byte { return 'c' }

// Name returns the paper's name for the phase.
func (CommonSubexprElim) Name() string { return "common subexpression elimination" }

// RequiresRegAssign reports that this dataflow phase runs after the
// compulsory register assignment.
func (CommonSubexprElim) RequiresRegAssign() bool { return true }

// Apply runs the phase. The three sub-passes iterate to a joint
// fixpoint so that an immediately repeated application of the phase is
// always dormant — the property ("no phase in our compiler can be
// applied successfully more than once consecutively", Section 4.1)
// that the exhaustive search's pruning relies on.
func (CommonSubexprElim) Apply(f *rtl.Func, d *machine.Desc) bool {
	// One CFG serves every round: no sub-pass changes block structure
	// or terminators (operand substitution, use replacement and the
	// removal of pure recomputations leave each block's control
	// instruction — and hence the successor sets — untouched).
	g := rtl.ComputeCFG(f)
	sv := newRegSolver(len(f.Blocks), usedRegWidth(f))
	es := newExprSolver(len(f.Blocks))
	changed := false
	for {
		round := false
		if propagateConstants(f, g, sv, d) {
			round = true
		}
		if propagateCopies(f, g, sv) {
			round = true
		}
		if eliminateCommonSubexprs(f, g, es) {
			round = true
		}
		if !round {
			return changed
		}
		changed = true
	}
}

// ---------------------------------------------------------------------------
// Global constant and copy propagation.
//
// Both analyses use flat per-register arrays rather than maps: the
// exhaustive search evaluates these transfer functions hundreds of
// thousands of times, and after register assignment a function only
// touches a handful of registers.

// regCell is one register's lattice slot: for constant propagation
// val holds the known constant, for copy propagation src holds the
// copy source.
type regCell struct {
	known bool
	src   rtl.Reg
	val   int32
}

// regLattice is a forward dataflow state with one slot per register,
// kept in a single pointer-free allocation because the search
// evaluates these transfer functions hundreds of thousands of times.
// A nil *regLattice is TOP.
type regLattice struct {
	cells []regCell
}

// meetInto intersects other into s, reporting whether s changed.
func (s *regLattice) meetInto(other *regLattice) bool {
	changed := false
	for i := range s.cells {
		c := &s.cells[i]
		if !c.known {
			continue
		}
		o := &other.cells[i]
		if !o.known || c.val != o.val || c.src != o.src {
			c.known = false
			changed = true
		}
	}
	return changed
}

func (s *regLattice) equal(o *regLattice) bool {
	for i := range s.cells {
		a, b := &s.cells[i], &o.cells[i]
		if a.known != b.known {
			return false
		}
		if a.known && (a.val != b.val || a.src != b.src) {
			return false
		}
	}
	return true
}

func (s *regLattice) kill(r rtl.Reg) {
	if int(r) < len(s.cells) {
		s.cells[r].known = false
	}
}

// usedRegWidth returns one past the highest register f actually
// references (at least RegIC+1, so the condition-code slot always
// exists). The phase runs after register assignment, where every live
// register is a hardware register: sizing the lattice by NextPseudo
// would make the per-instruction kill loops in the transfer functions
// scan three times as many cells as the function can touch.
func usedRegWidth(f *rtl.Func) int {
	n := int(rtl.RegIC) + 1
	var buf [8]rtl.Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Uses(buf[:0]) {
				if r != rtl.RegNone && int(r) >= n {
					n = int(r) + 1
				}
			}
			for _, r := range in.Defs(buf[:0]) {
				if r != rtl.RegNone && int(r) >= n {
					n = int(r) + 1
				}
			}
		}
	}
	return n
}

// constTransfer updates the constant state across one instruction.
func constTransfer(s *regLattice, in *rtl.Instr) {
	var buf [8]rtl.Reg
	if in.Op == rtl.OpMov && int(in.Dst) < len(s.cells) {
		if in.A.Kind == rtl.OperImm {
			s.cells[in.Dst] = regCell{known: true, val: in.A.Imm, src: rtl.RegNone}
			return
		}
		if in.A.Kind == rtl.OperReg && int(in.A.Reg) < len(s.cells) && s.cells[in.A.Reg].known {
			// Propagate the constant through the copy.
			s.cells[in.Dst] = regCell{known: true, val: s.cells[in.A.Reg].val, src: rtl.RegNone}
			return
		}
	}
	for _, r := range in.Defs(buf[:0]) {
		s.kill(r)
	}
}

// substConstOperand replaces reads of registers with known constants
// by immediate operands where the machine encoding allows it.
func substConstOperand(in *rtl.Instr, s *regLattice, d *machine.Desc) bool {
	changed := false
	constOf := func(o rtl.Operand) (int32, bool) {
		if o.Kind != rtl.OperReg || int(o.Reg) >= len(s.cells) || !s.cells[o.Reg].known {
			return 0, false
		}
		return s.cells[o.Reg].val, true
	}
	switch {
	case in.Op == rtl.OpMov:
		if v, ok := constOf(in.A); ok && d.LegalImm(rtl.OpMov, v) {
			in.A = rtl.Imm(v)
			changed = true
		}
	case in.Op == rtl.OpCmp:
		if v, ok := constOf(in.B); ok && d.LegalImm(rtl.OpCmp, v) {
			in.B = rtl.Imm(v)
			changed = true
		}
	case in.Op.IsALU():
		// Prefer folding into the immediate-capable B position; when
		// only A is constant, commute or use reverse-subtract.
		if v, ok := constOf(in.B); ok && d.LegalImm(in.Op, v) {
			in.B = rtl.Imm(v)
			changed = true
		}
		if v, ok := constOf(in.A); ok && in.B.Kind == rtl.OperReg {
			switch {
			case in.Op.Commutative() && d.LegalImm(in.Op, v):
				in.A, in.B = in.B, rtl.Imm(v)
				changed = true
			case in.Op == rtl.OpSub && d.LegalImm(rtl.OpRsb, v):
				// c - r  ==  rsb r, #c
				in.Op = rtl.OpRsb
				in.A, in.B = in.B, rtl.Imm(v)
				changed = true
			}
		}
	}
	return changed
}

// copyTransfer updates the copy state across one instruction. For a
// copy state, known[d] means src[d] currently holds the same value as
// d.
func copyTransfer(s *regLattice, in *rtl.Instr) {
	var buf [8]rtl.Reg
	if in.Op == rtl.OpMov && in.A.Kind == rtl.OperReg && int(in.Dst) < len(s.cells) {
		src := in.A.Reg
		dst := in.Dst
		// Kill copies reading the overwritten register.
		for i := range s.cells {
			if s.cells[i].known && s.cells[i].src == dst {
				s.cells[i].known = false
			}
		}
		s.cells[dst].known = false
		if dst != src && src != rtl.RegSP && dst != rtl.RegSP && int(src) < len(s.cells) {
			// Propagate through chains so the replacement survives
			// longer.
			final := src
			if s.cells[src].known && s.cells[src].src != rtl.RegNone {
				final = s.cells[src].src
			}
			if final != dst {
				s.cells[dst] = regCell{known: true, src: final}
			}
		}
		return
	}
	for _, r := range in.Defs(buf[:0]) {
		if int(r) >= len(s.cells) {
			continue
		}
		s.cells[r].known = false
		for i := range s.cells {
			if s.cells[i].known && s.cells[i].src == r {
				s.cells[i].known = false
			}
		}
	}
}

// regSolver owns the lattice storage for solve: one pointer-free cell
// array holding every block's entry and exit state plus a scratch
// state. It is allocated once per phase application and reused by
// every sub-pass and fixpoint round — the block count and register
// width are both invariant while the phase runs, and this solver runs
// hundreds of thousands of times per enumeration.
type regSolver struct {
	width int
	cells []regCell
	lat   []regLattice
	ins   []*regLattice
	outs  []*regLattice
}

func newRegSolver(n, width int) *regSolver {
	sv := &regSolver{
		width: width,
		cells: make([]regCell, (2*n+1)*width),
		lat:   make([]regLattice, 2*n),
		ins:   make([]*regLattice, n),
		outs:  make([]*regLattice, n),
	}
	for i := range sv.lat {
		sv.lat[i] = regLattice{cells: sv.cells[i*width : (i+1)*width]}
	}
	return sv
}

// solve runs a forward intersection dataflow with the given transfer
// function and returns per-block entry states (valid until the next
// solve call). The fixpoint iterates with the single scratch state
// instead of cloning per block per pass.
func (sv *regSolver) solve(f *rtl.Func, g *rtl.CFG, transfer func(*regLattice, *rtl.Instr)) []*regLattice {
	n := len(sv.ins)
	lat, ins, outs := sv.lat, sv.ins, sv.outs
	for i := range ins {
		ins[i], outs[i] = nil, nil
	}
	scratch := regLattice{cells: sv.cells[2*n*sv.width:]}
	rpo := g.RPO()
	for changed := true; changed; {
		changed = false
		for _, bpos := range rpo {
			in := &scratch
			if bpos == 0 {
				clear(in.cells)
			} else {
				have := false
				for _, p := range g.Preds[bpos] {
					if outs[p] == nil {
						continue // TOP
					}
					if !have {
						copy(in.cells, outs[p].cells)
						have = true
					} else {
						in.meetInto(outs[p])
					}
				}
				if !have {
					if len(g.Preds[bpos]) == 0 {
						clear(in.cells)
					} else {
						continue
					}
				}
			}
			ins[bpos] = &lat[bpos]
			copy(lat[bpos].cells, in.cells)
			for i := range f.Blocks[bpos].Instrs {
				transfer(in, &f.Blocks[bpos].Instrs[i])
			}
			if outs[bpos] == nil || !in.equal(outs[bpos]) {
				outs[bpos] = &lat[n+bpos]
				copy(lat[n+bpos].cells, in.cells)
				changed = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if ins[i] == nil {
			ins[i] = &lat[i]
			clear(lat[i].cells)
		}
	}
	return ins
}

func propagateConstants(f *rtl.Func, g *rtl.CFG, sv *regSolver, d *machine.Desc) bool {
	ins := sv.solve(f, g, constTransfer)
	changed := false
	for bpos, b := range f.Blocks {
		s := ins[bpos]
		for i := range b.Instrs {
			if substConstOperand(&b.Instrs[i], s, d) {
				changed = true
			}
			constTransfer(s, &b.Instrs[i])
		}
	}
	return changed
}

func propagateCopies(f *rtl.Func, g *rtl.CFG, sv *regSolver) bool {
	ins := sv.solve(f, g, copyTransfer)
	changed := false
	var buf [8]rtl.Reg
	for bpos, b := range f.Blocks {
		s := ins[bpos]
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			for _, u := range instr.Uses(buf[:0]) {
				if int(u) < len(s.cells) && s.cells[u].known {
					if instr.ReplaceUses(u, rtl.R(s.cells[u].src)) {
						changed = true
					}
				}
			}
			copyTransfer(s, instr)
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// Global common subexpression elimination.

// exprKey identifies a computed expression. Commutative operand pairs
// are stored in canonical order. Loads carry the base register and
// displacement plus a scalar-slot marker used for kill precision.
type exprKey struct {
	op     rtl.Op
	a, b   rtl.Operand
	disp   int32
	sym    string
	scalar bool
}

// exprState is the set of available expressions with the register
// holding each value. It is a small slice rather than a map: the hot
// path of the exhaustive search hashes these states millions of times,
// and a block rarely has more than a dozen expressions available.
type exprEntry struct {
	key exprKey
	reg rtl.Reg
}

type exprState []exprEntry

func (s exprState) lookup(k exprKey) (rtl.Reg, bool) {
	for i := range s {
		if s[i].key == k {
			return s[i].reg, true
		}
	}
	return rtl.RegNone, false
}

// meetInto intersects other into s (entries must agree on the holding
// register), returning the reduced state.
func meetExpr(s, other exprState) exprState {
	out := s[:0]
	for _, e := range s {
		if r, ok := other.lookup(e.key); ok && r == e.reg {
			out = append(out, e)
		}
	}
	return out
}

func exprEqual(a, b exprState) bool {
	if len(a) != len(b) {
		return false
	}
	for _, e := range a {
		if r, ok := b.lookup(e.key); !ok || r != e.reg {
			return false
		}
	}
	return true
}

// exprOf returns the expression computed by a pure register-defining
// instruction, and whether it is a candidate for CSE.
func exprOf(f *rtl.Func, in *rtl.Instr) (exprKey, bool) {
	switch in.Op {
	case rtl.OpMovHi:
		return exprKey{op: in.Op, sym: in.Sym}, true
	case rtl.OpAddLo:
		return exprKey{op: in.Op, a: in.A, sym: in.Sym}, true
	case rtl.OpNeg, rtl.OpNot:
		return exprKey{op: in.Op, a: in.A}, true
	case rtl.OpLoad:
		k := exprKey{op: in.Op, a: in.A, disp: in.Disp}
		if in.A.IsReg(rtl.RegSP) {
			if sl := f.SlotAt(in.Disp); sl != nil && sl.Scalar {
				k.scalar = true
			}
		}
		return k, true
	}
	if in.Op.IsALU() {
		a, b := in.A, in.B
		if in.Op.Commutative() && operandLess(b, a) {
			a, b = b, a
		}
		return exprKey{op: in.Op, a: a, b: b}, true
	}
	return exprKey{}, false
}

// operandLess orders operands for canonicalization.
func operandLess(x, y rtl.Operand) bool {
	if x.Kind != y.Kind {
		return x.Kind < y.Kind
	}
	if x.Kind == rtl.OperReg {
		return x.Reg < y.Reg
	}
	return x.Imm < y.Imm
}

func exprUsesReg(k exprKey, r rtl.Reg) bool {
	return k.a.IsReg(r) || k.b.IsReg(r)
}

// exprTransfer updates the state across one instruction, returning the
// (possibly reduced) slice.
func exprTransfer(f *rtl.Func, s exprState, in *rtl.Instr) exprState {
	var buf [8]rtl.Reg
	// Memory invalidation: loads killed by stores and calls, with
	// scalar-slot precision (a slot whose address is never taken
	// survives aliased stores and calls).
	switch in.Op {
	case rtl.OpStore:
		scalarStore := false
		if in.B.IsReg(rtl.RegSP) {
			if sl := f.SlotAt(in.Disp); sl != nil && sl.Scalar {
				scalarStore = true
			}
		}
		out := s[:0]
		for _, e := range s {
			if e.key.op == rtl.OpLoad {
				if scalarStore {
					if e.key.scalar && e.key.disp == in.Disp {
						continue
					}
				} else if !e.key.scalar {
					continue
				}
			}
			out = append(out, e)
		}
		s = out
	case rtl.OpCall:
		out := s[:0]
		for _, e := range s {
			if e.key.op == rtl.OpLoad && !e.key.scalar {
				continue
			}
			out = append(out, e)
		}
		s = out
	}
	k, isExpr := exprOf(f, in)
	defs := in.Defs(buf[:0])
	if len(defs) > 0 {
		out := s[:0]
		for _, e := range s {
			killed := false
			for _, d := range defs {
				if e.reg == d || exprUsesReg(e.key, d) {
					killed = true
					break
				}
			}
			if !killed {
				out = append(out, e)
			}
		}
		s = out
	}
	if isExpr && in.Dst != rtl.RegNone && !exprUsesReg(k, in.Dst) {
		if _, exists := s.lookup(k); !exists {
			s = append(s, exprEntry{key: k, reg: in.Dst})
		}
	}
	return s
}

// exprSolver owns the per-block available-expression states and the
// scratch slices of eliminateCommonSubexprs, allocated once per phase
// application; each round rebuilds the states by appending into the
// retained backings.
type exprSolver struct {
	ins, outs []exprState
	computed  []bool // an empty slice is a valid state; track TOP separately
	tmp, sbuf exprState
}

func newExprSolver(n int) *exprSolver {
	return &exprSolver{
		ins:      make([]exprState, n),
		outs:     make([]exprState, n),
		computed: make([]bool, n),
	}
}

func eliminateCommonSubexprs(f *rtl.Func, g *rtl.CFG, es *exprSolver) bool {
	ins, outs, computed := es.ins, es.outs, es.computed
	for i := range ins {
		ins[i] = ins[i][:0]
		computed[i] = false // stale outs are dead: the first visit rewrites them
	}
	rpo := g.RPO()
	// Each slot in ins/outs keeps its backing array across fixpoint
	// iterations (states are recomputed by appending into slot[:0]), and
	// one scratch slice carries the transfer results; the previous
	// clone-per-block-per-iteration scheme dominated the allocation
	// profile of the whole enumeration.
	tmp := es.tmp
	for changed := true; changed; {
		changed = false
		for _, bpos := range rpo {
			in := ins[bpos][:0]
			haveIn := false
			if bpos == 0 {
				haveIn = true
			} else {
				for _, p := range g.Preds[bpos] {
					if !computed[p] {
						continue // TOP
					}
					if !haveIn {
						in = append(in, outs[p]...)
						haveIn = true
					} else {
						in = meetExpr(in, outs[p])
					}
				}
				if !haveIn {
					if len(g.Preds[bpos]) == 0 {
						haveIn = true
					} else {
						continue
					}
				}
			}
			ins[bpos] = in
			out := append(tmp[:0], in...)
			for i := range f.Blocks[bpos].Instrs {
				out = exprTransfer(f, out, &f.Blocks[bpos].Instrs[i])
			}
			tmp = out
			if !computed[bpos] || !exprEqual(out, outs[bpos]) {
				outs[bpos] = append(outs[bpos][:0], out...)
				computed[bpos] = true
				changed = true
			}
		}
	}

	es.tmp = tmp
	changedCode := false
	sbuf := es.sbuf
	for bpos, b := range f.Blocks {
		s := append(sbuf[:0], ins[bpos]...)
		for i := 0; i < len(b.Instrs); i++ {
			instr := &b.Instrs[i]
			if k, ok := exprOf(f, instr); ok {
				if holder, avail := s.lookup(k); avail {
					if holder == instr.Dst {
						// The register already holds this value: the
						// recomputation is a no-op and is removed.
						b.Remove(i)
						i--
						changedCode = true
						continue
					}
					// The value is already in holder: replace the
					// recomputation with a move.
					*instr = rtl.NewMov(instr.Dst, rtl.R(holder))
					changedCode = true
				}
			}
			s = exprTransfer(f, s, instr)
		}
		sbuf = s
	}
	es.sbuf = sbuf
	return changedCode
}
