package opt

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/rtl"
)

// LoopTransformations is phase l: loop-invariant code motion, loop
// strength reduction and induction-variable simplification, applied to
// each loop ordered by loop nesting level (innermost first), as in
// Table 1. Like VPO, the phase requires values in registers, so it is
// gated to run after register allocation (k).
//
// Recurrence elimination, the fourth sub-transformation of VPO's l, is
// not implemented; DESIGN.md records the substitution.
type LoopTransformations struct{}

// ID returns the paper's designation for the phase.
func (LoopTransformations) ID() byte { return 'l' }

// Name returns the paper's name for the phase.
func (LoopTransformations) Name() string { return "loop transformations" }

// RequiresRegAssign reports that this dataflow phase runs after the
// compulsory register assignment.
func (LoopTransformations) RequiresRegAssign() bool { return true }

// Apply runs the phase.
func (LoopTransformations) Apply(f *rtl.Func, d *machine.Desc) bool {
	changed := false
	for again := true; again; {
		again = false
		g := rtl.ComputeCFG(f)
		for _, l := range g.FindLoops() {
			if hoistInvariants(f, g, l) || reduceInductionVariables(f, g, l, d) {
				changed, again = true, true
				break // structures changed; recompute
			}
		}
	}
	return changed
}

// loopInfo gathers per-loop facts used by both sub-transformations.
type loopInfo struct {
	blocks  []int // layout positions, ascending
	defs    map[rtl.Reg]int
	hasCall bool
	memPure bool // no stores or calls in the loop
}

func analyzeLoop(f *rtl.Func, l *rtl.Loop) loopInfo {
	info := loopInfo{defs: make(map[rtl.Reg]int), memPure: true}
	for bpos := range l.Blocks {
		info.blocks = append(info.blocks, bpos)
	}
	sort.Ints(info.blocks) // deterministic processing order
	var buf [8]rtl.Reg
	for _, bpos := range info.blocks {
		b := f.Blocks[bpos]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Defs(buf[:0]) {
				info.defs[r]++
			}
			switch in.Op {
			case rtl.OpCall:
				info.hasCall = true
				info.memPure = false
			case rtl.OpStore:
				info.memPure = false
			}
		}
	}
	return info
}

// ensurePreheader returns the layout position of a block that is the
// unique loop-external predecessor of the header, creating one when
// needed. Creating a preheader restructures the function, so callers
// must recompute the CFG afterwards; the returned bool reports whether
// a block was created.
func ensurePreheader(f *rtl.Func, g *rtl.CFG, l *rtl.Loop) (int, bool, bool) {
	h := l.Header
	var outside []int
	for _, p := range g.Preds[h] {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := outside[0]
		// Usable directly only when the header is its sole successor.
		if len(g.Succs[p]) == 1 {
			return p, false, true
		}
	}
	// An in-loop predecessor that falls through into the header would
	// start flowing through the new preheader; creating one here would
	// re-execute hoisted code every iteration, so bail out.
	if h > 0 && l.Blocks[h-1] {
		for _, p := range g.Preds[h] {
			if p == h-1 && g.FallsThrough(h-1) {
				return 0, false, false
			}
		}
	}
	headID := f.Blocks[h].ID
	nb := f.NewDetachedBlock()
	// Explicit branches from outside the loop are retargeted to the
	// preheader; an outside predecessor that fell through now falls
	// into the preheader, which falls into the header.
	for _, p := range outside {
		b := f.Blocks[p]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.Op == rtl.OpBranch || in.Op == rtl.OpJmp) && in.Target == headID {
				in.Target = nb.ID
			}
		}
	}
	if h == 0 {
		// The function entry is the loop header; the preheader becomes
		// the new entry.
		f.Blocks = append([]*rtl.Block{nb}, f.Blocks...)
		return 0, true, true
	}
	f.InsertBlockAfter(h-1, nb)
	return h, true, true
}

// hoistInvariants performs loop-invariant code motion for one loop.
func hoistInvariants(f *rtl.Func, g *rtl.CFG, l *rtl.Loop) bool {
	info := analyzeLoop(f, l)
	idom := g.Dominators()
	lv := rtl.ComputeLiveness(g)

	exits := l.Exits(g)

	// An instruction is loop-invariant when it is pure, its register
	// operands are not defined inside the loop, its destination is
	// defined exactly once in the loop, and the destination is not
	// live on entry to the header (so no use precedes the def).
	invariant := func(bpos, i int) bool {
		in := &f.Blocks[bpos].Instrs[i]
		mustDominateExits := false
		switch in.Op {
		case rtl.OpMov, rtl.OpMovHi, rtl.OpAddLo, rtl.OpNeg, rtl.OpNot:
		case rtl.OpLoad:
			if !info.memPure {
				return false
			}
		case rtl.OpDiv, rtl.OpRem:
			// Division can fault; it may only be hoisted when the
			// original instruction executes on every loop entry.
			mustDominateExits = true
		default:
			if !in.Op.IsALU() {
				return false
			}
		}
		if in.Dst == rtl.RegNone || in.Dst == rtl.RegSP {
			return false
		}
		var buf [8]rtl.Reg
		for _, u := range in.Uses(buf[:0]) {
			if u == rtl.RegSP {
				continue // the stack pointer is fixed in a function
			}
			if info.defs[u] != 0 {
				return false
			}
		}
		if info.defs[in.Dst] != 1 {
			return false
		}
		if lv.In[l.Header].Has(in.Dst) {
			return false
		}
		// In a loop containing calls, a caller-save destination is
		// re-established each iteration after the call; hoisting it
		// out would leave a clobbered value.
		if info.hasCall && in.Dst.IsHard() && !in.Dst.IsCalleeSave() {
			return false
		}
		// Safety on early exits: either the definition dominates every
		// exit, or the destination is dead at every exit.
		for _, e := range exits {
			if rtl.Dominates(idom, bpos, e) {
				continue
			}
			if mustDominateExits {
				return false
			}
			if lv.Out[e].Has(in.Dst) {
				// Check liveness on the exit edges leaving the loop.
				liveOutside := false
				for _, s := range g.Succs[e] {
					if !l.Blocks[s] && lv.In[s].Has(in.Dst) {
						liveOutside = true
					}
				}
				if liveOutside {
					return false
				}
			}
		}
		return true
	}

	// renameHoistable identifies computations whose operands are
	// invariant but whose destination register is reused elsewhere in
	// the loop (a false dependence introduced by register assignment):
	// the computation moves to the preheader under a fresh register
	// and the original definition becomes a move. VPO's code motion
	// does the same renaming, and the residual moves are what make l
	// enable instruction selection so often (Table 4).
	renameHoistable := func(bpos, i int) bool {
		in := &f.Blocks[bpos].Instrs[i]
		switch in.Op {
		case rtl.OpMovHi, rtl.OpAddLo, rtl.OpNeg, rtl.OpNot:
		case rtl.OpMov:
			// Never rename-hoist moves: a register move gains nothing,
			// and a constant move would oscillate with constant
			// propagation, which rewrites the residual copy back into
			// an in-loop constant move that looks hoistable again.
			return false
		case rtl.OpLoad:
			if !info.memPure {
				return false
			}
		case rtl.OpDiv, rtl.OpRem:
			// Hoisting always executes the division; a conditionally
			// executed one could fault where the original would not.
			for _, e := range exits {
				if !rtl.Dominates(idom, bpos, e) {
					return false
				}
			}
		default:
			if !in.Op.IsALU() {
				return false
			}
		}
		if in.Dst == rtl.RegNone || in.Dst == rtl.RegSP {
			return false
		}
		var buf [8]rtl.Reg
		for _, u := range in.Uses(buf[:0]) {
			if u == rtl.RegSP {
				continue
			}
			if info.defs[u] != 0 {
				return false
			}
		}
		return true
	}

	// Find the first hoistable instruction: prefer moving the whole
	// instruction; fall back to rename-hoisting.
	for pass := 0; pass < 2; pass++ {
		for _, bpos := range info.blocks {
			b := f.Blocks[bpos]
			for i := 0; i < len(b.Instrs); i++ {
				if pass == 0 {
					if !invariant(bpos, i) {
						continue
					}
					in := b.Instrs[i]
					ph, created, ok := ensurePreheader(f, g, l)
					if !ok {
						return false
					}
					if created {
						// Layout changed: relocate the source block by ID.
						b = f.Blocks[f.BlockIndex(b.ID)]
					}
					b.Remove(i)
					pb := f.Blocks[ph]
					at := len(pb.Instrs)
					if pb.EndsInControl() {
						at--
					}
					pb.Insert(at, in)
					return true
				}
				if invariant(bpos, i) || !renameHoistable(bpos, i) {
					continue
				}
				t := freeRegister(f)
				if t == rtl.RegNone {
					return false
				}
				in := b.Instrs[i]
				ph, created, ok := ensurePreheader(f, g, l)
				if !ok {
					return false
				}
				if created {
					b = f.Blocks[f.BlockIndex(b.ID)]
				}
				hoisted := in
				hoisted.Dst = t
				b.Instrs[i] = rtl.NewMov(in.Dst, rtl.R(t))
				pb := f.Blocks[ph]
				at := len(pb.Instrs)
				if pb.EndsInControl() {
					at--
				}
				pb.Insert(at, hoisted)
				return true
			}
		}
	}
	return false
}

// reduceInductionVariables strength-reduces derived induction
// variables: inside a loop with a basic induction variable i
// (single definition i = i + #c), a derived variable j = i << #k or
// j = i * #k is replaced by j = t, where t is a new accumulator
// initialized in the preheader and incremented alongside i.
func reduceInductionVariables(f *rtl.Func, g *rtl.CFG, l *rtl.Loop, d *machine.Desc) bool {
	info := analyzeLoop(f, l)

	// Basic induction variables: regs with exactly one in-loop def of
	// the form r = r + #c (or r - #c).
	type basicIV struct {
		bpos, idx int
		step      int32
	}
	ivs := make(map[rtl.Reg]basicIV)
	for _, bpos := range info.blocks {
		b := f.Blocks[bpos]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst == rtl.RegNone || info.defs[in.Dst] != 1 {
				continue
			}
			if (in.Op == rtl.OpAdd || in.Op == rtl.OpSub) &&
				in.A.IsReg(in.Dst) && in.B.Kind == rtl.OperImm {
				step := in.B.Imm
				if in.Op == rtl.OpSub {
					step = -step
				}
				ivs[in.Dst] = basicIV{bpos: bpos, idx: i, step: step}
			}
		}
	}
	if len(ivs) == 0 {
		return false
	}

	// Derived variable: single def j = i << #k or j = i * #k with
	// i a basic IV and j != i.
	for _, bpos := range info.blocks {
		b := f.Blocks[bpos]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst == rtl.RegNone || info.defs[in.Dst] != 1 {
				continue
			}
			if in.A.Kind != rtl.OperReg || in.B.Kind != rtl.OperImm {
				continue
			}
			iv, isIV := ivs[in.A.Reg]
			if !isIV || in.Dst == in.A.Reg {
				continue
			}
			var factor int32
			switch in.Op {
			case rtl.OpShl:
				factor = 1 << (uint32(in.B.Imm) & 31)
			case rtl.OpMul:
				factor = in.B.Imm
			default:
				continue
			}
			if !d.LegalImm(rtl.OpAdd, iv.step*factor) {
				continue
			}
			// A free register is needed for the accumulator.
			t := freeRegister(f)
			if t == rtl.RegNone {
				return false
			}
			// Block pointers are stable across the layout change a
			// preheader creation causes; capture everything needed
			// before restructuring.
			jb := b
			ivB := f.Blocks[iv.bpos]
			origShift := *in
			ph, _, ok := ensurePreheader(f, g, l)
			if !ok {
				return false
			}

			// Preheader: t = i * factor (as the original op form).
			pb := f.Blocks[ph]
			at := len(pb.Instrs)
			if pb.EndsInControl() {
				at--
			}
			init := origShift
			init.Dst = t
			pb.Insert(at, init)

			// After i's increment: t += step * factor.
			inc := rtl.NewALU(rtl.OpAdd, t, rtl.R(t), rtl.Imm(iv.step*factor))
			ivB.Insert(iv.idx+1, inc)

			// The derived def becomes a move from the accumulator.
			for k := range jb.Instrs {
				if jb.Instrs[k] == origShift {
					jb.Instrs[k] = rtl.NewMov(origShift.Dst, rtl.R(t))
					break
				}
			}
			return true
		}
	}
	return false
}

// freeRegister returns a callee-save hardware register not referenced
// anywhere in the function, or RegNone.
func freeRegister(f *rtl.Func) rtl.Reg {
	used := f.UsedRegs()
	for r := rtl.RegR11; r >= rtl.RegR4; r-- {
		if !used[r] {
			return r
		}
	}
	return rtl.RegNone
}
