package opt_test

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// These tests pin the exact behaviour of the three sub-passes of
// phase c (global constant propagation, copy propagation, CSE) on
// hand-built RTL — especially the memory-disambiguation rules that the
// register allocation phase depends on.

func cseFunc() *rtl.Func {
	f := rtl.NewFunc("t", 0, true)
	f.RegAssigned = true
	return f
}

func apply(t *testing.T, f *rtl.Func) bool {
	t.Helper()
	active := (opt.CommonSubexprElim{}).Apply(f, machine.StrongARM())
	if err := rtl.Validate(f); err != nil {
		t.Fatalf("invalid after c: %v\n%s", err, f)
	}
	return active
}

func TestConstPropFoldsOperand(t *testing.T) {
	// The paper's Figure 3 left column: r2=1; r3=r4+r2 becomes
	// r3=r4+1 while the (now dead) move stays for h.
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(1)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR3, rtl.R(rtl.RegR4), rtl.R(rtl.RegR2)),
		rtl.NewMov(rtl.RegR0, rtl.R(rtl.RegR3)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	if !strings.Contains(f.String(), "r[3]=r[4]+1;") {
		t.Fatalf("operand not folded:\n%s", f)
	}
}

func TestConstPropRespectsImmediateLimits(t *testing.T) {
	// 100000 exceeds the add-immediate range: the operand must stay in
	// a register.
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(100000)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR4), rtl.R(rtl.RegR2)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	apply(t, f)
	if !strings.Contains(f.String(), "r[0]=r[4]+r[2];") {
		t.Fatalf("illegal immediate folded anyway:\n%s", f)
	}
}

func TestConstPropReverseSubtract(t *testing.T) {
	// c - r becomes rsb when only the first operand is constant.
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(100)),
		rtl.NewALU(rtl.OpSub, rtl.RegR0, rtl.R(rtl.RegR2), rtl.R(rtl.RegR4)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	if !strings.Contains(f.String(), "r[0]=100-r[4];") {
		t.Fatalf("no reverse-subtract:\n%s", f)
	}
}

func TestConstPropMeetsAtJoin(t *testing.T) {
	// r2 is 5 on both arms: the join may fold it. r3 differs: it must
	// not.
	f := cseFunc()
	a := f.Entry()
	arm2 := f.AddBlock()
	join := f.AddBlock()
	a.Instrs = append(a.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelLT, arm2.ID))
	arm1 := f.NewDetachedBlock()
	f.InsertBlockAfter(0, arm1)
	arm1.Instrs = append(arm1.Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(5)),
		rtl.NewMov(rtl.RegR3, rtl.Imm(1)),
		rtl.NewJmp(join.ID))
	arm2.Instrs = append(arm2.Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(5)),
		rtl.NewMov(rtl.RegR3, rtl.Imm(2)))
	join.Instrs = append(join.Instrs,
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR4), rtl.R(rtl.RegR2)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR4), rtl.R(rtl.RegR3)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	s := f.String()
	if !strings.Contains(s, "r[0]=r[4]+5;") {
		t.Fatalf("agreeing constant not folded at the join:\n%s", s)
	}
	if !strings.Contains(s, "r[1]=r[4]+r[3];") {
		t.Fatalf("disagreeing constant folded at the join:\n%s", s)
	}
}

func TestCopyPropThroughChain(t *testing.T) {
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR0), rtl.Imm(1)),
		rtl.NewMov(rtl.RegR2, rtl.R(rtl.RegR1)),
		rtl.NewMov(rtl.RegR3, rtl.R(rtl.RegR2)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR3), rtl.R(rtl.RegR3)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	// Uses of r3 collapse to the chain root r1.
	if !strings.Contains(f.String(), "r[0]=r[1]+r[1];") {
		t.Fatalf("copy chain not propagated:\n%s", f)
	}
}

func TestCopyPropKilledByRedefinition(t *testing.T) {
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewMov(rtl.RegR2, rtl.R(rtl.RegR1)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR1), rtl.Imm(1)), // kills the copy
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR2), rtl.Imm(0)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	apply(t, f)
	if strings.Contains(f.String(), "r[0]=r[1]+0;") {
		t.Fatalf("use rewritten to a redefined source:\n%s", f)
	}
}

func TestCSEEliminatesRedundantExpression(t *testing.T) {
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewALU(rtl.OpAdd, rtl.RegR2, rtl.R(rtl.RegR0), rtl.R(rtl.RegR1)),
		rtl.NewALU(rtl.OpMul, rtl.RegR3, rtl.R(rtl.RegR2), rtl.R(rtl.RegR2)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR4, rtl.R(rtl.RegR0), rtl.R(rtl.RegR1)), // redundant
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR3), rtl.R(rtl.RegR4)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	if !strings.Contains(f.String(), "r[4]=r[2];") {
		t.Fatalf("redundant add not replaced by a move:\n%s", f)
	}
}

func TestCSECommutativeCanonicalization(t *testing.T) {
	// a+b and b+a are the same expression.
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewALU(rtl.OpAdd, rtl.RegR2, rtl.R(rtl.RegR0), rtl.R(rtl.RegR1)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR3, rtl.R(rtl.RegR1), rtl.R(rtl.RegR0)),
		rtl.NewALU(rtl.OpAnd, rtl.RegR0, rtl.R(rtl.RegR2), rtl.R(rtl.RegR3)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	if !strings.Contains(f.String(), "r[3]=r[2];") {
		t.Fatalf("commuted expression not recognized:\n%s", f)
	}
	// Subtraction must NOT commute.
	g := cseFunc()
	g.Entry().Instrs = append(g.Entry().Instrs,
		rtl.NewALU(rtl.OpSub, rtl.RegR2, rtl.R(rtl.RegR0), rtl.R(rtl.RegR1)),
		rtl.NewALU(rtl.OpSub, rtl.RegR3, rtl.R(rtl.RegR1), rtl.R(rtl.RegR0)),
		rtl.NewALU(rtl.OpAnd, rtl.RegR0, rtl.R(rtl.RegR2), rtl.R(rtl.RegR3)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	apply(t, g)
	if strings.Contains(g.String(), "r[3]=r[2];") {
		t.Fatalf("subtraction wrongly commuted:\n%s", g)
	}
}

func TestCSERedundantLoadScalarSlot(t *testing.T) {
	// A scalar slot load survives a call (the callee cannot touch a
	// slot whose address is never taken); a non-scalar slot load does
	// not.
	build := func(scalar bool) *rtl.Func {
		f := cseFunc()
		f.AddSlot("x", 4, scalar)
		f.Entry().Instrs = append(f.Entry().Instrs,
			rtl.NewLoad(rtl.RegR4, rtl.RegSP, 0),
			rtl.Instr{Op: rtl.OpCall, Sym: "g"},
			rtl.NewLoad(rtl.RegR5, rtl.RegSP, 0),
			rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR4), rtl.R(rtl.RegR5)),
			rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
		return f
	}
	sf := build(true)
	if !apply(t, sf) {
		t.Fatal("dormant on scalar-slot reload")
	}
	if !strings.Contains(sf.String(), "r[5]=r[4];") {
		t.Fatalf("scalar reload not eliminated across the call:\n%s", sf)
	}
	nf := build(false)
	apply(t, nf)
	if strings.Contains(nf.String(), "r[5]=r[4];") {
		t.Fatalf("non-scalar reload wrongly eliminated across a call:\n%s", nf)
	}
}

func TestCSEStoreKillsAliasedLoad(t *testing.T) {
	// A store through an arbitrary pointer kills loads from memory
	// that might alias (everything except scalar slots).
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewLoad(rtl.RegR4, rtl.RegR1, 8),
		rtl.NewStore(rtl.RegR2, rtl.RegR3, 0), // unknown pointer
		rtl.NewLoad(rtl.RegR5, rtl.RegR1, 8),  // must stay a load
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR4), rtl.R(rtl.RegR5)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	apply(t, f)
	if strings.Contains(f.String(), "r[5]=r[4];") {
		t.Fatalf("aliased reload wrongly eliminated:\n%s", f)
	}
}

func TestCSELoadAvailableAcrossPureCode(t *testing.T) {
	f := cseFunc()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewLoad(rtl.RegR4, rtl.RegR1, 8),
		rtl.NewALU(rtl.OpAdd, rtl.RegR2, rtl.R(rtl.RegR4), rtl.Imm(1)),
		rtl.NewLoad(rtl.RegR5, rtl.RegR1, 8), // same location, nothing between
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR2), rtl.R(rtl.RegR5)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	if !strings.Contains(f.String(), "r[5]=r[4];") {
		t.Fatalf("redundant load not eliminated:\n%s", f)
	}
}

func TestCSERecomputationIntoSameRegisterRemoved(t *testing.T) {
	// Loading the same scalar slot into the same register twice: the
	// second load is a complete no-op and disappears.
	f := cseFunc()
	f.AddSlot("x", 4, true)
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewLoad(rtl.RegR4, rtl.RegSP, 0),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR4), rtl.Imm(1)),
		rtl.NewLoad(rtl.RegR4, rtl.RegSP, 0),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR0), rtl.R(rtl.RegR4)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	before := f.NumInstrs()
	if !apply(t, f) {
		t.Fatal("dormant")
	}
	if f.NumInstrs() != before-1 {
		t.Fatalf("no-op recomputation not removed:\n%s", f)
	}
}
