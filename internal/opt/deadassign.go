package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// DeadAssignElim is phase h: it uses global analysis to remove
// assignments when the assigned value is never used. Stores, calls and
// control transfers are never removed; a comparison whose condition
// codes are dead is.
type DeadAssignElim struct{}

// ID returns the paper's designation for the phase.
func (DeadAssignElim) ID() byte { return 'h' }

// Name returns the paper's name for the phase.
func (DeadAssignElim) Name() string { return "dead assignment elimination" }

// RequiresRegAssign reports that this dataflow phase runs after the
// compulsory register assignment.
func (DeadAssignElim) RequiresRegAssign() bool { return true }

// Apply runs the phase.
func (DeadAssignElim) Apply(f *rtl.Func, _ *machine.Desc) bool {
	changed := false
	// Removing one dead assignment can kill the instructions feeding
	// it, so iterate to a fixpoint.
	for again := true; again; {
		again = false
		g := rtl.ComputeCFG(f)
		lv := rtl.ComputeLiveness(g)
		var buf [8]rtl.Reg
		for bpos, b := range f.Blocks {
			live := lv.Out[bpos].Copy()
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				dead := false
				if !in.HasSideEffects() && in.Op != rtl.OpNop {
					dead = in.Dst != rtl.RegNone && !live.Has(in.Dst)
				}
				if dead {
					b.Remove(i)
					changed, again = true, true
					continue
				}
				for _, d := range in.Defs(buf[:0]) {
					live.Remove(d)
				}
				for _, u := range in.Uses(buf[:0]) {
					live.Add(u)
				}
			}
		}
	}
	return changed
}
