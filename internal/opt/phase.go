// Package opt implements the fifteen candidate code-improving phases
// of Table 1, the compulsory register assignment pass, and the
// compulsory entry/exit fixup. Each phase analyzes and transforms the
// RTL representation in place and reports whether it was active
// (changed the program representation) or dormant (found no
// opportunity), the distinction that drives the exhaustive search's
// first pruning technique.
//
// Phase ordering restrictions (Section 3 of the paper):
//
//   - evaluation order determination (o) may only run before the
//     compulsory register assignment;
//   - register allocation (k) may only run after instruction
//     selection (s), so candidate loads and stores carry the addresses
//     of arguments and local scalars;
//   - loop unrolling (g) and the loop transformations (l) may only run
//     after register allocation (k);
//   - register assignment is performed implicitly before the first
//     phase that requires it.
package opt

import (
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/rtl"
	"repro/internal/telemetry"
)

// PostCheck, when non-nil, is invoked after every active phase
// application (and after FixEntryExit) with the transformed function
// and the machine description. A non-nil return means the phase just
// applied broke a semantic invariant; Attempt panics with a
// *CheckError naming the offending phase so harnesses can recover it
// alongside the sequence that led there. The check package's Err has
// the matching signature: opt.PostCheck = check.Err.
//
// The hook is intentionally a package variable rather than a State
// field: the verifier is a cross-cutting debug facility, and keeping
// it out of State keeps the search's per-node key and clone costs
// untouched when checking is off.
var PostCheck func(f *rtl.Func, d *machine.Desc) error

// Metrics, when non-nil, receives the outcome of every Attempt:
// per-phase active/dormant counts and per-phase durations (covering
// the implicit register assignment, the phase proper and the cleanup).
// Like PostCheck it is a package variable rather than a State field so
// the search's per-node key and clone costs stay untouched; install it
// before any concurrent use and leave it in place for the run.
var Metrics *PhaseMetrics

// PhaseMetrics is the per-phase instrument bundle, pre-resolved at
// construction so the Attempt hot path performs no registry lookups.
type PhaseMetrics struct {
	active  [256]*telemetry.Counter
	dormant [256]*telemetry.Counter
	dur     [256]*telemetry.Histogram
}

// NewPhaseMetrics registers the per-phase instruments of every Table 1
// phase on reg: counters opt.attempt.<id>.active and
// opt.attempt.<id>.dormant plus histogram opt.phase.<id>.duration_ns.
func NewPhaseMetrics(reg *telemetry.Registry) *PhaseMetrics {
	m := &PhaseMetrics{}
	for _, p := range All() {
		id := p.ID()
		m.active[id] = reg.Counter(fmt.Sprintf("opt.attempt.%c.active", id))
		m.dormant[id] = reg.Counter(fmt.Sprintf("opt.attempt.%c.dormant", id))
		m.dur[id] = reg.Histogram(fmt.Sprintf("opt.phase.%c.duration_ns", id))
	}
	return m
}

// observe records one Attempt outcome. The nil checks let unknown
// phase IDs (tests register synthetic phases) pass through silently.
func (m *PhaseMetrics) observe(id byte, active bool, d time.Duration) {
	if active {
		m.active[id].Inc()
	} else {
		m.dormant[id].Inc()
	}
	m.dur[id].Observe(int64(d))
}

// CheckError is the panic payload raised by Attempt when PostCheck
// rejects the code a phase produced. Phase is the one-letter
// designation of the offending phase ('=' for the entry/exit fixup).
type CheckError struct {
	Phase byte
	Err   error
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("phase %c broke a semantic invariant: %v", e.Phase, e.Err)
}

func (e *CheckError) Unwrap() error { return e.Err }

// Phase is a single candidate code-improving phase.
type Phase interface {
	// ID is the paper's one-letter designation (Table 1).
	ID() byte
	// Name is the paper's phase name.
	Name() string
	// RequiresRegAssign reports whether the compulsory register
	// assignment must have been performed before this phase runs.
	// Control-flow phases operate on any form; dataflow phases need
	// values in hardware registers.
	RequiresRegAssign() bool
	// Apply runs the phase on f, returning whether it was active.
	// Implementations must leave f semantically unchanged and
	// structurally valid.
	Apply(f *rtl.Func, d *machine.Desc) bool
}

// State tracks the sequence-history facts that gate phase legality at
// a point in an optimization sequence.
type State struct {
	// RegAssigned mirrors Func.RegAssigned for the node's code.
	RegAssigned bool
	// KApplied records that register allocation has been active.
	KApplied bool
	// SApplied records that instruction selection has been active.
	SApplied bool
}

// Enabled reports whether phase p may legally be attempted in state st.
func Enabled(p Phase, st State) bool {
	switch p.ID() {
	case 'o':
		return !st.RegAssigned
	case 'k':
		return st.SApplied
	case 'g', 'l':
		return st.KApplied
	}
	return true
}

// Attempt applies phase p to f, handling the implicit register
// assignment. It returns whether the phase was active. When the phase
// is dormant, f may nevertheless have been mutated by the implicit
// register assignment; callers exploring the search space should
// attempt phases on a clone and discard it when dormant. When the
// phase is active, st is updated.
func Attempt(f *rtl.Func, st *State, p Phase, d *machine.Desc) bool {
	if !Enabled(p, *st) {
		return false
	}
	m := Metrics
	var began time.Time
	if m != nil {
		began = time.Now()
	}
	if p.RequiresRegAssign() && !f.RegAssigned {
		RegAssign(f)
	}
	active := p.Apply(f, d)
	if active {
		rtl.Cleanup(f)
		st.RegAssigned = f.RegAssigned
		switch p.ID() {
		case 'k':
			st.KApplied = true
		case 's':
			st.SApplied = true
		}
	}
	// Observed before the PostCheck hook so phase durations measure
	// the transformation alone; the verifier keeps its own clock.
	if m != nil {
		m.observe(p.ID(), active, time.Since(began))
	}
	if active && PostCheck != nil {
		if err := PostCheck(f, d); err != nil {
			panic(&CheckError{Phase: p.ID(), Err: err})
		}
	}
	return active
}

// All returns the fifteen candidate phases in the paper's Table 1
// order: b, c, d, g, h, i, j, k, l, n, o, q, r, s, u.
func All() []Phase {
	return []Phase{
		BranchChaining{},
		CommonSubexprElim{},
		RemoveUnreachable{},
		LoopUnrolling{},
		DeadAssignElim{},
		BlockReordering{},
		MinimizeLoopJumps{},
		RegisterAllocation{},
		LoopTransformations{},
		CodeAbstraction{},
		EvalOrderDetermination{},
		StrengthReduction{},
		ReverseBranches{},
		InstructionSelection{},
		UselessJumpRemoval{},
	}
}

// ByID returns the phase with the given one-letter designation, or nil.
func ByID(id byte) Phase {
	for _, p := range All() {
		if p.ID() == id {
			return p
		}
	}
	return nil
}

// IDString returns the concatenated IDs of a phase sequence, e.g.
// "sckbh".
func IDString(seq []Phase) string {
	b := make([]byte, len(seq))
	for i, p := range seq {
		b[i] = p.ID()
	}
	return string(b)
}
