package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// InstructionSelection is phase s: it combines pairs (and, through
// repeated application, triples) of instructions linked by set/use
// dependencies, symbolically merging their effects, performing
// constant folding, and checking that the result is a legal target
// instruction before committing — exactly the behaviour Table 1
// describes. Typical combinations: folding an immediate move into its
// user, collapsing register-to-register moves, and folding an address
// add into a load/store displacement.
type InstructionSelection struct{}

// ID returns the paper's designation for the phase.
func (InstructionSelection) ID() byte { return 's' }

// Name returns the paper's name for the phase.
func (InstructionSelection) Name() string { return "instruction selection" }

// RequiresRegAssign reports that this dataflow phase runs after the
// compulsory register assignment.
func (InstructionSelection) RequiresRegAssign() bool { return true }

// Apply runs the phase.
func (InstructionSelection) Apply(f *rtl.Func, d *machine.Desc) bool {
	changed := false
	for combineOnce(f, d) {
		changed = true
	}
	return changed
}

// combineOnce finds and applies one combination anywhere in the
// function, returning whether it did.
func combineOnce(f *rtl.Func, d *machine.Desc) bool {
	// Identity moves (r = r) are vacuous combinations: register
	// assignment frequently maps a value and its final copy onto the
	// same register, and no other phase may delete the leftover.
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := &b.Instrs[i]
			if in.Op == rtl.OpMov && in.A.IsReg(in.Dst) {
				b.Remove(i)
				return true
			}
		}
	}
	g := rtl.ComputeCFG(f)
	lv := rtl.ComputeLiveness(g)
	var buf [8]rtl.Reg
	for bpos, b := range f.Blocks {
		for j := 1; j < len(b.Instrs); j++ {
			for _, u := range b.Instrs[j].Uses(buf[:0]) {
				if u == rtl.RegSP || u == rtl.RegIC {
					continue
				}
				i := lastDefBefore(b, j, u)
				if i < 0 {
					continue
				}
				if !soleUseThenDead(b, i, j, u, lv.Out[bpos]) {
					continue
				}
				if tryCombine(f, d, b, i, j, u) {
					return true
				}
			}
		}
	}
	return false
}

// lastDefBefore returns the index of the nearest instruction before j
// that defines u, or -1.
func lastDefBefore(b *rtl.Block, j int, u rtl.Reg) int {
	for i := j - 1; i >= 0; i-- {
		if b.Instrs[i].DefsReg(u) {
			return i
		}
	}
	return -1
}

// soleUseThenDead reports whether the only use of u after its
// definition at i is at j, with u dead afterwards (redefined before
// any further use, or not live out of the block). Only then can the
// definition be folded away.
func soleUseThenDead(b *rtl.Block, i, j int, u rtl.Reg, liveOut rtl.RegSet) bool {
	for p := i + 1; p < j; p++ {
		if b.Instrs[p].UsesReg(u) || b.Instrs[p].DefsReg(u) {
			return false
		}
	}
	if b.Instrs[j].DefsReg(u) {
		return true // the user overwrites u, killing the old value
	}
	for p := j + 1; p < len(b.Instrs); p++ {
		if b.Instrs[p].UsesReg(u) {
			return false
		}
		if b.Instrs[p].DefsReg(u) {
			return true
		}
	}
	return !liveOut.Has(u)
}

// regsRedefinedBetween reports whether any register read by def is
// redefined in positions (i, j) of the block.
func regsRedefinedBetween(b *rtl.Block, i, j int, def *rtl.Instr) bool {
	var buf [8]rtl.Reg
	for p := i + 1; p < j; p++ {
		for _, r := range def.Uses(buf[:0]) {
			if b.Instrs[p].DefsReg(r) {
				return true
			}
		}
	}
	return false
}

// memoryClobberedBetween reports whether a store or call occurs in
// positions (i, j).
func memoryClobberedBetween(b *rtl.Block, i, j int) bool {
	for p := i + 1; p < j; p++ {
		if op := b.Instrs[p].Op; op == rtl.OpStore || op == rtl.OpCall {
			return true
		}
	}
	return false
}

// evalALU computes a constant binary operation with the target's
// 32-bit wrapping semantics. Division by zero is rejected.
func evalALU(op rtl.Op, a, b int32) (int32, bool) {
	switch op {
	case rtl.OpAdd:
		return a + b, true
	case rtl.OpSub:
		return a - b, true
	case rtl.OpRsb:
		return b - a, true
	case rtl.OpMul:
		return a * b, true
	case rtl.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case rtl.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case rtl.OpAnd:
		return a & b, true
	case rtl.OpOr:
		return a | b, true
	case rtl.OpXor:
		return a ^ b, true
	case rtl.OpShl:
		return a << (uint32(b) & 31), true
	case rtl.OpShr:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	case rtl.OpSar:
		return a >> (uint32(b) & 31), true
	}
	return 0, false
}

// tryCombine merges the definition of u at index i into its user at
// index j. On success it replaces instruction j with the combination,
// deletes instruction i, and returns true.
func tryCombine(f *rtl.Func, d *machine.Desc, b *rtl.Block, i, j int, u rtl.Reg) bool {
	def := b.Instrs[i]
	user := b.Instrs[j] // copies

	commit := func(merged rtl.Instr) bool {
		if merged.UsesReg(u) {
			return false // substitution incomplete
		}
		if !d.Legal(&merged) {
			return false
		}
		b.Instrs[j] = merged
		b.Remove(i)
		return true
	}

	// Rule 1: the user is a plain move of u — transfer the whole
	// computation to the move's destination.
	if user.Op == rtl.OpMov && user.A.IsReg(u) && !def.HasSideEffects() && def.Op != rtl.OpNop {
		if !regsRedefinedBetween(b, i, j, &def) {
			if def.Op != rtl.OpLoad || !memoryClobberedBetween(b, i, j) {
				merged := def
				merged.Dst = user.Dst
				return commit(merged)
			}
		}
	}

	switch def.Op {
	case rtl.OpMov:
		switch def.A.Kind {
		case rtl.OperImm:
			return combineConst(d, b, i, j, u, def.A.Imm, commit)
		case rtl.OperReg:
			// Copy collapse: substitute the source for u everywhere.
			if def.A.Reg == rtl.RegSP {
				// Substituting SP into address arithmetic is legal and
				// common (frame address formation).
			}
			if regsRedefinedBetween(b, i, j, &def) {
				return false
			}
			merged := user
			merged.ReplaceUses(u, def.A)
			return commit(merged)
		}

	case rtl.OpAdd, rtl.OpSub:
		// Address-forming add/sub with an immediate folds into
		// displacements and further adds.
		if def.A.Kind != rtl.OperReg || def.B.Kind != rtl.OperImm {
			return false
		}
		if regsRedefinedBetween(b, i, j, &def) {
			return false
		}
		c := def.B.Imm
		if def.Op == rtl.OpSub {
			c = -c
		}
		rs := def.A.Reg
		merged := user
		switch {
		case merged.Op == rtl.OpLoad && merged.A.IsReg(u):
			merged.A = rtl.R(rs)
			merged.Disp += c
			return commit(merged)
		case merged.Op == rtl.OpStore && merged.B.IsReg(u) && !merged.A.IsReg(u):
			merged.B = rtl.R(rs)
			merged.Disp += c
			return commit(merged)
		case merged.Op == rtl.OpAdd && merged.A.IsReg(u) && merged.B.Kind == rtl.OperImm:
			merged.A = rtl.R(rs)
			merged.B = rtl.Imm(merged.B.Imm + c)
			return commit(merged)
		case merged.Op == rtl.OpSub && merged.A.IsReg(u) && merged.B.Kind == rtl.OperImm:
			// (rs + c) - c2  ==  rs + (c - c2)
			merged.Op = rtl.OpAdd
			merged.A = rtl.R(rs)
			merged.B = rtl.Imm(c - merged.B.Imm)
			return commit(merged)
		}
	}
	return false
}

// combineConst folds the constant c (the value of u) into the user
// instruction at index j.
func combineConst(d *machine.Desc, b *rtl.Block, i, j int, u rtl.Reg, c int32, commit func(rtl.Instr) bool) bool {
	user := b.Instrs[j]
	merged := user
	switch {
	case merged.Op == rtl.OpMov && merged.A.IsReg(u):
		merged.A = rtl.Imm(c)
		return commit(merged)

	case merged.Op == rtl.OpNeg && merged.A.IsReg(u):
		return commit(rtl.NewMov(merged.Dst, rtl.Imm(-c)))

	case merged.Op == rtl.OpNot && merged.A.IsReg(u):
		return commit(rtl.NewMov(merged.Dst, rtl.Imm(^c)))

	case merged.Op == rtl.OpCmp && merged.B.IsReg(u) && !merged.A.IsReg(u):
		merged.B = rtl.Imm(c)
		return commit(merged)

	case merged.Op.IsALU():
		if merged.B.IsReg(u) {
			merged.B = rtl.Imm(c)
		}
		if merged.A.IsReg(u) {
			if merged.B.Kind == rtl.OperImm {
				// Fully constant: fold to a move.
				if res, ok := evalALU(merged.Op, c, merged.B.Imm); ok {
					return commit(rtl.NewMov(merged.Dst, rtl.Imm(res)))
				}
				return false
			}
			switch {
			case merged.Op.Commutative():
				merged.A = merged.B
				merged.B = rtl.Imm(c)
			case merged.Op == rtl.OpSub:
				// c - r  ==  rsb r, #c
				merged.Op = rtl.OpRsb
				merged.A = merged.B
				merged.B = rtl.Imm(c)
			default:
				return false
			}
		}
		return commit(merged)
	}
	return false
}
