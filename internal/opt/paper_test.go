package opt_test

import (
	"strings"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// TestPhaseRegistryMatchesPaper checks the catalog against Table 1:
// the fifteen phase designations and names, in order.
func TestPhaseRegistryMatchesPaper(t *testing.T) {
	want := []struct {
		id   byte
		name string
	}{
		{'b', "branch chaining"},
		{'c', "common subexpression elimination"},
		{'d', "remove unreachable code"},
		{'g', "loop unrolling"},
		{'h', "dead assignment elimination"},
		{'i', "block reordering"},
		{'j', "minimize loop jumps"},
		{'k', "register allocation"},
		{'l', "loop transformations"},
		{'n', "code abstraction"},
		{'o', "evaluation order determination"},
		{'q', "strength reduction"},
		{'r', "reverse branches"},
		{'s', "instruction selection"},
		{'u', "remove useless jumps"},
	}
	all := opt.All()
	if len(all) != len(want) {
		t.Fatalf("got %d phases, want %d", len(all), len(want))
	}
	for i, w := range want {
		if all[i].ID() != w.id {
			t.Errorf("phase %d: ID %c, want %c", i, all[i].ID(), w.id)
		}
		if all[i].Name() != w.name {
			t.Errorf("phase %c: name %q, want %q", w.id, all[i].Name(), w.name)
		}
	}
}

// TestPhaseOrderingRestrictions verifies the Section 3 legality rules.
func TestPhaseOrderingRestrictions(t *testing.T) {
	var st opt.State
	if !opt.Enabled(opt.ByID('o'), st) {
		t.Error("o must be legal before register assignment")
	}
	if opt.Enabled(opt.ByID('k'), st) {
		t.Error("k must be illegal before instruction selection")
	}
	if opt.Enabled(opt.ByID('g'), st) || opt.Enabled(opt.ByID('l'), st) {
		t.Error("g and l must be illegal before register allocation")
	}
	st.RegAssigned = true
	if opt.Enabled(opt.ByID('o'), st) {
		t.Error("o must be illegal after register assignment")
	}
	st.SApplied = true
	if !opt.Enabled(opt.ByID('k'), st) {
		t.Error("k must be legal after instruction selection")
	}
	st.KApplied = true
	if !opt.Enabled(opt.ByID('g'), st) || !opt.Enabled(opt.ByID('l'), st) {
		t.Error("g and l must be legal after register allocation")
	}
}

// fig3Func builds the paper's Figure 3 kernel:
//
//	r[2]=1;
//	r[3]=r[4]+r[2];
//
// with r[2] dead afterwards and r[3] the function result.
func fig3Func() *rtl.Func {
	f := rtl.NewFunc("fig3", 0, false)
	f.RegAssigned = true
	f.AddSlot("out", 4, false)
	b := f.Entry()
	b.Instrs = append(b.Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(1)),
		rtl.NewALU(rtl.OpAdd, rtl.RegR3, rtl.R(rtl.RegR4), rtl.R(rtl.RegR2)),
		rtl.NewStore(rtl.RegR3, rtl.RegSP, 0),
		rtl.Instr{Op: rtl.OpRet},
	)
	return f
}

// TestFig3EquivalentTransforms reproduces Figure 3: instruction
// selection alone produces the same code as constant propagation
// (part of c) followed by dead assignment elimination.
func TestFig3EquivalentTransforms(t *testing.T) {
	d := machine.StrongARM()

	viaS := fig3Func()
	if !(opt.InstructionSelection{}).Apply(viaS, d) {
		t.Fatal("instruction selection dormant on the Figure 3 kernel")
	}

	viaCH := fig3Func()
	if !(opt.CommonSubexprElim{}).Apply(viaCH, d) {
		t.Fatal("constant propagation dormant on the Figure 3 kernel")
	}
	// After propagation the move to r[2] is dead.
	if !(opt.DeadAssignElim{}).Apply(viaCH, d) {
		t.Fatal("dead assignment elimination dormant after constant propagation")
	}

	sKey := fingerprint.KeyOf(viaS)
	chKey := fingerprint.KeyOf(viaCH)
	if sKey != chKey {
		t.Fatalf("the two transformation routes differ:\nvia s:\n%s\nvia c,h:\n%s", viaS, viaCH)
	}
	// And both must contain the folded instruction r[3]=r[4]+1.
	if !strings.Contains(viaS.String(), "r[3]=r[4]+1;") {
		t.Fatalf("missing folded instruction:\n%s", viaS)
	}
}

// TestDormantPhaseReattemptIsDormant checks the Section 4.1 invariant
// the search's pruning depends on: a phase that was just active is
// dormant when immediately reapplied.
func TestDormantPhaseReattemptIsDormant(t *testing.T) {
	d := machine.StrongARM()
	for _, tc := range diffCorpus {
		prog := mustCompile(t, tc.src)
		f := prog.Func(tc.fn)
		for _, p := range opt.All() {
			g := f.Clone()
			var st opt.State
			if !opt.Attempt(g, &st, p, d) {
				continue
			}
			if opt.Attempt(g, &st, p, d) {
				t.Errorf("%s: phase %c active twice consecutively", tc.name, p.ID())
			}
		}
	}
}

// TestStrengthReductionExpandsMultiply checks q's headline rewrite: a
// multiply by a power-of-two constant becomes a shift.
func TestStrengthReductionExpandsMultiply(t *testing.T) {
	d := machine.StrongARM()
	f := rtl.NewFunc("mul8", 1, true)
	f.RegAssigned = true
	b := f.Entry()
	b.Instrs = append(b.Instrs,
		rtl.NewMov(rtl.RegR1, rtl.Imm(8)),
		rtl.NewALU(rtl.OpMul, rtl.RegR0, rtl.R(rtl.RegR0), rtl.R(rtl.RegR1)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)},
	)
	if !(opt.StrengthReduction{}).Apply(f, d) {
		t.Fatalf("strength reduction dormant:\n%s", f)
	}
	s := f.String()
	if !strings.Contains(s, "<<") {
		t.Fatalf("no shift in reduced code:\n%s", s)
	}
	if strings.Contains(s, "*") {
		t.Fatalf("multiply survived:\n%s", s)
	}
}

func mustCompile(t *testing.T, src string) *rtl.Program {
	t.Helper()
	prog, err := compileSrc(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
