package opt

import (
	"fmt"
	"sort"

	"repro/internal/rtl"
)

// RegAssign is the compulsory register assignment pass: it maps every
// pseudo register onto a hardware register by graph coloring, spilling
// to the stack frame when the function's pressure exceeds the register
// file. VPO performs it implicitly before the first code-improving
// phase in a sequence that requires it; it is not itself a candidate
// phase of the search.
func RegAssign(f *rtl.Func) {
	if f.RegAssigned {
		return
	}
	for iter := 0; ; iter++ {
		if iter > 32 {
			panic(fmt.Sprintf("opt: register assignment failed to converge for %q", f.Name))
		}
		spilled, ok := colorOnce(f)
		if ok {
			break
		}
		spillPseudo(f, spilled)
	}
	f.RegAssigned = true
	// No pseudo registers remain: reset the allocator so dataflow
	// states sized by NextPseudo stay small for the rest of the
	// function's (heavily re-analyzed) life.
	f.NextPseudo = rtl.FirstPseudo
}

// colorOnce attempts one coloring of all pseudo registers. On failure
// it returns a pseudo register to spill.
func colorOnce(f *rtl.Func) (spill rtl.Reg, ok bool) {
	pseudos := collectPseudos(f)
	if len(pseudos) == 0 {
		return 0, true
	}

	// Interference: def d at a point interferes with everything live
	// immediately after that point. A move's source is excluded so
	// copies may share a register.
	inter := make(map[rtl.Reg]map[rtl.Reg]bool, len(pseudos))
	addEdge := func(a, b rtl.Reg) {
		if a == b {
			return
		}
		for _, r := range [2]rtl.Reg{a, b} {
			if !r.IsPseudo() {
				continue
			}
			m := inter[r]
			if m == nil {
				m = make(map[rtl.Reg]bool)
				inter[r] = m
			}
			other := a
			if r == a {
				other = b
			}
			m[other] = true
		}
	}

	g := rtl.ComputeCFG(f)
	lv := rtl.ComputeLiveness(g)
	var buf [8]rtl.Reg
	for bpos, b := range f.Blocks {
		live := lv.Out[bpos].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			moveSrc := rtl.RegNone
			if in.Op == rtl.OpMov && in.A.Kind == rtl.OperReg {
				moveSrc = in.A.Reg
			}
			for _, d := range in.Defs(buf[:0]) {
				live.ForEach(func(l rtl.Reg) {
					if l != moveSrc {
						addEdge(d, l)
					}
				})
			}
			for _, d := range in.Defs(buf[:0]) {
				live.Remove(d)
			}
			for _, u := range in.Uses(buf[:0]) {
				live.Add(u)
			}
		}
	}

	// Forbidden hardware registers per pseudo, derived from edges to
	// precolored registers.
	forbidden := make(map[rtl.Reg]map[rtl.Reg]bool, len(pseudos))
	for _, p := range pseudos {
		forbidden[p] = make(map[rtl.Reg]bool)
		for n := range inter[p] {
			if n.IsHard() {
				forbidden[p][n] = true
			}
		}
	}
	degree := func(p rtl.Reg) int {
		d := len(forbidden[p])
		for n := range inter[p] {
			if n.IsPseudo() {
				d++
			}
		}
		return d
	}

	k := len(rtl.AllocatableHardRegs)
	// Simplify: push low-degree nodes; when stuck, push the
	// highest-degree node optimistically (it becomes the spill
	// candidate if select fails).
	remaining := append([]rtl.Reg(nil), pseudos...)
	removed := make(map[rtl.Reg]bool)
	var stack []rtl.Reg
	curDegree := func(p rtl.Reg) int {
		d := len(forbidden[p])
		for n := range inter[p] {
			if n.IsPseudo() && !removed[n] {
				d++
			}
		}
		return d
	}
	for len(stack) < len(pseudos) {
		picked := rtl.RegNone
		for _, p := range remaining {
			if removed[p] {
				continue
			}
			if curDegree(p) < k {
				picked = p
				break
			}
		}
		if picked == rtl.RegNone {
			// Optimistic push of the max-degree node.
			best, bestDeg := rtl.RegNone, -1
			for _, p := range remaining {
				if removed[p] {
					continue
				}
				if d := degree(p); d > bestDeg {
					best, bestDeg = p, d
				}
			}
			picked = best
		}
		removed[picked] = true
		stack = append(stack, picked)
	}

	// Select colors in reverse simplification order.
	color := make(map[rtl.Reg]rtl.Reg, len(pseudos))
	for i := len(stack) - 1; i >= 0; i-- {
		p := stack[i]
		used := make(map[rtl.Reg]bool)
		for hw := range forbidden[p] {
			used[hw] = true
		}
		for n := range inter[p] {
			if n.IsPseudo() {
				if c, ok := color[n]; ok {
					used[c] = true
				}
			}
		}
		assigned := rtl.RegNone
		for _, hw := range rtl.AllocatableHardRegs {
			if !used[hw] {
				assigned = hw
				break
			}
		}
		if assigned == rtl.RegNone {
			return p, false
		}
		color[p] = assigned
	}

	// Rewrite.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst.IsPseudo() {
				in.Dst = color[in.Dst]
			}
			if in.A.Kind == rtl.OperReg && in.A.Reg.IsPseudo() {
				in.A.Reg = color[in.A.Reg]
			}
			if in.B.Kind == rtl.OperReg && in.B.Reg.IsPseudo() {
				in.B.Reg = color[in.B.Reg]
			}
		}
	}
	return 0, true
}

// collectPseudos returns every pseudo register referenced by f in
// increasing numeric order, keeping the pass deterministic.
func collectPseudos(f *rtl.Func) []rtl.Reg {
	set := make(map[rtl.Reg]bool)
	for r := range f.UsedRegs() {
		if r.IsPseudo() {
			set[r] = true
		}
	}
	out := make([]rtl.Reg, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// spillPseudo rewrites every definition and use of p through a fresh
// frame slot, splitting its live range into tiny per-access ranges.
func spillPseudo(f *rtl.Func, p rtl.Reg) {
	off := f.AddSlot(fmt.Sprintf(".spill%d", p), 4, false)
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := &b.Instrs[i]
			usesP := in.UsesReg(p)
			defsP := in.Dst == p
			if !usesP && !defsP {
				continue
			}
			if usesP {
				t := f.NewReg()
				in.RenameReg(p, t) // renames both use and def positions
				b.Insert(i, rtl.NewLoad(t, rtl.RegSP, off))
				i++
				if defsP {
					// Def position was renamed too; store the new value.
					b.Insert(i+1, rtl.NewStore(t, rtl.RegSP, off))
					i++
				}
				continue
			}
			// Pure definition.
			t := f.NewReg()
			in.Dst = t
			b.Insert(i+1, rtl.NewStore(t, rtl.RegSP, off))
			i++
		}
	}
}
