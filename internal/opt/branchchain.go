package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// BranchChaining is phase b: it replaces a branch or jump target with
// the target of the last jump in the jump chain. Unreachable code left
// behind by the retargeting is removed as part of the phase itself —
// the paper notes VPO does the same because such code hinders later
// analysis (Section 5.1) — which is why phase d is rarely active.
type BranchChaining struct{}

// ID returns the paper's designation for the phase.
func (BranchChaining) ID() byte { return 'b' }

// Name returns the paper's name for the phase.
func (BranchChaining) Name() string { return "branch chaining" }

// RequiresRegAssign reports that this control-flow phase runs on any
// register form.
func (BranchChaining) RequiresRegAssign() bool { return false }

// Apply runs the phase.
func (BranchChaining) Apply(f *rtl.Func, _ *machine.Desc) bool {
	// finalTarget follows a chain of jump-only blocks to its end,
	// guarding against cycles (an empty infinite loop).
	finalTarget := func(id int) int {
		seen := map[int]bool{}
		for {
			if seen[id] {
				return id
			}
			seen[id] = true
			b := f.BlockByID(id)
			if b == nil || len(b.Instrs) != 1 || b.Instrs[0].Op != rtl.OpJmp {
				return id
			}
			next := b.Instrs[0].Target
			if next == id {
				return id
			}
			id = next
		}
	}
	changed := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != rtl.OpBranch && in.Op != rtl.OpJmp {
				continue
			}
			if t := finalTarget(in.Target); t != in.Target {
				in.Target = t
				changed = true
			}
		}
	}
	if changed {
		removeUnreachableBlocks(f)
	}
	return changed
}

// RemoveUnreachable is phase d: it removes basic blocks that cannot be
// reached from the function entry block.
type RemoveUnreachable struct{}

// ID returns the paper's designation for the phase.
func (RemoveUnreachable) ID() byte { return 'd' }

// Name returns the paper's name for the phase.
func (RemoveUnreachable) Name() string { return "remove unreachable code" }

// RequiresRegAssign reports that this control-flow phase runs on any
// register form.
func (RemoveUnreachable) RequiresRegAssign() bool { return false }

// Apply runs the phase.
func (RemoveUnreachable) Apply(f *rtl.Func, _ *machine.Desc) bool {
	return removeUnreachableBlocks(f)
}

func removeUnreachableBlocks(f *rtl.Func) bool {
	reach := rtl.ComputeCFG(f).Reachable()
	changed := false
	for i := len(f.Blocks) - 1; i >= 0; i-- {
		if !reach[i] {
			f.RemoveBlockAt(i)
			changed = true
		}
	}
	if changed {
		// Removing a block may strand a predecessor's fall-through;
		// the function stays valid because only unreachable blocks
		// went away, but trailing structure may need normalizing.
		rtl.Cleanup(f)
	}
	return changed
}
