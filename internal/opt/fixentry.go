package opt

import (
	"fmt"

	"repro/internal/rtl"
)

// FixEntryExit is the compulsory final pass that inserts instructions
// at the entry and exit of the function to manage the activation
// record on the run-time stack (Section 3). After register assignment
// the callee-save registers the function actually uses are saved to
// fresh frame slots on entry and restored before every return. Like
// register assignment it is not a candidate phase: the paper applies
// it after the last code-improving phase of every sequence.
func FixEntryExit(f *rtl.Func) {
	if !f.RegAssigned {
		RegAssign(f)
	}
	f.EntryExitFixed = true
	var saved []rtl.Reg
	used := f.UsedRegs()
	for r := rtl.RegR4; r <= rtl.RegR11; r++ {
		if used[r] {
			saved = append(saved, r)
		}
	}
	if len(saved) == 0 {
		return
	}
	offsets := make([]int32, len(saved))
	for i, r := range saved {
		offsets[i] = f.AddSlot(fmt.Sprintf(".save_%s", r), 4, false)
	}
	entry := f.Entry()
	for i := len(saved) - 1; i >= 0; i-- {
		entry.Insert(0, rtl.NewStore(saved[i], rtl.RegSP, offsets[i]))
	}
	for _, b := range f.Blocks {
		last := b.Last()
		if last == nil || last.Op != rtl.OpRet {
			continue
		}
		at := len(b.Instrs) - 1
		for i, r := range saved {
			b.Insert(at, rtl.NewLoad(r, rtl.RegSP, offsets[i]))
			at++
		}
	}
}
