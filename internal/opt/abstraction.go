package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// CodeAbstraction is phase n: cross-jumping and code hoisting, moving
// identical instructions from basic blocks to their common predecessor
// or successor to shrink code size.
type CodeAbstraction struct{}

// ID returns the paper's designation for the phase.
func (CodeAbstraction) ID() byte { return 'n' }

// Name returns the paper's name for the phase.
func (CodeAbstraction) Name() string { return "code abstraction" }

// RequiresRegAssign reports that this dataflow phase runs after the
// compulsory register assignment.
func (CodeAbstraction) RequiresRegAssign() bool { return true }

// Apply runs the phase.
func (CodeAbstraction) Apply(f *rtl.Func, _ *machine.Desc) bool {
	changed := false
	for crossJumpOnce(f) || hoistCommonOnce(f) {
		changed = true
	}
	return changed
}

// crossJumpOnce moves one instruction shared as the final
// (pre-transfer) instruction of all predecessors of a join block into
// the join block. Every predecessor must reach the join
// unconditionally (a jump or fall-through), so the moved instruction
// executes under exactly the same conditions as before.
func crossJumpOnce(f *rtl.Func) bool {
	g := rtl.ComputeCFG(f)
	for spos := range f.Blocks {
		preds := g.Preds[spos]
		if len(preds) < 2 {
			continue
		}
		ok := true
		var shared *rtl.Instr
		for _, p := range preds {
			pb := f.Blocks[p]
			// The predecessor's only successor must be this block.
			if len(g.Succs[p]) != 1 || g.Succs[p][0] != spos {
				ok = false
				break
			}
			// Identify the last non-control instruction.
			idx := len(pb.Instrs) - 1
			if idx >= 0 && pb.Instrs[idx].Op.IsControl() {
				idx--
			}
			if idx < 0 {
				ok = false
				break
			}
			in := &pb.Instrs[idx]
			if shared == nil {
				shared = in
			} else if !shared.Equal(*in) {
				ok = false
				break
			}
		}
		if !ok || shared == nil {
			continue
		}
		moved := *shared
		for _, p := range preds {
			pb := f.Blocks[p]
			idx := len(pb.Instrs) - 1
			if pb.Instrs[idx].Op.IsControl() {
				idx--
			}
			pb.Remove(idx)
		}
		f.Blocks[spos].Insert(0, moved)
		return true
	}
	return false
}

// hoistCommonOnce moves one instruction that starts both successors of
// a conditional branch into the predecessor, placing it before the
// comparison so the condition codes are not disturbed. Both successors
// must have the branch block as their only predecessor.
func hoistCommonOnce(f *rtl.Func) bool {
	g := rtl.ComputeCFG(f)
	for ppos, pb := range f.Blocks {
		last := pb.Last()
		if last == nil || last.Op != rtl.OpBranch {
			continue
		}
		succs := g.Succs[ppos]
		if len(succs) != 2 {
			continue
		}
		s1, s2 := f.Blocks[succs[0]], f.Blocks[succs[1]]
		if len(g.Preds[succs[0]]) != 1 || len(g.Preds[succs[1]]) != 1 {
			continue
		}
		if len(s1.Instrs) == 0 || len(s2.Instrs) == 0 {
			continue
		}
		i1, i2 := s1.Instrs[0], s2.Instrs[0]
		if !i1.Equal(i2) || i1.Op.IsControl() || i1.Op == rtl.OpCmp || i1.Op == rtl.OpCall {
			continue
		}
		// The hoisted instruction lands before the comparison feeding
		// the branch; it must not define a register the comparison or
		// branch reads, nor redefine anything between there and the
		// block end... since it moves above the Cmp only, check the
		// Cmp's operands and the IC.
		cmpIdx := len(pb.Instrs) - 2
		if cmpIdx < 0 || pb.Instrs[cmpIdx].Op != rtl.OpCmp {
			continue
		}
		cmp := &pb.Instrs[cmpIdx]
		if i1.Dst != rtl.RegNone && (cmp.A.IsReg(i1.Dst) || cmp.B.IsReg(i1.Dst)) {
			continue
		}
		// A store or call must not move above the comparison either
		// (it cannot define registers, but keep the memory order
		// intact relative to nothing — stores are fine to move across
		// a pure comparison). Loads and stores are safe: the Cmp and
		// Branch do not touch memory.
		s1.Remove(0)
		s2.Remove(0)
		pb.Insert(cmpIdx, i1)
		return true
	}
	return false
}
