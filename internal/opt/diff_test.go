package opt_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
)

func TestDiffInstrsZeroForIdentical(t *testing.T) {
	prog, err := mc.Compile(`int f(int x) { return x * 3 + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	if d := opt.DiffInstrs(f, f.Clone()); d != 0 {
		t.Fatalf("identical functions diff by %d", d)
	}
}

func TestDiffInstrsIgnoresRenaming(t *testing.T) {
	prog, err := mc.Compile(`int f(int x) { return x * 3 + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	g := f.Clone()
	// Rename one pseudo register consistently: not a real change.
	old := rtl.FirstPseudo
	for _, b := range g.Blocks {
		for i := range b.Instrs {
			b.Instrs[i].RenameReg(old, g.NextPseudo+5)
		}
	}
	if d := opt.DiffInstrs(f, g); d != 0 {
		t.Fatalf("pure renaming counted as %d changes", d)
	}
}

func TestAttemptMeasuredCountsChanges(t *testing.T) {
	prog, err := mc.Compile(`
int f(int x) {
    int y = x * 8;
    return y + x * 8;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	var st opt.State
	active, changed := opt.AttemptMeasured(f, &st, opt.ByID('s'), machine.StrongARM())
	if !active {
		t.Fatal("instruction selection dormant")
	}
	if changed <= 0 {
		t.Fatalf("active phase reported %d changed instructions", changed)
	}
	// A dormant phase reports zero.
	active, changed = opt.AttemptMeasured(f, &st, opt.ByID('d'), machine.StrongARM())
	if active || changed != 0 {
		t.Fatalf("dormant phase reported active=%v changed=%d", active, changed)
	}
}
