package opt

import (
	"math/bits"

	"repro/internal/machine"
	"repro/internal/rtl"
)

// StrengthReduction is phase q: it replaces an expensive instruction
// with one or more cheaper ones. For this compiler — as for the
// version of VPO in the paper — that means rewriting a multiply by a
// constant into a sequence of shifts, adds and subtracts.
//
// The constant operand is recognized as a register defined by an
// immediate move earlier in the same block; the move itself is left in
// place and becomes dead once the multiply no longer reads it, which
// is one of the ways q enables dead assignment elimination (h).
type StrengthReduction struct{}

// ID returns the paper's designation for the phase.
func (StrengthReduction) ID() byte { return 'q' }

// Name returns the paper's name for the phase.
func (StrengthReduction) Name() string { return "strength reduction" }

// RequiresRegAssign reports that this dataflow phase runs after the
// compulsory register assignment.
func (StrengthReduction) RequiresRegAssign() bool { return true }

// Apply runs the phase.
func (StrengthReduction) Apply(f *rtl.Func, d *machine.Desc) bool {
	changed := false
	for reduceOnce(f, d) {
		changed = true
	}
	return changed
}

// reduceOnce rewrites one multiply-by-constant, returning whether it
// did.
func reduceOnce(f *rtl.Func, d *machine.Desc) bool {
	g := rtl.ComputeCFG(f)
	lv := rtl.ComputeLiveness(g)
	for bpos, b := range f.Blocks {
		for j := 0; j < len(b.Instrs); j++ {
			in := b.Instrs[j]
			if in.Op != rtl.OpMul {
				continue
			}
			// Find a constant operand: a register defined by Mov #c
			// with no intervening redefinition. Either side works
			// since multiply commutes.
			for _, side := range [2]int{1, 0} {
				var constOp, valOp rtl.Operand
				if side == 1 {
					constOp, valOp = in.B, in.A
				} else {
					constOp, valOp = in.A, in.B
				}
				if constOp.Kind != rtl.OperReg || valOp.Kind != rtl.OperReg {
					continue
				}
				c, ok := constRegValue(b, j, constOp.Reg)
				if !ok {
					continue
				}
				// The constant's register can serve as a scratch only
				// when nothing reads it after the multiply.
				scratch := constOp.Reg
				if scratch == in.Dst || !deadAfter(b, j, scratch, lv.Out[bpos]) {
					scratch = rtl.RegNone
				}
				seq := expandMulByConst(in.Dst, valOp.Reg, scratch, c)
				if seq == nil {
					continue
				}
				if seqCost(d, seq) >= d.Cost(&in) {
					continue
				}
				b.Remove(j)
				for k := len(seq) - 1; k >= 0; k-- {
					b.Insert(j, seq[k])
				}
				return true
			}
		}
	}
	return false
}

// deadAfter reports whether register r is dead immediately after
// position j of the block.
func deadAfter(b *rtl.Block, j int, r rtl.Reg, liveOut rtl.RegSet) bool {
	for p := j + 1; p < len(b.Instrs); p++ {
		if b.Instrs[p].UsesReg(r) {
			return false
		}
		if b.Instrs[p].DefsReg(r) {
			return true
		}
	}
	return !liveOut.Has(r)
}

func seqCost(d *machine.Desc, seq []rtl.Instr) int {
	n := 0
	for i := range seq {
		n += d.Cost(&seq[i])
	}
	return n
}

// constRegValue reports the constant held by register r at position j
// of the block, established by a Mov r,#c at an earlier position with
// no redefinition (and no call) in between.
func constRegValue(b *rtl.Block, j int, r rtl.Reg) (int32, bool) {
	for i := j - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		if in.DefsReg(r) {
			if in.Op == rtl.OpMov && in.A.Kind == rtl.OperImm {
				return in.A.Imm, true
			}
			return 0, false
		}
	}
	return 0, false
}

// expandMulByConst builds a shift/add/subtract sequence computing
// dst = src * c, using scratch (the register that held the constant,
// dead after the multiply) as a temporary. scratch may be RegNone when
// no temporary is available, which rules out the decompositions that
// need one. It returns nil when the decomposition would need more
// registers or instructions than profitable.
func expandMulByConst(dst, src, scratch rtl.Reg, c int32) []rtl.Instr {
	if scratch == src || scratch == rtl.RegSP || scratch == dst {
		scratch = rtl.RegNone
	}
	neg := false
	uc := uint32(c)
	if c < 0 {
		neg = true
		uc = uint32(-c)
	}
	var seq []rtl.Instr
	switch {
	case c == 0:
		return []rtl.Instr{rtl.NewMov(dst, rtl.Imm(0))}
	case c == 1:
		return []rtl.Instr{rtl.NewMov(dst, rtl.R(src))}
	case c == -1:
		return []rtl.Instr{{Op: rtl.OpNeg, Dst: dst, A: rtl.R(src)}}

	case bits.OnesCount32(uc) == 1:
		// Power of two: one shift.
		k := int32(bits.TrailingZeros32(uc))
		seq = []rtl.Instr{rtl.NewALU(rtl.OpShl, dst, rtl.R(src), rtl.Imm(k))}

	case bits.OnesCount32(uc+1) == 1:
		// 2^k - 1: shift then subtract.
		k := int32(bits.TrailingZeros32(uc + 1))
		t := dst
		if dst == src {
			if scratch == rtl.RegNone {
				return nil
			}
			t = scratch
		}
		seq = []rtl.Instr{
			rtl.NewALU(rtl.OpShl, t, rtl.R(src), rtl.Imm(k)),
			rtl.NewALU(rtl.OpSub, dst, rtl.R(t), rtl.R(src)),
		}

	case bits.OnesCount32(uc) == 2:
		// Two set bits: two shifts and an add, arranged so src is
		// fully read before dst is clobbered.
		hi := int32(31 - bits.LeadingZeros32(uc))
		lo := int32(bits.TrailingZeros32(uc))
		if dst != src {
			seq = []rtl.Instr{
				rtl.NewALU(rtl.OpShl, dst, rtl.R(src), rtl.Imm(hi)),
			}
			if lo == 0 {
				seq = append(seq, rtl.NewALU(rtl.OpAdd, dst, rtl.R(dst), rtl.R(src)))
			} else {
				if scratch == rtl.RegNone {
					return nil
				}
				seq = append(seq,
					rtl.NewALU(rtl.OpShl, scratch, rtl.R(src), rtl.Imm(lo)),
					rtl.NewALU(rtl.OpAdd, dst, rtl.R(dst), rtl.R(scratch)))
			}
		} else {
			if scratch == rtl.RegNone {
				return nil
			}
			if lo == 0 {
				seq = []rtl.Instr{
					rtl.NewALU(rtl.OpShl, scratch, rtl.R(src), rtl.Imm(hi)),
					rtl.NewALU(rtl.OpAdd, dst, rtl.R(scratch), rtl.R(src)),
				}
			} else {
				seq = []rtl.Instr{
					rtl.NewALU(rtl.OpShl, scratch, rtl.R(src), rtl.Imm(lo)),
					rtl.NewALU(rtl.OpShl, dst, rtl.R(src), rtl.Imm(hi)),
					rtl.NewALU(rtl.OpAdd, dst, rtl.R(dst), rtl.R(scratch)),
				}
			}
		}

	default:
		return nil
	}
	if neg {
		seq = append(seq, rtl.Instr{Op: rtl.OpNeg, Dst: dst, A: rtl.R(dst)})
	}
	return seq
}
