package opt_test

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// These tests exercise each phase on hand-built RTL where the expected
// transformation is known exactly, complementing the differential
// suite (which checks behaviour but not the specific rewrite).

func newAssigned(name string) *rtl.Func {
	f := rtl.NewFunc(name, 0, false)
	f.RegAssigned = true
	return f
}

func ret() rtl.Instr { return rtl.Instr{Op: rtl.OpRet} }

// --- b: branch chaining ---------------------------------------------------

func TestBranchChainingFollowsChains(t *testing.T) {
	f := newAssigned("chain")
	b0 := f.Entry()
	j1 := f.AddBlock()
	j2 := f.AddBlock()
	end := f.AddBlock()
	b0.Instrs = append(b0.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelEQ, j1.ID))
	// j1 and j2 are a jump chain ending at end.
	j1.Instrs = append(j1.Instrs, rtl.NewJmp(j2.ID))
	j2.Instrs = append(j2.Instrs, rtl.NewJmp(end.ID))
	end.Instrs = append(end.Instrs, ret())

	if !(opt.BranchChaining{}).Apply(f, machine.StrongARM()) {
		t.Fatal("dormant on a jump chain")
	}
	if f.Entry().Last().Target != end.ID {
		t.Fatalf("branch not retargeted to the chain end:\n%s", f)
	}
	// The now-unreachable jump blocks were removed by the phase itself
	// (Section 5.1), so d stays dormant.
	if (opt.RemoveUnreachable{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("b left unreachable code behind:\n%s", f)
	}
}

func TestBranchChainingHandlesCycles(t *testing.T) {
	f := newAssigned("cycle")
	b0 := f.Entry()
	a := f.AddBlock()
	b := f.AddBlock()
	end := f.AddBlock()
	b0.Instrs = append(b0.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelEQ, a.ID))
	a.Instrs = append(a.Instrs, rtl.NewJmp(b.ID))
	b.Instrs = append(b.Instrs, rtl.NewJmp(a.ID)) // empty infinite loop
	end.Instrs = append(end.Instrs, ret())

	// Must not hang; the cyclic chain cannot be shortened.
	(opt.BranchChaining{}).Apply(f, machine.StrongARM())
	if err := rtl.Validate(f); err != nil {
		t.Fatal(err)
	}
}

// --- u: useless jump removal ----------------------------------------------

func TestUselessJumpRemoval(t *testing.T) {
	f := newAssigned("uj")
	b0 := f.Entry()
	next := f.AddBlock()
	b0.Instrs = append(b0.Instrs,
		rtl.NewMov(rtl.RegR0, rtl.Imm(1)),
		rtl.NewJmp(next.ID)) // jump to the following block
	next.Instrs = append(next.Instrs, ret())

	if !(opt.UselessJumpRemoval{}).Apply(f, machine.StrongARM()) {
		t.Fatal("dormant on a jump-to-next")
	}
	if f.NumBranches() != 0 {
		t.Fatalf("jump survived:\n%s", f)
	}
}

func TestUselessBranchToFallThrough(t *testing.T) {
	f := newAssigned("ub")
	b0 := f.Entry()
	next := f.AddBlock()
	b0.Instrs = append(b0.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelEQ, next.ID)) // both arms reach next
	next.Instrs = append(next.Instrs, ret())

	if !(opt.UselessJumpRemoval{}).Apply(f, machine.StrongARM()) {
		t.Fatal("dormant on a branch-to-next")
	}
	if f.NumBranches() != 0 {
		t.Fatalf("branch survived:\n%s", f)
	}
}

// --- r: reverse branches ----------------------------------------------------

func TestReverseBranches(t *testing.T) {
	f := newAssigned("rb")
	b0 := f.Entry()
	jb := f.AddBlock()
	thenB := f.AddBlock()
	elseB := f.AddBlock()
	b0.Instrs = append(b0.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelLT, thenB.ID)) // branches over jb
	jb.Instrs = append(jb.Instrs, rtl.NewJmp(elseB.ID))
	thenB.Instrs = append(thenB.Instrs,
		rtl.NewMov(rtl.RegR0, rtl.Imm(1)),
		ret())
	elseB.Instrs = append(elseB.Instrs,
		rtl.NewMov(rtl.RegR0, rtl.Imm(2)),
		ret())

	if !(opt.ReverseBranches{}).Apply(f, machine.StrongARM()) {
		t.Fatal("dormant on a branch-over-jump")
	}
	last := f.Entry().Last()
	if last.Rel != rtl.RelGE || last.Target != elseB.ID {
		t.Fatalf("expected PC=IC>=0,L%d:\n%s", elseB.ID, f)
	}
	// One jump gone, block count reduced.
	if f.NumBranches() != 1 {
		t.Fatalf("jump not removed:\n%s", f)
	}
}

// --- i: block reordering -----------------------------------------------------

func TestBlockReorderingMovesSinglePredTarget(t *testing.T) {
	f := newAssigned("reorder")
	b0 := f.Entry()
	mid := f.AddBlock()
	tgt := f.AddBlock()
	b0.Instrs = append(b0.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelEQ, mid.ID))
	// fallthrough block jumping to tgt, with tgt elsewhere.
	ft := f.Blocks[1] // mid is position 1? ensure layout: entry, mid, tgt
	_ = ft
	mid.Instrs = append(mid.Instrs, ret())
	tgt.Instrs = append(tgt.Instrs, ret())
	// Rebuild with the pattern: entry ends Jmp tgt, tgt at the end
	// with a single predecessor and a Ret.
	f2 := newAssigned("reorder2")
	a := f2.Entry()
	bmid := f2.AddBlock()
	c := f2.AddBlock()
	a.Instrs = append(a.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelEQ, bmid.ID))
	// position 1: jump away to c
	j := f2.NewDetachedBlock()
	j.Instrs = append(j.Instrs, rtl.NewJmp(c.ID))
	f2.InsertBlockAfter(0, j)
	bmid.Instrs = append(bmid.Instrs, ret())
	c.Instrs = append(c.Instrs, rtl.NewMov(rtl.RegR0, rtl.Imm(7)), ret())

	if err := rtl.Validate(f2); err != nil {
		t.Fatal(err)
	}
	before := f2.NumBranches()
	if !(opt.BlockReordering{}).Apply(f2, machine.StrongARM()) {
		t.Fatalf("dormant:\n%s", f2)
	}
	if f2.NumBranches() != before-1 {
		t.Fatalf("no jump removed:\n%s", f2)
	}
	if err := rtl.Validate(f2); err != nil {
		t.Fatalf("%v:\n%s", err, f2)
	}
}

// --- j: minimize loop jumps --------------------------------------------------

func TestMinimizeLoopJumpsRotates(t *testing.T) {
	// while-loop shape: head tests, body jumps back.
	f := newAssigned("rot")
	entry := f.Entry()
	head := f.AddBlock()
	body := f.AddBlock()
	exit := f.AddBlock()
	entry.Instrs = append(entry.Instrs, rtl.NewMov(rtl.RegR1, rtl.Imm(0)))
	head.Instrs = append(head.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR1), rtl.R(rtl.RegR0)),
		rtl.NewBranch(rtl.RelGE, exit.ID))
	body.Instrs = append(body.Instrs,
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR1), rtl.Imm(1)),
		rtl.NewJmp(head.ID))
	exit.Instrs = append(exit.Instrs, ret())

	if !(opt.MinimizeLoopJumps{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant on a rotatable loop:\n%s", f)
	}
	// The body must now end in a conditional branch, not a jump.
	s := f.String()
	if strings.Contains(s, "PC=L"+itoa(head.ID)+";") {
		t.Fatalf("back jump survived:\n%s", s)
	}
	if err := rtl.Validate(f); err != nil {
		t.Fatalf("%v:\n%s", err, f)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// --- n: code abstraction -----------------------------------------------------

func TestCrossJumping(t *testing.T) {
	// Two arms both end storing r0 to the same slot before joining.
	f := newAssigned("cj")
	f.AddSlot("x", 4, false)
	entry := f.Entry()
	arm1 := f.AddBlock()
	arm2 := f.AddBlock()
	join := f.AddBlock()
	entry.Instrs = append(entry.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelLT, arm2.ID))
	arm1.Instrs = append(arm1.Instrs,
		rtl.NewMov(rtl.RegR1, rtl.Imm(1)),
		rtl.NewStore(rtl.RegR1, rtl.RegSP, 0),
		rtl.NewJmp(join.ID))
	arm2.Instrs = append(arm2.Instrs,
		rtl.NewMov(rtl.RegR1, rtl.Imm(2)),
		rtl.NewStore(rtl.RegR1, rtl.RegSP, 0),
	) // falls through to join
	join.Instrs = append(join.Instrs, ret())

	before := f.NumInstrs()
	if !(opt.CodeAbstraction{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant on identical suffixes:\n%s", f)
	}
	if f.NumInstrs() >= before {
		t.Fatalf("no instruction saved: %d -> %d\n%s", before, f.NumInstrs(), f)
	}
	// The store must now appear exactly once, in the join block.
	if n := strings.Count(f.String(), "M[r[sp]]=r[1];"); n != 1 {
		t.Fatalf("store appears %d times:\n%s", n, f)
	}
}

func TestCodeHoisting(t *testing.T) {
	// Both successors of a branch start with the same instruction.
	f := newAssigned("hoist")
	entry := f.Entry()
	arm1 := f.AddBlock()
	arm2 := f.AddBlock()
	entry.Instrs = append(entry.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR0), rtl.Imm(0)),
		rtl.NewBranch(rtl.RelLT, arm2.ID))
	arm1.Instrs = append(arm1.Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(5)),
		rtl.NewMov(rtl.RegR0, rtl.Imm(1)),
		ret())
	arm2.Instrs = append(arm2.Instrs,
		rtl.NewMov(rtl.RegR2, rtl.Imm(5)),
		rtl.NewMov(rtl.RegR0, rtl.Imm(2)),
		ret())

	if !(opt.CodeAbstraction{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant on identical prefixes:\n%s", f)
	}
	if n := strings.Count(f.String(), "r[2]=5;"); n != 1 {
		t.Fatalf("hoisted instruction appears %d times:\n%s", n, f)
	}
	// It must sit before the comparison's branch but the comparison
	// itself must still feed the branch.
	entryS := ""
	for i := range f.Entry().Instrs {
		entryS += f.Entry().Instrs[i].String()
	}
	if !strings.Contains(entryS, "r[2]=5;") {
		t.Fatalf("instruction not hoisted into the predecessor:\n%s", f)
	}
}

// --- k: register allocation ---------------------------------------------------

func TestRegisterAllocationPromotesScalars(t *testing.T) {
	f := newAssigned("ra")
	off := f.AddSlot("x", 4, true)
	entry := f.Entry()
	entry.Instrs = append(entry.Instrs,
		rtl.NewStore(rtl.RegR0, rtl.RegSP, off),
		rtl.NewLoad(rtl.RegR1, rtl.RegSP, off),
		rtl.NewALU(rtl.OpAdd, rtl.RegR0, rtl.R(rtl.RegR1), rtl.Imm(1)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	f.Returns = true

	if !(opt.RegisterAllocation{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant on a promotable scalar:\n%s", f)
	}
	s := f.String()
	if strings.Contains(s, "M[") {
		t.Fatalf("memory access survived promotion:\n%s", s)
	}
	// The slot is no longer a promotion candidate.
	if f.Slots[0].Scalar {
		t.Fatal("slot still marked scalar after promotion")
	}
}

func TestRegisterAllocationRespectsCalls(t *testing.T) {
	// A scalar live across a call must land in a callee-save register.
	f := newAssigned("racall")
	off := f.AddSlot("x", 4, true)
	entry := f.Entry()
	entry.Instrs = append(entry.Instrs,
		rtl.NewStore(rtl.RegR0, rtl.RegSP, off),
		rtl.Instr{Op: rtl.OpCall, Sym: "g"},
		rtl.NewLoad(rtl.RegR1, rtl.RegSP, off),
		rtl.NewMov(rtl.RegR0, rtl.R(rtl.RegR1)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	f.Returns = true

	if !(opt.RegisterAllocation{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant:\n%s", f)
	}
	// Find the move the store became and check the register class.
	first := f.Entry().Instrs[0]
	if first.Op != rtl.OpMov {
		t.Fatalf("store not rewritten to a move:\n%s", f)
	}
	if !first.Dst.IsCalleeSave() {
		t.Fatalf("slot crossing a call promoted to caller-save %s:\n%s", first.Dst, f)
	}
}

// --- l: loop transformations ----------------------------------------------------

func TestLICMHoistsInvariantAddress(t *testing.T) {
	// A loop recomputing HI/LO of a global every iteration.
	f := newAssigned("licm")
	entry := f.Entry()
	head := f.AddBlock()
	body := f.AddBlock()
	exit := f.AddBlock()
	entry.Instrs = append(entry.Instrs, rtl.NewMov(rtl.RegR1, rtl.Imm(0)))
	head.Instrs = append(head.Instrs,
		rtl.NewCmp(rtl.R(rtl.RegR1), rtl.R(rtl.RegR0)),
		rtl.NewBranch(rtl.RelGE, exit.ID))
	body.Instrs = append(body.Instrs,
		rtl.Instr{Op: rtl.OpMovHi, Dst: rtl.RegR2, Sym: "g"},
		rtl.Instr{Op: rtl.OpAddLo, Dst: rtl.RegR2, A: rtl.R(rtl.RegR2), Sym: "g"},
		rtl.NewStore(rtl.RegR1, rtl.RegR2, 0),
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR1), rtl.Imm(1)),
		rtl.NewJmp(head.ID))
	exit.Instrs = append(exit.Instrs, ret())

	if !(opt.LoopTransformations{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant on loop-invariant address formation:\n%s", f)
	}
	// The HI must be gone from the loop body (hoisted to a preheader).
	g := rtl.ComputeCFG(f)
	loops := g.FindLoops()
	if len(loops) != 1 {
		t.Fatalf("loop structure destroyed:\n%s", f)
	}
	for bpos := range loops[0].Blocks {
		for i := range f.Blocks[bpos].Instrs {
			if f.Blocks[bpos].Instrs[i].Op == rtl.OpMovHi {
				t.Fatalf("HI[g] still inside the loop:\n%s", f)
			}
		}
	}
}

// --- g: loop unrolling ------------------------------------------------------------

func TestLoopUnrollingDoublesBody(t *testing.T) {
	// Bottom-test single-block self loop, the shape j produces.
	f := newAssigned("unroll")
	entry := f.Entry()
	loop := f.AddBlock()
	exit := f.AddBlock()
	entry.Instrs = append(entry.Instrs, rtl.NewMov(rtl.RegR1, rtl.Imm(0)))
	loop.Instrs = append(loop.Instrs,
		rtl.NewALU(rtl.OpAdd, rtl.RegR1, rtl.R(rtl.RegR1), rtl.Imm(1)),
		rtl.NewCmp(rtl.R(rtl.RegR1), rtl.R(rtl.RegR0)),
		rtl.NewBranch(rtl.RelLT, loop.ID))
	exit.Instrs = append(exit.Instrs, ret())

	nBefore := len(f.Blocks)
	if !(opt.LoopUnrolling{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant on a bottom-test self loop:\n%s", f)
	}
	if len(f.Blocks) != nBefore+1 {
		t.Fatalf("expected one new block:\n%s", f)
	}
	if err := rtl.Validate(f); err != nil {
		t.Fatalf("%v:\n%s", err, f)
	}
	// Re-applying must be dormant (the unrolled copies are not
	// self-loops).
	if (opt.LoopUnrolling{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("unrolling applied twice consecutively:\n%s", f)
	}
}

// --- o: evaluation order determination ----------------------------------------------

func TestEvalOrderReducesPressure(t *testing.T) {
	// Two long independent chains interleaved badly: all four values
	// live at once. Scheduling one chain before the other halves the
	// pressure.
	f := rtl.NewFunc("evalo", 0, true)
	r := func(i int) rtl.Reg { return rtl.FirstPseudo + rtl.Reg(i) }
	entry := f.Entry()
	for i := 0; i < 4; i++ {
		f.NewReg()
	}
	entry.Instrs = append(entry.Instrs,
		rtl.NewMov(r(0), rtl.Imm(1)),
		rtl.NewMov(r(1), rtl.Imm(2)),
		rtl.NewMov(r(2), rtl.Imm(3)),
		rtl.NewMov(r(3), rtl.Imm(4)),
		rtl.NewALU(rtl.OpAdd, r(0), rtl.R(r(0)), rtl.R(r(1))),
		rtl.NewALU(rtl.OpAdd, r(2), rtl.R(r(2)), rtl.R(r(3))),
		rtl.NewALU(rtl.OpAdd, r(0), rtl.R(r(0)), rtl.R(r(2))),
		rtl.NewMov(rtl.RegR0, rtl.R(r(0))),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})

	if !(opt.EvalOrderDetermination{}).Apply(f, machine.StrongARM()) {
		t.Fatalf("dormant on an interleaved schedule:\n%s", f)
	}
	// After register assignment the phase is illegal.
	opt.RegAssign(f)
	if (opt.EvalOrderDetermination{}).Apply(f, machine.StrongARM()) {
		t.Fatal("o ran after register assignment")
	}
}

// --- compulsory passes ---------------------------------------------------------------

func TestFixEntryExitSavesCalleeSave(t *testing.T) {
	f := newAssigned("fee")
	f.Returns = true
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewMov(rtl.RegR4, rtl.Imm(11)),
		rtl.NewMov(rtl.RegR0, rtl.R(rtl.RegR4)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	opt.FixEntryExit(f)
	s := f.String()
	if !strings.Contains(s, "M[r[sp]") {
		t.Fatalf("no save of r4:\n%s", s)
	}
	first := f.Entry().Instrs[0]
	if first.Op != rtl.OpStore || !first.A.IsReg(rtl.RegR4) {
		t.Fatalf("entry does not save r4:\n%s", s)
	}
	// The restore sits right before the return.
	instrs := f.Blocks[len(f.Blocks)-1].Instrs
	load := instrs[len(instrs)-2]
	if load.Op != rtl.OpLoad || load.Dst != rtl.RegR4 {
		t.Fatalf("no restore before return:\n%s", s)
	}
}

func TestRegAssignIdempotent(t *testing.T) {
	f := rtl.NewFunc("ri", 1, true)
	t1 := f.NewReg()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.NewALU(rtl.OpAdd, t1, rtl.R(rtl.RegR0), rtl.Imm(1)),
		rtl.NewMov(rtl.RegR0, rtl.R(t1)),
		rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
	opt.RegAssign(f)
	if !f.RegAssigned {
		t.Fatal("flag not set")
	}
	before := f.String()
	opt.RegAssign(f)
	if f.String() != before {
		t.Fatal("second register assignment changed the code")
	}
}
