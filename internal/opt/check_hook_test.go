package opt_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/check"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// TestMain turns the semantic verifier on for every test in this
// package: each active phase application anywhere in these tests runs
// the full internal/check rule set through opt.PostCheck, panicking
// with the offending phase on a violation. The cmd tools opt into the
// same hook with -check; in the test suite it is on by default.
func TestMain(m *testing.M) {
	opt.PostCheck = check.Err
	os.Exit(m.Run())
}

// snapshot captures everything about a function a phase could mutate;
// two snapshots are equal exactly when the function is untouched.
func snapshot(f *rtl.Func) string {
	return fmt.Sprintf("%s|ra=%v eef=%v frame=%d slots=%d pseudo=%d block=%d",
		f.String(), f.RegAssigned, f.EntryExitFixed,
		f.FrameSize, len(f.Slots), f.NextPseudo, f.NextBlockID)
}

// TestDormantAttemptDoesNotLeakIntoParent pins down the documented
// opt.Attempt hazard: a dormant attempt may still mutate its argument
// through the implicit register assignment, so search code must
// attempt phases on a clone and discard it when dormant. This test
// asserts the clone protocol is airtight — the parent is bit-for-bit
// unchanged by any attempt on a clone, from the unoptimized state and
// from a mid-sequence state — and that a dormant clone still verifies
// clean (the implicit register assignment alone must not break
// invariants).
func TestDormantAttemptDoesNotLeakIntoParent(t *testing.T) {
	d := machine.StrongARM()
	for _, tc := range diffCorpus {
		prog, err := mc.Compile(tc.src)
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		parent := prog.Func(tc.fn)

		// A mid-sequence parent: instruction selection then register
		// allocation, the state most phases are attempted from.
		mid := parent.Clone()
		midSt := opt.State{}
		for _, id := range []byte{'s', 'c', 'k'} {
			opt.Attempt(mid, &midSt, opt.ByID(id), d)
		}

		states := []struct {
			label string
			f     *rtl.Func
			st    opt.State
		}{
			{"unoptimized", parent, opt.State{}},
			{"after-sck", mid, midSt},
		}
		for _, s := range states {
			before := snapshot(s.f)
			for _, p := range opt.All() {
				if !opt.Enabled(p, s.st) {
					continue
				}
				clone := s.f.Clone()
				st := s.st
				active := opt.Attempt(clone, &st, p, d)
				if got := snapshot(s.f); got != before {
					t.Fatalf("%s/%s: attempting %c on a clone mutated the parent\nbefore:\n%s\nafter:\n%s",
						tc.name, s.label, p.ID(), before, got)
				}
				if !active {
					// The dormant clone may have been register-assigned;
					// that alone must leave it verifier-clean.
					if err := check.Err(clone, d); err != nil {
						t.Errorf("%s/%s: dormant %c left the clone unverifiable: %v",
							tc.name, s.label, p.ID(), err)
					}
					if st.KApplied != s.st.KApplied || st.SApplied != s.st.SApplied {
						t.Errorf("%s/%s: dormant %c changed the gating state", tc.name, s.label, p.ID())
					}
				}
			}
		}
	}
}

// TestPostCheckReportsOffendingPhase asserts the hook's contract: when
// a phase produces bad code, Attempt panics with a CheckError naming
// that phase, which is what lets the drivers print the exact
// reproduction recipe (prefix sequence + offender).
func TestPostCheckReportsOffendingPhase(t *testing.T) {
	f, err := rtl.ParseFunc(`
victim(1):
L0:
	r[1]=r[0]+1;
	RET r[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Attempt did not panic on a verifier violation")
		}
		ce, ok := r.(*opt.CheckError)
		if !ok {
			t.Fatalf("panic payload is %T, want *opt.CheckError", r)
		}
		if ce.Phase != (evilPhase{}).ID() {
			t.Fatalf("CheckError.Phase = %c, want %c", ce.Phase, (evilPhase{}).ID())
		}
		if ce.Err == nil || ce.Unwrap() == nil {
			t.Fatal("CheckError carries no cause")
		}
	}()
	st := opt.State{}
	opt.Attempt(f, &st, evilPhase{}, machine.StrongARM())
}

// evilPhase is a deliberately miscompiling phase: it rewrites the
// first instruction to read a register that is never defined.
type evilPhase struct{}

func (evilPhase) ID() byte                { return 'Z' }
func (evilPhase) Name() string            { return "deliberate miscompile" }
func (evilPhase) RequiresRegAssign() bool { return false }
func (evilPhase) Apply(f *rtl.Func, _ *machine.Desc) bool {
	in := &f.Entry().Instrs[0]
	in.A = rtl.R(rtl.RegR9)
	return true
}
