package opt

import (
	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// DiffInstrs measures how much a transformation changed a function: the
// size of the symmetric difference between the two instruction
// multisets (over canonically renumbered code, so register renaming
// alone does not count), divided by two and rounded up — roughly "how
// many instructions were touched". Section 7 of the paper proposes
// tracking "the number and type of actual changes for which each phase
// is responsible" instead of the bare active/dormant bit; this is that
// measurement.
func DiffInstrs(a, b *rtl.Func) int {
	ca := fingerprint.Canonicalize(a)
	cb := fingerprint.Canonicalize(b)
	counts := make(map[string]int)
	for _, blk := range ca.Blocks {
		for i := range blk.Instrs {
			counts[blk.Instrs[i].String()]++
		}
	}
	for _, blk := range cb.Blocks {
		for i := range blk.Instrs {
			counts[blk.Instrs[i].String()]--
		}
	}
	diff := 0
	for _, c := range counts {
		if c < 0 {
			c = -c
		}
		diff += c
	}
	return (diff + 1) / 2
}

// AttemptMeasured is Attempt plus the Section 7 change measurement:
// it returns whether the phase was active and how many instructions it
// touched.
func AttemptMeasured(f *rtl.Func, st *State, p Phase, d *machine.Desc) (active bool, changed int) {
	before := f.Clone()
	active = Attempt(f, st, p, d)
	if !active {
		return false, 0
	}
	return true, DiffInstrs(before, f)
}
