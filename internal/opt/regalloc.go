package opt

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/rtl"
)

// RegisterAllocation is phase k: it uses graph coloring to replace
// references to a variable within a live range with a register. In
// this compiler — following VPO — local scalars and arguments live in
// stack-frame slots until this phase promotes them: loads of a
// promoted slot become register moves (which instruction selection
// then collapses, the classic k-enables-s interaction) and stores
// become moves the other way.
//
// A slot whose live range crosses a call can only be promoted to a
// callee-save register; a slot whose address may be taken is never
// promoted (the frontend marks those non-scalar).
type RegisterAllocation struct{}

// ID returns the paper's designation for the phase.
func (RegisterAllocation) ID() byte { return 'k' }

// Name returns the paper's name for the phase.
func (RegisterAllocation) Name() string { return "register allocation" }

// RequiresRegAssign reports that this dataflow phase runs after the
// compulsory register assignment.
func (RegisterAllocation) RequiresRegAssign() bool { return true }

// slotVirtBase maps scalar slots into a virtual register namespace
// above all pseudo registers so that one liveness computation covers
// hardware registers and slots together.
const slotVirtBase = 1 << 14

// Apply runs the phase.
func (RegisterAllocation) Apply(f *rtl.Func, _ *machine.Desc) bool {
	candidates := scalarSlots(f)
	if len(candidates) == 0 {
		return false
	}

	// Shadow function: rewrite scalar-slot loads/stores as moves
	// to/from virtual registers, so ordinary liveness analysis yields
	// slot live ranges and slot/register interference.
	shadow := f.Clone()
	shadow.NextPseudo = slotVirtBase + rtl.Reg(len(f.Slots))
	for _, b := range shadow.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if si, ok := scalarSlotAccess(f, in); ok {
				v := slotVirtBase + rtl.Reg(si)
				switch in.Op {
				case rtl.OpLoad:
					*in = rtl.NewMov(in.Dst, rtl.R(v))
				case rtl.OpStore:
					*in = rtl.NewMov(v, in.A)
				}
			}
		}
	}

	g := rtl.ComputeCFG(shadow)
	lv := rtl.ComputeLiveness(g)

	// Interference of each candidate slot with hardware registers and
	// with other candidate slots: a definition interferes with
	// everything live after it.
	forbidden := make(map[int]map[rtl.Reg]bool) // slot index -> hw regs
	slotConflict := make(map[int]map[int]bool)  // slot index -> slot indexes
	crossesCall := make(map[int]bool)
	for _, si := range candidates {
		forbidden[si] = make(map[rtl.Reg]bool)
		slotConflict[si] = make(map[int]bool)
	}
	isVirt := func(r rtl.Reg) (int, bool) {
		if r >= slotVirtBase {
			return int(r - slotVirtBase), true
		}
		return -1, false
	}
	var buf [8]rtl.Reg
	for bpos, b := range shadow.Blocks {
		live := lv.Out[bpos].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if in.Op == rtl.OpCall {
				// Any slot live across the call conflicts with
				// caller-save registers.
				live.ForEach(func(l rtl.Reg) {
					if si, ok := isVirt(l); ok {
						crossesCall[si] = true
					}
				})
			}
			moveSrc := rtl.RegNone
			if in.Op == rtl.OpMov && in.A.Kind == rtl.OperReg {
				moveSrc = in.A.Reg
			}
			for _, dreg := range in.Defs(buf[:0]) {
				dsi, dIsVirt := isVirt(dreg)
				live.ForEach(func(l rtl.Reg) {
					if l == moveSrc || l == dreg {
						return
					}
					lsi, lIsVirt := isVirt(l)
					switch {
					case dIsVirt && lIsVirt:
						slotConflict[dsi][lsi] = true
						slotConflict[lsi][dsi] = true
					case dIsVirt && l.IsHard():
						forbidden[dsi][l] = true
					case lIsVirt && dreg.IsHard():
						forbidden[lsi][dreg] = true
					}
				})
			}
			for _, dreg := range in.Defs(buf[:0]) {
				live.Remove(dreg)
			}
			for _, ureg := range in.Uses(buf[:0]) {
				live.Add(ureg)
			}
		}
	}

	// Registers referenced anywhere in the original function can hold
	// unrelated values in blocks the liveness pass cannot see through
	// (dead defs still clobber); exclude registers that are defined
	// anywhere the slot is live — approximated above — plus SP/LR/PC.
	// Color slots in order of descending access count so the most
	// valuable promotions happen first.
	counts := make(map[int]int)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if si, ok := scalarSlotAccess(f, &b.Instrs[i]); ok {
				counts[si]++
			}
		}
	}
	order := append([]int(nil), candidates...)
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})

	assigned := make(map[int]rtl.Reg)
	for _, si := range order {
		if counts[si] == 0 {
			continue // slot never accessed
		}
		used := make(map[rtl.Reg]bool)
		for hw := range forbidden[si] {
			used[hw] = true
		}
		for other := range slotConflict[si] {
			if hw, ok := assigned[other]; ok {
				used[hw] = true
			}
		}
		var choice rtl.Reg = rtl.RegNone
		for _, hw := range allocationPalette(crossesCall[si]) {
			if !used[hw] {
				choice = hw
				break
			}
		}
		if choice == rtl.RegNone {
			continue
		}
		assigned[si] = choice
	}
	if len(assigned) == 0 {
		return false
	}

	// Rewrite the real function.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			si, ok := scalarSlotAccess(f, in)
			if !ok {
				continue
			}
			hw, ok := assigned[si]
			if !ok {
				continue
			}
			switch in.Op {
			case rtl.OpLoad:
				*in = rtl.NewMov(in.Dst, rtl.R(hw))
			case rtl.OpStore:
				*in = rtl.NewMov(hw, in.A)
			}
		}
	}
	// Promoted slots are no longer memory-resident scalars.
	for si := range assigned {
		f.Slots[si].Scalar = false
		f.Slots[si].Name += ".promoted"
	}
	return true
}

// allocationPalette returns the hardware registers a slot may be
// promoted to. Slots live across calls must live in callee-save
// registers; others prefer callee-save too (so promoted variables
// survive later-introduced calls cheaply) but may use anything
// allocatable.
func allocationPalette(acrossCall bool) []rtl.Reg {
	calleeSave := []rtl.Reg{
		rtl.RegR4, rtl.RegR5, rtl.RegR6, rtl.RegR7,
		rtl.RegR8, rtl.RegR9, rtl.RegR10, rtl.RegR11,
	}
	if acrossCall {
		return calleeSave
	}
	return append(calleeSave, rtl.RegR12, rtl.RegR3, rtl.RegR2, rtl.RegR1, rtl.RegR0)
}

// scalarSlots lists the indexes of promotable slots.
func scalarSlots(f *rtl.Func) []int {
	var out []int
	for i := range f.Slots {
		if f.Slots[i].Scalar {
			out = append(out, i)
		}
	}
	return out
}

// scalarSlotAccess reports whether the instruction is a load or store
// of a promotable scalar slot, returning the slot index.
func scalarSlotAccess(f *rtl.Func, in *rtl.Instr) (int, bool) {
	var base rtl.Operand
	switch in.Op {
	case rtl.OpLoad:
		base = in.A
	case rtl.OpStore:
		base = in.B
	default:
		return -1, false
	}
	if !base.IsReg(rtl.RegSP) {
		return -1, false
	}
	for i := range f.Slots {
		s := &f.Slots[i]
		if s.Scalar && s.Offset == in.Disp {
			return i, true
		}
	}
	return -1, false
}
