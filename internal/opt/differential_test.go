package opt_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mc"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// A corpus of mini-C functions with interesting control flow, loops,
// calls, memory traffic and arithmetic, each with a set of argument
// vectors. Every phase ordering applied to these functions must
// preserve their observable behaviour (return value, trace output and
// final global memory) — the same invariant the paper's function
// instances satisfy by construction.
type diffCase struct {
	name string
	src  string
	fn   string
	args [][]int32
}

var diffCorpus = []diffCase{
	{
		name: "sumarray",
		src: `
int a[16] = {5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`,
		fn:   "sum",
		args: [][]int32{{0}, {1}, {7}, {16}},
	},
	{
		name: "fib",
		src: `
int fib(int n) {
    int a = 0;
    int b = 1;
    int i;
    for (i = 0; i < n; i++) { int t = a + b; a = b; b = t; }
    return a;
}`,
		fn:   "fib",
		args: [][]int32{{0}, {1}, {2}, {11}},
	},
	{
		name: "branches",
		src: `
int cls(int x) {
    if (x < 0) { if (x < -100) return -2; return -1; }
    else if (x == 0) return 0;
    if (x > 100) return 2;
    return 1;
}`,
		fn:   "cls",
		args: [][]int32{{-500}, {-5}, {0}, {5}, {500}},
	},
	{
		name: "mulconsts",
		src: `
int poly(int x) {
    int a = x * 2;
    int b = x * 10;
    int c = x * 7;
    int e = x * 16;
    int f = x * 3;
    return a + b * c - e + f * 100;
}`,
		fn:   "poly",
		args: [][]int32{{0}, {1}, {-3}, {12345}},
	},
	{
		name: "nestedloop",
		src: `
int mat[64];
void fill(int n) {
    int i;
    int j;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            mat[i * 8 + j] = i * j + 1;
}`,
		fn:   "fill",
		args: [][]int32{{0}, {3}, {8}},
	},
	{
		name: "whilebreak",
		src: `
int scan(int n) {
    int i = 0;
    int s = 0;
    while (1) {
        i++;
        if (i > n) break;
        if (i % 3 == 0) continue;
        s += i * i;
    }
    return s;
}`,
		fn:   "scan",
		args: [][]int32{{0}, {4}, {17}},
	},
	{
		name: "calls",
		src: `
int g;
int helper(int v) { g += v; return v * 2; }
int driver(int n) {
    int i;
    int acc = 0;
    g = 0;
    for (i = 0; i < n; i++) acc += helper(i) + i;
    return acc + g;
}`,
		fn:   "driver",
		args: [][]int32{{0}, {1}, {6}},
	},
	{
		name: "pointers",
		src: `
int swap_order(int a, int b) {
    int x;
    int y;
    int *p;
    int *q;
    x = a; y = b;
    p = &x; q = &y;
    if (*p > *q) { int t = *p; *p = *q; *q = t; }
    return x * 1000 + y;
}`,
		fn:   "swap_order",
		args: [][]int32{{1, 2}, {9, 4}, {5, 5}},
	},
	{
		name: "bitkernel",
		src: `
int bitcnt(int x) {
    int n = 0;
    while (x != 0) {
        n += x & 1;
        x = (x >> 1) & 0x7FFFFFFF;
    }
    return n;
}`,
		fn:   "bitkernel_entry",
		args: [][]int32{{0}, {1}, {255}, {-1}},
	},
	{
		name: "dowhile",
		src: `
int acc(int n) {
    int s = 0;
    do { s += n; n -= 2; } while (n > 0);
    return s;
}`,
		fn:   "acc",
		args: [][]int32{{0}, {1}, {10}},
	},
	{
		name: "shortcircuit",
		src: `
int sel(int a, int b, int c) {
    int r = 0;
    if (a > 0 && b > 0 || c > 0) r = 1;
    if (!(a == b) && (b < c || a >= 10)) r += 2;
    return r;
}`,
		fn:   "sel",
		args: [][]int32{{0, 0, 0}, {1, 1, 0}, {1, 0, 1}, {10, 2, -3}},
	},
	{
		name: "divmod",
		src: `
int dm(int a, int b) {
    int q = a / b;
    int r = a % b;
    return q * 10000 + r;
}`,
		fn:   "dm",
		args: [][]int32{{17, 5}, {-17, 5}, {100, 7}},
	},
	{
		name: "traceloop",
		src: `
void emit(int n) {
    int i;
    for (i = 1; i <= n; i++) {
        if (i % 2 == 0) __trace(i * 3);
        else __trace(i);
    }
}`,
		fn:   "emit",
		args: [][]int32{{0}, {5}},
	},
	{
		name: "globalscalar",
		src: `
int lo;
int hi;
void minmax3(int a, int b, int c) {
    lo = a; hi = a;
    if (b < lo) lo = b;
    if (b > hi) hi = b;
    if (c < lo) lo = c;
    if (c > hi) hi = c;
}`,
		fn:   "minmax3",
		args: [][]int32{{3, 1, 2}, {1, 2, 3}, {2, 2, 2}},
	},
	{
		name: "pressure",
		src: `
int wide(int a, int b, int c, int d) {
    int t1 = a + b;
    int t2 = a - b;
    int t3 = c + d;
    int t4 = c - d;
    int t5 = t1 * t3;
    int t6 = t2 * t4;
    int t7 = t1 * t4;
    int t8 = t2 * t3;
    int t9 = t5 + t6;
    int t10 = t7 - t8;
    int t11 = t9 * t10;
    int t12 = t5 - t7 + t6 - t8;
    return t11 + t12 * t9 - t10;
}`,
		fn:   "wide",
		args: [][]int32{{1, 2, 3, 4}, {-5, 9, 14, -2}},
	},
}

func init() {
	// bitkernel uses a different entry name in the table for variety;
	// normalize it here to keep the corpus literal readable.
	for i := range diffCorpus {
		if diffCorpus[i].name == "bitkernel" {
			diffCorpus[i].fn = "bitcnt"
		}
	}
}

// observe runs the program and captures all observable behaviour.
type observation struct {
	ret    int32
	trace  []int32
	mem    map[string][]int32
	failed string
}

func observe(prog *rtl.Program, fn string, args []int32) observation {
	m := interp.New(prog, interp.Limits{MaxSteps: 5_000_000})
	res, err := m.Run(fn, args...)
	if err != nil {
		return observation{failed: err.Error()}
	}
	ret := res.Ret
	if f := prog.Func(fn); f != nil && !f.Returns {
		ret = 0 // a void function's r0 at return is not observable
	}
	return observation{ret: ret, trace: res.Trace, mem: m.GlobalsSnapshot()}
}

func equalObs(a, b observation) bool {
	if a.failed != "" || b.failed != "" {
		return a.failed == b.failed
	}
	return a.ret == b.ret && reflect.DeepEqual(a.trace, b.trace) && reflect.DeepEqual(a.mem, b.mem)
}

// applyAndCheck applies a phase sequence to the named function,
// validating structure and behaviour after every active phase.
func applyAndCheck(t *testing.T, tc diffCase, seq []opt.Phase) {
	t.Helper()
	prog, err := mc.Compile(tc.src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	refs := make([]observation, len(tc.args))
	for i, args := range tc.args {
		refs[i] = observe(prog, tc.fn, args)
	}

	d := machine.StrongARM()
	f := prog.Func(tc.fn)
	var st opt.State
	applied := ""
	for _, p := range seq {
		active := opt.Attempt(f, &st, p, d)
		if active {
			applied += string(p.ID())
		}
		if err := rtl.Validate(f); err != nil {
			t.Fatalf("after %q (+%c): invalid RTL: %v\n%s", applied, p.ID(), err, f)
		}
		if err := check.Err(f, d); err != nil {
			t.Fatalf("after %q (+%c): semantic check: %v\n%s", applied, p.ID(), err, f)
		}
		if !active {
			continue
		}
		for i, args := range tc.args {
			got := observe(prog, tc.fn, args)
			if !equalObs(refs[i], got) {
				t.Fatalf("behaviour diverged after %q on args %v:\nref: %+v\ngot: %+v\nfunction:\n%s",
					applied, args, refs[i], got, f)
			}
		}
	}
}

// TestEveryPhaseAlone applies each phase individually (with its
// implicit register assignment) to every corpus function.
func TestEveryPhaseAlone(t *testing.T) {
	for _, tc := range diffCorpus {
		for _, p := range opt.All() {
			p := p
			tc := tc
			t.Run(fmt.Sprintf("%s/%c", tc.name, p.ID()), func(t *testing.T) {
				applyAndCheck(t, tc, []opt.Phase{p})
			})
		}
	}
}

// TestCanonicalSequences exercises hand-picked orderings that mirror
// known phase interactions (k enabling s, j enabling g, q enabling h).
func TestCanonicalSequences(t *testing.T) {
	seqs := map[string]string{
		"batchlike":  "bsckshlgqhnruij",
		"selectlast": "bckqhlnruijs",
		"loopheavy":  "sjkglschqhu",
		"cfonly":     "bdiruj",
		"evalorder":  "obsckh",
		"doubled":    "scscschhkkll",
	}
	for name, ids := range seqs {
		seq := make([]opt.Phase, 0, len(ids))
		for i := 0; i < len(ids); i++ {
			p := opt.ByID(ids[i])
			if p == nil {
				t.Fatalf("unknown phase id %c", ids[i])
			}
			seq = append(seq, p)
		}
		for _, tc := range diffCorpus {
			tc := tc
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				applyAndCheck(t, tc, seq)
			})
		}
	}
}

// TestRandomSequences fuzzes phase orderings with a fixed seed: 40
// random 14-phase sequences per corpus function, checking behaviour
// after every active phase.
func TestRandomSequences(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz loop")
	}
	all := opt.All()
	for _, tc := range diffCorpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC60_2006))
			for trial := 0; trial < 40; trial++ {
				seq := make([]opt.Phase, 14)
				for i := range seq {
					seq[i] = all[rng.Intn(len(all))]
				}
				applyAndCheck(t, tc, seq)
			}
		})
	}
}

// TestRegAssignSpills forces spilling by restricting no registers but
// relying on the high-pressure corpus entry, then confirms the
// function still behaves after a full phase sweep.
func TestRegAssignSpills(t *testing.T) {
	tc := diffCorpus[len(diffCorpus)-1] // "pressure"
	if tc.name != "pressure" {
		t.Fatal("corpus order changed")
	}
	prog, err := mc.Compile(tc.src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func(tc.fn)
	opt.RegAssign(f)
	if !f.RegAssigned {
		t.Fatal("RegAssigned not set")
	}
	if err := rtl.Validate(f); err != nil {
		t.Fatalf("invalid after register assignment: %v", err)
	}
	for _, args := range tc.args {
		want := (args[0] + args[1]) * (args[2] + args[3])
		_ = want // behaviour checked against interpreter reference below
	}
	ref, _ := mc.Compile(tc.src)
	for _, args := range tc.args {
		a := observe(ref, tc.fn, args)
		b := observe(prog, tc.fn, args)
		if !equalObs(a, b) {
			t.Fatalf("spill path diverged on %v: %+v vs %+v", args, a, b)
		}
	}
}

// compileSrc is shared by the paper tests.
func compileSrc(src string) (*rtl.Program, error) { return mc.Compile(src) }
