package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// EvalOrderDetermination is phase o: it reorders instructions within a
// single basic block in an attempt to use fewer registers. It is the
// one phase that must run before the compulsory register assignment —
// its purpose is to reduce the number of simultaneously live
// temporaries that register assignment will have to map onto hardware
// registers (Section 3).
//
// The implementation builds the dependence graph of each block and
// greedily schedules ready instructions, preferring instructions that
// kill operands over instructions that create new values. A block is
// rewritten only when the new order strictly lowers its maximum
// register pressure, so the phase is dormant when no improvement
// exists.
type EvalOrderDetermination struct{}

// ID returns the paper's designation for the phase.
func (EvalOrderDetermination) ID() byte { return 'o' }

// Name returns the paper's name for the phase.
func (EvalOrderDetermination) Name() string { return "evaluation order determination" }

// RequiresRegAssign reports that evaluation order determination runs
// on pseudo registers, before register assignment.
func (EvalOrderDetermination) RequiresRegAssign() bool { return false }

// Apply runs the phase.
func (EvalOrderDetermination) Apply(f *rtl.Func, _ *machine.Desc) bool {
	if f.RegAssigned {
		return false
	}
	changed := false
	g := rtl.ComputeCFG(f)
	lv := rtl.ComputeLiveness(g)
	for bpos, b := range f.Blocks {
		if reorderBlock(b, lv.Out[bpos]) {
			changed = true
		}
	}
	return changed
}

// reorderBlock attempts to reschedule one block; it commits and
// reports true only when the maximum number of simultaneously live
// registers strictly decreases.
func reorderBlock(b *rtl.Block, liveOut rtl.RegSet) bool {
	n := len(b.Instrs)
	if n < 3 {
		return false
	}

	// Dependence edges: j depends on i (i must stay before j) for
	// def-use, use-def (anti) and def-def (output) pairs, for memory
	// ordering, and to keep control transfers and the IC chain fixed.
	deps := make([][]int, n) // deps[j] = list of i that must precede j
	nsuccs := make([]int, n) // number of dependents
	indeg := make([]int, n)  // unsatisfied dependencies
	var bufD, bufU [8]rtl.Reg
	addDep := func(i, j int) {
		for _, e := range deps[j] {
			if e == i {
				return
			}
		}
		deps[j] = append(deps[j], i)
		nsuccs[i]++
		indeg[j]++
	}
	isMem := func(in *rtl.Instr) bool {
		return in.Op == rtl.OpLoad || in.Op == rtl.OpStore || in.Op == rtl.OpCall
	}
	isBarrier := func(in *rtl.Instr) bool {
		return in.Op == rtl.OpStore || in.Op == rtl.OpCall
	}
	for j := 0; j < n; j++ {
		jn := &b.Instrs[j]
		for i := 0; i < j; i++ {
			in := &b.Instrs[i]
			link := false
			for _, d := range in.Defs(bufD[:0]) {
				if jn.UsesReg(d) || jn.DefsReg(d) {
					link = true
				}
			}
			if !link {
				for _, u := range in.Uses(bufU[:0]) {
					if jn.DefsReg(u) {
						link = true
					}
				}
			}
			if !link && isMem(jn) && isMem(in) && (isBarrier(in) || isBarrier(jn)) {
				link = true
			}
			if !link && jn.Op.IsControl() {
				link = true // control stays last
			}
			if link {
				addDep(i, j)
			}
		}
	}

	pressureOf := func(order []int) int {
		// Forward simulation of live value count: a register becomes
		// live at its def and dies at its last use in the order (or
		// stays live if in liveOut).
		lastUse := make(map[rtl.Reg]int)
		for pos, idx := range order {
			in := &b.Instrs[idx]
			for _, u := range in.Uses(bufU[:0]) {
				lastUse[u] = pos
			}
		}
		live := make(map[rtl.Reg]bool)
		// Values defined before the block and used inside start live.
		defined := make(map[rtl.Reg]bool)
		for _, idx := range order {
			in := &b.Instrs[idx]
			for _, u := range in.Uses(bufU[:0]) {
				if !defined[u] {
					live[u] = true
				}
			}
			for _, d := range in.Defs(bufD[:0]) {
				defined[d] = true
			}
		}
		max := len(live)
		for pos, idx := range order {
			in := &b.Instrs[idx]
			for _, d := range in.Defs(bufD[:0]) {
				live[d] = true
			}
			if len(live) > max {
				max = len(live)
			}
			for _, u := range in.Uses(bufU[:0]) {
				if lastUse[u] == pos && !liveOut.Has(u) {
					delete(live, u)
				}
			}
			for _, d := range in.Defs(bufD[:0]) {
				// A value with no use after this point and not live out
				// of the block dies immediately.
				if lu, ok := lastUse[d]; (!ok || lu <= pos) && !liveOut.Has(d) {
					delete(live, d)
				}
			}
		}
		return max
	}

	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	basePressure := pressureOf(identity)

	// Greedy list scheduling: among ready instructions prefer the one
	// that kills the most operands, then the one defining the fewest
	// new values, then original order.
	order := make([]int, 0, n)
	done := make([]bool, n)
	remaining := n
	indegWork := append([]int(nil), indeg...)
	for remaining > 0 {
		best, bestKill := -1, -1
		for j := 0; j < n; j++ {
			if done[j] || indegWork[j] != 0 {
				continue
			}
			in := &b.Instrs[j]
			kills := 0
			for _, u := range in.Uses(bufU[:0]) {
				// An operand is killed if no other unscheduled
				// instruction uses it.
				needed := false
				for k := 0; k < n; k++ {
					if k == j || done[k] {
						continue
					}
					if b.Instrs[k].UsesReg(u) {
						needed = true
						break
					}
				}
				if !needed && !liveOut.Has(u) {
					kills++
				}
			}
			if kills > bestKill {
				best, bestKill = j, kills
			}
		}
		order = append(order, best)
		done[best] = true
		remaining--
		for j := 0; j < n; j++ {
			if done[j] {
				continue
			}
			for _, e := range deps[j] {
				if e == best {
					indegWork[j]--
				}
			}
		}
	}

	same := true
	for i, idx := range order {
		if idx != i {
			same = false
			break
		}
	}
	if same {
		return false
	}
	if pressureOf(order) >= basePressure {
		return false
	}
	newInstrs := make([]rtl.Instr, n)
	for pos, idx := range order {
		newInstrs[pos] = b.Instrs[idx]
	}
	b.Instrs = newInstrs
	return true
}
