package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// UselessJumpRemoval is phase u: it removes jumps and branches whose
// target is the following positional block.
type UselessJumpRemoval struct{}

// ID returns the paper's designation for the phase.
func (UselessJumpRemoval) ID() byte { return 'u' }

// Name returns the paper's name for the phase.
func (UselessJumpRemoval) Name() string { return "remove useless jumps" }

// RequiresRegAssign reports that this control-flow phase runs on any
// register form.
func (UselessJumpRemoval) RequiresRegAssign() bool { return false }

// Apply runs the phase.
func (UselessJumpRemoval) Apply(f *rtl.Func, _ *machine.Desc) bool {
	changed := false
	for i := 0; i+1 < len(f.Blocks); i++ {
		b := f.Blocks[i]
		last := b.Last()
		if last == nil {
			continue
		}
		if (last.Op == rtl.OpJmp || last.Op == rtl.OpBranch) &&
			last.Target == f.Blocks[i+1].ID {
			// A conditional branch to the fall-through block transfers
			// to the same place whether taken or not.
			b.Remove(len(b.Instrs) - 1)
			changed = true
		}
	}
	return changed
}

// ReverseBranches is phase r: it removes an unconditional jump by
// reversing a conditional branch that branches over the jump.
type ReverseBranches struct{}

// ID returns the paper's designation for the phase.
func (ReverseBranches) ID() byte { return 'r' }

// Name returns the paper's name for the phase.
func (ReverseBranches) Name() string { return "reverse branches" }

// RequiresRegAssign reports that this control-flow phase runs on any
// register form.
func (ReverseBranches) RequiresRegAssign() bool { return false }

// Apply runs the phase.
func (ReverseBranches) Apply(f *rtl.Func, _ *machine.Desc) bool {
	changed := false
	for reverseOnce(f) {
		changed = true
	}
	return changed
}

// reverseOnce performs one scan, reversing every matching branch; it
// reports whether anything changed so Apply can iterate to a fixpoint.
func reverseOnce(f *rtl.Func) bool {
	changed := false
	for i := 0; i+2 < len(f.Blocks); i++ {
		a := f.Blocks[i]
		jb := f.Blocks[i+1]
		after := f.Blocks[i+2]
		last := a.Last()
		if last == nil || last.Op != rtl.OpBranch {
			continue
		}
		// Pattern: A ends with a branch over block JB (a lone jump)
		// to the block right after JB.
		if last.Target != after.ID {
			continue
		}
		if len(jb.Instrs) != 1 || jb.Instrs[0].Op != rtl.OpJmp {
			continue
		}
		// JB must be reached only by falling out of A.
		g := rtl.ComputeCFG(f)
		if preds := g.Preds[i+1]; len(preds) != 1 || preds[0] != i {
			continue
		}
		last.Rel = last.Rel.Negate()
		last.Target = jb.Instrs[0].Target
		f.RemoveBlockAt(i + 1)
		changed = true
	}
	return changed
}

// BlockReordering is phase i: it removes a jump by moving the jump's
// target block to follow the jump when the target has only a single
// predecessor.
type BlockReordering struct{}

// ID returns the paper's designation for the phase.
func (BlockReordering) ID() byte { return 'i' }

// Name returns the paper's name for the phase.
func (BlockReordering) Name() string { return "block reordering" }

// RequiresRegAssign reports that this control-flow phase runs on any
// register form.
func (BlockReordering) RequiresRegAssign() bool { return false }

// Apply runs the phase.
func (BlockReordering) Apply(f *rtl.Func, _ *machine.Desc) bool {
	changed := false
	for again := true; again; {
		again = false
		g := rtl.ComputeCFG(f)
		for i, a := range f.Blocks {
			last := a.Last()
			if last == nil || last.Op != rtl.OpJmp {
				continue
			}
			ti := g.MustPos(last.Target)
			if ti == 0 || ti == i+1 || ti == i {
				continue
			}
			t := f.Blocks[ti]
			if len(g.Preds[ti]) != 1 {
				continue
			}
			// The moved block must not rely on its own fall-through:
			// after Cleanup a single-pred fall-through successor would
			// have been merged, so requiring an explicit jump or
			// return keeps the move safe.
			tl := t.Last()
			if tl == nil || (tl.Op != rtl.OpJmp && tl.Op != rtl.OpRet) {
				continue
			}
			a.Remove(len(a.Instrs) - 1) // drop the jump
			f.RemoveBlockAt(ti)
			// Recompute a's position: removing ti may have shifted it.
			ai := f.BlockIndex(a.ID)
			f.InsertBlockAfter(ai, t)
			changed, again = true, true
			break
		}
	}
	return changed
}

// MinimizeLoopJumps is phase j: it removes a jump associated with a
// loop by duplicating a portion of the loop — the header's test is
// copied to the loop's bottom so the back edge becomes a conditional
// branch (loop inversion/rotation).
type MinimizeLoopJumps struct{}

// ID returns the paper's designation for the phase.
func (MinimizeLoopJumps) ID() byte { return 'j' }

// Name returns the paper's name for the phase.
func (MinimizeLoopJumps) Name() string { return "minimize loop jumps" }

// RequiresRegAssign reports that this control-flow phase runs on any
// register form.
func (MinimizeLoopJumps) RequiresRegAssign() bool { return false }

// Apply runs the phase.
func (MinimizeLoopJumps) Apply(f *rtl.Func, _ *machine.Desc) bool {
	changed := false
	for again := true; again; {
		again = false
		g := rtl.ComputeCFG(f)
		for _, l := range g.FindLoops() {
			if rotateLoop(f, g, l) {
				changed, again = true, true
				break
			}
		}
	}
	return changed
}

// rotateLoop applies loop inversion to one loop when it has the
// top-test/bottom-jump shape. It returns whether it transformed.
func rotateLoop(f *rtl.Func, g *rtl.CFG, l *rtl.Loop) bool {
	h := f.Blocks[l.Header]
	hl := h.Last()
	// Header must end in a conditional branch exiting the loop, with
	// the fall-through staying inside.
	if hl == nil || hl.Op != rtl.OpBranch {
		return false
	}
	exitID := hl.Target
	exitPos, ok := g.Pos(exitID)
	if !ok || l.Blocks[exitPos] {
		return false
	}
	if l.Header+1 >= len(f.Blocks) {
		return false
	}
	bodyPos := l.Header + 1
	if !l.Blocks[bodyPos] {
		return false
	}
	bodyID := f.Blocks[bodyPos].ID
	for _, tpos := range l.Tails {
		t := f.Blocks[tpos]
		tl := t.Last()
		if tl == nil || tl.Op != rtl.OpJmp || tl.Target != h.ID {
			continue
		}
		if t == h {
			continue
		}
		// Replace the back jump with a copy of the header's test,
		// branching back into the body while the loop continues.
		t.Remove(len(t.Instrs) - 1)
		for _, in := range h.Instrs[:len(h.Instrs)-1] {
			t.Instrs = append(t.Instrs, in)
		}
		t.Instrs = append(t.Instrs, rtl.NewBranch(hl.Rel.Negate(), bodyID))
		// Falling out of the duplicated test must reach the loop exit.
		ti := f.BlockIndex(t.ID)
		if ti+1 >= len(f.Blocks) || f.Blocks[ti+1].ID != exitID {
			nb := f.NewDetachedBlock()
			nb.Instrs = append(nb.Instrs, rtl.NewJmp(exitID))
			f.InsertBlockAfter(ti, nb)
		}
		return true
	}
	return false
}
