package opt

import (
	"repro/internal/machine"
	"repro/internal/rtl"
)

// LoopUnrolling is phase g: loop unrolling with a fixed unroll factor
// of two — the paper always uses factor two because the target is an
// embedded processor where code growth matters. Like VPO, it runs
// after register allocation.
//
// The recognized shape is a bottom-test single-block loop (the shape
// the minimize-loop-jumps phase produces): a block B ending in
//
//	...body...; IC = x ? y; PC = IC rel, B
//
// The body is duplicated into a new block B2 placed between B and the
// fall-through exit; B's back branch is redirected so two iterations
// run per taken branch:
//
//	B:  ...body...; IC = x ? y; PC = IC !rel, exit
//	B2: ...body...; IC = x ? y; PC = IC rel, B
//
// Each copy keeps its own exit test, so the transformation is valid
// for any trip count while halving the taken back branches.
type LoopUnrolling struct{}

// ID returns the paper's designation for the phase.
func (LoopUnrolling) ID() byte { return 'g' }

// Name returns the paper's name for the phase.
func (LoopUnrolling) Name() string { return "loop unrolling" }

// RequiresRegAssign reports that this phase runs after the compulsory
// register assignment.
func (LoopUnrolling) RequiresRegAssign() bool { return true }

// maxUnrollBody bounds the duplicated body size, mirroring an embedded
// compiler's code-growth budget.
const maxUnrollBody = 24

// Apply runs the phase.
func (LoopUnrolling) Apply(f *rtl.Func, _ *machine.Desc) bool {
	changed := false
	// Collect candidates first: unrolled copies must not themselves be
	// unrolled within this invocation.
	var candidates []int
	for i, b := range f.Blocks {
		if i == 0 {
			continue // entry block kept simple
		}
		last := b.Last()
		if last == nil || last.Op != rtl.OpBranch || last.Target != b.ID {
			continue
		}
		if len(b.Instrs) < 2 || len(b.Instrs) > maxUnrollBody {
			continue
		}
		if b.Instrs[len(b.Instrs)-2].Op != rtl.OpCmp {
			continue
		}
		if i+1 >= len(f.Blocks) {
			continue
		}
		candidates = append(candidates, b.ID)
	}
	for _, id := range candidates {
		i := f.BlockIndex(id)
		b := f.Blocks[i]
		exitID := f.Blocks[i+1].ID

		b2 := f.NewDetachedBlock()
		b2.Instrs = append([]rtl.Instr(nil), b.Instrs...)

		last := b.Last()
		rel := last.Rel
		// First copy: exit early when the loop is done.
		last.Rel = rel.Negate()
		last.Target = exitID
		// Second copy: branch back to the top while iterating.
		b2.Last().Rel = rel
		b2.Last().Target = b.ID
		f.InsertBlockAfter(i, b2)
		changed = true
	}
	return changed
}
