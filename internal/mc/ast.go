package mc

// File is a parsed mini-C translation unit.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a file-scope int scalar or int array with
// optional initializer(s).
type GlobalDecl struct {
	Name    string
	Words   int32 // 1 for a scalar, N for int name[N]
	IsArray bool
	Init    []int32
	Tok     Token
}

// Param is a function parameter: an int or a pointer to int.
type Param struct {
	Name string
	Ptr  bool
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name    string
	Params  []Param
	Returns bool // int f(...) vs void f(...)
	Body    *BlockStmt
	Tok     Token
}

// Stmt is the interface implemented by all statement nodes.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement list with its own scope.
type BlockStmt struct{ List []Stmt }

// DeclStmt declares a local: a scalar (Words==1, IsArray=false), an
// array (int x[N]) or a pointer (int *p), with an optional scalar
// initializer.
type DeclStmt struct {
	Name    string
	Words   int32
	IsArray bool
	Ptr     bool
	Init    Expr
	Tok     Token
}

// AssignStmt assigns to an lvalue. Compound assignments (+=, <<=, ...)
// and ++/-- are desugared by the parser into plain assignments whose
// RHS repeats the lvalue.
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Tok Token
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Tok  Token
}

// WhileStmt covers both while (Cond) Body and do Body while (Cond).
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
	Tok     Token
}

// ForStmt is for (Init; Cond; Post) Body; any part may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
	Tok  Token
}

// ReturnStmt returns from the function, with a value when the function
// has an int result.
type ReturnStmt struct {
	Value Expr // nil for void functions
	Tok   Token
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Tok Token }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Tok Token }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X   Expr
	Tok Token
}

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// Expr is the interface implemented by all expression nodes.
type Expr interface{ expr() }

// NumberLit is an integer literal.
type NumberLit struct {
	Val int32
	Tok Token
}

// Ident names a variable.
type Ident struct {
	Name string
	Tok  Token
}

// IndexExpr is Base[Index]; Base must name an array or pointer.
type IndexExpr struct {
	Base  *Ident
	Index Expr
	Tok   Token
}

// UnaryExpr is -X, ~X, !X, *X (dereference) or &X (address-of).
type UnaryExpr struct {
	Op  Kind
	X   Expr
	Tok Token
}

// BinaryExpr is X op Y for arithmetic, comparison and logical
// operators. ANDAND and OROR short-circuit.
type BinaryExpr struct {
	Op   Kind
	X, Y Expr
	Tok  Token
}

// CallExpr invokes a named function.
type CallExpr struct {
	Name string
	Args []Expr
	Tok  Token
}

func (*NumberLit) expr()  {}
func (*Ident) expr()      {}
func (*IndexExpr) expr()  {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CallExpr) expr()   {}
