// Package mc implements a small C-like language ("mini-C") and its
// translation to the RTL intermediate representation. It stands in for
// the C frontend that feeds the VPO backend in the paper: the phase
// order study operates entirely on the RTL the frontend produces.
//
// The language has 32-bit int scalars, one-dimensional int arrays,
// pointers to int, the usual C operators (including short-circuit
// && and ||), if/else, while, for, do-while, break, continue and
// return. Code generation is deliberately naive — every value passes
// through a fresh pseudo register and every variable access goes
// through its stack slot — leaving all improvement to the optimization
// phases, exactly as a conventional compiler frontend would.
package mc

import "fmt"

// Kind enumerates lexical token kinds.
type Kind uint8

const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwInt
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwVoid

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	TILDE    // ~
	BANG     // !
	SHL      // <<
	SHR      // >>
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	EQ       // ==
	NE       // !=
	ANDAND   // &&
	OROR     // ||
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	PCTEQ    // %=
	AMPEQ    // &=
	PIPEEQ   // |=
	CARETEQ  // ^=
	SHLEQ    // <<=
	SHREQ    // >>=
	INC      // ++
	DEC      // --
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number",
	KwInt: "'int'", KwIf: "'if'", KwElse: "'else'", KwWhile: "'while'",
	KwFor: "'for'", KwDo: "'do'", KwReturn: "'return'", KwBreak: "'break'",
	KwContinue: "'continue'", KwVoid: "'void'",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	LBRACKET: "'['", RBRACKET: "']'", COMMA: "','", SEMI: "';'",
	ASSIGN: "'='", PLUS: "'+'", MINUS: "'-'", STAR: "'*'", SLASH: "'/'",
	PERCENT: "'%'", AMP: "'&'", PIPE: "'|'", CARET: "'^'", TILDE: "'~'",
	BANG: "'!'", SHL: "'<<'", SHR: "'>>'", LT: "'<'", LE: "'<='",
	GT: "'>'", GE: "'>='", EQ: "'=='", NE: "'!='", ANDAND: "'&&'",
	OROR: "'||'", PLUSEQ: "'+='", MINUSEQ: "'-='", STAREQ: "'*='",
	SLASHEQ: "'/='", PCTEQ: "'%='", AMPEQ: "'&='", PIPEEQ: "'|='",
	CARETEQ: "'^='", SHLEQ: "'<<='", SHREQ: "'>>='", INC: "'++'", DEC: "'--'",
}

// String returns a human-readable token kind name for diagnostics.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "if": KwIf, "else": KwElse, "while": KwWhile,
	"for": KwFor, "do": KwDo, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "void": KwVoid,
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Val  int32 // value for NUMBER tokens
	Line int
	Col  int
}

// Pos formats the token's position for error messages.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
