package mc

import "fmt"

// Parser is a recursive-descent parser for mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete translation unit.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return p.cur(), fmt.Errorf("%s: expected %s, found %s %q",
			p.cur().Pos(), k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		isVoid := p.at(KwVoid)
		if !isVoid && !p.at(KwInt) {
			return nil, fmt.Errorf("%s: expected 'int' or 'void' at top level, found %q",
				p.cur().Pos(), p.cur().Text)
		}
		p.next()
		// A '*' here means an int* return type is being attempted,
		// which the language does not support; functions return int or
		// void only.
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LPAREN) {
			fn, err := p.parseFuncRest(name, !isVoid)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		if isVoid {
			return nil, fmt.Errorf("%s: void is only valid as a function return type", name.Pos())
		}
		g, err := p.parseGlobalRest(name)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

func (p *Parser) parseGlobalRest(name Token) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: name.Text, Words: 1, Tok: name}
	if p.accept(LBRACKET) {
		sz, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		if sz.Val <= 0 {
			return nil, fmt.Errorf("%s: array size must be positive", sz.Pos())
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		g.Words, g.IsArray = sz.Val, true
	}
	if p.accept(ASSIGN) {
		if g.IsArray {
			if _, err := p.expect(LBRACE); err != nil {
				return nil, err
			}
			for !p.at(RBRACE) {
				v, err := p.parseConstInt()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, v)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RBRACE); err != nil {
				return nil, err
			}
			if int32(len(g.Init)) > g.Words {
				return nil, fmt.Errorf("%s: too many initializers for %s[%d]",
					name.Pos(), g.Name, g.Words)
			}
		} else {
			v, err := p.parseConstInt()
			if err != nil {
				return nil, err
			}
			g.Init = []int32{v}
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return g, nil
}

// parseConstInt parses an optionally negated integer literal.
func (p *Parser) parseConstInt() (int32, error) {
	neg := p.accept(MINUS)
	t, err := p.expect(NUMBER)
	if err != nil {
		return 0, err
	}
	if neg {
		return -t.Val, nil
	}
	return t.Val, nil
}

func (p *Parser) parseFuncRest(name Token, returns bool) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Returns: returns, Tok: name}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if !p.at(RPAREN) && !(p.at(KwVoid) && p.toks[p.pos+1].Kind == RPAREN) {
		for {
			if _, err := p.expect(KwInt); err != nil {
				return nil, err
			}
			ptr := p.accept(STAR)
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			// Accept "int a[]" as pointer syntax.
			if p.accept(LBRACKET) {
				if _, err := p.expect(RBRACKET); err != nil {
					return nil, err
				}
				ptr = true
			}
			fn.Params = append(fn.Params, Param{Name: pn.Text, Ptr: ptr})
			if !p.accept(COMMA) {
				break
			}
		}
	} else {
		p.accept(KwVoid)
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, fmt.Errorf("%s: unexpected end of file in block", p.cur().Pos())
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.List = append(b.List, s)
	}
	p.next() // RBRACE
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case LBRACE:
		return p.parseBlock()

	case KwInt:
		p.next()
		ptr := p.accept(STAR)
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: name.Text, Words: 1, Ptr: ptr, Tok: name}
		if p.accept(LBRACKET) {
			if ptr {
				return nil, fmt.Errorf("%s: array of pointers is not supported", name.Pos())
			}
			sz, err := p.expect(NUMBER)
			if err != nil {
				return nil, err
			}
			if sz.Val <= 0 {
				return nil, fmt.Errorf("%s: array size must be positive", sz.Pos())
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			d.Words, d.IsArray = sz.Val, true
		}
		if p.accept(ASSIGN) {
			if d.IsArray {
				return nil, fmt.Errorf("%s: local array initializers are not supported", name.Pos())
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return d, nil

	case KwIf:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Tok: tok}
		if p.accept(KwElse) {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case KwWhile:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Tok: tok}, nil

	case KwDo:
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, DoWhile: true, Tok: tok}, nil

	case KwFor:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		var init, post Stmt
		var cond Expr
		var err error
		if !p.at(SEMI) {
			init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		if !p.at(SEMI) {
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		if !p.at(RPAREN) {
			post, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Tok: tok}, nil

	case KwReturn:
		p.next()
		st := &ReturnStmt{Tok: tok}
		if !p.at(SEMI) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = e
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return st, nil

	case KwBreak:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Tok: tok}, nil

	case KwContinue:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Tok: tok}, nil

	case SEMI:
		p.next()
		return &BlockStmt{}, nil
	}

	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses an assignment, ++/--, or expression statement
// (without the trailing semicolon), as used in for-clauses.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	tok := p.cur()
	// Prefix ++x / --x.
	if p.at(INC) || p.at(DEC) {
		op := p.next()
		lhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return desugarIncDec(lhs, op)
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case ASSIGN:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isLvalue(e) {
			return nil, fmt.Errorf("%s: left side of assignment is not assignable", tok.Pos())
		}
		return &AssignStmt{LHS: e, RHS: rhs, Tok: tok}, nil
	case PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, PCTEQ, AMPEQ, PIPEEQ, CARETEQ, SHLEQ, SHREQ:
		op := p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isLvalue(e) {
			return nil, fmt.Errorf("%s: left side of assignment is not assignable", tok.Pos())
		}
		bin := map[Kind]Kind{
			PLUSEQ: PLUS, MINUSEQ: MINUS, STAREQ: STAR, SLASHEQ: SLASH,
			PCTEQ: PERCENT, AMPEQ: AMP, PIPEEQ: PIPE, CARETEQ: CARET,
			SHLEQ: SHL, SHREQ: SHR,
		}[op.Kind]
		return &AssignStmt{LHS: e, RHS: &BinaryExpr{Op: bin, X: e, Y: rhs, Tok: op}, Tok: tok}, nil
	case INC, DEC:
		op := p.next()
		return desugarIncDec(e, op)
	}
	return &ExprStmt{X: e, Tok: tok}, nil
}

func desugarIncDec(lhs Expr, op Token) (Stmt, error) {
	if !isLvalue(lhs) {
		return nil, fmt.Errorf("%s: operand of %s is not assignable", op.Pos(), op.Kind)
	}
	bin := PLUS
	if op.Kind == DEC {
		bin = MINUS
	}
	return &AssignStmt{
		LHS: lhs,
		RHS: &BinaryExpr{Op: bin, X: lhs, Y: &NumberLit{Val: 1, Tok: op}, Tok: op},
		Tok: op,
	}, nil
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *IndexExpr:
		return true
	case *UnaryExpr:
		return x.Op == STAR
	}
	return false
}

// Precedence climbing. Level 1 binds loosest (||).
var binPrec = map[Kind]int{
	OROR:   1,
	ANDAND: 2,
	PIPE:   3,
	CARET:  4,
	AMP:    5,
	EQ:     6, NE: 6,
	LT: 7, LE: 7, GT: 7, GE: 7,
	SHL: 8, SHR: 8,
	PLUS: 9, MINUS: 9,
	STAR: 10, SLASH: 10, PERCENT: 10,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, Tok: op}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case MINUS, TILDE, BANG, STAR, AMP:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if tok.Kind == AMP {
			switch x.(type) {
			case *Ident, *IndexExpr:
				// ok: &name or &name[index]
			default:
				return nil, fmt.Errorf("%s: '&' requires a variable or array element", tok.Pos())
			}
		}
		// Constant-fold negative literals so "-5" is a literal.
		if tok.Kind == MINUS {
			if n, ok := x.(*NumberLit); ok {
				return &NumberLit{Val: -n.Val, Tok: tok}, nil
			}
		}
		return &UnaryExpr{Op: tok.Kind, X: x, Tok: tok}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case NUMBER:
		p.next()
		return &NumberLit{Val: tok.Val, Tok: tok}, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		if p.accept(LPAREN) {
			call := &CallExpr{Name: tok.Text, Tok: tok}
			if !p.at(RPAREN) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(COMMA) {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		}
		id := &Ident{Name: tok.Text, Tok: tok}
		if p.accept(LBRACKET) {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			return &IndexExpr{Base: id, Index: idx, Tok: tok}, nil
		}
		return id, nil
	}
	return nil, fmt.Errorf("%s: expected expression, found %s %q", tok.Pos(), tok.Kind, tok.Text)
}
