package mc_test

import (
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/internal/rtl"
)

func TestLexerTokens(t *testing.T) {
	toks, err := mc.Tokenize(`int f(int x) { return x + 0x1F - 'a'; } // c
/* block */ int g;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []mc.Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []mc.Kind{
		mc.KwInt, mc.IDENT, mc.LPAREN, mc.KwInt, mc.IDENT, mc.RPAREN,
		mc.LBRACE, mc.KwReturn, mc.IDENT, mc.PLUS, mc.NUMBER, mc.MINUS,
		mc.NUMBER, mc.SEMI, mc.RBRACE, mc.KwInt, mc.IDENT, mc.SEMI, mc.EOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Literal values.
	if toks[10].Val != 0x1F {
		t.Fatalf("hex literal = %d", toks[10].Val)
	}
	if toks[12].Val != 'a' {
		t.Fatalf("char literal = %d", toks[12].Val)
	}
}

func TestLexerOperators(t *testing.T) {
	src := "<< >> <<= >>= <= >= == != && || ++ -- += -= *= /= %= &= |= ^= ~ !"
	toks, err := mc.Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []mc.Kind{
		mc.SHL, mc.SHR, mc.SHLEQ, mc.SHREQ, mc.LE, mc.GE, mc.EQ, mc.NE,
		mc.ANDAND, mc.OROR, mc.INC, mc.DEC, mc.PLUSEQ, mc.MINUSEQ,
		mc.STAREQ, mc.SLASHEQ, mc.PCTEQ, mc.AMPEQ, mc.PIPEEQ, mc.CARETEQ,
		mc.TILDE, mc.BANG, mc.EOF,
	}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, want[i])
		}
	}
}

func TestParserPrecedence(t *testing.T) {
	// 2 + 3 * 4 must parse as 2 + (3 * 4).
	file, err := mc.Parse(`int f(void) { return 2 + 3 * 4; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := file.Funcs[0].Body.List[0].(*mc.ReturnStmt)
	add, ok := ret.Value.(*mc.BinaryExpr)
	if !ok || add.Op != mc.PLUS {
		t.Fatalf("top operator not +: %T", ret.Value)
	}
	mul, ok := add.Y.(*mc.BinaryExpr)
	if !ok || mul.Op != mc.STAR {
		t.Fatalf("right operand not *: %T", add.Y)
	}
}

func TestParserErrors(t *testing.T) {
	cases := map[string]string{
		"missing semi":       `int f(void) { return 1 }`,
		"unclosed block":     `int f(void) { return 1;`,
		"bad toplevel":       `float f(void) {}`,
		"assign to rvalue":   `int f(int x) { x + 1 = 2; return x; }`,
		"void variable":      `void x;`,
		"array of pointers":  `int f(void) { int *p[3]; return 0; }`,
		"too many params":    `int f(int a, int b, int c, int d, int e) { return 0; }`,
		"undeclared var":     `int f(void) { return y; }`,
		"redeclared var":     `int f(void) { int x; int x; return 0; }`,
		"void returns value": `void f(void) { return 3; }`,
		"break outside loop": `int f(void) { break; return 0; }`,
		"negative array":     `int f(void) { int a[0]; return 0; }`,
		"bad arg count":      `int g(int a) { return a; } int f(void) { return g(1, 2); }`,
	}
	for name, src := range cases {
		if _, err := mc.Compile(src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestCodegenNaiveShape(t *testing.T) {
	prog, err := mc.Compile(`
int g;
int f(int x) {
    int y = x + 1;
    g = y;
    return y * 2;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	s := f.String()
	// Naive code keeps locals in frame slots and uses HI/LO for
	// globals.
	for _, frag := range []string{"M[r[sp]]=r[0];", "HI[g]", "LO[g]"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("missing %q in naive code:\n%s", frag, s)
		}
	}
	// All computation flows through pseudo registers.
	hasPseudo := false
	for r := range f.UsedRegs() {
		if r.IsPseudo() {
			hasPseudo = true
		}
	}
	if !hasPseudo {
		t.Fatal("no pseudo registers in unoptimized code")
	}
	if f.RegAssigned {
		t.Fatal("fresh code must not be register-assigned")
	}
	if err := rtl.Validate(f); err != nil {
		t.Fatal(err)
	}
}

func TestCodegenNoUnreachableCode(t *testing.T) {
	prog, err := mc.Compile(`
int f(int x) {
    while (1) {
        x++;
        if (x > 10) return x;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	g := rtl.ComputeCFG(f)
	for i, ok := range g.Reachable() {
		if !ok {
			t.Fatalf("block %d unreachable in fresh code:\n%s", i, f)
		}
	}
}

func TestCodegenScalarSlotMarking(t *testing.T) {
	prog, err := mc.Compile(`
int f(int x) {
    int kept;
    int exposed;
    int arr[4];
    int *p;
    kept = x;
    p = &exposed;
    *p = 3;
    arr[0] = kept;
    return arr[0] + exposed;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	byName := map[string]rtl.Slot{}
	for _, s := range f.Slots {
		byName[s.Name] = s
	}
	if !byName["kept"].Scalar {
		t.Error("kept should be promotable")
	}
	if byName["exposed"].Scalar {
		t.Error("exposed has its address taken; must not be promotable")
	}
	if byName["arr"].Scalar {
		t.Error("arrays are never promotable")
	}
	if !byName["p"].Scalar {
		t.Error("the pointer variable itself is a promotable scalar")
	}
	if !byName["x"].Scalar {
		t.Error("parameter x should be promotable")
	}
}

func TestWideConstantExpansion(t *testing.T) {
	prog, err := mc.Compile(`int f(void) { return 1103515245; }`)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Func("f").String()
	if strings.Contains(s, "1103515245") {
		t.Fatalf("wide constant survived as a single immediate:\n%s", s)
	}
	// 1103515245 = 16838<<16 | 20077
	if !strings.Contains(s, "16838") || !strings.Contains(s, "20077") {
		t.Fatalf("expected hi/lo halves in:\n%s", s)
	}
}

func TestGlobalInitializers(t *testing.T) {
	prog, err := mc.Compile(`
int a[4] = {1, 2, 3};
int b = -7;
int c;
int f(void) { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	ga := prog.Global("a")
	if ga == nil || ga.Words != 4 || len(ga.Init) != 3 || ga.Init[2] != 3 {
		t.Fatalf("global a = %+v", ga)
	}
	if gb := prog.Global("b"); gb == nil || gb.Init[0] != -7 {
		t.Fatalf("global b = %+v", gb)
	}
	if gc := prog.Global("c"); gc == nil || len(gc.Init) != 0 {
		t.Fatalf("global c = %+v", gc)
	}
}

func TestArrayParamSyntax(t *testing.T) {
	// "int a[]" parameters are pointer syntax.
	prog, err := mc.Compile(`
int sum3(int a[]) { return a[0] + a[1] + a[2]; }
int use(void) {
    int buf[3];
    buf[0] = 1; buf[1] = 2; buf[2] = 3;
    return sum3(buf);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Func("sum3").NArgs != 1 {
		t.Fatal("array param lost")
	}
}

func TestCharLiteralsAndEscapes(t *testing.T) {
	prog, err := mc.Compile(`int f(void) { return 'a' + '\n' + '\t' + '\\' + '\0'; }`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestUseFunctionResultSemantics(t *testing.T) {
	// interp-level check moved to interp tests; here verify that use()
	// from TestArrayParamSyntax compiles into valid RTL with a call.
	prog, err := mc.Compile(`
int sum3(int a[]) { return a[0] + a[1] + a[2]; }
int use(void) {
    int buf[3];
    buf[0] = 1; buf[1] = 2; buf[2] = 3;
    return sum3(buf);
}`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range prog.Func("use").Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == rtl.OpCall && b.Instrs[i].Sym == "sum3" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no call emitted")
	}
}
