package mc

import (
	"fmt"
	"strconv"
)

// Lexer splits mini-C source text into tokens. It supports decimal,
// hexadecimal (0x...) and character ('a') literals, and both comment
// styles.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine := l.line
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("%d: unterminated block comment", startLine)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		start := l.pos
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			for l.pos < len(l.src) && isHex(l.peek()) {
				l.advance()
			}
			v, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 32)
			if err != nil {
				return tok, fmt.Errorf("%s: bad hex literal %q", tok.Pos(), l.src[start:l.pos])
			}
			tok.Kind, tok.Text, tok.Val = NUMBER, l.src[start:l.pos], int32(uint32(v))
			return tok, nil
		}
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
		if err != nil || v > 1<<31 {
			return tok, fmt.Errorf("%s: bad number %q", tok.Pos(), l.src[start:l.pos])
		}
		tok.Kind, tok.Text, tok.Val = NUMBER, l.src[start:l.pos], int32(v)
		return tok, nil

	case isAlpha(c):
		start := l.pos
		for l.pos < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		if kw, ok := keywords[tok.Text]; ok {
			tok.Kind = kw
		} else {
			tok.Kind = IDENT
		}
		return tok, nil

	case c == '\'':
		l.advance()
		if l.pos >= len(l.src) {
			return tok, fmt.Errorf("%s: unterminated character literal", tok.Pos())
		}
		var v int32
		ch := l.advance()
		if ch == '\\' {
			esc := l.advance()
			switch esc {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return tok, fmt.Errorf("%s: unknown escape '\\%c'", tok.Pos(), esc)
			}
		} else {
			v = int32(ch)
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return tok, fmt.Errorf("%s: unterminated character literal", tok.Pos())
		}
		tok.Kind, tok.Val = NUMBER, v
		return tok, nil
	}

	// Operators and punctuation.
	two := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		tok.Kind = k
		return tok, nil
	}
	three := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		l.advance()
		tok.Kind = k
		return tok, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		tok.Kind = k
		return tok, nil
	}
	d := l.peek2()
	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACKET)
	case ']':
		return one(RBRACKET)
	case ',':
		return one(COMMA)
	case ';':
		return one(SEMI)
	case '~':
		return one(TILDE)
	case '+':
		if d == '+' {
			return two(INC)
		}
		if d == '=' {
			return two(PLUSEQ)
		}
		return one(PLUS)
	case '-':
		if d == '-' {
			return two(DEC)
		}
		if d == '=' {
			return two(MINUSEQ)
		}
		return one(MINUS)
	case '*':
		if d == '=' {
			return two(STAREQ)
		}
		return one(STAR)
	case '/':
		if d == '=' {
			return two(SLASHEQ)
		}
		return one(SLASH)
	case '%':
		if d == '=' {
			return two(PCTEQ)
		}
		return one(PERCENT)
	case '&':
		if d == '&' {
			return two(ANDAND)
		}
		if d == '=' {
			return two(AMPEQ)
		}
		return one(AMP)
	case '|':
		if d == '|' {
			return two(OROR)
		}
		if d == '=' {
			return two(PIPEEQ)
		}
		return one(PIPE)
	case '^':
		if d == '=' {
			return two(CARETEQ)
		}
		return one(CARET)
	case '!':
		if d == '=' {
			return two(NE)
		}
		return one(BANG)
	case '=':
		if d == '=' {
			return two(EQ)
		}
		return one(ASSIGN)
	case '<':
		if d == '<' {
			if l.pos+2 < len(l.src) && l.src[l.pos+2] == '=' {
				return three(SHLEQ)
			}
			return two(SHL)
		}
		if d == '=' {
			return two(LE)
		}
		return one(LT)
	case '>':
		if d == '>' {
			if l.pos+2 < len(l.src) && l.src[l.pos+2] == '=' {
				return three(SHREQ)
			}
			return two(SHR)
		}
		if d == '=' {
			return two(GE)
		}
		return one(GT)
	}
	return tok, fmt.Errorf("%s: unexpected character %q", tok.Pos(), c)
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Tokenize lexes the entire source.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
