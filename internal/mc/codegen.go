package mc

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/rtl"
)

// Compile parses and translates mini-C source into an RTL program.
// The generated code is deliberately unoptimized: every value passes
// through a fresh pseudo register, constants are materialized with
// explicit moves, and every variable access goes through its stack
// slot. The optimization phases are responsible for all improvement.
func Compile(src string) (*rtl.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Generate(file)
}

// Generate translates a parsed file into an RTL program.
func Generate(file *File) (*rtl.Program, error) {
	g := &gen{
		prog:    &rtl.Program{},
		sigs:    make(map[string]*FuncDecl),
		globals: make(map[string]*GlobalDecl),
		mach:    machine.StrongARM(),
	}
	for _, gd := range file.Globals {
		if g.globals[gd.Name] != nil {
			return nil, fmt.Errorf("%s: global %q redeclared", gd.Tok.Pos(), gd.Name)
		}
		g.globals[gd.Name] = gd
		g.prog.Globals = append(g.prog.Globals, rtl.Global{
			Name: gd.Name, Words: gd.Words, Init: append([]int32(nil), gd.Init...),
		})
	}
	for _, fd := range file.Funcs {
		if g.sigs[fd.Name] != nil {
			return nil, fmt.Errorf("%s: function %q redeclared", fd.Tok.Pos(), fd.Name)
		}
		if g.globals[fd.Name] != nil {
			return nil, fmt.Errorf("%s: %q declared as both global and function", fd.Tok.Pos(), fd.Name)
		}
		g.sigs[fd.Name] = fd
	}
	for _, fd := range file.Funcs {
		f, err := g.genFunc(fd)
		if err != nil {
			return nil, err
		}
		// Like VPO's frontend, never hand unreachable code (e.g. the
		// fall-off return after a terminating loop) to the optimizer:
		// the paper observes that phase d is never active because no
		// phase leaves unreachable code behind.
		cfg := rtl.ComputeCFG(f)
		reach := cfg.Reachable()
		for i := len(f.Blocks) - 1; i >= 1; i-- {
			if !reach[i] {
				f.RemoveBlockAt(i)
			}
		}
		rtl.Cleanup(f)
		if err := rtl.Validate(f); err != nil {
			return nil, fmt.Errorf("internal error: generated invalid RTL: %w", err)
		}
		g.prog.Funcs = append(g.prog.Funcs, f)
	}
	return g.prog, nil
}

// symKind classifies a resolved name.
type symKind uint8

const (
	symScalar symKind = iota // word-sized local or parameter in a frame slot
	symArray                 // local array (frame memory)
	symGlobal                // global scalar or array
)

type symbol struct {
	kind   symKind
	name   string
	offset int32 // frame offset for locals
	ptr    bool  // pointer-typed scalar
	global *GlobalDecl
}

type loopCtx struct {
	breakTo    int // block ID
	continueTo int
}

type gen struct {
	prog    *rtl.Program
	sigs    map[string]*FuncDecl
	globals map[string]*GlobalDecl
	mach    *machine.Desc

	f      *rtl.Func
	cur    *rtl.Block
	scopes []map[string]*symbol
	loops  []loopCtx
	fd     *FuncDecl
}

func (g *gen) emit(in rtl.Instr) { g.cur.Instrs = append(g.cur.Instrs, in) }

// startBlock makes b the current insertion point. The block must
// already be in the function layout.
func (g *gen) startBlock(b *rtl.Block) { g.cur = b }

func (g *gen) pushScope() { g.scopes = append(g.scopes, make(map[string]*symbol)) }
func (g *gen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *gen) define(sym *symbol, tok Token) error {
	top := g.scopes[len(g.scopes)-1]
	if top[sym.name] != nil {
		return fmt.Errorf("%s: %q redeclared in this scope", tok.Pos(), sym.name)
	}
	top[sym.name] = sym
	return nil
}

func (g *gen) lookup(name string) *symbol {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if s := g.scopes[i][name]; s != nil {
			return s
		}
	}
	if gd := g.globals[name]; gd != nil {
		return &symbol{kind: symGlobal, name: name, global: gd}
	}
	return nil
}

// collectAddrTaken finds every local name whose address is taken with
// '&' anywhere in the function, so its slot is not marked promotable.
func collectAddrTaken(fd *FuncDecl) map[string]bool {
	taken := make(map[string]bool)
	var walkExpr func(Expr)
	var walkStmt func(Stmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *UnaryExpr:
			if x.Op == AMP {
				if id, ok := x.X.(*Ident); ok {
					taken[id.Name] = true
				}
			}
			walkExpr(x.X)
		case *BinaryExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *IndexExpr:
			walkExpr(x.Index)
		case *CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s Stmt) {
		switch x := s.(type) {
		case *BlockStmt:
			for _, s2 := range x.List {
				walkStmt(s2)
			}
		case *DeclStmt:
			if x.Init != nil {
				walkExpr(x.Init)
			}
		case *AssignStmt:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *IfStmt:
			walkExpr(x.Cond)
			walkStmt(x.Then)
			if x.Else != nil {
				walkStmt(x.Else)
			}
		case *WhileStmt:
			walkExpr(x.Cond)
			walkStmt(x.Body)
		case *ForStmt:
			if x.Init != nil {
				walkStmt(x.Init)
			}
			if x.Cond != nil {
				walkExpr(x.Cond)
			}
			if x.Post != nil {
				walkStmt(x.Post)
			}
			walkStmt(x.Body)
		case *ReturnStmt:
			if x.Value != nil {
				walkExpr(x.Value)
			}
		case *ExprStmt:
			walkExpr(x.X)
		}
	}
	walkStmt(fd.Body)
	return taken
}

func (g *gen) genFunc(fd *FuncDecl) (*rtl.Func, error) {
	if len(fd.Params) > 4 {
		return nil, fmt.Errorf("%s: %q has %d parameters; at most 4 are supported (r0-r3)",
			fd.Tok.Pos(), fd.Name, len(fd.Params))
	}
	g.f = rtl.NewFunc(fd.Name, len(fd.Params), fd.Returns)
	g.fd = fd
	g.cur = g.f.Entry()
	g.scopes = nil
	g.loops = nil
	g.pushScope()
	defer g.popScope()

	addrTaken := collectAddrTaken(fd)

	// Spill incoming arguments to their frame slots; the register
	// allocation phase will promote them back.
	for i, p := range fd.Params {
		off := g.f.AddSlot(p.Name, 4, !addrTaken[p.Name])
		if err := g.define(&symbol{kind: symScalar, name: p.Name, offset: off, ptr: p.Ptr}, fd.Tok); err != nil {
			return nil, err
		}
		g.emit(rtl.NewStore(rtl.Reg(i), rtl.RegSP, off))
	}

	if err := g.genBlockStmt(fd.Body, addrTaken); err != nil {
		return nil, err
	}

	// Fall-off-the-end return.
	if !g.cur.EndsInControl() {
		if fd.Returns {
			g.emit(rtl.NewMov(rtl.RegR0, rtl.Imm(0)))
			g.emit(rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
		} else {
			g.emit(rtl.Instr{Op: rtl.OpRet})
		}
	}
	return g.f, nil
}

func (g *gen) genBlockStmt(b *BlockStmt, addrTaken map[string]bool) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.List {
		if err := g.genStmt(s, addrTaken); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) genStmt(s Stmt, addrTaken map[string]bool) error {
	switch st := s.(type) {
	case *BlockStmt:
		return g.genBlockStmt(st, addrTaken)

	case *DeclStmt:
		var sym *symbol
		if st.IsArray {
			off := g.f.AddSlot(st.Name, st.Words*4, false)
			sym = &symbol{kind: symArray, name: st.Name, offset: off}
		} else {
			off := g.f.AddSlot(st.Name, 4, !addrTaken[st.Name])
			sym = &symbol{kind: symScalar, name: st.Name, offset: off, ptr: st.Ptr}
		}
		if err := g.define(sym, st.Tok); err != nil {
			return err
		}
		if st.Init != nil {
			r, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			g.emit(rtl.NewStore(r, rtl.RegSP, sym.offset))
		}
		return nil

	case *AssignStmt:
		return g.genAssign(st)

	case *IfStmt:
		thenB := g.f.NewDetachedBlock()
		doneB := g.f.NewDetachedBlock()
		var elseB *rtl.Block
		falseID := doneB.ID
		if st.Else != nil {
			elseB = g.f.NewDetachedBlock()
			falseID = elseB.ID
		}
		if err := g.genCond(st.Cond, thenB.ID, falseID, thenB.ID); err != nil {
			return err
		}
		g.f.AppendBlock(thenB)
		g.startBlock(thenB)
		if err := g.genStmt(st.Then, addrTaken); err != nil {
			return err
		}
		if st.Else != nil {
			if !g.cur.EndsInControl() {
				g.emit(rtl.NewJmp(doneB.ID))
			}
			g.f.AppendBlock(elseB)
			g.startBlock(elseB)
			if err := g.genStmt(st.Else, addrTaken); err != nil {
				return err
			}
		}
		g.f.AppendBlock(doneB)
		g.startBlock(doneB)
		return nil

	case *WhileStmt:
		if st.DoWhile {
			bodyB := g.f.AddBlock()
			g.startBlock(bodyB)
			condB := g.f.NewDetachedBlock()
			exitB := g.f.NewDetachedBlock()
			g.loops = append(g.loops, loopCtx{breakTo: exitB.ID, continueTo: condB.ID})
			err := g.genStmt(st.Body, addrTaken)
			g.loops = g.loops[:len(g.loops)-1]
			if err != nil {
				return err
			}
			g.f.AppendBlock(condB)
			g.startBlock(condB)
			if err := g.genCond(st.Cond, bodyB.ID, exitB.ID, exitB.ID); err != nil {
				return err
			}
			g.f.AppendBlock(exitB)
			g.startBlock(exitB)
			return nil
		}
		headB := g.f.AddBlock()
		bodyB := g.f.NewDetachedBlock()
		exitB := g.f.NewDetachedBlock()
		g.startBlock(headB)
		if err := g.genCond(st.Cond, bodyB.ID, exitB.ID, bodyB.ID); err != nil {
			return err
		}
		g.f.AppendBlock(bodyB)
		g.startBlock(bodyB)
		g.loops = append(g.loops, loopCtx{breakTo: exitB.ID, continueTo: headB.ID})
		err := g.genStmt(st.Body, addrTaken)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		if !g.cur.EndsInControl() {
			g.emit(rtl.NewJmp(headB.ID))
		}
		g.f.AppendBlock(exitB)
		g.startBlock(exitB)
		return nil

	case *ForStmt:
		if st.Init != nil {
			if err := g.genStmt(st.Init, addrTaken); err != nil {
				return err
			}
		}
		headB := g.f.AddBlock()
		bodyB := g.f.NewDetachedBlock()
		postB := g.f.NewDetachedBlock()
		exitB := g.f.NewDetachedBlock()
		g.startBlock(headB)
		if st.Cond != nil {
			if err := g.genCond(st.Cond, bodyB.ID, exitB.ID, bodyB.ID); err != nil {
				return err
			}
		}
		g.f.AppendBlock(bodyB)
		g.startBlock(bodyB)
		g.loops = append(g.loops, loopCtx{breakTo: exitB.ID, continueTo: postB.ID})
		err := g.genStmt(st.Body, addrTaken)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		g.f.AppendBlock(postB)
		g.startBlock(postB)
		if st.Post != nil {
			if err := g.genStmt(st.Post, addrTaken); err != nil {
				return err
			}
		}
		g.emit(rtl.NewJmp(headB.ID))
		g.f.AppendBlock(exitB)
		g.startBlock(exitB)
		return nil

	case *ReturnStmt:
		if st.Value != nil {
			if !g.fd.Returns {
				return fmt.Errorf("%s: void function %q returns a value", st.Tok.Pos(), g.fd.Name)
			}
			r, err := g.genExpr(st.Value)
			if err != nil {
				return err
			}
			g.emit(rtl.NewMov(rtl.RegR0, rtl.R(r)))
			g.emit(rtl.Instr{Op: rtl.OpRet, A: rtl.R(rtl.RegR0)})
		} else {
			if g.fd.Returns {
				return fmt.Errorf("%s: non-void function %q returns without a value", st.Tok.Pos(), g.fd.Name)
			}
			g.emit(rtl.Instr{Op: rtl.OpRet})
		}
		// Subsequent code in this statement list is unreachable; give
		// it a fresh block so the structure stays well-formed.
		g.startBlock(g.f.AddBlock())
		return nil

	case *BreakStmt:
		if len(g.loops) == 0 {
			return fmt.Errorf("%s: break outside a loop", st.Tok.Pos())
		}
		g.emit(rtl.NewJmp(g.loops[len(g.loops)-1].breakTo))
		g.startBlock(g.f.AddBlock())
		return nil

	case *ContinueStmt:
		if len(g.loops) == 0 {
			return fmt.Errorf("%s: continue outside a loop", st.Tok.Pos())
		}
		g.emit(rtl.NewJmp(g.loops[len(g.loops)-1].continueTo))
		g.startBlock(g.f.AddBlock())
		return nil

	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (g *gen) genAssign(st *AssignStmt) error {
	switch lhs := st.LHS.(type) {
	case *Ident:
		sym := g.lookup(lhs.Name)
		if sym == nil {
			return fmt.Errorf("%s: undeclared variable %q", lhs.Tok.Pos(), lhs.Name)
		}
		switch sym.kind {
		case symScalar:
			r, err := g.genExpr(st.RHS)
			if err != nil {
				return err
			}
			g.emit(rtl.NewStore(r, rtl.RegSP, sym.offset))
			return nil
		case symGlobal:
			if sym.global.IsArray {
				return fmt.Errorf("%s: cannot assign to array %q", lhs.Tok.Pos(), lhs.Name)
			}
			r, err := g.genExpr(st.RHS)
			if err != nil {
				return err
			}
			addr := g.globalAddr(sym.global.Name)
			g.emit(rtl.NewStore(r, addr, 0))
			return nil
		default:
			return fmt.Errorf("%s: cannot assign to array %q", lhs.Tok.Pos(), lhs.Name)
		}

	case *IndexExpr:
		addr, err := g.genIndexAddr(lhs)
		if err != nil {
			return err
		}
		r, err := g.genExpr(st.RHS)
		if err != nil {
			return err
		}
		g.emit(rtl.NewStore(r, addr, 0))
		return nil

	case *UnaryExpr: // *p = rhs
		if lhs.Op != STAR {
			break
		}
		p, err := g.genExpr(lhs.X)
		if err != nil {
			return err
		}
		r, err := g.genExpr(st.RHS)
		if err != nil {
			return err
		}
		g.emit(rtl.NewStore(r, p, 0))
		return nil
	}
	return fmt.Errorf("%s: invalid assignment target", st.Tok.Pos())
}

// globalAddr emits the HI/LO pair forming the address of a global and
// returns the register holding it.
func (g *gen) globalAddr(name string) rtl.Reg {
	hi := g.f.NewReg()
	g.emit(rtl.Instr{Op: rtl.OpMovHi, Dst: hi, Sym: name})
	lo := g.f.NewReg()
	g.emit(rtl.Instr{Op: rtl.OpAddLo, Dst: lo, A: rtl.R(hi), Sym: name})
	return lo
}

// materialize emits code loading the constant v into a fresh register
// and returns it. Naive code generation never uses immediate operands
// directly, leaving that to the instruction selection phase. Constants
// too wide for the target's move-immediate encoding are built from
// their halves (hi16 << 16 | lo16), the way a RISC frontend expands
// wide literals.
func (g *gen) materialize(v int32) rtl.Reg {
	rd := g.f.NewReg()
	if g.mach.LegalImm(rtl.OpMov, v) {
		g.emit(rtl.NewMov(rd, rtl.Imm(v)))
		return rd
	}
	hi := g.f.NewReg()
	g.emit(rtl.NewMov(hi, rtl.Imm(int32(uint32(v)>>16))))
	sh := g.f.NewReg()
	g.emit(rtl.NewMov(sh, rtl.Imm(16)))
	shifted := g.f.NewReg()
	g.emit(rtl.NewALU(rtl.OpShl, shifted, rtl.R(hi), rtl.R(sh)))
	lo := g.f.NewReg()
	g.emit(rtl.NewMov(lo, rtl.Imm(int32(uint32(v)&0xFFFF))))
	g.emit(rtl.NewALU(rtl.OpOr, rd, rtl.R(shifted), rtl.R(lo)))
	return rd
}

// genIndexAddr computes the address of base[index] into a register.
func (g *gen) genIndexAddr(e *IndexExpr) (rtl.Reg, error) {
	sym := g.lookup(e.Base.Name)
	if sym == nil {
		return 0, fmt.Errorf("%s: undeclared variable %q", e.Tok.Pos(), e.Base.Name)
	}
	var base rtl.Reg
	switch {
	case sym.kind == symGlobal && sym.global.IsArray:
		base = g.globalAddr(sym.global.Name)
	case sym.kind == symArray:
		off := g.materialize(sym.offset)
		base = g.f.NewReg()
		g.emit(rtl.NewALU(rtl.OpAdd, base, rtl.R(rtl.RegSP), rtl.R(off)))
	case sym.kind == symScalar && sym.ptr:
		base = g.f.NewReg()
		g.emit(rtl.NewLoad(base, rtl.RegSP, sym.offset))
	case sym.kind == symGlobal && !sym.global.IsArray:
		return 0, fmt.Errorf("%s: %q is not an array or pointer", e.Tok.Pos(), e.Base.Name)
	default:
		return 0, fmt.Errorf("%s: %q is not an array or pointer", e.Tok.Pos(), e.Base.Name)
	}
	idx, err := g.genExpr(e.Index)
	if err != nil {
		return 0, err
	}
	two := g.materialize(2)
	scaled := g.f.NewReg()
	g.emit(rtl.NewALU(rtl.OpShl, scaled, rtl.R(idx), rtl.R(two)))
	addr := g.f.NewReg()
	g.emit(rtl.NewALU(rtl.OpAdd, addr, rtl.R(base), rtl.R(scaled)))
	return addr, nil
}

var binOpMap = map[Kind]rtl.Op{
	PLUS: rtl.OpAdd, MINUS: rtl.OpSub, STAR: rtl.OpMul, SLASH: rtl.OpDiv,
	PERCENT: rtl.OpRem, AMP: rtl.OpAnd, PIPE: rtl.OpOr, CARET: rtl.OpXor,
	SHL: rtl.OpShl, SHR: rtl.OpSar,
}

var relMap = map[Kind]rtl.Rel{
	LT: rtl.RelLT, LE: rtl.RelLE, GT: rtl.RelGT, GE: rtl.RelGE,
	EQ: rtl.RelEQ, NE: rtl.RelNE,
}

func isCondOp(k Kind) bool {
	switch k {
	case LT, LE, GT, GE, EQ, NE, ANDAND, OROR:
		return true
	}
	return false
}

// genExpr evaluates e into a fresh register and returns it.
func (g *gen) genExpr(e Expr) (rtl.Reg, error) {
	switch x := e.(type) {
	case *NumberLit:
		return g.materialize(x.Val), nil

	case *Ident:
		sym := g.lookup(x.Name)
		if sym == nil {
			return 0, fmt.Errorf("%s: undeclared variable %q", x.Tok.Pos(), x.Name)
		}
		switch sym.kind {
		case symScalar:
			rd := g.f.NewReg()
			g.emit(rtl.NewLoad(rd, rtl.RegSP, sym.offset))
			return rd, nil
		case symArray: // array decays to its address
			off := g.materialize(sym.offset)
			rd := g.f.NewReg()
			g.emit(rtl.NewALU(rtl.OpAdd, rd, rtl.R(rtl.RegSP), rtl.R(off)))
			return rd, nil
		case symGlobal:
			addr := g.globalAddr(sym.global.Name)
			if sym.global.IsArray {
				return addr, nil
			}
			rd := g.f.NewReg()
			g.emit(rtl.NewLoad(rd, addr, 0))
			return rd, nil
		}

	case *IndexExpr:
		addr, err := g.genIndexAddr(x)
		if err != nil {
			return 0, err
		}
		rd := g.f.NewReg()
		g.emit(rtl.NewLoad(rd, addr, 0))
		return rd, nil

	case *UnaryExpr:
		switch x.Op {
		case MINUS:
			r, err := g.genExpr(x.X)
			if err != nil {
				return 0, err
			}
			rd := g.f.NewReg()
			g.emit(rtl.Instr{Op: rtl.OpNeg, Dst: rd, A: rtl.R(r)})
			return rd, nil
		case TILDE:
			r, err := g.genExpr(x.X)
			if err != nil {
				return 0, err
			}
			rd := g.f.NewReg()
			g.emit(rtl.Instr{Op: rtl.OpNot, Dst: rd, A: rtl.R(r)})
			return rd, nil
		case STAR:
			p, err := g.genExpr(x.X)
			if err != nil {
				return 0, err
			}
			rd := g.f.NewReg()
			g.emit(rtl.NewLoad(rd, p, 0))
			return rd, nil
		case AMP:
			if ix, ok := x.X.(*IndexExpr); ok {
				return g.genIndexAddr(ix)
			}
			id := x.X.(*Ident)
			sym := g.lookup(id.Name)
			if sym == nil {
				return 0, fmt.Errorf("%s: undeclared variable %q", id.Tok.Pos(), id.Name)
			}
			switch sym.kind {
			case symScalar, symArray:
				off := g.materialize(sym.offset)
				rd := g.f.NewReg()
				g.emit(rtl.NewALU(rtl.OpAdd, rd, rtl.R(rtl.RegSP), rtl.R(off)))
				return rd, nil
			case symGlobal:
				return g.globalAddr(sym.global.Name), nil
			}
		case BANG:
			return g.genCondValue(e)
		}

	case *BinaryExpr:
		if isCondOp(x.Op) {
			return g.genCondValue(e)
		}
		rx, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		ry, err := g.genExpr(x.Y)
		if err != nil {
			return 0, err
		}
		rd := g.f.NewReg()
		g.emit(rtl.NewALU(binOpMap[x.Op], rd, rtl.R(rx), rtl.R(ry)))
		return rd, nil

	case *CallExpr:
		return g.genCall(x)
	}
	return 0, fmt.Errorf("unhandled expression %T", e)
}

func (g *gen) genCall(x *CallExpr) (rtl.Reg, error) {
	sig := g.sigs[x.Name]
	if sig != nil && len(sig.Params) != len(x.Args) {
		return 0, fmt.Errorf("%s: %q expects %d arguments, got %d",
			x.Tok.Pos(), x.Name, len(sig.Params), len(x.Args))
	}
	if len(x.Args) > 4 {
		return 0, fmt.Errorf("%s: at most 4 call arguments are supported", x.Tok.Pos())
	}
	// Evaluate arguments into temporaries first, then marshal into
	// r0..r3 so nested calls cannot clobber earlier argument registers.
	temps := make([]rtl.Reg, len(x.Args))
	for i, a := range x.Args {
		r, err := g.genExpr(a)
		if err != nil {
			return 0, err
		}
		temps[i] = r
	}
	for i, t := range temps {
		g.emit(rtl.NewMov(rtl.Reg(i), rtl.R(t)))
	}
	g.emit(rtl.Instr{Op: rtl.OpCall, Sym: x.Name, NArgs: uint8(len(x.Args))})
	rd := g.f.NewReg()
	g.emit(rtl.NewMov(rd, rtl.R(rtl.RegR0)))
	return rd, nil
}

// genCondValue materializes a boolean expression as 0 or 1.
func (g *gen) genCondValue(e Expr) (rtl.Reg, error) {
	rd := g.f.NewReg()
	trueB := g.f.NewDetachedBlock()
	falseB := g.f.NewDetachedBlock()
	doneB := g.f.NewDetachedBlock()
	if err := g.genCond(e, trueB.ID, falseB.ID, trueB.ID); err != nil {
		return 0, err
	}
	g.f.AppendBlock(trueB)
	g.startBlock(trueB)
	g.emit(rtl.NewMov(rd, rtl.Imm(1)))
	g.emit(rtl.NewJmp(doneB.ID))
	g.f.AppendBlock(falseB)
	g.startBlock(falseB)
	g.emit(rtl.NewMov(rd, rtl.Imm(0)))
	g.f.AppendBlock(doneB)
	g.startBlock(doneB)
	return rd, nil
}

// genCond emits control flow evaluating e as a condition, branching to
// block trueID when it holds and falseID otherwise. next names the
// block the caller will place immediately after the emitted code, so a
// jump to it can be omitted.
func (g *gen) genCond(e Expr, trueID, falseID, next int) error {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case ANDAND:
			mid := g.f.NewDetachedBlock()
			if err := g.genCond(x.X, mid.ID, falseID, mid.ID); err != nil {
				return err
			}
			g.f.AppendBlock(mid)
			g.startBlock(mid)
			return g.genCond(x.Y, trueID, falseID, next)
		case OROR:
			mid := g.f.NewDetachedBlock()
			if err := g.genCond(x.X, trueID, mid.ID, mid.ID); err != nil {
				return err
			}
			g.f.AppendBlock(mid)
			g.startBlock(mid)
			return g.genCond(x.Y, trueID, falseID, next)
		case LT, LE, GT, GE, EQ, NE:
			rx, err := g.genExpr(x.X)
			if err != nil {
				return err
			}
			ry, err := g.genExpr(x.Y)
			if err != nil {
				return err
			}
			g.emit(rtl.NewCmp(rtl.R(rx), rtl.R(ry)))
			g.emitCondBranch(relMap[x.Op], trueID, falseID, next)
			return nil
		}
	case *UnaryExpr:
		if x.Op == BANG {
			return g.genCond(x.X, falseID, trueID, next)
		}
	}
	// General case: compare the value against zero.
	r, err := g.genExpr(e)
	if err != nil {
		return err
	}
	z := g.materialize(0)
	g.emit(rtl.NewCmp(rtl.R(r), rtl.R(z)))
	g.emitCondBranch(rtl.RelNE, trueID, falseID, next)
	return nil
}

// emitCondBranch finishes a comparison with the branch shape that puts
// the given next block on the fall-through path where possible.
func (g *gen) emitCondBranch(rel rtl.Rel, trueID, falseID, next int) {
	switch next {
	case falseID:
		g.emit(rtl.NewBranch(rel, trueID))
	case trueID:
		g.emit(rtl.NewBranch(rel.Negate(), falseID))
	default:
		// A branch may only end a block, so the jump to the false
		// target gets a block of its own.
		g.emit(rtl.NewBranch(rel, trueID))
		jb := g.f.AddBlock()
		g.startBlock(jb)
		g.emit(rtl.NewJmp(falseID))
	}
}
