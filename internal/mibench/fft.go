package mibench

// FFT is the "telecomm" category benchmark: a radix-2 decimation-in-
// time fast Fourier transform. The original MiBench fft uses floating
// point; the mini-C dialect is integer-only, so this version is a Q15
// fixed-point FFT with a quarter-wave sine table — the standard
// embedded-systems formulation (DESIGN.md records the substitution).
// Like the paper's fft_float and main (the two functions whose spaces
// exceeded the search cap), fft_fixed and fft_main are the largest
// functions of the suite.
func FFT() Program {
	return Program{
		Name:        "fft",
		Category:    "telecomm",
		Description: "fast Fourier transform (Q15 fixed point)",
		Driver:      "fft_main",
		DriverArgs:  []int32{5}, // log2(N): 32-point transform
		Source: `
/* Real/imaginary signal buffers, up to 64 points. */
int re[64];
int im[64];

/* Quarter-wave Q15 sine table, 17 entries covering 0..pi/2 in
 * pi/32 steps: sin(k*pi/32) * 32768. */
int sintab[17] = {
    0, 3212, 6393, 9512, 12539, 15446, 18204, 20787,
    23170, 25329, 27245, 28898, 30273, 31356, 32137, 32609, 32767
};

/* Q15 multiply with rounding. */
int fix_mul(int a, int b) {
    return (a * b + 16384) >> 15;
}

/* sin(k*pi/32) in Q15 for any k, via quarter-wave symmetry. */
int fix_sin(int k) {
    k = k & 63;
    if (k < 16) return sintab[k];
    if (k < 32) return sintab[32 - k];
    if (k < 48) return -sintab[k - 32];
    return -sintab[64 - k];
}

/* cos via phase shift. */
int fix_cos(int k) {
    return fix_sin(k + 16);
}

/* Bit-reverse the low m bits of x. */
int bit_reverse(int x, int m) {
    int r = 0;
    int i;
    for (i = 0; i < m; i++) {
        r = (r << 1) | (x & 1);
        x = x >> 1;
    }
    return r;
}

/* In-place radix-2 DIT FFT over re/im. m = log2(n), inverse != 0 for
 * the inverse transform (without the 1/n scaling). */
void fft_fixed(int m, int inverse) {
    int n = 1 << m;
    int i;
    int j;
    int stage;
    int half = 1;
    int step;

    /* Bit-reversal permutation. */
    for (i = 0; i < n; i++) {
        j = bit_reverse(i, m);
        if (j > i) {
            int tr = re[i];
            int ti = im[i];
            re[i] = re[j];
            im[i] = im[j];
            re[j] = tr;
            im[j] = ti;
        }
    }

    /* Butterfly stages. */
    for (stage = 0; stage < m; stage++) {
        step = 64 >> (stage + 1);   /* table stride for this stage */
        for (j = 0; j < half; j++) {
            int wr = fix_cos(j * step);
            int wi = -fix_sin(j * step);
            if (inverse) wi = -wi;
            for (i = j; i < n; i += half * 2) {
                int k = i + half;
                int tr = fix_mul(wr, re[k]) - fix_mul(wi, im[k]);
                int ti = fix_mul(wr, im[k]) + fix_mul(wi, re[k]);
                re[k] = (re[i] - tr) >> 1;
                im[k] = (im[i] - ti) >> 1;
                re[i] = (re[i] + tr) >> 1;
                im[i] = (im[i] + ti) >> 1;
            }
        }
        half = half * 2;
    }
}

/* Fill the buffers with a deterministic two-tone test signal. */
void fft_fill(int n) {
    int i;
    for (i = 0; i < n; i++) {
        re[i] = fix_sin(i * 4) / 2 + fix_sin(i * 6) / 4;
        im[i] = 0;
    }
}

/* Alpha-max-plus-beta-min magnitude approximation: |z| without a
 * square root, the embedded staple. */
int fix_mag(int re0, int im0) {
    if (re0 < 0) re0 = -re0;
    if (im0 < 0) im0 = -im0;
    if (re0 > im0) return re0 + ((im0 * 3) >> 3);
    return im0 + ((re0 * 3) >> 3);
}

/* Index of the strongest bin in the lower half spectrum. */
int find_peak(int n) {
    int i;
    int best = 0;
    int besti = 0;
    for (i = 0; i < n / 2; i++) {
        int m = fix_mag(re[i], im[i]);
        if (m > best) {
            best = m;
            besti = i;
        }
    }
    return besti;
}

/* Sum of absolute values, the driver's spectrum summary. */
int fft_energy(int n) {
    int i;
    int e = 0;
    for (i = 0; i < n; i++) {
        int r = re[i];
        int v = im[i];
        if (r < 0) r = -r;
        if (v < 0) v = -v;
        e += r + v;
    }
    return e;
}

int fft_main(int m) {
    int n = 1 << m;
    int i;
    fft_fill(n);
    fft_fixed(m, 0);
    for (i = 0; i < n; i++) __trace(re[i] * 65536 + (im[i] & 0xFFFF));
    __trace(fft_energy(n));
    __trace(find_peak(n));
    /* Round-trip: inverse transform should approximately restore the
     * (scaled) signal. */
    fft_fixed(m, 1);
    __trace(fft_energy(n));
    return fft_energy(n);
}
`,
	}
}
