package mibench

// Stringsearch is the "office" category benchmark: Boyer-Moore-Horspool
// string searching in the three variants of the MiBench program —
// case-sensitive (bmh), case-sensitive with a match accelerator (bmha)
// and case-insensitive (bmhi) — each with an init routine building the
// skip table and a search routine, plus a driver that scans a corpus of
// phrases for a set of patterns. Strings are arrays of character
// codes, one per word, in the integer-only mini-C dialect.
func Stringsearch() Program {
	return Program{
		Name:        "stringsearch",
		Category:    "office",
		Description: "searches for given words in phrases (Boyer-Moore-Horspool)",
		Driver:      "search_main",
		DriverArgs:  nil,
		Source: `
/* Skip tables (ASCII range). */
int skip[128];
int skipi[128];

/* The text corpus and patterns, built by the driver. */
int text[256];
int textlen;
int pat[32];
int patlen;

int tolower_c(int c) {
    if (c >= 'A' && c <= 'Z') return c + 32;
    return c;
}

/* --- case-sensitive BMH ------------------------------------------- */

void bmh_init(void) {
    int i;
    for (i = 0; i < 128; i++) skip[i] = patlen;
    for (i = 0; i < patlen - 1; i++) skip[pat[i] & 127] = patlen - i - 1;
}

int bmh_search(void) {
    int i = patlen - 1;
    while (i < textlen) {
        int j = patlen - 1;
        int k = i;
        while (j >= 0 && text[k] == pat[j]) {
            j--;
            k--;
        }
        if (j < 0) return k + 1;
        i += skip[text[i] & 127];
    }
    return -1;
}

/* --- BMH with a first-character match accelerator ------------------ */

void bmha_init(void) {
    bmh_init();
}

int bmha_search(void) {
    int i = patlen - 1;
    int lastch = pat[patlen - 1];
    while (i < textlen) {
        int j;
        int k;
        /* Accelerator: hop through the text until a window even ends
         * with the pattern's final character (the original uses
         * memchr for this scan). */
        while (i < textlen && text[i] != lastch) {
            i += skip[text[i] & 127];
        }
        if (i >= textlen) return -1;
        j = patlen - 1;
        k = i;
        while (j >= 0 && text[k] == pat[j]) {
            j--;
            k--;
        }
        if (j < 0) return k + 1;
        i += skip[text[i] & 127];
    }
    return -1;
}

/* --- case-insensitive BMH ------------------------------------------ */

void bmhi_init(void) {
    int i;
    for (i = 0; i < 128; i++) skipi[i] = patlen;
    for (i = 0; i < patlen - 1; i++) {
        int c = tolower_c(pat[i]) & 127;
        skipi[c] = patlen - i - 1;
        if (c >= 'a' && c <= 'z') skipi[c - 32] = patlen - i - 1;
    }
}

int bmhi_search(void) {
    int i = patlen - 1;
    while (i < textlen) {
        int j = patlen - 1;
        int k = i;
        while (j >= 0 && tolower_c(text[k]) == tolower_c(pat[j])) {
            j--;
            k--;
        }
        if (j < 0) return k + 1;
        i += skipi[text[i] & 127];
    }
    return -1;
}

/* --- brute force baseline -------------------------------------------- */

/* Straightforward scan, the baseline the BMH variants beat. */
int brute_search(void) {
    int i;
    for (i = 0; i + patlen <= textlen; i++) {
        int j = 0;
        while (j < patlen && text[i + j] == pat[j]) j++;
        if (j == patlen) return i;
    }
    return -1;
}

/* --- driver --------------------------------------------------------- */

/* Deterministic lowercase corpus with planted pattern occurrences. */
void build_text(void) {
    int i;
    int w = 11;
    for (i = 0; i < 256; i++) {
        w = (w * 1103515245 + 12345) & 0x7FFFFFFF;
        text[i] = 'a' + (w % 26);
    }
    /* Plant "Found" (mixed case) at 77 and "found" at 180. */
    text[77] = 'F'; text[78] = 'o'; text[79] = 'u'; text[80] = 'n'; text[81] = 'd';
    text[180] = 'f'; text[181] = 'o'; text[182] = 'u'; text[183] = 'n'; text[184] = 'd';
    textlen = 256;
}

void set_pattern(int which) {
    if (which == 0) {
        pat[0] = 'f'; pat[1] = 'o'; pat[2] = 'u'; pat[3] = 'n'; pat[4] = 'd';
        patlen = 5;
    } else if (which == 1) {
        pat[0] = 'F'; pat[1] = 'o'; pat[2] = 'u'; pat[3] = 'n'; pat[4] = 'd';
        patlen = 5;
    } else {
        pat[0] = 'z'; pat[1] = 'q'; pat[2] = 'z'; pat[3] = 'q';
        patlen = 4;
    }
}

int search_main(void) {
    int which;
    int total = 0;
    build_text();
    for (which = 0; which < 3; which++) {
        set_pattern(which);
        bmh_init();
        __trace(bmh_search());
        bmha_init();
        __trace(bmha_search());
        bmhi_init();
        __trace(bmhi_search());
        __trace(brute_search());
        total += bmh_search() + bmhi_search();
    }
    return total;
}
`,
	}
}
