package mibench

// JPEG is the "consumer" category benchmark: the computational kernels
// of a baseline JPEG coder, following the parts of the MiBench
// jpeg/cjpeg program the paper's Table 3 draws functions from — color
// conversion (rgb_ycc), the forward DCT (start_input/fdct kernels),
// quantization table setup (set_quant_table), block quantization,
// zig-zag reordering, and a table-driven entropy decoder in the style
// of GetCode/LZWReadByte.
func JPEG() Program {
	return Program{
		Name:        "jpeg",
		Category:    "consumer",
		Description: "image compression / decompression kernels",
		Driver:      "jpeg_main",
		DriverArgs:  nil,
		Source: `
/* One 8x8 sample block and its transform/quantized versions. */
int sample[64];
int block[64];
int qblock[64];
int quanttbl[64];
int zz[64];

/* Standard luminance quantization base table (subset pattern). */
int std_luminance[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99
};

/* Zig-zag scan order. */
int zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};

/* Huffman-style decode tables for get_code. */
int maxcode[9];
int valptr[9];
int huffval[16];
int bitbuf;
int bitcnt;
int instream[32];
int inpos;

/* --- color conversion ---------------------------------------------- */

/* Scaled integer RGB -> luma, as in jpeg's rgb_ycc_convert. */
int rgb_ycc(int r, int g, int b) {
    return (19595 * r + 38470 * g + 7471 * b + 32768) >> 16;
}

/* --- forward DCT ----------------------------------------------------- */

/* One-dimensional 8-point DCT pass over block[off..off+7*stride],
 * integer AAN-style butterflies. */
void fdct_pass(int off, int stride) {
    int p0 = block[off];
    int p1 = block[off + stride];
    int p2 = block[off + 2 * stride];
    int p3 = block[off + 3 * stride];
    int p4 = block[off + 4 * stride];
    int p5 = block[off + 5 * stride];
    int p6 = block[off + 6 * stride];
    int p7 = block[off + 7 * stride];

    int s07 = p0 + p7;
    int d07 = p0 - p7;
    int s16 = p1 + p6;
    int d16 = p1 - p6;
    int s25 = p2 + p5;
    int d25 = p2 - p5;
    int s34 = p3 + p4;
    int d34 = p3 - p4;

    int a0 = s07 + s34;
    int a1 = s16 + s25;
    int a2 = s07 - s34;
    int a3 = s16 - s25;

    block[off] = a0 + a1;
    block[off + 4 * stride] = a0 - a1;
    block[off + 2 * stride] = a2 + ((a3 * 92682) >> 17);
    block[off + 6 * stride] = ((a2 * 92682) >> 17) - a3;

    block[off + stride] = d07 + ((d16 * 3) >> 2);
    block[off + 3 * stride] = d25 - ((d34 * 3) >> 2);
    block[off + 5 * stride] = d16 + ((d25 * 5) >> 3);
    block[off + 7 * stride] = d34 - ((d07 * 5) >> 3);
}

/* 2-D forward DCT: rows then columns. */
void forward_dct(void) {
    int i;
    for (i = 0; i < 64; i++) block[i] = sample[i] - 128;
    for (i = 0; i < 8; i++) fdct_pass(i * 8, 1);
    for (i = 0; i < 8; i++) fdct_pass(i, 8);
}

/* --- quantization ---------------------------------------------------- */

/* Scale the base table by a quality factor, as set_quant_slots does. */
void set_quant_table(int scale_factor) {
    int i;
    for (i = 0; i < 64; i++) {
        int temp = (std_luminance[i] * scale_factor + 50) / 100;
        if (temp <= 0) temp = 1;
        if (temp > 255) temp = 255;
        quanttbl[i] = temp;
    }
}

void quantize_block(void) {
    int i;
    for (i = 0; i < 64; i++) {
        int v = block[i];
        int q = quanttbl[i];
        if (v < 0) {
            v = -v;
            v += q >> 1;
            v = v / q;
            qblock[i] = -v;
        } else {
            v += q >> 1;
            qblock[i] = v / q;
        }
    }
}

/* Reorder into zig-zag scan order. */
void zigzag_block(void) {
    int i;
    for (i = 0; i < 64; i++) zz[i] = qblock[zigzag[i]];
}

/* --- entropy decoding (GetCode/LZWReadByte style) -------------------- */

void decode_init(void) {
    int i;
    /* A tiny canonical Huffman code: lengths 2..4. */
    maxcode[0] = -1;
    maxcode[1] = -1;
    maxcode[2] = 2;  /* codes 00,01,10 */
    maxcode[3] = 6;
    maxcode[4] = 14;
    for (i = 5; i < 9; i++) maxcode[i] = -1;
    valptr[2] = 0;
    valptr[3] = 3;
    valptr[4] = 5;
    for (i = 0; i < 16; i++) huffval[i] = i * 3 + 1;
    bitbuf = 0;
    bitcnt = 0;
    inpos = 0;
}

int get_bit(void) {
    int b;
    if (bitcnt == 0) {
        bitbuf = instream[inpos & 31];
        inpos++;
        bitcnt = 8;
    }
    b = (bitbuf >> 7) & 1;
    bitbuf = (bitbuf << 1) & 0xFF;
    bitcnt--;
    return b;
}

/* Table-driven Huffman decode, as jpeg's GetCode. */
int get_code(void) {
    int code = get_bit();
    int len = 1;
    while (len < 8 && (maxcode[len] < 0 || code > maxcode[len])) {
        code = (code << 1) | get_bit();
        len++;
    }
    if (len >= 8) return -1;
    return huffval[valptr[len] + code - (maxcode[len] - (maxcode[len] >> 1))];
}

int decode_run(int count) {
    int i;
    int sum = 0;
    decode_init();
    for (i = 0; i < 32; i++) instream[i] = (i * 37 + 11) & 0xFF;
    for (i = 0; i < count; i++) {
        int v = get_code();
        if (v < 0) break;
        sum += v;
    }
    return sum;
}

/* --- inverse DCT ------------------------------------------------------- */

/* One-dimensional 8-point inverse DCT pass, the decompression-side
 * mirror of fdct_pass. */
void idct_pass(int off, int stride) {
    int p0 = block[off];
    int p1 = block[off + stride];
    int p2 = block[off + 2 * stride];
    int p3 = block[off + 3 * stride];
    int p4 = block[off + 4 * stride];
    int p5 = block[off + 5 * stride];
    int p6 = block[off + 6 * stride];
    int p7 = block[off + 7 * stride];

    int e0 = p0 + p4;
    int e1 = p0 - p4;
    int e2 = p2 + ((p6 * 92682) >> 17);
    int e3 = ((p2 * 92682) >> 17) - p6;

    int a0 = e0 + e2;
    int a1 = e1 + e3;
    int a2 = e1 - e3;
    int a3 = e0 - e2;

    int o0 = p1 + ((p7 * 3) >> 2);
    int o1 = p3 - ((p5 * 3) >> 2);
    int o2 = p5 + ((p3 * 5) >> 3);
    int o3 = p7 - ((p1 * 5) >> 3);

    block[off] = (a0 + o0) >> 3;
    block[off + stride] = (a1 + o1) >> 3;
    block[off + 2 * stride] = (a2 + o2) >> 3;
    block[off + 3 * stride] = (a3 + o3) >> 3;
    block[off + 4 * stride] = (a3 - o3) >> 3;
    block[off + 5 * stride] = (a2 - o2) >> 3;
    block[off + 6 * stride] = (a1 - o1) >> 3;
    block[off + 7 * stride] = (a0 - o0) >> 3;
}

/* 2-D inverse DCT plus level shift, as in jpeg's jpeg_idct_islow. */
void inverse_dct(void) {
    int i;
    for (i = 0; i < 8; i++) idct_pass(i * 8, 1);
    for (i = 0; i < 8; i++) idct_pass(i, 8);
    for (i = 0; i < 64; i++) {
        int v = block[i] + 128;
        if (v < 0) v = 0;
        if (v > 255) v = 255;
        sample[i] = v;
    }
}

/* --- dequantization ----------------------------------------------------- */

void dequantize_block(void) {
    int i;
    for (i = 0; i < 64; i++) block[i] = qblock[i] * quanttbl[i];
}

/* --- chroma downsampling ------------------------------------------------- */

/* 2:1 horizontal downsample with rounding, as in jpeg's h2v1 path;
 * reads sample[], writes the first 32 entries of qblock[] (reused as a
 * scratch row buffer). */
void downsample_row(int row) {
    int i;
    int base = row * 8;
    for (i = 0; i < 4; i++) {
        int a = sample[base + i * 2];
        int b = sample[base + i * 2 + 1];
        qblock[row * 4 + i] = (a + b + 1) >> 1;
    }
}

/* --- run-length encoding -------------------------------------------------- */

int rle_out[128];
int rle_n;

/* Zero-run-length encode the zig-zag coefficients, the shape of jpeg's
 * entropy encoder input: (run, value) pairs with a 16-zero cap. */
void rle_block(void) {
    int i;
    int run = 0;
    rle_n = 0;
    for (i = 1; i < 64; i++) {
        int v = zz[i];
        if (v == 0) {
            run++;
            if (run == 16) {
                rle_out[rle_n * 2] = 15;
                rle_out[rle_n * 2 + 1] = 0;
                rle_n++;
                run = 0;
            }
        } else {
            rle_out[rle_n * 2] = run;
            rle_out[rle_n * 2 + 1] = v;
            rle_n++;
            run = 0;
        }
    }
    if (run > 0) {
        /* end-of-block marker */
        rle_out[rle_n * 2] = 0;
        rle_out[rle_n * 2 + 1] = 0;
        rle_n++;
    }
}

/* --- driver ----------------------------------------------------------- */

int jpeg_main(void) {
    int i;
    int total = 0;
    int w = 5;

    /* Build a deterministic sample block from "RGB" values. */
    for (i = 0; i < 64; i++) {
        int r;
        int g;
        int b;
        w = (w * 1103515245 + 12345) & 0x7FFFFFFF;
        r = w & 0xFF;
        g = (w >> 8) & 0xFF;
        b = (w >> 16) & 0xFF;
        sample[i] = rgb_ycc(r, g, b);
    }

    set_quant_table(75);
    forward_dct();
    quantize_block();
    zigzag_block();
    rle_block();

    for (i = 0; i < 64; i++) __trace(zz[i]);
    for (i = 0; i < 64; i++) total += zz[i] * (i + 1);
    for (i = 0; i < rle_n; i++) total += rle_out[i * 2] + rle_out[i * 2 + 1];
    __trace(rle_n);

    /* Decompression path: dequantize, inverse transform, downsample. */
    dequantize_block();
    inverse_dct();
    for (i = 0; i < 8; i++) downsample_row(i);
    for (i = 0; i < 32; i++) total += qblock[i] * (i + 1);
    __trace(total);

    total += decode_run(40);
    __trace(total);
    return total;
}
`,
	}
}
