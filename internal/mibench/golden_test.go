package mibench_test

import (
	"crypto/sha1"
	"encoding/binary"
	"math/bits"
	"testing"

	"repro/internal/interp"
	"repro/internal/mibench"
)

// machineFor compiles a benchmark and returns a machine over it.
func machineFor(t *testing.T, name string) *interp.Machine {
	t.Helper()
	p, err := mibench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return interp.New(prog, interp.Limits{})
}

// TestSHAMatchesCryptoSHA1 cross-validates the benchmark against Go's
// crypto/sha1: the driver hashes a 64-byte message (byte i is
// (i*7+3)&0xFF) with standard padding, so the digests must agree
// word for word.
func TestSHAMatchesCryptoSHA1(t *testing.T) {
	m := machineFor(t, "sha")
	res, err := m.Run("sha_main", 64)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte((i*7 + 3) & 0xFF)
	}
	want := sha1.Sum(msg)
	if len(res.Trace) != 5 {
		t.Fatalf("driver traced %d words, want 5", len(res.Trace))
	}
	for i := 0; i < 5; i++ {
		w := binary.BigEndian.Uint32(want[i*4:])
		if uint32(res.Trace[i]) != w {
			t.Fatalf("digest word %d = %08x, want %08x", i, uint32(res.Trace[i]), w)
		}
	}
}

// TestBitcountMatchesMathBits cross-validates all six counters against
// math/bits.OnesCount32 over the same LCG stream the driver uses.
func TestBitcountMatchesMathBits(t *testing.T) {
	m := machineFor(t, "bitcount")
	res, err := m.Run("bitcount_main", 64)
	if err != nil {
		t.Fatal(err)
	}
	seed := int32(1)
	want := 0
	for n := 0; n < 64; n++ {
		seed = seed*1103515245 + 12345
		want += bits.OnesCount32(uint32(seed & 0x7FFFFFFF))
	}
	if res.Ret != int32(want) {
		t.Fatalf("bitcount total = %d, want %d", res.Ret, want)
	}
	// All six counters agreed (no negative markers in the trace).
	for _, v := range res.Trace {
		if v < 0 {
			t.Fatalf("counters disagreed: trace %v", res.Trace)
		}
	}
}

// TestDijkstraMatchesReference reimplements the same graph and a
// textbook Dijkstra in Go and compares every pair distance.
func TestDijkstraMatchesReference(t *testing.T) {
	// Rebuild the driver's pseudo-random graph.
	var adj [10][10]int32
	w := int32(7)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			w = (w*1103515245 + 12345) & 0x7FFFFFFF
			if i == j {
				adj[i][j] = 0
			} else {
				adj[i][j] = (w % 9) + 1
			}
		}
	}
	shortest := func(src, dst int) int32 {
		const inf = int32(1 << 30)
		dist := [10]int32{}
		done := [10]bool{}
		for i := range dist {
			dist[i] = inf
		}
		dist[src] = 0
		for {
			u, best := -1, inf
			for i, d := range dist {
				if !done[i] && d < best {
					u, best = i, d
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for v := 0; v < 10; v++ {
				if adj[u][v] != 0 && dist[u]+adj[u][v] < dist[v] {
					dist[v] = dist[u] + adj[u][v]
				}
			}
		}
		return dist[dst]
	}

	m := machineFor(t, "dijkstra")
	if _, err := m.Run("build_graph"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i == j {
				continue
			}
			res, err := m.Run("dijkstra", int32(i), int32(j))
			if err != nil {
				t.Fatal(err)
			}
			if want := shortest(i, j); res.Ret != want {
				t.Fatalf("dijkstra(%d,%d) = %d, want %d", i, j, res.Ret, want)
			}
		}
	}
}

// TestStringsearchMatchesReference rebuilds the corpus in Go and
// compares every search result against a straightforward scan.
func TestStringsearchMatchesReference(t *testing.T) {
	text := make([]int32, 256)
	w := int32(11)
	for i := range text {
		w = (w*1103515245 + 12345) & 0x7FFFFFFF
		text[i] = 'a' + (w % 26)
	}
	plant := func(at int, s string) {
		for i, c := range s {
			text[at+i] = int32(c)
		}
	}
	plant(77, "Found")
	plant(180, "found")

	find := func(pat []int32, fold bool) int32 {
		lower := func(c int32) int32 {
			if fold && c >= 'A' && c <= 'Z' {
				return c + 32
			}
			return c
		}
		for i := 0; i+len(pat) <= len(text); i++ {
			ok := true
			for j := range pat {
				if lower(text[i+j]) != lower(pat[j]) {
					ok = false
					break
				}
			}
			if ok {
				return int32(i)
			}
		}
		return -1
	}

	pats := map[int][]int32{
		0: {'f', 'o', 'u', 'n', 'd'},
		1: {'F', 'o', 'u', 'n', 'd'},
		2: {'z', 'q', 'z', 'q'},
	}

	m := machineFor(t, "stringsearch")
	if _, err := m.Run("build_text"); err != nil {
		t.Fatal(err)
	}
	for which, pat := range pats {
		if _, err := m.Run("set_pattern", int32(which)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run("bmh_init"); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run("bmh_search")
		if err != nil {
			t.Fatal(err)
		}
		if want := find(pat, false); res.Ret != want {
			t.Fatalf("bmh_search(pat %d) = %d, want %d", which, res.Ret, want)
		}
		res, err = m.Run("bmha_search")
		if err != nil {
			t.Fatal(err)
		}
		if want := find(pat, false); res.Ret != want {
			t.Fatalf("bmha_search(pat %d) = %d, want %d", which, res.Ret, want)
		}
		if _, err := m.Run("bmhi_init"); err != nil {
			t.Fatal(err)
		}
		res, err = m.Run("bmhi_search")
		if err != nil {
			t.Fatal(err)
		}
		if want := find(pat, true); res.Ret != want {
			t.Fatalf("bmhi_search(pat %d) = %d, want %d", which, res.Ret, want)
		}
	}
}

// TestFFTRoundTripRestoresSignal checks that forward + inverse
// transform reproduces the (per-stage halved) input up to fixed-point
// rounding: correlating the restored signal with the original must
// give a strongly positive match.
func TestFFTRoundTripRestoresSignal(t *testing.T) {
	m := machineFor(t, "fft")
	const logN, n = 5, 32
	if _, err := m.Run("fft_fill", n); err != nil {
		t.Fatal(err)
	}
	orig := make([]int32, n)
	for i := int32(0); i < n; i++ {
		orig[i] = m.ReadGlobal("re", i)
	}
	if _, err := m.Run("fft_fixed", logN, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("fft_fixed", logN, 1); err != nil {
		t.Fatal(err)
	}
	// The forward transform halves at each of logN stages (a 1/n
	// scale) and the inverse halves again, but the inverse butterflies
	// also re-sum the n bins, so the net round-trip scale is 1/n.
	// Correlate the rescaled signal with the original.
	var dot, norm int64
	for i := int32(0); i < n; i++ {
		restored := int64(m.ReadGlobal("re", i)) * int64(n)
		dot += restored * int64(orig[i])
		norm += int64(orig[i]) * int64(orig[i])
	}
	if norm == 0 {
		t.Fatal("test signal is empty")
	}
	ratio := float64(dot) / float64(norm)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("round trip lost the signal: correlation ratio %.3f", ratio)
	}
}

// TestFFTSpectrumPeaks: the two-tone input must put its energy at the
// tone bins (4 and 6 of 32, plus mirrors).
func TestFFTSpectrumPeaks(t *testing.T) {
	m := machineFor(t, "fft")
	const logN, n = 5, 32
	if _, err := m.Run("fft_fill", n); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("fft_fixed", logN, 0); err != nil {
		t.Fatal(err)
	}
	mag := func(i int32) int64 {
		re := int64(m.ReadGlobal("re", i))
		im := int64(m.ReadGlobal("im", i))
		return re*re + im*im
	}
	peak := []int32{2, 3, 29, 30} // bins of sin(i*4*pi/32)=bin2 and sin(i*6*pi/32)=bin3, plus mirrors
	peakE, totalE := int64(0), int64(0)
	for i := int32(0); i < n; i++ {
		e := mag(i)
		totalE += e
		for _, p := range peak {
			if i == p {
				peakE += e
			}
		}
	}
	if totalE == 0 {
		t.Fatal("empty spectrum")
	}
	if float64(peakE) < 0.8*float64(totalE) {
		t.Fatalf("tone bins hold only %.1f%% of the energy", 100*float64(peakE)/float64(totalE))
	}
}

// TestJPEGQuantTableMatchesFormula reimplements set_quant_table.
func TestJPEGQuantTableMatchesFormula(t *testing.T) {
	std := []int32{
		16, 11, 10, 16, 24, 40, 51, 61,
		12, 12, 14, 19, 26, 58, 60, 55,
		14, 13, 16, 24, 40, 57, 69, 56,
		14, 17, 22, 29, 51, 87, 80, 62,
		18, 22, 37, 56, 68, 109, 103, 77,
		24, 35, 55, 64, 81, 104, 113, 92,
		49, 64, 78, 87, 103, 121, 120, 101,
		72, 92, 95, 98, 112, 100, 103, 99,
	}
	m := machineFor(t, "jpeg")
	if _, err := m.Run("set_quant_table", 75); err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 64; i++ {
		want := (std[i]*75 + 50) / 100
		if want <= 0 {
			want = 1
		}
		if want > 255 {
			want = 255
		}
		if got := m.ReadGlobal("quanttbl", i); got != want {
			t.Fatalf("quanttbl[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestJPEGZigzagIsPermutation: the zig-zag reorder must visit every
// coefficient exactly once.
func TestJPEGZigzagIsPermutation(t *testing.T) {
	m := machineFor(t, "jpeg")
	// Fill qblock with identifiable values.
	addr, ok := m.GlobalAddr("qblock")
	if !ok {
		t.Fatal("no qblock global")
	}
	for i := uint32(0); i < 64; i++ {
		m.WriteWord(addr+i*4, int32(1000+i))
	}
	if _, err := m.Run("zigzag_block"); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for i := int32(0); i < 64; i++ {
		v := m.ReadGlobal("zz", i)
		if v < 1000 || v >= 1064 || seen[v] {
			t.Fatalf("zigzag not a permutation: zz[%d] = %d", i, v)
		}
		seen[v] = true
	}
	// Spot-check the scan order: zz[1] must be coefficient 1, zz[2]
	// coefficient 8.
	if m.ReadGlobal("zz", 1) != 1001 || m.ReadGlobal("zz", 2) != 1008 {
		t.Fatal("zig-zag order wrong at the start")
	}
}
