package mibench

// Dijkstra is the "network" category benchmark: single-source shortest
// paths over a dense adjacency matrix, following the structure of the
// MiBench dijkstra program (an adjacency matrix, a work queue with
// enqueue/dequeue/qcount, and a dijkstra routine driven over several
// source/destination pairs).
func Dijkstra() Program {
	return Program{
		Name:        "dijkstra",
		Category:    "network",
		Description: "Dijkstra's shortest path algorithm",
		Driver:      "dijkstra_main",
		DriverArgs:  nil,
		Source: `
/* 10-node graph: AdjMatrix[i*10+j] is the edge weight, 0 = no edge. */
int AdjMatrix[100];
int gdist[10];
int gprev[10];

/* FIFO work queue of node/distance pairs. */
int qnode[128];
int qdist[128];
int qhead;
int qtail;

int NONE;

void enqueue(int node, int dist) {
    qnode[qtail & 127] = node;
    qdist[qtail & 127] = dist;
    qtail++;
}

int dequeue_node(void) {
    return qnode[qhead & 127];
}

int dequeue_dist(void) {
    return qdist[qhead & 127];
}

void dequeue(void) {
    qhead++;
}

int qcount(void) {
    return qtail - qhead;
}

/* Build a deterministic pseudo-random weighted graph. */
void build_graph(void) {
    int i;
    int j;
    int w = 7;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            w = (w * 1103515245 + 12345) & 0x7FFFFFFF;
            if (i == j) {
                AdjMatrix[i * 10 + j] = 0;
            } else {
                AdjMatrix[i * 10 + j] = (w % 9) + 1;
            }
        }
    }
}

int dijkstra(int src, int dst) {
    int i;
    int v;
    int dist;
    int w;
    NONE = 9999;
    for (i = 0; i < 10; i++) {
        gdist[i] = NONE;
        gprev[i] = NONE;
    }
    qhead = 0;
    qtail = 0;
    gdist[src] = 0;
    enqueue(src, 0);
    while (qcount() > 0) {
        v = dequeue_node();
        dist = dequeue_dist();
        dequeue();
        if (dist > gdist[v]) continue;
        for (i = 0; i < 10; i++) {
            w = AdjMatrix[v * 10 + i];
            if (w != 0) {
                if (dist + w < gdist[i]) {
                    gdist[i] = dist + w;
                    gprev[i] = v;
                    enqueue(i, dist + w);
                }
            }
        }
    }
    return gdist[dst];
}

/* Walk predecessors to count the hops of the found path. */
int path_len(int src, int dst) {
    int hops = 0;
    int v = dst;
    while (v != src && hops < 16 && v != 9999) {
        v = gprev[v];
        hops++;
    }
    return hops;
}

/* Count nodes reachable from src within maxdist, a small analysis pass
 * over the dijkstra results. */
int count_near(int src, int maxdist) {
    int i;
    int n = 0;
    for (i = 0; i < 10; i++) {
        if (i != src) {
            if (dijkstra(src, i) <= maxdist) n++;
        }
    }
    return n;
}

int dijkstra_main(void) {
    int i;
    int j;
    int total = 0;
    build_graph();
    __trace(count_near(0, 5));
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            if (i != j) {
                int d = dijkstra(i, j);
                total += d;
                __trace(d * 100 + path_len(i, j));
            }
        }
    }
    return total;
}
`,
	}
}
