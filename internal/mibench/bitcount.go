package mibench

// Bitcount is the "auto" category benchmark: it tests processor bit
// manipulation abilities with seven different bit-counting routines,
// following the structure of the MiBench bitcnts program (bit_count,
// bitcount, ntbl_bitcnt, ntbl_bitcount, btbl_bitcnt, bit_shifter and a
// driver that runs them all over a pseudo-random stream).
func Bitcount() Program {
	return Program{
		Name:        "bitcount",
		Category:    "auto",
		Description: "test processor bit manipulation abilities",
		Driver:      "bitcount_main",
		DriverArgs:  []int32{64},
		Source: `
/* Four-bit population count table, as in MiBench's bitcount. */
int bits[16] = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};

/* Byte-wide population count table, filled once by btbl_init. */
int btbl[256];
int btbl_ready;

int nseed;

/* Kernighan-style counter: clear the lowest set bit until empty. */
int bit_count(int x) {
    int n = 0;
    if (x) {
        do {
            n++;
            x = x & (x - 1);
        } while (x);
    }
    return n;
}

/* Parallel (tree) counter using mask arithmetic. */
int bitcount(int i) {
    i = ((i & 0xAAAAAAAA) >> 1) + (i & 0x55555555);
    i = ((i & 0xCCCCCCCC) >> 2) + (i & 0x33333333);
    i = ((i & 0xF0F0F0F0) >> 4) + (i & 0x0F0F0F0F);
    i = ((i & 0xFF00FF00) >> 8) + (i & 0x00FF00FF);
    i = ((i & 0xFFFF0000) >> 16) + (i & 0x0000FFFF);
    return i & 63;
}

/* Nibble-table counter: recurse over 4-bit groups. */
int ntbl_bitcnt(int x) {
    int cnt = bits[x & 0x0F];
    x = (x >> 4) & 0x0FFFFFFF;
    if (x != 0) {
        cnt += ntbl_bitcnt(x);
    }
    return cnt;
}

/* Non-looping nibble-table counter. */
int ntbl_bitcount(int x) {
    return bits[x & 0x0F] +
           bits[(x >> 4) & 0x0F] +
           bits[(x >> 8) & 0x0F] +
           bits[(x >> 12) & 0x0F] +
           bits[(x >> 16) & 0x0F] +
           bits[(x >> 20) & 0x0F] +
           bits[(x >> 24) & 0x0F] +
           bits[(x >> 28) & 0x0F];
}

void btbl_init(void) {
    int i;
    if (btbl_ready) return;
    for (i = 0; i < 256; i++) btbl[i] = bits[i & 0x0F] + bits[(i >> 4) & 0x0F];
    btbl_ready = 1;
}

/* Byte-table counter. */
int btbl_bitcnt(int x) {
    btbl_init();
    return btbl[x & 0xFF] +
           btbl[(x >> 8) & 0xFF] +
           btbl[(x >> 16) & 0xFF] +
           btbl[(x >> 24) & 0xFF];
}

/* Shift-and-test counter. */
int bit_shifter(int x) {
    int i;
    int n = 0;
    for (i = 0; x && (i < 32); i++) {
        n += x & 1;
        x = (x >> 1) & 0x7FFFFFFF;
    }
    return n;
}

/* Simple linear congruential stream standing in for the random test
 * inputs of the original driver. */
int nextrand(void) {
    nseed = nseed * 1103515245 + 12345;
    return nseed & 0x7FFFFFFF;
}

int bitcount_main(int iterations) {
    int i;
    int n;
    int seed;
    int total[6];
    for (i = 0; i < 6; i++) total[i] = 0;
    nseed = 1;
    for (n = 0; n < iterations; n++) {
        seed = nextrand();
        total[0] += bit_count(seed);
        total[1] += bitcount(seed);
        total[2] += ntbl_bitcnt(seed);
        total[3] += ntbl_bitcount(seed);
        total[4] += btbl_bitcnt(seed);
        total[5] += bit_shifter(seed);
    }
    /* Every counter must agree. */
    for (i = 1; i < 6; i++) {
        if (total[i] != total[0]) __trace(-i);
    }
    for (i = 0; i < 6; i++) __trace(total[i]);
    return total[0];
}
`,
	}
}
