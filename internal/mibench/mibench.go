// Package mibench provides the benchmark corpus for the reproduction:
// one program per MiBench category, as in Table 2 of the paper,
// rewritten in the mini-C dialect the frontend accepts. The paper's
// benchmarks are C applications for the embedded market; these
// versions preserve the control-flow and arithmetic character of the
// originals — bit-twiddling kernels, graph loops, fixed-point
// butterflies, hash rounds, string scans and table-driven decoders —
// which is what the phase order space statistics depend on.
//
// Every program has a deterministic driver function that exercises its
// kernels and emits results through the __trace builtin, providing the
// observable behaviour used for whole-space differential testing and
// the dynamic instruction counts of Table 7.
package mibench

import (
	"fmt"

	"repro/internal/mc"
	"repro/internal/rtl"
)

// Program is one benchmark of the suite.
type Program struct {
	// Name and Category match Table 2.
	Name        string
	Category    string
	Description string
	// Source is the mini-C source text.
	Source string
	// Driver names the entry function for whole-program runs, invoked
	// with DriverArgs.
	Driver     string
	DriverArgs []int32
}

// Compile translates the program to RTL.
func (p Program) Compile() (*rtl.Program, error) {
	prog, err := mc.Compile(p.Source)
	if err != nil {
		return nil, fmt.Errorf("mibench %s: %w", p.Name, err)
	}
	return prog, nil
}

// All returns the six-benchmark suite in Table 2 order.
func All() []Program {
	return []Program{
		Bitcount(),
		Dijkstra(),
		FFT(),
		JPEG(),
		SHA(),
		Stringsearch(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Program, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("mibench: unknown benchmark %q", name)
}

// Functions compiles every benchmark and returns all functions,
// tagged with their benchmark, in suite order. It is the corpus the
// experiments iterate over.
type TaggedFunc struct {
	Bench string
	Func  *rtl.Func
	Prog  *rtl.Program
}

// AllFunctions compiles the whole suite.
func AllFunctions() ([]TaggedFunc, error) {
	var out []TaggedFunc
	for _, p := range All() {
		prog, err := p.Compile()
		if err != nil {
			return nil, err
		}
		for _, f := range prog.Funcs {
			out = append(out, TaggedFunc{Bench: p.Name, Func: f, Prog: prog})
		}
	}
	return out, nil
}
