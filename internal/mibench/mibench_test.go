package mibench_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/mibench"
	"repro/internal/rtl"
)

// TestSuiteCompilesAndRuns compiles every benchmark, validates every
// function, and executes the driver.
func TestSuiteCompilesAndRuns(t *testing.T) {
	for _, p := range mibench.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, f := range prog.Funcs {
				if err := rtl.Validate(f); err != nil {
					t.Errorf("invalid function %s: %v", f.Name, err)
				}
			}
			res, err := interp.Run(prog, p.Driver, p.DriverArgs...)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(res.Trace) == 0 {
				t.Fatalf("driver produced no trace output")
			}
			t.Logf("%s: ret=%d steps=%d trace[:4]=%v funcs=%d", p.Name, res.Ret, res.Steps, res.Trace[:min(4, len(res.Trace))], len(prog.Funcs))
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
