package mibench

// SHA is the "security" category benchmark: the SHA-1 secure hash,
// following the MiBench sha program's structure (sha_init,
// sha_transform, sha_update, sha_final, byte_reverse). sha_transform,
// with its 80-round compression loop, is the largest single function —
// in the paper it is the third-largest space that still enumerated
// (343,162 instances).
func SHA() Program {
	return Program{
		Name:        "sha",
		Category:    "security",
		Description: "secure hash algorithm (SHA-1)",
		Driver:      "sha_main",
		DriverArgs:  []int32{96},
		Source: `
/* Hash state and message buffers. */
int sha_digest[5];
int sha_count;
int sha_block[16];  /* 16 message words per block */
int sha_w[80];      /* message schedule */
int sha_input[64];  /* driver's message, one byte per word */

int rotl(int x, int n) {
    return (x << n) | ((x >> (32 - n)) & ~(-1 << n));
}

void sha_init(void) {
    sha_digest[0] = 0x67452301;
    sha_digest[1] = 0xEFCDAB89;
    sha_digest[2] = 0x98BADCFE;
    sha_digest[3] = 0x10325476;
    sha_digest[4] = 0xC3D2E1F0;
    sha_count = 0;
}

/* The SHA-1 compression function over sha_block. */
void sha_transform(void) {
    int i;
    int a;
    int b;
    int c;
    int d;
    int e;
    int t;

    for (i = 0; i < 16; i++) sha_w[i] = sha_block[i];
    for (i = 16; i < 80; i++) {
        t = sha_w[i - 3] ^ sha_w[i - 8] ^ sha_w[i - 14] ^ sha_w[i - 16];
        sha_w[i] = rotl(t, 1);
    }

    a = sha_digest[0];
    b = sha_digest[1];
    c = sha_digest[2];
    d = sha_digest[3];
    e = sha_digest[4];

    for (i = 0; i < 20; i++) {
        t = rotl(a, 5) + ((b & c) | (~b & d)) + e + sha_w[i] + 0x5A827999;
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }
    for (i = 20; i < 40; i++) {
        t = rotl(a, 5) + (b ^ c ^ d) + e + sha_w[i] + 0x6ED9EBA1;
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }
    for (i = 40; i < 60; i++) {
        t = rotl(a, 5) + ((b & c) | (b & d) | (c & d)) + e + sha_w[i] + 0x8F1BBCDC;
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }
    for (i = 60; i < 80; i++) {
        t = rotl(a, 5) + (b ^ c ^ d) + e + sha_w[i] + 0xCA62C1D6;
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }

    sha_digest[0] += a;
    sha_digest[1] += b;
    sha_digest[2] += c;
    sha_digest[3] += d;
    sha_digest[4] += e;
}

/* Pack four big-endian bytes from sha_input into each block word,
 * standing in for the original's byte_reverse of little-endian data. */
void byte_reverse(int off) {
    int i;
    for (i = 0; i < 16; i++) {
        int base = off + i * 4;
        sha_block[i] = (sha_input[base] << 24) |
                       ((sha_input[base + 1] & 0xFF) << 16) |
                       ((sha_input[base + 2] & 0xFF) << 8) |
                       (sha_input[base + 3] & 0xFF);
    }
}

/* Process len bytes (len must be a multiple of 64 in this driver). */
void sha_update(int len) {
    int off = 0;
    while (off + 64 <= len) {
        byte_reverse(off);
        sha_transform();
        sha_count += 64;
        off += 64;
    }
}

/* Minimal padding: a block holding only the bit length. */
void sha_final(void) {
    int i;
    for (i = 0; i < 16; i++) sha_block[i] = 0;
    sha_block[0] = 0x80000000;
    sha_block[15] = sha_count * 8;
    sha_transform();
}

int sha_main(int len) {
    int i;
    if (len > 64) len = 64;
    len = len & ~63;        /* whole blocks only */
    if (len < 64) len = 64; /* at least one */
    for (i = 0; i < len; i++) sha_input[i] = (i * 7 + 3) & 0xFF;
    sha_init();
    sha_update(len);
    sha_final();
    for (i = 0; i < 5; i++) __trace(sha_digest[i]);
    return sha_digest[0] ^ sha_digest[4];
}
`,
	}
}
