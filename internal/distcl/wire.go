package distcl

import "repro/internal/rtl"

// The dist protocol endpoints, mounted by the coordinator under
// /v1/dist/. Every request is a POST with a JSON body; every mutating
// request is idempotent (see the package comment), so the Client can
// retry any of them blindly.
const (
	PathRegister   = "/v1/dist/register"
	PathPoll       = "/v1/dist/poll"
	PathHeartbeat  = "/v1/dist/heartbeat"
	PathComplete   = "/v1/dist/complete"
	PathDeregister = "/v1/dist/deregister"
)

// RegisterRequest announces a worker to the coordinator. Registering
// an already-known WorkerID is idempotent and revives a worker the
// coordinator had declared dead — the re-registration path after a
// coordinator restart or a long partition.
type RegisterRequest struct {
	// WorkerID is the worker's preferred identity; empty lets the
	// coordinator mint one. Stable IDs keep per-worker metric series
	// continuous across reconnects.
	WorkerID string `json:"worker_id,omitempty"`
	// Jobs advertises how many assignments the worker runs at once.
	Jobs int `json:"jobs,omitempty"`
}

// RegisterResponse fixes the worker's identity and the protocol
// cadence: the worker must heartbeat every HeartbeatMillis to keep its
// leases (LeaseTTLMillis) alive, and poll requests block up to
// PollWaitMillis before returning empty.
type RegisterResponse struct {
	WorkerID        string `json:"worker_id"`
	LeaseTTLMillis  int64  `json:"lease_ttl_ms"`
	HeartbeatMillis int64  `json:"heartbeat_ms"`
	PollWaitMillis  int64  `json:"poll_wait_ms"`
}

// PollRequest asks for work. The coordinator long-polls: the response
// is either 200 with an Assignment or 204 after PollWaitMillis with
// nothing to do.
type PollRequest struct {
	WorkerID string `json:"worker_id"`
}

// SearchOptions is the enumeration-shaping subset of the server's
// request options, mirrored onto the wire with the same field names so
// the cache key derivation agrees on both ends.
type SearchOptions struct {
	Cap      int  `json:"cap,omitempty"`
	MaxNodes int  `json:"max_nodes,omitempty"`
	Check    bool `json:"check,omitempty"`
	Equiv    bool `json:"equiv,omitempty"`
}

// Assignment is one unit of leased work: enumerate Func under Options
// and report back under AssignmentID. The rtl.Func crosses the wire as
// its plain JSON encoding (every field is exported), which round-trips
// exactly — hash parity with single-node enumeration depends on it.
type Assignment struct {
	AssignmentID string        `json:"assignment_id"`
	Key          string        `json:"key"`
	Func         *rtl.Func     `json:"func"`
	Options      SearchOptions `json:"options"`
	// CheckpointB64 carries the last checkpoint uploaded for this work
	// (space format v2, base64) when the assignment is a re-dispatch
	// after a lease expiry: the new worker resumes where the dead one
	// stopped instead of starting over.
	CheckpointB64 string `json:"checkpoint_b64,omitempty"`
	// SearchTimeoutMillis bounds the worker-side search wall time
	// (0 = unlimited), mirroring the coordinator's local limit.
	SearchTimeoutMillis int64 `json:"search_timeout_ms,omitempty"`
	// LeaseGen is the dispatch generation of this lease. The worker
	// echoes it with every heartbeat upload for the assignment; the
	// coordinator rejects uploads carrying a stale generation, which
	// fences off checkpoints from an expired lease arriving after the
	// work was re-dispatched (possibly to the same worker).
	LeaseGen int64 `json:"lease_gen,omitempty"`
}

// HeartbeatAssignment reports progress on one in-flight assignment.
// CheckpointB64, when non-empty, is the worker's latest checkpoint;
// the coordinator validates it (same function, node count never
// shrinking) and keeps it as the assignment's recovery point.
type HeartbeatAssignment struct {
	AssignmentID  string `json:"assignment_id"`
	CheckpointB64 string `json:"checkpoint_b64,omitempty"`
	// LeaseGen echoes the Assignment's lease generation. Zero is the
	// legacy wildcard (a worker predating the field); any other value
	// must match the assignment's current generation or the entry is
	// ignored — neither renewing the lease nor uploading the checkpoint.
	LeaseGen int64 `json:"lease_gen,omitempty"`
}

// HeartbeatRequest renews the worker's leases. Draining announces a
// graceful shutdown: the coordinator stops offering the worker new
// work and treats the attached checkpoints as final.
type HeartbeatRequest struct {
	WorkerID    string                `json:"worker_id"`
	Draining    bool                  `json:"draining,omitempty"`
	Assignments []HeartbeatAssignment `json:"assignments,omitempty"`
}

// HeartbeatResponse lists assignments the coordinator no longer wants
// from this worker (reassigned after a lease expiry the worker
// outlived, or a drained flight); the worker cancels them and uploads
// nothing further.
type HeartbeatResponse struct {
	Abandon []string `json:"abandon,omitempty"`
}

// CompleteRequest delivers a finished assignment. SpaceB64 is the
// serialized space (format v2, base64) and SpaceHash its CanonicalHash
// — the idempotency key: re-submitting the same completion is
// acknowledged as a duplicate, and a conflicting hash for an already
// completed assignment is rejected. An Aborted completion (cap or
// timeout hit on the worker) carries the reason instead of a space.
type CompleteRequest struct {
	WorkerID     string `json:"worker_id"`
	AssignmentID string `json:"assignment_id"`
	Key          string `json:"key"`
	SpaceHash    string `json:"space_hash,omitempty"`
	SpaceB64     string `json:"space_b64,omitempty"`
	Aborted      bool   `json:"aborted,omitempty"`
	AbortReason  string `json:"abort_reason,omitempty"`
}

// CompleteResponse acknowledges a completion: "accepted" the first
// time, "duplicate" for an idempotent re-submission.
type CompleteResponse struct {
	Status string `json:"status"`
}

// DeregisterRequest removes the worker cleanly; its remaining leases
// are released for immediate re-dispatch rather than waiting out the
// TTL.
type DeregisterRequest struct {
	WorkerID string `json:"worker_id"`
}
