package distcl

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Client talks to the coordinator (required).
	Client *Client
	// ID is the preferred worker identity; empty lets the coordinator
	// mint one.
	ID string
	// ScratchDir holds the worker's checkpoint files (required); one
	// file per in-flight assignment, removed when the assignment ends.
	ScratchDir string
	// Jobs is how many assignments run concurrently (default 1).
	Jobs int
	// SearchWorkers sets per-search parallelism (default NumCPU).
	SearchWorkers int
	// DrainTimeout bounds the shutdown sequence — final checkpoint
	// upload plus deregister (default 30s).
	DrainTimeout time.Duration
	// Faults injects deterministic failures into both the searches
	// (phase faults) and the worker's own lifecycle (workerdie); the
	// network directives live on the Client's plan. Nil injects
	// nothing.
	Faults *faultinject.Plan
	// Logger receives the worker's structured lifecycle events; nil
	// logs nothing.
	Logger *slog.Logger
	// Exit replaces os.Exit for the injected workerdie fault (tests).
	Exit func(code int)
}

// Worker is the pull-based execution agent of the distribution plane:
// it registers with the coordinator, long-polls for assignments, runs
// each as a checkpointing search, uploads progress with every
// heartbeat, and delivers finished spaces keyed by their canonical
// hash. On context cancellation it drains: in-flight searches stop at
// the next level boundary, their final checkpoints are uploaded, and
// the worker deregisters — nothing enumerated is lost.
type Worker struct {
	cfg    WorkerConfig
	client *Client
	logger *slog.Logger
	exit   func(int)

	id       string
	hbEvery  time.Duration
	pollWait time.Duration

	mu      sync.Mutex
	active  map[string]*run
	drained []HeartbeatAssignment // final checkpoints awaiting the drain heartbeat
}

// run is one in-flight assignment.
type run struct {
	a        *Assignment
	cancel   context.CancelCauseFunc
	ckptPath string

	mu         sync.Mutex
	uploadedCk string // sha256 of the last checkpoint successfully uploaded
	abandoned  bool
}

// errAbandoned cancels a run the coordinator told us to drop.
var errAbandoned = errors.New("distcl: assignment abandoned by coordinator")

// NewWorker creates a Worker; Run starts it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Client == nil {
		return nil, errors.New("distcl: WorkerConfig.Client is required")
	}
	if cfg.ScratchDir == "" {
		return nil, errors.New("distcl: WorkerConfig.ScratchDir is required")
	}
	if err := os.MkdirAll(cfg.ScratchDir, 0o755); err != nil {
		return nil, fmt.Errorf("distcl: scratch dir: %w", err)
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	exit := cfg.Exit
	if exit == nil {
		exit = os.Exit
	}
	return &Worker{
		cfg:    cfg,
		client: cfg.Client,
		logger: logger,
		exit:   exit,
		active: make(map[string]*run),
	}, nil
}

// Run registers, serves assignments until ctx is canceled, then drains
// and deregisters. It returns nil on a clean drain; a register that
// never succeeds returns the last error.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.logger.Info("worker registered", "worker_id", w.id,
		"heartbeat", w.hbEvery, "poll_wait", w.pollWait)

	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(ctx)
	}()

	var wg sync.WaitGroup
	sem := make(chan struct{}, w.cfg.Jobs)
poll:
	for {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break poll
		}
		a, err := w.poll(ctx)
		if err != nil {
			<-sem
			if ctx.Err() != nil {
				break poll
			}
			w.logger.Warn("poll failed", "err", err.Error())
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
				break poll
			}
			continue
		}
		if a == nil {
			<-sem
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			w.execute(ctx, a)
		}()
	}

	// Drain: the canceled ctx has already reached every search; they
	// abort at the next level boundary and write final checkpoints.
	wg.Wait()
	<-hbDone
	dctx, cancel := context.WithTimeout(context.Background(), w.cfg.DrainTimeout)
	defer cancel()
	w.heartbeat(dctx, true)
	if _, err := w.client.Call(dctx, PathDeregister, &DeregisterRequest{WorkerID: w.id}, nil); err != nil {
		w.logger.Warn("deregister failed", "err", err.Error())
	}
	w.logger.Info("worker drained", "worker_id", w.id)
	return nil
}

// register announces the worker, retrying (beyond the client's own
// retries) until the coordinator answers or ctx ends — a worker may
// start before its coordinator.
func (w *Worker) register(ctx context.Context) error {
	req := RegisterRequest{WorkerID: w.cfg.ID, Jobs: w.cfg.Jobs}
	if w.id != "" {
		req.WorkerID = w.id // re-registration keeps the identity stable
	}
	var lastErr error
	for {
		var resp RegisterResponse
		_, err := w.client.Call(ctx, PathRegister, &req, &resp)
		if err == nil {
			w.id = resp.WorkerID
			w.hbEvery = time.Duration(resp.HeartbeatMillis) * time.Millisecond
			w.pollWait = time.Duration(resp.PollWaitMillis) * time.Millisecond
			if w.hbEvery <= 0 {
				w.hbEvery = time.Second
			}
			if w.pollWait <= 0 {
				w.pollWait = 10 * time.Second
			}
			return nil
		}
		lastErr = err
		w.logger.Warn("register failed, will retry", "err", err.Error())
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
			return fmt.Errorf("distcl: register: %w (last: %v)", ctx.Err(), lastErr)
		}
	}
}

// poll asks for one assignment; nil, nil means the long poll came back
// empty. An unknown-worker answer re-registers (coordinator restarted)
// and reports empty so the loop simply polls again.
func (w *Worker) poll(ctx context.Context) (*Assignment, error) {
	pctx, cancel := context.WithTimeout(ctx, w.pollWait+w.client.cfg.Timeout)
	defer cancel()
	var a Assignment
	status, err := w.client.Call(pctx, PathPoll, &PollRequest{WorkerID: w.id}, &a)
	if err != nil {
		if w.lostIdentity(err) {
			return nil, w.register(ctx)
		}
		return nil, err
	}
	if status == http.StatusNoContent || a.AssignmentID == "" {
		return nil, nil
	}
	return &a, nil
}

// lostIdentity reports a 404 from the coordinator — it does not know
// this worker anymore, typically after a restart.
func (w *Worker) lostIdentity(err error) bool {
	se := &StatusError{}
	return errors.As(err, &se) && se.Status == http.StatusNotFound
}

// heartbeatLoop renews leases every hbEvery until ctx ends. Each beat
// is also the workerdie fault's injection point: a budgeted plan kills
// the process here, mid-lease, with no drain — the crash the lease
// machinery exists to survive.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if w.cfg.Faults.WorkerDieFault() {
				w.logger.Error("injected workerdie fault: exiting without drain", "worker_id", w.id)
				w.exit(1)
				return
			}
			w.heartbeat(ctx, false)
		}
	}
}

// heartbeat sends one lease renewal carrying the latest checkpoint of
// every in-flight assignment whose file changed since its last
// successful upload, plus (when draining) the final checkpoints of
// already-stopped runs, and acts on the coordinator's abandon list.
func (w *Worker) heartbeat(ctx context.Context, draining bool) {
	req := HeartbeatRequest{WorkerID: w.id, Draining: draining}
	type pendingUpload struct {
		ru  *run
		sum string
	}
	var uploads []pendingUpload
	w.mu.Lock()
	for _, ru := range w.active {
		ha := HeartbeatAssignment{AssignmentID: ru.a.AssignmentID, LeaseGen: ru.a.LeaseGen}
		if b, sum := ru.changedCheckpoint(); b != nil {
			ha.CheckpointB64 = base64.StdEncoding.EncodeToString(b)
			uploads = append(uploads, pendingUpload{ru, sum})
		}
		req.Assignments = append(req.Assignments, ha)
	}
	if draining {
		req.Assignments = append(req.Assignments, w.drained...)
		w.drained = nil
	}
	w.mu.Unlock()

	var resp HeartbeatResponse
	if _, err := w.client.Call(ctx, PathHeartbeat, &req, &resp); err != nil {
		w.logger.Warn("heartbeat failed", "err", err.Error())
		if w.lostIdentity(err) && !draining {
			if rerr := w.register(ctx); rerr != nil {
				w.logger.Warn("re-register failed", "err", rerr.Error())
			}
		}
		return
	}
	// Only a delivered heartbeat advances the upload watermark; a lost
	// one re-uploads the same checkpoint next beat.
	for _, u := range uploads {
		u.ru.mu.Lock()
		u.ru.uploadedCk = u.sum
		u.ru.mu.Unlock()
	}
	for _, id := range resp.Abandon {
		w.mu.Lock()
		ru := w.active[id]
		w.mu.Unlock()
		if ru != nil {
			w.logger.Info("abandoning assignment", "assignment_id", id)
			ru.mu.Lock()
			ru.abandoned = true
			ru.mu.Unlock()
			ru.cancel(errAbandoned)
		}
	}
}

// changedCheckpoint reads the run's checkpoint file and returns its
// bytes and content hash when it differs from the last uploaded one;
// nil when unchanged, missing, or mid-write (the search writes
// atomically, so a readable file is always a complete checkpoint).
func (ru *run) changedCheckpoint() ([]byte, string) {
	b, err := os.ReadFile(ru.ckptPath)
	if err != nil || len(b) == 0 {
		return nil, ""
	}
	sum := sha256.Sum256(b)
	hexSum := hex.EncodeToString(sum[:])
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if hexSum == ru.uploadedCk {
		return nil, ""
	}
	return b, hexSum
}

// execute runs one assignment to completion, cancellation, or abort.
func (w *Worker) execute(ctx context.Context, a *Assignment) {
	logger := w.logger.With("assignment_id", a.AssignmentID, "key", a.Key, "func", a.Func.Name)
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	// The scratch file is scoped to the lease generation: a re-dispatch
	// of an assignment this worker still runs must not share (or, on
	// cleanup, delete) the superseded run's checkpoint file.
	ru := &run{a: a, cancel: cancel,
		ckptPath: filepath.Join(w.cfg.ScratchDir,
			fmt.Sprintf("%s.g%d.ckpt.space.gz", a.AssignmentID, a.LeaseGen))}
	w.mu.Lock()
	old := w.active[a.AssignmentID]
	w.active[a.AssignmentID] = ru
	w.mu.Unlock()
	if old != nil {
		// The coordinator expired our lease on this assignment and then
		// handed it back: the old run's lease is gone, so its uploads
		// are fenced off anyway — stop burning CPU on it.
		logger.Info("superseding stale run of re-dispatched assignment")
		old.mu.Lock()
		old.abandoned = true
		old.mu.Unlock()
		old.cancel(errAbandoned)
	}
	defer func() {
		w.mu.Lock()
		if w.active[a.AssignmentID] == ru {
			delete(w.active, a.AssignmentID)
		}
		w.mu.Unlock()
	}()
	logger.Info("assignment started", "resume", a.CheckpointB64 != "")

	opts := search.Options{
		MaxSeqPerLevel: a.Options.Cap,
		MaxNodes:       a.Options.MaxNodes,
		Check:          a.Options.Check,
		Equiv:          a.Options.Equiv,
		Timeout:        time.Duration(a.SearchTimeoutMillis) * time.Millisecond,
		Ctx:            rctx,
		Workers:        w.cfg.SearchWorkers,
		Logger:         logger,
		Faults:         w.cfg.Faults,
	}
	var res *search.Result
	if !a.Options.Equiv {
		opts.CheckpointPath = ru.ckptPath
		res = w.resumeFromSeed(ru, opts, logger)
	}
	if res == nil {
		res = search.Run(a.Func, opts)
	}

	if res.Aborted && strings.HasPrefix(res.AbortReason, "canceled") {
		ru.mu.Lock()
		abandoned := ru.abandoned
		ru.mu.Unlock()
		if abandoned {
			os.Remove(ru.ckptPath) //nolint:errcheck // best-effort scratch cleanup
			logger.Info("assignment abandoned, checkpoint discarded")
			return
		}
		// Drain: the search's abort path wrote a final checkpoint;
		// queue it for the drain heartbeat so the coordinator can
		// re-dispatch from exactly where we stopped.
		ha := HeartbeatAssignment{AssignmentID: a.AssignmentID, LeaseGen: a.LeaseGen}
		if b, _ := ru.changedCheckpoint(); b != nil {
			ha.CheckpointB64 = base64.StdEncoding.EncodeToString(b)
		}
		w.mu.Lock()
		w.drained = append(w.drained, ha)
		w.mu.Unlock()
		logger.Info("assignment checkpointed for drain", "nodes", len(res.Nodes))
		return
	}

	req := CompleteRequest{WorkerID: w.id, AssignmentID: a.AssignmentID, Key: a.Key}
	if res.Aborted {
		req.Aborted, req.AbortReason = true, res.AbortReason
	} else {
		var buf bytes.Buffer
		if err := res.Save(&buf); err != nil {
			logger.Error("serializing finished space", "err", err.Error())
			return
		}
		hash, err := res.CanonicalHash()
		if err != nil {
			logger.Error("hashing finished space", "err", err.Error())
			return
		}
		req.SpaceB64 = base64.StdEncoding.EncodeToString(buf.Bytes())
		req.SpaceHash = hash
	}
	// Completion must outlive a drain signal that lands after the
	// search already finished: the result exists, deliver it.
	cctx, ccancel := context.WithTimeout(context.WithoutCancel(ctx), w.cfg.DrainTimeout)
	defer ccancel()
	var cresp CompleteResponse
	if _, err := w.client.Call(cctx, PathComplete, &req, &cresp); err != nil {
		// The lease will expire and the work be re-dispatched; the
		// scratch checkpoint stays for nothing, so drop it.
		logger.Warn("complete failed, lease will recover", "err", err.Error())
		os.Remove(ru.ckptPath) //nolint:errcheck // best-effort scratch cleanup
		return
	}
	os.Remove(ru.ckptPath) //nolint:errcheck // best-effort scratch cleanup
	logger.Info("assignment completed",
		"aborted", req.Aborted, "space_hash", req.SpaceHash, "status", cresp.Status)
}

// resumeFromSeed materializes the assignment's re-dispatch checkpoint
// (if any) into the scratch file and resumes from it. Any failure
// falls back to a fresh run — a bad seed costs time, never
// correctness.
func (w *Worker) resumeFromSeed(ru *run, opts search.Options, logger *slog.Logger) *search.Result {
	a := ru.a
	if a.CheckpointB64 == "" {
		return nil
	}
	b, err := base64.StdEncoding.DecodeString(a.CheckpointB64)
	if err != nil {
		logger.Warn("undecodable seed checkpoint, starting fresh", "err", err.Error())
		return nil
	}
	if err := os.WriteFile(ru.ckptPath, b, 0o644); err != nil {
		logger.Warn("cannot seed scratch checkpoint, starting fresh", "err", err.Error())
		return nil
	}
	prev, err := search.LoadFile(ru.ckptPath)
	if err != nil || prev.Checkpoint == nil {
		logger.Warn("unusable seed checkpoint, starting fresh")
		return nil
	}
	res, err := search.Resume(prev, opts)
	if err != nil {
		logger.Warn("resume from seed failed, starting fresh", "err", err.Error())
		return nil
	}
	logger.Info("resumed from uploaded checkpoint", "seed_nodes", len(prev.Nodes))
	return res
}
