package distcl

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

type echoResp struct {
	N int `json:"n"`
}

// fastClient builds a Client with millisecond backoffs so retry tests
// run in test time, not wall time.
func fastClient(t *testing.T, ts *httptest.Server, cfg Config) *Client {
	t.Helper()
	cfg.BaseURL = ts.URL
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Millisecond
	}
	return NewClient(cfg)
}

// TestCallRetriesTransientStatus: 503s are retried with backoff until
// the server recovers; the eventual success decodes normally and the
// retry counter reflects the extra attempts.
func TestCallRetriesTransientStatus(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"overloaded"}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"n":7}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := fastClient(t, ts, Config{})
	var out echoResp
	status, err := c.Call(context.Background(), "/x", map[string]int{"a": 1}, &out)
	if err != nil || status != http.StatusOK || out.N != 7 {
		t.Fatalf("Call = (%d, %v), out %+v; want 200 ok n=7", status, err, out)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

// TestCallDoesNotRetryClientErrors: a 404 is an answer, not a transient
// — one attempt, surfaced as a StatusError with the decoded message.
func TestCallDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown worker; re-register"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := fastClient(t, ts, Config{})
	status, err := c.Call(context.Background(), "/x", nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", status)
	}
	se := &StatusError{}
	if !errors.As(err, &se) || se.Status != 404 || se.Msg != "unknown worker; re-register" {
		t.Fatalf("err = %v, want StatusError 404 with decoded message", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", got)
	}
}

// TestCallHonorsRetryAfter: a 429 naming its price stretches the next
// backoff to at least the advertised delay.
func TestCallHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed"}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := fastClient(t, ts, Config{MaxAttempts: 2})
	start := time.Now()
	if _, err := c.Call(context.Background(), "/x", nil, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, Retry-After promised 1s", elapsed)
	}
}

// TestCallInjectsHTTPDrop: a budgeted httpdrop really reaches the
// server (possibly truncated) but loses the response; the retry, budget
// spent, goes through clean.
func TestCallInjectsHTTPDrop(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"n":1}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := fastClient(t, ts, Config{Faults: faultinject.MustParse("httpdrop=1")})
	var out echoResp
	status, err := c.Call(context.Background(), "/x", map[string]int{"a": 1}, &out)
	if err != nil || status != http.StatusOK || out.N != 1 {
		t.Fatalf("Call = (%d, %v), want eventual success", status, err)
	}
	if got := c.Retries(); got != 1 {
		t.Fatalf("Retries() = %d, want 1 (the dropped attempt)", got)
	}
}

// TestCallGivesUpAfterMaxAttempts: a server that never recovers costs
// exactly MaxAttempts requests and reports the last failure.
func TestCallGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer ts.Close()

	c := fastClient(t, ts, Config{MaxAttempts: 3})
	status, err := c.Call(context.Background(), "/x", nil, nil)
	if err == nil {
		t.Fatal("Call succeeded against a permanently failing server")
	}
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", status)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestCallStopsOnContextCancel: a canceled context ends the retry loop
// promptly instead of burning the remaining attempts.
func TestCallStopsOnContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := fastClient(t, ts, Config{MaxAttempts: 1000, BackoffBase: 20 * time.Millisecond, BackoffCap: 20 * time.Millisecond})
	start := time.Now()
	_, err := c.Call(ctx, "/x", nil, nil)
	if err == nil {
		t.Fatal("Call succeeded with a canceled context")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v to notice the canceled context", elapsed)
	}
}

// TestBackoffShape: the schedule is exponential, capped, jittered
// within [d/2, d], and stretched (never shrunk) by Retry-After.
func TestBackoffShape(t *testing.T) {
	c := NewClient(Config{BaseURL: "http://x", BackoffBase: 100 * time.Millisecond, BackoffCap: 400 * time.Millisecond})
	for attempt, wantMax := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond} {
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt, 0)
			if d < wantMax/2 || d > wantMax {
				t.Fatalf("backoff(%d) = %v, want within [%v, %v]", attempt, d, wantMax/2, wantMax)
			}
		}
	}
	if d := c.backoff(0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("backoff with Retry-After 3s = %v, want 3s", d)
	}
}
