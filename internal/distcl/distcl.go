// Package distcl is the shared HTTP client of the distributed
// enumeration plane: the worker fleet talks to the spaced coordinator
// exclusively through it. The client owns the failure discipline the
// protocol's idempotent design assumes — per-attempt timeouts,
// capped-exponential-backoff retries with jitter, Retry-After
// honoring on 429/503 — so every caller survives dropped connections,
// slow links and coordinator restarts the same way. The fault plan's
// network directives (httpdrop, httpslow) are injected here, making
// chaos runs deterministic: a dropped request really sends a
// truncated body and loses its response, exactly once per budget
// unit.
//
// Requests are JSON in, JSON out, and every mutating request is safe
// to resend: completions are keyed by the space's content hash and
// checkpoint uploads are validated and monotonic on the coordinator,
// so the client retries without coordination.
package distcl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Config configures a Client.
type Config struct {
	// BaseURL is the coordinator's base URL (required), e.g.
	// "http://localhost:8080".
	BaseURL string
	// Timeout bounds one attempt (default 15s). A call whose context
	// already carries an earlier deadline keeps it.
	Timeout time.Duration
	// MaxAttempts bounds the attempts per call, first try included
	// (default 5).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the retry delays: attempt n
	// sleeps an equal-jittered base*2^n, capped (defaults 100ms / 5s).
	// A Retry-After header stretches the sleep further, never shrinks
	// it.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Faults injects deterministic network failures (httpdrop,
	// httpslow directives); nil injects nothing.
	Faults *faultinject.Plan
	// Logger receives one warn per retried attempt; nil logs nothing.
	Logger *slog.Logger
	// HTTPClient overrides the transport (tests); nil uses a default
	// client without its own timeout (the per-attempt context bounds
	// every request).
	HTTPClient *http.Client
}

// Client is a retrying JSON-over-HTTP client for the dist protocol.
type Client struct {
	cfg     Config
	hc      *http.Client
	logger  *slog.Logger
	retries atomic.Int64
}

// StatusError is a non-2xx response the server actually sent, carrying
// the decoded error message. Transport failures are not StatusErrors.
type StatusError struct {
	Status int
	Msg    string
	// retryAfter is the server's Retry-After hint, folded into the
	// retry backoff.
	retryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Msg)
}

// NewClient creates a Client for the coordinator at cfg.BaseURL.
func NewClient(cfg Config) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	return &Client{cfg: cfg, hc: hc, logger: logger}
}

// Retries reports the attempts beyond the first across every call —
// how hard the client has had to fight the network.
func (c *Client) Retries() int64 { return c.retries.Load() }

// retryableStatus reports whether the server's answer invites another
// try: overload shedding and transient server errors do, anything else
// the server meant.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the sleep before retry attempt (0-based), an
// equal-jittered exponential: half the capped base*2^attempt plus a
// random half, so synchronized workers fan out instead of stampeding.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BackoffBase << attempt
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	d = d/2 + rand.N(d/2+1) //nolint:gosec // jitter, not crypto
	if retryAfter > d {
		// The server named its price; honoring it beats hammering a
		// coordinator that just said it is overloaded.
		d = retryAfter
	}
	return d
}

// Call POSTs in as JSON to path and decodes the response into out (out
// may be nil; 204 responses decode nothing). Transport errors, 5xx and
// 429 are retried with backoff until MaxAttempts or the context ends;
// other statuses return immediately. The returned status is the last
// HTTP status received (0 when no response ever arrived); err is nil
// exactly when the status is 2xx.
func (c *Client) Call(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("distcl: encoding %s request: %w", path, err)
	}
	var lastStatus int
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			var ra time.Duration
			se := &StatusError{}
			if errors.As(lastErr, &se) && se.retryAfter > 0 {
				ra = se.retryAfter
			}
			sleep := c.backoff(attempt-1, ra)
			c.logger.Warn("dist call retrying", "path", path, "attempt", attempt,
				"backoff_ms", sleep.Milliseconds(), "err", lastErr.Error())
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				return lastStatus, fmt.Errorf("distcl: %s: %w (last: %v)", path, ctx.Err(), lastErr)
			}
		}
		status, err := c.do(ctx, path, body, out)
		lastStatus = status
		if err == nil {
			return status, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastStatus, fmt.Errorf("distcl: %s: %w (last: %v)", path, ctx.Err(), lastErr)
		}
		se := &StatusError{}
		if errors.As(err, &se) && !retryableStatus(se.Status) {
			return status, err
		}
	}
	return lastStatus, fmt.Errorf("distcl: %s failed after %d attempts: %w", path, c.cfg.MaxAttempts, lastErr)
}

// do runs one attempt: inject the fault plan's network directives,
// bound the attempt with the per-attempt timeout, send, decode.
func (c *Client) do(ctx context.Context, path string, body []byte, out any) (int, error) {
	fault := c.cfg.Faults.HTTPFault()
	if fault.SlowFor > 0 {
		select {
		case <-time.After(fault.SlowFor):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}
	var rd io.Reader = bytes.NewReader(body)
	if fault.Drop {
		// The injected drop really sends a truncated request — the
		// coordinator sees the partial upload it must reject — and the
		// response, if any, is lost to this client.
		rd = faultinject.TruncateBody(rd, 64)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, rd)
	if err != nil {
		return 0, fmt.Errorf("distcl: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("distcl: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if fault.Drop {
		// Body may have gone through whole (small payloads fit the
		// truncation window): the response is still lost.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // simulating a dead connection
		return 0, fmt.Errorf("distcl: %s: %w", path, faultinject.ErrHTTPDrop)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil && resp.StatusCode != http.StatusNoContent {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, fmt.Errorf("distcl: decoding %s response: %w", path, err)
			}
		}
		return resp.StatusCode, nil
	}
	se := &StatusError{Status: resp.StatusCode, Msg: http.StatusText(resp.StatusCode)}
	var apiErr struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr) == nil && apiErr.Error != "" {
		se.Msg = apiErr.Error
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		se.retryAfter = time.Duration(ra) * time.Second
	}
	return resp.StatusCode, se
}
