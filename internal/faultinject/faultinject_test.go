package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/mc"
)

func TestParseDirectives(t *testing.T) {
	p, err := Parse("panic=c@sck, corrupt=s, hang=b@k:50ms, ckptfail=2")
	if err != nil {
		t.Fatal(err)
	}
	if f := p.PhaseFault('c', "sck"); f == nil || f.Kind != KindPanic {
		t.Fatalf("panic=c@sck not matched: %+v", f)
	}
	if f := p.PhaseFault('c', "sc"); f != nil {
		t.Fatalf("panic=c@sck matched wrong seq: %+v", f)
	}
	if f := p.PhaseFault('s', "anything"); f == nil || f.Kind != KindCorrupt {
		t.Fatalf("corrupt=s must match every sequence: %+v", f)
	}
	if f := p.PhaseFault('b', "k"); f == nil || f.Kind != KindHang || f.HangFor != 50*time.Millisecond {
		t.Fatalf("hang=b@k:50ms: %+v", f)
	}
	if f := p.PhaseFault('b', ""); f != nil {
		t.Fatalf("hang=b@k matched at root: %+v", f)
	}
}

func TestParseRootTarget(t *testing.T) {
	p := MustParse("panic=c@")
	if f := p.PhaseFault('c', ""); f == nil {
		t.Fatal("panic=c@ must match the root attempt")
	}
	if f := p.PhaseFault('c', "s"); f != nil {
		t.Fatal("panic=c@ must match only the root attempt")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"explode=c", "panic", "panic=long", "hang=b@k:notadur", "ckptfail=x", "ckptfail=-1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

func TestNilAndEmptyPlan(t *testing.T) {
	p, err := Parse("   ")
	if err != nil || p != nil {
		t.Fatalf("blank spec: plan=%v err=%v", p, err)
	}
	if p.PhaseFault('c', "") != nil {
		t.Fatal("nil plan injected a fault")
	}
	var buf bytes.Buffer
	if w := p.WrapCheckpoint(&buf); w != &buf {
		t.Fatal("nil plan wrapped the checkpoint writer")
	}
}

func TestCorruptChangesInstance(t *testing.T) {
	prog, err := mc.Compile(`int id(int x) { return x; }`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("id")
	before := f.NumInstrs()
	Corrupt(f)
	if f.NumInstrs() != before-1 {
		t.Fatalf("Corrupt removed %d instructions, want 1", before-f.NumInstrs())
	}
}

func TestCheckpointFailureBudget(t *testing.T) {
	p := MustParse("ckptfail=1")
	var buf bytes.Buffer
	w := p.WrapCheckpoint(&buf)
	if w == &buf {
		t.Fatal("first checkpoint write was not wrapped")
	}
	big := bytes.Repeat([]byte("x"), 4096)
	if _, err := w.Write(big); !errors.Is(err, ErrCheckpointWrite) {
		t.Fatalf("short writer err = %v, want ErrCheckpointWrite", err)
	}
	if buf.Len() == 0 || buf.Len() >= len(big) {
		t.Fatalf("short writer wrote %d of %d bytes; want a short prefix", buf.Len(), len(big))
	}
	if _, err := w.Write([]byte("y")); !errors.Is(err, ErrCheckpointWrite) {
		t.Fatalf("exhausted short writer err = %v", err)
	}
	// The budget is consumed: the next write goes through untouched.
	if w2 := p.WrapCheckpoint(&buf); w2 != &buf {
		t.Fatal("second checkpoint write still wrapped after budget of 1")
	}
}

func TestDirSyncFailureBudget(t *testing.T) {
	p := MustParse("dirsyncfail=2, ckptfail=1")
	if !p.DirSyncFault() || !p.DirSyncFault() {
		t.Fatal("dirsyncfail=2 did not supply two failures")
	}
	if p.DirSyncFault() {
		t.Fatal("dirsyncfail budget of 2 supplied a third failure")
	}
	// The two budgets are independent: consuming the directory syncs
	// must leave the checkpoint-write budget intact.
	var buf bytes.Buffer
	if w := p.WrapCheckpoint(&buf); w == &buf {
		t.Fatal("ckptfail budget consumed by dirsyncfail directives")
	}
	var nilPlan *Plan
	if nilPlan.DirSyncFault() {
		t.Fatal("nil plan injected a directory sync failure")
	}
	if _, err := Parse("dirsyncfail=x"); err == nil {
		t.Fatal("dirsyncfail with a non-numeric count parsed")
	}
}

func TestHTTPFaultBudgets(t *testing.T) {
	p := MustParse("httpdrop=2, httpslow=1:50ms")
	// First request: both budgets have units, independently consumed.
	f := p.HTTPFault()
	if f.SlowFor != 50*time.Millisecond || !f.Drop {
		t.Fatalf("first request fault = %+v, want slow 50ms + drop", f)
	}
	// Second: the slow budget is spent, one drop remains.
	f = p.HTTPFault()
	if f.SlowFor != 0 || !f.Drop {
		t.Fatalf("second request fault = %+v, want drop only", f)
	}
	// Third: both budgets are dry.
	if f = p.HTTPFault(); f != (HTTPFault{}) {
		t.Fatalf("exhausted budgets still injected %+v", f)
	}
	var nilPlan *Plan
	if f = nilPlan.HTTPFault(); f != (HTTPFault{}) {
		t.Fatalf("nil plan injected %+v", f)
	}
	// Default stall duration.
	if p := MustParse("httpslow=1"); p.HTTPFault().SlowFor != 250*time.Millisecond {
		t.Fatal("httpslow without a duration did not default to 250ms")
	}
	for _, bad := range []string{"httpdrop=x", "httpslow=x", "httpslow=1:xyz", "workerdie=x", "workerdie=0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q parsed", bad)
		}
	}
}

func TestWorkerDieFiresAtNthHeartbeat(t *testing.T) {
	p := MustParse("workerdie=3")
	for i := 1; i <= 2; i++ {
		if p.WorkerDieFault() {
			t.Fatalf("workerdie=3 fired at heartbeat %d", i)
		}
	}
	if !p.WorkerDieFault() {
		t.Fatal("workerdie=3 did not fire at the third heartbeat")
	}
	if p.WorkerDieFault() {
		t.Fatal("workerdie fired twice")
	}
	var nilPlan *Plan
	if nilPlan.WorkerDieFault() {
		t.Fatal("nil plan killed the worker")
	}
	if MustParse("").WorkerDieFault() {
		t.Fatal("empty plan killed the worker")
	}
}

func TestTruncateBody(t *testing.T) {
	src := bytes.Repeat([]byte("z"), 1024)
	got, err := io.ReadAll(TruncateBody(bytes.NewReader(src), 64))
	if !errors.Is(err, ErrHTTPDrop) {
		t.Fatalf("truncated body err = %v, want ErrHTTPDrop", err)
	}
	if len(got) != 64 {
		t.Fatalf("truncated body passed %d bytes, want 64", len(got))
	}
}
