// Package faultinject makes the enumeration engine's failure handling
// testable: a Plan, parsed from a compact spec string (flag- or
// environment-driven), injects deterministic faults into chosen phase
// attempts — panics, corrupted instances, hangs — and into checkpoint
// writes (short-write / ENOSPC simulation). The search package consults
// the plan on every attempt; tests hammer kill/resume and quarantine
// behaviour with it under the race detector.
//
// Spec grammar (comma-separated directives):
//
//	panic=<phase>[@<seq>]         phase panics when attempted (after seq)
//	corrupt=<phase>[@<seq>]       phase returns a corrupted instance
//	hang=<phase>[@<seq>][:<dur>]  phase stalls for dur (default 250ms)
//	ckptfail=<n>                  the next n checkpoint writes fail short
//	dirsyncfail=<n>               the next n checkpoint directory fsyncs
//	                              fail (rename durability lost)
//	httpdrop=<n>                  the next n HTTP requests through the
//	                              dist client send a truncated body and
//	                              lose their response (connection reset)
//	httpslow=<n>[:<dur>]          the next n HTTP requests stall for dur
//	                              before being sent (default 250ms)
//	workerdie=<n>                 the worker process kills itself (no
//	                              drain, no checkpoint upload) at its
//	                              nth heartbeat opportunity
//
// The http* and workerdie directives are budgeted like ckptfail: each
// consultation consumes one unit of the budget, so a chaos run injects
// an exact, reproducible number of network failures.
//
// A directive without @<seq> fires on every attempt of the phase; with
// @<seq> it fires only when the phase is attempted at the node whose
// active sequence is exactly seq, which targets a single DAG edge and
// keeps the injected failure deterministic. "@" alone targets the root.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/rtl"
)

// EnvVar names the environment variable FromEnv reads.
const EnvVar = "REPRO_FAULTS"

// Kind is the failure mode a fault injects.
type Kind int

const (
	// KindPanic makes the phase attempt panic.
	KindPanic Kind = iota
	// KindCorrupt lets the phase run, then corrupts its output instance.
	KindCorrupt
	// KindHang stalls the phase attempt past a watchdog timeout.
	KindHang
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindCorrupt:
		return "corrupt"
	case KindHang:
		return "hang"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injected phase failure.
type Fault struct {
	Kind  Kind
	Phase byte
	// Seq restricts the fault to the attempt of Phase at the node with
	// exactly this active sequence; AnySeq false means every attempt.
	Seq    string
	AnySeq bool
	// HangFor is the stall duration for Hang faults.
	HangFor time.Duration
}

// Plan is a parsed fault-injection plan. The zero value and the nil
// plan inject nothing; all methods are safe on a nil receiver and for
// concurrent use (search workers consult the plan in parallel).
type Plan struct {
	faults []Fault
	// ckptFails is the number of remaining checkpoint writes to fail.
	ckptFails atomic.Int64
	// dirSyncFails is the number of remaining checkpoint directory
	// fsyncs to fail.
	dirSyncFails atomic.Int64
	// httpDrops is the number of remaining HTTP requests to drop
	// (truncated request body, response lost).
	httpDrops atomic.Int64
	// httpSlows is the number of remaining HTTP requests to stall by
	// httpSlowFor before sending.
	httpSlows   atomic.Int64
	httpSlowFor time.Duration
	// workerDie counts down the worker's heartbeat opportunities; when
	// it reaches zero the worker process exits without draining.
	workerDie atomic.Int64
	spec      string
}

// Parse builds a plan from the spec grammar above. An empty spec yields
// a nil plan (no faults).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{spec: spec}
	for _, dir := range strings.Split(spec, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		op, arg, ok := strings.Cut(dir, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: directive %q: want op=arg", dir)
		}
		if op == "ckptfail" || op == "dirsyncfail" || op == "httpdrop" || op == "workerdie" {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: %s wants a count, got %q", op, arg)
			}
			switch op {
			case "ckptfail":
				p.ckptFails.Add(int64(n))
			case "dirsyncfail":
				p.dirSyncFails.Add(int64(n))
			case "httpdrop":
				p.httpDrops.Add(int64(n))
			case "workerdie":
				if n == 0 {
					return nil, fmt.Errorf("faultinject: workerdie wants a count >= 1 (the nth heartbeat kills the worker)")
				}
				p.workerDie.Add(int64(n))
			}
			continue
		}
		if op == "httpslow" {
			head, dur, hasDur := strings.Cut(arg, ":")
			n, err := strconv.Atoi(head)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: httpslow wants a count, got %q", head)
			}
			p.httpSlows.Add(int64(n))
			p.httpSlowFor = 250 * time.Millisecond
			if hasDur {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return nil, fmt.Errorf("faultinject: httpslow duration %q: %v", dur, err)
				}
				p.httpSlowFor = d
			}
			continue
		}
		var kind Kind
		switch op {
		case "panic":
			kind = KindPanic
		case "corrupt":
			kind = KindCorrupt
		case "hang":
			kind = KindHang
		default:
			return nil, fmt.Errorf("faultinject: unknown directive %q", op)
		}
		f := Fault{Kind: kind, HangFor: 250 * time.Millisecond}
		if kind == KindHang {
			if head, dur, ok := strings.Cut(arg, ":"); ok {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return nil, fmt.Errorf("faultinject: hang duration %q: %v", dur, err)
				}
				f.HangFor = d
				arg = head
			}
		}
		phase, seq, targeted := strings.Cut(arg, "@")
		if len(phase) != 1 {
			return nil, fmt.Errorf("faultinject: directive %q: want a one-letter phase, got %q", dir, phase)
		}
		f.Phase = phase[0]
		f.Seq = seq
		f.AnySeq = !targeted
		p.faults = append(p.faults, f)
	}
	return p, nil
}

// MustParse is Parse for tests and wired-in specs; it panics on error.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// FromEnv parses the plan in $REPRO_FAULTS. A missing or empty variable
// yields a nil plan; a malformed one is a hard error, since silently
// ignoring a typo'd fault spec would make a chaos run look healthy.
func FromEnv() (*Plan, error) {
	return Parse(os.Getenv(EnvVar))
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

// PhaseFault returns the first fault covering an attempt of phase at a
// node with active sequence seq, or nil.
func (p *Plan) PhaseFault(phase byte, seq string) *Fault {
	if p == nil {
		return nil
	}
	for i := range p.faults {
		f := &p.faults[i]
		if f.Phase == phase && (f.AnySeq || f.Seq == seq) {
			return f
		}
	}
	return nil
}

// Corrupt mutates f into a structurally plausible but semantically
// different instance — the shape of a phase bug that silently
// miscompiles instead of crashing. It drops the final instruction of
// the last nonempty block, so the fingerprint, the canonical key and
// (usually) the behaviour all change.
func Corrupt(f *rtl.Func) {
	for i := len(f.Blocks) - 1; i >= 0; i-- {
		b := f.Blocks[i]
		if n := len(b.Instrs); n > 0 {
			b.Instrs = b.Instrs[:n-1]
			return
		}
	}
}

// ErrCheckpointWrite is the error the failing checkpoint writer
// returns, standing in for ENOSPC.
var ErrCheckpointWrite = errors.New("faultinject: simulated ENOSPC on checkpoint write")

// ErrDirSync is the error an injected directory-fsync failure returns,
// standing in for an fsync(2) error on the checkpoint's directory —
// the rename that published the checkpoint may not survive power loss.
var ErrDirSync = errors.New("faultinject: simulated fsync failure on checkpoint directory")

// DirSyncFault consumes one injected directory-fsync failure, reporting
// whether the caller's fsync of the checkpoint directory should fail.
func (p *Plan) DirSyncFault() bool {
	if p == nil {
		return false
	}
	return consume(&p.dirSyncFails)
}

// WrapCheckpoint wraps one checkpoint write. While the plan has
// checkpoint failures left it consumes one and returns a writer that
// accepts a short prefix and then fails; otherwise it returns w
// unchanged.
func (p *Plan) WrapCheckpoint(w io.Writer) io.Writer {
	if p == nil {
		return w
	}
	if consume(&p.ckptFails) {
		return &shortWriter{w: w, left: 64}
	}
	return w
}

// consume decrements a budget counter if it is still positive,
// reporting whether a unit was consumed.
func consume(n *atomic.Int64) bool {
	for {
		v := n.Load()
		if v <= 0 {
			return false
		}
		if n.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// HTTPFault describes the network fault to inject into one HTTP
// request through the dist client: stall it for SlowFor before
// sending, and/or Drop it — send a truncated request body and lose the
// response, the observable shape of a connection reset mid-upload.
type HTTPFault struct {
	SlowFor time.Duration
	Drop    bool
}

// HTTPFault consumes the network-fault budgets for one outgoing HTTP
// request. The slow and drop budgets are independent: a request can be
// both stalled and dropped. Returns the zero fault (inject nothing)
// when no budget remains or the plan is nil.
func (p *Plan) HTTPFault() HTTPFault {
	if p == nil {
		return HTTPFault{}
	}
	var f HTTPFault
	if consume(&p.httpSlows) {
		f.SlowFor = p.httpSlowFor
	}
	f.Drop = consume(&p.httpDrops)
	return f
}

// WorkerDieFault consumes one heartbeat opportunity of the workerdie
// budget, reporting whether the worker process should now kill itself
// (exit without draining or uploading a final checkpoint). With
// workerdie=<n> the nth consultation fires; without the directive it
// never does.
func (p *Plan) WorkerDieFault() bool {
	if p == nil {
		return false
	}
	if !consume(&p.workerDie) {
		return false
	}
	return p.workerDie.Load() == 0
}

// ErrHTTPDrop is the synthetic transport error an injected httpdrop
// fault surfaces to the dist client after truncating the request.
var ErrHTTPDrop = errors.New("faultinject: simulated connection drop mid-request")

// TruncateBody bounds an HTTP request body to the first max bytes; the
// reader then fails with ErrHTTPDrop, so the server sees a partial
// upload and the client a transport error — both sides of a connection
// torn mid-request.
func TruncateBody(r io.Reader, max int) io.Reader {
	return &truncReader{r: io.LimitReader(r, int64(max))}
}

type truncReader struct {
	r io.Reader
}

func (t *truncReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		return n, ErrHTTPDrop
	}
	return n, err
}

// shortWriter writes at most left bytes through, then fails every
// subsequent write — the observable shape of a full disk.
type shortWriter struct {
	w    io.Writer
	left int
}

func (s *shortWriter) Write(b []byte) (int, error) {
	if s.left <= 0 {
		return 0, ErrCheckpointWrite
	}
	if len(b) <= s.left {
		s.left -= len(b)
		return s.w.Write(b)
	}
	n, err := s.w.Write(b[:s.left])
	s.left = 0
	if err != nil {
		return n, err
	}
	return n, ErrCheckpointWrite
}
