package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/rtl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// normOptions is the canonical form of the request options that shape
// the enumerated space. Anything that does not change the space (worker
// count, telemetry, deadlines) stays out, so requests differing only in
// those coalesce onto the same cache entry. The JSON encoding of this
// struct is part of the cache key, so fields must never be reordered or
// renamed without revving keyPrefix.
type normOptions struct {
	Cap      int  `json:"cap"`
	MaxNodes int  `json:"max_nodes"`
	Check    bool `json:"check"`
	Equiv    bool `json:"equiv"`
}

// keyPrefix versions the key derivation: bump it when the space format
// or the key material changes incompatibly, and old cache entries
// simply become unreachable instead of wrong. v2: normOptions grew the
// equiv field, changing the encoded key material.
const keyPrefix = "spaced/v2\x00"

// cacheKey is the hex SHA-256 identifying one (function, options)
// enumeration request. It is content-addressed: the function enters via
// its canonical instance encoding (registers and labels renumbered),
// so textual differences that compile to the same code share an entry.
type cacheKey string

var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// requestKey derives the cache key for enumerating fn under no. The
// function is canonicalized the same way search.Run roots the space
// (clone + cleanup) so the key is stable across callers.
func requestKey(fn *rtl.Func, no normOptions) cacheKey {
	root := fn.Clone()
	rtl.Cleanup(root)
	opts, err := json.Marshal(no)
	if err != nil {
		// normOptions is a plain struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("server: encoding options: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(keyPrefix))
	h.Write([]byte(fn.Name))
	h.Write([]byte{0})
	h.Write(fingerprint.Encode(root))
	h.Write([]byte{0})
	h.Write(opts)
	return cacheKey(hex.EncodeToString(h.Sum(nil)))
}

// entry is one cached decoded space with its canonical hash, computed
// once at insertion so hit paths never re-serialize the space.
type entry struct {
	res  *search.Result
	hash string
}

// memCache is a small LRU of decoded search.Results keyed by request
// key — the first cache level, in front of the disk store.
type memCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type memItem struct {
	key cacheKey
	ent entry
}

func newMemCache(max int) *memCache {
	if max <= 0 {
		max = 64
	}
	return &memCache{max: max, ll: list.New(), items: make(map[cacheKey]*list.Element)}
}

func (c *memCache) get(k cacheKey) (entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return entry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*memItem).ent, true
}

func (c *memCache) add(k cacheKey, ent entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*memItem).ent = ent
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&memItem{key: k, ent: ent})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*memItem).key)
	}
}

func (c *memCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// diskStore is the second cache level: one v2 space file per key,
// exactly the bytes explore -save writes, so cached entries can be
// served verbatim and audited with spacedot -hash. Alongside each
// entry may live a checkpoint file (<key>.ckpt.space.gz) holding a
// partially enumerated space a drained or abandoned request left
// behind; the next enumeration of the key resumes from it.
//
// With maxBytes set the store is bounded: complete space entries are
// tracked with sizes and a use clock, and every put sweeps the
// least-recently-used entries until the total fits again. An entry
// with in-flight readers (a /v1/space download streaming it, a load
// decoding it) is never evicted — the sweep skips it and takes the
// next oldest.
//
// Checkpoint slots come in two kinds. The ones the local search engine
// writes directly (opts.CheckpointPath) are transient work state
// outside the budget. The ones the coordinator mirrors through
// writeCkpt — a worker's uploaded recovery point, or one shard of a
// partitioned enumeration — are budgeted like entries: a fleet of K
// shards holds K full node tables on disk, which is exactly the kind
// of growth the budget exists to bound. A mirror slot pinned by the
// coordinator (pinCkpt) belongs to an in-flight sharded assignment and
// is never swept: evicting it would turn the next lease expiry's
// re-dispatch into a from-scratch re-enumeration of the shard.
type diskStore struct {
	dir      string
	maxBytes int64
	gauge    *telemetry.Gauge // cache_disk_bytes

	mu      sync.Mutex
	entries map[cacheKey]*diskEntry
	total   int64
	seq     int64 // LRU use clock; higher = more recent
}

// diskEntry is the eviction bookkeeping for one complete space file or
// one budgeted checkpoint mirror.
type diskEntry struct {
	size    int64
	lastUse int64
	readers int
	// pins counts explicit coordinator pins (pinCkpt): the slot backs
	// an in-flight sharded assignment and must survive every sweep.
	pins int
}

const (
	spaceSuffix = ".space.gz"
	ckptSuffix  = ".ckpt.space.gz"
)

// ckptEntrySuffix decorates the entries-map key of a budgeted
// checkpoint mirror so it never collides with the same key's complete
// space entry. NUL never appears in a filename-derived key.
const ckptEntrySuffix = "\x00ckpt"

func ckptEntryKey(k cacheKey) cacheKey { return k + ckptEntrySuffix }

// ckptKeyPattern admits the keys checkpoint mirror slots use: a plain
// request key, or a shard slot of one (<key>.shard<i>).
var ckptKeyPattern = regexp.MustCompile(`^[0-9a-f]{64}(\.shard[0-9]+)?$`)

func newDiskStore(dir string, maxBytes int64, gauge *telemetry.Gauge) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: cache dir: %w", err)
	}
	st := &diskStore{dir: dir, maxBytes: maxBytes, gauge: gauge,
		entries: make(map[cacheKey]*diskEntry)}
	if err := st.scan(); err != nil {
		return nil, err
	}
	return st, nil
}

// scan seeds the accounting from entries a previous process left
// behind, ordering the use clock by file mtime so eviction starts from
// genuinely old entries.
func (st *diskStore) scan() error {
	des, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("server: cache dir: %w", err)
	}
	type seed struct {
		key   cacheKey
		size  int64
		mtime int64
	}
	var seeds []seed
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		var entKey cacheKey
		switch {
		case hasSuffix(name, ckptSuffix):
			// A checkpoint mirror a previous process left behind — a
			// crashed coordinator's shard slots, typically. Budgeted and
			// unpinned: nothing in this process is running the shard, so
			// the sweep may reclaim it like any cold entry.
			k := cacheKey(name[:len(name)-len(ckptSuffix)])
			if !ckptKeyPattern.MatchString(string(k)) {
				continue
			}
			entKey = ckptEntryKey(k)
		case hasSuffix(name, spaceSuffix):
			k := cacheKey(name[:len(name)-len(spaceSuffix)])
			if !keyPattern.MatchString(string(k)) {
				continue
			}
			entKey = k
		default:
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{entKey, fi.Size(), fi.ModTime().UnixNano()})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mtime < seeds[j].mtime })
	for _, sd := range seeds {
		st.seq++
		st.entries[sd.key] = &diskEntry{size: sd.size, lastUse: st.seq}
		st.total += sd.size
	}
	st.setGauge()
	return nil
}

// setGauge publishes the current byte total; callers hold st.mu (or
// have exclusive access during construction).
func (st *diskStore) setGauge() {
	if st.gauge != nil {
		st.gauge.Set(st.total)
	}
}

// acquire marks k used and pins it against eviction; the caller must
// balance with release. Unknown keys (not yet in the store) are still
// pinned so a concurrent put+sweep cannot race the reader.
func (st *diskStore) acquire(k cacheKey) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[k]
	if e == nil {
		e = &diskEntry{}
		st.entries[k] = e
	}
	st.seq++
	e.lastUse = st.seq
	e.readers++
}

// release unpins k.
func (st *diskStore) release(k cacheKey) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.entries[k]; e != nil {
		e.readers--
		if e.readers <= 0 && e.size == 0 {
			// A placeholder pinned by acquire for a key that never
			// materialized; drop it rather than leak the slot.
			delete(st.entries, k)
		}
	}
}

// sweepLocked evicts least-recently-used budgeted entries (complete
// spaces and checkpoint mirrors) until the budget fits, skipping
// entries with in-flight readers, coordinator pins, and the key just
// written. Callers hold st.mu.
func (st *diskStore) sweepLocked(justWrote cacheKey) (evicted int) {
	if st.maxBytes <= 0 || st.total <= st.maxBytes {
		return 0
	}
	type cand struct {
		key cacheKey
		e   *diskEntry
	}
	var cands []cand
	for k, e := range st.entries {
		if e.size > 0 && e.readers == 0 && e.pins == 0 && k != justWrote {
			cands = append(cands, cand{k, e})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].e.lastUse < cands[j].e.lastUse })
	for _, c := range cands {
		if st.total <= st.maxBytes {
			break
		}
		os.Remove(st.entryFile(c.key)) //nolint:errcheck // accounting proceeds; a stray file is re-scanned next boot
		st.total -= c.e.size
		delete(st.entries, c.key)
		evicted++
	}
	st.setGauge()
	return evicted
}

// entryFile maps an entries-map key to the file it accounts for.
func (st *diskStore) entryFile(entKey cacheKey) string {
	if raw, ok := cutSuffix(string(entKey), ckptEntrySuffix); ok {
		return st.ckptPath(cacheKey(raw))
	}
	return st.path(entKey)
}

func (st *diskStore) path(k cacheKey) string {
	return filepath.Join(st.dir, string(k)+spaceSuffix)
}

func (st *diskStore) ckptPath(k cacheKey) string {
	return filepath.Join(st.dir, string(k)+ckptSuffix)
}

// load reads the cached space for k. A missing file reports
// os.IsNotExist; a damaged one reports the load error, and the caller
// treats both as misses (deleting the damaged file so the slot can be
// re-enumerated rather than failing every request). The entry is
// pinned for the duration of the decode so an eviction sweep cannot
// unlink it mid-read.
func (st *diskStore) load(k cacheKey) (*search.Result, error) {
	st.acquire(k)
	defer st.release(k)
	res, err := search.LoadFile(st.path(k))
	if err != nil {
		return nil, err
	}
	if res.Checkpoint != nil || res.Aborted {
		// Only complete spaces belong in the store; anything else is
		// damage (a checkpoint renamed into place by hand, say).
		return nil, fmt.Errorf("server: cache entry %s holds an incomplete space", k)
	}
	return res, nil
}

// open returns the raw space file for streaming (GET /v1/space). The
// entry stays pinned until the returned release func runs, so a
// download in flight can never lose its file to the eviction sweep.
func (st *diskStore) open(k cacheKey) (*os.File, func(), error) {
	st.acquire(k)
	f, err := os.Open(st.path(k))
	if err != nil {
		st.release(k)
		return nil, nil, err
	}
	return f, func() { f.Close(); st.release(k) }, nil
}

// remove deletes a (damaged) cache entry.
func (st *diskStore) remove(k cacheKey) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.entries[k]; e != nil && e.size > 0 {
		st.total -= e.size
		e.size = 0
		if e.readers <= 0 {
			delete(st.entries, k)
		}
		st.setGauge()
	}
	os.Remove(st.path(k))
}

// put persists a completed space atomically and durably: temp file +
// fsync + rename + directory fsync, the same discipline the search
// checkpoint writer uses, so a crash never leaves a torn entry and a
// power loss never loses a published one. The checkpoint file the
// enumeration wrote along the way is superseded and removed.
func (st *diskStore) put(k cacheKey, r *search.Result) error {
	path := st.path(k)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: cache write: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = r.Save(f); err != nil {
		return fmt.Errorf("server: cache write: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("server: cache write: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("server: cache write: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: cache write: %w", err)
	}
	if err = syncDir(st.dir); err != nil {
		return fmt.Errorf("server: cache write: %w", err)
	}
	os.Remove(st.ckptPath(k))

	var size int64
	if fi, serr := os.Stat(path); serr == nil {
		size = fi.Size()
	}
	st.mu.Lock()
	e := st.entries[k]
	if e == nil {
		e = &diskEntry{}
		st.entries[k] = e
	}
	st.total += size - e.size
	e.size = size
	st.seq++
	e.lastUse = st.seq
	st.dropCkptLocked(k) // the removed checkpoint leaves the budget too
	st.sweepLocked(k)
	st.setGauge()
	st.mu.Unlock()
	return nil
}

// diskBytes reports the tracked byte total (tests).
func (st *diskStore) diskBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// readCkpt returns the raw checkpoint bytes for k (os.IsNotExist when
// none).
func (st *diskStore) readCkpt(k cacheKey) ([]byte, error) {
	return os.ReadFile(st.ckptPath(k))
}

// writeCkpt atomically replaces k's checkpoint file with b — the
// coordinator mirroring a worker's uploaded checkpoint into the slot
// the local resume path and re-dispatch seeding both read. Plain
// rename atomicity without the full durability discipline: a
// checkpoint lost to power failure only costs re-enumeration. The slot
// enters the eviction budget (pin it first when it must survive
// sweeps).
func (st *diskStore) writeCkpt(k cacheKey, b []byte) error {
	path := st.ckptPath(k)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("server: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: checkpoint write: %w", err)
	}
	ek := ckptEntryKey(k)
	st.mu.Lock()
	e := st.entries[ek]
	if e == nil {
		e = &diskEntry{}
		st.entries[ek] = e
	}
	st.total += int64(len(b)) - e.size
	e.size = int64(len(b))
	st.seq++
	e.lastUse = st.seq
	st.sweepLocked(ek)
	st.setGauge()
	st.mu.Unlock()
	return nil
}

// pinCkpt pins k's checkpoint mirror slot against eviction — the
// coordinator holds a pin for every shard slot of an in-flight sharded
// assignment. Balance with unpinCkpt.
func (st *diskStore) pinCkpt(k cacheKey) {
	ek := ckptEntryKey(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[ek]
	if e == nil {
		e = &diskEntry{}
		st.entries[ek] = e
	}
	e.pins++
}

// unpinCkpt releases one pinCkpt pin.
func (st *diskStore) unpinCkpt(k cacheKey) {
	ek := ckptEntryKey(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.entries[ek]; e != nil {
		e.pins--
		if e.pins <= 0 && e.size == 0 && e.readers <= 0 {
			delete(st.entries, ek)
		}
	}
}

// removeCkpt deletes k's checkpoint file and its budget accounting —
// the shard slots of a merged (or abandoned) sharded enumeration.
func (st *diskStore) removeCkpt(k cacheKey) {
	st.mu.Lock()
	st.dropCkptLocked(k)
	st.setGauge()
	st.mu.Unlock()
	os.Remove(st.ckptPath(k))
}

// dropCkptLocked removes k's checkpoint mirror from the accounting
// (not the file). Callers hold st.mu.
func (st *diskStore) dropCkptLocked(k cacheKey) {
	ek := ckptEntryKey(k)
	if e := st.entries[ek]; e != nil {
		st.total -= e.size
		e.size = 0
		if e.pins <= 0 && e.readers <= 0 {
			delete(st.entries, ek)
		}
	}
}

// keys lists the complete cache entries on disk.
func (st *diskStore) keys() ([]cacheKey, error) {
	des, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []cacheKey
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !hasSuffix(name, spaceSuffix) || hasSuffix(name, ckptSuffix) {
			continue
		}
		k := cacheKey(name[:len(name)-len(spaceSuffix)])
		if keyPattern.MatchString(string(k)) {
			out = append(out, k)
		}
	}
	return out, nil
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func cutSuffix(s, suffix string) (string, bool) {
	if !hasSuffix(s, suffix) {
		return s, false
	}
	return s[:len(s)-len(suffix)], true
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
