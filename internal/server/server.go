// Package server turns the exhaustive phase order enumeration into a
// service: an HTTP daemon that accepts enumeration requests (a mini-C
// source or a named MiBench corpus function plus search options), runs
// them through a bounded worker pool, and answers from a two-level
// content-addressed cache — an in-memory LRU of decoded spaces over a
// disk store of v2 space files keyed by the SHA-256 of the canonical
// function bytes and the normalized options.
//
// The cached files are exactly what cmd/explore -save writes, so a
// served space can be audited byte-for-byte with spacedot -hash.
// Identical concurrent requests coalesce onto one enumeration; a full
// queue sheds with 429 + Retry-After; shutdown checkpoints in-flight
// searches through the search engine's own machinery so their partial
// work resumes on the next request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/distcl"
	"repro/internal/faultinject"
	"repro/internal/mc"
	"repro/internal/mibench"
	"repro/internal/rtl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// Config configures a Server.
type Config struct {
	// Dir is the disk cache directory (required).
	Dir string
	// MemEntries bounds the in-memory LRU (default 64 decoded spaces).
	MemEntries int
	// Workers is the enumeration pool size (default 2).
	Workers int
	// QueueDepth bounds the pending-flight queue; a request that finds
	// it full is shed with 429 (default 16).
	QueueDepth int
	// DefaultDeadline bounds how long a request waits for its flight
	// when the client sets no deadline_ms (default 60s).
	DefaultDeadline time.Duration
	// SearchTimeout bounds each enumeration's wall time, independent of
	// request deadlines (0 = unlimited).
	SearchTimeout time.Duration
	// SearchWorkers caps one flight's search parallelism (0 = up to
	// GOMAXPROCS). Whatever the cap, flights draw their actual width
	// from a shared CPU-token budget of GOMAXPROCS tokens, so N
	// concurrent flights never run more than GOMAXPROCS search workers
	// in total; time spent waiting for a token is surfaced in
	// /v1/stats as server.cpu.wait_ns.
	SearchWorkers int
	// Registry receives the server and search instruments; when nil a
	// private registry is created so /v1/stats always has counters.
	Registry *telemetry.Registry
	// Tracer, when non-nil, records one span per request and the search
	// spans beneath it.
	Tracer *telemetry.Tracer
	// Faults injects deterministic failures into the enumerations for
	// robustness testing; nil injects nothing.
	Faults *faultinject.Plan
	// Logger receives the structured request and flight records (access
	// lines, slow-flight diagnostics, search progress). Nil logs
	// nothing.
	Logger *slog.Logger
	// SlowFlight, when positive, logs a per-phase latency breakdown for
	// any enumerate request slower than this threshold.
	SlowFlight time.Duration
	// FlightLogSize bounds the /v1/debug/flights ring buffer (default
	// 128 records).
	FlightLogSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's handler. Off by default: the profiles expose internals,
	// so the operator opts in per process.
	EnablePprof bool

	// DiskMaxBytes bounds the disk cache: when the complete space
	// entries exceed it, a put sweeps the least-recently-used entries
	// (never one with in-flight readers) until the total fits again
	// (0 = unbounded). Checkpoint slots count against the budget too;
	// the coordinator pins the slots of in-flight sharded assignments so
	// a sweep can never evict a recovery point the sweeper may
	// re-dispatch from.
	DiskMaxBytes int64

	// DistLeaseTTL is the distributed-assignment lease duration: a
	// worker that misses heartbeats for this long loses the assignment
	// to re-dispatch (default 10s). Workers are told to heartbeat at a
	// third of it.
	DistLeaseTTL time.Duration
	// DistPollWait bounds how long a worker's /v1/dist/poll blocks
	// waiting for work (default 5s).
	DistPollWait time.Duration
	// DistMaxAttempts bounds how many workers an assignment is tried
	// on before the flight falls back to local enumeration, resuming
	// from the last uploaded checkpoint (default 3).
	DistMaxAttempts int
	// ShardFanout, when >= 2, splits a single enumeration across the
	// fleet: the coordinator runs the space locally until the frontier
	// holds at least ShardFanout nodes, partitions that frontier into
	// ShardFanout disjoint shard assignments, dispatches them through
	// the lease protocol, and merges the completed sub-spaces back into
	// the byte-identical serial result. Flights fall back to the
	// whole-space dispatch (and from there to local enumeration)
	// whenever a shard aborts, the fleet thins out, or the merge fails
	// verification. 0 or 1 disables intra-space sharding.
	ShardFanout int

	// noObs builds the server without the observability middleware —
	// the pre-plane configuration the overhead benchmark compares
	// against. Internal: tests only.
	noObs bool
}

// Server is the enumeration service.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	logger  *slog.Logger
	mem     *memCache
	store   *diskStore
	pool    *pool
	cpu     *cpuBudget
	dist    *dispatcher
	stats   *spaceStats
	flights *flightLog
	mux     *http.ServeMux
	handler http.Handler

	// Access lines are encoded off the request's critical path: the
	// middleware appends the attributes to logBuf — without waking
	// anyone, so the append costs a mutex and a slice slot — and a
	// single consumer goroutine drains the buffer on a short ticker
	// (or on a logKick from flushLogs/Close). Batching keeps both the
	// line serialization and the consumer's scheduler wakeup out of
	// every response's flush window; the price is that lines reach the
	// sink up to accessLogFlushEvery late. A full buffer drops the
	// line and counts it (server.accesslog.dropped) rather than
	// backpressuring requests on a stuck log sink. logPending tracks
	// appended-but-unwritten lines so Close (and tests) can drain
	// deterministically.
	logBuf     []accessJob
	logPending sync.WaitGroup
	logMu      sync.Mutex
	logClosed  bool
	logKick    chan struct{} // nudges the consumer (flushLogs); never closed
	logQuit    chan struct{} // closed by Close; consumer drains and exits
	logDone    chan struct{}
	logDropped *telemetry.Counter

	// Labeled request instruments, maintained by the middleware.
	// series/gauges cache the resolved per-combination handles so the
	// request path skips the vec key construction (see seriesFor).
	httpReqs     *telemetry.CounterVec
	httpDur      *telemetry.HistogramVec
	httpInFlight *telemetry.GaugeVec
	seriesMu     sync.RWMutex
	series       map[[2]string]reqSeries
	gauges       map[string]*telemetry.Gauge
	// cacheTier counts enumerate resolutions by tier
	// (mem/disk/miss/coalesced/corrupt); flightDur feeds the
	// Retry-After estimate with the mean flight latency.
	cacheTier *telemetry.CounterVec
	flightDur *telemetry.Histogram

	corpusOnce sync.Once
	corpus     map[string]*rtl.Func // "bench/func" and bare "func" when unambiguous
	corpusErr  error

	// beforeEnumerate, when non-nil, runs at the head of every flight's
	// worker execution — a test seam for holding a flight open while
	// concurrent requests pile onto it.
	beforeEnumerate func(*flight)
}

// New creates a Server caching under cfg.Dir.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 60 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	store, err := newDiskStore(cfg.Dir, cfg.DiskMaxBytes, reg.Gauge("cache_disk_bytes"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		logger:  logger,
		mem:     newMemCache(cfg.MemEntries),
		store:   store,
		stats:   newSpaceStats(),
		flights: newFlightLog(cfg.FlightLogSize),

		httpReqs:     reg.CounterVec("http.requests", "endpoint", "status"),
		httpDur:      reg.HistogramVec("http.request.duration_ns", "endpoint", "status"),
		httpInFlight: reg.GaugeVec("http.in_flight", "endpoint"),
		series:       make(map[[2]string]reqSeries),
		gauges:       make(map[string]*telemetry.Gauge),
		cacheTier:    reg.CounterVec("server.cache.requests", "cache_tier"),
		flightDur:    reg.Histogram("server.flight.duration_ns"),
	}
	depth := reg.Gauge("server.queue.depth")
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.runFlight, depth.Set)
	s.cpu = newCPUBudget(0, reg)
	s.dist = newDispatcher(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/enumerate", s.handleEnumerate)
	s.mux.HandleFunc("GET /v1/space/{hash}", s.handleSpace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/debug/flights", s.handleFlights)
	s.mux.HandleFunc("POST "+distcl.PathRegister, s.handleDistRegister)
	s.mux.HandleFunc("POST "+distcl.PathPoll, s.handleDistPoll)
	s.mux.HandleFunc("POST "+distcl.PathHeartbeat, s.handleDistHeartbeat)
	s.mux.HandleFunc("POST "+distcl.PathComplete, s.handleDistComplete)
	s.mux.HandleFunc("POST "+distcl.PathDeregister, s.handleDistDeregister)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if cfg.noObs {
		s.handler = s.mux
	} else {
		s.handler = s.withObservability(s.mux)
		s.logBuf = make([]accessJob, 0, 64)
		s.logKick = make(chan struct{}, 1)
		s.logQuit = make(chan struct{})
		s.logDone = make(chan struct{})
		s.logDropped = reg.Counter("server.accesslog.dropped")
		go s.accessLogLoop()
	}
	return s, nil
}

// accessJob is one deferred access-log line: the request context (for
// the request/flight ID stamps) plus the prebuilt attributes. The
// attrs live in a fixed array so the middleware can build the job on
// its stack and hand it over by value — no per-line heap allocation.
type accessJob struct {
	ctx   context.Context
	n     int
	attrs [8]slog.Attr
}

const (
	// accessLogFlushEvery bounds how stale a buffered access line can
	// get before the consumer writes it out.
	accessLogFlushEvery = 25 * time.Millisecond
	// accessLogCap bounds the buffer; lines beyond it are dropped and
	// counted rather than growing without limit or blocking requests.
	accessLogCap = 256
)

func (s *Server) accessLogLoop() {
	defer close(s.logDone)
	tick := time.NewTicker(accessLogFlushEvery)
	defer tick.Stop()
	var batch []accessJob
	for {
		closing := false
		select {
		case <-tick.C:
		case <-s.logKick:
		case <-s.logQuit:
			closing = true
		}
		s.logMu.Lock()
		batch, s.logBuf = s.logBuf, batch[:0]
		s.logMu.Unlock()
		for i := range batch {
			job := &batch[i]
			s.logger.LogAttrs(job.ctx, slog.LevelInfo, "access", job.attrs[:job.n]...)
			job.ctx = nil // release the request context promptly
			s.logPending.Done()
		}
		if closing {
			return
		}
	}
}

// logAccess buffers an access line for the consumer goroutine, falling
// back to a synchronous write once the server is closing and dropping
// (counted) when the buffer is full. The job is copied by value into
// the buffer, so the caller may build it on its stack.
func (s *Server) logAccess(job *accessJob) {
	s.logMu.Lock()
	if s.logClosed || s.logKick == nil {
		s.logMu.Unlock()
		s.logger.LogAttrs(job.ctx, slog.LevelInfo, "access", job.attrs[:job.n]...)
		return
	}
	if len(s.logBuf) >= accessLogCap {
		s.logMu.Unlock()
		s.logDropped.Inc()
		return
	}
	s.logPending.Add(1)
	s.logBuf = append(s.logBuf, *job)
	s.logMu.Unlock()
}

// flushLogs kicks the consumer and blocks until every buffered access
// line has been written.
func (s *Server) flushLogs() {
	select {
	case s.logKick <- struct{}{}:
	default:
	}
	s.logPending.Wait()
}

// Handler returns the HTTP handler tree, wrapped in the observability
// middleware (request IDs, access log, labeled request metrics).
func (s *Server) Handler() http.Handler { return s.handler }

// Close drains the server: new requests are refused, in-flight
// enumerations are canceled and checkpoint themselves, and Close
// returns once every worker has retired.
func (s *Server) Close() {
	s.pool.close()
	s.dist.close()
	s.logMu.Lock()
	closed := s.logClosed
	s.logClosed = true
	s.logMu.Unlock()
	if !closed && s.logQuit != nil {
		// logClosed is already set, so nothing can be appended behind
		// the consumer's final drain.
		close(s.logQuit)
		<-s.logDone
	}
}

// enumerateRequest is the POST /v1/enumerate body. Exactly one of
// Source or Bench/Func selects the function: Source compiles mini-C
// text (Func picks the function when the source defines several),
// Bench/Func names a MiBench corpus function.
type enumerateRequest struct {
	Bench   string `json:"bench,omitempty"`
	Func    string `json:"func,omitempty"`
	Source  string `json:"source,omitempty"`
	Options struct {
		Cap        int  `json:"cap,omitempty"`
		MaxNodes   int  `json:"max_nodes,omitempty"`
		Check      bool `json:"check,omitempty"`
		Equiv      bool `json:"equiv,omitempty"`
		DeadlineMS int  `json:"deadline_ms,omitempty"`
	} `json:"options"`
}

// enumerateResponse is the POST /v1/enumerate summary. Key addresses
// GET /v1/space/{key}; SpaceHash is the canonical space hash spacedot
// -hash reports for the same function and options.
type enumerateResponse struct {
	Func            string `json:"func"`
	Key             string `json:"key"`
	SpaceHash       string `json:"space_hash"`
	Nodes           int    `json:"nodes"`
	Edges           int    `json:"edges"`
	Leaves          int    `json:"leaves"`
	AttemptedPhases int    `json:"attempted_phases"`
	// EquivRaw and EquivMerged summarize the equivalence tier of a
	// space enumerated with options.equiv: raw-distinct instances
	// discovered and how many of them folded into an existing class
	// (nodes = EquivRaw - EquivMerged). Both are absent on spaces
	// enumerated without the tier.
	EquivRaw    int `json:"equiv_raw,omitempty"`
	EquivMerged int `json:"equiv_merged,omitempty"`
	// Cache reports how the request was satisfied: "mem", "disk",
	// "miss" (this request ran the enumeration) or "coalesced" (it
	// joined another request's in-progress flight).
	Cache     string `json:"cache"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 omits the header
}

func (e *httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func writeError(w http.ResponseWriter, err error) {
	he := &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	errors.As(err, &he)
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", he.retryAfter))
	}
	writeJSON(w, he.status, map[string]string{"error": he.msg})
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Counter("server.requests").Inc()
	ri := infoFrom(r.Context())
	var span telemetry.Span
	if s.cfg.Tracer != nil {
		span = s.cfg.Tracer.Begin("http.enumerate", "server", 0)
	}
	resp, fl, err := s.enumerate(r)
	if span.Active() {
		args := map[string]any{}
		if err != nil {
			args["error"] = err.Error()
		} else {
			args["cache"] = resp.Cache
			args["key"] = resp.Key
		}
		span.End(args)
	}
	if err != nil {
		writeError(w, err)
		he := &httpError{status: http.StatusInternalServerError, msg: err.Error()}
		errors.As(err, &he)
		s.recordFlight(r, ri, fl, he.status, he.msg, 0, time.Since(start))
		return
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	serStart := time.Now()
	writeJSON(w, http.StatusOK, resp)
	s.recordFlight(r, ri, fl, http.StatusOK, "", time.Since(serStart), time.Since(start))
}

func (s *Server) enumerate(r *http.Request) (*enumerateResponse, *flight, error) {
	ri := infoFrom(r.Context())
	reqID := ""
	if ri != nil {
		reqID = ri.id
	}
	var req enumerateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		return nil, nil, &httpError{status: http.StatusBadRequest, msg: "decoding request: " + err.Error()}
	}
	fn, err := s.resolve(&req)
	if err != nil {
		return nil, nil, err
	}
	no := normOptions{Cap: req.Options.Cap, MaxNodes: req.Options.MaxNodes, Check: req.Options.Check, Equiv: req.Options.Equiv}
	key := requestKey(fn, no)

	// First level: the LRU of decoded spaces answers without touching
	// the pool at all.
	if ent, ok := s.mem.get(key); ok {
		s.reg.Counter("server.cache.hit_mem").Inc()
		s.cacheTier.With("mem").Inc()
		if ri != nil {
			ri.cache = "mem"
		}
		return response(key, ent, "mem"), nil, nil
	}

	fl, coalesced, err := s.pool.join(key, fn, no, reqID)
	switch {
	case errors.Is(err, errQueueFull):
		s.reg.Counter("server.shed").Inc()
		return nil, nil, &httpError{status: http.StatusTooManyRequests, msg: err.Error(),
			retryAfter: s.retryAfterEstimate()}
	case errors.Is(err, errDraining):
		return nil, nil, &httpError{status: http.StatusServiceUnavailable, msg: err.Error(), retryAfter: 5}
	case err != nil:
		return nil, nil, err
	}
	if coalesced {
		s.reg.Counter("server.coalesced").Inc()
		s.cacheTier.With("coalesced").Inc()
	}
	if ri != nil {
		ri.flightID = fl.id
		ri.leaderReq = fl.leaderReq
		ri.coalesced = coalesced
	}
	defer s.pool.leave(fl)

	deadline := s.cfg.DefaultDeadline
	if req.Options.DeadlineMS > 0 {
		deadline = time.Duration(req.Options.DeadlineMS) * time.Millisecond
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-fl.done:
	case <-timer.C:
		return nil, fl, &httpError{status: http.StatusGatewayTimeout,
			msg: fmt.Sprintf("enumeration still running after %v; retry to resume from its checkpoint", deadline), retryAfter: 1}
	case <-r.Context().Done():
		return nil, fl, &httpError{status: 499, msg: "client went away"}
	}
	how := fl.cacheHow
	if coalesced {
		how = "coalesced"
	}
	if ri != nil {
		ri.cache = how
		ri.queueWait = fl.startedAt.Sub(fl.enqueuedAt)
		ri.enumerate = fl.finishedAt.Sub(fl.startedAt)
	}
	if fl.err != nil {
		status := fl.status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		he := &httpError{status: status, msg: fl.err.Error()}
		if status == http.StatusServiceUnavailable {
			he.retryAfter = 1
		}
		return nil, fl, he
	}
	return response(key, fl.ent, how), fl, nil
}

// retryAfterEstimate converts the current backlog into the Retry-After
// a shed client receives: the queued flights plus the one just refused,
// spread across the workers, each costing the mean observed flight
// latency.
func (s *Server) retryAfterEstimate() int {
	return retryAfterSeconds(s.pool.queued(), s.flightDur.Mean(), s.pool.workers)
}

// retryAfterSeconds is the pure backoff arithmetic: ceil((queued+1) ×
// meanFlightNS / workers), clamped to [1, 60] seconds so an empty
// history still backs off a little and a deep backlog cannot demand an
// hour.
func retryAfterSeconds(queued int, meanFlightNS float64, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	est := float64(queued+1) * meanFlightNS / float64(workers) / float64(time.Second)
	sec := int(math.Ceil(est))
	if sec < 1 {
		return 1
	}
	if sec > 60 {
		return 60
	}
	return sec
}

func response(key cacheKey, ent entry, how string) *enumerateResponse {
	leaves := 0
	for _, n := range ent.res.Nodes {
		if n.IsLeaf() {
			leaves++
		}
	}
	resp := &enumerateResponse{
		Func:            ent.res.FuncName,
		Key:             string(key),
		SpaceHash:       ent.hash,
		Nodes:           len(ent.res.Nodes),
		Edges:           ent.res.Stats.Edges,
		Leaves:          leaves,
		AttemptedPhases: ent.res.AttemptedPhases,
		Cache:           how,
	}
	if eq := ent.res.Equiv; eq != nil {
		resp.EquivRaw = eq.Raw
		resp.EquivMerged = eq.Merged
	}
	return resp
}

// resolve turns the request into the function to enumerate.
func (s *Server) resolve(req *enumerateRequest) (*rtl.Func, error) {
	if req.Source != "" {
		if req.Bench != "" {
			return nil, &httpError{status: http.StatusBadRequest, msg: "source and bench are mutually exclusive"}
		}
		prog, err := mc.Compile(req.Source)
		if err != nil {
			return nil, &httpError{status: http.StatusBadRequest, msg: "compiling source: " + err.Error()}
		}
		if req.Func != "" {
			if f := prog.Func(req.Func); f != nil {
				return f, nil
			}
			return nil, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("source does not define %q", req.Func)}
		}
		if len(prog.Funcs) != 1 {
			return nil, &httpError{status: http.StatusBadRequest,
				msg: fmt.Sprintf("source defines %d functions; name one with \"func\"", len(prog.Funcs))}
		}
		return prog.Funcs[0], nil
	}
	if req.Func == "" {
		return nil, &httpError{status: http.StatusBadRequest, msg: "request needs source or bench/func"}
	}
	s.corpusOnce.Do(s.compileCorpus)
	if s.corpusErr != nil {
		return nil, &httpError{status: http.StatusInternalServerError, msg: s.corpusErr.Error()}
	}
	name := req.Func
	if req.Bench != "" {
		name = req.Bench + "/" + req.Func
	}
	fn, ok := s.corpus[name]
	if !ok {
		return nil, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("no corpus function %q", name)}
	}
	if fn == nil {
		return nil, &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("%q names functions in several benchmarks; qualify it with \"bench\"", name)}
	}
	return fn, nil
}

// compileCorpus builds the MiBench name index once, lazily: the first
// corpus request pays the compile, source-only servers never do.
func (s *Server) compileCorpus() {
	funcs, err := mibench.AllFunctions()
	if err != nil {
		s.corpusErr = fmt.Errorf("server: compiling corpus: %w", err)
		return
	}
	s.corpus = make(map[string]*rtl.Func, 2*len(funcs))
	for _, tf := range funcs {
		s.corpus[tf.Bench+"/"+tf.Func.Name] = tf.Func
		if _, dup := s.corpus[tf.Func.Name]; dup {
			s.corpus[tf.Func.Name] = nil // ambiguous bare name
		} else {
			s.corpus[tf.Func.Name] = tf.Func
		}
	}
}

// runFlight resolves one flight on a pool worker. The cache levels are
// re-checked here — a flight created moments after an identical one
// resolved must find its result, not enumerate again — so a key is
// enumerated exactly once no matter how requests interleave.
func (s *Server) runFlight(fl *flight) {
	defer s.pool.finish(fl)
	defer s.flightDur.ObserveSince(fl.startedAt)
	if s.beforeEnumerate != nil {
		s.beforeEnumerate(fl)
	}
	if ent, ok := s.mem.get(fl.key); ok {
		s.reg.Counter("server.cache.hit_mem").Inc()
		s.cacheTier.With("mem").Inc()
		fl.ent, fl.cacheHow = ent, "mem"
		return
	}
	if res, err := s.store.load(fl.key); err == nil {
		s.reg.Counter("server.cache.hit_disk").Inc()
		s.cacheTier.With("disk").Inc()
		if fl.err = s.admit(fl.key, res, &fl.ent); fl.err != nil {
			return
		}
		fl.cacheHow = "disk"
		return
	} else if !os.IsNotExist(err) {
		// A damaged entry is a miss, not an outage: drop it and let the
		// enumeration below rebuild the slot.
		s.reg.Counter("server.cache.corrupt").Inc()
		s.cacheTier.With("corrupt").Inc()
		s.store.remove(fl.key)
	}
	s.reg.Counter("server.cache.miss").Inc()
	s.cacheTier.With("miss").Inc()
	fl.cacheHow = "miss"
	if fl.ctx.Err() != nil {
		fl.err = fmt.Errorf("canceled before enumeration: %w", context.Cause(fl.ctx))
		fl.status = http.StatusServiceUnavailable
		return
	}
	res, err := s.resolveFlight(fl)
	if err != nil {
		fl.err = err
		return
	}
	if fl.err = s.admit(fl.key, res, &fl.ent); fl.err != nil {
		return
	}
	if err := s.store.put(fl.key, res); err != nil {
		// Served from memory anyway; the disk slot heals on a future
		// enumeration.
		s.reg.Counter("server.cache.write_errors").Inc()
	}
}

// resolveFlight produces fl's space: sharded across the fleet when
// intra-space sharding is on and viable, offered whole to the fleet
// when one is registered, locally otherwise. Each fallback composes
// with recovery — a sharded attempt leaves its warmup checkpoint in
// the key's disk slot and a dispatch that exhausted its attempts has
// already mirrored the fleet's last checkpoint there, so the local
// path resumes rather than restarts either way.
func (s *Server) resolveFlight(fl *flight) (*search.Result, error) {
	if res, handled := s.dist.shardEnumerate(fl); handled {
		return s.finishFlight(fl, res)
	}
	if res, handled := s.dist.enumerate(fl); handled {
		return s.finishFlight(fl, res)
	}
	return s.enumerateFlight(fl)
}

// enumerateFlight runs (or resumes) the search for fl. Equivalence-tier
// enumerations never checkpoint or resume — the class tables are not
// persisted (search.Run refuses the combination) — so a drained equiv
// flight simply starts over on the next request.
func (s *Server) enumerateFlight(fl *flight) (*search.Result, error) {
	// Draw this flight's search parallelism from the shared CPU-token
	// budget instead of letting every flight default to NumCPU: the
	// sum across concurrent flights never exceeds GOMAXPROCS. A grant
	// of zero means the flight was canceled while waiting; it proceeds
	// single-width and the abort surfaces through the search itself.
	workers, _ := s.cpu.acquire(fl.ctx, s.cfg.SearchWorkers)
	defer s.cpu.release(workers)
	if workers <= 0 {
		workers = 1
	}
	opts := search.Options{
		MaxSeqPerLevel: fl.no.Cap,
		MaxNodes:       fl.no.MaxNodes,
		Check:          fl.no.Check,
		Equiv:          fl.no.Equiv,
		Timeout:        s.cfg.SearchTimeout,
		Workers:        workers,
		Ctx:            fl.ctx,
		Logger:         s.logger,
		Metrics:        s.reg,
		Tracer:         s.cfg.Tracer,
		Faults:         s.cfg.Faults,
	}
	if fl.no.Equiv {
		s.reg.Counter("server.enumerations").Inc()
		res := search.Run(fl.fn, opts)
		return s.finishFlight(fl, res)
	}
	opts.CheckpointPath = s.store.ckptPath(fl.key)
	var res *search.Result
	prev, err := search.LoadFile(opts.CheckpointPath)
	switch {
	case err == nil && prev.Checkpoint != nil:
		// An earlier drained or abandoned request left its partial
		// enumeration behind; continue it instead of starting over.
		s.reg.Counter("server.enumerations").Inc()
		s.reg.Counter("server.enumerations.resumed").Inc()
		res, err = search.Resume(prev, opts)
		if err != nil {
			return nil, fmt.Errorf("resuming checkpoint: %w", err)
		}
	case err == nil && !prev.Aborted:
		// The checkpoint completed but was never promoted to the cache
		// (crash between rename and promotion); it is the space.
		res = prev
	default:
		s.reg.Counter("server.enumerations").Inc()
		res = search.Run(fl.fn, opts)
	}
	return s.finishFlight(fl, res)
}

// finishFlight maps an aborted enumeration to its HTTP failure.
func (s *Server) finishFlight(fl *flight, res *search.Result) (*search.Result, error) {
	if res.Aborted {
		reason := res.AbortReason
		if strings.HasPrefix(reason, "canceled") {
			fl.status = http.StatusServiceUnavailable
			if fl.no.Equiv {
				return nil, fmt.Errorf("enumeration canceled (%v); equiv spaces are not checkpointed — retry restarts it", context.Cause(fl.ctx))
			}
			return nil, fmt.Errorf("enumeration canceled (%v); partial space checkpointed for resume", context.Cause(fl.ctx))
		}
		fl.status = http.StatusUnprocessableEntity
		return nil, fmt.Errorf("enumeration aborted: %s", reason)
	}
	return res, nil
}

// admit caches a complete space in the LRU and folds it into the
// interaction statistics.
func (s *Server) admit(key cacheKey, res *search.Result, out *entry) error {
	hash, err := res.CanonicalHash()
	if err != nil {
		return fmt.Errorf("hashing space: %w", err)
	}
	*out = entry{res: res, hash: hash}
	s.mem.add(key, *out)
	s.stats.accumulate(key, res)
	return nil
}

func (s *Server) handleSpace(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !keyPattern.MatchString(hash) {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "malformed space key"})
		return
	}
	f, release, err := s.store.open(cacheKey(hash))
	if err != nil {
		writeError(w, &httpError{status: http.StatusNotFound, msg: "no cached space for that key"})
		return
	}
	defer release()
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", hash[:12]+spaceSuffix))
	io.Copy(w, f) //nolint:errcheck // client gone
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok", "draining": false}
	if fs := s.dist.fleet(); fs != nil {
		// Degraded-but-serving is visible here: a probe sees dead
		// workers and recovering assignments while the endpoint stays
		// 200, because the coordinator still answers (fleet or local).
		body["fleet"] = fs
	}
	if s.pool.isDraining() {
		// 503 flips load-balancer checks the moment SIGTERM drain
		// begins; the body says why so a human probing the endpoint is
		// not left guessing.
		w.Header().Set("Retry-After", "5")
		body["status"], body["draining"] = "draining", true
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
