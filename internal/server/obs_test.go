package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// syncBuf is a goroutine-safe log sink: the access log and the search
// engine's flight logs write from different goroutines.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.String()
}

// records parses every JSON log line currently in the buffer.
func (b *syncBuf) records(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestRequestIDAssignedAndPropagated checks both halves of the
// X-Request-ID contract: a valid client-supplied ID is echoed
// verbatim, anything else is replaced with a fresh server-minted one.
func TestRequestIDAssignedAndPropagated(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-id_42.x")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id_42.x" {
		t.Fatalf("valid client ID not echoed: got %q", got)
	}

	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "bad id with spaces!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-ID")
	if minted == "" || strings.Contains(minted, " ") {
		t.Fatalf("invalid client ID not replaced: got %q", minted)
	}
	if len(minted) != 16 || !validRequestID(minted) {
		t.Fatalf("minted ID %q is not 16 hex chars", minted)
	}
}

// TestAccessLogCarriesRequestID checks the acceptance criterion that
// the access-log line carries the same request_id the client got back
// in X-Request-ID, plus the route/status/cache/latency fields.
func TestAccessLogCarriesRequestID(t *testing.T) {
	var buf syncBuf
	s, ts := newTestServer(t, Config{Logger: telemetry.NewLogger(&buf, "json", slog.LevelDebug)})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/enumerate", strings.NewReader(srcBody(clampSrc)))
	req.Header.Set("X-Request-ID", "probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "probe-1" {
		t.Fatalf("echoed ID %q", got)
	}

	s.flushLogs() // access lines are written off the request path

	var access map[string]any
	for _, rec := range buf.records(t) {
		if rec["msg"] == "access" && rec["route"] == "/v1/enumerate" {
			access = rec
		}
	}
	if access == nil {
		t.Fatalf("no access record for /v1/enumerate in:\n%s", buf.String())
	}
	if access["request_id"] != "probe-1" {
		t.Fatalf("access log request_id = %v, want probe-1: %v", access["request_id"], access)
	}
	if access["method"] != "POST" || access["status"] != float64(200) || access["cache"] != "miss" {
		t.Fatalf("access record fields wrong: %v", access)
	}
	for _, k := range []string{"bytes", "duration_ms", "flight_id", "queue_wait_ms"} {
		if _, ok := access[k]; !ok {
			t.Fatalf("access record missing %q: %v", k, access)
		}
	}
}

// TestMetricsEndpointServesOpenMetrics runs a cold and a warm request,
// then checks /metrics parses as OpenMetrics and covers the families
// the acceptance criteria name: endpoint latency histograms, cache
// tier counters, queue depth and in-flight gauges.
func TestMetricsEndpointServesOpenMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, doc, _ := post(t, ts, srcBody(clampSrc)); status != 200 || doc["cache"] != "miss" {
		t.Fatalf("cold request: %d %v", status, doc)
	}
	if status, doc, _ := post(t, ts, srcBody(clampSrc)); status != 200 || doc["cache"] != "mem" {
		t.Fatalf("warm request: %d %v", status, doc)
	}

	status, body, hdr := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != telemetry.OpenMetricsContentType {
		t.Fatalf("Content-Type %q", ct)
	}
	if err := telemetry.ValidateOpenMetrics(body); err != nil {
		t.Fatalf("/metrics is not valid OpenMetrics: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		`http_request_duration_ns_bucket{endpoint="/v1/enumerate",status="200",le="+Inf"}`,
		`http_requests_total{endpoint="/v1/enumerate",status="200"} 2`,
		`server_cache_requests_total{cache_tier="miss"} 1`,
		`server_cache_requests_total{cache_tier="mem"} 1`,
		"server_queue_depth",
		`http_in_flight{endpoint="/metrics"}`,
		"server_flight_duration_ns_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestFlightRecorderLinksFollowerToLeader coalesces a second request
// onto a held flight and checks /v1/debug/flights replays both with
// their timing splits and the follower→leader request linkage.
func TestFlightRecorderLinksFollowerToLeader(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	s.beforeEnumerate = func(*flight) { close(entered); <-release }

	send := func(id string, out chan<- int) {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/enumerate", strings.NewReader(srcBody(clampSrc)))
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			out <- 0
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		out <- resp.StatusCode
	}
	statuses := make(chan int, 2)
	go send("leader-req", statuses)
	<-entered // the leader's flight is on the worker
	go send("follower-req", statuses)
	waitFor(t, "follower coalesced", func() bool { return counter(s, "server.coalesced") == 1 })
	unblock()
	for i := 0; i < 2; i++ {
		if st := <-statuses; st != http.StatusOK {
			t.Fatalf("request status %d", st)
		}
	}

	status, body, _ := get(t, ts.URL+"/v1/debug/flights")
	if status != http.StatusOK {
		t.Fatalf("/v1/debug/flights status %d", status)
	}
	var doc struct {
		Capacity int            `json:"capacity"`
		Count    int            `json:"count"`
		Flights  []flightRecord `json:"flights"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Capacity != 128 || doc.Count != 2 {
		t.Fatalf("recorder capacity/count = %d/%d, want 128/2: %s", doc.Capacity, doc.Count, body)
	}
	var leader, follower *flightRecord
	for i := range doc.Flights {
		switch doc.Flights[i].RequestID {
		case "leader-req":
			leader = &doc.Flights[i]
		case "follower-req":
			follower = &doc.Flights[i]
		}
	}
	if leader == nil || follower == nil {
		t.Fatalf("recorder missing a request: %s", body)
	}
	if !follower.Coalesced || follower.LeaderRequestID != "leader-req" {
		t.Fatalf("follower not linked to leader: %+v", follower)
	}
	if follower.Cache != "coalesced" || follower.FlightID != leader.FlightID {
		t.Fatalf("follower cache/flight = %q/%q, leader flight %q", follower.Cache, follower.FlightID, leader.FlightID)
	}
	if leader.Coalesced || leader.LeaderRequestID != "leader-req" || leader.Cache != "miss" {
		t.Fatalf("leader record wrong: %+v", leader)
	}
	if leader.Func != "clamp" || leader.Status != 200 {
		t.Fatalf("leader func/status: %+v", leader)
	}
	if leader.EnumerateMS <= 0 || leader.TotalMS < leader.EnumerateMS {
		t.Fatalf("leader timing split implausible: %+v", leader)
	}
}

// TestHealthzReportsDrain covers the drain satellite: /healthz is 200
// {"draining":false} while serving and flips to 503 {"draining":true}
// the moment drain begins.
func TestHealthzReportsDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, body, _ := get(t, ts.URL+"/healthz")
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || doc["draining"] != false {
		t.Fatalf("healthy: %d %s", status, body)
	}

	s.Close() // drain: idle pool, returns immediately

	status, body, hdr := get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503: %s", status, body)
	}
	if doc["draining"] != true {
		t.Fatalf(`draining body = %s, want {"draining":true,...}`, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining healthz without Retry-After")
	}
}

// TestRetryAfterSeconds pins the backoff arithmetic.
func TestRetryAfterSeconds(t *testing.T) {
	sec := func(d time.Duration) float64 { return float64(d) }
	cases := []struct {
		queued  int
		mean    float64
		workers int
		want    int
	}{
		{0, 0, 2, 1},                           // no history: minimal backoff
		{0, sec(500 * time.Millisecond), 1, 1}, // sub-second rounds up to 1
		{1, sec(3 * time.Second), 1, 6},        // (1+1)×3s/1
		{3, sec(2 * time.Second), 2, 4},        // (3+1)×2s/2
		{50, sec(10 * time.Second), 1, 60},     // clamped to a minute
		{1, sec(time.Second), 0, 2},            // workers default to 1
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.mean, c.workers); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %.0f, %d) = %d, want %d",
				c.queued, c.mean, c.workers, got, c.want)
		}
	}
}

// TestShedRetryAfterTracksQueueDepth fills the one-deep queue behind a
// held worker and checks the shed response's Retry-After reflects the
// observed flight latency instead of the old constant 1.
func TestShedRetryAfterTracksQueueDepth(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	entered := make(chan struct{})
	var enteredOnce sync.Once
	s.beforeEnumerate = func(*flight) {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}

	// Seed the flight-latency history: mean 4s. With one queued flight
	// and one worker the estimate is (1+1)×4s/1 = 8s.
	s.flightDur.Observe(int64(4 * time.Second))

	// asyncPost avoids t.Fatal off the test goroutine.
	asyncPost := func(body string, done chan<- struct{}) {
		resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
		if done != nil {
			close(done)
		}
	}
	done := make(chan struct{})
	go asyncPost(srcBody(clampSrc), done) // occupies the single worker
	<-entered
	go asyncPost(srcBody(absSrc), nil) // fills the queue
	waitFor(t, "queue to fill", func() bool { return s.pool.queued() == 1 })

	status, doc, hdr := post(t, ts, srcBody(negSrc))
	if status != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %v", status, doc)
	}
	if got := hdr.Get("Retry-After"); got != "8" {
		t.Fatalf("Retry-After = %q, want 8 (queue 1 × mean 4s ÷ 1 worker, +1 for the refused request)", got)
	}
	unblock()
	<-done
}

// TestSlowFlightLogBreakdown drops the slow-flight threshold to zero
// so the cold enumeration qualifies, and checks the diagnostic carries
// the per-phase breakdown from the search's own statistics.
func TestSlowFlightLogBreakdown(t *testing.T) {
	var buf syncBuf
	_, ts := newTestServer(t, Config{
		Logger:     telemetry.NewLogger(&buf, "json", slog.LevelDebug),
		SlowFlight: time.Nanosecond,
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/enumerate", strings.NewReader(srcBody(clampSrc)))
	req.Header.Set("X-Request-ID", "slow-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	var slow map[string]any
	for _, rec := range buf.records(t) {
		if rec["msg"] == "slow flight" {
			slow = rec
		}
	}
	if slow == nil {
		t.Fatalf("no slow-flight record in:\n%s", buf.String())
	}
	if slow["request_id"] != "slow-probe" {
		t.Fatalf("slow-flight record request_id = %v", slow["request_id"])
	}
	if slow["func"] != "clamp" || slow["cache"] != "miss" {
		t.Fatalf("slow-flight identity fields: %v", slow)
	}
	for _, k := range []string{"flight_id", "queue_wait_ms", "enumerate_ms", "serialize_ms",
		"total_ms", "attempts", "active", "dormant", "merged", "levels"} {
		if _, ok := slow[k]; !ok {
			t.Fatalf("slow-flight record missing %q: %v", k, slow)
		}
	}
	if slow["attempts"] == float64(0) {
		t.Fatalf("slow-flight attempts = 0; Result.Stats not surfaced: %v", slow)
	}
}

// TestPprofGatedByConfig: the profile handlers exist only when the
// operator opted in.
func TestPprofGatedByConfig(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if status, _, _ := get(t, off.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof: %d", status)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	if status, _, _ := get(t, on.URL+"/debug/pprof/"); status != http.StatusOK {
		t.Fatalf("pprof index with EnablePprof: %d", status)
	}
}

// TestFlightLogRing checks the ring buffer really is fixed-size and
// newest-first.
func TestFlightLogRing(t *testing.T) {
	l := newFlightLog(3)
	if got := l.snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d records", len(got))
	}
	for i := 1; i <= 5; i++ {
		l.add(flightRecord{RequestID: fmt.Sprintf("r%d", i)})
	}
	got := l.snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(got))
	}
	for i, want := range []string{"r5", "r4", "r3"} {
		if got[i].RequestID != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first)", i, got[i].RequestID, want)
		}
	}
	var nilLog *flightLog
	nilLog.add(flightRecord{})
	if nilLog.snapshot() != nil {
		t.Fatal("nil flightLog must be inert")
	}
}

// planeConfig is the full observability plane as spaced -log json
// runs it: JSON access log, flight recorder, slow-flight threshold.
func planeConfig() Config {
	return Config{
		Logger:     telemetry.NewLogger(io.Discard, "json", slog.LevelInfo),
		SlowFlight: 30 * time.Second,
	}
}

// BenchmarkWarmCacheRequest measures the full observability plane's
// overhead on the cheapest request the server answers — a warm
// mem-cache hit over real HTTP with a keep-alive client — against the
// pre-plane handler. The acceptance bar is <5% on this pair.
func BenchmarkWarmCacheRequest(b *testing.B) {
	bench := func(b *testing.B, cfg Config) {
		cfg.Dir = b.TempDir()
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		client := ts.Client()
		body := srcBody(clampSrc)
		do := func() int {
			resp, err := client.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			return resp.StatusCode
		}
		if status := do(); status != http.StatusOK {
			b.Fatalf("warming request: %d", status)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if status := do(); status != http.StatusOK {
				b.Fatalf("status %d", status)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { bench(b, Config{noObs: true}) })
	b.Run("plane", func(b *testing.B) { bench(b, planeConfig()) })
}

// BenchmarkWarmCacheOverhead is the paired version of the comparison:
// both servers are up at once and every iteration sends one request to
// each, so the two variants see identical machine conditions and the
// overhead estimate is immune to run-to-run drift that plagues
// sequential A/B runs on shared hardware. The benchmark's own ns/op is
// the sum of both requests and is meaningless; read the ns/bare,
// ns/plane and pct-overhead metrics.
func BenchmarkWarmCacheOverhead(b *testing.B) {
	mk := func(cfg Config) (*httptest.Server, func()) {
		cfg.Dir = b.TempDir()
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		client := ts.Client()
		body := srcBody(clampSrc)
		do := func() {
			resp, err := client.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		return ts, do
	}
	_, doBare := mk(Config{noObs: true})
	_, doPlane := mk(planeConfig())
	doBare()
	doPlane()
	var bareNS, planeNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate which variant goes first so neither systematically
		// pays or pockets whatever the preceding request warmed up.
		t0 := time.Now()
		if i%2 == 0 {
			doBare()
			t1 := time.Now()
			doPlane()
			bareNS += int64(t1.Sub(t0))
			planeNS += int64(time.Since(t1))
		} else {
			doPlane()
			t1 := time.Now()
			doBare()
			planeNS += int64(t1.Sub(t0))
			bareNS += int64(time.Since(t1))
		}
	}
	b.StopTimer()
	bare := float64(bareNS) / float64(b.N)
	plane := float64(planeNS) / float64(b.N)
	b.ReportMetric(bare, "ns/bare")
	b.ReportMetric(plane, "ns/plane")
	b.ReportMetric(100*(plane-bare)/bare, "pct-overhead")
}

// BenchmarkWarmCacheHandler is the same comparison without the HTTP
// stack: handler invoked directly, isolating the plane's own cost per
// request (ID mint, context values, labeled metrics, access log,
// recorder append).
func BenchmarkWarmCacheHandler(b *testing.B) {
	bench := func(b *testing.B, cfg Config) {
		cfg.Dir = b.TempDir()
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		h := s.Handler()
		body := srcBody(clampSrc)
		do := func() int {
			req := httptest.NewRequest("POST", "/v1/enumerate", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return rec.Code
		}
		if code := do(); code != http.StatusOK {
			b.Fatalf("warming request: %d", code)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if code := do(); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { bench(b, Config{noObs: true}) })
	b.Run("plane", func(b *testing.B) { bench(b, planeConfig()) })
}
