package server

import (
	"net/http"
	"sync"

	"repro/internal/analysis"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// spaceStats folds every space the server has produced or loaded into
// the paper's phase-interaction statistics (Tables 4-6), each cache key
// counted once however many times it is served.
type spaceStats struct {
	mu   sync.Mutex
	seen map[cacheKey]bool
	x    *analysis.Interactions

	// Corpus-wide equivalence-tier totals over the spaces that were
	// enumerated with options.equiv (zero when none were).
	equivSpaces int
	equivRaw    int
	equivMerged int
}

func newSpaceStats() *spaceStats {
	return &spaceStats{seen: make(map[cacheKey]bool), x: analysis.NewInteractions()}
}

func (ss *spaceStats) accumulate(k cacheKey, r *search.Result) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.seen[k] {
		return
	}
	ss.seen[k] = true
	// A cyclic equivalence-collapsed space cannot be folded into the
	// Tables 4-6 weighting; its collapse totals still count.
	ss.x.Accumulate(r)
	if r.Equiv != nil {
		ss.equivSpaces++
		ss.equivRaw += r.Equiv.Raw
		ss.equivMerged += r.Equiv.Merged
	}
}

// statsResponse is the GET /v1/stats body: the telemetry snapshot
// (server.* and search.* instruments) plus the interaction
// probabilities over every space this cache holds.
type statsResponse struct {
	telemetry.Snapshot
	Spaces int      `json:"spaces"`
	Phases []string `json:"phases"`
	// Equiv summarizes the equivalence tier across every cached space
	// enumerated with options.equiv: raw instances discovered, how many
	// folded into an existing class, and the corpus-wide collapse
	// ratio folded/raw. Absent when no cached space used the tier.
	Equiv *equivSummary `json:"equiv,omitempty"`
	// Fleet reports the distributed-enumeration plane: registered
	// workers by state and assignments in flight. Absent when no
	// worker has ever registered.
	Fleet  *fleetSummary `json:"fleet,omitempty"`
	Tables struct {
		Enabling           [][]float64 `json:"enabling"`
		Disabling          [][]float64 `json:"disabling"`
		Independence       [][]float64 `json:"independence"`
		StartProbabilities []float64   `json:"start_probabilities"`
	} `json:"tables"`
}

// equivSummary is the GET /v1/stats "equiv" object.
type equivSummary struct {
	Spaces        int     `json:"spaces"`
	Raw           int     `json:"raw"`
	Merged        int     `json:"merged"`
	CollapseRatio float64 `json:"collapse_ratio"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Fold in cache entries this process never served (left by an
	// earlier run of the daemon over the same directory): the tables
	// describe the whole cache, not one process lifetime.
	if keys, err := s.store.keys(); err == nil {
		for _, k := range keys {
			s.stats.mu.Lock()
			seen := s.stats.seen[k]
			s.stats.mu.Unlock()
			if seen {
				continue
			}
			if res, err := s.store.load(k); err == nil {
				s.stats.accumulate(k, res)
			}
		}
	}

	var resp statsResponse
	resp.Snapshot = s.reg.Snapshot()
	resp.Fleet = s.dist.fleet()
	s.stats.mu.Lock()
	resp.Spaces = len(s.stats.seen)
	if s.stats.equivSpaces > 0 {
		eq := &equivSummary{Spaces: s.stats.equivSpaces, Raw: s.stats.equivRaw, Merged: s.stats.equivMerged}
		if eq.Raw > 0 {
			eq.CollapseRatio = float64(eq.Merged) / float64(eq.Raw)
		}
		resp.Equiv = eq
	}
	resp.Tables.Enabling = s.stats.x.Enabling()
	resp.Tables.Disabling = s.stats.x.Disabling()
	resp.Tables.Independence = s.stats.x.Independence()
	resp.Tables.StartProbabilities = s.stats.x.StartProbabilities()
	s.stats.mu.Unlock()
	for _, p := range analysis.PhaseIDs {
		resp.Phases = append(resp.Phases, string(p))
	}
	writeJSON(w, http.StatusOK, resp)
}
