package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distcl"
	"repro/internal/faultinject"
	"repro/internal/search"
)

// gatedTransport simulates a network partition: once killed, every new
// round trip fails at the transport layer — the coordinator hears
// nothing, exactly like a SIGKILLed or partitioned worker.
type gatedTransport struct{ dead atomic.Bool }

func (g *gatedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if g.dead.Load() {
		return nil, errors.New("injected partition")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// startWorker runs an in-process fleet worker against ts and arranges
// its clean shutdown at test end (before the coordinator's).
func startWorker(t *testing.T, ts *httptest.Server, id string, transport http.RoundTripper, faults *faultinject.Plan) {
	t.Helper()
	hc := &http.Client{}
	if transport != nil {
		hc.Transport = transport
	}
	wk, err := distcl.NewWorker(distcl.WorkerConfig{
		Client: distcl.NewClient(distcl.Config{
			BaseURL:     ts.URL,
			Timeout:     5 * time.Second,
			MaxAttempts: 2,
			BackoffBase: 5 * time.Millisecond,
			BackoffCap:  50 * time.Millisecond,
			HTTPClient:  hc,
		}),
		ID:            id,
		ScratchDir:    t.TempDir(),
		SearchWorkers: 2,
		DrainTimeout:  5 * time.Second,
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- wk.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Errorf("worker %s did not drain", id)
		}
	})
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
}

func fleetLive(s *Server) int {
	fs := s.dist.fleet()
	if fs == nil {
		return 0
	}
	return fs.WorkersLive
}

// TestDistributedEnumerationMatchesLocal: with a worker joined, a cache
// miss is dispatched to the fleet, and the space the coordinator serves
// is byte-identical (canonical hash) to a single-node enumeration. The
// per-worker observability trail must exist end to end.
func TestDistributedEnumerationMatchesLocal(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 2 * time.Second, DistPollWait: 200 * time.Millisecond,
	})
	startWorker(t, ts, "w1", nil, nil)
	waitFor(t, "worker to register", func() bool { return fleetLive(s) == 1 })

	status, doc, _ := post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("dispatched request: status %d: %v", status, doc)
	}
	if doc["cache"] != "miss" {
		t.Fatalf("cache = %v, want miss", doc["cache"])
	}
	want, err := search.Run(mustCompile(t, clampSrc, "clamp"), search.Options{}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if doc["space_hash"] != want {
		t.Fatalf("distributed hash %v != single-node hash %s", doc["space_hash"], want)
	}

	// The enumeration ran on the worker, not the local pool.
	if got := counter(s, "server.enumerations"); got != 0 {
		t.Fatalf("local enumerations = %d, want 0 (the fleet should have run it)", got)
	}
	if got := s.dist.assignVec.With("w1").Value(); got != 1 {
		t.Fatalf(`dist.assignments{worker="w1"} = %d, want 1`, got)
	}
	if got := s.dist.completeVec.With("w1").Value(); got != 1 {
		t.Fatalf(`dist.completions{worker="w1"} = %d, want 1`, got)
	}

	// The repeat is a plain cache hit; the fleet is not consulted again.
	status, doc, _ = post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK || doc["cache"] != "mem" {
		t.Fatalf("repeat: status %d cache %v, want 200 mem", status, doc["cache"])
	}
	if got := s.dist.assignVec.With("w1").Value(); got != 1 {
		t.Fatalf("repeat re-dispatched: assignments = %d", got)
	}

	// The flight recorder saw the dispatch and the completion.
	var dispatched, completed bool
	for _, rec := range s.flights.snapshot() {
		switch rec.Event {
		case "dispatch":
			dispatched = dispatched || rec.Worker == "w1"
		case "complete":
			completed = completed || rec.Worker == "w1"
		}
	}
	if !dispatched || !completed {
		t.Fatalf("flight recorder missing dispatch/complete events (dispatch=%v complete=%v)", dispatched, completed)
	}
}

// TestLeaseExpiryRecoversOnSecondWorker is the crash-recovery path in
// miniature: worker w1 takes the assignment, uploads a progress
// checkpoint, then partitions away without a goodbye. Its lease expires,
// the assignment is re-dispatched to w2 seeded with w1's checkpoint,
// and the final space still hashes identically to a clean local run.
func TestLeaseExpiryRecoversOnSecondWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 600 * time.Millisecond, DistPollWait: 100 * time.Millisecond,
	})
	gate := &gatedTransport{}
	// w1's searches stall 60ms per application of phase c: slow enough
	// to heartbeat checkpoints mid-enumeration and to still be running
	// when the partition hits.
	startWorker(t, ts, "w1", gate, faultinject.MustParse("hang=c:60ms"))
	waitFor(t, "w1 to register", func() bool { return fleetLive(s) == 1 })

	type reply struct {
		status int
		doc    map[string]any
	}
	replies := make(chan reply, 1)
	go func() {
		st, doc, _ := post(t, ts, srcBody(sumSrc))
		replies <- reply{st, doc}
	}()

	// Wait until w1 holds the lease and has uploaded at least one
	// validated checkpoint, then cut the network.
	waitFor(t, "a checkpoint upload from w1", func() bool {
		s.dist.mu.Lock()
		defer s.dist.mu.Unlock()
		for _, a := range s.dist.assignments {
			if a.worker == "w1" && a.ckptNodes > 0 {
				return true
			}
		}
		return false
	})
	gate.dead.Store(true)
	startWorker(t, ts, "w2", nil, nil)

	r := <-replies
	if r.status != http.StatusOK {
		t.Fatalf("recovered request: status %d: %v", r.status, r.doc)
	}
	want, err := search.Run(mustCompile(t, sumSrc, "sum"), search.Options{}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if r.doc["space_hash"] != want {
		t.Fatalf("recovered hash %v != clean single-node hash %s", r.doc["space_hash"], want)
	}
	if got := s.dist.expiryVec.With("w1").Value(); got < 1 {
		t.Fatalf(`dist.lease_expiries{worker="w1"} = %d, want >= 1`, got)
	}
	if got := s.dist.recoverVec.With("w2").Value(); got < 1 {
		t.Fatalf(`dist.recoveries{worker="w2"} = %d, want >= 1 (re-dispatch was not checkpoint-seeded)`, got)
	}
	if got := s.dist.completeVec.With("w2").Value(); got != 1 {
		t.Fatalf(`dist.completions{worker="w2"} = %d, want 1`, got)
	}
}

// TestWorkerAbortPropagates: a cap abort on the worker comes back to
// the requesting client as the same 422 a local abort produces.
func TestWorkerAbortPropagates(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 2 * time.Second, DistPollWait: 100 * time.Millisecond,
	})
	startWorker(t, ts, "w1", nil, nil)
	waitFor(t, "worker to register", func() bool { return fleetLive(s) == 1 })

	status, doc, _ := post(t, ts, `{"source":`+jsonStr(sumSrc)+`,"options":{"max_nodes":3}}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("capped request: status %d (%v), want 422", status, doc)
	}
	if got := s.dist.assignVec.With("w1").Value(); got != 1 {
		t.Fatalf("abort was not produced by the fleet: assignments = %d", got)
	}
}

// TestFleetStatsAndHealth: /v1/stats and /healthz report the fleet.
func TestFleetStatsAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 2 * time.Second, DistPollWait: 100 * time.Millisecond,
	})

	// Before any worker registers, the fleet section is absent.
	var stats struct {
		Fleet *fleetSummary `json:"fleet"`
	}
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Fleet != nil {
		t.Fatalf("fleet reported with no workers ever: %+v", stats.Fleet)
	}

	startWorker(t, ts, "w1", nil, nil)
	waitFor(t, "worker to register", func() bool { return fleetLive(s) == 1 })
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Fleet == nil || stats.Fleet.WorkersLive != 1 {
		t.Fatalf("stats fleet = %+v, want 1 live worker", stats.Fleet)
	}
	if len(stats.Fleet.Workers) != 1 || stats.Fleet.Workers[0].ID != "w1" {
		t.Fatalf("stats fleet workers = %+v, want [w1]", stats.Fleet.Workers)
	}

	var health struct {
		Status string        `json:"status"`
		Fleet  *fleetSummary `json:"fleet"`
	}
	getJSON(t, ts, "/healthz", &health)
	if health.Status != "ok" || health.Fleet == nil || health.Fleet.WorkersLive != 1 {
		t.Fatalf("healthz = %+v, want ok with 1 live worker", health)
	}
}
