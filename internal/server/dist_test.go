package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distcl"
	"repro/internal/faultinject"
	"repro/internal/search"
)

// gatedTransport simulates a network partition: once killed, every new
// round trip fails at the transport layer — the coordinator hears
// nothing, exactly like a SIGKILLed or partitioned worker.
type gatedTransport struct{ dead atomic.Bool }

func (g *gatedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if g.dead.Load() {
		return nil, errors.New("injected partition")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// startWorker runs an in-process fleet worker against ts and arranges
// its clean shutdown at test end (before the coordinator's).
func startWorker(t *testing.T, ts *httptest.Server, id string, transport http.RoundTripper, faults *faultinject.Plan) {
	t.Helper()
	hc := &http.Client{}
	if transport != nil {
		hc.Transport = transport
	}
	wk, err := distcl.NewWorker(distcl.WorkerConfig{
		Client: distcl.NewClient(distcl.Config{
			BaseURL:     ts.URL,
			Timeout:     5 * time.Second,
			MaxAttempts: 2,
			BackoffBase: 5 * time.Millisecond,
			BackoffCap:  50 * time.Millisecond,
			HTTPClient:  hc,
		}),
		ID:            id,
		ScratchDir:    t.TempDir(),
		SearchWorkers: 2,
		DrainTimeout:  5 * time.Second,
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- wk.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Errorf("worker %s did not drain", id)
		}
	})
}

func mustB64(t *testing.T, s string) []byte {
	t.Helper()
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
}

func fleetLive(s *Server) int {
	fs := s.dist.fleet()
	if fs == nil {
		return 0
	}
	return fs.WorkersLive
}

// TestDistributedEnumerationMatchesLocal: with a worker joined, a cache
// miss is dispatched to the fleet, and the space the coordinator serves
// is byte-identical (canonical hash) to a single-node enumeration. The
// per-worker observability trail must exist end to end.
func TestDistributedEnumerationMatchesLocal(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 2 * time.Second, DistPollWait: 200 * time.Millisecond,
	})
	startWorker(t, ts, "w1", nil, nil)
	waitFor(t, "worker to register", func() bool { return fleetLive(s) == 1 })

	status, doc, _ := post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("dispatched request: status %d: %v", status, doc)
	}
	if doc["cache"] != "miss" {
		t.Fatalf("cache = %v, want miss", doc["cache"])
	}
	want, err := search.Run(mustCompile(t, clampSrc, "clamp"), search.Options{}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if doc["space_hash"] != want {
		t.Fatalf("distributed hash %v != single-node hash %s", doc["space_hash"], want)
	}

	// The enumeration ran on the worker, not the local pool.
	if got := counter(s, "server.enumerations"); got != 0 {
		t.Fatalf("local enumerations = %d, want 0 (the fleet should have run it)", got)
	}
	if got := s.dist.assignVec.With("w1").Value(); got != 1 {
		t.Fatalf(`dist.assignments{worker="w1"} = %d, want 1`, got)
	}
	if got := s.dist.completeVec.With("w1").Value(); got != 1 {
		t.Fatalf(`dist.completions{worker="w1"} = %d, want 1`, got)
	}

	// The repeat is a plain cache hit; the fleet is not consulted again.
	status, doc, _ = post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK || doc["cache"] != "mem" {
		t.Fatalf("repeat: status %d cache %v, want 200 mem", status, doc["cache"])
	}
	if got := s.dist.assignVec.With("w1").Value(); got != 1 {
		t.Fatalf("repeat re-dispatched: assignments = %d", got)
	}

	// The flight recorder saw the dispatch and the completion.
	var dispatched, completed bool
	for _, rec := range s.flights.snapshot() {
		switch rec.Event {
		case "dispatch":
			dispatched = dispatched || rec.Worker == "w1"
		case "complete":
			completed = completed || rec.Worker == "w1"
		}
	}
	if !dispatched || !completed {
		t.Fatalf("flight recorder missing dispatch/complete events (dispatch=%v complete=%v)", dispatched, completed)
	}
}

// TestLeaseExpiryRecoversOnSecondWorker is the crash-recovery path in
// miniature: worker w1 takes the assignment, uploads a progress
// checkpoint, then partitions away without a goodbye. Its lease expires,
// the assignment is re-dispatched to w2 seeded with w1's checkpoint,
// and the final space still hashes identically to a clean local run.
func TestLeaseExpiryRecoversOnSecondWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 600 * time.Millisecond, DistPollWait: 100 * time.Millisecond,
	})
	gate := &gatedTransport{}
	// w1's searches stall 60ms per application of phase c: slow enough
	// to heartbeat checkpoints mid-enumeration and to still be running
	// when the partition hits.
	startWorker(t, ts, "w1", gate, faultinject.MustParse("hang=c:60ms"))
	waitFor(t, "w1 to register", func() bool { return fleetLive(s) == 1 })

	type reply struct {
		status int
		doc    map[string]any
	}
	replies := make(chan reply, 1)
	go func() {
		st, doc, _ := post(t, ts, srcBody(sumSrc))
		replies <- reply{st, doc}
	}()

	// Wait until w1 holds the lease and has uploaded at least one
	// validated checkpoint, then cut the network.
	waitFor(t, "a checkpoint upload from w1", func() bool {
		s.dist.mu.Lock()
		defer s.dist.mu.Unlock()
		for _, a := range s.dist.assignments {
			if a.worker == "w1" && a.ckptNodes > 0 {
				return true
			}
		}
		return false
	})
	gate.dead.Store(true)
	startWorker(t, ts, "w2", nil, nil)

	r := <-replies
	if r.status != http.StatusOK {
		t.Fatalf("recovered request: status %d: %v", r.status, r.doc)
	}
	want, err := search.Run(mustCompile(t, sumSrc, "sum"), search.Options{}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if r.doc["space_hash"] != want {
		t.Fatalf("recovered hash %v != clean single-node hash %s", r.doc["space_hash"], want)
	}
	if got := s.dist.expiryVec.With("w1").Value(); got < 1 {
		t.Fatalf(`dist.lease_expiries{worker="w1"} = %d, want >= 1`, got)
	}
	if got := s.dist.recoverVec.With("w2").Value(); got < 1 {
		t.Fatalf(`dist.recoveries{worker="w2"} = %d, want >= 1 (re-dispatch was not checkpoint-seeded)`, got)
	}
	if got := s.dist.completeVec.With("w2").Value(); got != 1 {
		t.Fatalf(`dist.completions{worker="w2"} = %d, want 1`, got)
	}
}

// TestStaleLeaseUploadFenced is the expired-lease upload race, played
// out by hand so every step is deterministic: a worker holds a lease,
// uploads a checkpoint, loses the lease to the sweeper, wins the SAME
// assignment back under a new generation — and then its original
// upload, which had been crawling through an httpslow link the whole
// time, finally arrives carrying the old generation. The coordinator
// must fence the straggler completely: no watermark regression, no
// lease renewal, and no abandon echo (an abandon-by-ID would kill the
// worker's current run of the very assignment it just re-won).
func TestStaleLeaseUploadFenced(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 10 * time.Second, DistPollWait: 200 * time.Millisecond,
	})
	d := s.dist
	ctx := context.Background()
	cl := distcl.NewClient(distcl.Config{BaseURL: ts.URL, Timeout: 5 * time.Second})
	// The straggler heartbeat travels the slow link that makes this race
	// reachable in the wild.
	slow := distcl.NewClient(distcl.Config{BaseURL: ts.URL, Timeout: 5 * time.Second,
		Faults: faultinject.MustParse("httpslow=1:150ms")})

	var reg distcl.RegisterResponse
	if _, err := cl.Call(ctx, distcl.PathRegister, distcl.RegisterRequest{WorkerID: "w1"}, &reg); err != nil {
		t.Fatal(err)
	}

	type reply struct {
		status int
		doc    map[string]any
	}
	replies := make(chan reply, 1)
	go func() {
		st, doc, _ := post(t, ts, srcBody(sumSrc))
		replies <- reply{st, doc}
	}()

	var asn distcl.Assignment
	waitFor(t, "the flight's assignment", func() bool {
		st, err := cl.Call(ctx, distcl.PathPoll, distcl.PollRequest{WorkerID: "w1"}, &asn)
		return err == nil && st == http.StatusOK
	})
	if asn.LeaseGen != 1 {
		t.Fatalf("first dispatch lease_gen = %d, want 1", asn.LeaseGen)
	}

	// Two genuine partial enumerations of the assigned function — the
	// second one level deeper — so the deeper pause is the watermark the
	// shallow straggler must not undo.
	enc := func(r *search.Result) string {
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return base64.StdEncoding.EncodeToString(buf.Bytes())
	}
	fn := mustCompile(t, sumSrc, "sum")
	small := search.Run(fn, search.Options{StopAtFrontier: 2})
	if small.Checkpoint == nil {
		t.Fatal("shallow enumeration did not pause")
	}
	prev, err := search.Load(bytes.NewReader(mustB64(t, enc(small))))
	if err != nil {
		t.Fatal(err)
	}
	big, err := search.Resume(prev, search.Options{StopAtFrontier: 2})
	if err != nil {
		t.Fatal(err)
	}
	if big.Checkpoint == nil || len(big.Nodes) <= len(small.Nodes) {
		t.Fatalf("deeper pause did not grow (small %d nodes, big %d)", len(small.Nodes), len(big.Nodes))
	}
	hb := func(c *distcl.Client, gen int64, ckpt string) distcl.HeartbeatResponse {
		var resp distcl.HeartbeatResponse
		if _, err := c.Call(ctx, distcl.PathHeartbeat, distcl.HeartbeatRequest{
			WorkerID: "w1",
			Assignments: []distcl.HeartbeatAssignment{
				{AssignmentID: asn.AssignmentID, CheckpointB64: ckpt, LeaseGen: gen},
			},
		}, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	lookup := func() (int, time.Time) {
		d.mu.Lock()
		defer d.mu.Unlock()
		a := d.assignments[asn.AssignmentID]
		if a == nil {
			t.Fatal("assignment vanished")
		}
		return a.ckptNodes, a.leaseUntil
	}

	hb(cl, 1, enc(big))
	waitFor(t, "the gen-1 upload to be accepted", func() bool {
		nodes, _ := lookup()
		return nodes == len(big.Nodes)
	})

	// The sweeper fires after the TTL: the lease expires and the work is
	// re-queued.
	d.sweep(time.Now().Add(15 * time.Second))
	if got := d.expiryVec.With("w1").Value(); got != 1 {
		t.Fatalf(`dist.lease_expiries{worker="w1"} = %d, want 1`, got)
	}

	// The same worker wins the assignment back under generation 2,
	// seeded with its own last good checkpoint.
	var asn2 distcl.Assignment
	waitFor(t, "the re-dispatch", func() bool {
		st, err := cl.Call(ctx, distcl.PathPoll, distcl.PollRequest{WorkerID: "w1"}, &asn2)
		return err == nil && st == http.StatusOK
	})
	if asn2.AssignmentID != asn.AssignmentID || asn2.LeaseGen != 2 {
		t.Fatalf("re-dispatch = %s gen %d, want %s gen 2", asn2.AssignmentID, asn2.LeaseGen, asn.AssignmentID)
	}
	if asn2.CheckpointB64 == "" {
		t.Fatal("re-dispatch was not seeded with the accepted checkpoint")
	}
	_, leaseBefore := lookup()

	// The straggler lands: generation 1, smaller checkpoint.
	resp := hb(slow, 1, enc(small))
	if len(resp.Abandon) != 0 {
		t.Fatalf("stale entry echoed abandon %v — that would kill the new lease on this worker", resp.Abandon)
	}
	nodes, leaseAfter := lookup()
	if nodes != len(big.Nodes) {
		t.Fatalf("watermark regressed to %d nodes by a stale upload, want %d", nodes, len(big.Nodes))
	}
	if !leaseAfter.Equal(leaseBefore) {
		t.Fatal("stale heartbeat entry renewed the lease")
	}
	if got := d.staleVec.With("w1").Value(); got < 1 {
		t.Fatalf(`dist.stale_uploads{worker="w1"} = %d, want >= 1`, got)
	}

	// The current generation still reports normally.
	hb(cl, 2, enc(big))
	waitFor(t, "the gen-2 heartbeat to renew the lease", func() bool {
		_, lu := lookup()
		return lu.After(leaseBefore)
	})

	// And the gen-2 holder finishes the space; the client sees the
	// single-node hash.
	full := search.Run(fn, search.Options{})
	hash, err := full.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	var cresp distcl.CompleteResponse
	if _, err := cl.Call(ctx, distcl.PathComplete, distcl.CompleteRequest{
		WorkerID: "w1", AssignmentID: asn.AssignmentID, Key: asn.Key,
		SpaceHash: hash, SpaceB64: enc(full),
	}, &cresp); err != nil {
		t.Fatal(err)
	}
	if cresp.Status != "accepted" {
		t.Fatalf("completion status %q, want accepted", cresp.Status)
	}
	r := <-replies
	if r.status != http.StatusOK || r.doc["space_hash"] != hash {
		t.Fatalf("flight answered %d %v, want 200 with hash %s", r.status, r.doc["space_hash"], hash)
	}
}

// TestWorkerAbortPropagates: a cap abort on the worker comes back to
// the requesting client as the same 422 a local abort produces.
func TestWorkerAbortPropagates(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 2 * time.Second, DistPollWait: 100 * time.Millisecond,
	})
	startWorker(t, ts, "w1", nil, nil)
	waitFor(t, "worker to register", func() bool { return fleetLive(s) == 1 })

	status, doc, _ := post(t, ts, `{"source":`+jsonStr(sumSrc)+`,"options":{"max_nodes":3}}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("capped request: status %d (%v), want 422", status, doc)
	}
	if got := s.dist.assignVec.With("w1").Value(); got != 1 {
		t.Fatalf("abort was not produced by the fleet: assignments = %d", got)
	}
}

// TestFleetStatsAndHealth: /v1/stats and /healthz report the fleet.
func TestFleetStatsAndHealth(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DistLeaseTTL: 2 * time.Second, DistPollWait: 100 * time.Millisecond,
	})

	// Before any worker registers, the fleet section is absent.
	var stats struct {
		Fleet *fleetSummary `json:"fleet"`
	}
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Fleet != nil {
		t.Fatalf("fleet reported with no workers ever: %+v", stats.Fleet)
	}

	startWorker(t, ts, "w1", nil, nil)
	waitFor(t, "worker to register", func() bool { return fleetLive(s) == 1 })
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Fleet == nil || stats.Fleet.WorkersLive != 1 {
		t.Fatalf("stats fleet = %+v, want 1 live worker", stats.Fleet)
	}
	if len(stats.Fleet.Workers) != 1 || stats.Fleet.Workers[0].ID != "w1" {
		t.Fatalf("stats fleet workers = %+v, want [w1]", stats.Fleet.Workers)
	}

	var health struct {
		Status string        `json:"status"`
		Fleet  *fleetSummary `json:"fleet"`
	}
	getJSON(t, ts, "/healthz", &health)
	if health.Status != "ok" || health.Fleet == nil || health.Fleet.WorkersLive != 1 {
		t.Fatalf("healthz = %+v, want ok with 1 live worker", health)
	}
}
