package server

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// cpuBudget is the shared CPU-token pool the enumeration flights draw
// their search parallelism from. Before PR 9 every flight ran its
// search with Workers = NumCPU while the pool ran several flights
// concurrently, so N flights × M workers oversubscribed GOMAXPROCS by
// N×; now a flight acquires tokens before enumerating and the total
// in use never exceeds the budget.
//
// Acquisition is elastic rather than all-or-nothing: a flight asks for
// its preferred width and is granted whatever share (≥ 1 token) is
// free, blocking only when the pool is fully drawn down. That keeps a
// lone flight at full width, degrades gracefully to width-sharing
// under concurrency, and cannot deadlock the flight pool — every
// release wakes the waiters, and a canceled flight stops waiting and
// runs single-width (Workers = 1 costs no token: the flight's own
// pool goroutine is the one doing the work).
type cpuBudget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int
	inUse int

	// waiting counts flights blocked in acquire; surfaced through the
	// gauge so /v1/stats shows queue pressure on the CPU pool itself,
	// not just on the flight queue.
	waiting int

	gInUse   *telemetry.Gauge
	gWaiting *telemetry.Gauge
	hWait    *telemetry.Histogram
}

// newCPUBudget sizes the pool. total ≤ 0 defaults to GOMAXPROCS — the
// actual parallelism ceiling of the process, which is what
// oversubscription is measured against.
func newCPUBudget(total int, reg *telemetry.Registry) *cpuBudget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	b := &cpuBudget{
		total:    total,
		gInUse:   reg.Gauge("server.cpu.inuse"),
		gWaiting: reg.Gauge("server.cpu.waiting"),
		hWait:    reg.Histogram("server.cpu.wait_ns"),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// acquire blocks until at least one token is free (or ctx is done) and
// takes min(want, free) tokens. It returns the grant and how long the
// caller waited; a zero grant means ctx canceled the wait and the
// caller should proceed single-width without a later release.
func (b *cpuBudget) acquire(ctx context.Context, want int) (got int, waited time.Duration) {
	if want <= 0 || want > b.total {
		want = b.total
	}
	start := time.Now()
	// Wake every waiter when the context dies so a canceled flight
	// does not sleep on the cond forever; AfterFunc costs nothing when
	// the context is never canceled.
	var stop func() bool
	if ctx != nil {
		stop = context.AfterFunc(ctx, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
		defer stop()
	}
	b.mu.Lock()
	for b.inUse >= b.total {
		if ctx != nil && ctx.Err() != nil {
			b.mu.Unlock()
			return 0, time.Since(start)
		}
		b.waiting++
		b.gWaiting.Set(int64(b.waiting))
		b.cond.Wait()
		b.waiting--
		b.gWaiting.Set(int64(b.waiting))
	}
	got = b.total - b.inUse
	if got > want {
		got = want
	}
	b.inUse += got
	b.gInUse.Set(int64(b.inUse))
	b.mu.Unlock()
	waited = time.Since(start)
	b.hWait.Observe(int64(waited))
	return got, waited
}

// release returns a grant to the pool.
func (b *cpuBudget) release(got int) {
	if got <= 0 {
		return
	}
	b.mu.Lock()
	b.inUse -= got
	if b.inUse < 0 {
		panic("server: cpuBudget released more than acquired")
	}
	b.gInUse.Set(int64(b.inUse))
	b.mu.Unlock()
	b.cond.Broadcast()
}
