package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// reqInfo is the per-request annotation channel between the handlers
// and the middleware: the handler fills in how the request was
// resolved (cache tier, flight linkage, phase timings) and the
// middleware folds it into the access log line and the flight
// recorder after the handler returns. One goroutine owns a request,
// so the fields need no lock.
type reqInfo struct {
	id string // the request ID echoed in X-Request-ID

	cache     string // "mem", "disk", "miss", "coalesced" — empty off the enumerate path
	flightID  string // the flight that resolved it, when one ran
	leaderReq string // request ID that created the flight (differs when coalesced)
	coalesced bool

	queueWait time.Duration // flight creation → worker pickup
	enumerate time.Duration // worker pickup → flight resolution
	serialize time.Duration // response encoding
}

type reqInfoKey struct{}

// infoFrom returns the request's annotation record, or nil when the
// middleware is not installed (the bare pre-plane handler path).
func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// routeLabel maps a request path onto the bounded endpoint label set
// used by the metric families. Anything unrecognized collapses into
// "other" so client-controlled paths can never mint new series.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/enumerate":
		return "/v1/enumerate"
	case strings.HasPrefix(p, "/v1/space/"):
		return "/v1/space/{hash}"
	case p == "/v1/stats":
		return "/v1/stats"
	case p == "/v1/debug/flights":
		return "/v1/debug/flights"
	case strings.HasPrefix(p, "/v1/dist/"):
		return "/v1/dist"
	case p == "/healthz":
		return "/healthz"
	case p == "/metrics":
		return "/metrics"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// validRequestID accepts client-supplied X-Request-ID values that are
// safe to echo into logs and label-free record fields: short and from
// a conservative charset.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Request IDs are a random per-process prefix plus a counter: unique
// across restarts without paying an entropy read on every request.
var (
	ridPrefix  = func() (b [4]byte) { rand.Read(b[:]); return }() //nolint:errcheck // zero prefix degrades to counter-only IDs
	ridCounter atomic.Uint32
)

// newRequestID mints a 16-hex-character request ID.
func newRequestID() string {
	var b [8]byte
	copy(b[:4], ridPrefix[:])
	binary.BigEndian.PutUint32(b[4:], ridCounter.Add(1))
	var dst [16]byte
	hex.Encode(dst[:], b[:])
	return string(dst[:])
}

// statusWriter captures the status code and body size the handler
// produced, for the access log and the labeled request metrics. It
// embeds the request's reqInfo so the middleware pays one allocation
// for both.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	info   reqInfo
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// withObservability is the middleware chain: assign or propagate
// X-Request-ID, stamp the request context with the ID and the server
// logger, count in-flight requests per endpoint, record one labeled
// latency/status observation, and emit one structured access-log line
// per request.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if !validRequestID(rid) {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)

		sw := &statusWriter{ResponseWriter: w}
		ri := &sw.info
		ri.id = rid
		ctx := context.WithValue(r.Context(), reqInfoKey{}, ri)
		ctx = telemetry.WithRequestScope(ctx, s.logger, rid)
		r = r.WithContext(ctx)

		endpoint := routeLabel(r)
		inFlight := s.gaugeFor(endpoint)
		inFlight.Add(1)
		defer inFlight.Add(-1)

		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		total := time.Since(start)
		rs := s.seriesFor(endpoint, httpStatusLabel(sw.status))
		rs.reqs.Inc()
		rs.dur.Observe(int64(total))

		// The attrs build into a stack array; logAccess copies the job
		// by value into its buffer, so the hot path allocates nothing
		// for the log line itself.
		job := accessJob{ctx: ctx}
		job.attrs[0] = slog.String("method", r.Method)
		job.attrs[1] = slog.String("route", endpoint)
		job.attrs[2] = slog.Int("status", sw.status)
		job.attrs[3] = slog.Int64("bytes", sw.bytes)
		job.attrs[4] = slog.Int64("duration_ms", total.Milliseconds())
		job.n = 5
		if ri.cache != "" {
			job.attrs[job.n] = slog.String("cache", ri.cache)
			job.n++
		}
		if ri.flightID != "" {
			job.attrs[job.n] = slog.String("flight_id", ri.flightID)
			job.n++
			job.attrs[job.n] = slog.Int64("queue_wait_ms", ri.queueWait.Milliseconds())
			job.n++
		}
		s.logAccess(&job)
	})
}

// reqSeries is a cached pair of per-request metric handles for one
// endpoint×status combination. Both label values come from bounded
// mapping functions, so the cache (like the underlying vecs) stays
// bounded; caching the handles keeps the joined-key construction and
// the variadic With allocations off the request path.
type reqSeries struct {
	reqs *telemetry.Counter
	dur  *telemetry.Histogram
}

func (s *Server) seriesFor(endpoint, status string) reqSeries {
	key := [2]string{endpoint, status}
	s.seriesMu.RLock()
	rs, ok := s.series[key]
	s.seriesMu.RUnlock()
	if ok {
		return rs
	}
	rs = reqSeries{
		reqs: s.httpReqs.With(endpoint, status),
		dur:  s.httpDur.With(endpoint, status),
	}
	s.seriesMu.Lock()
	s.series[key] = rs
	s.seriesMu.Unlock()
	return rs
}

func (s *Server) gaugeFor(endpoint string) *telemetry.Gauge {
	s.seriesMu.RLock()
	g, ok := s.gauges[endpoint]
	s.seriesMu.RUnlock()
	if ok {
		return g
	}
	g = s.httpInFlight.With(endpoint)
	s.seriesMu.Lock()
	s.gauges[endpoint] = g
	s.seriesMu.Unlock()
	return g
}

// httpStatusLabel renders a status code as a metric label value.
func httpStatusLabel(status int) string {
	switch status {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 422:
		return "422"
	case 429:
		return "429"
	case 499:
		return "499"
	case 503:
		return "503"
	case 504:
		return "504"
	}
	// The handlers only produce the statuses above; anything else is
	// bucketed by class so the label set stays bounded.
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 300 && status < 400:
		return "3xx"
	case status >= 400 && status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// handleMetrics serves the registry snapshot in the OpenMetrics text
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.OpenMetricsContentType)
	telemetry.WriteOpenMetrics(w, s.reg.Snapshot()) //nolint:errcheck // client gone
}
