package server

import (
	"context"
	"fmt"

	"repro/internal/distcl"
	"repro/internal/search"
)

// Intra-space sharding splits ONE enumeration across the fleet. The
// coordinator runs the space locally only until the frontier holds at
// least ShardFanout nodes (the warmup), partitions that frontier into
// disjoint sub-assignments — each a self-contained checkpoint document
// a worker resumes like any other — and dispatches them through the
// ordinary lease protocol: per-shard watermarks, per-shard recovery
// checkpoints, and re-dispatch of only the shard whose holder died.
// When every shard completes, the sub-spaces are replayed through the
// dedup index in canonical shard order, reproducing byte-for-byte the
// space a single node would have enumerated (search.MergeShards). Any
// wobble — a thinned-out fleet, an aborted shard, a failed merge —
// falls back to the whole-space dispatch path, which itself falls back
// to local enumeration, so sharding can only add capacity, never
// subtract correctness.

// shardSlot is the disk store checkpoint key for shard i of a flight
// key. Each shard assignment uses it as its assignment key, so the
// generic checkpoint mirroring in acceptCheckpoint lands each shard's
// recovery point in its own slot.
func shardSlot(key cacheKey, i int) cacheKey {
	return cacheKey(fmt.Sprintf("%s.shard%d", key, i))
}

// shardEnumerate offers fl to the fleet as ShardFanout frontier
// partitions. handled=false means the caller should fall through to
// the whole-space dispatch (and from there to local): sharding is
// disabled, the fleet is too small, a shard aborted or exhausted its
// attempts, or the merge failed verification. The warmup's paused
// checkpoint sits in the flight key's disk slot, so whatever path runs
// next resumes past the warmup instead of restarting.
func (d *dispatcher) shardEnumerate(fl *flight) (*search.Result, bool) {
	k := d.s.cfg.ShardFanout
	if k < 2 {
		return nil, false
	}
	d.mu.Lock()
	live := 0
	for _, w := range d.workers {
		if w.state == "live" {
			live++
		}
	}
	d.mu.Unlock()
	if live < 2 {
		// One worker gains nothing over the whole-space dispatch and
		// loses pipelining; let the plain path have it.
		return nil, false
	}

	warmup := d.shardWarmup(fl, k)
	if warmup == nil || warmup.Aborted {
		return nil, false
	}
	if warmup.Checkpoint == nil {
		// The space completed before the frontier ever grew to k nodes
		// (shallow spaces, tight caps): nothing to distribute.
		d.shardWarmupDone.Inc()
		return d.shardFinish(fl, warmup)
	}

	docs, ids, err := search.PartitionCheckpoint(warmup, k)
	if err != nil {
		d.s.logger.Warn("dist shard partition failed", "flight_id", fl.id, "err", err.Error())
		d.shardFallbacks.Inc()
		return nil, false
	}

	// Shards always enumerate the default tier: sub-space merge needs
	// raw nodes, and the equivalence tier is derived from the merged
	// space afterwards (shardFinish).
	wopts := distcl.SearchOptions{Cap: fl.no.Cap, MaxNodes: fl.no.MaxNodes, Check: fl.no.Check}
	slots := make([]cacheKey, len(docs))
	for i := range docs {
		slots[i] = shardSlot(fl.key, i)
	}

	d.mu.Lock()
	if !d.anyLiveLocked() {
		d.mu.Unlock()
		d.shardFallbacks.Inc()
		return nil, false
	}
	as := make([]*assignment, len(docs))
	for i := range docs {
		a := d.newAssignment(fl, slots[i], wopts, i, docs[i])
		d.assignments[a.id] = a
		as[i] = a
	}
	d.mu.Unlock()

	// Pin every shard slot for the life of the flight — the LRU sweep
	// must not evict a recovery point the sweeper may need within the
	// next lease TTL — and prime it with the shard's starting document,
	// overwriting whatever an earlier life of this key left behind (a
	// previous attempt partitions at a different boundary, so a stale
	// slot would seed a worker with the wrong sub-space).
	for i, slot := range slots {
		d.s.store.pinCkpt(slot)
		if err := d.s.store.writeCkpt(slot, docs[i]); err != nil {
			d.s.logger.Warn("dist shard slot not primed", "flight_id", fl.id,
				"shard", i, "err", err.Error())
		}
	}

	queued := 0
	for _, a := range as {
		select {
		case d.pending <- a:
			queued++
		default:
		}
	}
	if queued < len(as) {
		// Dispatch queue saturated; withdraw the whole split (queued
		// entries turn stale and polls skip them).
		for _, a := range as {
			d.cancelAssignment(a)
		}
		d.shardReleaseSlots(slots)
		d.shardFallbacks.Inc()
		return nil, false
	}

	d.shardSplits.Inc()
	d.shardAssignments.Add(int64(len(as)))
	d.inflight.Add(int64(len(as)))
	defer d.inflight.Add(-int64(len(as)))
	d.s.flights.add(flightRecord{Event: "shard-split", FlightID: fl.id})
	d.s.logger.InfoContext(fl.ctx, "dist space sharded", "flight_id", fl.id,
		"func", fl.fn.Name, "shards", len(as), "frontier", len(warmup.Checkpoint.Frontier))

	for _, a := range as {
		select {
		case <-a.done:
		case <-fl.ctx.Done():
			for _, b := range as {
				d.cancelAssignment(b)
			}
			d.shardReleaseSlots(slots)
			return &search.Result{FuncName: fl.fn.Name, Aborted: true,
				AbortReason: fmt.Sprintf("canceled: %v", context.Cause(fl.ctx))}, true
		}
	}

	shards := make([]search.ShardSpace, len(as))
	complete := true
	d.mu.Lock()
	for i, a := range as {
		if a.state == stateDone && !a.aborted && a.res != nil {
			shards[i] = search.ShardSpace{Res: a.res, FrontierIDs: ids[i]}
		} else {
			complete = false
		}
		delete(d.assignments, a.id)
	}
	d.mu.Unlock()
	d.shardReleaseSlots(slots)
	if !complete {
		// A shard aborted on its worker (cap, max-nodes, timeout) or
		// burned through its attempts. Shard-local caps do not land at
		// the serial positions, so the only byte-faithful answer is the
		// whole-space path.
		d.s.logger.Warn("dist shard set incomplete, falling back", "flight_id", fl.id)
		d.shardFallbacks.Inc()
		return nil, false
	}

	merged, err := search.MergeShards(warmup, shards)
	if err != nil {
		d.shardMergeFails.Inc()
		d.s.logger.Warn("dist shard merge failed", "flight_id", fl.id, "err", err.Error())
		return nil, false
	}
	d.shardMerges.Inc()
	d.s.flights.add(flightRecord{Event: "shard-merge", FlightID: fl.id})
	d.s.logger.InfoContext(fl.ctx, "dist shards merged", "flight_id", fl.id,
		"func", fl.fn.Name, "shards", len(shards), "nodes", len(merged.Nodes))
	return d.shardFinish(fl, merged)
}

// shardWarmup runs (or resumes) the flight's enumeration with the
// pause-at-frontier option: the returned result either carries a
// checkpoint whose frontier is ready to partition, or is the complete
// space. nil reports an unresumable checkpoint; the caller falls back.
func (d *dispatcher) shardWarmup(fl *flight, k int) *search.Result {
	s := d.s
	workers, _ := s.cpu.acquire(fl.ctx, s.cfg.SearchWorkers)
	defer s.cpu.release(workers)
	if workers <= 0 {
		workers = 1
	}
	opts := search.Options{
		MaxSeqPerLevel: fl.no.Cap,
		MaxNodes:       fl.no.MaxNodes,
		Check:          fl.no.Check,
		Timeout:        s.cfg.SearchTimeout,
		Workers:        workers,
		Ctx:            fl.ctx,
		Logger:         s.logger,
		Metrics:        s.reg,
		Tracer:         s.cfg.Tracer,
		Faults:         s.cfg.Faults,
		StopAtFrontier: k,
	}
	// The warmup always enumerates the default tier (shards and merge
	// need raw nodes), so an equiv flight's warmup must not claim the
	// flight key's checkpoint slot — that slot's tier is part of the
	// key. Default-tier flights keep their usual resume semantics.
	if !fl.no.Equiv {
		opts.CheckpointPath = s.store.ckptPath(fl.key)
		prev, err := search.LoadFile(opts.CheckpointPath)
		switch {
		case err == nil && prev.Checkpoint != nil:
			s.reg.Counter("server.enumerations").Inc()
			s.reg.Counter("server.enumerations.resumed").Inc()
			res, rerr := search.Resume(prev, opts)
			if rerr != nil {
				s.logger.Warn("dist shard warmup resume failed", "flight_id", fl.id, "err", rerr.Error())
				return nil
			}
			return res
		case err == nil && !prev.Aborted:
			// Completed but never promoted (crash between rename and
			// promotion); it is the space.
			return prev
		}
	}
	s.reg.Counter("server.enumerations").Inc()
	return search.Run(fl.fn, opts)
}

// shardFinish adapts a complete merged (or warmup-complete) default
// space to the flight's requested tier: equiv flights get the
// equivalence space derived from it — byte-identical to a direct equiv
// enumeration — and default flights take it as is.
func (d *dispatcher) shardFinish(fl *flight, full *search.Result) (*search.Result, bool) {
	if !fl.no.Equiv {
		return full, true
	}
	if full.Aborted {
		// A cap hit in the default tier says nothing about where the
		// equivalence tier (fewer nodes per level) would have landed;
		// only a real equiv enumeration answers that.
		d.shardFallbacks.Inc()
		return nil, false
	}
	derived, err := search.DeriveEquiv(full, search.Options{
		MaxSeqPerLevel: fl.no.Cap,
		MaxNodes:       fl.no.MaxNodes,
		Check:          fl.no.Check,
		Logger:         d.s.logger,
		Metrics:        d.s.reg,
	})
	if err != nil {
		d.s.logger.Warn("dist shard equiv derivation failed", "flight_id", fl.id, "err", err.Error())
		d.shardFallbacks.Inc()
		return nil, false
	}
	return derived, true
}

// shardReleaseSlots unpins and deletes every shard checkpoint slot.
// Shard progress is only meaningful against the exact partition that
// produced it, and a future attempt re-partitions at whatever boundary
// its own warmup pauses on, so terminal paths always clear the slots
// (cancelAssignment has already fenced late uploads by then).
func (d *dispatcher) shardReleaseSlots(slots []cacheKey) {
	for _, slot := range slots {
		d.s.store.unpinCkpt(slot)
		d.s.store.removeCkpt(slot)
	}
}
