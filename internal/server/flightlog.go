package server

import (
	"net/http"
	"sync"
	"time"
)

// flightRecord is one completed enumerate request as the flight
// recorder replays it: who asked, which flight resolved it, where the
// time went. A coalesced follower's LeaderRequestID names the request
// whose flight it attached to, so a latency complaint can be traced
// to the enumeration that actually ran.
type flightRecord struct {
	RequestID string `json:"request_id,omitempty"`
	FlightID  string `json:"flight_id,omitempty"`
	Func      string `json:"func,omitempty"`
	Cache     string `json:"cache,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	// Event distinguishes distribution-plane records ("dispatch",
	// "lease-expire", "complete") from the default request records
	// (empty Event); AssignmentID/Worker/Attempt carry the dist
	// context so a recovery can be replayed from the ring alone.
	Event        string `json:"event,omitempty"`
	AssignmentID string `json:"assignment_id,omitempty"`
	Worker       string `json:"worker,omitempty"`
	Attempt      int    `json:"attempt,omitempty"`
	// LeaderRequestID is the request that created the flight. For a
	// coalesced follower it differs from RequestID; for the leader the
	// two match.
	LeaderRequestID string `json:"leader_request_id,omitempty"`
	Status          int    `json:"status"`
	Error           string `json:"error,omitempty"`

	QueueWaitMS int64 `json:"queue_wait_ms"`
	EnumerateMS int64 `json:"enumerate_ms"`
	SerializeMS int64 `json:"serialize_ms"`
	TotalMS     int64 `json:"total_ms"`
}

// flightLog is the fixed-size ring the flight recorder replays from.
// Appends overwrite the oldest record; snapshot returns newest first.
type flightLog struct {
	mu   sync.Mutex
	buf  []flightRecord
	next int // index of the slot the next append overwrites
	full bool
}

func newFlightLog(size int) *flightLog {
	if size <= 0 {
		size = 128
	}
	return &flightLog{buf: make([]flightRecord, size)}
}

// add appends one record. No-op on a nil receiver, so the pre-plane
// benchmark configuration records nothing.
func (l *flightLog) add(rec flightRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = rec
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

// snapshot returns the recorded flights newest first.
func (l *flightLog) snapshot() []flightRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]flightRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// handleFlights serves GET /v1/debug/flights: the last N enumerate
// requests with their timing splits, newest first.
func (s *Server) handleFlights(w http.ResponseWriter, r *http.Request) {
	flights := s.flights.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": len(s.flights.buf),
		"count":    len(flights),
		"flights":  flights,
	})
}

// recordFlight folds one finished enumerate request into the ring and,
// when the flight ran longer than the slow-flight threshold, emits the
// slow-flight diagnostic carrying the enumeration's own statistics.
func (s *Server) recordFlight(r *http.Request, ri *reqInfo, fl *flight, status int, errMsg string, serialize, total time.Duration) {
	if ri == nil {
		return
	}
	rec := flightRecord{
		RequestID:       ri.id,
		FlightID:        ri.flightID,
		Cache:           ri.cache,
		Coalesced:       ri.coalesced,
		LeaderRequestID: ri.leaderReq,
		Status:          status,
		Error:           errMsg,
		QueueWaitMS:     ri.queueWait.Milliseconds(),
		EnumerateMS:     ri.enumerate.Milliseconds(),
		SerializeMS:     serialize.Milliseconds(),
		TotalMS:         total.Milliseconds(),
	}
	if fl != nil {
		rec.Func = fl.fn.Name
	}
	ri.serialize = serialize
	s.flights.add(rec)

	if s.cfg.SlowFlight > 0 && total >= s.cfg.SlowFlight {
		attrs := []any{
			"flight_id", ri.flightID,
			"cache", ri.cache,
			"status", status,
			"queue_wait_ms", rec.QueueWaitMS,
			"enumerate_ms", rec.EnumerateMS,
			"serialize_ms", rec.SerializeMS,
			"total_ms", rec.TotalMS,
		}
		if fl != nil {
			st := fl.stats()
			attrs = append(attrs,
				"func", fl.fn.Name,
				"attempts", st.Attempts,
				"active", st.Active,
				"dormant", st.Dormant,
				"merged", st.Merged,
				"levels", st.Levels,
				"expand_ms", time.Duration(st.ExpandNS).Milliseconds(),
				"statekey_ms", time.Duration(st.StateKeyNS).Milliseconds(),
			)
		}
		s.logger.WarnContext(r.Context(), "slow flight", attrs...)
	}
}
