package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestCPUBudgetElasticGrant(t *testing.T) {
	b := newCPUBudget(4, telemetry.NewRegistry())

	got, _ := b.acquire(context.Background(), 16)
	if got != 4 {
		t.Fatalf("first acquire(16) = %d tokens; want the whole pool (4)", got)
	}
	b.release(got)

	// With part of the pool drawn down, a wide request gets the rest
	// instead of blocking.
	a, _ := b.acquire(context.Background(), 3)
	if a != 3 {
		t.Fatalf("acquire(3) = %d; want 3", a)
	}
	c, _ := b.acquire(context.Background(), 4)
	if c != 1 {
		t.Fatalf("acquire(4) with 1 free = %d; want the elastic remainder 1", c)
	}
	b.release(a)
	b.release(c)
}

func TestCPUBudgetBlocksUntilRelease(t *testing.T) {
	b := newCPUBudget(2, telemetry.NewRegistry())
	got, _ := b.acquire(context.Background(), 2)
	if got != 2 {
		t.Fatalf("acquire(2) = %d; want 2", got)
	}

	done := make(chan int, 1)
	go func() {
		g, _ := b.acquire(context.Background(), 1)
		done <- g
	}()
	select {
	case g := <-done:
		t.Fatalf("acquire on a drained pool returned %d without waiting", g)
	case <-time.After(50 * time.Millisecond):
	}
	b.release(got)
	select {
	case g := <-done:
		if g != 1 {
			t.Fatalf("post-release acquire = %d; want 1", g)
		}
		b.release(g)
	case <-time.After(2 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
}

func TestCPUBudgetCanceledWaiter(t *testing.T) {
	b := newCPUBudget(1, telemetry.NewRegistry())
	got, _ := b.acquire(context.Background(), 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		g, _ := b.acquire(ctx, 1)
		done <- g
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case g := <-done:
		if g != 0 {
			t.Fatalf("canceled acquire = %d; want 0 (run single-width, nothing to release)", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	b.release(got)

	// The pool must be whole again: a fresh acquire succeeds.
	if g, _ := b.acquire(context.Background(), 1); g != 1 {
		t.Fatalf("acquire after cancel+release = %d; want 1", g)
	}
}

// TestCPUBudgetCancelReleaseHammer races acquire against cancellation
// from every angle — contexts dead on arrival, contexts canceled while
// the flight is blocked in acquire, and plain acquire/release churn —
// and checks the two invariants the flight path depends on: a canceled
// waiter that got nothing has nothing to return (release(0) is a
// no-op, so tokens cannot leak), and server.cpu.inuse never dips below
// zero (release would panic before letting it). Run under -race.
func TestCPUBudgetCancelReleaseHammer(t *testing.T) {
	b := newCPUBudget(3, telemetry.NewRegistry())

	// Sample the in-use gauge concurrently with the churn; a negative
	// reading means a release returned tokens nobody held.
	var stop atomic.Bool
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		for !stop.Load() {
			if v := b.gInUse.Value(); v < 0 {
				t.Errorf("server.cpu.inuse sampled at %d", v)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				switch (seed + i) % 3 {
				case 0:
					cancel() // dead on arrival; a free pool may still grant
				case 1:
					go cancel() // races the blocked wait
				}
				got, _ := b.acquire(ctx, 1+(seed+i)%4)
				if got < 0 || got > 3 {
					t.Errorf("acquire granted %d tokens from a pool of 3", got)
				}
				b.release(got)
				cancel()
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	<-sampler

	// Every grant was returned: the next acquire drains the whole pool.
	if g, _ := b.acquire(context.Background(), 3); g != 3 {
		t.Fatalf("acquire after hammer = %d tokens; want the whole pool (3) — a grant leaked", g)
	}
	b.release(3)
	if v := b.gInUse.Value(); v != 0 {
		t.Fatalf("server.cpu.inuse = %d after full release; want 0", v)
	}
}
