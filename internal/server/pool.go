package server

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rtl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// Pool errors, mapped to HTTP statuses by the handlers.
var (
	// errQueueFull sheds a request the bounded queue cannot absorb
	// (429 Too Many Requests + Retry-After).
	errQueueFull = errors.New("server: enumeration queue is full")
	// errDraining rejects work arriving after shutdown began (503).
	errDraining = errors.New("server: draining")
)

// flight is one in-progress resolution of a cache key — the unit of
// request coalescing. Every concurrent request for the same key joins
// the same flight, so the key is enumerated at most once no matter how
// many clients ask for it at the same moment.
type flight struct {
	key cacheKey
	fn  *rtl.Func
	no  normOptions

	// id names the flight in logs and the flight recorder ("f1", "f2",
	// …); leaderReq is the request ID that created it, so a coalesced
	// follower can report whose flight it rode.
	id        string
	leaderReq string

	// enqueuedAt is stamped on creation; startedAt when a worker picks
	// the flight up (their difference is the queue wait); finishedAt
	// just before done closes. Waiters read startedAt/finishedAt only
	// after done is closed.
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	// ctx cancels the flight's enumeration. It is derived from the
	// pool's base context and cancels only on server drain — never
	// because a waiter went away. The enumeration's lifetime belongs
	// to the flight, not to any request: a leader that disconnects
	// must not cancel the work a follower is (or will be) waiting on,
	// and a fully abandoned flight still runs to completion and lands
	// in the cache, where the inevitable retry finds it.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// done closes when the flight has resolved; ent/cacheHow/err are
	// immutable afterwards.
	done     chan struct{}
	ent      entry
	cacheHow string // "mem", "disk" or "miss" — how the worker resolved it
	err      error
	status   int // HTTP status for err

	waiters int // guarded by pool.mu
}

// stats returns the resolved enumeration's statistics, or zeros when
// the flight produced no space. Call only after done has closed.
func (fl *flight) stats() search.RunStats {
	if fl.ent.res == nil {
		return search.RunStats{}
	}
	return fl.ent.res.Stats
}

// pool runs flights through a fixed set of workers fed by a bounded
// queue. Backpressure is explicit: when the queue is full, join sheds
// instead of blocking, so a burst degrades into fast 429s rather than
// unbounded memory growth and collapsing latency.
type pool struct {
	run func(*flight) // the server's runFlight

	mu       sync.Mutex
	flights  map[cacheKey]*flight
	queue    chan *flight
	draining bool

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup
	depthGauge func(int64)
	nextID     atomic.Int64
	workers    int
}

func newPool(workers, depth int, run func(*flight), depthGauge func(int64)) *pool {
	if workers <= 0 {
		workers = 2
	}
	if depth <= 0 {
		depth = 16
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	p := &pool{
		run:        run,
		flights:    make(map[cacheKey]*flight),
		queue:      make(chan *flight, depth),
		baseCtx:    ctx,
		baseCancel: cancel,
		depthGauge: depthGauge,
		workers:    workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for fl := range p.queue {
		p.depthGauge(int64(len(p.queue)))
		fl.startedAt = time.Now()
		p.run(fl)
	}
}

// join attaches the caller to the flight for key, creating and
// enqueueing one if none is in progress. It reports whether the caller
// coalesced onto an existing flight. reqID is the caller's request ID;
// when a new flight is created it becomes the flight's leader and the
// flight's context carries both IDs for the search engine's logs. The
// caller must balance every successful join with leave.
func (p *pool) join(key cacheKey, fn *rtl.Func, no normOptions, reqID string) (fl *flight, coalesced bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return nil, false, errDraining
	}
	if fl, ok := p.flights[key]; ok {
		fl.waiters++
		return fl, true, nil
	}
	fl = &flight{
		key:        key,
		fn:         fn,
		no:         no,
		id:         "f" + strconv.FormatInt(p.nextID.Add(1), 10),
		leaderReq:  reqID,
		enqueuedAt: time.Now(),
		done:       make(chan struct{}),
		waiters:    1,
	}
	fl.ctx, fl.cancel = context.WithCancelCause(p.baseCtx)
	fl.ctx = telemetry.WithFlightID(fl.ctx, fl.id)
	if reqID != "" {
		fl.ctx = telemetry.WithRequestID(fl.ctx, reqID)
	}
	select {
	case p.queue <- fl:
	default:
		fl.cancel(errQueueFull)
		return nil, false, errQueueFull
	}
	p.flights[key] = fl
	p.depthGauge(int64(len(p.queue)))
	return fl, false, nil
}

// leave detaches one waiter. The flight keeps running even when its
// last waiter leaves: canceling it would let a coalescing race leak
// the cancellation to a follower that joins between the leader's
// departure and the flight's retirement, and the finished space is
// about to be cached anyway — the retry that follows an abandoned
// request is exactly the request that profits from it.
func (p *pool) leave(fl *flight) {
	p.mu.Lock()
	fl.waiters--
	p.mu.Unlock()
}

// finish publishes the flight's resolution and retires it. The caller
// (runFlight) must have cached any produced result before this, so a
// later request either joins this flight or sees the cache — never a
// window where it would re-enumerate a key that just resolved.
func (p *pool) finish(fl *flight) {
	p.mu.Lock()
	delete(p.flights, fl.key)
	p.mu.Unlock()
	fl.finishedAt = time.Now()
	fl.cancel(nil)
	close(fl.done)
}

// queued reports the number of flights waiting for a worker.
func (p *pool) queued() int { return len(p.queue) }

// isDraining reports whether close has begun.
func (p *pool) isDraining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// flightCount reports the number of unresolved flights.
func (p *pool) flightCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.flights)
}

// close drains the pool: new joins are refused, queued and running
// flights are canceled (running searches checkpoint at the next
// attempt boundary), and close returns when every worker has retired.
func (p *pool) close() {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.draining = true
	close(p.queue)
	p.mu.Unlock()
	p.baseCancel(errDraining)
	p.wg.Wait()
}
