package server

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/search"
)

// TestShardedEnumerationMatchesLocal: with intra-space sharding on and
// two workers joined, one enumeration is warmed up locally, split into
// two frontier shards, run on the fleet, and merged — and the space the
// coordinator serves hashes byte-identically to a single-node run, for
// the default tier and for the equivalence tier derived from a second
// sharded merge.
func TestShardedEnumerationMatchesLocal(t *testing.T) {
	s, ts := newTestServer(t, Config{
		ShardFanout: 2, DistLeaseTTL: 2 * time.Second, DistPollWait: 100 * time.Millisecond,
		// Under -race on a small box the sharded round trips run well
		// past the 60s default request deadline.
		DefaultDeadline: 5 * time.Minute,
	})
	startWorker(t, ts, "w1", nil, nil)
	startWorker(t, ts, "w2", nil, nil)
	waitFor(t, "workers to register", func() bool { return fleetLive(s) == 2 })

	want, err := search.Run(mustCompile(t, sumSrc, "sum"), search.Options{}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	status, doc, _ := post(t, ts, srcBody(sumSrc))
	if status != http.StatusOK {
		t.Fatalf("sharded request: status %d: %v", status, doc)
	}
	if doc["space_hash"] != want {
		t.Fatalf("sharded hash %v != single-node hash %s", doc["space_hash"], want)
	}
	if got := s.dist.shardSplits.Value(); got != 1 {
		t.Fatalf("dist.shard.splits = %d, want 1", got)
	}
	if got := s.dist.shardMerges.Value(); got != 1 {
		t.Fatalf("dist.shard.merges = %d, want 1", got)
	}
	if got := s.dist.shardAssignments.Value(); got != 2 {
		t.Fatalf("dist.shard.assignments = %d, want 2", got)
	}
	if got := s.dist.shardMergeFails.Value() + s.dist.shardFallbacks.Value(); got != 0 {
		t.Fatalf("shard merge failures + fallbacks = %d, want 0", got)
	}

	// The equivalence tier is derived from a fresh sharded merge and
	// must match a direct -equiv enumeration exactly.
	wantEq, err := search.Run(mustCompile(t, sumSrc, "sum"), search.Options{Equiv: true}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	status, doc, _ = post(t, ts, `{"source":`+jsonStr(sumSrc)+`,"options":{"equiv":true}}`)
	if status != http.StatusOK {
		t.Fatalf("sharded equiv request: status %d: %v", status, doc)
	}
	if doc["space_hash"] != wantEq {
		t.Fatalf("sharded equiv hash %v != direct equiv hash %s", doc["space_hash"], wantEq)
	}
	if got := s.dist.shardMerges.Value(); got != 2 {
		t.Fatalf("dist.shard.merges = %d after the equiv flight, want 2", got)
	}

	// The flight recorder saw the split and the merge.
	var split, merge bool
	for _, rec := range s.flights.snapshot() {
		switch rec.Event {
		case "shard-split":
			split = true
		case "shard-merge":
			merge = true
		}
	}
	if !split || !merge {
		t.Fatalf("flight recorder missing shard events (split=%v merge=%v)", split, merge)
	}

	// No shard checkpoint slots were left behind (pinned or otherwise).
	keys, err := s.store.keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !keyPattern.MatchString(string(k)) {
			t.Fatalf("stray cache entry %s after shard merges", k)
		}
	}
}

// runShardKillScenario is the acceptance-criteria drill: one of the two
// shard holders is killed (network partition = SIGKILL to the
// coordinator) mid-shard, its lease expires, only that shard is
// re-dispatched — seeded with the dead holder's last uploaded
// checkpoint — and the merged space still hashes identically to a
// clean single-node enumeration of the requested tier.
func runShardKillScenario(t *testing.T, equiv bool) {
	s, ts := newTestServer(t, Config{
		ShardFanout: 2, DistLeaseTTL: 600 * time.Millisecond, DistPollWait: 100 * time.Millisecond,
		DefaultDeadline: 5 * time.Minute,
	})
	gate := &gatedTransport{}
	// w1 crawls (60ms per application of phase c) so it is still
	// mid-shard when the partition hits; w2 runs clean.
	startWorker(t, ts, "w1", gate, faultinject.MustParse("hang=c:60ms"))
	startWorker(t, ts, "w2", nil, nil)
	waitFor(t, "workers to register", func() bool { return fleetLive(s) == 2 })

	opts := search.Options{Equiv: equiv}
	want, err := search.Run(mustCompile(t, sumSrc, "sum"), opts).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	body := srcBody(sumSrc)
	if equiv {
		body = `{"source":` + jsonStr(sumSrc) + `,"options":{"equiv":true}}`
	}

	type reply struct {
		status int
		doc    map[string]any
	}
	replies := make(chan reply, 1)
	go func() {
		st, doc, _ := post(t, ts, body)
		replies <- reply{st, doc}
	}()

	// Wait until w1 holds a shard and has uploaded progress, then cut
	// the network and bring in a replacement.
	waitFor(t, "a shard checkpoint upload from w1", func() bool {
		s.dist.mu.Lock()
		defer s.dist.mu.Unlock()
		for _, a := range s.dist.assignments {
			if a.shard >= 0 && a.worker == "w1" && a.ckptNodes > 0 {
				return true
			}
		}
		return false
	})
	gate.dead.Store(true)
	startWorker(t, ts, "w3", nil, nil)

	r := <-replies
	if r.status != http.StatusOK {
		t.Fatalf("recovered sharded request: status %d: %v", r.status, r.doc)
	}
	if r.doc["space_hash"] != want {
		t.Fatalf("recovered sharded hash %v != clean single-node hash %s (equiv=%v)",
			r.doc["space_hash"], want, equiv)
	}
	if got := s.dist.expiryVec.With("w1").Value(); got < 1 {
		t.Fatalf(`dist.lease_expiries{worker="w1"} = %d, want >= 1`, got)
	}
	// Only the dead holder's shard was re-dispatched: w2 never lost its
	// lease.
	if got := s.dist.retryVec.With("w2").Value(); got != 0 {
		t.Fatalf(`dist.retries{worker="w2"} = %d, want 0 (the healthy shard was reassigned)`, got)
	}
	if got := s.dist.shardMerges.Value(); got != 1 {
		t.Fatalf("dist.shard.merges = %d, want 1", got)
	}
	if got := s.dist.shardMergeFails.Value(); got != 0 {
		t.Fatalf("dist.shard.merge_failures = %d, want 0", got)
	}
}

func TestShardHolderKillDefaultTier(t *testing.T) { runShardKillScenario(t, false) }
func TestShardHolderKillEquivTier(t *testing.T)   { runShardKillScenario(t, true) }
