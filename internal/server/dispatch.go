package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distcl"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// The dispatcher turns the server into a coordinator: enumeration
// flights that miss every cache tier are offered to a fleet of worker
// processes (cmd/spaced -worker) over the /v1/dist/* protocol instead
// of running on the local pool. Work is pull-based — workers long-poll
// for assignments — and every assignment is covered by a lease renewed
// by the worker's heartbeats. A missed lease (crashed worker, dead
// TCP, partition) expires on the sweeper and the assignment is
// re-dispatched, seeded with the worker's last uploaded checkpoint, so
// a SIGKILL costs at most one heartbeat interval of enumeration. With
// no workers registered the dispatcher declines every flight in one
// mutex acquisition and the server behaves exactly as a single node.

// assignment lease/lifecycle states.
const (
	statePending  = "pending"  // queued, waiting for a worker poll
	stateAssigned = "assigned" // leased to a worker
	stateDone     = "done"     // completed (space or worker-side abort)
	stateFailed   = "failed"   // attempts exhausted; flight falls back to local
	stateCanceled = "canceled" // flight went away (server drain)
)

// assignment is one leased unit of distributed work, owned by exactly
// one flight.
type assignment struct {
	id  string
	fl  *flight
	key cacheKey

	// wopts is the wire options the assignment runs under. For a
	// whole-space assignment it mirrors the flight's options; for a
	// shard assignment Equiv is forced off (shards enumerate the
	// default tier; the coordinator derives the equivalence space from
	// the merged result).
	wopts distcl.SearchOptions
	// shard is this assignment's partition index, or -1 for a
	// whole-space assignment. seed is the initial checkpoint document a
	// first dispatch is seeded with (a shard's frontier partition);
	// whole-space assignments have none.
	shard int
	seed  []byte

	// All below guarded by dispatcher.mu.
	state      string
	worker     string // current lessee ("" while pending)
	attempts   int    // dispatches so far
	leaseUntil time.Time
	// leaseGen increments on every dispatch. Heartbeat entries carrying
	// an older generation are fenced off: a checkpoint upload that was
	// in flight (queued, or crawling through an httpslow link) when the
	// lease expired must not regress the watermark after a re-dispatch
	// — even a re-dispatch to the same worker.
	leaseGen int64

	// ckpt is the latest validated checkpoint upload (serialized space
	// v2) and ckptNodes its node count — the monotonicity watermark a
	// later upload must not shrink below. The bytes seed re-dispatches
	// and are mirrored to the disk store's checkpoint slot so a
	// coordinator restart resumes too.
	ckpt      []byte
	ckptNodes int

	// done closes on transition to stateDone or stateFailed; the
	// fields below are immutable afterwards. hash is the accepted
	// completion's canonical hash — the idempotency key a duplicate
	// delivery is matched against.
	done        chan struct{}
	res         *search.Result
	hash        string
	aborted     bool
	abortReason string
}

// distWorker is the coordinator's view of one registered worker.
type distWorker struct {
	id       string
	state    string // "live", "draining", "dead"
	lastSeen time.Time
	jobs     int
	// abandon accumulates assignment IDs the worker must stop working
	// on (reassigned elsewhere); delivered with its next heartbeat.
	abandon []string
}

// dispatcher owns the worker registry, the assignment table and the
// lease clock.
type dispatcher struct {
	s           *Server
	leaseTTL    time.Duration
	pollWait    time.Duration
	maxAttempts int

	mu          sync.Mutex
	workers     map[string]*distWorker
	assignments map[string]*assignment
	pending     chan *assignment
	nextWorker  atomic.Int64
	nextAssign  atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// ckptq feeds uploaded progress checkpoints to a single validator
	// goroutine. Validation decodes the whole space (search.Load), which
	// must never sit between a heartbeat's arrival and its response: a
	// worker's heartbeat loop is synchronous, so handler latency
	// stretches its renewal cadence and can expire a perfectly healthy
	// lease. One consumer keeps uploads ordered per assignment.
	ckptq chan ckptUpload

	// Per-worker labeled families: dispatches, completions received,
	// lease expiries, assignments lost (re-queued) and recoveries
	// (re-dispatches picked up with a checkpoint seed).
	assignVec    *telemetry.CounterVec
	completeVec  *telemetry.CounterVec
	heartbeatVec *telemetry.CounterVec
	expiryVec    *telemetry.CounterVec
	retryVec     *telemetry.CounterVec
	recoverVec   *telemetry.CounterVec
	staleVec     *telemetry.CounterVec
	workerGauge  *telemetry.GaugeVec
	inflight     *telemetry.Gauge
	fallbacks    *telemetry.Counter

	// Intra-space sharding counters: spaces split across the fleet,
	// merges that reproduced the serial bytes, merges that failed
	// verification, shard flights that fell back to the whole-space
	// path, and warmups that completed before the frontier grew wide
	// enough to split.
	shardSplits      *telemetry.Counter
	shardMerges      *telemetry.Counter
	shardMergeFails  *telemetry.Counter
	shardFallbacks   *telemetry.Counter
	shardWarmupDone  *telemetry.Counter
	shardAssignments *telemetry.Counter
}

func newDispatcher(s *Server) *dispatcher {
	d := &dispatcher{
		s:           s,
		leaseTTL:    s.cfg.DistLeaseTTL,
		pollWait:    s.cfg.DistPollWait,
		maxAttempts: s.cfg.DistMaxAttempts,
		workers:     make(map[string]*distWorker),
		assignments: make(map[string]*assignment),
		pending:     make(chan *assignment, 256),
		stop:        make(chan struct{}),
		ckptq:       make(chan ckptUpload, 256),

		assignVec:    s.reg.CounterVec("dist.assignments", "worker"),
		completeVec:  s.reg.CounterVec("dist.completions", "worker"),
		heartbeatVec: s.reg.CounterVec("dist.heartbeats", "worker"),
		expiryVec:    s.reg.CounterVec("dist.lease_expiries", "worker"),
		retryVec:     s.reg.CounterVec("dist.retries", "worker"),
		recoverVec:   s.reg.CounterVec("dist.recoveries", "worker"),
		staleVec:     s.reg.CounterVec("dist.stale_uploads", "worker"),
		workerGauge:  s.reg.GaugeVec("dist.workers", "state"),
		inflight:     s.reg.Gauge("dist.assignments_inflight"),
		fallbacks:    s.reg.Counter("dist.local_fallbacks"),

		shardSplits:      s.reg.Counter("dist.shard.splits"),
		shardMerges:      s.reg.Counter("dist.shard.merges"),
		shardMergeFails:  s.reg.Counter("dist.shard.merge_failures"),
		shardFallbacks:   s.reg.Counter("dist.shard.fallbacks"),
		shardWarmupDone:  s.reg.Counter("dist.shard.warmup_completions"),
		shardAssignments: s.reg.Counter("dist.shard.assignments"),
	}
	if d.leaseTTL <= 0 {
		d.leaseTTL = 10 * time.Second
	}
	if d.pollWait <= 0 {
		d.pollWait = 5 * time.Second
	}
	if d.maxAttempts <= 0 {
		d.maxAttempts = 3
	}
	d.wg.Add(2)
	go d.sweeper()
	go d.accepter()
	return d
}

func (d *dispatcher) close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// ckptUpload is one heartbeat-borne checkpoint waiting for validation.
// gen is the lease generation the upload arrived under; by the time
// the validator gets to it the lease may have expired and the work
// been re-dispatched, so acceptance re-checks it under the lock.
type ckptUpload struct {
	a        *assignment
	workerID string
	b64      string
	gen      int64
}

// accepter validates uploaded checkpoints off the heartbeat path.
func (d *dispatcher) accepter() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case u := <-d.ckptq:
			d.acceptCheckpoint(u.a, u.workerID, u.b64, u.gen)
		}
	}
}

// hbEvery is the heartbeat cadence workers are told to keep: a third
// of the lease, so two beats can be lost before the lease expires.
func (d *dispatcher) hbEvery() time.Duration { return d.leaseTTL / 3 }

// enumerate offers fl to the fleet. It reports handled=false when the
// flight should run locally instead: no live workers, a saturated
// dispatch queue, or attempts exhausted (in which case the latest
// uploaded checkpoint is already in the disk store's checkpoint slot,
// so the local path resumes rather than restarts).
func (d *dispatcher) enumerate(fl *flight) (*search.Result, bool) {
	d.mu.Lock()
	if !d.anyLiveLocked() {
		d.mu.Unlock()
		return nil, false
	}
	a := d.newAssignment(fl, fl.key, distcl.SearchOptions{
		Cap: fl.no.Cap, MaxNodes: fl.no.MaxNodes,
		Check: fl.no.Check, Equiv: fl.no.Equiv,
	}, -1, nil)
	d.assignments[a.id] = a
	d.mu.Unlock()

	select {
	case d.pending <- a:
	default:
		d.mu.Lock()
		delete(d.assignments, a.id)
		d.mu.Unlock()
		return nil, false
	}
	d.inflight.Add(1)
	defer d.inflight.Add(-1)
	d.s.logger.InfoContext(fl.ctx, "dist assignment queued",
		"assignment_id", a.id, "flight_id", fl.id, "func", fl.fn.Name)

	select {
	case <-a.done:
	case <-fl.ctx.Done():
		d.cancelAssignment(a)
		return &search.Result{FuncName: fl.fn.Name, Aborted: true,
			AbortReason: fmt.Sprintf("canceled: %v", context.Cause(fl.ctx))}, true
	}

	d.mu.Lock()
	state, res, aborted, reason := a.state, a.res, a.aborted, a.abortReason
	delete(d.assignments, a.id)
	d.mu.Unlock()
	switch {
	case state == stateDone && !aborted:
		return res, true
	case state == stateDone:
		return &search.Result{FuncName: fl.fn.Name, Aborted: true, AbortReason: reason}, true
	default: // stateFailed
		d.fallbacks.Inc()
		d.s.logger.WarnContext(fl.ctx, "dist attempts exhausted, running locally",
			"assignment_id", a.id, "flight_id", fl.id)
		return nil, false
	}
}

// newAssignment builds one assignment. Callers hold d.mu (the ID
// counter is atomic, but the table insert is theirs to do under the
// same critical section that checked fleet liveness).
func (d *dispatcher) newAssignment(fl *flight, key cacheKey, wopts distcl.SearchOptions, shard int, seed []byte) *assignment {
	return &assignment{
		id:    "a" + strconv.FormatInt(d.nextAssign.Add(1), 10),
		fl:    fl,
		key:   key,
		wopts: wopts,
		shard: shard,
		seed:  seed,
		state: statePending,
		done:  make(chan struct{}),
	}
}

// cancelAssignment withdraws a from the fleet when its flight goes
// away (server drain): the current lessee is told to abandon it at the
// next heartbeat, and any uploaded checkpoint stays in the disk slot
// for the next life of this key.
func (d *dispatcher) cancelAssignment(a *assignment) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if a.state == statePending || a.state == stateAssigned {
		if w := d.workers[a.worker]; w != nil {
			w.abandon = append(w.abandon, a.id)
		}
		a.state = stateCanceled
	}
	delete(d.assignments, a.id)
}

func (d *dispatcher) anyLiveLocked() bool {
	for _, w := range d.workers {
		if w.state == "live" {
			return true
		}
	}
	return false
}

func (d *dispatcher) updateWorkerGaugesLocked() {
	counts := map[string]int64{"live": 0, "draining": 0, "dead": 0}
	for _, w := range d.workers {
		counts[w.state]++
	}
	for state, n := range counts {
		d.workerGauge.With(state).Set(n)
	}
}

// sweeper is the lease clock: four times per TTL it expires leases
// whose worker went silent, declares workers dead after two missed
// TTLs, and fails pending work no live worker is left to take.
func (d *dispatcher) sweeper() {
	defer d.wg.Done()
	tick := time.NewTicker(d.leaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			d.sweep(time.Now())
		}
	}
}

func (d *dispatcher) sweep(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range d.workers {
		if w.state == "live" && now.Sub(w.lastSeen) > 2*d.leaseTTL {
			w.state = "dead"
			d.s.logger.Warn("dist worker declared dead", "worker_id", w.id,
				"silent_for_ms", now.Sub(w.lastSeen).Milliseconds())
		}
	}
	for _, a := range d.assignments {
		if a.state == stateAssigned && now.After(a.leaseUntil) {
			d.expiryVec.With(a.worker).Inc()
			d.s.logger.Warn("dist lease expired", "assignment_id", a.id,
				"worker_id", a.worker, "attempt", a.attempts)
			d.s.flights.add(flightRecord{Event: "lease-expire", FlightID: a.fl.id,
				AssignmentID: a.id, Worker: a.worker, Attempt: a.attempts})
			d.reassignLocked(a)
		}
	}
	if !d.anyLiveLocked() {
		// Nobody will ever poll; push pending flights to the local
		// fallback now instead of letting them wait out a request
		// deadline.
		for _, a := range d.assignments {
			if a.state == statePending {
				d.failLocked(a)
			}
		}
	}
	d.updateWorkerGaugesLocked()
}

// reassignLocked takes an assignment away from its worker and queues
// it for re-dispatch, or fails it over to the local pool once the
// attempt budget is spent. Callers hold d.mu.
func (d *dispatcher) reassignLocked(a *assignment) {
	if w := d.workers[a.worker]; w != nil {
		w.abandon = append(w.abandon, a.id)
		d.retryVec.With(a.worker).Inc()
	}
	a.worker = ""
	if a.attempts >= d.maxAttempts {
		d.failLocked(a)
		return
	}
	a.state = statePending
	select {
	case d.pending <- a:
	default:
		d.failLocked(a)
	}
}

func (d *dispatcher) failLocked(a *assignment) {
	if a.state == stateDone || a.state == stateFailed {
		return
	}
	a.state = stateFailed
	close(a.done)
}

// fleetSummary is the /v1/stats and /healthz view of the fleet.
type fleetSummary struct {
	WorkersLive         int                 `json:"workers_live"`
	WorkersDraining     int                 `json:"workers_draining"`
	WorkersDead         int                 `json:"workers_dead"`
	AssignmentsInFlight int                 `json:"assignments_in_flight"`
	Workers             []fleetWorkerStatus `json:"workers,omitempty"`
}

type fleetWorkerStatus struct {
	ID           string `json:"id"`
	State        string `json:"state"`
	LastSeenMS   int64  `json:"last_seen_ms"`
	Assignments  int    `json:"assignments"`
	AbandonQueue int    `json:"abandon_queue,omitempty"`
}

func (d *dispatcher) fleet() *fleetSummary {
	if d == nil {
		return nil
	}
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.workers) == 0 && len(d.assignments) == 0 {
		return nil
	}
	fs := &fleetSummary{}
	perWorker := map[string]int{}
	for _, a := range d.assignments {
		if a.state == statePending || a.state == stateAssigned {
			fs.AssignmentsInFlight++
			if a.worker != "" {
				perWorker[a.worker]++
			}
		}
	}
	for _, w := range d.workers {
		switch w.state {
		case "live":
			fs.WorkersLive++
		case "draining":
			fs.WorkersDraining++
		default:
			fs.WorkersDead++
		}
		fs.Workers = append(fs.Workers, fleetWorkerStatus{
			ID: w.id, State: w.state,
			LastSeenMS:   now.Sub(w.lastSeen).Milliseconds(),
			Assignments:  perWorker[w.id],
			AbandonQueue: len(w.abandon),
		})
	}
	return fs
}

// --- protocol handlers -------------------------------------------------

func readDistBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(v); err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "decoding request: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleDistRegister(w http.ResponseWriter, r *http.Request) {
	d := s.dist
	var req distcl.RegisterRequest
	if !readDistBody(w, r, &req) {
		return
	}
	id := req.WorkerID
	if !validRequestID(id) {
		id = "w" + strconv.FormatInt(d.nextWorker.Add(1), 10)
	}
	d.mu.Lock()
	wk := d.workers[id]
	if wk == nil {
		wk = &distWorker{id: id}
		d.workers[id] = wk
	}
	wk.state = "live"
	wk.lastSeen = time.Now()
	wk.jobs = req.Jobs
	d.updateWorkerGaugesLocked()
	d.mu.Unlock()
	s.logger.InfoContext(r.Context(), "dist worker registered", "worker_id", id, "jobs", req.Jobs)
	writeJSON(w, http.StatusOK, distcl.RegisterResponse{
		WorkerID:        id,
		LeaseTTLMillis:  d.leaseTTL.Milliseconds(),
		HeartbeatMillis: d.hbEvery().Milliseconds(),
		PollWaitMillis:  d.pollWait.Milliseconds(),
	})
}

func (s *Server) handleDistDeregister(w http.ResponseWriter, r *http.Request) {
	d := s.dist
	var req distcl.DeregisterRequest
	if !readDistBody(w, r, &req) {
		return
	}
	d.mu.Lock()
	if wk := d.workers[req.WorkerID]; wk != nil {
		delete(d.workers, req.WorkerID)
		for _, a := range d.assignments {
			if a.state == stateAssigned && a.worker == req.WorkerID {
				d.reassignLocked(a)
			}
		}
		d.updateWorkerGaugesLocked()
	}
	d.mu.Unlock()
	s.logger.InfoContext(r.Context(), "dist worker deregistered", "worker_id", req.WorkerID)
	w.WriteHeader(http.StatusNoContent)
}

// handleDistPoll long-polls for one assignment: 200 with the work, or
// 204 when pollWait elapses with nothing dispatchable.
func (s *Server) handleDistPoll(w http.ResponseWriter, r *http.Request) {
	d := s.dist
	var req distcl.PollRequest
	if !readDistBody(w, r, &req) {
		return
	}
	d.mu.Lock()
	wk := d.workers[req.WorkerID]
	if wk == nil {
		d.mu.Unlock()
		writeError(w, &httpError{status: http.StatusNotFound, msg: "unknown worker; re-register"})
		return
	}
	wk.lastSeen = time.Now()
	if wk.state != "live" {
		d.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	d.mu.Unlock()

	timer := time.NewTimer(d.pollWait)
	defer timer.Stop()
	for {
		select {
		case a := <-d.pending:
			if msg, ok := d.dispatch(a, req.WorkerID); ok {
				writeJSON(w, http.StatusOK, msg)
				return
			}
			continue // stale queue entry (canceled/failed meanwhile)
		case <-timer.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		case <-d.stop:
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

// dispatch leases a to workerID and builds its wire message, seeding
// it with the latest checkpoint when this is a recovery re-dispatch.
func (d *dispatcher) dispatch(a *assignment, workerID string) (*distcl.Assignment, bool) {
	d.mu.Lock()
	if a.state != statePending {
		d.mu.Unlock()
		return nil, false
	}
	a.state = stateAssigned
	a.worker = workerID
	a.attempts++
	a.leaseGen++
	a.leaseUntil = time.Now().Add(d.leaseTTL)
	attempt := a.attempts
	gen := a.leaseGen
	seed := a.ckpt
	if wk := d.workers[workerID]; wk != nil {
		// If this worker just lost the lease on a, the expiry queued a
		// stale abandon for it; a re-dispatch to the same worker must not
		// be killed by that leftover.
		for i, id := range wk.abandon {
			if id == a.id {
				wk.abandon = append(wk.abandon[:i], wk.abandon[i+1:]...)
				break
			}
		}
	}
	d.mu.Unlock()

	if seed == nil {
		// A previous life of this key (pre-restart, or a local request
		// that drained) may have left a checkpoint on disk; recover
		// from it rather than re-enumerating. For a shard assignment
		// the key is the shard's mirror slot, so a coordinator restart
		// resumes the shard from its own last upload.
		if b, err := d.s.store.readCkpt(a.key); err == nil {
			seed = b
		}
	}
	// A disk seed that still equals the shard's primed starting document
	// is a first dispatch, not a recovery; only bytes some worker
	// actually uploaded count.
	recovered := seed != nil && !bytes.Equal(seed, a.seed)
	if seed == nil {
		// First dispatch of a shard: seed with its frontier partition.
		seed = a.seed
	}
	msg := &distcl.Assignment{
		AssignmentID:        a.id,
		Key:                 string(a.key),
		Func:                a.fl.fn,
		Options:             a.wopts,
		SearchTimeoutMillis: d.s.cfg.SearchTimeout.Milliseconds(),
		LeaseGen:            gen,
	}
	if seed != nil && !a.wopts.Equiv {
		msg.CheckpointB64 = base64.StdEncoding.EncodeToString(seed)
		if recovered {
			d.recoverVec.With(workerID).Inc()
		}
	}
	d.assignVec.With(workerID).Inc()
	d.s.flights.add(flightRecord{Event: "dispatch", FlightID: a.fl.id,
		AssignmentID: a.id, Worker: workerID, Attempt: attempt})
	d.s.logger.Info("dist assignment dispatched", "assignment_id", a.id,
		"worker_id", workerID, "attempt", attempt, "resume", msg.CheckpointB64 != "")
	return msg, true
}

// handleDistHeartbeat renews the worker's leases, folds in progress
// checkpoints, and returns the assignments the worker must abandon.
func (s *Server) handleDistHeartbeat(w http.ResponseWriter, r *http.Request) {
	d := s.dist
	var req distcl.HeartbeatRequest
	if !readDistBody(w, r, &req) {
		return
	}
	now := time.Now()
	d.mu.Lock()
	wk := d.workers[req.WorkerID]
	if wk == nil {
		d.mu.Unlock()
		writeError(w, &httpError{status: http.StatusNotFound, msg: "unknown worker; re-register"})
		return
	}
	wk.lastSeen = now
	if req.Draining && wk.state == "live" {
		wk.state = "draining"
		s.logger.InfoContext(r.Context(), "dist worker draining", "worker_id", wk.id)
	}
	abandon := wk.abandon
	wk.abandon = nil
	d.updateWorkerGaugesLocked()

	type upload struct {
		a   *assignment
		b64 string
		gen int64
	}
	var uploads []upload
	var stale int
	for _, ha := range req.Assignments {
		a := d.assignments[ha.AssignmentID]
		if a != nil && a.state == stateAssigned && a.worker == req.WorkerID &&
			ha.LeaseGen != 0 && ha.LeaseGen != a.leaseGen {
			// A report from an expired lease this worker once held on an
			// assignment it now holds again under a newer lease: the
			// whole entry is fenced off. Renewing from it would keep a
			// zombie lease alive, its checkpoint could regress the
			// watermark, and an abandon-by-ID would kill the *current*
			// run of the same assignment on this very worker.
			stale++
			continue
		}
		if a == nil || a.state != stateAssigned || a.worker != req.WorkerID {
			// Not this worker's to report anymore (reassigned after an
			// expiry it outlived, or already finished): tell it to stop.
			if a == nil || a.worker != req.WorkerID {
				abandon = append(abandon, ha.AssignmentID)
			}
			continue
		}
		a.leaseUntil = now.Add(d.leaseTTL)
		if ha.CheckpointB64 != "" {
			uploads = append(uploads, upload{a, ha.CheckpointB64, ha.LeaseGen})
		}
	}
	drainReassign := req.Draining
	d.mu.Unlock()

	d.heartbeatVec.With(req.WorkerID).Inc()
	if stale > 0 {
		d.staleVec.With(req.WorkerID).Add(int64(stale))
	}
	for _, u := range uploads {
		if drainReassign {
			// Final checkpoints from a draining worker must land before
			// the reassign below re-dispatches with a seed.
			d.acceptCheckpoint(u.a, req.WorkerID, u.b64, u.gen)
			continue
		}
		select {
		case d.ckptq <- ckptUpload{u.a, req.WorkerID, u.b64, u.gen}:
		default:
			d.acceptCheckpoint(u.a, req.WorkerID, u.b64, u.gen)
		}
	}
	if drainReassign {
		// The worker has stopped executing; its final checkpoints are
		// in. Put its leases back on the queue immediately instead of
		// waiting out the TTL.
		d.mu.Lock()
		for _, a := range d.assignments {
			if a.state == stateAssigned && a.worker == req.WorkerID {
				d.reassignLocked(a)
			}
		}
		d.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, distcl.HeartbeatResponse{Abandon: abandon})
}

// acceptCheckpoint validates one uploaded checkpoint — decodable, the
// right function, never shrinking — and makes it the assignment's
// recovery point, mirrored into the disk store's checkpoint slot for
// the key so a coordinator restart (or local fallback) resumes from it
// too. Invalid uploads are dropped: the previous good checkpoint
// stands, and a torn httpdrop upload can never poison recovery. gen is
// the lease generation the upload was reported under; anything but the
// assignment's current generation is a fenced-off straggler (0 is the
// legacy wildcard) — the state/worker re-check alone cannot catch a
// queued upload that outlived an expiry and a re-dispatch to the same
// worker.
func (d *dispatcher) acceptCheckpoint(a *assignment, workerID, b64 string, gen int64) {
	b, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		d.s.logger.Warn("dist checkpoint undecodable", "assignment_id", a.id,
			"worker_id", workerID, "err", err.Error())
		return
	}
	res, err := search.Load(bytes.NewReader(b))
	if err != nil {
		d.s.logger.Warn("dist checkpoint unloadable", "assignment_id", a.id,
			"worker_id", workerID, "err", err.Error())
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if a.state != stateAssigned || a.worker != workerID {
		return
	}
	if gen != 0 && gen != a.leaseGen {
		d.staleVec.With(workerID).Inc()
		d.s.logger.Warn("dist checkpoint from stale lease dropped", "assignment_id", a.id,
			"worker_id", workerID, "upload_gen", gen, "lease_gen", a.leaseGen)
		return
	}
	if res.FuncName != a.fl.fn.Name || len(res.Nodes) < a.ckptNodes {
		d.s.logger.Warn("dist checkpoint rejected", "assignment_id", a.id,
			"worker_id", workerID, "func", res.FuncName, "nodes", len(res.Nodes),
			"watermark", a.ckptNodes)
		return
	}
	a.ckpt = b
	a.ckptNodes = len(res.Nodes)
	if err := d.s.store.writeCkpt(a.key, b); err != nil {
		d.s.logger.Warn("dist checkpoint not mirrored to disk", "assignment_id", a.id,
			"err", err.Error())
	}
	d.s.logger.Info("dist checkpoint accepted", "assignment_id", a.id,
		"worker_id", workerID, "nodes", a.ckptNodes)
}

// handleDistComplete accepts a finished assignment. Completion is
// idempotent by content hash: re-delivery of the same space is
// acknowledged as a duplicate; a different hash for the same finished
// assignment is a conflict.
func (s *Server) handleDistComplete(w http.ResponseWriter, r *http.Request) {
	d := s.dist
	var req distcl.CompleteRequest
	if !readDistBody(w, r, &req) {
		return
	}
	d.mu.Lock()
	a := d.assignments[req.AssignmentID]
	if a == nil {
		d.mu.Unlock()
		writeError(w, &httpError{status: http.StatusNotFound, msg: "unknown assignment"})
		return
	}
	if wk := d.workers[req.WorkerID]; wk != nil {
		wk.lastSeen = time.Now()
	}
	if a.state == stateDone {
		dup := a.aborted == req.Aborted && a.hash == req.SpaceHash
		d.mu.Unlock()
		if dup {
			writeJSON(w, http.StatusOK, distcl.CompleteResponse{Status: "duplicate"})
		} else {
			writeError(w, &httpError{status: http.StatusConflict,
				msg: "assignment already completed with a different result"})
		}
		return
	}
	if a.state == stateFailed || a.state == stateCanceled {
		d.mu.Unlock()
		writeError(w, &httpError{status: http.StatusNotFound, msg: "assignment no longer wanted"})
		return
	}
	d.mu.Unlock()

	if req.Aborted {
		d.mu.Lock()
		if a.state == stateDone || a.state == stateFailed {
			d.mu.Unlock()
			writeJSON(w, http.StatusOK, distcl.CompleteResponse{Status: "duplicate"})
			return
		}
		a.aborted, a.abortReason = true, req.AbortReason
		a.state = stateDone
		close(a.done)
		d.mu.Unlock()
		d.completeVec.With(req.WorkerID).Inc()
		s.logger.InfoContext(r.Context(), "dist assignment aborted by worker",
			"assignment_id", a.id, "worker_id", req.WorkerID, "reason", req.AbortReason)
		writeJSON(w, http.StatusOK, distcl.CompleteResponse{Status: "accepted"})
		return
	}

	// Decode and verify outside the lock — the space must be complete,
	// the right function, and hash to exactly what the worker claims
	// (the idempotency key and the byte-identity guarantee in one).
	b, err := base64.StdEncoding.DecodeString(req.SpaceB64)
	if err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "undecodable space payload"})
		return
	}
	res, err := search.Load(bytes.NewReader(b))
	if err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "unloadable space: " + err.Error()})
		return
	}
	if res.Checkpoint != nil || res.Aborted {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "space is not complete"})
		return
	}
	hash, err := res.CanonicalHash()
	if err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "unhashable space: " + err.Error()})
		return
	}
	if hash != req.SpaceHash {
		writeError(w, &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("space hash mismatch: body %s, claimed %s", hash, req.SpaceHash)})
		return
	}
	d.mu.Lock()
	if a.state == stateDone || a.state == stateFailed || a.state == stateCanceled {
		state := a.state
		d.mu.Unlock()
		if state == stateDone {
			writeJSON(w, http.StatusOK, distcl.CompleteResponse{Status: "duplicate"})
		} else {
			writeError(w, &httpError{status: http.StatusNotFound, msg: "assignment no longer wanted"})
		}
		return
	}
	if res.FuncName != a.fl.fn.Name {
		d.mu.Unlock()
		writeError(w, &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("space is for %q, assignment is %q", res.FuncName, a.fl.fn.Name)})
		return
	}
	a.res = res
	a.hash = hash
	a.state = stateDone
	close(a.done)
	d.mu.Unlock()
	d.completeVec.With(req.WorkerID).Inc()
	d.s.flights.add(flightRecord{Event: "complete", FlightID: a.fl.id,
		AssignmentID: a.id, Worker: req.WorkerID})
	s.logger.InfoContext(r.Context(), "dist assignment completed",
		"assignment_id", a.id, "worker_id", req.WorkerID, "space_hash", hash,
		"nodes", len(res.Nodes))
	writeJSON(w, http.StatusOK, distcl.CompleteResponse{Status: "accepted"})
}
