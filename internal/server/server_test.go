package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mc"
	"repro/internal/rtl"
	"repro/internal/search"
)

const (
	clampSrc = `int clamp(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}`
	absSrc = `int myabs(int x) { if (x < 0) return 0 - x; return x; }`
	negSrc = `int neg(int x) { return 0 - x; }`
	sumSrc = `
int a[16] = {5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int sum(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends an enumerate request and decodes the JSON response.
func post(t *testing.T, ts *httptest.Server, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/enumerate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, doc, resp.Header
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func counter(s *Server, name string) int64 { return s.reg.Counter(name).Value() }

func srcBody(src string) string {
	b, _ := json.Marshal(map[string]string{"source": src})
	return string(b)
}

// TestCoalescesIdenticalRequests holds the first flight open on the
// worker while more identical requests arrive: all of them must join
// that flight (singleflight), the function must be enumerated exactly
// once, and a later request must be served from the in-memory cache.
func TestCoalescesIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	s.beforeEnumerate = func(*flight) { <-release }

	const n = 3
	type reply struct {
		status int
		doc    map[string]any
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			status, doc, _ := post(t, ts, srcBody(clampSrc))
			replies <- reply{status, doc}
		}()
	}
	// Only release the worker once the other requests have provably
	// coalesced onto the first one's flight.
	waitFor(t, "2 coalesced requests", func() bool { return counter(s, "server.coalesced") == 2 })
	unblock()

	hashes := map[string]bool{}
	caches := map[string]int{}
	for i := 0; i < n; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, r.status, r.doc)
		}
		hashes[r.doc["space_hash"].(string)] = true
		caches[r.doc["cache"].(string)]++
	}
	if len(hashes) != 1 {
		t.Fatalf("coalesced requests saw different spaces: %v", hashes)
	}
	if caches["miss"] != 1 || caches["coalesced"] != 2 {
		t.Fatalf("cache statuses = %v, want 1 miss + 2 coalesced", caches)
	}
	if got := counter(s, "server.enumerations"); got != 1 {
		t.Fatalf("%d identical concurrent requests ran %d enumerations, want exactly 1", n, got)
	}

	// Warm repeat: served from the LRU, still exactly one enumeration.
	status, doc, _ := post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK || doc["cache"] != "mem" {
		t.Fatalf("warm repeat: status %d cache %v, want 200 mem", status, doc["cache"])
	}
	if got := counter(s, "server.enumerations"); got != 1 {
		t.Fatalf("warm repeat re-enumerated: %d enumerations", got)
	}
}

// TestParallelIdenticalAndDistinct hammers the server with identical
// and distinct requests concurrently (meant for -race): every distinct
// (function, options) key must be enumerated exactly once, whichever
// way the requests interleave.
func TestParallelIdenticalAndDistinct(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	bodies := []string{srcBody(clampSrc), srcBody(absSrc), srcBody(negSrc)}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for _, body := range bodies {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				status, doc, _ := post(t, ts, body)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %v", status, doc)
				}
			}(body)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := counter(s, "server.enumerations"); got != int64(len(bodies)) {
		t.Fatalf("%d distinct keys ran %d enumerations, want exactly %d", len(bodies), got, len(bodies))
	}
}

// TestQueueOverflowSheds fills the single-worker, depth-one queue and
// checks the next request is shed with 429 + Retry-After instead of
// queueing without bound.
func TestQueueOverflowSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	entered := make(chan *flight, 8)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	s.beforeEnumerate = func(fl *flight) {
		entered <- fl
		<-release
	}

	done := make(chan int, 2)
	go func() { st, _, _ := post(t, ts, srcBody(clampSrc)); done <- st }()
	<-entered // the lone worker is now held busy
	go func() { st, _, _ := post(t, ts, srcBody(absSrc)); done <- st }()
	waitFor(t, "second request queued", func() bool { return len(s.pool.queue) == 1 })

	status, doc, hdr := post(t, ts, srcBody(negSrc))
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d (%v), want 429", status, doc)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if got := counter(s, "server.shed"); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	unblock()
	for i := 0; i < 2; i++ {
		if st := <-done; st != http.StatusOK {
			t.Fatalf("held request finished with status %d", st)
		}
	}
}

// TestCorruptDiskEntryReEnumerates damages a cached space file and
// checks the next request treats it as a miss — dropping the damaged
// entry, re-enumerating and healing the slot — rather than failing.
func TestCorruptDiskEntryReEnumerates(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Dir: dir})
	status, doc, _ := post(t, ts1, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("seed request: status %d: %v", status, doc)
	}
	key := doc["key"].(string)
	wantHash := doc["space_hash"].(string)
	path := filepath.Join(dir, key+spaceSuffix)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache entry not on disk: %v", err)
	}
	if err := os.WriteFile(path, []byte("definitely not a space file"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server over the same directory has a cold LRU, so the
	// damaged file is its first stop.
	s2, ts2 := newTestServer(t, Config{Dir: dir})
	status, doc, _ = post(t, ts2, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("request over damaged entry: status %d: %v", status, doc)
	}
	if doc["cache"] != "miss" {
		t.Fatalf("damaged entry served as %q, want a miss", doc["cache"])
	}
	if doc["space_hash"] != wantHash {
		t.Fatalf("re-enumeration produced hash %v, want %v", doc["space_hash"], wantHash)
	}
	if got := counter(s2, "server.cache.corrupt"); got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
	if got := counter(s2, "server.enumerations"); got != 1 {
		t.Fatalf("re-enumerations = %d, want 1", got)
	}
	// The slot healed: the rewritten file loads.
	if _, err := s2.store.load(cacheKey(key)); err != nil {
		t.Fatalf("slot did not heal: %v", err)
	}
}

// TestCorruptDiskEntryConcurrentRequests hammers a damaged disk entry
// with N identical concurrent requests (meant for -race): exactly one
// flight forms, discovers the corruption, and re-enumerates exactly
// once; every response carries the healed space.
func TestCorruptDiskEntryConcurrentRequests(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Dir: dir})
	status, doc, _ := post(t, ts1, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("seed request: status %d: %v", status, doc)
	}
	key := doc["key"].(string)
	wantHash := doc["space_hash"].(string)
	if err := os.WriteFile(filepath.Join(dir, key+spaceSuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server has a cold LRU, so every request races toward the
	// damaged disk entry.
	s2, ts2 := newTestServer(t, Config{Dir: dir, Workers: 2, QueueDepth: 32})
	const n = 8
	type reply struct {
		status int
		doc    map[string]any
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			st, doc, _ := post(t, ts2, srcBody(clampSrc))
			replies <- reply{st, doc}
		}()
	}
	for i := 0; i < n; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, r.status, r.doc)
		}
		if r.doc["space_hash"] != wantHash {
			t.Fatalf("request %d: hash %v, want %v", i, r.doc["space_hash"], wantHash)
		}
	}
	if got := counter(s2, "server.enumerations"); got != 1 {
		t.Fatalf("%d concurrent requests over a corrupt entry ran %d enumerations, want exactly 1", n, got)
	}
	if got := counter(s2, "server.cache.corrupt"); got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
}

// TestDrainCheckpointsInFlight is the SIGTERM path: Close cancels an
// in-flight enumeration (held slow by an injected hang fault), which
// must checkpoint its partial space; a fresh server over the same
// cache directory must resume from that checkpoint and serve a space
// identical to an uninterrupted run.
func TestDrainCheckpointsInFlight(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{
		Dir:     dir,
		Workers: 1,
		// Every application of phase c stalls 150ms: the sum space has
		// dozens of instances, so the enumeration reliably outlives the
		// Close below.
		Faults: faultinject.MustParse("hang=c:150ms"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	type reply struct {
		status int
		doc    map[string]any
	}
	replies := make(chan reply, 1)
	go func() {
		status, doc, _ := post(t, ts1, srcBody(sumSrc))
		replies <- reply{status, doc}
	}()
	waitFor(t, "enumeration to start", func() bool { return counter(s1, "server.enumerations") == 1 })
	s1.Close() // SIGTERM: cancel, checkpoint, drain

	r := <-replies
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("drained request: status %d (%v), want 503", r.status, r.doc)
	}

	prog, err := mc.Compile(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("sum")
	key := requestKey(fn, normOptions{})
	ckpt, err := search.LoadFile(filepath.Join(dir, string(key)+ckptSuffix))
	if err != nil {
		t.Fatalf("drain left no checkpoint: %v", err)
	}
	if ckpt.Checkpoint == nil {
		t.Fatal("drain checkpoint has no frontier to resume from")
	}

	// The resumed space must match a clean, uninterrupted enumeration.
	clean := search.Run(fn, search.Options{})
	want, err := clean.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Dir: dir})
	status, doc, _ := post(t, ts2, srcBody(sumSrc))
	if status != http.StatusOK {
		t.Fatalf("resume request: status %d: %v", status, doc)
	}
	if got := counter(s2, "server.enumerations.resumed"); got != 1 {
		t.Fatalf("resumed counter = %d, want 1 (fresh enumeration instead of resume?)", got)
	}
	if doc["space_hash"] != want {
		t.Fatalf("resumed space hash %v differs from a clean run %v", doc["space_hash"], want)
	}
}

// TestDeadlineDetachesRequestFromFlight: a request whose deadline
// expires gets 504, but its flight is NOT canceled — the enumeration's
// lifetime belongs to the flight, not to any request — so it runs to
// completion and caches its space, and the inevitable retry is a cache
// hit instead of a second enumeration.
func TestDeadlineDetachesRequestFromFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  faultinject.MustParse("hang=c:100ms"),
	})
	status, doc, _ := post(t, ts, `{"source":`+jsonStr(clampSrc)+`,"options":{"deadline_ms":30}}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("impatient request: status %d (%v), want 504", status, doc)
	}
	// The abandoned flight keeps running and retires into the cache.
	waitFor(t, "abandoned flight to finish", func() bool { return s.pool.flightCount() == 0 })

	status, doc, _ = post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("retry: status %d (%v), want 200", status, doc)
	}
	if doc["cache"] != "mem" {
		t.Fatalf("retry served as %q, want mem (the abandoned flight should have cached its space)", doc["cache"])
	}
	if got := counter(s, "server.enumerations"); got != 1 {
		t.Fatalf("enumerations = %d, want exactly 1 (the retry must not re-enumerate)", got)
	}
	want, err := search.Run(mustCompile(t, clampSrc, "clamp"), search.Options{
		Faults: faultinject.MustParse("hang=c:100ms"),
	}).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if doc["space_hash"] != want {
		t.Fatalf("space after abandoned flight %v differs from clean run %v", doc["space_hash"], want)
	}
}

// TestLeaderDisconnectKeepsFlightForFollowers is the regression test
// for tying an enumeration's lifetime to a request context: a leader
// that disconnects mid-flight must not cancel the work — a follower
// that joins after the leader is gone still gets the space, from the
// one and only enumeration.
func TestLeaderDisconnectKeepsFlightForFollowers(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{})
	release := make(chan struct{})
	var startOnce, releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	s.beforeEnumerate = func(*flight) {
		startOnce.Do(func() { close(started) })
		<-release
	}

	// The leader posts with a cancelable request and walks away while
	// its flight is held on the worker.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodPost,
			ts.URL+"/v1/enumerate", strings.NewReader(srcBody(clampSrc)))
		if err != nil {
			leaderErr <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderErr <- err
	}()
	<-started
	cancelLeader()
	if err := <-leaderErr; err == nil {
		t.Fatal("leader request completed; it should have been canceled client-side")
	}
	// Wait until the server has fully processed the disconnect: the
	// leader has left and the flight has no waiters at all.
	key := requestKey(mustCompile(t, clampSrc, "clamp"), normOptions{})
	waitFor(t, "leader to leave the flight", func() bool {
		s.pool.mu.Lock()
		defer s.pool.mu.Unlock()
		fl := s.pool.flights[key]
		return fl != nil && fl.waiters == 0
	})

	// A follower arriving after the leader is gone coalesces onto the
	// still-running flight.
	type reply struct {
		status int
		doc    map[string]any
	}
	follower := make(chan reply, 1)
	go func() {
		st, doc, _ := post(t, ts, srcBody(clampSrc))
		follower <- reply{st, doc}
	}()
	waitFor(t, "follower to coalesce", func() bool { return counter(s, "server.coalesced") == 1 })
	unblock()

	r := <-follower
	if r.status != http.StatusOK {
		t.Fatalf("follower: status %d (%v), want 200", r.status, r.doc)
	}
	if r.doc["cache"] != "coalesced" {
		t.Fatalf("follower served as %q, want coalesced", r.doc["cache"])
	}
	if got := counter(s, "server.enumerations"); got != 1 {
		t.Fatalf("enumerations = %d, want exactly 1", got)
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func mustCompile(t *testing.T, src, name string) *rtl.Func {
	t.Helper()
	prog, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func(name)
	if f == nil {
		t.Fatalf("source does not define %s", name)
	}
	return f
}

// TestSpaceEndpointServesAuditableBytes: the gzip served by
// /v1/space/{key} must load as a space whose canonical hash matches the
// one the enumerate response reported — the spacedot -hash audit.
func TestSpaceEndpointServesAuditableBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, doc, _ := post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("enumerate: status %d: %v", status, doc)
	}
	resp, err := http.Get(ts.URL + "/v1/space/" + doc["key"].(string))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("space fetch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("space fetch Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := search.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("served space does not load: %v", err)
	}
	hash, err := loaded.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if hash != doc["space_hash"] {
		t.Fatalf("served space hashes to %s, response promised %v", hash, doc["space_hash"])
	}

	for path, want := range map[string]int{
		"/v1/space/not-a-key":                  http.StatusBadRequest,
		"/v1/space/" + strings.Repeat("0", 64): http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestStatsEndpoint: /v1/stats reports the instruments and the phase
// interaction tables, including spaces cached by an earlier process
// over the same directory.
func TestStatsEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Dir: dir})
	if status, doc, _ := post(t, ts1, srcBody(clampSrc)); status != http.StatusOK {
		t.Fatalf("enumerate: status %d: %v", status, doc)
	}

	getStats := func(ts *httptest.Server) map[string]any {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats: status %d", resp.StatusCode)
		}
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	doc := getStats(ts1)
	if doc["spaces"] != float64(1) {
		t.Fatalf("spaces = %v, want 1", doc["spaces"])
	}
	if got := doc["counters"].(map[string]any)["server.enumerations"]; got != float64(1) {
		t.Fatalf("counters[server.enumerations] = %v, want 1", got)
	}
	tables := doc["tables"].(map[string]any)
	for _, name := range []string{"enabling", "disabling", "independence"} {
		m := tables[name].([]any)
		if len(m) != 15 || len(m[0].([]any)) != 15 {
			t.Fatalf("table %s is %dx%d, want 15x15", name, len(m), len(m[0].([]any)))
		}
	}
	if probs := tables["start_probabilities"].([]any); len(probs) != 15 {
		t.Fatalf("start_probabilities has %d entries, want 15", len(probs))
	}

	// A fresh server over the same directory folds the on-disk spaces
	// into its tables without having served them.
	_, ts2 := newTestServer(t, Config{Dir: dir})
	if doc := getStats(ts2); doc["spaces"] != float64(1) {
		t.Fatalf("fresh server over warm dir reports %v spaces, want 1", doc["spaces"])
	}
}

// TestEquivOption: options.equiv enumerates with the equivalence tier —
// a distinct cache key, equiv_raw/equiv_merged in the response, an
// "equiv" summary in /v1/stats — and the stats survive the disk
// round-trip to a fresh server; a request without the option reports no
// equiv fields at all.
func TestEquivOption(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Dir: dir})

	equivBody := `{"source":` + jsonStr(clampSrc) + `,"options":{"equiv":true}}`
	status, doc, _ := post(t, ts, equivBody)
	if status != http.StatusOK {
		t.Fatalf("equiv enumerate: status %d: %v", status, doc)
	}
	raw, ok := doc["equiv_raw"].(float64)
	if !ok || raw <= 0 {
		t.Fatalf("equiv response has no equiv_raw: %v", doc)
	}
	merged, _ := doc["equiv_merged"].(float64) // absent when nothing folded
	if nodes := doc["nodes"].(float64); nodes != raw-merged {
		t.Fatalf("nodes = %v, want equiv_raw - equiv_merged = %v", nodes, raw-merged)
	}

	status, plain, _ := post(t, ts, srcBody(clampSrc))
	if status != http.StatusOK {
		t.Fatalf("plain enumerate: status %d: %v", status, plain)
	}
	if plain["key"] == doc["key"] {
		t.Fatal("equiv and plain requests share a cache key")
	}
	if _, ok := plain["equiv_raw"]; ok {
		t.Fatalf("plain response leaks equiv fields: %v", plain)
	}

	getStats := func(ts *httptest.Server) map[string]any {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	eq, ok := getStats(ts)["equiv"].(map[string]any)
	if !ok {
		t.Fatal("/v1/stats has no equiv summary after an equiv enumeration")
	}
	if eq["spaces"] != float64(1) || eq["raw"] != raw || eq["merged"] != merged {
		t.Fatalf("stats equiv = %v, want spaces 1, raw %v, merged %v", eq, raw, merged)
	}

	// A fresh server over the same directory serves the equiv space from
	// disk with its tier stats intact, and folds them into /v1/stats.
	s2, ts2 := newTestServer(t, Config{Dir: dir})
	status, doc2, _ := post(t, ts2, equivBody)
	if status != http.StatusOK {
		t.Fatalf("disk replay: status %d: %v", status, doc2)
	}
	if doc2["cache"] != "disk" {
		t.Fatalf("disk replay served as %q, want disk", doc2["cache"])
	}
	if doc2["equiv_raw"] != raw {
		t.Fatalf("disk replay lost the equiv stats: %v", doc2)
	}
	if got := counter(s2, "server.enumerations"); got != 0 {
		t.Fatalf("disk replay ran %d enumerations, want 0", got)
	}
	if eq, ok := getStats(ts2)["equiv"].(map[string]any); !ok || eq["spaces"] != float64(1) {
		t.Fatalf("fresh server over warm dir reports equiv = %v, want 1 space", eq)
	}
}

// TestRequestKeyContentAddressing: textually different but semantically
// identical sources share a key; different options or functions do not.
func TestRequestKeyContentAddressing(t *testing.T) {
	a := mustCompile(t, clampSrc, "clamp")
	b := mustCompile(t, "int clamp(int x,int lo,int hi){if(x<lo)return lo;\n\n if(x>hi)return hi; return x;}", "clamp")
	if requestKey(a, normOptions{}) != requestKey(b, normOptions{}) {
		t.Fatal("reformatted source changed the cache key")
	}
	if requestKey(a, normOptions{}) == requestKey(a, normOptions{Check: true}) {
		t.Fatal("options do not reach the cache key")
	}
	if requestKey(a, normOptions{}) == requestKey(a, normOptions{MaxNodes: 10}) {
		t.Fatal("MaxNodes does not reach the cache key")
	}
	if requestKey(a, normOptions{}) == requestKey(a, normOptions{Equiv: true}) {
		t.Fatal("Equiv does not reach the cache key")
	}
	c := mustCompile(t, absSrc, "myabs")
	if requestKey(a, normOptions{}) == requestKey(c, normOptions{}) {
		t.Fatal("different functions share a cache key")
	}
	if !keyPattern.MatchString(string(requestKey(a, normOptions{}))) {
		t.Fatal("key is not 64 hex digits")
	}
}

// TestMemCacheLRU: the LRU holds at most max entries, evicting the
// least recently used.
func TestMemCacheLRU(t *testing.T) {
	c := newMemCache(2)
	k := func(i int) cacheKey { return cacheKey(fmt.Sprintf("%064d", i)) }
	c.add(k(1), entry{hash: "1"})
	c.add(k(2), entry{hash: "2"})
	if _, ok := c.get(k(1)); !ok { // 1 is now most recently used
		t.Fatal("entry 1 missing")
	}
	c.add(k(3), entry{hash: "3"}) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU kept the least recently used entry past its bound")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	if c.len() != 2 {
		t.Fatalf("LRU holds %d entries, bound is 2", c.len())
	}
}
